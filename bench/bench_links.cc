// Copyright 2026 The obtree Authors.
//
// E5 — the link-chasing overhead of B-link search (Section 1):
//
//   "A search in the tree may be prolonged as a result of having to move
//    occasionally from a node to its right neighbor, but we feel that
//    this is more than compensated for by the fact that a process has to
//    obtain considerably fewer locks."
//
// We vary the insertion rate running beside a fixed population of readers
// and measure how many moveright (link-follow) steps a search performs on
// average — it should stay a small fraction of a step even under heavy
// splitting, because a link is only followed in the short window between
// a split and its separator post.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "obtree/core/sagiv_tree.h"
#include "obtree/util/random.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

struct LinkRow {
  int insert_threads;
  uint64_t searches;
  uint64_t link_follows;
  uint64_t splits;
};

LinkRow Run(int insert_threads, int reader_threads) {
  TreeOptions options;
  options.min_entries = 8;  // frequent splits
  SagivTree tree(options);
  constexpr Key kKeySpace = 1u << 24;
  // Seed so searches have something to find.
  for (Key k = 1; k <= 100'000; ++k) {
    (void)tree.Insert(ScrambleKey(k) % kKeySpace + 1, k);
  }
  tree.stats()->Reset();

  std::atomic<bool> stop{false};
  std::vector<std::thread> inserters;
  for (int t = 0; t < insert_threads; ++t) {
    inserters.emplace_back([&, t]() {
      Random rng(static_cast<uint64_t>(t) + 7);
      while (!stop.load(std::memory_order_acquire)) {
        (void)tree.Insert(rng.UniformRange(1, kKeySpace), 1);
      }
    });
  }
  constexpr uint64_t kSearchesPerThread = 400'000;
  std::vector<std::thread> readers;
  for (int t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(static_cast<uint64_t>(t) + 99);
      for (uint64_t i = 0; i < kSearchesPerThread; ++i) {
        (void)tree.Search(rng.UniformRange(1, kKeySpace));
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true);
  for (auto& i : inserters) i.join();

  const StatsSnapshot stats = tree.stats()->Snapshot();
  return LinkRow{insert_threads,
                 kSearchesPerThread * static_cast<uint64_t>(reader_threads),
                 stats.Get(StatId::kLinkFollows),
                 stats.Get(StatId::kSplits)};
}

}  // namespace
}  // namespace obtree

int main() {
  using namespace obtree;
  PrintBanner("E5: moveright overhead vs insertion rate",
              "searches rarely need links even under heavy splitting; the "
              "occasional extra hop is the whole price of lock-free reads");

  Table table({"insert threads", "searches", "splits during run",
               "link follows", "links per search"});
  for (int inserters : {0, 1, 2, 4}) {
    const LinkRow row = Run(inserters, /*reader_threads=*/4);
    table.AddRow({Fmt(static_cast<uint64_t>(row.insert_threads)),
                  Fmt(row.searches), Fmt(row.splits),
                  Fmt(row.link_follows),
                  Fmt(static_cast<double>(row.link_follows) /
                          static_cast<double>(row.searches),
                      4)});
  }
  table.Print();
  std::printf(
      "(link follows include the inserters' own moveright steps, so the "
      "per-search column is an upper bound)\n");
  return 0;
}
