// Copyright 2026 The obtree Authors.
//
// E3 + E7 — the compression claims of Section 5:
//
//  * E3: compression restores the >= half-full invariant, releases empty
//    nodes, and collapses an emptied tree in O(log n) full passes.
//  * E7: all three queue deployments (one worker, shared queue with many
//    workers, per-burst private queues) recover the same space; more
//    workers drain faster.
//
// Phase A: build n keys, delete a fraction d, then compress; report
// nodes/height/fill before vs after and the pass count.
// Phase B: deployment comparison on a fixed delete-heavy churn.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "obtree/core/compression_queue.h"
#include "obtree/core/queue_compressor.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/core/tree_checker.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

constexpr Key kN = 200'000;

TreeOptions Options(bool enqueue) {
  TreeOptions opt;
  opt.min_entries = 16;
  opt.enqueue_underfull_on_delete = enqueue;
  return opt;
}

void BuildAndDecay(SagivTree* tree, int keep_every) {
  for (Key k = 1; k <= kN; ++k) (void)tree->Insert(k, k);
  for (Key k = 1; k <= kN; ++k) {
    if (keep_every == 0 || k % static_cast<Key>(keep_every) != 0) {
      (void)tree->Delete(k);
    }
  }
}

void ExperimentE3() {
  PrintBanner("E3: scan compression after bulk deletions (Section 5.1)",
              "each node ends >= half full, empty nodes are released, an "
              "emptied tree collapses in O(log n) passes");

  Table table({"deleted", "nodes before", "nodes after", "fill before",
               "fill after", "height", "passes", "space won"});
  for (int keep_every : {2, 10, 0 /*delete all*/}) {
    SagivTree tree(Options(false));
    BuildAndDecay(&tree, keep_every);
    const TreeShape before = TreeChecker(&tree).ComputeShape();

    ScanCompressor compressor(&tree);
    size_t passes = 0;
    while (passes < 200) {
      ++passes;
      if (compressor.FullPass() == 0) break;
    }
    tree.internal_pager()->Reclaim();
    const TreeShape after = TreeChecker(&tree).ComputeShape();
    const char* label = keep_every == 2   ? "50%"
                        : keep_every == 10 ? "90%"
                                           : "100%";
    char height[16];
    std::snprintf(height, sizeof(height), "%u->%u", before.height,
                  after.height);
    table.AddRow({label, Fmt(before.num_nodes), Fmt(after.num_nodes),
                  Fmt(before.avg_leaf_fill), Fmt(after.avg_leaf_fill),
                  height, Fmt(static_cast<uint64_t>(passes)),
                  FmtRatio(static_cast<double>(before.num_nodes),
                           static_cast<double>(after.num_nodes))});
  }
  table.Print();
  std::printf("(passes includes the final no-op fixpoint check)\n");
}

struct DeploymentResult {
  double seconds;
  uint64_t nodes_after;
  double fill_after;
  uint64_t merges;
};

// Deployment (1)/(2): `workers` compressors share one queue, draining
// concurrently with the deletions.
DeploymentResult RunQueueDeployment(int workers) {
  SagivTree tree(Options(true));
  CompressionQueue queue;
  queue.RegisterWith(tree.epoch());
  tree.AttachCompressionQueue(&queue);
  for (Key k = 1; k <= kN; ++k) (void)tree.Insert(k, k);

  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<QueueCompressor>> compressors;
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < workers; ++w) {
    compressors.push_back(std::make_unique<QueueCompressor>(&tree, &queue));
    threads.emplace_back([&stop, qc = compressors.back().get()]() {
      qc->RunUntil(&stop, std::chrono::milliseconds(0));
    });
  }
  for (Key k = 1; k <= kN; ++k) {
    if (k % 10 != 0) (void)tree.Delete(k);
  }
  // Wait for the queue to drain.
  while (!queue.Empty()) std::this_thread::yield();
  stop.store(true);
  for (auto& t : threads) t.join();
  QueueCompressor(&tree, &queue).Drain();
  const auto end = std::chrono::steady_clock::now();
  tree.internal_pager()->Reclaim();

  const TreeShape shape = TreeChecker(&tree).ComputeShape();
  return DeploymentResult{
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count(),
      shape.num_nodes, shape.avg_leaf_fill,
      tree.stats()->Get(StatId::kMerges)};
}

// Deployment (3): each deletion burst drains its own private queue.
DeploymentResult RunPrivateQueueDeployment() {
  SagivTree tree(Options(true));
  const auto start = std::chrono::steady_clock::now();
  for (Key k = 1; k <= kN; ++k) (void)tree.Insert(k, k);
  constexpr Key kBurst = 10'000;
  for (Key base = 0; base < kN; base += kBurst) {
    CompressionQueue queue;  // private to this burst
    queue.RegisterWith(tree.epoch());
    tree.AttachCompressionQueue(&queue);
    for (Key k = base + 1; k <= base + kBurst; ++k) {
      if (k % 10 != 0) (void)tree.Delete(k);
    }
    QueueCompressor(&tree, &queue).Drain();
    tree.AttachCompressionQueue(nullptr);
  }
  const auto end = std::chrono::steady_clock::now();
  tree.internal_pager()->Reclaim();
  const TreeShape shape = TreeChecker(&tree).ComputeShape();
  return DeploymentResult{
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count(),
      shape.num_nodes, shape.avg_leaf_fill,
      tree.stats()->Get(StatId::kMerges)};
}

void ExperimentE7() {
  PrintBanner(
      "E7: the three queue-compression deployments (Section 5.4)",
      "single worker, shared queue with N workers, and per-burst private "
      "queues all restore occupancy; extra workers drain concurrently");

  Table table({"deployment", "wall s (delete+compress)", "nodes after",
               "fill after", "merges"});
  DeploymentResult one = RunQueueDeployment(1);
  table.AddRow({"(1) one worker, one queue", Fmt(one.seconds),
                Fmt(one.nodes_after), Fmt(one.fill_after), Fmt(one.merges)});
  DeploymentResult shared = RunQueueDeployment(3);
  table.AddRow({"(2) shared queue, 3 workers", Fmt(shared.seconds),
                Fmt(shared.nodes_after), Fmt(shared.fill_after),
                Fmt(shared.merges)});
  DeploymentResult priv = RunPrivateQueueDeployment();
  table.AddRow({"(3) private queue per burst", Fmt(priv.seconds),
                Fmt(priv.nodes_after), Fmt(priv.fill_after),
                Fmt(priv.merges)});
  table.Print();
  std::printf("(all deployments keep 10%% of %llu keys)\n",
              static_cast<unsigned long long>(kN));
}

}  // namespace
}  // namespace obtree

int main() {
  obtree::ExperimentE3();
  obtree::ExperimentE7();
  return 0;
}
