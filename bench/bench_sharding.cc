// Copyright 2026 The obtree Authors.
//
// E11 — multi-core scaling of the ShardedMap front-end. A single tree
// funnels every operation through one root and serializes contending
// updaters on hot nodes; partitioning the key space across N independent
// trees splits that contention N ways. Expectation: on the uniform mixed
// workload, 4 shards at 8 threads beat 1 shard by >= 1.5x on a
// multi-core host; the shard-hot-spot adversary (90% of traffic on one
// shard's range) collapses the gain, and the global-lock baseline trails
// everything.
//
// E11d — shared BackgroundPool vs per-shard compression workers. The old
// topology spawns num_shards x compression_threads_per_shard background
// threads (16 shards => 16+ threads oversubscribing the machine); the
// shared pool serves every shard with a fixed machine-sized worker set.
// The claim, gated by CI's pool-scaling job via BENCH_sharding.json: the
// pool keeps the background-thread count at pool_threads regardless of
// shard count while giving up < 10% read-mostly throughput (usually
// nothing — fewer threads means less scheduler pressure).
//
// E11e — online rebalancing vs the shard-hot-spot adversary. E11c shows
// range partitioning's known weakness: aim 90% of traffic at one shard's
// range and the static layout degenerates to a single tree. The
// ShardRebalancer reads the same telemetry CI collects (op deltas, lock
// contention, pool drain/boost rates), splits the hot shard at its median
// stored key, and repeats until traffic spreads. Gate, via
// BENCH_sharding.json: rebalancer-on beats rebalancer-off by >= 1.3x at 8
// threads on a >= 4-CPU host (record-only on smaller runners).
//
// Rows: thread counts. Columns: Kops/s per target. One table per mix.
// Every cell is also recorded to BENCH_sharding.json for the CI artifact.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obtree/api/sharded_map.h"
#include "obtree/baseline/coarse_tree.h"
#include "obtree/core/background_pool.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

// ---------------------------------------------------------------- JSON out

struct JsonSample {
  std::string config;
  int threads;
  double kops;
};

std::vector<JsonSample>& Samples() {
  static std::vector<JsonSample> samples;
  return samples;
}

void Record(const std::string& config, int threads, double kops) {
  Samples().push_back(JsonSample{config, threads, kops});
}

/// The pool-scaling gate numbers (E11d), consumed by CI.
struct PoolGate {
  int pool_threads = 0;
  int shared_bg_threads_16_shards = 0;
  int per_shard_bg_threads_16_shards = 0;
  double shared_read_mostly_8s_kops = 0;
  double per_shard_read_mostly_8s_kops = 0;
};

/// The rebalancing gate numbers (E11e), consumed by CI.
struct RebalanceGate {
  double off_kops = 0;        ///< static 4-shard layout, hotspot adversary
  double on_kops = 0;         ///< rebalancer enabled, same adversary
  uint32_t final_shards = 0;  ///< shard count after the rebalanced run
};

void WriteJson(const char* path, bool quick, const PoolGate& gate,
               const RebalanceGate& rebalance) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const double ratio = gate.per_shard_read_mostly_8s_kops > 0
                           ? gate.shared_read_mostly_8s_kops /
                                 gate.per_shard_read_mostly_8s_kops
                           : 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"sharding\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"pool_threads\": %d,\n", gate.pool_threads);
  std::fprintf(f, "  \"shared_pool_bg_threads_16_shards\": %d,\n",
               gate.shared_bg_threads_16_shards);
  std::fprintf(f, "  \"per_shard_bg_threads_16_shards\": %d,\n",
               gate.per_shard_bg_threads_16_shards);
  std::fprintf(f, "  \"read_mostly_8_shards_shared_pool_kops\": %.1f,\n",
               gate.shared_read_mostly_8s_kops);
  std::fprintf(f, "  \"read_mostly_8_shards_per_shard_kops\": %.1f,\n",
               gate.per_shard_read_mostly_8s_kops);
  std::fprintf(f, "  \"shared_pool_throughput_ratio\": %.3f,\n", ratio);
  const double speedup = rebalance.off_kops > 0
                             ? rebalance.on_kops / rebalance.off_kops
                             : 0.0;
  std::fprintf(f, "  \"cpus\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"rebalance_off_kops\": %.1f,\n", rebalance.off_kops);
  std::fprintf(f, "  \"rebalance_on_kops\": %.1f,\n", rebalance.on_kops);
  std::fprintf(f, "  \"rebalance_final_shards\": %u,\n",
               rebalance.final_shards);
  std::fprintf(f, "  \"rebalance_hotspot_speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"configs\": [\n");
  const std::vector<JsonSample>& samples = Samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"threads\": %d, "
                 "\"ops_per_sec\": %.0f}%s\n",
                 samples[i].config.c_str(), samples[i].threads,
                 samples[i].kops * 1000.0,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu configs)\n", path, samples.size());
}

TreeOptions BenchTreeOptions() {
  TreeOptions options;
  options.min_entries = 32;
  options.simulated_io_ns = 0;  // preload at memory speed
  return options;
}

double ShardedKops(const WorkloadSpec& spec, uint32_t shards, int threads,
                   uint64_t ops_per_thread, uint64_t io_ns) {
  ShardOptions options;
  options.tree = BenchTreeOptions();
  options.num_shards = shards;
  options.key_space_hint = spec.key_space;
  options.compression = CompressionMode::kNone;  // isolate routing cost
  ShardedMap map(options);
  PreloadTree(&map, spec, 4);
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    map.shard(s)->tree()->internal_pager()->set_simulated_io_ns(io_ns);
  }
  const DriverResult result =
      RunWorkload(&map, spec, threads, ops_per_thread, /*seed=*/7);
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    map.shard(s)->tree()->internal_pager()->set_simulated_io_ns(0);
  }
  return result.MopsPerSec() * 1000.0;
}

double SingleTreeKops(const WorkloadSpec& spec, int threads,
                      uint64_t ops_per_thread, uint64_t io_ns) {
  SagivTree tree(BenchTreeOptions());
  PreloadTree(&tree, spec, 4);
  tree.internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

double CoarseKops(const WorkloadSpec& spec, int threads,
                  uint64_t ops_per_thread, uint64_t io_ns) {
  CoarseTree tree(BenchTreeOptions());
  PreloadTree(&tree, spec, 4);
  tree.inner()->internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.inner()->internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

void RunMix(WorkloadSpec spec, const std::vector<int>& thread_counts,
            uint64_t io_ns, uint64_t ops_per_thread, Key key_space) {
  spec.key_space = key_space;
  spec.preload = spec.insert_pct >= 0.999 ? 0 : key_space / 2;
  std::printf("workload: %s, %llu ops/thread, io=%lluus/page\n",
              spec.Describe().c_str(),
              static_cast<unsigned long long>(ops_per_thread),
              static_cast<unsigned long long>(io_ns / 1000));
  Table table({"threads", "tree", "global-lock", "shard x1", "shard x2",
               "shard x4", "shard x8", "x4/x1"});
  for (int threads : thread_counts) {
    const double tree = SingleTreeKops(spec, threads, ops_per_thread, io_ns);
    const double coarse = CoarseKops(spec, threads, ops_per_thread, io_ns);
    const double s1 = ShardedKops(spec, 1, threads, ops_per_thread, io_ns);
    const double s2 = ShardedKops(spec, 2, threads, ops_per_thread, io_ns);
    const double s4 = ShardedKops(spec, 4, threads, ops_per_thread, io_ns);
    const double s8 = ShardedKops(spec, 8, threads, ops_per_thread, io_ns);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)), Fmt(tree),
                  Fmt(coarse), Fmt(s1), Fmt(s2), Fmt(s4), Fmt(s8),
                  FmtRatio(s4, s1)});
    Record(spec.name + "/tree", threads, tree);
    Record(spec.name + "/global-lock", threads, coarse);
    Record(spec.name + "/shard_x1", threads, s1);
    Record(spec.name + "/shard_x2", threads, s2);
    Record(spec.name + "/shard_x4", threads, s4);
    Record(spec.name + "/shard_x8", threads, s8);
  }
  table.Print();
  std::printf("(cells are Kops/s; higher is better)\n\n");
}

// ------------------------------------------------------------------- E11d

struct MaintainedRun {
  double kops = 0;
  int bg_threads = 0;
  uint64_t pool_drained = 0;  ///< shared-pool mode only
};

/// Run a compression-active workload (kQueueWorkers) against a ShardedMap
/// in either background topology. `repeats` takes the best throughput of
/// several runs (the gated cells must not flap on CI-host noise).
MaintainedRun MaintainedKops(const WorkloadSpec& spec, uint32_t shards,
                             int threads, uint64_t ops_per_thread,
                             bool shared_pool, int pool_threads,
                             int repeats = 1) {
  MaintainedRun best;
  for (int r = 0; r < repeats; ++r) {
    ShardOptions options;
    options.tree = BenchTreeOptions();
    options.num_shards = shards;
    options.key_space_hint = spec.key_space;
    options.compression = CompressionMode::kQueueWorkers;
    options.per_shard_workers = !shared_pool;
    options.pool_threads = pool_threads;
    options.compression_threads_per_shard = 1;
    ShardedMap map(options);
    PreloadTree(&map, spec, 4);
    const DriverResult result =
        RunWorkload(&map, spec, threads, ops_per_thread, /*seed=*/7 + r);
    const double kops = result.MopsPerSec() * 1000.0;
    if (kops > best.kops) {
      best.kops = kops;
      best.bg_threads = map.background_thread_count();
      best.pool_drained = map.PoolStats().tasks_drained;
    }
  }
  return best;
}

PoolGate RunPoolComparison(uint64_t ops_per_thread, Key key_space,
                           int repeats) {
  PoolGate gate;
  gate.pool_threads = 4;
  WorkloadSpec spec = WorkloadSpec::ReadMostly();
  spec.name = "read-mostly(95/2.5/2.5)";
  spec.key_space = key_space;
  spec.preload = key_space / 2;
  const int fg_threads = 8;

  Table table({"shards", "topology", "bg threads", "Kops/s", "drained"});
  for (uint32_t shards : {8u, 16u}) {
    const MaintainedRun per_shard =
        MaintainedKops(spec, shards, fg_threads, ops_per_thread,
                       /*shared_pool=*/false, gate.pool_threads, repeats);
    const MaintainedRun pooled =
        MaintainedKops(spec, shards, fg_threads, ops_per_thread,
                       /*shared_pool=*/true, gate.pool_threads, repeats);
    table.AddRow({Fmt(static_cast<uint64_t>(shards)), "per-shard",
                  Fmt(static_cast<uint64_t>(per_shard.bg_threads)),
                  Fmt(per_shard.kops), "-"});
    table.AddRow({Fmt(static_cast<uint64_t>(shards)), "shared-pool",
                  Fmt(static_cast<uint64_t>(pooled.bg_threads)),
                  Fmt(pooled.kops), Fmt(pooled.pool_drained)});
    Record("e11d/per_shard_x" + std::to_string(shards), fg_threads,
           per_shard.kops);
    Record("e11d/shared_pool_x" + std::to_string(shards), fg_threads,
           pooled.kops);
    if (shards == 8) {
      gate.per_shard_read_mostly_8s_kops = per_shard.kops;
      gate.shared_read_mostly_8s_kops = pooled.kops;
    } else {
      gate.per_shard_bg_threads_16_shards = per_shard.bg_threads;
      gate.shared_bg_threads_16_shards = pooled.bg_threads;
    }
  }
  table.Print();
  std::printf(
      "(bg threads: background maintenance threads the process runs; the "
      "shared pool stays at pool_threads=%d while per-shard grows with the "
      "shard count)\n\n",
      gate.pool_threads);
  return gate;
}

// ------------------------------------------------------------------- E11e

struct RebalanceRun {
  double kops = 0;
  uint32_t final_shards = 0;
  uint64_t splits = 0;
  uint64_t keys_migrated = 0;
};

/// Run the shard-hot-spot adversary against a 4-shard map, with or
/// without the online rebalancer. Best-of-`repeats` (the gated speedup
/// must not flap on CI-host noise).
RebalanceRun RebalancedHotspotKops(const WorkloadSpec& spec, bool rebalance,
                                   int threads, uint64_t ops_per_thread,
                                   int repeats) {
  RebalanceRun best;
  for (int r = 0; r < repeats; ++r) {
    ShardOptions options;
    options.tree = BenchTreeOptions();
    options.num_shards = 4;
    options.key_space_hint = spec.key_space;
    options.compression = CompressionMode::kNone;  // isolate routing cost
    options.rebalance.enabled = rebalance;
    options.rebalance.period_ms = 5;
    options.rebalance.hotness_threshold = 1.5;
    options.rebalance.cold_threshold = 0.4;
    options.rebalance.max_shards = 16;
    options.rebalance.min_ops_per_period = 2048;
    options.rebalance.min_keys_to_split = 64;
    options.rebalance.migration_batch = 256;
    options.rebalance.cooldown_periods = 1;
    ShardedMap map(options);
    PreloadTree(&map, spec, 4);
    const DriverResult result =
        RunWorkload(&map, spec, threads, ops_per_thread, /*seed=*/7 + r);
    const double kops = result.MopsPerSec() * 1000.0;
    if (kops > best.kops) {
      best.kops = kops;
      best.final_shards = map.num_shards();
      const StatsSnapshot stats = map.Stats();
      best.splits = stats.Get(StatId::kRebalanceSplits);
      best.keys_migrated = stats.Get(StatId::kKeysMigrated);
    }
  }
  return best;
}

RebalanceGate RunRebalanceComparison(uint64_t ops_per_thread, Key key_space,
                                     int repeats) {
  RebalanceGate gate;
  WorkloadSpec spec = WorkloadSpec::ShardHotSpot(4);
  spec.key_space = key_space;
  spec.preload = key_space / 2;
  const int fg_threads = 8;

  const RebalanceRun off = RebalancedHotspotKops(
      spec, /*rebalance=*/false, fg_threads, ops_per_thread, repeats);
  const RebalanceRun on = RebalancedHotspotKops(
      spec, /*rebalance=*/true, fg_threads, ops_per_thread, repeats);
  gate.off_kops = off.kops;
  gate.on_kops = on.kops;
  gate.final_shards = on.final_shards;

  Table table({"rebalancer", "Kops/s", "final shards", "splits",
               "keys migrated"});
  table.AddRow({"off", Fmt(off.kops), Fmt(static_cast<uint64_t>(4)), "-",
                "-"});
  table.AddRow({"on", Fmt(on.kops),
                Fmt(static_cast<uint64_t>(on.final_shards)), Fmt(on.splits),
                Fmt(on.keys_migrated)});
  table.Print();
  std::printf(
      "(speedup on/off = %.2fx; the CI gate wants >= 1.3x at 8 threads on "
      "a >= 4-CPU host)\n\n",
      off.kops > 0 ? on.kops / off.kops : 0.0);
  Record("e11e/hotspot_rebalance_off", fg_threads, off.kops);
  Record("e11e/hotspot_rebalance_on", fg_threads, on.kops);
  return gate;
}

}  // namespace
}  // namespace obtree

int main(int argc, char** argv) {
  using namespace obtree;
  // --quick: 10x fewer ops per cell (CI smoke / slow hosts).
  const bool quick =
      argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const uint64_t mem_ops = quick ? 12'000 : 120'000;
  const uint64_t io_ops = quick ? 200 : 2'000;
  const Key key_space = quick ? 40'000 : 400'000;
  const std::vector<int> threads{1, 2, 4, 8};

  PrintBanner(
      "E11a: shard scaling, insert+search uniform mix",
      "disjoint key ranges never share tree state, so N shards split root "
      "and leaf-lock contention N ways; the x4/x1 column is the headline "
      "scaling claim (>= 1.5x at 8 threads on a multi-core host)");
  WorkloadSpec mix = WorkloadSpec::Mixed5050();
  mix.name = "insert+search(50/25/25,uniform)";
  RunMix(mix, threads, 0, mem_ops, key_space);

  PrintBanner(
      "E11b: shard scaling, disk-resident regime (20us/page)",
      "with simulated page I/O every protocol overlaps I/O, so sharding's "
      "benefit is contention relief, not I/O parallelism");
  RunMix(mix, threads, 20'000, io_ops, key_space);

  PrintBanner(
      "E11c: skewed traffic",
      "Zipf skew concentrates traffic on hot keys spread across shards "
      "(scrambled ranks), so sharding still helps; the shard-hot-spot "
      "adversary aims 90% of ops at ONE shard's range and should erase "
      "most of the gain — the known weakness of range partitioning");
  WorkloadSpec zipf = WorkloadSpec::Mixed5050();
  zipf.distribution = KeyDistribution::kZipfian;
  zipf.zipf_theta = 0.99;
  zipf.name = "mixed-zipf(50/25/25,theta=.99)";
  RunMix(zipf, threads, 0, mem_ops, key_space);
  RunMix(WorkloadSpec::ShardHotSpot(4), threads, 0, mem_ops, key_space);

  PrintBanner(
      "E11d: shared background pool vs per-shard compression workers",
      "one machine-sized BackgroundPool drains every shard's compression "
      "queue with round-robin fairness and a depth boost, so background "
      "threads stay at pool_threads no matter the shard count; the old "
      "topology spawns num_shards x threads and oversubscribes cores");
  const PoolGate gate = RunPoolComparison(mem_ops, key_space,
                                          /*repeats=*/quick ? 3 : 1);

  PrintBanner(
      "E11e: online rebalancing vs the shard-hot-spot adversary",
      "the rebalancer reads pool telemetry and per-shard op/contention "
      "deltas, splits the hot shard at its median stored key, and repeats "
      "until the 90%-on-one-shard adversary is spread across many trees; "
      "rebalancer-off is the E11c collapse it must beat");
  const RebalanceGate rebalance =
      RunRebalanceComparison(mem_ops, key_space, /*repeats=*/3);

  WriteJson("BENCH_sharding.json", quick, gate, rebalance);
  return 0;
}
