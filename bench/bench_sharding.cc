// Copyright 2026 The obtree Authors.
//
// E11 — multi-core scaling of the ShardedMap front-end. A single tree
// funnels every operation through one root and serializes contending
// updaters on hot nodes; partitioning the key space across N independent
// trees splits that contention N ways. Expectation: on the uniform mixed
// workload, 4 shards at 8 threads beat 1 shard by >= 1.5x on a
// multi-core host; the shard-hot-spot adversary (90% of traffic on one
// shard's range) collapses the gain, and the global-lock baseline trails
// everything.
//
// Rows: thread counts. Columns: Kops/s per target. One table per mix.

#include <cstdio>
#include <cstring>
#include <vector>

#include "obtree/api/sharded_map.h"
#include "obtree/baseline/coarse_tree.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

TreeOptions BenchTreeOptions() {
  TreeOptions options;
  options.min_entries = 32;
  options.simulated_io_ns = 0;  // preload at memory speed
  return options;
}

double ShardedKops(const WorkloadSpec& spec, uint32_t shards, int threads,
                   uint64_t ops_per_thread, uint64_t io_ns) {
  ShardOptions options;
  options.tree = BenchTreeOptions();
  options.num_shards = shards;
  options.key_space_hint = spec.key_space;
  options.compression = CompressionMode::kNone;  // isolate routing cost
  ShardedMap map(options);
  PreloadTree(&map, spec, 4);
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    map.shard(s)->tree()->internal_pager()->set_simulated_io_ns(io_ns);
  }
  const DriverResult result =
      RunWorkload(&map, spec, threads, ops_per_thread, /*seed=*/7);
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    map.shard(s)->tree()->internal_pager()->set_simulated_io_ns(0);
  }
  return result.MopsPerSec() * 1000.0;
}

double SingleTreeKops(const WorkloadSpec& spec, int threads,
                      uint64_t ops_per_thread, uint64_t io_ns) {
  SagivTree tree(BenchTreeOptions());
  PreloadTree(&tree, spec, 4);
  tree.internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

double CoarseKops(const WorkloadSpec& spec, int threads,
                  uint64_t ops_per_thread, uint64_t io_ns) {
  CoarseTree tree(BenchTreeOptions());
  PreloadTree(&tree, spec, 4);
  tree.inner()->internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.inner()->internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

void RunMix(WorkloadSpec spec, const std::vector<int>& thread_counts,
            uint64_t io_ns, uint64_t ops_per_thread, Key key_space) {
  spec.key_space = key_space;
  spec.preload = spec.insert_pct >= 0.999 ? 0 : key_space / 2;
  std::printf("workload: %s, %llu ops/thread, io=%lluus/page\n",
              spec.Describe().c_str(),
              static_cast<unsigned long long>(ops_per_thread),
              static_cast<unsigned long long>(io_ns / 1000));
  Table table({"threads", "tree", "global-lock", "shard x1", "shard x2",
               "shard x4", "shard x8", "x4/x1"});
  for (int threads : thread_counts) {
    const double tree = SingleTreeKops(spec, threads, ops_per_thread, io_ns);
    const double coarse = CoarseKops(spec, threads, ops_per_thread, io_ns);
    const double s1 = ShardedKops(spec, 1, threads, ops_per_thread, io_ns);
    const double s2 = ShardedKops(spec, 2, threads, ops_per_thread, io_ns);
    const double s4 = ShardedKops(spec, 4, threads, ops_per_thread, io_ns);
    const double s8 = ShardedKops(spec, 8, threads, ops_per_thread, io_ns);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)), Fmt(tree),
                  Fmt(coarse), Fmt(s1), Fmt(s2), Fmt(s4), Fmt(s8),
                  FmtRatio(s4, s1)});
  }
  table.Print();
  std::printf("(cells are Kops/s; higher is better)\n\n");
}

}  // namespace
}  // namespace obtree

int main(int argc, char** argv) {
  using namespace obtree;
  // --quick: 10x fewer ops per cell (CI smoke / slow hosts).
  const bool quick =
      argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const uint64_t mem_ops = quick ? 12'000 : 120'000;
  const uint64_t io_ops = quick ? 200 : 2'000;
  const Key key_space = quick ? 40'000 : 400'000;
  const std::vector<int> threads{1, 2, 4, 8};

  PrintBanner(
      "E11a: shard scaling, insert+search uniform mix",
      "disjoint key ranges never share tree state, so N shards split root "
      "and leaf-lock contention N ways; the x4/x1 column is the headline "
      "scaling claim (>= 1.5x at 8 threads on a multi-core host)");
  WorkloadSpec mix = WorkloadSpec::Mixed5050();
  mix.name = "insert+search(50/25/25,uniform)";
  RunMix(mix, threads, 0, mem_ops, key_space);

  PrintBanner(
      "E11b: shard scaling, disk-resident regime (20us/page)",
      "with simulated page I/O every protocol overlaps I/O, so sharding's "
      "benefit is contention relief, not I/O parallelism");
  RunMix(mix, threads, 20'000, io_ops, key_space);

  PrintBanner(
      "E11c: skewed traffic",
      "Zipf skew concentrates traffic on hot keys spread across shards "
      "(scrambled ranks), so sharding still helps; the shard-hot-spot "
      "adversary aims 90% of ops at ONE shard's range and should erase "
      "most of the gain — the known weakness of range partitioning");
  WorkloadSpec zipf = WorkloadSpec::Mixed5050();
  zipf.distribution = KeyDistribution::kZipfian;
  zipf.zipf_theta = 0.99;
  zipf.name = "mixed-zipf(50/25/25,theta=.99)";
  RunMix(zipf, threads, 0, mem_ops, key_space);
  RunMix(WorkloadSpec::ShardHotSpot(4), threads, 0, mem_ops, key_space);
  return 0;
}
