// Copyright 2026 The obtree Authors.
//
// E1 — the paper's headline claim (Abstract, Sections 1 and 3):
//
//   "an insertion process has to lock only one node at any time (as
//    opposed to locking simultaneously two or three nodes in [Lehman-Yao])"
//
// This bench runs identical insert-only and mixed workloads on SagivTree
// and LehmanYaoTree and reports, per tree: the maximum number of locks any
// operation held simultaneously, locks acquired per operation, and page
// reads per operation. It also shows that Sagiv/LY readers acquire zero
// locks while lock-coupling readers latch every node on the path.

#include <cstdio>

#include "obtree/baseline/lehman_yao_tree.h"
#include "obtree/baseline/lock_coupling_tree.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

struct LockProfile {
  uint64_t max_locks;
  double locks_per_op;
  double gets_per_op;
  double read_locks_per_search;
};

template <typename Tree>
LockProfile Profile(const WorkloadSpec& spec, int threads,
                    uint64_t ops_per_thread) {
  TreeOptions options;
  options.min_entries = 16;  // small nodes -> frequent splits
  Tree tree(options);
  PreloadTree(&tree, spec, threads);
  tree.stats()->Reset();
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/42);

  LockProfile profile;
  profile.max_locks = result.stats.max_locks_held;
  profile.locks_per_op =
      static_cast<double>(result.stats.Get(StatId::kLocksAcquired)) /
      static_cast<double>(result.total_ops);
  profile.gets_per_op =
      static_cast<double>(result.stats.Get(StatId::kGets)) /
      static_cast<double>(result.total_ops);

  // Separate read-only phase to isolate the reader locking story.
  const StatsSnapshot before = tree.stats()->Snapshot();
  WorkloadSpec read_only = spec;
  read_only.search_pct = 1.0;
  read_only.insert_pct = read_only.delete_pct = read_only.scan_pct = 0.0;
  const DriverResult reads =
      RunWorkload(&tree, read_only, threads, ops_per_thread / 2, 43);
  (void)before;
  profile.read_locks_per_search =
      static_cast<double>(reads.stats.Get(StatId::kLocksAcquired)) /
      static_cast<double>(reads.total_ops);
  return profile;
}

void RunExperiment(const WorkloadSpec& spec, int threads,
                   uint64_t ops_per_thread) {
  std::printf("workload: %s, threads=%d, ops/thread=%llu\n",
              spec.Describe().c_str(), threads,
              static_cast<unsigned long long>(ops_per_thread));

  const LockProfile sagiv = Profile<SagivTree>(spec, threads, ops_per_thread);
  const LockProfile ly =
      Profile<LehmanYaoTree>(spec, threads, ops_per_thread);
  const LockProfile coupling =
      Profile<LockCouplingTree>(spec, threads, ops_per_thread);

  Table table({"tree", "max locks held", "locks/op", "page reads/op",
               "locks per SEARCH"});
  table.AddRow({"sagiv (this paper)", Fmt(sagiv.max_locks),
                Fmt(sagiv.locks_per_op), Fmt(sagiv.gets_per_op),
                Fmt(sagiv.read_locks_per_search)});
  table.AddRow({"lehman-yao [8]", Fmt(ly.max_locks), Fmt(ly.locks_per_op),
                Fmt(ly.gets_per_op), Fmt(ly.read_locks_per_search)});
  table.AddRow({"lock-coupling [2]", Fmt(coupling.max_locks),
                Fmt(coupling.locks_per_op), Fmt(coupling.gets_per_op),
                Fmt(coupling.read_locks_per_search)});
  table.Print();
  std::printf(
      "(lock-coupling uses reader/writer latches, not paper locks, so the "
      "max-held meter reads 0; it holds 2 latches hand-over-hand on every "
      "step of every path — see locks/op)\n\n");
}

}  // namespace
}  // namespace obtree

int main() {
  using namespace obtree;
  PrintBanner("E1: locks held per operation",
              "Sagiv insertions hold exactly ONE lock at any time; "
              "Lehman-Yao holds 2-3 during the split hand-off; "
              "lock-coupling locks every node on the path, even for reads");

  WorkloadSpec inserts = WorkloadSpec::InsertOnly();
  inserts.key_space = 1u << 22;
  RunExperiment(inserts, /*threads=*/4, /*ops_per_thread=*/100'000);

  WorkloadSpec mixed = WorkloadSpec::Mixed5050();
  mixed.key_space = 200'000;
  mixed.preload = 100'000;
  RunExperiment(mixed, /*threads=*/8, /*ops_per_thread=*/100'000);
  return 0;
}
