// Copyright 2026 The obtree Authors.
//
// E1 — the paper's headline claim (Abstract, Sections 1 and 3):
//
//   "an insertion process has to lock only one node at any time (as
//    opposed to locking simultaneously two or three nodes in [Lehman-Yao])"
//
// This bench runs identical insert-only and mixed workloads on SagivTree
// and LehmanYaoTree and reports, per tree: the maximum number of locks any
// operation held simultaneously, locks acquired per operation, and page
// reads per operation. It also shows that Sagiv/LY readers acquire zero
// locks while lock-coupling readers latch every node on the path.
//
// E1b — the lock *implementation* under contention (the PR 5 tentpole
// measured at the microbench level): N threads hammer Lock/Unlock on one
// hot page through PageManager, the convoy pattern a hot leaf produces.
// Park-only (spin budget 0 — the former std::mutex discipline, every
// contended acquisition sleeps in the kernel) against the spin-then-park
// PaperLock with the TreeOptions default budgets. Cells: aggregate
// Mlocks/s, contended acquisitions, parks, and the contended-wait
// p50/p99 from the lock-wait histogram.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "obtree/baseline/lehman_yao_tree.h"
#include "obtree/baseline/lock_coupling_tree.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/storage/page_manager.h"
#include "obtree/util/epoch.h"
#include "obtree/util/histogram.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

struct LockProfile {
  uint64_t max_locks;
  double locks_per_op;
  double gets_per_op;
  double read_locks_per_search;
};

template <typename Tree>
LockProfile Profile(const WorkloadSpec& spec, int threads,
                    uint64_t ops_per_thread) {
  TreeOptions options;
  options.min_entries = 16;  // small nodes -> frequent splits
  Tree tree(options);
  PreloadTree(&tree, spec, threads);
  tree.stats()->Reset();
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/42);

  LockProfile profile;
  profile.max_locks = result.stats.max_locks_held;
  profile.locks_per_op =
      static_cast<double>(result.stats.Get(StatId::kLocksAcquired)) /
      static_cast<double>(result.total_ops);
  profile.gets_per_op =
      static_cast<double>(result.stats.Get(StatId::kGets)) /
      static_cast<double>(result.total_ops);

  // Separate read-only phase to isolate the reader locking story.
  const StatsSnapshot before = tree.stats()->Snapshot();
  WorkloadSpec read_only = spec;
  read_only.search_pct = 1.0;
  read_only.insert_pct = read_only.delete_pct = read_only.scan_pct = 0.0;
  const DriverResult reads =
      RunWorkload(&tree, read_only, threads, ops_per_thread / 2, 43);
  (void)before;
  profile.read_locks_per_search =
      static_cast<double>(reads.stats.Get(StatId::kLocksAcquired)) /
      static_cast<double>(reads.total_ops);
  return profile;
}

void RunExperiment(const WorkloadSpec& spec, int threads,
                   uint64_t ops_per_thread) {
  std::printf("workload: %s, threads=%d, ops/thread=%llu\n",
              spec.Describe().c_str(), threads,
              static_cast<unsigned long long>(ops_per_thread));

  const LockProfile sagiv = Profile<SagivTree>(spec, threads, ops_per_thread);
  const LockProfile ly =
      Profile<LehmanYaoTree>(spec, threads, ops_per_thread);
  const LockProfile coupling =
      Profile<LockCouplingTree>(spec, threads, ops_per_thread);

  Table table({"tree", "max locks held", "locks/op", "page reads/op",
               "locks per SEARCH"});
  table.AddRow({"sagiv (this paper)", Fmt(sagiv.max_locks),
                Fmt(sagiv.locks_per_op), Fmt(sagiv.gets_per_op),
                Fmt(sagiv.read_locks_per_search)});
  table.AddRow({"lehman-yao [8]", Fmt(ly.max_locks), Fmt(ly.locks_per_op),
                Fmt(ly.gets_per_op), Fmt(ly.read_locks_per_search)});
  table.AddRow({"lock-coupling [2]", Fmt(coupling.max_locks),
                Fmt(coupling.locks_per_op), Fmt(coupling.gets_per_op),
                Fmt(coupling.read_locks_per_search)});
  table.Print();
  std::printf(
      "(lock-coupling uses reader/writer latches, not paper locks, so the "
      "max-held meter reads 0; it holds 2 latches hand-over-hand on every "
      "step of every path — see locks/op)\n\n");
}

// ---------------------------------------------------------------- E1b

struct LockCell {
  double mlocks_per_sec = 0.0;
  uint64_t contended = 0;
  uint64_t parks = 0;
  uint64_t wait_p50_ns = 0;
  uint64_t wait_p99_ns = 0;
};

LockCell LockMicrobench(int threads, uint64_t ops_per_thread,
                        uint32_t spin_budget, uint32_t backoff_max) {
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats);
  pm.set_lock_spin_budget(spin_budget);
  pm.set_lock_backoff_max(backoff_max);
  Result<PageId> id = pm.Allocate();
  const PageId hot = *id;

  // ~100 ns of guarded work per hold: the size of an in-place mutation.
  uint64_t guarded = 0;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        pm.Lock(hot);
        for (int w = 0; w < 24; ++w) {
          guarded += (guarded >> 3) + w + 1;  // data dependency chain
        }
        pm.Unlock(hot);
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LockCell cell;
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(threads);
  cell.mlocks_per_sec = secs > 0 ? total_ops / secs / 1e6 : 0.0;
  cell.contended = stats.Get(StatId::kLocksContended);
  cell.parks = stats.Get(StatId::kLockParks);
  const Histogram waits = stats.LockWaitHistogram();
  cell.wait_p50_ns = waits.Percentile(50);
  cell.wait_p99_ns = waits.Percentile(99);
  if (guarded == 0xdeadbeef) std::printf("!");  // keep the work alive
  return cell;
}

void RunLockMicrobench() {
  PrintBanner(
      "E1b: one hot paper lock, N threads",
      "park-only (spin budget 0: every contended acquisition sleeps in "
      "the kernel, the pre-PaperLock discipline) vs spin-then-park "
      "(TreeOptions defaults). Short critical sections make the park "
      "round-trip the dominant cost; the spin path keeps the handoff in "
      "user space");
  const TreeOptions defaults;
  const uint64_t ops = 200'000;
  Table table({"threads", "park-only Ml/s", "spin+park Ml/s", "speedup",
               "contended", "parks", "wait p50ns", "wait p99ns"});
  for (int threads : {1, 2, 4, 8}) {
    const LockCell park = LockMicrobench(threads, ops, 0, 1);
    const LockCell spin = LockMicrobench(threads, ops,
                                         defaults.lock_spin_budget,
                                         defaults.lock_backoff_max);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)),
                  Fmt(park.mlocks_per_sec), Fmt(spin.mlocks_per_sec),
                  FmtRatio(spin.mlocks_per_sec, park.mlocks_per_sec),
                  Fmt(spin.contended), Fmt(spin.parks),
                  Fmt(spin.wait_p50_ns), Fmt(spin.wait_p99_ns)});
  }
  table.Print();
  std::printf(
      "(contended/parks/wait columns describe the spin+park run; on a "
      "single-core host the spin budget degrades to yields, so the two "
      "configurations converge)\n\n");
}

}  // namespace
}  // namespace obtree

int main() {
  using namespace obtree;
  PrintBanner("E1: locks held per operation",
              "Sagiv insertions hold exactly ONE lock at any time; "
              "Lehman-Yao holds 2-3 during the split hand-off; "
              "lock-coupling locks every node on the path, even for reads");

  WorkloadSpec inserts = WorkloadSpec::InsertOnly();
  inserts.key_space = 1u << 22;
  RunExperiment(inserts, /*threads=*/4, /*ops_per_thread=*/100'000);

  WorkloadSpec mixed = WorkloadSpec::Mixed5050();
  mixed.key_space = 200'000;
  mixed.preload = 100'000;
  RunExperiment(mixed, /*threads=*/8, /*ops_per_thread=*/100'000);

  RunLockMicrobench();
  return 0;
}
