// Copyright 2026 The obtree Authors.
//
// E10 — ablation of the rewrite-ordering rule (acknowledgments + §5.2):
//
//   "the child which gains new data should be rewritten first and then
//    the parent and the other child"
//
// With the rule, a key being shifted between siblings is readable in at
// least one node image at every instant. Without it — rewriting the
// parent first — there are windows in which a key in transit is in
// NEITHER child's readable image. Readers that hit the window are saved
// from returning a wrong NOT-FOUND only by the low-value check (they
// observe key <= low on the right sibling and restart), so the measured
// effect of violating the rule is a burst of reader restarts — and the
// measurement doubles as evidence that the low-value check is load-
// bearing: with it, zero phantom misses even under the broken ordering.
//
// The bench runs readers over a fixed key population while a compressor
// continuously redistributes (churn inserts/deletes force under-full
// nodes), once with each ordering, and counts phantom misses and
// restarts.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "obtree/core/sagiv_tree.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/util/random.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

struct AblationResult {
  uint64_t reads = 0;
  uint64_t phantom_misses = 0;  // NotFound for an always-present key
  uint64_t restarts = 0;
  uint64_t redistributions = 0;
};

AblationResult Run(bool paper_order) {
  TreeOptions options;
  options.min_entries = 8;
  SagivTree tree(options);

  // Permanent keys: multiples of 3 in [3, 60000]. Never deleted.
  constexpr Key kSpan = 60'000;
  for (Key k = 3; k <= kSpan; k += 3) {
    (void)tree.Insert(k, k);
  }
  // Churn keys (k % 3 != 0): inserted and deleted to force under-full
  // nodes everywhere, keeping the compressor busy redistributing around
  // the permanent keys.
  std::atomic<bool> stop{false};
  std::thread churner([&]() {
    Random rng(1);
    while (!stop.load(std::memory_order_acquire)) {
      const Key base = rng.UniformRange(1, kSpan - 200);
      for (Key k = base; k < base + 200; ++k) {
        if (k % 3 != 0) (void)tree.Insert(k, k);
      }
      for (Key k = base; k < base + 200; ++k) {
        if (k % 3 != 0) (void)tree.Delete(k);
      }
    }
  });
  ScanCompressor compressor(&tree);
  compressor.set_paper_write_order(paper_order);
  std::thread compressor_thread([&]() {
    compressor.RunUntil(&stop, std::chrono::milliseconds(0));
  });

  AblationResult result;
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> misses{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(static_cast<uint64_t>(t) + 11);
      for (int i = 0; i < 400'000; ++i) {
        const Key k = rng.UniformRange(1, kSpan / 3) * 3;  // permanent key
        Result<Value> r = tree.Search(k);
        reads.fetch_add(1, std::memory_order_relaxed);
        if (!r.ok()) misses.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true);
  churner.join();
  compressor_thread.join();

  result.reads = reads.load();
  result.phantom_misses = misses.load();
  result.restarts = tree.stats()->Get(StatId::kRestarts);
  result.redistributions = tree.stats()->Get(StatId::kRedistributions);
  return result;
}

}  // namespace
}  // namespace obtree

int main() {
  using namespace obtree;
  PrintBanner(
      "E10 (ablation): why the gaining child is rewritten first",
      "paper order: keys in transit always readable, zero reader "
      "restarts; ablated order: readers stall in restart loops until the "
      "gaining child lands (the low-value check prevents wrong answers)");

  Table table({"write order", "reads of permanent keys", "phantom misses",
               "redistributions", "restarts"});
  const AblationResult paper = Run(/*paper_order=*/true);
  table.AddRow({"paper (gaining child first)", Fmt(paper.reads),
                Fmt(paper.phantom_misses), Fmt(paper.redistributions),
                Fmt(paper.restarts)});
  const AblationResult ablated = Run(/*paper_order=*/false);
  table.AddRow({"ABLATED (parent first)", Fmt(ablated.reads),
                Fmt(ablated.phantom_misses), Fmt(ablated.redistributions),
                Fmt(ablated.restarts)});
  table.Print();
  std::printf(
      "(a phantom miss = Search() returned NotFound for a key that is "
      "never deleted; any nonzero count is a Theorem 1 violation)\n");
  return 0;
}
