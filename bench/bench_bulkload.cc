// Copyright 2026 The obtree Authors.
//
// E11 — bulk construction vs. repeated insertion. Not a paper claim but a
// standard capability a B*-tree library ships with; measured here so the
// README's "orders of magnitude" framing is backed by numbers, and to
// show the fill-factor / shape trade-off of the bottom-up builder.

#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "obtree/core/bulk_loader.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/tree_checker.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

std::vector<std::pair<Key, Value>> MakePairs(uint64_t n) {
  std::vector<std::pair<Key, Value>> pairs;
  pairs.reserve(n);
  for (uint64_t i = 1; i <= n; ++i) pairs.emplace_back(i, i + 1);
  return pairs;
}

TreeOptions K32() {
  TreeOptions opt;
  opt.min_entries = 32;
  return opt;
}

void BM_BuildByInsertion(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const auto pairs = MakePairs(n);
  for (auto _ : state) {
    SagivTree tree(K32());
    for (const auto& [k, v] : pairs) {
      benchmark::DoNotOptimize(tree.Insert(k, v));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_BuildByInsertion)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_BuildByBulkLoad(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const auto pairs = MakePairs(n);
  for (auto _ : state) {
    SagivTree tree(K32());
    Status s = BulkLoad(&tree, pairs, 0.9);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_BuildByBulkLoad)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace obtree

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Shape comparison table (not timed).
  using namespace obtree;
  PrintBanner("E11: construction shape",
              "bulk loading packs nodes at the requested fill; insertion "
              "leaves ~69% average occupancy");
  const auto pairs = MakePairs(200'000);
  Table table({"method", "height", "nodes", "leaf fill"});
  {
    SagivTree tree(K32());
    for (const auto& [k, v] : pairs) (void)tree.Insert(k, v);
    const TreeShape shape = TreeChecker(&tree).ComputeShape();
    table.AddRow({"insertion", Fmt(uint64_t{shape.height}),
                  Fmt(shape.num_nodes), Fmt(shape.avg_leaf_fill)});
  }
  for (double fill : {0.7, 0.9, 1.0}) {
    SagivTree tree(K32());
    (void)BulkLoad(&tree, pairs, fill);
    const TreeShape shape = TreeChecker(&tree).ComputeShape();
    char label[32];
    std::snprintf(label, sizeof(label), "bulk load (fill %.1f)", fill);
    table.AddRow({label, Fmt(uint64_t{shape.height}), Fmt(shape.num_nodes),
                  Fmt(shape.avg_leaf_fill)});
  }
  table.Print();
  return 0;
}
