// Copyright 2026 The obtree Authors.
//
// E9: node-level micro-benchmarks. The paper's cost model counts node
// reads/writes; these measure what one such operation costs on the
// in-memory page substrate: in-node binary search, leaf insert/remove,
// split, merge, redistribution, and the seqlock get/put page copies.

#include <benchmark/benchmark.h>

#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/util/fault_injector.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

Node MakeFullLeaf(uint32_t count) {
  Node n;
  n.Init(0, 0, kPlusInfinity, kInvalidPageId);
  for (uint32_t i = 0; i < count; ++i) {
    n.entries[i] = Entry{static_cast<Key>(i) * 10 + 10, i};
  }
  n.count = count;
  return n;
}

void BM_NodeLowerBound(benchmark::State& state) {
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  Node n = MakeFullLeaf(count);
  Random rng(1);
  for (auto _ : state) {
    const Key k = rng.Uniform(count * 10 + 20);
    benchmark::DoNotOptimize(n.LowerBound(k));
  }
}
BENCHMARK(BM_NodeLowerBound)->Arg(16)->Arg(64)->Arg(254);

void BM_NodeFindLeafValue(benchmark::State& state) {
  Node n = MakeFullLeaf(static_cast<uint32_t>(state.range(0)));
  Random rng(2);
  for (auto _ : state) {
    const Key k = rng.Uniform(static_cast<uint64_t>(state.range(0)) * 10) + 1;
    benchmark::DoNotOptimize(n.FindLeafValue(k));
  }
}
BENCHMARK(BM_NodeFindLeafValue)->Arg(64)->Arg(254);

void BM_NodeInsertRemoveCycle(benchmark::State& state) {
  Node n = MakeFullLeaf(static_cast<uint32_t>(state.range(0)));
  Random rng(3);
  for (auto _ : state) {
    const Key k = rng.Uniform(static_cast<uint64_t>(state.range(0)) * 10) * 10 + 5;
    if (!n.FindLeafValue(k).has_value() && n.count < Node::kMaxEntries) {
      n.InsertLeafEntry(k, 1);
      benchmark::DoNotOptimize(n.RemoveLeafEntry(k));
    }
  }
}
BENCHMARK(BM_NodeInsertRemoveCycle)->Arg(16)->Arg(128)->Arg(253);

void BM_NodeSplit(benchmark::State& state) {
  const Node full = MakeFullLeaf(Node::kMaxEntries - 1);
  for (auto _ : state) {
    Node a = full;
    Node b;
    a.SplitInto(&b, 7);
    benchmark::DoNotOptimize(b.count);
  }
}
BENCHMARK(BM_NodeSplit);

void BM_NodeMerge(benchmark::State& state) {
  Node left = MakeFullLeaf(60);
  left.high = 1000;
  left.link = 5;
  Node right;
  right.Init(0, 1000, kPlusInfinity, kInvalidPageId);
  for (uint32_t i = 0; i < 60; ++i) {
    right.entries[i] = Entry{2000 + static_cast<Key>(i), i};
  }
  right.count = 60;
  for (auto _ : state) {
    Node a = left;
    a.MergeFromRight(right);
    benchmark::DoNotOptimize(a.count);
  }
}
BENCHMARK(BM_NodeMerge);

void BM_NodeRedistribute(benchmark::State& state) {
  Node left_proto = MakeFullLeaf(10);
  left_proto.high = 200;
  left_proto.link = 5;
  Node right_proto;
  right_proto.Init(0, 200, kPlusInfinity, kInvalidPageId);
  for (uint32_t i = 0; i < 200; ++i) {
    right_proto.entries[i] = Entry{1000 + static_cast<Key>(i), i};
  }
  right_proto.count = 200;
  for (auto _ : state) {
    Node a = left_proto;
    Node b = right_proto;
    benchmark::DoNotOptimize(a.RedistributeWithRight(&b, 60));
  }
}
BENCHMARK(BM_NodeRedistribute);

void BM_PageGet(benchmark::State& state) {
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats);
  const PageId id = *pm.Allocate();
  Page w{};
  pm.Put(id, w);
  Page r;
  for (auto _ : state) {
    pm.Get(id, &r);
    benchmark::DoNotOptimize(r.bytes[0]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_PageGet);

// The tentpole comparison at node granularity: one copy-read (BM_PageGet
// moves 4 KB) vs one optimistic in-place probe (header + binary search +
// version validation, no bytes moved).
void BM_PageOptimisticProbe(benchmark::State& state) {
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats);
  const PageId id = *pm.Allocate();
  Page w{};
  Node* n = w.As<Node>();
  n->Init(0, 0, kPlusInfinity, kInvalidPageId);
  for (uint32_t i = 0; i < 254; ++i) {
    n->entries[i] = Entry{static_cast<Key>(i) * 10 + 10, i};
  }
  n->count = 254;
  pm.Put(id, w);
  Random rng(4);
  for (auto _ : state) {
    const Key k = rng.Uniform(2560) + 1;
    const PageManager::ReadGuard g = pm.OptimisticRead(id);
    const NodeView view(g.page()->As<Node>());
    std::optional<Value> v = view.FindLeafValue(k);
    if (!g.Validate()) continue;
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_PageOptimisticProbe);

// Failpoint-gate overhead on the page hot path. With nothing armed the
// gate is one relaxed atomic load folded into BM_PageGet above (compare
// that cell across commits for the <1% disarmed-overhead bar). This cell
// arms an UNRELATED site, so every Get takes the slow path — a registry
// lock + hash lookup that misses — quantifying what merely having any
// failpoint armed costs traffic that never fires one.
void BM_PageGetFaultGateArmedElsewhere(benchmark::State& state) {
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats);
  const PageId id = *pm.Allocate();
  Page w{};
  pm.Put(id, w);
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.probability = 0.0;  // never fires; only the lookup cost remains
  FaultInjector::Instance().Arm("bench-unused-site", spec);
  Page r;
  for (auto _ : state) {
    pm.Get(id, &r);
    benchmark::DoNotOptimize(r.bytes[0]);
  }
  FaultInjector::Instance().DisarmAll();
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_PageGetFaultGateArmedElsewhere);

void BM_PagePut(benchmark::State& state) {
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats);
  const PageId id = *pm.Allocate();
  Page w{};
  for (auto _ : state) {
    pm.Put(id, w);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_PagePut);

// The PR 4 tentpole comparison at node granularity: one copy-mutation
// (Get 4 KB out + edit + Put 4 KB back) vs one in-place mutation under
// the seqlock (WriteGuard bracket + shifted-entry atomic stores only).
// Both alternate insert/remove of the same key so node occupancy is
// stable across iterations.
void BM_PageCopyMutate(benchmark::State& state) {
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats);
  const PageId id = *pm.Allocate();
  Page w{};
  Node* n = w.As<Node>();
  n->Init(0, 0, kPlusInfinity, kInvalidPageId);
  for (uint32_t i = 0; i < 128; ++i) {
    n->entries[i] = Entry{static_cast<Key>(i) * 10 + 10, i};
  }
  n->count = 128;
  pm.Put(id, w);
  Page r;
  bool present = false;
  for (auto _ : state) {
    pm.Lock(id);
    pm.Get(id, &r);
    Node* node = r.As<Node>();
    if (present) {
      node->RemoveLeafEntry(5);
    } else {
      node->InsertLeafEntry(5, 5);
    }
    present = !present;
    pm.Put(id, r);
    pm.Unlock(id);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * kPageSize));
}
BENCHMARK(BM_PageCopyMutate);

void BM_PageInplaceMutate(benchmark::State& state) {
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats);
  const PageId id = *pm.Allocate();
  Page w{};
  Node* n = w.As<Node>();
  n->Init(0, 0, kPlusInfinity, kInvalidPageId);
  for (uint32_t i = 0; i < 128; ++i) {
    n->entries[i] = Entry{static_cast<Key>(i) * 10 + 10, i};
  }
  n->count = 128;
  pm.Put(id, w);
  bool present = false;
  for (auto _ : state) {
    pm.Lock(id);
    PageManager::WriteGuard wg = pm.BeginWrite(id);
    Node* node = wg.page()->As<Node>();
    if (present) {
      benchmark::DoNotOptimize(
          node->RemoveLeafEntryAtInPlace(node->LowerBound(5)));
    } else {
      benchmark::DoNotOptimize(node->InsertLeafEntryInPlace(5, 5));
    }
    present = !present;
    wg.Release();
    pm.Unlock(id);
  }
}
BENCHMARK(BM_PageInplaceMutate);

void BM_PaperLockUncontended(benchmark::State& state) {
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats);
  const PageId id = *pm.Allocate();
  for (auto _ : state) {
    pm.Lock(id);
    pm.Unlock(id);
  }
}
BENCHMARK(BM_PaperLockUncontended);

void BM_EpochGuard(benchmark::State& state) {
  EpochManager epoch;
  for (auto _ : state) {
    EpochManager::Guard guard(&epoch);
    benchmark::DoNotOptimize(guard.start_time());
  }
}
BENCHMARK(BM_EpochGuard);

}  // namespace
}  // namespace obtree

BENCHMARK_MAIN();
