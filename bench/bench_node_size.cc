// Copyright 2026 The obtree Authors.
//
// E8 — the node-size parameter k (Section 2.1 fixes k <= i <= 2k):
// bigger nodes mean higher fanout (shorter trees, fewer page reads per
// search) but more bytes copied per get/put and more contention per lock.
// This bench sweeps k and reports height, search throughput, and mixed
// throughput at a fixed thread count.

#include <cstdio>

#include "obtree/core/sagiv_tree.h"
#include "obtree/core/tree_checker.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

struct SizeRow {
  uint32_t k;
  uint32_t height;
  double fill;
  double search_mops;
  double mixed_mops;
};

SizeRow Run(uint32_t k) {
  TreeOptions options;
  options.min_entries = k;
  SagivTree tree(options);

  WorkloadSpec spec = WorkloadSpec::ReadMostly();
  spec.key_space = 1'000'000;
  spec.preload = 500'000;
  PreloadTree(&tree, spec, 4);

  WorkloadSpec searches = spec;
  searches.search_pct = 1.0;
  searches.insert_pct = searches.delete_pct = searches.scan_pct = 0.0;
  const DriverResult search_result =
      RunWorkload(&tree, searches, /*threads=*/4, 150'000, 11);

  WorkloadSpec mixed = WorkloadSpec::Mixed5050();
  mixed.key_space = spec.key_space;
  const DriverResult mixed_result =
      RunWorkload(&tree, mixed, /*threads=*/4, 150'000, 12);

  const TreeShape shape = TreeChecker(&tree).ComputeShape();
  return SizeRow{k, shape.height, shape.avg_leaf_fill,
                 search_result.MopsPerSec(), mixed_result.MopsPerSec()};
}

}  // namespace
}  // namespace obtree

int main() {
  using namespace obtree;
  PrintBanner("E8: node size (k) sweep",
              "fanout shortens the tree; page-copy cost and per-node "
              "contention push back — the sweet spot sits at moderate k");

  Table table({"k (min entries)", "capacity 2k", "height", "leaf fill",
               "search Mops", "mixed Mops"});
  for (uint32_t k : {4u, 8u, 16u, 32u, 64u, 126u}) {
    const SizeRow row = Run(k);
    table.AddRow({Fmt(static_cast<uint64_t>(row.k)),
                  Fmt(static_cast<uint64_t>(2 * row.k)),
                  Fmt(static_cast<uint64_t>(row.height)), Fmt(row.fill),
                  Fmt(row.search_mops), Fmt(row.mixed_mops)});
  }
  table.Print();
  std::printf("(500k keys preloaded; 4 threads)\n");
  return 0;
}
