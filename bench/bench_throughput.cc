// Copyright 2026 The obtree Authors.
//
// E2 — throughput scaling of the four protocols (Section 1's efficiency
// argument): Sagiv's single-lock updaters and lock-free readers should
// out-scale Lehman-Yao slightly (fewer lock acquisitions, no coupled
// hand-off) and out-scale lock-coupling and a global lock decisively,
// with the gap widening with thread count and write share.
//
// E2c — copy-reads vs optimistic in-place reads on the Sagiv tree: the
// same read-mostly workload with the descent copying 4 KB per node
// visited (optimistic_reads = false) against the version-validated
// in-place read path (the default). This is the PR 2 tentpole measured,
// not asserted.
//
// E2d — copy-writes vs in-place writes on the Sagiv tree: a write-heavy
// workload with every mutation doing the full Get + Put page copy cycle
// (inplace_writes = false) against the seqlock-bracketed in-place
// mutation path (the default), which stores only the shifted entries.
//
// E2f — monotonic insert-only with append-optimized leaves on vs off:
// every key extends the max, so the rightmost fast path skips the
// descent and tail-biased splits keep retired leaves ~full. The 1-thread
// on/off ratio is CI-gated (append_path_speedup_1t >= 1.3).
//
// Rows: thread counts. Columns: Kops/s per tree. One table per mix.
//
// E12 — durability cells on the FileStore backend: load/checkpoint/
// recover wall-clock plus io_real_vs_sim, the cold-read throughput
// through a capped buffer pool (real pread faults) over the same
// workload on the simulated-I/O MemStore pager. All record-only.
//
// Flags: --quick shrinks every cell ~10x (CI smoke). Every cell is also
// recorded to BENCH_throughput.json (ops/s per config) so CI can archive
// the numbers as the repo's perf trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obtree/api/concurrent_map.h"
#include "obtree/util/random.h"

#include "obtree/baseline/coarse_tree.h"
#include "obtree/baseline/lehman_yao_tree.h"
#include "obtree/baseline/lock_coupling_tree.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

// ---------------------------------------------------------------- JSON out

struct JsonSample {
  std::string config;
  int threads;
  double kops;
};

std::vector<JsonSample>& Samples() {
  static std::vector<JsonSample> samples;
  return samples;
}

void Record(const std::string& config, int threads, double kops) {
  Samples().push_back(JsonSample{config, threads, kops});
}

void WriteJson(const char* path, bool quick, double read_path_speedup_1t,
               double write_path_speedup_1t, double mixed_scaling_4t_over_1t,
               double batch_io_speedup_1t, double append_path_speedup_1t,
               double monotonic_scaling_4t_over_1t, double io_real_vs_sim) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"throughput\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  // Scaling ratios are physics-bound by the host: a 1-core container
  // cannot show 4-thread speedup no matter the protocol. Recorded so
  // the CI gate (which runs on a multi-core runner) can tell a real
  // scaling regression from a core-starved host.
  std::fprintf(f, "  \"cpus\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"read_path_speedup_1t\": %.3f,\n",
               read_path_speedup_1t);
  std::fprintf(f, "  \"write_path_speedup_1t\": %.3f,\n",
               write_path_speedup_1t);
  // Single-tree mixed(50/25/25) in-memory scaling, 4 threads over 1:
  // PR 4 removed the copy traffic (0.97x), PR 5's contention-proof paper
  // lock + contention-aware write descent attack the remaining
  // lock/root contention. CI's perf-smoke gates this field >= 1.3 on
  // multi-core runners; < 1.0 means 4 threads are SLOWER than 1.
  std::fprintf(f, "  \"mixed_scaling_4t_over_1t\": %.3f,\n",
               mixed_scaling_4t_over_1t);
  // One thread, simulated I/O, batch width 32: MultiGet's pipelined
  // descents issue one latency wait per round instead of one per page, so
  // the ratio over a serial Get loop measures pure I/O overlap — it needs
  // no extra cores and is CI-gated >= 3x even on a 1-CPU runner.
  std::fprintf(f, "  \"batch_io_speedup_1t\": %.3f,\n", batch_io_speedup_1t);
  // Monotonic insert-only, 1 thread: append-optimized leaves (rightmost
  // fast path + tail-biased splits) over the same workload with
  // append_leaves off. Needs no extra cores, so CI's perf-smoke gates it
  // >= 1.3 even on a 1-CPU runner.
  std::fprintf(f, "  \"append_path_speedup_1t\": %.3f,\n",
               append_path_speedup_1t);
  // Append-on monotonic insert scaling, 4 threads over 1, all threads
  // interleaving ONE key sequence (every insert targets the rightmost
  // leaf — the worst-case writer convoy). Gated >= 1.3 only on
  // multi-core runners, like mixed_scaling_4t_over_1t.
  std::fprintf(f, "  \"monotonic_scaling_4t_over_1t\": %.3f,\n",
               monotonic_scaling_4t_over_1t);
  // Record-only (never gated): real FileStore cold-read throughput over
  // the simulated-20us/page MemStore equivalent. Disk speed varies too
  // much across runners to gate on, but the trajectory file must always
  // carry the number so the real-vs-simulated gap stays visible.
  std::fprintf(f, "  \"io_real_vs_sim\": %.3f,\n", io_real_vs_sim);
  std::fprintf(f, "  \"configs\": [\n");
  const std::vector<JsonSample>& samples = Samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"threads\": %d, "
                 "\"ops_per_sec\": %.0f}%s\n",
                 samples[i].config.c_str(), samples[i].threads,
                 samples[i].kops * 1000.0,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu configs)\n", path, samples.size());
}

// ------------------------------------------------------------- E2a / E2b

template <typename Tree>
double Kops(const WorkloadSpec& spec, int threads, uint64_t ops_per_thread,
            uint64_t io_ns) {
  TreeOptions options;
  options.min_entries = 32;
  options.simulated_io_ns = 0;  // preload at memory speed
  Tree tree(options);
  PreloadTree(&tree, spec, 4);
  tree.internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

// CoarseTree wraps its pager; specialize the access.
template <>
double Kops<CoarseTree>(const WorkloadSpec& spec, int threads,
                        uint64_t ops_per_thread, uint64_t io_ns) {
  TreeOptions options;
  options.min_entries = 32;
  CoarseTree tree(options);
  PreloadTree(&tree, spec, 4);
  tree.inner()->internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.inner()->internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

void RunMix(WorkloadSpec spec, const std::vector<int>& thread_counts,
            uint64_t io_ns, uint64_t ops_per_thread, Key key_space) {
  spec.key_space = key_space;
  spec.preload = spec.insert_pct >= 0.999 ? 0 : key_space / 2;
  std::printf("workload: %s, %llu ops/thread, io=%lluus/page\n",
              spec.Describe().c_str(),
              static_cast<unsigned long long>(ops_per_thread),
              static_cast<unsigned long long>(io_ns / 1000));
  const std::string io_tag = io_ns > 0 ? "+io" : "";
  Table table({"threads", "sagiv", "lehman-yao", "lock-coupling",
               "global-lock", "sagiv/global"});
  for (int threads : thread_counts) {
    const double sagiv =
        Kops<SagivTree>(spec, threads, ops_per_thread, io_ns);
    const double ly =
        Kops<LehmanYaoTree>(spec, threads, ops_per_thread, io_ns);
    const double coupling =
        Kops<LockCouplingTree>(spec, threads, ops_per_thread, io_ns);
    const double coarse =
        Kops<CoarseTree>(spec, threads, ops_per_thread, io_ns);
    Record(spec.name + io_tag + "/sagiv", threads, sagiv);
    Record(spec.name + io_tag + "/lehman-yao", threads, ly);
    Record(spec.name + io_tag + "/lock-coupling", threads, coupling);
    Record(spec.name + io_tag + "/global-lock", threads, coarse);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)), Fmt(sagiv), Fmt(ly),
                  Fmt(coupling), Fmt(coarse), FmtRatio(sagiv, coarse)});
  }
  table.Print();
  std::printf("(cells are Kops/s; higher is better)\n\n");
}

// ------------------------------------------------------------------- E2c

WorkloadSpec ReadPathSpec(Key key_space) {
  WorkloadSpec spec = WorkloadSpec::ReadMostly();
  spec.key_space = key_space;
  spec.preload = key_space / 2;
  return spec;
}

DriverResult ReadPathRun(bool optimistic, int threads,
                         uint64_t ops_per_thread, Key key_space) {
  TreeOptions options;
  options.min_entries = 32;
  options.optimistic_reads = optimistic;
  SagivTree tree(options);
  const WorkloadSpec spec = ReadPathSpec(key_space);
  PreloadTree(&tree, spec, 4);
  return RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
}

double RunReadPathComparison(bool quick) {
  PrintBanner(
      "E2c: copy-reads vs optimistic in-place reads, Sagiv tree",
      "the copy path moves 4 KB per node visited (>= 12 KB per point "
      "lookup on a height-3 tree); the optimistic path reads the header "
      "and one binary-search slot in place and validates the page version "
      "instead. Same workload, same tree — the opt/copy column is the "
      "read-path win; retries/op shows validation pressure");
  const Key key_space = 200'000;
  const uint64_t ops = quick ? 30'000 : 200'000;
  const std::string workload = ReadPathSpec(key_space).name;
  std::printf("workload: %s, %llu ops/thread, %llu preloaded keys\n",
              workload.c_str(), static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(key_space / 2));
  Table table({"threads", "copy", "optimistic", "opt/copy", "retries/op",
               "fallbacks"});
  double speedup_1t = 0.0;
  for (int threads : {1, 2, 4}) {
    const DriverResult copy = ReadPathRun(false, threads, ops, key_space);
    const DriverResult opt = ReadPathRun(true, threads, ops, key_space);
    const double copy_kops = copy.MopsPerSec() * 1000.0;
    const double opt_kops = opt.MopsPerSec() * 1000.0;
    Record(workload + "/copy", threads, copy_kops);
    Record(workload + "/optimistic", threads, opt_kops);
    if (threads == 1 && copy_kops > 0) speedup_1t = opt_kops / copy_kops;
    const double retries_per_op =
        static_cast<double>(opt.stats.Get(StatId::kOptimisticRetries)) /
        static_cast<double>(opt.total_ops);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)), Fmt(copy_kops),
                  Fmt(opt_kops), FmtRatio(opt_kops, copy_kops),
                  Fmt(retries_per_op, 4),
                  Fmt(opt.stats.Get(StatId::kOptimisticFallbacks))});
  }
  table.Print();
  std::printf("(cells are Kops/s; higher is better)\n\n");
  return speedup_1t;
}

// ------------------------------------------------------------------- E2d

WorkloadSpec WritePathSpec(Key key_space) {
  WorkloadSpec spec;
  spec.search_pct = 0.10;
  spec.insert_pct = 0.45;
  spec.delete_pct = 0.45;
  spec.scan_pct = 0.0;
  spec.name = "write-heavy(10/45/45)";
  spec.key_space = key_space;
  spec.preload = key_space / 2;
  return spec;
}

DriverResult WritePathRun(bool inplace, int threads, uint64_t ops_per_thread,
                          Key key_space) {
  TreeOptions options;
  options.min_entries = 32;
  options.inplace_writes = inplace;
  SagivTree tree(options);
  const WorkloadSpec spec = WritePathSpec(key_space);
  PreloadTree(&tree, spec, 4);
  return RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/11);
}

double RunWritePathComparison(bool quick) {
  PrintBanner(
      "E2d: copy-writes vs in-place writes, Sagiv tree",
      "the copy path moves >= 8 KB per mutation (full-page Get under the "
      "lock + full-page Put back) to change one slot; the in-place path "
      "mutates the live page under the paper lock, bracketed by seqlock "
      "odd/even bumps, storing only the shifted entries. inplace/copy is "
      "the write-path win; ip-writes/op counts mutations served in place");
  const Key key_space = 200'000;
  const uint64_t ops = quick ? 30'000 : 200'000;
  const std::string workload = WritePathSpec(key_space).name;
  std::printf("workload: %s, %llu ops/thread, %llu preloaded keys\n",
              workload.c_str(), static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(key_space / 2));
  Table table({"threads", "copy", "inplace", "inplace/copy", "ip-writes/op",
               "fallbacks"});
  double speedup_1t = 0.0;
  for (int threads : {1, 2, 4}) {
    const DriverResult copy = WritePathRun(false, threads, ops, key_space);
    const DriverResult inplace = WritePathRun(true, threads, ops, key_space);
    const double copy_kops = copy.MopsPerSec() * 1000.0;
    const double inplace_kops = inplace.MopsPerSec() * 1000.0;
    Record(workload + "/copy", threads, copy_kops);
    Record(workload + "/inplace", threads, inplace_kops);
    if (threads == 1 && copy_kops > 0) speedup_1t = inplace_kops / copy_kops;
    const double ip_per_op =
        static_cast<double>(inplace.stats.Get(StatId::kInplaceWrites)) /
        static_cast<double>(inplace.total_ops);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)), Fmt(copy_kops),
                  Fmt(inplace_kops), FmtRatio(inplace_kops, copy_kops),
                  Fmt(ip_per_op, 4),
                  Fmt(inplace.stats.Get(StatId::kInplaceFallbacks))});
  }
  table.Print();
  std::printf("(cells are Kops/s; higher is better)\n\n");
  return speedup_1t;
}

// ------------------------------------------------------------------- E2e

WorkloadSpec GetOnlySpec(Key key_space) {
  WorkloadSpec spec;
  spec.search_pct = 1.0;
  spec.insert_pct = 0.0;
  spec.delete_pct = 0.0;
  spec.scan_pct = 0.0;
  spec.name = "get-only(100/0/0)";
  spec.key_space = key_space;
  spec.preload = key_space / 2;
  return spec;
}

DriverResult BatchPathRun(bool batched, int threads, uint64_t ops_per_thread,
                          Key key_space, uint64_t io_ns) {
  TreeOptions options;
  options.min_entries = 32;
  options.simulated_io_ns = 0;  // preload at memory speed
  SagivTree tree(options);
  const WorkloadSpec spec = GetOnlySpec(key_space);
  PreloadTree(&tree, spec, 4);
  tree.internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      batched ? RunWorkloadBatched(&tree, spec, threads, ops_per_thread,
                                   /*batch=*/32, /*seed=*/17)
              : RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/17);
  tree.internal_pager()->set_simulated_io_ns(0);
  return result;
}

double RunBatchComparison(bool quick) {
  PrintBanner(
      "E2e: batched vs serial point lookups (pipelined descent engine)",
      "MultiGet interleaves up to batch_max_inflight descents on one "
      "thread, groups them by target page per level, and issues each "
      "round's simulated-I/O waits together — one latency per round "
      "instead of one per page. The +io rows are the paper's "
      "disk-resident regime, where the overlap (not extra cores) is the "
      "win; the in-memory rows bound the engine's CPU overhead. "
      "coalesced/op counts fetches saved by page-sharing ops");
  const Key key_space = 200'000;
  double gated_speedup = 0.0;
  for (uint64_t io_ns : {uint64_t{0}, uint64_t{20'000}}) {
    const bool io = io_ns > 0;
    const uint64_t ops = io ? (quick ? 2'000 : 20'000)
                            : (quick ? 30'000 : 200'000);
    const std::string tag = GetOnlySpec(key_space).name + (io ? "+io" : "");
    std::printf("workload: %s, %llu ops/thread, io=%lluus/page\n",
                tag.c_str(), static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(io_ns / 1000));
    Table table({"threads", "serial", "batched(32)", "batched/serial",
                 "coalesced/op", "overlapped/op"});
    for (int threads : {1, 4}) {
      // Best-of-3: the 1-thread +io cell is CI-gated, so a miss must mean
      // a real regression, not scheduler noise.
      const int attempts = (io && threads == 1) ? 3 : 1;
      double serial_kops = 0.0;
      double batched_kops = 0.0;
      DriverResult batched_result;
      for (int a = 0; a < attempts; ++a) {
        const DriverResult serial =
            BatchPathRun(false, threads, ops, key_space, io_ns);
        const DriverResult batched =
            BatchPathRun(true, threads, ops, key_space, io_ns);
        serial_kops = std::max(serial_kops, serial.MopsPerSec() * 1000.0);
        if (batched.MopsPerSec() * 1000.0 > batched_kops) {
          batched_kops = batched.MopsPerSec() * 1000.0;
          batched_result = batched;
        }
      }
      Record(tag + "/serial", threads, serial_kops);
      Record(tag + "/batched(32)", threads, batched_kops);
      if (io && threads == 1 && serial_kops > 0) {
        gated_speedup = batched_kops / serial_kops;
      }
      const double per_op = static_cast<double>(batched_result.total_ops);
      table.AddRow(
          {Fmt(static_cast<uint64_t>(threads)), Fmt(serial_kops),
           Fmt(batched_kops), FmtRatio(batched_kops, serial_kops),
           Fmt(static_cast<double>(batched_result.stats.Get(
                   StatId::kBatchPagesCoalesced)) / per_op, 4),
           Fmt(static_cast<double>(batched_result.stats.Get(
                   StatId::kBatchIoOverlapped)) / per_op, 4)});
    }
    table.Print();
    std::printf("(cells are Kops/s; higher is better)\n\n");
  }
  return gated_speedup;
}

// ------------------------------------------------------------------- E2f

DriverResult MonotonicRun(bool append, int threads, uint64_t ops_per_thread) {
  TreeOptions options;
  options.min_entries = 32;
  options.append_leaves = append;
  SagivTree tree(options);
  // Fresh spec per run: the contended preset's shared sequence counter
  // must start at 1 for every cell. With shared_seq every thread draws
  // from ONE atomic sequence, so every insert extends the global max —
  // the pure append adversary (and best case) for the fast path.
  const WorkloadSpec spec = WorkloadSpec::MonotonicContended();
  return RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/23);
}

void RunMonotonicComparison(bool quick, double* append_speedup_1t,
                            double* scaling_4t_over_1t) {
  PrintBanner(
      "E2f: monotonic insert-only, append-optimized leaves on vs off",
      "every key extends the max, so with append_leaves the insert skips "
      "the descent entirely: lock the cached rightmost leaf, validate it "
      "is still the live rightmost and the key still exceeds its last "
      "entry, append in place (no tail shift), and split tail-biased so "
      "retired leaves stay ~100% full instead of ~50%. off/on is the same "
      "workload with the knob cleared; fast-hits/op should approach 1");
  const uint64_t ops = quick ? 30'000 : 200'000;
  std::printf("workload: monotonic-contended, %llu ops/thread\n",
              static_cast<unsigned long long>(ops));
  Table table({"threads", "append-off", "append-on", "on/off", "fast-hits/op",
               "tail-splits"});
  double on_1t = 0.0;
  double on_4t = 0.0;
  for (int threads : {1, 4}) {
    // Best-of-3 everywhere: both the 1-thread speedup and the 4t/1t
    // scaling ratio are CI-gated, so a miss must mean a real regression,
    // not scheduler noise.
    double off_kops = 0.0;
    double on_kops = 0.0;
    DriverResult on_result;
    for (int a = 0; a < 3; ++a) {
      const DriverResult off = MonotonicRun(false, threads, ops);
      const DriverResult on = MonotonicRun(true, threads, ops);
      off_kops = std::max(off_kops, off.MopsPerSec() * 1000.0);
      if (on.MopsPerSec() * 1000.0 > on_kops) {
        on_kops = on.MopsPerSec() * 1000.0;
        on_result = on;
      }
    }
    Record("monotonic-insert/append-off", threads, off_kops);
    Record("monotonic-insert/append-on", threads, on_kops);
    if (threads == 1) {
      on_1t = on_kops;
      if (off_kops > 0) *append_speedup_1t = on_kops / off_kops;
    } else {
      on_4t = on_kops;
    }
    const double hits_per_op =
        static_cast<double>(on_result.stats.Get(StatId::kAppendFastHits)) /
        static_cast<double>(on_result.total_ops);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)), Fmt(off_kops),
                  Fmt(on_kops), FmtRatio(on_kops, off_kops),
                  Fmt(hits_per_op, 4),
                  Fmt(on_result.stats.Get(StatId::kTailSplits))});
  }
  table.Print();
  *scaling_4t_over_1t = on_1t > 0 ? on_4t / on_1t : 0.0;
  std::printf(
      "(cells are Kops/s; higher is better; append-on 4t/1t = %.2fx)\n\n",
      *scaling_4t_over_1t);
}

// The 1->4 thread single-tree scaling cell: mixed(50/25/25) in-memory on
// ONE Sagiv tree. BENCH_sharding.json first exposed the regression here
// (2.18M ops/s at 1 thread -> 1.28M at 4 on the seed write path); PR 4
// recovered it to ~1.0x and PR 5 (contention-proof paper lock) gates it
// at >= 1.3x in CI on multi-core runners. Best-of-3 per thread count,
// like the sharding bench's gated cells: a gate miss must mean a real
// regression, not scheduler noise.
double MeasureMixedScaling(uint64_t ops_per_thread, Key key_space) {
  WorkloadSpec spec = WorkloadSpec::Mixed5050();
  spec.key_space = key_space;
  spec.preload = key_space / 2;
  double kops_1t = 0.0;
  double kops_4t = 0.0;
  for (int threads : {1, 4}) {
    double best = 0.0;
    for (int attempt = 0; attempt < 3; ++attempt) {
      TreeOptions options;
      options.min_entries = 32;
      SagivTree tree(options);
      PreloadTree(&tree, spec, 4);
      const DriverResult r =
          RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/13);
      best = std::max(best, r.MopsPerSec() * 1000.0);
    }
    (threads == 1 ? kops_1t : kops_4t) = best;
    Record("mixed-single-tree/sagiv-inplace", threads, best);
  }
  const double ratio = kops_1t > 0 ? kops_4t / kops_1t : 0.0;
  std::printf(
      "single-tree mixed scaling (best of 3): %.0f Kops/s @1t -> "
      "%.0f Kops/s @4t (4t/1t = %.2fx)\n\n",
      kops_1t, kops_4t, ratio);
  return ratio;
}

// ------------------------------------------------------------------- E12

// Durability cells on the FileStore backend, one thread each:
//   load       — upserts/s into a fresh file-backed map (RAM-speed until
//                the first checkpoint; the gate adds only atomic ops)
//   checkpoint — keys/s through Checkpoint() (dirty-page flush + fsync +
//                manifest rename)
//   recover    — keys/s through Recover() (manifest load + leaf walk)
//   cold-read  — point lookups through a 256-page buffer pool, so most
//                descents fault pages from disk with real pread
// Returns io_real_vs_sim: cold-read Kops/s over the same lookup loop on
// an in-RAM MemStore pager with 20us/page simulated I/O — i.e. how the
// host's real storage stack compares to the model E2b assumes. Record-
// only: real disks vary too much across runners to gate.
double RunPersistenceCells(bool quick) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "obtree_bench_e12").string();
  fs::remove_all(dir);
  const Key n = quick ? 20'000 : 200'000;
  const uint64_t reads = quick ? 4'000 : 40'000;

  using Clock = std::chrono::steady_clock;
  const auto secs = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  MapOptions options;
  options.compression = CompressionMode::kNone;
  options.tree.min_entries = 32;
  options.tree.storage_dir = dir;

  double load_kops = 0.0;
  double checkpoint_kops = 0.0;
  {
    const auto t0 = Clock::now();
    ConcurrentMap map(options);
    for (Key k = 1; k <= n; ++k) {
      (void)map.Upsert(k, k * 3);
    }
    const auto t1 = Clock::now();
    const Status s = map.Checkpoint();
    const auto t2 = Clock::now();
    if (!s.ok()) {
      std::printf("E12 checkpoint failed: %s\n", s.ToString().c_str());
      fs::remove_all(dir);
      return 0.0;
    }
    load_kops = static_cast<double>(n) / secs(t0, t1) / 1000.0;
    checkpoint_kops = static_cast<double>(n) / secs(t1, t2) / 1000.0;
  }

  // Reopen cold behind a capped pool: only 256 of the checkpointed pages
  // fit in RAM, so the lookup loop faults real pages for the rest.
  options.tree.buffer_pool_pages = 256;
  double recover_kops = 0.0;
  double cold_kops = 0.0;
  {
    const auto t0 = Clock::now();
    Result<std::unique_ptr<ConcurrentMap>> recovered =
        ConcurrentMap::Recover(options);
    const auto t1 = Clock::now();
    if (!recovered.ok()) {
      std::printf("E12 recover failed: %s\n",
                  recovered.status().ToString().c_str());
      fs::remove_all(dir);
      return 0.0;
    }
    recover_kops = static_cast<double>(n) / secs(t0, t1) / 1000.0;
    ConcurrentMap& map = **recovered;
    Random rng(17);
    const auto t2 = Clock::now();
    for (uint64_t i = 0; i < reads; ++i) {
      (void)map.Get(rng.UniformRange(1, n));
    }
    const auto t3 = Clock::now();
    cold_kops = static_cast<double>(reads) / secs(t2, t3) / 1000.0;
  }
  fs::remove_all(dir);

  // The simulated-I/O twin: same keys in RAM, every page touch charged
  // the flat 20us/page latency E2b models.
  double sim_kops = 0.0;
  {
    TreeOptions topt;
    topt.min_entries = 32;
    SagivTree tree(topt);
    for (Key k = 1; k <= n; ++k) {
      (void)tree.Upsert(k, k * 3);
    }
    tree.internal_pager()->set_simulated_io_ns(20'000);
    Random rng(17);
    const auto t0 = Clock::now();
    for (uint64_t i = 0; i < reads; ++i) {
      (void)tree.Search(rng.UniformRange(1, n));
    }
    const auto t1 = Clock::now();
    tree.internal_pager()->set_simulated_io_ns(0);
    sim_kops = static_cast<double>(reads) / secs(t0, t1) / 1000.0;
  }

  Record("e12-load/file-store", 1, load_kops);
  Record("e12-checkpoint/file-store", 1, checkpoint_kops);
  Record("e12-recover/file-store", 1, recover_kops);
  Record("e12-coldread/file-store", 1, cold_kops);
  Record("e12-coldread/memstore-sim-io", 1, sim_kops);

  const double ratio = sim_kops > 0 ? cold_kops / sim_kops : 0.0;
  Table table({"cell", "Kops/s"});
  table.AddRow({"load (file-store)", Fmt(load_kops)});
  table.AddRow({"checkpoint (keys/s)", Fmt(checkpoint_kops)});
  table.AddRow({"recover (keys/s)", Fmt(recover_kops)});
  table.AddRow({"cold-read (real I/O)", Fmt(cold_kops)});
  table.AddRow({"cold-read (sim 20us)", Fmt(sim_kops)});
  table.Print();
  std::printf("(io_real_vs_sim = %.2fx; record-only, never gated)\n\n",
              ratio);
  return ratio;
}

}  // namespace
}  // namespace obtree

int main(int argc, char** argv) {
  using namespace obtree;
  // --quick: ~10x fewer ops per cell (CI smoke / slow hosts).
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const uint64_t mem_ops = quick ? 12'000 : 150'000;
  const uint64_t io_ops = quick ? 200 : 2'000;
  const Key key_space = quick ? 40'000 : 400'000;

  const double speedup_1t = RunReadPathComparison(quick);
  const double write_speedup_1t = RunWritePathComparison(quick);
  const double batch_io_speedup = RunBatchComparison(quick);
  double append_speedup_1t = 0.0;
  double monotonic_scaling = 0.0;
  RunMonotonicComparison(quick, &append_speedup_1t, &monotonic_scaling);
  const double mixed_scaling =
      MeasureMixedScaling(quick ? 20'000 : 150'000, quick ? 40'000 : 400'000);

  PrintBanner(
      "E2a: throughput, in-memory regime (io=0)",
      "on a few-core host all protocols are CPU/memory bound; differences "
      "show as per-op lock overhead, not scaling — see E2b for the "
      "disk-resident regime the paper targets");

  const std::vector<int> threads{1, 2, 4, 8};
  RunMix(WorkloadSpec::ReadMostly(), threads, 0, mem_ops, key_space);
  RunMix(WorkloadSpec::Mixed5050(), threads, 0, mem_ops, key_space);
  RunMix(WorkloadSpec::InsertOnly(), threads, 0, mem_ops, key_space);

  PrintBanner(
      "E2b: throughput, disk-resident regime (simulated 20us/page I/O)",
      "the paper's model: nodes live on secondary storage. Non-blocking "
      "protocols overlap I/O across processes, so throughput scales with "
      "concurrency; a global lock serializes every I/O; lock-coupling "
      "stalls whole paths behind writers. The gap widens with threads and "
      "write share.");

  const uint64_t io_ns = 20'000;
  const std::vector<int> io_threads{1, 2, 4, 8, 16};
  RunMix(WorkloadSpec::ReadMostly(), io_threads, io_ns, io_ops, key_space);
  RunMix(WorkloadSpec::Mixed5050(), io_threads, io_ns, io_ops, key_space);
  RunMix(WorkloadSpec::InsertOnly(), io_threads, io_ns, io_ops, key_space);

  WorkloadSpec zipf = WorkloadSpec::Mixed5050();
  zipf.distribution = KeyDistribution::kZipfian;
  zipf.zipf_theta = 0.99;
  zipf.name = "mixed-zipf(50/25/25,theta=.99)";
  RunMix(zipf, io_threads, io_ns, io_ops, key_space);

  PrintBanner(
      "E12: durability cells (FileStore backend, 1 thread)",
      "load/checkpoint/recover wall-clock plus cold reads through a "
      "256-page buffer pool with real pread faults, against the same "
      "lookup loop on the 20us/page simulated-I/O pager E2b models. "
      "Record-only: disk speed varies too much across runners to gate.");
  const double io_real_vs_sim = RunPersistenceCells(quick);

  WriteJson("BENCH_throughput.json", quick, speedup_1t, write_speedup_1t,
            mixed_scaling, batch_io_speedup, append_speedup_1t,
            monotonic_scaling, io_real_vs_sim);
  return 0;
}
