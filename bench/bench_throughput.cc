// Copyright 2026 The obtree Authors.
//
// E2 — throughput scaling of the four protocols (Section 1's efficiency
// argument): Sagiv's single-lock updaters and lock-free readers should
// out-scale Lehman-Yao slightly (fewer lock acquisitions, no coupled
// hand-off) and out-scale lock-coupling and a global lock decisively,
// with the gap widening with thread count and write share.
//
// Rows: thread counts. Columns: Mops/s per tree. One table per mix.

#include <cstdio>
#include <vector>

#include "obtree/baseline/coarse_tree.h"
#include "obtree/baseline/lehman_yao_tree.h"
#include "obtree/baseline/lock_coupling_tree.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

template <typename Tree>
double Kops(const WorkloadSpec& spec, int threads, uint64_t ops_per_thread,
            uint64_t io_ns) {
  TreeOptions options;
  options.min_entries = 32;
  options.simulated_io_ns = 0;  // preload at memory speed
  Tree tree(options);
  PreloadTree(&tree, spec, 4);
  tree.internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

// CoarseTree wraps its pager; specialize the access.
template <>
double Kops<CoarseTree>(const WorkloadSpec& spec, int threads,
                        uint64_t ops_per_thread, uint64_t io_ns) {
  TreeOptions options;
  options.min_entries = 32;
  CoarseTree tree(options);
  PreloadTree(&tree, spec, 4);
  tree.inner()->internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.inner()->internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

void RunMix(WorkloadSpec spec, const std::vector<int>& thread_counts,
            uint64_t io_ns, uint64_t ops_per_thread) {
  spec.key_space = 400'000;
  spec.preload = spec.insert_pct >= 0.999 ? 0 : 200'000;
  std::printf("workload: %s, %llu ops/thread, io=%lluus/page\n",
              spec.Describe().c_str(),
              static_cast<unsigned long long>(ops_per_thread),
              static_cast<unsigned long long>(io_ns / 1000));
  Table table({"threads", "sagiv", "lehman-yao", "lock-coupling",
               "global-lock", "sagiv/global"});
  for (int threads : thread_counts) {
    const double sagiv =
        Kops<SagivTree>(spec, threads, ops_per_thread, io_ns);
    const double ly =
        Kops<LehmanYaoTree>(spec, threads, ops_per_thread, io_ns);
    const double coupling =
        Kops<LockCouplingTree>(spec, threads, ops_per_thread, io_ns);
    const double coarse =
        Kops<CoarseTree>(spec, threads, ops_per_thread, io_ns);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)), Fmt(sagiv), Fmt(ly),
                  Fmt(coupling), Fmt(coarse), FmtRatio(sagiv, coarse)});
  }
  table.Print();
  std::printf("(cells are Kops/s; higher is better)\n\n");
}

}  // namespace
}  // namespace obtree

int main() {
  using namespace obtree;
  PrintBanner(
      "E2a: throughput, in-memory regime (io=0)",
      "on a few-core host all protocols are CPU/memory bound; differences "
      "show as per-op lock overhead, not scaling — see E2b for the "
      "disk-resident regime the paper targets");

  const std::vector<int> threads{1, 2, 4, 8};
  RunMix(WorkloadSpec::ReadMostly(), threads, 0, 150'000);
  RunMix(WorkloadSpec::Mixed5050(), threads, 0, 150'000);
  RunMix(WorkloadSpec::InsertOnly(), threads, 0, 150'000);

  PrintBanner(
      "E2b: throughput, disk-resident regime (simulated 20us/page I/O)",
      "the paper's model: nodes live on secondary storage. Non-blocking "
      "protocols overlap I/O across processes, so throughput scales with "
      "concurrency; a global lock serializes every I/O; lock-coupling "
      "stalls whole paths behind writers. The gap widens with threads and "
      "write share.");

  const uint64_t io_ns = 20'000;
  const std::vector<int> io_threads{1, 2, 4, 8, 16};
  RunMix(WorkloadSpec::ReadMostly(), io_threads, io_ns, 2'000);
  RunMix(WorkloadSpec::Mixed5050(), io_threads, io_ns, 2'000);
  RunMix(WorkloadSpec::InsertOnly(), io_threads, io_ns, 2'000);

  WorkloadSpec zipf = WorkloadSpec::Mixed5050();
  zipf.distribution = KeyDistribution::kZipfian;
  zipf.zipf_theta = 0.99;
  zipf.name = "mixed-zipf(50/25/25,theta=.99)";
  RunMix(zipf, io_threads, io_ns, 2'000);
  return 0;
}
