// Copyright 2026 The obtree Authors.
//
// E2 — throughput scaling of the four protocols (Section 1's efficiency
// argument): Sagiv's single-lock updaters and lock-free readers should
// out-scale Lehman-Yao slightly (fewer lock acquisitions, no coupled
// hand-off) and out-scale lock-coupling and a global lock decisively,
// with the gap widening with thread count and write share.
//
// E2c — copy-reads vs optimistic in-place reads on the Sagiv tree: the
// same read-mostly workload with the descent copying 4 KB per node
// visited (optimistic_reads = false) against the version-validated
// in-place read path (the default). This is the PR 2 tentpole measured,
// not asserted.
//
// Rows: thread counts. Columns: Kops/s per tree. One table per mix.
//
// Flags: --quick shrinks every cell ~10x (CI smoke). Every cell is also
// recorded to BENCH_throughput.json (ops/s per config) so CI can archive
// the numbers as the repo's perf trajectory.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obtree/baseline/coarse_tree.h"
#include "obtree/baseline/lehman_yao_tree.h"
#include "obtree/baseline/lock_coupling_tree.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

// ---------------------------------------------------------------- JSON out

struct JsonSample {
  std::string config;
  int threads;
  double kops;
};

std::vector<JsonSample>& Samples() {
  static std::vector<JsonSample> samples;
  return samples;
}

void Record(const std::string& config, int threads, double kops) {
  Samples().push_back(JsonSample{config, threads, kops});
}

void WriteJson(const char* path, bool quick, double read_path_speedup_1t) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"throughput\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"read_path_speedup_1t\": %.3f,\n",
               read_path_speedup_1t);
  std::fprintf(f, "  \"configs\": [\n");
  const std::vector<JsonSample>& samples = Samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"threads\": %d, "
                 "\"ops_per_sec\": %.0f}%s\n",
                 samples[i].config.c_str(), samples[i].threads,
                 samples[i].kops * 1000.0,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu configs)\n", path, samples.size());
}

// ------------------------------------------------------------- E2a / E2b

template <typename Tree>
double Kops(const WorkloadSpec& spec, int threads, uint64_t ops_per_thread,
            uint64_t io_ns) {
  TreeOptions options;
  options.min_entries = 32;
  options.simulated_io_ns = 0;  // preload at memory speed
  Tree tree(options);
  PreloadTree(&tree, spec, 4);
  tree.internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

// CoarseTree wraps its pager; specialize the access.
template <>
double Kops<CoarseTree>(const WorkloadSpec& spec, int threads,
                        uint64_t ops_per_thread, uint64_t io_ns) {
  TreeOptions options;
  options.min_entries = 32;
  CoarseTree tree(options);
  PreloadTree(&tree, spec, 4);
  tree.inner()->internal_pager()->set_simulated_io_ns(io_ns);
  const DriverResult result =
      RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
  tree.inner()->internal_pager()->set_simulated_io_ns(0);
  return result.MopsPerSec() * 1000.0;
}

void RunMix(WorkloadSpec spec, const std::vector<int>& thread_counts,
            uint64_t io_ns, uint64_t ops_per_thread, Key key_space) {
  spec.key_space = key_space;
  spec.preload = spec.insert_pct >= 0.999 ? 0 : key_space / 2;
  std::printf("workload: %s, %llu ops/thread, io=%lluus/page\n",
              spec.Describe().c_str(),
              static_cast<unsigned long long>(ops_per_thread),
              static_cast<unsigned long long>(io_ns / 1000));
  const std::string io_tag = io_ns > 0 ? "+io" : "";
  Table table({"threads", "sagiv", "lehman-yao", "lock-coupling",
               "global-lock", "sagiv/global"});
  for (int threads : thread_counts) {
    const double sagiv =
        Kops<SagivTree>(spec, threads, ops_per_thread, io_ns);
    const double ly =
        Kops<LehmanYaoTree>(spec, threads, ops_per_thread, io_ns);
    const double coupling =
        Kops<LockCouplingTree>(spec, threads, ops_per_thread, io_ns);
    const double coarse =
        Kops<CoarseTree>(spec, threads, ops_per_thread, io_ns);
    Record(spec.name + io_tag + "/sagiv", threads, sagiv);
    Record(spec.name + io_tag + "/lehman-yao", threads, ly);
    Record(spec.name + io_tag + "/lock-coupling", threads, coupling);
    Record(spec.name + io_tag + "/global-lock", threads, coarse);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)), Fmt(sagiv), Fmt(ly),
                  Fmt(coupling), Fmt(coarse), FmtRatio(sagiv, coarse)});
  }
  table.Print();
  std::printf("(cells are Kops/s; higher is better)\n\n");
}

// ------------------------------------------------------------------- E2c

WorkloadSpec ReadPathSpec(Key key_space) {
  WorkloadSpec spec = WorkloadSpec::ReadMostly();
  spec.key_space = key_space;
  spec.preload = key_space / 2;
  return spec;
}

DriverResult ReadPathRun(bool optimistic, int threads,
                         uint64_t ops_per_thread, Key key_space) {
  TreeOptions options;
  options.min_entries = 32;
  options.optimistic_reads = optimistic;
  SagivTree tree(options);
  const WorkloadSpec spec = ReadPathSpec(key_space);
  PreloadTree(&tree, spec, 4);
  return RunWorkload(&tree, spec, threads, ops_per_thread, /*seed=*/7);
}

double RunReadPathComparison(bool quick) {
  PrintBanner(
      "E2c: copy-reads vs optimistic in-place reads, Sagiv tree",
      "the copy path moves 4 KB per node visited (>= 12 KB per point "
      "lookup on a height-3 tree); the optimistic path reads the header "
      "and one binary-search slot in place and validates the page version "
      "instead. Same workload, same tree — the opt/copy column is the "
      "read-path win; retries/op shows validation pressure");
  const Key key_space = 200'000;
  const uint64_t ops = quick ? 30'000 : 200'000;
  const std::string workload = ReadPathSpec(key_space).name;
  std::printf("workload: %s, %llu ops/thread, %llu preloaded keys\n",
              workload.c_str(), static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(key_space / 2));
  Table table({"threads", "copy", "optimistic", "opt/copy", "retries/op",
               "fallbacks"});
  double speedup_1t = 0.0;
  for (int threads : {1, 2, 4}) {
    const DriverResult copy = ReadPathRun(false, threads, ops, key_space);
    const DriverResult opt = ReadPathRun(true, threads, ops, key_space);
    const double copy_kops = copy.MopsPerSec() * 1000.0;
    const double opt_kops = opt.MopsPerSec() * 1000.0;
    Record(workload + "/copy", threads, copy_kops);
    Record(workload + "/optimistic", threads, opt_kops);
    if (threads == 1 && copy_kops > 0) speedup_1t = opt_kops / copy_kops;
    const double retries_per_op =
        static_cast<double>(opt.stats.Get(StatId::kOptimisticRetries)) /
        static_cast<double>(opt.total_ops);
    table.AddRow({Fmt(static_cast<uint64_t>(threads)), Fmt(copy_kops),
                  Fmt(opt_kops), FmtRatio(opt_kops, copy_kops),
                  Fmt(retries_per_op, 4),
                  Fmt(opt.stats.Get(StatId::kOptimisticFallbacks))});
  }
  table.Print();
  std::printf("(cells are Kops/s; higher is better)\n\n");
  return speedup_1t;
}

}  // namespace
}  // namespace obtree

int main(int argc, char** argv) {
  using namespace obtree;
  // --quick: ~10x fewer ops per cell (CI smoke / slow hosts).
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const uint64_t mem_ops = quick ? 12'000 : 150'000;
  const uint64_t io_ops = quick ? 200 : 2'000;
  const Key key_space = quick ? 40'000 : 400'000;

  const double speedup_1t = RunReadPathComparison(quick);

  PrintBanner(
      "E2a: throughput, in-memory regime (io=0)",
      "on a few-core host all protocols are CPU/memory bound; differences "
      "show as per-op lock overhead, not scaling — see E2b for the "
      "disk-resident regime the paper targets");

  const std::vector<int> threads{1, 2, 4, 8};
  RunMix(WorkloadSpec::ReadMostly(), threads, 0, mem_ops, key_space);
  RunMix(WorkloadSpec::Mixed5050(), threads, 0, mem_ops, key_space);
  RunMix(WorkloadSpec::InsertOnly(), threads, 0, mem_ops, key_space);

  PrintBanner(
      "E2b: throughput, disk-resident regime (simulated 20us/page I/O)",
      "the paper's model: nodes live on secondary storage. Non-blocking "
      "protocols overlap I/O across processes, so throughput scales with "
      "concurrency; a global lock serializes every I/O; lock-coupling "
      "stalls whole paths behind writers. The gap widens with threads and "
      "write share.");

  const uint64_t io_ns = 20'000;
  const std::vector<int> io_threads{1, 2, 4, 8, 16};
  RunMix(WorkloadSpec::ReadMostly(), io_threads, io_ns, io_ops, key_space);
  RunMix(WorkloadSpec::Mixed5050(), io_threads, io_ns, io_ops, key_space);
  RunMix(WorkloadSpec::InsertOnly(), io_threads, io_ns, io_ops, key_space);

  WorkloadSpec zipf = WorkloadSpec::Mixed5050();
  zipf.distribution = KeyDistribution::kZipfian;
  zipf.zipf_theta = 0.99;
  zipf.name = "mixed-zipf(50/25/25,theta=.99)";
  RunMix(zipf, io_threads, io_ns, io_ops, key_space);

  WriteJson("BENCH_throughput.json", quick, speedup_1t);
  return 0;
}
