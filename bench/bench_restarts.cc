// Copyright 2026 The obtree Authors.
//
// E4 — the restart-vs-lock-everything argument (Sections 1 and 5.2):
//
//   "the overhead in restarting some processes is likely to be smaller
//    than in managing queues to grant several types of locks on each
//    node... it is reasonable to assume that the problem occurs
//    infrequently."
//
// We run readers against deleters plus aggressive compression and count
// (a) restarts per million operations, (b) recoveries through deleted-node
// merge pointers (the cheap path that avoids a restart), and, for
// contrast, (c) the number of latch acquisitions the lock-coupling
// alternative pays for the same logical work.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "obtree/baseline/lock_coupling_tree.h"
#include "obtree/core/compression_queue.h"
#include "obtree/core/queue_compressor.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

struct RestartRow {
  const char* scenario;
  uint64_t ops;
  uint64_t restarts;
  uint64_t backtracks;
  uint64_t merge_follows;
  uint64_t link_follows;
};

RestartRow RunScenario(const char* label, bool with_compressors,
                       int reader_threads, int deleter_threads) {
  TreeOptions options;
  options.min_entries = 8;  // small nodes -> maximal restructuring churn
  options.enqueue_underfull_on_delete = with_compressors;
  SagivTree tree(options);
  CompressionQueue queue;
  queue.RegisterWith(tree.epoch());
  if (with_compressors) tree.AttachCompressionQueue(&queue);

  constexpr Key kKeySpace = 200'000;
  for (Key k = 1; k <= kKeySpace; ++k) (void)tree.Insert(k, k);
  tree.stats()->Reset();

  std::atomic<bool> stop{false};
  std::vector<std::thread> background;
  ScanCompressor scanner(&tree);
  QueueCompressor drainer(&tree, &queue);
  if (with_compressors) {
    background.emplace_back(
        [&]() { scanner.RunUntil(&stop, std::chrono::milliseconds(0)); });
    background.emplace_back(
        [&]() { drainer.RunUntil(&stop, std::chrono::milliseconds(0)); });
  }

  constexpr uint64_t kOpsPerThread = 200'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < reader_threads; ++t) {
    workers.emplace_back([&, t]() {
      Random rng(static_cast<uint64_t>(t) + 1);
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        (void)tree.Search(rng.UniformRange(1, kKeySpace));
      }
    });
  }
  for (int t = 0; t < deleter_threads; ++t) {
    workers.emplace_back([&, t]() {
      Random rng(static_cast<uint64_t>(t) + 50);
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        const Key k = rng.UniformRange(1, kKeySpace);
        if (rng.Bernoulli(0.7)) {
          (void)tree.Delete(k);
        } else {
          (void)tree.Insert(k, k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  for (auto& b : background) b.join();

  const StatsSnapshot stats = tree.stats()->Snapshot();
  const uint64_t total_ops =
      kOpsPerThread * static_cast<uint64_t>(reader_threads + deleter_threads);
  return RestartRow{label,
                    total_ops,
                    stats.Get(StatId::kRestarts),
                    stats.Get(StatId::kBacktracks),
                    stats.Get(StatId::kMergePointerFollows),
                    stats.Get(StatId::kLinkFollows)};
}

}  // namespace
}  // namespace obtree

int main() {
  using namespace obtree;
  PrintBanner("E4: restart frequency under compression",
              "being routed to a wrong node is rare; most displaced "
              "readers recover through the deleted node's merge pointer "
              "without restarting");

  Table table({"scenario", "ops", "restarts", "per Mop", "backtracks",
               "merge-ptr hops", "link follows"});
  for (const RestartRow& row : {
           RunScenario("no compression (4R+4W)", false, 4, 4),
           RunScenario("scan+queue compressors (4R+4W)", true, 4, 4),
           RunScenario("compressors, delete-heavy (2R+6W)", true, 2, 6),
       }) {
    table.AddRow({row.scenario, Fmt(row.ops), Fmt(row.restarts),
                  Fmt(static_cast<double>(row.restarts) * 1e6 /
                      static_cast<double>(row.ops)),
                  Fmt(row.backtracks), Fmt(row.merge_follows),
                  Fmt(row.link_follows)});
  }
  table.Print();

  // The alternative the paper argues against: every process locks every
  // node on its path. Count latch acquisitions for the same op volume.
  {
    TreeOptions options;
    options.min_entries = 8;
    LockCouplingTree tree(options);
    WorkloadSpec spec = WorkloadSpec::Mixed5050();
    spec.key_space = 200'000;
    spec.preload = 200'000;
    PreloadTree(&tree, spec, 4);
    tree.stats()->Reset();
    const DriverResult result = RunWorkload(&tree, spec, 8, 200'000, 3);
    std::printf(
        "\nfor comparison, lock-coupling paid %llu latch acquisitions for "
        "%llu ops (%.2f per op) — the standing cost the restart scheme "
        "avoids\n",
        static_cast<unsigned long long>(
            result.stats.Get(StatId::kLocksAcquired)),
        static_cast<unsigned long long>(result.total_ops),
        static_cast<double>(result.stats.Get(StatId::kLocksAcquired)) /
            static_cast<double>(result.total_ops));
  }
  return 0;
}
