// Copyright 2026 The obtree Authors.
//
// Example: a time-series metrics store on top of ConcurrentMap.
//
// Scenario (the classic dense-index workload the B*-tree was designed
// for): writer threads append samples keyed by (timestamp, series) while
// dashboard readers run windowed range queries, and a retention policy
// continuously deletes expired samples. Retention is exactly the
// deletion-heavy pattern that motivates the paper's compression processes:
// without them, expired leaves would waste space forever.
//
//   $ ./time_series_store

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

namespace {

// Key layout: 48-bit timestamp | 16-bit series id — keeps samples of all
// series interleaved in time order, so time-window scans are sequential.
constexpr uint64_t kSeriesBits = 16;

obtree::Key MakeKey(uint64_t timestamp, uint16_t series) {
  return (timestamp << kSeriesBits) | series;
}
uint64_t KeyTimestamp(obtree::Key key) { return key >> kSeriesBits; }
uint16_t KeySeries(obtree::Key key) {
  return static_cast<uint16_t>(key & ((1u << kSeriesBits) - 1));
}

}  // namespace

int main() {
  obtree::MapOptions options;
  options.tree.min_entries = 64;
  options.compression = obtree::CompressionMode::kQueueWorkers;
  options.compression_threads = 2;
  obtree::ConcurrentMap store(options);

  constexpr int kWriters = 4;
  constexpr uint64_t kSamplesPerWriter = 50'000;
  constexpr uint64_t kRetentionWindow = 60'000;  // keep the last 60k ticks

  std::atomic<uint64_t> clock{1};
  std::atomic<bool> done{false};

  // Writers: each owns a set of series and appends at the shared clock.
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w]() {
      obtree::Random rng(static_cast<uint64_t>(w) + 1);
      for (uint64_t i = 0; i < kSamplesPerWriter; ++i) {
        const uint64_t ts = clock.fetch_add(1);
        const uint16_t series =
            static_cast<uint16_t>(w * 16 + rng.Uniform(16));
        const obtree::Value measurement = rng.Uniform(1000);
        (void)store.Insert(MakeKey(ts, series), measurement);
      }
    });
  }

  // Retention: delete everything older than the window. This floods the
  // compression queue — exactly what Section 5.4 is for.
  std::thread reaper([&]() {
    uint64_t reaped_until = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t now = clock.load(std::memory_order_acquire);
      if (now <= kRetentionWindow) continue;
      const uint64_t horizon = now - kRetentionWindow;
      std::vector<obtree::Key> expired;
      store.Scan(MakeKey(reaped_until, 0), MakeKey(horizon, 0),
                 [&](obtree::Key k, obtree::Value) {
                   expired.push_back(k);
                   return expired.size() < 4096;
                 });
      for (obtree::Key k : expired) (void)store.Erase(k);
      if (!expired.empty()) {
        reaped_until = KeyTimestamp(expired.back());
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  // A dashboard reader: aggregate a sliding one-thousand-tick window.
  std::thread dashboard([&]() {
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t now = clock.load(std::memory_order_acquire);
      if (now < 2000) continue;
      uint64_t count = 0;
      uint64_t sum = 0;
      store.Scan(MakeKey(now - 1000, 0), MakeKey(now, 0),
                 [&](obtree::Key, obtree::Value v) {
                   ++count;
                   sum += v;
                   return true;
                 });
      if (count > 0) {
        std::printf("[dashboard] window@%" PRIu64 ": %" PRIu64
                    " samples, mean=%.1f\n",
                    now, count,
                    static_cast<double>(sum) / static_cast<double>(count));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reaper.join();
  dashboard.join();

  // Final retention pass + compaction, then report.
  const uint64_t now = clock.load();
  const uint64_t horizon = now > kRetentionWindow ? now - kRetentionWindow : 0;
  std::vector<obtree::Key> expired;
  store.Scan(1, MakeKey(horizon, 0), [&](obtree::Key k, obtree::Value) {
    expired.push_back(k);
    return true;
  });
  for (obtree::Key k : expired) (void)store.Erase(k);
  store.CompressNow();

  const obtree::TreeShape shape = store.Shape();
  std::printf(
      "\nfinal store: %" PRIu64 " samples within retention, height=%u, "
      "%" PRIu64 " nodes, avg leaf fill %.2f\n",
      store.Size(), shape.height, shape.num_nodes, shape.avg_leaf_fill);

  // Spot-check: per-series counts over the last 10k ticks.
  uint64_t per_series[4] = {0, 0, 0, 0};
  store.Scan(MakeKey(now - 10'000, 0), MakeKey(now, 0),
             [&](obtree::Key k, obtree::Value) {
               per_series[KeySeries(k) / 16]++;
               return true;
             });
  std::printf("last 10k ticks per writer group: %" PRIu64 " %" PRIu64
              " %" PRIu64 " %" PRIu64 "\n",
              per_series[0], per_series[1], per_series[2], per_series[3]);

  const obtree::Status valid = store.ValidateStructure();
  std::printf("structure valid: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
