// Copyright 2026 The obtree Authors.
//
// Example: a dense secondary index for an order table.
//
// Scenario: an OLTP system keeps orders in a heap file; this program
// maintains the dense index (order id -> record handle) that the paper's
// B*-tree models, under a realistic mix of concurrent traffic:
//   * checkout threads inserting fresh orders (ascending ids — the
//     rightmost-leaf hotspot that stresses splits),
//   * customer-service threads doing point lookups,
//   * a fulfillment thread paginating through open orders,
//   * an archiver deleting shipped orders (feeding compression).
//
//   $ ./order_index

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/histogram.h"
#include "obtree/util/random.h"

namespace {

// A record handle encodes (file id, page, slot) like a real heap pointer.
obtree::Value MakeHandle(uint32_t file, uint32_t page, uint16_t slot) {
  return (static_cast<uint64_t>(file) << 48) |
         (static_cast<uint64_t>(page) << 16) | slot;
}

}  // namespace

int main() {
  obtree::MapOptions options;
  options.tree.min_entries = 48;
  options.compression = obtree::CompressionMode::kQueueWorkers;
  obtree::ConcurrentMap index(options);

  constexpr int kCheckoutThreads = 3;
  constexpr int kLookupThreads = 3;
  constexpr uint64_t kOrdersPerThread = 60'000;

  std::atomic<uint64_t> next_order_id{1};
  std::atomic<uint64_t> archived{0};
  std::atomic<bool> done{false};

  // Checkout: allocate ascending order ids; insert index entries.
  std::vector<std::thread> checkouts;
  for (int t = 0; t < kCheckoutThreads; ++t) {
    checkouts.emplace_back([&, t]() {
      obtree::Random rng(static_cast<uint64_t>(t) * 7 + 1);
      for (uint64_t i = 0; i < kOrdersPerThread; ++i) {
        const obtree::Key id = next_order_id.fetch_add(1);
        const obtree::Value handle = MakeHandle(
            static_cast<uint32_t>(t), static_cast<uint32_t>(i / 64),
            static_cast<uint16_t>(i % 64));
        obtree::Status s = index.Insert(id, handle);
        if (!s.ok()) {
          std::printf("insert failed for order %" PRIu64 ": %s\n", id,
                      s.ToString().c_str());
          return;
        }
      }
    });
  }

  // Customer service: point lookups with latency tracking.
  std::vector<std::thread> lookups;
  std::vector<obtree::Histogram> lookup_latency(kLookupThreads);
  for (int t = 0; t < kLookupThreads; ++t) {
    lookups.emplace_back([&, t]() {
      obtree::Random rng(static_cast<uint64_t>(t) + 100);
      obtree::Histogram& hist = lookup_latency[static_cast<size_t>(t)];
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t hi = next_order_id.load(std::memory_order_acquire);
        if (hi < 2) continue;
        const obtree::Key id = rng.UniformRange(1, hi - 1);
        const auto start = std::chrono::steady_clock::now();
        (void)index.Get(id);  // NotFound is fine: it may be archived
        hist.Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
      }
    });
  }

  // Fulfillment: paginate 100 open orders at a time, oldest first.
  std::thread fulfillment([&]() {
    obtree::Key cursor = 1;
    uint64_t processed = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto page = index.ScanLimit(cursor, 100);
      if (page.empty()) {
        cursor = 1;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      processed += page.size();
      cursor = page.back().first + 1;
    }
    std::printf("[fulfillment] processed %" PRIu64 " order pages entries\n",
                processed);
  });

  // Archiver: ship-and-delete the oldest half of the id space, in bursts.
  std::thread archiver([&]() {
    obtree::Key archive_cursor = 1;
    obtree::Random rng(31337);
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t hi = next_order_id.load(std::memory_order_acquire);
      if (hi < 10'000 || archive_cursor > hi / 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      // Archive a burst of up to 2000 oldest orders.
      auto batch = index.ScanLimit(archive_cursor, 2000);
      for (const auto& [id, handle] : batch) {
        if (id > hi / 2) break;
        if (index.Erase(id).ok()) archived.fetch_add(1);
        archive_cursor = id + 1;
      }
    }
  });

  for (auto& c : checkouts) c.join();
  done.store(true, std::memory_order_release);
  for (auto& l : lookups) l.join();
  fulfillment.join();
  archiver.join();

  obtree::Histogram merged;
  for (const auto& h : lookup_latency) merged.Merge(h);
  std::printf("\nlookup latency (ns): %s\n", merged.ToString().c_str());

  index.CompressNow();
  const obtree::TreeShape shape = index.Shape();
  const uint64_t total =
      static_cast<uint64_t>(kCheckoutThreads) * kOrdersPerThread;
  std::printf("orders inserted: %" PRIu64 ", archived: %" PRIu64
              ", live index entries: %" PRIu64 "\n",
              total, archived.load(), index.Size());
  std::printf("index shape after compaction: height=%u nodes=%" PRIu64
              " avg leaf fill %.2f\n",
              shape.height, shape.num_nodes, shape.avg_leaf_fill);
  if (index.Size() != total - archived.load()) {
    std::printf("ERROR: index size mismatch!\n");
    return 1;
  }
  const obtree::Status valid = index.ValidateStructure();
  std::printf("structure valid: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
