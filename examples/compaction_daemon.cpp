// Copyright 2026 The obtree Authors.
//
// Example: watching the compression processes work.
//
// This program drives the tree through build/churn/decay phases and
// prints, after each phase, the space metrics that motivate Section 5 of
// the paper: tree height, node count, average leaf occupancy, and pages
// reclaimed. It runs the same phases twice — once with compression
// disabled (the Lehman-Yao deletion story) and once with the paper's
// background scan compressor — so the space difference is visible
// side by side.
//
//   $ ./compaction_daemon

#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"
#include "obtree/workload/report.h"

namespace {

struct PhaseRow {
  const char* phase;
  uint64_t keys;
  uint32_t height;
  uint64_t nodes;
  double fill;
  uint64_t reclaimed;
};

void RunScenario(obtree::CompressionMode mode, const char* label,
                 std::vector<PhaseRow>* rows) {
  obtree::MapOptions options;
  options.tree.min_entries = 16;
  options.compression = mode;
  obtree::ConcurrentMap map(options);
  obtree::Random rng(20260612);

  auto snapshot = [&](const char* phase) {
    if (mode != obtree::CompressionMode::kNone) {
      // Let background workers catch up, then settle synchronously so the
      // numbers are stable.
      map.CompressNow();
    }
    const obtree::TreeShape shape = map.Shape();
    rows->push_back(PhaseRow{
        phase, map.Size(), shape.height, shape.num_nodes,
        shape.avg_leaf_fill,
        map.Stats().Get(obtree::StatId::kNodesReclaimed)});
  };

  // Phase 1: bulk build 200k keys.
  for (obtree::Key k = 1; k <= 200'000; ++k) {
    (void)map.Insert(k, k);
  }
  snapshot("build 200k");

  // Phase 2: churn — delete and reinsert random keys (steady state).
  for (int i = 0; i < 200'000; ++i) {
    const obtree::Key k = rng.UniformRange(1, 200'000);
    if (rng.Bernoulli(0.5)) {
      (void)map.Erase(k);
    } else {
      (void)map.Insert(k, k);
    }
  }
  snapshot("churn 200k ops");

  // Phase 3: decay — delete 95% of everything (retention expiry).
  for (obtree::Key k = 1; k <= 200'000; ++k) {
    if (k % 20 != 0) (void)map.Erase(k);
  }
  snapshot("decay to 5%");

  // Phase 4: total expiry.
  for (obtree::Key k = 20; k <= 200'000; k += 20) (void)map.Erase(k);
  snapshot("empty");

  std::printf("\n--- %s ---\n", label);
  obtree::Table table(
      {"phase", "keys", "height", "nodes", "avg fill", "reclaimed"});
  for (const PhaseRow& r : *rows) {
    table.AddRow({r.phase, obtree::Fmt(r.keys), obtree::Fmt(uint64_t{r.height}),
                  obtree::Fmt(r.nodes), obtree::Fmt(r.fill),
                  obtree::Fmt(r.reclaimed)});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "compaction daemon demo: identical build/churn/decay phases with and "
      "without the paper's compression process\n");

  std::vector<PhaseRow> without;
  RunScenario(obtree::CompressionMode::kNone,
              "compression OFF (Lehman-Yao deletions)", &without);

  std::vector<PhaseRow> with_scan;
  RunScenario(obtree::CompressionMode::kBackgroundScan,
              "compression ON (background scan, Sections 5.1-5.2)",
              &with_scan);

  // Headline comparison: space at the end of the decay phase.
  const PhaseRow& off = without[2];
  const PhaseRow& on = with_scan[2];
  std::printf(
      "\nafter decaying to 5%% of the data:\n"
      "  without compression: %" PRIu64 " nodes at %.0f%% fill, height %u\n"
      "  with    compression: %" PRIu64 " nodes at %.0f%% fill, height %u\n"
      "  space reduction: %s\n",
      off.nodes, off.fill * 100, off.height, on.nodes, on.fill * 100,
      on.height,
      obtree::FmtRatio(static_cast<double>(off.nodes),
                       static_cast<double>(on.nodes))
          .c_str());
  return 0;
}
