// Copyright 2026 The obtree Authors.
//
// Quickstart: the five-minute tour of obtree's public API.
//
//   $ ./quickstart
//
// Demonstrates: creating a map, point operations, range scans, background
// compression, and the operation counters that expose the paper's locking
// behavior (insertions hold one lock at a time; readers hold none).

#include <cstdio>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/tree_checker.h"

int main() {
  // 1. Create a map. Queue-driven compression (Section 5.4 of Sagiv'86)
  //    runs on one background worker by default.
  obtree::MapOptions options;
  options.tree.min_entries = 32;  // nodes hold 32..64 entries
  options.compression = obtree::CompressionMode::kQueueWorkers;
  obtree::ConcurrentMap map(options);
  if (!map.init_status().ok()) {
    std::printf("bad options: %s\n", map.init_status().ToString().c_str());
    return 1;
  }

  // 2. Point operations. Keys are uint64 in [1, 2^64-2]; values are opaque
  //    64-bit handles (the paper's "pointer to the record").
  for (obtree::Key k = 1; k <= 10000; ++k) {
    obtree::Status s = map.Insert(k, /*value=*/k * 100);
    if (!s.ok()) std::printf("insert %llu failed: %s\n",
                             (unsigned long long)k, s.ToString().c_str());
  }
  std::printf("inserted 10000 keys; size=%llu height=%u\n",
              (unsigned long long)map.Size(), map.Height());

  obtree::Result<obtree::Value> v = map.Get(4242);
  std::printf("Get(4242) -> %llu\n", (unsigned long long)*v);

  // Duplicate inserts are rejected, not overwritten:
  std::printf("Insert(4242, ...) again -> %s\n",
              map.Insert(4242, 1).ToString().c_str());
  // ...but Upsert replaces:
  (void)map.Upsert(4242, 999);
  std::printf("after Upsert, Get(4242) -> %llu\n",
              (unsigned long long)*map.Get(4242));

  // 3. Ordered range scans ride the B-link leaf chain.
  std::printf("keys in [100, 110]:");
  map.Scan(100, 110, [](obtree::Key k, obtree::Value) {
    std::printf(" %llu", (unsigned long long)k);
    return true;
  });
  std::printf("\n");

  // 4. Deletions only remove the record; background compression restores
  //    the half-full invariant and shrinks the tree.
  for (obtree::Key k = 1; k <= 9900; ++k) (void)map.Erase(k);
  std::printf("after deleting 9900 keys: size=%llu height=%u\n",
              (unsigned long long)map.Size(), map.Height());
  map.CompressNow();  // force a synchronous fixpoint for the demo
  const obtree::TreeShape shape = map.Shape();
  std::printf("after compression: height=%u nodes=%llu avg_leaf_fill=%.2f\n",
              shape.height, (unsigned long long)shape.num_nodes,
              shape.avg_leaf_fill);

  // 5. The paper's locking profile, measured on this very run.
  const obtree::StatsSnapshot stats = map.Stats();
  std::printf(
      "locking profile: max locks held simultaneously by any operation "
      "= %llu (Sagiv insertions need exactly 1; compressions up to 3)\n",
      (unsigned long long)stats.max_locks_held);
  std::printf("restarts: %llu, link follows: %llu, merges: %llu\n",
              (unsigned long long)stats.Get(obtree::StatId::kRestarts),
              (unsigned long long)stats.Get(obtree::StatId::kLinkFollows),
              (unsigned long long)stats.Get(obtree::StatId::kMerges));

  // 6. Structural validation (handy in tests and debugging sessions).
  obtree::Status valid = map.ValidateStructure();
  std::printf("structure valid: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
