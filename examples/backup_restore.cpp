// Copyright 2026 The obtree Authors.
//
// Example: crash-safe durability with file-backed checkpoints.
//
// A persistent index checkpoints under live concurrent traffic — the
// checkpoint barrier drains in-flight writers but never blocks readers —
// then the process "crashes" (the map is destroyed with post-checkpoint
// writes unsaved) and the index is recovered from disk. Recovery is
// all-or-nothing at checkpoint granularity: everything acknowledged
// before Checkpoint() returned is back, everything after is gone.
//
//   $ ./example_backup_restore [storage-dir]

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "obtree/api/concurrent_map.h"
#include "obtree/util/random.h"

int main(int argc, char** argv) {
  using namespace obtree;

  const std::string dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() /
                  "obtree_backup_restore_example").string();
  std::filesystem::remove_all(dir);

  MapOptions options;
  options.tree.min_entries = 32;
  options.tree.storage_dir = dir;        // selects the FileStore backend
  options.tree.buffer_pool_pages = 256;  // cap RAM: cold pages fault in
  options.compression = CompressionMode::kNone;

  constexpr Key kStableSpan = 50'000;
  {
    ConcurrentMap live(options);

    // Seed the index: "document id -> storage handle". Stable ids are
    // even; odd ids churn while the checkpoint runs.
    for (Key k = 2; k <= kStableSpan; k += 2) {
      (void)live.Insert(k, k * 5);
    }
    std::printf("live index: %" PRIu64 " stable entries, height %u\n",
                live.Size(), live.Height());

    // Churn traffic keeps running through the whole checkpoint.
    std::atomic<bool> stop{false};
    std::thread churner([&]() {
      Random rng(99);
      while (!stop.load(std::memory_order_acquire)) {
        const Key k = rng.UniformRange(0, kStableSpan / 2 - 1) * 2 + 1;
        if (rng.Bernoulli(0.5)) {
          (void)live.Upsert(k, k);
        } else {
          (void)live.Erase(k);
        }
      }
    });

    Status s = live.Checkpoint();
    stop.store(true);
    churner.join();
    if (!s.ok()) {
      std::printf("checkpoint failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint epoch %" PRIu64 " committed under live churn\n",
                live.checkpoint_epoch());

    // Post-checkpoint writes that the "crash" below throws away.
    for (Key k = 1; k <= 1000; ++k) {
      (void)live.Upsert(kStableSpan + k, 0xdead);
    }
  }  // the map dies here without another checkpoint: the "power cut"

  // Recover from the manifest. Refuses (NotFound) if the directory holds
  // no committed checkpoint.
  Result<std::unique_ptr<ConcurrentMap>> recovered =
      ConcurrentMap::Recover(options);
  if (!recovered.ok()) {
    std::printf("recover failed: %s\n", recovered.status().ToString().c_str());
    return 1;
  }
  ConcurrentMap& map = **recovered;
  std::printf("recovered epoch %" PRIu64 ": %" PRIu64 " entries\n",
              map.checkpoint_epoch(), map.Size());

  // Every stable entry acknowledged before the checkpoint must be back.
  for (Key k = 2; k <= kStableSpan; k += 2) {
    Result<Value> r = map.Get(k);
    if (!r.ok() || *r != k * 5) {
      std::printf("MISSING stable key %" PRIu64 " after recovery\n", k);
      return 1;
    }
  }
  // Every post-checkpoint write must be gone.
  if (map.Get(kStableSpan + 1).ok()) {
    std::printf("unsaved post-checkpoint write survived the crash\n");
    return 1;
  }
  Status valid = map.ValidateStructure();
  std::printf("recovered structure valid: %s\n", valid.ToString().c_str());

  // The recovered map is live: keep writing, checkpoint again, and the
  // epoch advances.
  for (Key k = 1; k <= kStableSpan; k += 2) {
    (void)map.Upsert(k, k * 7);
  }
  Status s2 = map.Checkpoint();
  std::printf("re-checkpoint: %s (epoch %" PRIu64 ")\n",
              s2.ToString().c_str(), map.checkpoint_epoch());

  std::filesystem::remove_all(dir);
  return (valid.ok() && s2.ok()) ? 0 : 1;
}
