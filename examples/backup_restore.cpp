// Copyright 2026 The obtree Authors.
//
// Example: online backup and bulk restore.
//
// A live index keeps serving concurrent traffic while we take a logical
// backup through a cursor (no locks held: the B-link protocol's lock-free
// readers make the backup non-intrusive). The backup is then restored via
// the O(n) bottom-up bulk loader at a chosen fill factor, and verified
// against the source.
//
//   $ ./backup_restore

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <thread>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/bulk_loader.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

int main() {
  using namespace obtree;

  MapOptions options;
  options.tree.min_entries = 32;
  options.compression = CompressionMode::kQueueWorkers;
  ConcurrentMap live(options);

  // Seed the live index: "document id -> storage handle". Stable ids are
  // even; odd ids churn during the backup.
  constexpr Key kStableSpan = 200'000;
  for (Key k = 2; k <= kStableSpan; k += 2) {
    (void)live.Insert(k, k * 5);
  }
  std::printf("live index: %" PRIu64 " stable entries, height %u\n",
              live.Size(), live.Height());

  // Churn traffic runs during the whole backup.
  std::atomic<bool> stop{false};
  std::thread churner([&]() {
    Random rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      const Key k = rng.UniformRange(0, kStableSpan / 2 - 1) * 2 + 1;  // odd
      if (rng.Bernoulli(0.5)) {
        (void)live.Insert(k, k);
      } else {
        (void)live.Erase(k);
      }
    }
  });

  // Online logical backup of the STABLE range via a cursor. We filter to
  // even ids so the verification below is exact despite the churn.
  std::vector<std::pair<Key, Value>> backup;
  ConcurrentMap::Cursor cursor(&live);
  Key key;
  Value value;
  while (cursor.Next(&key, &value)) {
    if (key % 2 == 0) backup.emplace_back(key, value);
  }
  stop.store(true);
  churner.join();
  std::printf("backup captured %zu stable entries while churn ran\n",
              backup.size());

  // Restore into a fresh tree via the bulk loader, tightly packed.
  SagivTree restored(options.tree);
  Status s = BulkLoad(&restored, backup, /*fill=*/0.95);
  if (!s.ok()) {
    std::printf("bulk restore failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const TreeShape shape = TreeChecker(&restored).ComputeShape();
  std::printf("restored tree: %" PRIu64 " keys, height %u, %" PRIu64
              " nodes, leaf fill %.2f\n",
              restored.Size(), shape.height, shape.num_nodes,
              shape.avg_leaf_fill);

  // Verify: every stable entry round-tripped.
  for (const auto& [k, v] : backup) {
    Result<Value> r = restored.Search(k);
    if (!r.ok() || *r != v) {
      std::printf("MISMATCH at key %" PRIu64 "\n", k);
      return 1;
    }
  }
  Status valid = TreeChecker(&restored).CheckStructure();
  std::printf("restored structure valid: %s\n", valid.ToString().c_str());

  // Stream round trip (DumpTree/LoadTree) of the restored tree.
  std::ostringstream blob;
  s = DumpTree(restored, &blob);
  if (!s.ok()) {
    std::printf("dump failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::istringstream in(blob.str());
  auto reloaded = LoadTree(&in);
  if (!reloaded.ok()) {
    std::printf("load failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("stream round trip: %zu bytes -> %" PRIu64 " keys, valid=%s\n",
              blob.str().size(), (*reloaded)->Size(),
              TreeChecker(reloaded->get()).CheckStructure().ToString().c_str());
  return valid.ok() ? 0 : 1;
}
