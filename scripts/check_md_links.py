#!/usr/bin/env python3
# Copyright 2026 The obtree Authors.
"""Markdown link checker for the repo's docs (CI `docs` job).

Checks every [text](target) link in the given markdown files:

  * relative file targets must exist (relative to the containing file);
  * intra-document anchors (#heading) and file#anchor targets must match
    a heading in the target document, using GitHub's slugification;
  * http(s) and mailto links are skipped (no network in CI).

Exits non-zero when any link is broken, so the CI job fails the moment
a doc rots. Usage:

  python3 scripts/check_md_links.py              # README, ROADMAP, docs/*.md
  python3 scripts/check_md_links.py FILE... DIR...

With no arguments the default set is README.md, ROADMAP.md, and every
docs/*.md, resolved relative to the repo root (the script's parent's
parent) — so a newly added design doc is covered without anyone editing
the CI workflow. Directory arguments expand to their *.md files.
"""

import re
import sys
from pathlib import Path

# [text](target) with nesting-free text; skips images' source by treating
# ![alt](src) identically (the src must exist too, which is what we want).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop most
    punctuation. Good enough for ASCII docs like ours."""
    heading = re.sub(r"[`*_]", "", heading.strip()).lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE_RE.sub("", text)  # headings inside fences don't anchor
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(md: Path) -> list:
    broken = []
    text = md.read_text(encoding="utf-8")
    scannable = CODE_FENCE_RE.sub("", text)  # links inside fences are code
    for m in LINK_RE.finditer(scannable):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        dest = md if not file_part else (md.parent / file_part).resolve()
        if not dest.exists():
            broken.append(f"{md}: broken link -> {target} (file missing)")
            continue
        if anchor and dest.suffix == ".md":
            if github_slug(anchor) not in anchors_of(dest):
                broken.append(f"{md}: broken anchor -> {target}")
    return broken


def default_targets() -> list:
    """README.md, ROADMAP.md, and docs/*.md under the repo root."""
    root = Path(__file__).resolve().parent.parent
    targets = [root / "README.md", root / "ROADMAP.md"]
    targets.extend(sorted((root / "docs").glob("*.md")))
    return targets


def main(argv: list) -> int:
    if len(argv) < 2:
        paths = default_targets()
    else:
        paths = []
        for name in argv[1:]:
            path = Path(name)
            # Directory args expand to their markdown files, so the CI
            # invocation keeps working even on shells without globbing.
            if path.is_dir():
                paths.extend(sorted(path.glob("*.md")))
            else:
                paths.append(path)
    broken = []
    checked = 0
    for path in paths:
        if not path.exists():
            broken.append(f"{path}: file does not exist")
            continue
        checked += 1
        broken.extend(check_file(path))
    for line in broken:
        print(line)
    print(f"checked {checked} files: {len(broken)} broken links")
    # Not the raw count: POSIX truncates exit codes mod 256, and 256
    # broken links must not read as success.
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
