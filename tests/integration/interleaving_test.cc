// Copyright 2026 The obtree Authors.
//
// Deterministic interleaving tests: the PageManager test hook pauses a
// protocol thread at an exact step while lock-free readers observe the
// half-finished state. These verify, step by step, the windows Theorem 1
// and Section 5.2 argue about:
//
//   * after a split writes B and A but before the parent post, the new
//     node is reachable only through A's link — searches must find it;
//   * during a merge, after the gaining child is rewritten but before the
//     parent (and then before the deleted child), every key remains
//     readable somewhere;
//   * a reader that catches the deleted child AFTER its rewrite recovers
//     through the merge pointer.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "obtree/core/sagiv_tree.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/core/tree_checker.h"
#include "obtree/core/tree_dump.h"

namespace obtree {
namespace {

// A reusable "pause the other thread at a trigger" gate. The protocol
// thread calls MaybeBlock from the hook; the test thread Awaits the pause,
// inspects the world, then Releases.
class Gate {
 public:
  // Arm the gate: the next hook event matching (op, page) blocks.
  void Arm(std::string op, PageId page) {
    std::lock_guard<std::mutex> l(mu_);
    op_ = std::move(op);
    page_ = page;
    armed_ = true;
    paused_ = false;
    released_ = false;
  }

  // Called from the PageManager hook (protocol thread).
  void MaybeBlock(const char* op, PageId page) {
    std::unique_lock<std::mutex> l(mu_);
    if (!armed_ || op_ != op || page_ != page) return;
    armed_ = false;
    paused_ = true;
    cv_.notify_all();
    cv_.wait(l, [&] { return released_; });
    paused_ = false;
  }

  // Test thread: wait until the protocol thread is paused at the gate.
  void AwaitPaused() {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return paused_; });
  }

  // Test thread: let the protocol thread continue.
  void Release() {
    std::lock_guard<std::mutex> l(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string op_;
  PageId page_ = kInvalidPageId;
  bool armed_ = false;
  bool paused_ = false;
  bool released_ = false;
};

TreeOptions K2() {
  TreeOptions opt;
  opt.min_entries = 2;
  return opt;
}

TEST(InterleavingTest, SplitIsVisibleThroughLinkBeforeParentPost) {
  SagivTree tree(K2());
  // Fill one leaf to capacity (4) under a root leaf... build height 2:
  for (Key k = 10; k <= 60; k += 10) ASSERT_TRUE(tree.Insert(k, k).ok());
  ASSERT_GE(tree.Height(), 2u);

  // The inserter's next leaf split performs: put(B), put(A), unlock(A),
  // then lock(parent). Pause at the parent lock: the pair for B is not
  // posted anywhere, B is reachable only via A's link.
  Gate gate;
  std::atomic<bool> arm_on_next_lock{false};
  std::atomic<int> puts_seen{0};
  const PrimeBlockData pb = tree.internal_prime()->Read();
  const PageId parent = pb.root();
  tree.internal_pager()->SetTestHook([&](const char* op, PageId page) {
    gate.MaybeBlock(op, page);
  });
  gate.Arm("lock", parent);

  // Find a key that lands in the fullest leaf; inserting 11..14 overflows
  // the first leaf eventually. Run the inserter in a thread.
  std::thread inserter([&]() {
    for (Key k = 11; k <= 14; ++k) {
      ASSERT_TRUE(tree.Insert(k, k * 7).ok()) << k;
    }
  });

  gate.AwaitPaused();
  // The inserter is frozen before posting the separator. Every key —
  // including those that moved into the fresh right node — must be
  // findable RIGHT NOW by a concurrent reader, through the link.
  const uint64_t link_follows_before =
      tree.stats()->Get(StatId::kLinkFollows);
  for (Key k : {10, 11, 20, 30, 40, 50, 60}) {
    Result<Value> r = tree.Search(k);
    ASSERT_TRUE(r.ok()) << "key " << k << " invisible mid-split\n"
                        << DumpStructureToString(tree);
  }
  EXPECT_GT(tree.stats()->Get(StatId::kLinkFollows), link_follows_before)
      << "expected at least one search to traverse the link";
  (void)puts_seen;
  (void)arm_on_next_lock;

  gate.Release();
  inserter.join();
  tree.internal_pager()->SetTestHook(nullptr);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(InterleavingTest, MergeKeepsEveryKeyReadableAtEachStep) {
  SagivTree tree(K2());
  // Hand-build via inserts+deletes: get two adjacent under-full leaves.
  for (Key k = 10; k <= 60; k += 10) ASSERT_TRUE(tree.Insert(k, k).ok());
  // Leaves are [10,20,30] and [40,50,60]; k=2, so dropping the left leaf
  // to one entry makes the pair mergeable (1 + 2 <= capacity 4).
  ASSERT_TRUE(tree.Delete(20).ok());
  ASSERT_TRUE(tree.Delete(30).ok());
  ASSERT_TRUE(tree.Delete(50).ok());
  ASSERT_GE(tree.Height(), 2u);
  const PrimeBlockData pb = tree.internal_prime()->Read();
  const PageId parent = pb.root();

  // The merge writes: put(left), put(parent), put(right). Pause before
  // put(parent): left already holds everything, parent still routes to
  // both, right still shows its old image.
  Gate gate;
  tree.internal_pager()->SetTestHook(
      [&](const char* op, PageId page) { gate.MaybeBlock(op, page); });
  gate.Arm("put", parent);

  ScanCompressor compressor(&tree);
  std::thread compressor_thread([&]() { compressor.FullPass(); });

  gate.AwaitPaused();
  // Mid-merge: every surviving key readable.
  for (Key k : {10, 40, 60}) {
    ASSERT_TRUE(tree.Search(k).ok())
        << "key " << k << " invisible mid-merge (before parent rewrite)\n"
        << DumpStructureToString(tree);
  }
  gate.Release();
  compressor_thread.join();
  tree.internal_pager()->SetTestHook(nullptr);

  for (Key k : {10, 40, 60}) ASSERT_TRUE(tree.Search(k).ok()) << k;
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(tree.stats()->Get(StatId::kMerges), 0u);
}

TEST(InterleavingTest, ReaderRecoversThroughMergePointer) {
  SagivTree tree(K2());
  for (Key k = 10; k <= 60; k += 10) ASSERT_TRUE(tree.Insert(k, k).ok());
  // Leaves are [10,20,30] and [40,50,60]; k=2, so dropping the left leaf
  // to one entry makes the pair mergeable (1 + 2 <= capacity 4).
  ASSERT_TRUE(tree.Delete(20).ok());
  ASSERT_TRUE(tree.Delete(30).ok());
  ASSERT_TRUE(tree.Delete(50).ok());
  ASSERT_GE(tree.Height(), 2u);

  // Identify the two leaves that will merge: leftmost leaf and its link.
  const PrimeBlockData pb = tree.internal_prime()->Read();
  Page buf;
  tree.internal_pager()->Get(pb.leftmost[0], &buf);
  const PageId right_leaf = buf.As<Node>()->link;
  ASSERT_NE(right_leaf, kInvalidPageId);

  // Pause the compressor right before it UNLOCKS the deleted right leaf —
  // i.e. after put(left), put(parent), put(right=deleted). A reader whose
  // "stale" route still points at the right leaf must hop through the
  // merge pointer.
  Gate gate;
  tree.internal_pager()->SetTestHook(
      [&](const char* op, PageId page) { gate.MaybeBlock(op, page); });
  gate.Arm("unlock", right_leaf);

  ScanCompressor compressor(&tree);
  std::thread compressor_thread([&]() { compressor.FullPass(); });
  gate.AwaitPaused();

  // Read the deleted leaf directly (simulating a reader that obtained the
  // pointer before the merge): it must carry the deletion bit and a merge
  // pointer to the absorbing node, and a normal search still works.
  tree.internal_pager()->Get(right_leaf, &buf);
  const Node* dead = buf.As<Node>();
  EXPECT_TRUE(dead->is_deleted());
  EXPECT_NE(dead->merge_target, kInvalidPageId);
  for (Key k : {10, 40, 60}) ASSERT_TRUE(tree.Search(k).ok()) << k;

  gate.Release();
  compressor_thread.join();
  tree.internal_pager()->SetTestHook(nullptr);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(InterleavingTest, InsertBlockedByLockProceedsAfterRelease) {
  // A writer paused while HOLDING a leaf lock must not block readers (the
  // paper's central storage-model property), and a second writer on the
  // same leaf waits and then succeeds.
  SagivTree tree(K2());
  for (Key k = 10; k <= 30; k += 10) ASSERT_TRUE(tree.Insert(k, k).ok());
  const PageId leaf = *tree.internal_FindNodeAtLevel(10, 0, nullptr);

  Gate gate;
  tree.internal_pager()->SetTestHook(
      [&](const char* op, PageId page) { gate.MaybeBlock(op, page); });
  gate.Arm("put", leaf);  // pause writer 1 inside its critical section

  std::thread writer1([&]() { ASSERT_TRUE(tree.Insert(11, 11).ok()); });
  gate.AwaitPaused();

  // Readers sail through the locked, mid-rewrite leaf.
  for (Key k : {10, 20, 30}) ASSERT_TRUE(tree.Search(k).ok()) << k;
  // A second writer queues behind the paper lock.
  std::atomic<bool> writer2_done{false};
  std::thread writer2([&]() {
    ASSERT_TRUE(tree.Insert(12, 12).ok());
    writer2_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer2_done.load()) << "writer 2 ignored the paper lock";

  gate.Release();
  writer1.join();
  writer2.join();
  EXPECT_TRUE(writer2_done.load());
  tree.internal_pager()->SetTestHook(nullptr);
  for (Key k : {10, 11, 12, 20, 30}) ASSERT_TRUE(tree.Search(k).ok()) << k;
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace obtree
