// Copyright 2026 The obtree Authors.
//
// Multi-threaded integration tests: Theorem 1 (searches, insertions,
// deletions are correct and deadlock free) and Theorem 2 (adding any
// number of compression processes stays correct). Each test hammers the
// tree from several threads and then validates structure and data at
// quiescence; several also validate *during* execution (acked inserts must
// be visible to readers).

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/core/compression_queue.h"
#include "obtree/core/queue_compressor.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

TreeOptions SmallNodes(uint32_t k = 2) {
  TreeOptions opt;
  opt.min_entries = k;
  return opt;
}

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 4 : static_cast<int>(n);
}

TEST(ConcurrentInsertTest, DisjointRangesAllLand) {
  SagivTree tree(SmallNodes(4));
  const int threads = std::min(8, HardwareThreads());
  constexpr Key kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&tree, t]() {
      const Key base = static_cast<Key>(t) * kPerThread + 1;
      for (Key k = base; k < base + kPerThread; ++k) {
        ASSERT_TRUE(tree.Insert(k, k * 2).ok()) << k;
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(tree.Size(), static_cast<uint64_t>(threads) * kPerThread);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (Key k = 1; k <= threads * kPerThread; ++k) {
    ASSERT_TRUE(tree.Search(k).ok()) << k;
  }
  // The headline claim under real concurrency: one lock at a time.
  EXPECT_EQ(tree.stats()->max_locks_held(), 1u);
}

TEST(ConcurrentInsertTest, OverlappingKeysExactlyOneWins) {
  SagivTree tree(SmallNodes(4));
  const int threads = std::min(8, HardwareThreads());
  constexpr Key kKeys = 20000;
  std::atomic<uint64_t> wins{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Random rng(1000 + static_cast<uint64_t>(t));
      std::vector<Key> keys;
      keys.reserve(kKeys);
      for (Key k = 1; k <= kKeys; ++k) keys.push_back(k);
      rng.Shuffle(&keys);
      uint64_t local = 0;
      for (Key k : keys) {
        Status s = tree.Insert(k, static_cast<Value>(t));
        if (s.ok()) {
          ++local;
        } else {
          ASSERT_TRUE(s.IsAlreadyExists()) << s.ToString();
        }
      }
      wins.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  // Every key inserted exactly once across all threads.
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(tree.Size(), kKeys);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ConcurrentReadWriteTest, AckedInsertsAreImmediatelyVisible) {
  SagivTree tree(SmallNodes(4));
  constexpr Key kN = 30000;
  std::atomic<Key> high_water{0};
  std::atomic<bool> failed{false};

  std::thread writer([&]() {
    for (Key k = 1; k <= kN; ++k) {
      ASSERT_TRUE(tree.Insert(k, k + 1).ok());
      high_water.store(k, std::memory_order_release);
    }
  });
  const int readers = std::min(4, HardwareThreads() - 1);
  std::vector<std::thread> reader_threads;
  for (int t = 0; t < readers; ++t) {
    reader_threads.emplace_back([&, t]() {
      Random rng(static_cast<uint64_t>(t) + 55);
      while (high_water.load(std::memory_order_acquire) < kN) {
        const Key hw = high_water.load(std::memory_order_acquire);
        if (hw == 0) continue;
        const Key k = rng.UniformRange(1, hw);
        Result<Value> r = tree.Search(k);
        if (!r.ok() || *r != k + 1) {
          failed.store(true);
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& r : reader_threads) r.join();
  EXPECT_FALSE(failed.load()) << "an acked insert was invisible";
}

TEST(ConcurrentMixedTest, InsertDeleteSearchStress) {
  SagivTree tree(SmallNodes(3));
  const int threads = std::min(8, HardwareThreads());
  constexpr int kOpsPerThread = 30000;
  constexpr Key kKeySpace = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Random rng(777 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = rng.UniformRange(1, kKeySpace);
        const double p = rng.NextDouble();
        if (p < 0.4) {
          (void)tree.Insert(k, k);
        } else if (p < 0.7) {
          (void)tree.Delete(k);
        } else {
          Result<Value> r = tree.Search(k);
          if (r.ok()) {
            ASSERT_EQ(*r, k);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  // Size must equal the number of reachable keys (internal consistency).
  uint64_t counted = 0;
  tree.Scan(1, kMaxUserKey, [&](Key, Value) {
    ++counted;
    return true;
  });
  EXPECT_EQ(counted, tree.Size());
}

TEST(ConcurrentCompressionTest, ScanCompressorRunsAlongsideUpdaters) {
  SagivTree tree(SmallNodes(3));
  std::atomic<bool> stop{false};
  ScanCompressor compressor(&tree);
  std::thread compressor_thread(
      [&]() { compressor.RunUntil(&stop, std::chrono::milliseconds(0)); });

  const int threads = std::min(6, HardwareThreads());
  constexpr int kOpsPerThread = 20000;
  constexpr Key kKeySpace = 3000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Random rng(31 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = rng.UniformRange(1, kKeySpace);
        const double p = rng.NextDouble();
        if (p < 0.35) {
          (void)tree.Insert(k, k * 5);
        } else if (p < 0.75) {
          (void)tree.Delete(k);  // delete-heavy: feed the compressor
        } else {
          Result<Value> r = tree.Search(k);
          if (r.ok()) {
            ASSERT_EQ(*r, k * 5);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  compressor_thread.join();

  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  // The compressor did real work concurrently.
  EXPECT_GT(tree.stats()->Get(StatId::kMerges) +
                tree.stats()->Get(StatId::kRedistributions),
            0u);
}

TEST(ConcurrentCompressionTest, MultipleQueueCompressorsSharedQueue) {
  // Deployment (2) of Section 5.4: several compression processes share one
  // queue, running with several updater threads.
  TreeOptions opt = SmallNodes(3);
  opt.enqueue_underfull_on_delete = true;
  SagivTree tree(opt);
  CompressionQueue queue;
  queue.RegisterWith(tree.epoch());
  tree.AttachCompressionQueue(&queue);

  std::atomic<bool> stop{false};
  constexpr int kCompressors = 3;
  std::vector<std::thread> compressors;
  std::vector<std::unique_ptr<QueueCompressor>> workers_c;
  for (int c = 0; c < kCompressors; ++c) {
    workers_c.push_back(std::make_unique<QueueCompressor>(&tree, &queue));
    compressors.emplace_back([&stop, qc = workers_c.back().get()]() {
      qc->RunUntil(&stop, std::chrono::milliseconds(0));
    });
  }

  const int threads = std::min(6, HardwareThreads());
  constexpr int kOpsPerThread = 20000;
  constexpr Key kKeySpace = 2500;
  std::vector<std::thread> updaters;
  for (int t = 0; t < threads; ++t) {
    updaters.emplace_back([&, t]() {
      Random rng(91 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = rng.UniformRange(1, kKeySpace);
        const double p = rng.NextDouble();
        if (p < 0.35) {
          (void)tree.Insert(k, k);
        } else if (p < 0.75) {
          (void)tree.Delete(k);
        } else {
          Result<Value> r = tree.Search(k);
          if (r.ok()) {
            ASSERT_EQ(*r, k);
          }
        }
      }
    });
  }
  for (auto& w : updaters) w.join();
  stop.store(true);
  for (auto& c : compressors) c.join();
  // Settle leftovers single-threadedly so the strict invariant can hold.
  QueueCompressor(&tree, &queue).Drain();

  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  uint64_t counted = 0;
  tree.Scan(1, kMaxUserKey, [&](Key, Value) {
    ++counted;
    return true;
  });
  EXPECT_EQ(counted, tree.Size());
}

TEST(ConcurrentCompressionTest, ScansSurviveCompression) {
  TreeOptions opt = SmallNodes(2);
  opt.enqueue_underfull_on_delete = true;
  SagivTree tree(opt);
  CompressionQueue queue;
  queue.RegisterWith(tree.epoch());
  tree.AttachCompressionQueue(&queue);
  for (Key k = 1; k <= 5000; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());

  std::atomic<bool> stop{false};
  QueueCompressor qc(&tree, &queue);
  std::thread compressor(
      [&]() { qc.RunUntil(&stop, std::chrono::milliseconds(0)); });
  std::thread deleter([&]() {
    // Delete even keys while scanners run.
    for (Key k = 2; k <= 5000; k += 2) ASSERT_TRUE(tree.Delete(k).ok());
  });
  std::atomic<bool> scan_failed{false};
  std::thread scanner([&]() {
    for (int round = 0; round < 50; ++round) {
      Key prev = 0;
      tree.Scan(1, 5000, [&](Key k, Value v) {
        // Keys must come back strictly increasing with correct values;
        // odd keys are never deleted so they must all be present.
        if (k <= prev || v != k) scan_failed.store(true);
        prev = k;
        return true;
      });
    }
  });
  deleter.join();
  scanner.join();
  stop.store(true);
  compressor.join();

  EXPECT_FALSE(scan_failed.load());
  // All odd keys survive.
  for (Key k = 1; k <= 4999; k += 2) ASSERT_TRUE(tree.Search(k).ok()) << k;
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(DeadlockTest, TinyNodesMaximumContention) {
  // Adversarial configuration: capacity-4 nodes (the smallest legal k) so
  // splits are constant, deep tree, all threads in the same tiny key
  // range, a scan compressor AND two queue compressors running.
  // Completion within the test timeout demonstrates deadlock freedom
  // (Theorem 2).
  TreeOptions opt = SmallNodes(2);
  opt.enqueue_underfull_on_delete = true;
  SagivTree tree(opt);
  CompressionQueue queue;
  queue.RegisterWith(tree.epoch());
  tree.AttachCompressionQueue(&queue);

  std::atomic<bool> stop{false};
  ScanCompressor sc(&tree);
  QueueCompressor qc1(&tree, &queue);
  QueueCompressor qc2(&tree, &queue);
  std::thread t1([&]() { sc.RunUntil(&stop, std::chrono::milliseconds(0)); });
  std::thread t2(
      [&]() { qc1.RunUntil(&stop, std::chrono::milliseconds(0)); });
  std::thread t3(
      [&]() { qc2.RunUntil(&stop, std::chrono::milliseconds(0)); });

  const int threads = std::min(8, HardwareThreads());
  std::vector<std::thread> updaters;
  for (int t = 0; t < threads; ++t) {
    updaters.emplace_back([&, t]() {
      Random rng(5 + static_cast<uint64_t>(t));
      for (int i = 0; i < 8000; ++i) {
        const Key k = rng.UniformRange(1, 150);  // hot key range
        if (rng.Bernoulli(0.5)) {
          (void)tree.Insert(k, k);
        } else {
          (void)tree.Delete(k);
        }
      }
    });
  }
  for (auto& w : updaters) w.join();
  stop.store(true);
  t1.join();
  t2.join();
  t3.join();
  QueueCompressor(&tree, &queue).Drain();

  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ReclamationTest, NoPageReusedUnderActiveGuards) {
  // Torture the §5.3 rule: readers continuously traverse while compression
  // deletes and reclaims pages. Any premature reuse shows up as a checker
  // or search failure (reused pages would contain foreign nodes).
  TreeOptions opt = SmallNodes(2);
  opt.enqueue_underfull_on_delete = true;
  SagivTree tree(opt);
  CompressionQueue queue;
  queue.RegisterWith(tree.epoch());
  tree.AttachCompressionQueue(&queue);

  std::atomic<bool> stop{false};
  QueueCompressor qc(&tree, &queue);
  std::thread compressor(
      [&]() { qc.RunUntil(&stop, std::chrono::milliseconds(0)); });

  std::atomic<bool> failed{false};
  std::thread churner([&]() {
    for (int round = 0; round < 60; ++round) {
      for (Key k = 1; k <= 400; ++k) {
        if (!tree.Insert(k, k + 9).ok()) failed.store(true);
      }
      for (Key k = 1; k <= 400; ++k) {
        if (!tree.Delete(k).ok()) failed.store(true);
      }
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(static_cast<uint64_t>(t) * 3 + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const Key k = rng.UniformRange(1, 400);
        Result<Value> r = tree.Search(k);
        if (r.ok() && *r != k + 9) failed.store(true);
      }
    });
  }
  churner.join();
  stop.store(true);
  compressor.join();
  for (auto& r : readers) r.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(tree.stats()->Get(StatId::kNodesReclaimed), 0u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace obtree
