// Copyright 2026 The obtree Authors.
//
// Fault-injection stress harness: mixed traffic + live rebalancing while
// the FaultInjector fires page-fetch errors, kills pool workers mid-drain,
// and fails migration batches. The schedule is fully determined by one
// seed (override with OBTREE_FAULT_SEED=<n>); the seed is printed so a
// failing run can be replayed exactly.
//
// Each worker thread owns the keys congruent to its index mod kThreads,
// so it can keep an exact model of its slice. The only concession to
// injected faults: an Insert/Erase that returns Unavailable may or may
// not have taken effect (the fault can land after the leaf mutation, on
// the ascent), so such keys are marked "uncertain" and the audit accepts
// either presence — but never a wrong value, a ghost key some thread
// believes absent, or a lost key some thread believes present.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/api/sharded_map.h"
#include "obtree/core/background_pool.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/fault_injector.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

uint64_t SeedFromEnv() {
  const char* env = std::getenv("OBTREE_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x0b7ee2026u;  // fixed default: CI runs are reproducible
}

class FaultStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = SeedFromEnv();
    // Printed unconditionally: on failure this line IS the repro recipe.
    std::cout << "[fault-stress] OBTREE_FAULT_SEED=" << seed_ << std::endl;
    RecordProperty("fault_seed", static_cast<int>(seed_ & 0x7fffffff));
  }
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }

  uint64_t seed_ = 0;
};

// The headline scenario from the issue: 8-thread churn with rebalancing
// enabled, >=1% page-fetch errors, worker kills, and migration-batch
// failures — must end with clean structure, no lost or duplicated keys,
// and the degradation counters visible in Stats()/PoolStats().
TEST_F(FaultStressTest, MixedTrafficSurvivesInjectedFaults) {
  constexpr int kThreads = 8;
  constexpr Key kKeySpace = 16'384;
  constexpr int kOpsPerThread = 30'000;

  ShardOptions opt;
  opt.num_shards = 2;
  opt.key_space_hint = kKeySpace;
  opt.compression = CompressionMode::kQueueWorkers;
  opt.pool_threads = 3;
  opt.tree.min_entries = 3;
  opt.rebalance.enabled = true;
  opt.rebalance.period_ms = 2;
  opt.rebalance.hotness_threshold = 1.5;
  opt.rebalance.cold_threshold = 0.4;
  opt.rebalance.min_shards = 1;
  opt.rebalance.max_shards = 16;
  opt.rebalance.min_ops_per_period = 256;
  opt.rebalance.min_keys_to_split = 64;
  opt.rebalance.migration_batch = 32;
  opt.rebalance.cooldown_periods = 1;
  opt.rebalance.migration_retry_limit = 3;
  opt.rebalance.breaker_cooldown_periods = 8;
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());

  // Per-key model, written only by the key's owning thread (key mod
  // kThreads), read only after the join below.
  enum : uint8_t { kAbsent = 0, kPresent = 1, kUncertain = 2 };
  std::vector<uint8_t> model(kKeySpace + 1, kAbsent);
  const auto value_of = [](Key k) { return static_cast<Value>(k + 7); };

  // Arm the storm. "get" fires on ~1% of page fetches (the fetch layer
  // retries, so almost all of these heal transparently); "pool-worker"
  // kills a worker every 1500 scheduling rounds; "pool-drain" kills one
  // mid-drain-batch occasionally; every fourth migration batch fails.
  {
    FaultSpec get_err;
    get_err.action = FaultAction::kError;
    get_err.probability = 0.01;
    get_err.seed = seed_;
    FaultInjector::Instance().Arm("get", get_err);

    FaultSpec worker_kill;
    worker_kill.action = FaultAction::kError;
    worker_kill.every_nth = 1500;
    worker_kill.seed = seed_ + 1;
    FaultInjector::Instance().Arm("pool-worker", worker_kill);

    FaultSpec drain_kill;
    drain_kill.action = FaultAction::kError;
    drain_kill.probability = 0.001;
    drain_kill.seed = seed_ + 2;
    FaultInjector::Instance().Arm("pool-drain", drain_kill);

    FaultSpec batch_fail;
    batch_fail.action = FaultAction::kError;
    batch_fail.probability = 0.25;
    batch_fail.seed = seed_ + 3;
    FaultInjector::Instance().Arm("migration-batch", batch_fail);
  }

  std::atomic<uint64_t> wrong_values{0};
  std::atomic<uint64_t> model_violations{0};
  std::atomic<uint64_t> unexpected_errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Random rng(seed_ * 31 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        // 90% of traffic on the first eighth of the key space so the
        // controller has a hotspot to split; keys stay in this thread's
        // residue class so the model stays exact.
        const Key span = rng.Uniform(10) < 9 ? 2'048 : kKeySpace;
        const Key k = static_cast<Key>(t) + 1 +
                      kThreads * rng.Uniform(span / kThreads);
        uint8_t& st = model[k];
        const uint32_t dice = rng.Uniform(100);
        if (dice < 40) {
          Result<Value> r = map.Get(k);
          if (r.ok()) {
            if (*r != value_of(k)) wrong_values.fetch_add(1);
            if (st == kAbsent) model_violations.fetch_add(1);
          } else if (r.status().IsNotFound()) {
            if (st == kPresent) model_violations.fetch_add(1);
          } else if (!r.status().IsUnavailable()) {
            unexpected_errors.fetch_add(1);
          }
        } else if (dice < 75) {
          const Status s = map.Insert(k, value_of(k));
          if (s.ok()) {
            if (st == kPresent) model_violations.fetch_add(1);
            st = kPresent;
          } else if (s.IsAlreadyExists()) {
            if (st == kAbsent) model_violations.fetch_add(1);
            st = kPresent;
          } else if (s.IsUnavailable()) {
            st = kUncertain;  // may have landed before the fault fired
          } else {
            unexpected_errors.fetch_add(1);
          }
        } else {
          const Status s = map.Erase(k);
          if (s.ok()) {
            if (st == kAbsent) model_violations.fetch_add(1);
            st = kAbsent;
          } else if (s.IsNotFound()) {
            if (st == kPresent) model_violations.fetch_add(1);
            st = kAbsent;
          } else if (s.IsUnavailable()) {
            st = kUncertain;  // may have been removed before the fault
          } else {
            unexpected_errors.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // End of the storm: disarm everything, park the controller (joins the
  // tick thread, so no migration is in flight afterwards), and give the
  // supervisor a beat to replace any workers that died near the end.
  FaultInjector::Instance().DisarmAll();
  map.rebalancer()->Stop();
  const auto respawn_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (map.PoolStats().worker_respawns < map.PoolStats().worker_deaths &&
         std::chrono::steady_clock::now() < respawn_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  EXPECT_EQ(wrong_values.load(), 0u);
  EXPECT_EQ(model_violations.load(), 0u);
  EXPECT_EQ(unexpected_errors.load(), 0u);

  // TreeChecker demands quiescence, and the worker kills left compression
  // backlog behind: detach every shard from the pool (blocks until no
  // worker touches it), then compress to a fixpoint single-threadedly so
  // no deleted-but-not-yet-unlinked node is left for the checker to flag.
  for (uint32_t i = 0; i < map.num_shards(); ++i) map.shard(i)->Quiesce();
  map.CompressNow();

  // Full-scan audit against the model: strictly ascending keys, correct
  // values, no ghost keys (model says absent), no lost keys (model says
  // present but the scan never saw them).
  std::vector<uint8_t> seen(kKeySpace + 1, 0);
  Key prev = 0;
  uint64_t scanned = 0;
  map.Scan(1, kMaxUserKey, [&](Key k, Value v) {
    EXPECT_GT(k, prev);
    EXPECT_EQ(v, value_of(k));
    EXPECT_LE(k, kKeySpace);
    if (k <= kKeySpace) {
      EXPECT_NE(model[k], kAbsent) << "ghost key " << k;
      seen[k] = 1;
    }
    prev = k;
    ++scanned;
    return true;
  });
  EXPECT_EQ(scanned, map.Size());
  for (Key k = 1; k <= kKeySpace; ++k) {
    if (model[k] == kPresent) {
      EXPECT_TRUE(seen[k]) << "lost key " << k;
    }
  }

  const Status check = map.ValidateStructure();
  EXPECT_TRUE(check.ok()) << check.ToString();

  // The storm actually happened, and the self-healing layer answered:
  // faults fired, fetch retries healed reads, dead workers were replaced.
  const StatsSnapshot stats = map.Stats();
  EXPECT_GT(stats.Get(StatId::kFaultsInjected), 0u);
  // Reads heal through two channels: optimistic descents absorb an
  // injected fetch as a torn read, copy descents retry with backoff.
  EXPECT_GT(stats.Get(StatId::kFetchRetries) +
                stats.Get(StatId::kOptimisticRetries),
            0u);
  const PoolStatsSnapshot pool = map.PoolStats();
  EXPECT_GE(pool.worker_deaths, 1u);
  EXPECT_GE(pool.worker_respawns, 1u);
  EXPECT_GE(pool.worker_respawns, pool.worker_deaths)
      << "supervisor left dead workers unreplaced";
  // Informational: how rough the run actually was (varies by seed).
  std::cout << "[fault-stress] faults=" << stats.Get(StatId::kFaultsInjected)
            << " fetch_retries=" << stats.Get(StatId::kFetchRetries)
            << " fetch_giveups=" << stats.Get(StatId::kFetchGiveups)
            << " migration_retries=" << stats.Get(StatId::kMigrationRetries)
            << " migration_aborts=" << stats.Get(StatId::kMigrationAborts)
            << " rollback_keys=" << stats.Get(StatId::kMigrationRollbackKeys)
            << " breaker_trips=" << stats.Get(StatId::kRebalanceBreakerTrips)
            << " worker_deaths=" << pool.worker_deaths
            << " worker_respawns=" << pool.worker_respawns
            << " splits=" << map.rebalancer()->splits()
            << " merges=" << map.rebalancer()->merges() << std::endl;
}

// Focused read-path scenario: a single tree under heavy injected fetch
// errors. The bounded retry loop must heal essentially all of them — the
// client sees correct values, and the counters prove the faults fired.
TEST_F(FaultStressTest, FetchRetriesHealReadsTransparently) {
  TreeOptions opt;
  opt.min_entries = 4;
  // Copy descents only: every injected fetch failure must go through the
  // FetchPage retry loop (optimistic descents would absorb it as a torn
  // read instead and never touch the retry budget).
  opt.optimistic_reads = false;
  SagivTree tree(opt);
  constexpr Key kN = 20'000;
  for (Key k = 1; k <= kN; ++k) {
    ASSERT_TRUE(tree.Insert(k, k * 3).ok());
  }

  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.probability = 0.05;  // 5% of eligible page fetches fail
  spec.seed = seed_;
  FaultInjector::Instance().Arm("get", spec);

  constexpr int kReaders = 4;
  std::atomic<uint64_t> wrong{0};
  std::atomic<uint64_t> unavailable{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(seed_ + 100 + static_cast<uint64_t>(t));
      for (int i = 0; i < 20'000; ++i) {
        const Key k = 1 + rng.Uniform(kN);
        Result<Value> r = tree.Search(k);
        if (r.ok()) {
          if (*r != k * 3) wrong.fetch_add(1);
        } else if (r.status().IsUnavailable()) {
          unavailable.fetch_add(1);  // retry budget exhausted: legal, rare
        } else {
          wrong.fetch_add(1);  // any other error is a bug
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  FaultInjector::Instance().DisarmAll();

  EXPECT_EQ(wrong.load(), 0u);
  // At p=0.05 with a retry budget of 4, an op-level failure needs 5
  // consecutive fires (p ~ 3e-7): effectively none in 80k reads.
  EXPECT_LE(unavailable.load(), 2u);
  EXPECT_GT(tree.stats()->Get(StatId::kFaultsInjected), 0u);
  EXPECT_GT(tree.stats()->Get(StatId::kFetchRetries), 0u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace obtree
