// Copyright 2026 The obtree Authors.
//
// Tests of the optimistic in-place read path: Search/Scan descend without
// copying pages, validating seqlock versions instead. The invariant under
// test is the tentpole safety claim — a VALIDATED read never surfaces a
// torn value — hammered against concurrent inserts, deletes, splits, and
// the compressors' merge/retire/reuse cycle. Every insert stores
// value = key + 1, so any torn or misrouted read is detectable.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

TreeOptions SmallNodes(bool optimistic) {
  TreeOptions options;
  options.min_entries = 4;  // deep trees: more splits, merges, stale routes
  options.optimistic_reads = optimistic;
  return options;
}

TEST(OptimisticReadTest, OptimisticAndCopyModesAgree) {
  SagivTree optimistic(SmallNodes(true));
  SagivTree copy(SmallNodes(false));
  for (Key k = 1; k <= 2000; ++k) {
    ASSERT_TRUE(optimistic.Insert(k * 3, k * 3 + 1).ok());
    ASSERT_TRUE(copy.Insert(k * 3, k * 3 + 1).ok());
  }
  for (Key k = 1; k <= 2000; ++k) {
    auto vo = optimistic.Search(k * 3);
    auto vc = copy.Search(k * 3);
    ASSERT_TRUE(vo.ok());
    ASSERT_TRUE(vc.ok());
    EXPECT_EQ(*vo, *vc);
    EXPECT_EQ(*vo, k * 3 + 1);
    EXPECT_TRUE(optimistic.Search(k * 3 + 1).status().IsNotFound());
  }
}

TEST(OptimisticReadTest, OptimisticModeCountsValidations) {
  SagivTree tree(SmallNodes(true));
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(tree.Search(k).ok());
  EXPECT_GT(tree.stats()->Get(StatId::kOptimisticValidations), 0u);
}

TEST(OptimisticReadTest, CopyModeNeverValidates) {
  SagivTree tree(SmallNodes(false));
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(tree.Search(k).ok());
  size_t n = 0;
  tree.Scan(1, 500, [&n](Key, Value) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 500u);
  EXPECT_EQ(tree.stats()->Get(StatId::kOptimisticValidations), 0u);
  EXPECT_EQ(tree.stats()->Get(StatId::kOptimisticRetries), 0u);
  EXPECT_EQ(tree.stats()->Get(StatId::kOptimisticFallbacks), 0u);
}

TEST(OptimisticReadTest, RejectsNonPositiveRetryLimit) {
  TreeOptions options;
  options.optimistic_retry_limit = 0;
  EXPECT_FALSE(options.Validate().ok());
  SagivTree tree(options);  // falls back to defaults
  EXPECT_FALSE(tree.init_status().ok());
  EXPECT_TRUE(tree.Insert(1, 2).ok());
  EXPECT_TRUE(tree.Search(1).ok());
}

// The tentpole safety property: searches running against concurrent
// inserts, deletes, splits, merges and page reuse never return a torn
// value — every hit is exactly key + 1, every miss a clean NotFound.
TEST(OptimisticReadTest, ConcurrentSearchNeverReturnsTornValue) {
  MapOptions options;
  options.tree = SmallNodes(true);
  options.compression = CompressionMode::kQueueWorkers;
  options.compression_threads = 1;
  ConcurrentMap map(options);
  constexpr Key kSpace = 20'000;
  for (Key k = 2; k <= kSpace; k += 2) {
    ASSERT_TRUE(map.Insert(k, k + 1).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> bad_value{false};
  // Two mutators churn odd keys (insert/delete cycles) so leaves split,
  // underfill, merge, and get retired/reused while readers descend.
  std::vector<std::thread> mutators;
  for (int t = 0; t < 2; ++t) {
    mutators.emplace_back([&map, t, &stop]() {
      Random rng(17 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = (rng.Uniform(kSpace / 2) * 2 + 1);  // odd keys
        if (rng.Uniform(2) == 0) {
          (void)map.Insert(k, k + 1);
        } else {
          (void)map.Erase(k);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&map, t, &bad_value]() {
      Random rng(101 + t);
      for (int i = 0; i < 30'000; ++i) {
        const Key k = rng.Uniform(kSpace) + 1;
        Result<Value> v = map.Get(k);
        if (v.ok() && *v != k + 1) {
          bad_value.store(true);
          return;
        }
        if (!v.ok() && !v.status().IsNotFound()) {
          bad_value.store(true);
          return;
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true);
  for (auto& m : mutators) m.join();
  EXPECT_FALSE(bad_value.load());
  // Even (untouched) keys must all still be present.
  for (Key k = 2; k <= kSpace; k += 2) {
    Result<Value> v = map.Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    ASSERT_EQ(*v, k + 1);
  }
  EXPECT_GT(map.Stats().Get(StatId::kOptimisticValidations), 0u);
}

// Scans under churn: pairs arrive strictly ascending, inside the range,
// and with untorn values.
TEST(OptimisticReadTest, ConcurrentScanStaysSortedAndUntorn) {
  MapOptions options;
  options.tree = SmallNodes(true);
  options.compression = CompressionMode::kQueueWorkers;
  options.compression_threads = 1;
  ConcurrentMap map(options);
  constexpr Key kSpace = 10'000;
  for (Key k = 2; k <= kSpace; k += 2) {
    ASSERT_TRUE(map.Insert(k, k + 1).ok());
  }

  std::atomic<bool> stop{false};
  std::thread mutator([&map, &stop]() {
    Random rng(23);
    while (!stop.load(std::memory_order_relaxed)) {
      const Key k = (rng.Uniform(kSpace / 2) * 2 + 1);
      if (rng.Uniform(2) == 0) {
        (void)map.Insert(k, k + 1);
      } else {
        (void)map.Erase(k);
      }
    }
  });

  Random rng(7);
  bool ok = true;
  for (int i = 0; i < 300 && ok; ++i) {
    const Key lo = rng.Uniform(kSpace) + 1;
    const Key hi = std::min<Key>(lo + 500, kSpace);
    Key last = 0;
    map.Scan(lo, hi, [&](Key k, Value v) {
      if (k < lo || k > hi || k <= last || v != k + 1) ok = false;
      last = k;
      return ok;
    });
  }
  stop.store(true);
  mutator.join();
  EXPECT_TRUE(ok);
}

// A retry budget of 1 under heavy single-node churn exercises the
// copy-read fallback; results must be identical either way.
TEST(OptimisticReadTest, FallbackPathServesCorrectResults) {
  TreeOptions options = SmallNodes(true);
  options.optimistic_retry_limit = 1;
  SagivTree tree(options);
  constexpr Key kSpace = 4'000;
  for (Key k = 2; k <= kSpace; k += 2) {
    ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  }
  std::atomic<bool> stop{false};
  std::thread mutator([&tree, &stop]() {
    Random rng(5);
    while (!stop.load(std::memory_order_relaxed)) {
      const Key k = (rng.Uniform(kSpace / 2) * 2 + 1);
      if (rng.Uniform(2) == 0) {
        (void)tree.Insert(k, k + 1);
      } else {
        (void)tree.Delete(k);
      }
    }
  });
  Random rng(3);
  bool ok = true;
  for (int i = 0; i < 20'000 && ok; ++i) {
    const Key k = rng.Uniform(kSpace) + 1;
    Result<Value> v = tree.Search(k);
    if (v.ok()) {
      ok = (*v == k + 1);
    } else {
      ok = v.status().IsNotFound();
    }
  }
  stop.store(true);
  mutator.join();
  EXPECT_TRUE(ok);
}

// Reentrancy: a visitor that scans the same tree from inside a scan (the
// thread-local harvest buffer must not be clobbered by the inner call).
TEST(OptimisticReadTest, ReentrantScanFromVisitor) {
  SagivTree tree(SmallNodes(true));
  for (Key k = 1; k <= 1000; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  size_t outer = 0;
  size_t inner_total = 0;
  tree.Scan(1, 500, [&](Key k, Value v) {
    EXPECT_EQ(v, k + 1);
    ++outer;
    size_t inner = 0;
    tree.Scan(600, 700, [&inner](Key, Value) {
      ++inner;
      return true;
    });
    inner_total += inner;
    return outer < 10;
  });
  EXPECT_EQ(outer, 10u);
  EXPECT_EQ(inner_total, 10u * 101u);
}

}  // namespace
}  // namespace obtree
