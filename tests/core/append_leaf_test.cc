// Copyright 2026 The obtree Authors.
//
// Tests of the append-optimized leaf mode (TreeOptions::append_leaves):
// the rightmost-insert fast path (descent skipped, locked validation of
// the cached hint, Node::AppendLeafEntryInPlace under the seqlock) and
// tail-biased splits. The invariants under test: append mode changes
// performance, never results (modes agree op-for-op with append off); a
// stale hint — invalidated by splits, erases, or compression merges —
// can only cost a miss, never a misplaced key; tail-biased splits lift
// steady-state leaf fill to >= 85% on monotonic load; and the fast path
// stays torn-image-safe against optimistic readers, scanners, and
// compression churn (the 8-thread TSan stress).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/compression_queue.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"
#include "obtree/workload/generator.h"

namespace obtree {
namespace {

TreeOptions SmallNodes(bool append) {
  TreeOptions options;
  options.min_entries = 4;  // deep trees: more splits, stale hints
  options.append_leaves = append;
  return options;
}

// Pause a protocol thread at the entry of the Nth "put" hook event after
// arming — id-agnostic, so tests need no knowledge of which page id a
// split's Allocate hands out (it may be fresh or reused).
class PutWindowGate {
 public:
  void Arm(int nth) {
    std::lock_guard<std::mutex> l(mu_);
    nth_ = nth;
    puts_ = 0;
    armed_ = true;
    paused_ = false;
    released_ = false;
  }

  // Called from the PageManager hook (protocol thread).
  void OnHook(const char* op, PageId /*page*/) {
    if (std::strcmp(op, "put") != 0) return;
    std::unique_lock<std::mutex> l(mu_);
    if (!armed_ || ++puts_ < nth_) return;
    armed_ = false;
    paused_ = true;
    cv_.notify_all();
    cv_.wait(l, [&] { return released_; });
  }

  void AwaitPaused() {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return paused_; });
  }

  void Release() {
    std::lock_guard<std::mutex> l(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int nth_ = 0;
  int puts_ = 0;
  bool armed_ = false;
  bool paused_ = false;
  bool released_ = false;
};

// Append mode must be invisible in results: drive an append-on and an
// append-off tree through the same monotonic insert stream plus deletes
// and re-inserts, and compare everything.
TEST(AppendLeafTest, ModesAgreeOnMonotonicLoad) {
  SagivTree on(SmallNodes(true));
  SagivTree off(SmallNodes(false));
  constexpr Key kN = 5'000;
  for (Key k = 1; k <= kN; ++k) {
    ASSERT_TRUE(on.Insert(k, k + 1).ok()) << k;
    ASSERT_TRUE(off.Insert(k, k + 1).ok()) << k;
    // Duplicate re-insert of the current max must fail identically (the
    // fast path never arms for key == max).
    EXPECT_EQ(on.Insert(k, 0).code(), off.Insert(k, 0).code());
  }
  for (Key k = 3; k <= kN; k += 3) {
    EXPECT_EQ(on.Delete(k).ok(), off.Delete(k).ok()) << k;
  }
  EXPECT_EQ(on.Size(), off.Size());
  for (Key k = 1; k <= kN; ++k) {
    auto vo = on.Search(k);
    auto vf = off.Search(k);
    ASSERT_EQ(vo.ok(), vf.ok()) << k;
    if (vo.ok()) EXPECT_EQ(*vo, k + 1);
  }
  Status s = TreeChecker(&on).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  s = TreeChecker(&off).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// Mixed load: random inserts/deletes/upserts interleaved with bursts of
// max-extending keys, so the fast path keeps arming and disarming.
TEST(AppendLeafTest, ModesAgreeOnMixedLoad) {
  SagivTree on(SmallNodes(true));
  SagivTree off(SmallNodes(false));
  Random rng(42);
  Key next_max = 100'000;  // monotonic burst sequence, above random range
  for (int i = 0; i < 20'000; ++i) {
    const uint32_t dice = rng.Uniform(10);
    if (dice < 4) {
      const Key k = rng.Uniform(50'000) + 1;
      EXPECT_EQ(on.Insert(k, k + 1).code(), off.Insert(k, k + 1).code());
    } else if (dice < 6) {
      const Key k = rng.Uniform(50'000) + 1;
      EXPECT_EQ(on.Delete(k).code(), off.Delete(k).code());
    } else if (dice < 8) {
      const Key k = rng.Uniform(50'000) + 1;
      EXPECT_EQ(on.Upsert(k, i).code(), off.Upsert(k, i).code());
    } else {
      const Key k = ++next_max;
      EXPECT_EQ(on.Insert(k, k + 1).code(), off.Insert(k, k + 1).code());
    }
  }
  EXPECT_EQ(on.Size(), off.Size());
  for (Key k = 1; k <= 50'000; ++k) {
    auto vo = on.Search(k);
    auto vf = off.Search(k);
    ASSERT_EQ(vo.ok(), vf.ok()) << k;
    if (vo.ok()) EXPECT_EQ(*vo, *vf);
  }
  Status s = TreeChecker(&on).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// The acceptance claim: pure monotonic load leaves the tree >= 85% full
// (midpoint splits cap it at ~50%), with the fast path serving nearly
// every insert and every split tail-biased.
TEST(AppendLeafTest, TailSplitsKeepLeavesFull) {
  SagivTree tree(SmallNodes(true));
  constexpr Key kN = 4'000;
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());

  const StatsSnapshot snap = tree.stats()->Snapshot();
  // Every insert that found room in the rightmost leaf is a hit; only
  // the one insert per split (full leaf) has to miss into the descent.
  EXPECT_GT(snap.Get(StatId::kAppendFastHits), kN * 8 / 10);
  EXPECT_GT(snap.Get(StatId::kSplits), 0u);
  EXPECT_EQ(snap.Get(StatId::kTailSplits), snap.Get(StatId::kSplits));

  const TreeShape shape = TreeChecker(&tree).ComputeShape();
  EXPECT_GE(shape.avg_leaf_fill, 0.85) << shape.ToString();
  // The online split-time histogram agrees: retiring leaves were ~full.
  const Histogram fill = tree.stats()->LeafFillHistogram();
  EXPECT_GT(fill.count(), 0u);
  EXPECT_GE(fill.Percentile(50), 85u);

  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// Midpoint baseline: with append off the same load settles near ~50%
// fill — the gap the tail bias exists to close.
TEST(AppendLeafTest, MidpointSplitsStayHalfFullBaseline) {
  SagivTree tree(SmallNodes(false));
  for (Key k = 1; k <= 4'000; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  const StatsSnapshot snap = tree.stats()->Snapshot();
  EXPECT_EQ(snap.Get(StatId::kAppendFastHits), 0u);
  EXPECT_EQ(snap.Get(StatId::kAppendFastMisses), 0u);
  EXPECT_EQ(snap.Get(StatId::kTailSplits), 0u);
  const TreeShape shape = TreeChecker(&tree).ComputeShape();
  EXPECT_LT(shape.avg_leaf_fill, 0.7) << shape.ToString();
}

// Stale hint via compression: merge the hinted rightmost leaf away, then
// insert past the max. The fast path must miss (deleted node fails the
// locked validation) and the insert must land correctly via the descent.
TEST(AppendLeafTest, StaleHintAfterCompressionMissesSafely) {
  SagivTree tree(SmallNodes(true));  // capacity 8
  for (Key k = 1; k <= 12; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  // Leaves are now L{1..8} and R{9..12} (tail split at the 9th insert);
  // the hint names R. Thin both below k so the compressor merges R into
  // L and marks R deleted.
  for (Key k = 5; k <= 10; ++k) ASSERT_TRUE(tree.Delete(k).ok());
  ScanCompressor compressor(&tree);
  compressor.CompressLevel(0);
  ASSERT_GT(tree.stats()->Get(StatId::kMerges), 0u);

  const uint64_t misses_before = tree.stats()->Get(StatId::kAppendFastMisses);
  ASSERT_TRUE(tree.Insert(1'000, 1'001).ok());
  EXPECT_GT(tree.stats()->Get(StatId::kAppendFastMisses), misses_before);

  // The refreshed hint serves the next max-extending insert again.
  const uint64_t hits_before = tree.stats()->Get(StatId::kAppendFastHits);
  ASSERT_TRUE(tree.Insert(1'001, 1'002).ok());
  EXPECT_GT(tree.stats()->Get(StatId::kAppendFastHits), hits_before);

  for (Key k : {1, 2, 3, 4, 11, 12, 1000, 1001}) {
    auto v = tree.Search(static_cast<Key>(k));
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, static_cast<Value>(k) + 1);
  }
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// Stale-high max hint via erase: deleting the tree's max disarms the
// fast path for keys under the old max (they take the descent) without
// ever misrouting them, and re-arms for keys above it.
TEST(AppendLeafTest, DeletedMaxKeepsFastPathCorrect) {
  SagivTree tree(SmallNodes(true));
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  for (Key k = 60; k <= 100; ++k) ASSERT_TRUE(tree.Delete(k).ok());
  // 70 < old max 100: must not fast-path (it would land out of order if
  // the hint were trusted blindly); the descent re-inserts it.
  ASSERT_TRUE(tree.Insert(70, 71).ok());
  EXPECT_TRUE(tree.Insert(70, 0).IsAlreadyExists());
  // 200 > old max: fast path arms again and appends.
  ASSERT_TRUE(tree.Insert(200, 201).ok());
  EXPECT_EQ(*tree.Search(70), 71u);
  EXPECT_EQ(*tree.Search(200), 201u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// Batched inserts must raise the watermark like single-op commits do: a
// MultiInsert that lifts the tree max used to leave max_key_hint_
// stale-low, so a later single insert between the stale watermark and
// the true max would wrongly arm the fast path (a wasted locked miss)
// and poison rightmost_hint_ with a non-rightmost leaf.
TEST(AppendLeafTest, BatchedInsertsRaiseTheWatermark) {
  SagivTree tree(SmallNodes(true));
  for (Key k = 1; k <= 20; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());

  // The batch lifts the tree max 20 -> 1000 through InsertCommit.
  const Key keys[] = {500, 1000};
  const Value values[] = {501, 1001};
  Status out[2];
  tree.MultiInsert(keys, values, 2, out);
  ASSERT_TRUE(out[0].ok() && out[1].ok());

  // 50 sits between the single-op max (20) and the batch max (1000):
  // with the watermark raised by the batch it is not max-extending, so
  // it takes the plain descent — no fast-path attempt, no miss.
  const uint64_t misses_before =
      tree.stats()->Get(StatId::kAppendFastMisses);
  ASSERT_TRUE(tree.Insert(50, 51).ok());
  EXPECT_EQ(tree.stats()->Get(StatId::kAppendFastMisses), misses_before);

  // And the hint still names the true rightmost leaf: the next
  // max-extending insert is a fast-path hit, not a miss-then-recover.
  const uint64_t hits_before = tree.stats()->Get(StatId::kAppendFastHits);
  ASSERT_TRUE(tree.Insert(2000, 2001).ok());
  EXPECT_GT(tree.stats()->Get(StatId::kAppendFastHits), hits_before);
  EXPECT_EQ(tree.stats()->Get(StatId::kAppendFastMisses), misses_before);

  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// The split-publication rule: a frontier split's fresh right node B
// holds a live-looking rightmost-leaf image from its first put, but is
// unreachable until the left node's rewrite publishes the link. An
// append arriving inside that put(B)..put(A) window must not complete —
// a returned-OK insert that Search cannot find is a linearizability
// violation. The splitter freezes between its two puts; the concurrent
// max-extending insert must block on a page the splitter still holds
// (and if it somehow completed, its key must be immediately visible).
TEST(AppendLeafTest, AppendNeverCompletesInsideSplitPublicationWindow) {
  SagivTree tree(SmallNodes(true));  // capacity 8
  for (Key k = 1; k <= 16; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  // Leaves: {1..8} and the full rightmost {9..16}; inserting 17 tail-
  // splits the rightmost. Its first two put events are put(B), put(A).
  PutWindowGate gate;
  tree.internal_pager()->SetTestHook(
      [&](const char* op, PageId page) { gate.OnHook(op, page); });
  gate.Arm(2);  // freeze at the entry of put(A), after put(B) landed

  std::thread splitter([&]() { ASSERT_TRUE(tree.Insert(17, 18).ok()); });
  gate.AwaitPaused();

  std::atomic<bool> appended{false};
  std::thread appender([&]() {
    ASSERT_TRUE(tree.Insert(18, 19).ok());
    appended.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  if (appended.load(std::memory_order_acquire)) {
    // If the insert did complete, linearizability demands visibility.
    ASSERT_TRUE(tree.Search(18).ok())
        << "completed Insert(18) invisible to Search mid-split";
  }
  EXPECT_FALSE(appended.load(std::memory_order_acquire))
      << "append completed inside the split's publication window";

  gate.Release();
  splitter.join();
  appender.join();
  tree.internal_pager()->SetTestHook(nullptr);

  for (Key k = 1; k <= 18; ++k) {
    Result<Value> v = tree.Search(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, k + 1) << k;
  }
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// The ABA variant of the same window: the split's Allocate returns a
// RETIRED page id that the rightmost hint still names (batched inserts
// never refresh the hint, so it survives stale across the refill). An
// appender chasing that stale hint must not be able to validate the
// reused page's fresh not-yet-linked image. Also covers the batched
// watermark fix: MultiInsert raises max_key_hint_, so the follow-up
// single inserts arm the fast path from an accurate watermark.
TEST(AppendLeafTest, StaleHintOnReusedSplitPageCannotSwallowAppend) {
  SagivTree tree(SmallNodes(true));  // capacity 8
  for (Key k = 1; k <= 20; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  // Leaves: {1..8}, {9..16}, C{17..20}; the hint names C. Empty C so the
  // compressor merges it into its left neighbor, marks C deleted, and
  // retires its page — and ONLY its page: the root keeps two children,
  // so no root collapse retires anything else, and the next Allocate
  // must hand back exactly the page the hint still names.
  for (Key k = 13; k <= 20; ++k) ASSERT_TRUE(tree.Delete(k).ok());
  ScanCompressor compressor(&tree);
  compressor.CompressLevel(0);
  ASSERT_GT(tree.stats()->Get(StatId::kMerges), 0u);
  ASSERT_EQ(tree.internal_pager()->retired_pages(), 1u);

  // Refill the surviving rightmost leaf {9..12} to capacity through the
  // BATCHED path, which commits without touching rightmost_hint_: the
  // hint keeps naming the retired page while the tree max (and, post-
  // fix, the watermark) rises. Keys must clear the watermark left by
  // the deleted 13..20 (deletes never lower it), hence 21..24.
  const Key keys[] = {21, 22, 23, 24};
  const Value values[] = {22, 23, 24, 25};
  Status out[4];
  tree.MultiInsert(keys, values, 4, out);
  for (const Status& s : out) ASSERT_TRUE(s.ok());

  // The next insert splits L; its Allocate reuses a retired page. The
  // splitter must be another BATCHED insert: a single Insert's own
  // descent would refresh the hint to L before committing, hiding the
  // stale-hint hazard this test exists to pin down. MultiInsert's
  // commits never touch the hint, so it still names the retired page —
  // now reborn as the split's unreachable right node B — while the
  // splitter sits frozen between put(B) and put(A).
  const size_t fresh_before = tree.internal_pager()->allocated_pages();
  PutWindowGate gate;
  tree.internal_pager()->SetTestHook(
      [&](const char* op, PageId page) { gate.OnHook(op, page); });
  gate.Arm(2);

  std::thread splitter([&]() {
    const Key skeys[] = {25, 26};
    const Value svalues[] = {26, 27};
    Status sout[2];
    tree.MultiInsert(skeys, svalues, 2, sout);
    ASSERT_TRUE(sout[0].ok() && sout[1].ok());
  });
  gate.AwaitPaused();
  EXPECT_EQ(tree.internal_pager()->allocated_pages(), fresh_before)
      << "expected the split to reuse a retired page, not grow the arena";

  std::atomic<bool> appended{false};
  std::thread appender([&]() {
    ASSERT_TRUE(tree.Insert(27, 28).ok());
    appended.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  if (appended.load(std::memory_order_acquire)) {
    ASSERT_TRUE(tree.Search(27).ok())
        << "completed Insert(27) invisible to Search mid-split";
  }
  EXPECT_FALSE(appended.load(std::memory_order_acquire))
      << "append landed on a reused, not-yet-linked split page";

  gate.Release();
  splitter.join();
  appender.join();
  tree.internal_pager()->SetTestHook(nullptr);

  for (Key k : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                21, 22, 23, 24, 25, 26, 27}) {
    Result<Value> v = tree.Search(static_cast<Key>(k));
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, static_cast<Value>(k) + 1) << k;
  }
  for (Key k = 13; k <= 20; ++k) {
    EXPECT_TRUE(tree.Search(k).status().IsNotFound()) << k;
  }
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// The MonotonicContended preset: generators copied from one spec share
// one atomic sequence — keys are globally unique and collectively cover
// the sequence with no gaps.
TEST(AppendLeafTest, MonotonicContendedGeneratorsShareOneSequence) {
  WorkloadSpec spec = WorkloadSpec::MonotonicContended();
  OpGenerator g0(spec, /*seed=*/1, /*thread_id=*/0, /*num_threads=*/2);
  OpGenerator g1(spec, /*seed=*/1, /*thread_id=*/1, /*num_threads=*/2);
  std::set<Key> keys;
  for (int i = 0; i < 100; ++i) {
    const OpGenerator::Op a = g0.Next();
    const OpGenerator::Op b = g1.Next();
    EXPECT_EQ(a.type, OpType::kInsert);
    keys.insert(a.key);
    keys.insert(b.key);
  }
  EXPECT_EQ(keys.size(), 200u);
  EXPECT_EQ(*keys.begin(), 1u);
  EXPECT_EQ(*keys.rbegin(), 200u);

  // Without the shared counter, strided subsequences also never collide.
  WorkloadSpec strided = WorkloadSpec::MonotonicInsert();
  OpGenerator s0(strided, 1, 0, 2);
  OpGenerator s1(strided, 1, 1, 2);
  std::set<Key> strided_keys;
  for (int i = 0; i < 100; ++i) {
    strided_keys.insert(s0.Next().key);
    strided_keys.insert(s1.Next().key);
  }
  EXPECT_EQ(strided_keys.size(), 200u);
}

// The tentpole safety property under contention: 4 appenders interleave
// ONE monotonic sequence (every insert aims at the rightmost leaf) while
// optimistic readers, a scanner, and compression churn run against them
// — 8 threads total. No torn reads, no lost or misplaced keys.
TEST(AppendLeafTest, ConcurrentAppendersReadersAndChurn) {
  MapOptions options;
  options.tree = SmallNodes(true);
  options.compression = CompressionMode::kQueueWorkers;
  options.compression_threads = 1;
  options.tree.enqueue_underfull_on_delete = true;
  ConcurrentMap map(options);

  constexpr Key kPerThread = 8'000;
  constexpr int kAppenders = 4;
  constexpr Key kTotal = kPerThread * kAppenders;
  std::atomic<Key> next_key{1};
  std::atomic<Key> watermark{0};  // max key known fully inserted
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};

  std::vector<std::thread> appenders;
  for (int t = 0; t < kAppenders; ++t) {
    appenders.emplace_back([&]() {
      for (;;) {
        const Key k = next_key.fetch_add(1, std::memory_order_relaxed);
        if (k > kTotal) return;
        if (!map.Insert(k, k + 1).ok()) {
          bad.store(true);
          return;
        }
        // Keys at or below the watermark are guaranteed present: only
        // raise it over a contiguous prefix.
        Key w = watermark.load(std::memory_order_relaxed);
        while (k == w + 1 && !watermark.compare_exchange_weak(
                                 w, k, std::memory_order_release)) {
        }
      }
    });
  }

  // Two optimistic readers probing (w/2, w]: below the watermark so the
  // key is guaranteed inserted, above w/2 so the churn thread (which
  // only touches keys <= its own w/2 <= our w/2) never deletes it. Such
  // keys must always hit with the right value.
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(77 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const Key w = watermark.load(std::memory_order_acquire);
        if (w < 4) continue;
        const Key k = w / 2 + 1 + rng.Uniform(w - w / 2);
        Result<Value> v = map.Get(k);
        if (!v.ok() || *v != k + 1) {
          bad.store(true);
          return;
        }
      }
    });
  }

  // Scanner: pairs ascending, in range, untorn.
  std::thread scanner([&]() {
    Random rng(5);
    while (!stop.load(std::memory_order_relaxed)) {
      const Key w = watermark.load(std::memory_order_acquire);
      if (w < 100) continue;
      const Key lo = rng.Uniform(w - 50) + 1;
      const Key hi = lo + 200;
      Key last = 0;
      map.Scan(lo, hi, [&](Key k, Value v) {
        if (k < lo || k > hi || k <= last || v != k + 1) {
          bad.store(true);
          return false;
        }
        last = k;
        return true;
      });
    }
  });

  // Churn: delete-and-reinsert keys well below the frontier, feeding the
  // queue compressor underfull leaves (which go stale as hints and merge
  // under the appenders).
  std::thread churn([&]() {
    Random rng(13);
    while (!stop.load(std::memory_order_relaxed)) {
      const Key w = watermark.load(std::memory_order_acquire);
      if (w < 100) continue;
      const Key k = rng.Uniform(w / 2) + 1;
      if (map.Erase(k).ok()) {
        if (!map.Insert(k, k + 1).ok()) {
          bad.store(true);
          return;
        }
      }
    }
  });

  for (auto& a : appenders) a.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  scanner.join();
  churn.join();
  ASSERT_FALSE(bad.load());

  // Churn re-inserts what it deletes, so after the join every key is
  // present exactly once with its value.
  EXPECT_EQ(map.Size(), kTotal);
  for (Key k = 1; k <= kTotal; ++k) {
    Result<Value> v = map.Get(k);
    ASSERT_TRUE(v.ok()) << k;
    ASSERT_EQ(*v, k + 1) << k;
  }
  EXPECT_GT(map.Stats().Get(StatId::kAppendFastHits), 0u);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

}  // namespace
}  // namespace obtree
