// Copyright 2026 The obtree Authors.
//
// Single-threaded functional tests of SagivTree: insert/search/delete
// semantics against a reference std::map, structural validity after
// randomized workloads, scans, and edge cases around the reserved key
// space. Concurrency is exercised in tests/integration/.

#include "obtree/core/sagiv_tree.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

TreeOptions SmallNodes(uint32_t k = 2) {
  TreeOptions opt;
  opt.min_entries = k;  // tiny nodes force deep trees and many splits
  return opt;
}

TEST(SagivTreeTest, EmptyTree) {
  SagivTree tree;
  ASSERT_TRUE(tree.init_status().ok());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 1u);
  EXPECT_TRUE(tree.Search(42).status().IsNotFound());
  EXPECT_TRUE(tree.Delete(42).IsNotFound());
  EXPECT_TRUE(TreeChecker(&tree).CheckStructure().ok())
      << TreeChecker(&tree).CheckStructure().ToString();
}

TEST(SagivTreeTest, InvalidOptionsReported) {
  TreeOptions opt;
  opt.min_entries = 0;
  SagivTree tree(opt);
  EXPECT_TRUE(tree.init_status().IsInvalidArgument());
  // The tree fell back to defaults and stays usable.
  EXPECT_TRUE(tree.Insert(1, 10).ok());
}

TEST(SagivTreeTest, RejectsReservedKeys) {
  SagivTree tree;
  EXPECT_TRUE(tree.Insert(0, 1).IsInvalidArgument());
  EXPECT_TRUE(tree.Insert(kPlusInfinity, 1).IsInvalidArgument());
  EXPECT_TRUE(tree.Search(0).status().IsInvalidArgument());
  EXPECT_TRUE(tree.Delete(0).IsInvalidArgument());
  EXPECT_TRUE(tree.Insert(kMaxUserKey, 7).ok());
  EXPECT_EQ(*tree.Search(kMaxUserKey), 7u);
}

TEST(SagivTreeTest, InsertSearchSingle) {
  SagivTree tree;
  ASSERT_TRUE(tree.Insert(10, 100).ok());
  EXPECT_EQ(tree.Size(), 1u);
  ASSERT_TRUE(tree.Search(10).ok());
  EXPECT_EQ(*tree.Search(10), 100u);
  EXPECT_TRUE(tree.Search(9).status().IsNotFound());
  EXPECT_TRUE(tree.Search(11).status().IsNotFound());
}

TEST(SagivTreeTest, DuplicateInsertRejected) {
  SagivTree tree;
  ASSERT_TRUE(tree.Insert(10, 100).ok());
  EXPECT_TRUE(tree.Insert(10, 200).IsAlreadyExists());
  EXPECT_EQ(*tree.Search(10), 100u);  // original value retained
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(SagivTreeTest, SequentialAscendingSplits) {
  SagivTree tree(SmallNodes());
  constexpr Key kN = 1000;
  for (Key k = 1; k <= kN; ++k) {
    ASSERT_TRUE(tree.Insert(k, k * 2).ok()) << k;
  }
  EXPECT_EQ(tree.Size(), kN);
  EXPECT_GT(tree.Height(), 3u);
  for (Key k = 1; k <= kN; ++k) {
    ASSERT_TRUE(tree.Search(k).ok()) << k;
    EXPECT_EQ(*tree.Search(k), k * 2);
  }
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(tree.stats()->Get(StatId::kSplits), 100u);
}

TEST(SagivTreeTest, SequentialDescendingSplits) {
  SagivTree tree(SmallNodes());
  constexpr Key kN = 1000;
  for (Key k = kN; k >= 1; --k) {
    ASSERT_TRUE(tree.Insert(k, k + 7).ok()) << k;
  }
  for (Key k = 1; k <= kN; ++k) {
    ASSERT_EQ(*tree.Search(k), k + 7) << k;
  }
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SagivTreeTest, RandomInsertMatchesReference) {
  SagivTree tree(SmallNodes(3));
  std::map<Key, Value> reference;
  Random rng(20260612);
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.UniformRange(1, 2000);
    const Value v = rng.Next();
    const bool fresh = reference.emplace(k, v).second;
    Status s = tree.Insert(k, v);
    EXPECT_EQ(s.ok(), fresh) << "key " << k;
  }
  EXPECT_EQ(tree.Size(), reference.size());
  for (const auto& [k, v] : reference) {
    ASSERT_TRUE(tree.Search(k).ok()) << k;
    EXPECT_EQ(*tree.Search(k), v);
  }
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SagivTreeTest, DeleteBasic) {
  SagivTree tree;
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  for (Key k = 2; k <= 100; k += 2) ASSERT_TRUE(tree.Delete(k).ok());
  EXPECT_EQ(tree.Size(), 50u);
  for (Key k = 1; k <= 100; ++k) {
    if (k % 2 == 1) {
      EXPECT_TRUE(tree.Search(k).ok()) << k;
    } else {
      EXPECT_TRUE(tree.Search(k).status().IsNotFound()) << k;
      EXPECT_TRUE(tree.Delete(k).IsNotFound()) << k;
    }
  }
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SagivTreeTest, DeleteEverythingLeavesValidTree) {
  SagivTree tree(SmallNodes());
  constexpr Key kN = 500;
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(tree.Delete(k).ok());
  EXPECT_EQ(tree.Size(), 0u);
  // No compression ran: the skeleton of empty leaves persists but must
  // still be a valid search structure (Section 4 semantics).
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (Key k = 1; k <= kN; ++k) {
    EXPECT_TRUE(tree.Search(k).status().IsNotFound());
  }
}

TEST(SagivTreeTest, ReinsertAfterDelete) {
  SagivTree tree(SmallNodes());
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(tree.Insert(k, 1).ok());
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(tree.Delete(k).ok());
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(tree.Insert(k, 2).ok()) << k;
  for (Key k = 1; k <= 300; ++k) EXPECT_EQ(*tree.Search(k), 2u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SagivTreeTest, MixedWorkloadMatchesReference) {
  SagivTree tree(SmallNodes(2));
  std::map<Key, Value> reference;
  Random rng(7);
  for (int i = 0; i < 20000; ++i) {
    const Key k = rng.UniformRange(1, 800);
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      const Value v = rng.Next();
      EXPECT_EQ(tree.Insert(k, v).ok(), reference.emplace(k, v).second);
    } else if (op == 1) {
      EXPECT_EQ(tree.Delete(k).ok(), reference.erase(k) > 0);
    } else {
      auto it = reference.find(k);
      Result<Value> r = tree.Search(k);
      EXPECT_EQ(r.ok(), it != reference.end());
      if (r.ok()) {
        EXPECT_EQ(*r, it->second);
      }
    }
  }
  EXPECT_EQ(tree.Size(), reference.size());
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(SagivTreeTest, ScanFullRange) {
  SagivTree tree(SmallNodes());
  std::vector<Key> keys;
  for (Key k = 10; k <= 1000; k += 10) {
    keys.push_back(k);
    ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  }
  std::vector<Key> seen;
  size_t n = tree.Scan(1, kMaxUserKey, [&](Key k, Value v) {
    EXPECT_EQ(v, k + 1);
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(n, keys.size());
  EXPECT_EQ(seen, keys);
}

TEST(SagivTreeTest, ScanSubRangeAndEarlyStop) {
  SagivTree tree(SmallNodes());
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  std::vector<Key> seen;
  tree.Scan(100, 199, [&](Key k, Value) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 199u);

  seen.clear();
  size_t n = tree.Scan(1, 500, [&](Key k, Value) {
    seen.push_back(k);
    return seen.size() < 10;
  });
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(seen.back(), 10u);
}

TEST(SagivTreeTest, ScanEmptyAndMissRanges) {
  SagivTree tree;
  EXPECT_EQ(tree.Scan(1, 100, [](Key, Value) { return true; }), 0u);
  for (Key k = 50; k <= 60; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  EXPECT_EQ(tree.Scan(1, 49, [](Key, Value) { return true; }), 0u);
  EXPECT_EQ(tree.Scan(61, 1000, [](Key, Value) { return true; }), 0u);
  EXPECT_EQ(tree.Scan(55, 55, [](Key, Value) { return true; }), 1u);
  EXPECT_EQ(tree.Scan(60, 50, [](Key, Value) { return true; }), 0u);
}

TEST(SagivTreeTest, InsertionsHoldAtMostOneLock) {
  // The headline claim of the paper: Section 3's protocol never holds two
  // locks at once, even across splits and root creation.
  SagivTree tree(SmallNodes());
  for (Key k = 1; k <= 2000; ++k) {
    ASSERT_TRUE(tree.Insert(ScrambleKey(k) % kMaxUserKey + 1, k).ok());
  }
  EXPECT_GT(tree.stats()->Get(StatId::kSplits), 0u);
  EXPECT_GT(tree.stats()->Get(StatId::kRootCreations), 0u);
  EXPECT_EQ(tree.stats()->max_locks_held(), 1u);
}

TEST(SagivTreeTest, StatsCountLogicalOps) {
  SagivTree tree;
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  ASSERT_TRUE(tree.Insert(2, 2).ok());
  (void)tree.Search(1);
  (void)tree.Delete(2);
  EXPECT_EQ(tree.stats()->Get(StatId::kInserts), 2u);
  EXPECT_EQ(tree.stats()->Get(StatId::kSearches), 1u);
  EXPECT_EQ(tree.stats()->Get(StatId::kDeletes), 1u);
}

TEST(SagivTreeTest, HeightGrowsLogarithmically) {
  SagivTree tree(SmallNodes(4));  // capacity 8
  for (Key k = 1; k <= 4096; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  // With fanout <= 8, 4096 keys need at least 4 levels; with fanout >= 4
  // (half full), at most ~7.
  EXPECT_GE(tree.Height(), 4u);
  EXPECT_LE(tree.Height(), 8u);
}

TEST(SagivTreeTest, LargeKeysNearInfinity) {
  SagivTree tree(SmallNodes());
  for (Key k = kMaxUserKey; k > kMaxUserKey - 300; --k) {
    ASSERT_TRUE(tree.Insert(k, 1).ok());
  }
  EXPECT_EQ(tree.Size(), 300u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace obtree
