// Copyright 2026 The obtree Authors.

#include "obtree/core/tree_dump.h"

#include <gtest/gtest.h>

namespace obtree {
namespace {

TreeOptions K2() {
  TreeOptions opt;
  opt.min_entries = 2;
  return opt;
}

TEST(TreeDumpTest, EmptyTree) {
  SagivTree tree(K2());
  const std::string out = DumpStructureToString(tree);
  EXPECT_NE(out.find("L0 (root):"), std::string::npos);
  EXPECT_NE(out.find("n=0"), std::string::npos);
  EXPECT_NE(out.find("root"), std::string::npos);
}

TEST(TreeDumpTest, MultiLevelShowsEveryLevel) {
  SagivTree tree(K2());
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  const std::string out = DumpStructureToString(tree);
  for (uint32_t level = 0; level < tree.Height(); ++level) {
    EXPECT_NE(out.find("L" + std::to_string(level)), std::string::npos);
  }
  EXPECT_NE(out.find("(root)"), std::string::npos);
  EXPECT_NE(out.find("+inf"), std::string::npos);
}

TEST(TreeDumpTest, ElidesLongLevels) {
  SagivTree tree(K2());
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  DumpOptions options;
  options.max_nodes_per_level = 2;
  const std::string out = DumpStructureToString(tree, options);
  EXPECT_NE(out.find("more)"), std::string::npos);
}

TEST(TreeDumpTest, ShowEntriesPrintsPairs) {
  SagivTree tree(K2());
  ASSERT_TRUE(tree.Insert(7, 70).ok());
  DumpOptions options;
  options.show_entries = true;
  const std::string out = DumpStructureToString(tree, options);
  EXPECT_NE(out.find("7=70"), std::string::npos);
}

}  // namespace
}  // namespace obtree
