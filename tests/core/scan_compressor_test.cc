// Copyright 2026 The obtree Authors.
//
// Single-threaded functional tests of the Section 5.1-5.2 scan compressor:
// merges, redistributions, root collapse, space reclamation, and the
// O(log n) pass bound for collapsing an emptied tree.

#include "obtree/core/scan_compressor.h"

#include <set>

#include <gtest/gtest.h>

#include "obtree/core/rearrange.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

TreeOptions SmallNodes(uint32_t k = 2) {
  TreeOptions opt;
  opt.min_entries = k;
  return opt;
}

// Run full passes until a pass does no work; returns the number of passes.
size_t CompressToFixpoint(SagivTree* tree, size_t max_passes = 200) {
  ScanCompressor compressor(tree);
  size_t passes = 0;
  while (passes < max_passes) {
    ++passes;
    if (compressor.FullPass() == 0) break;
  }
  return passes;
}

TEST(ScanCompressorTest, NoWorkOnHealthyTree) {
  SagivTree tree(SmallNodes(3));
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  ScanCompressor compressor(&tree);
  // Sequential fill leaves many half-full-ish nodes but none under-full?
  // Not guaranteed — so just require a fixpoint and validity.
  CompressToFixpoint(&tree);
  EXPECT_EQ(ScanCompressor(&tree).FullPass(), 0u);
  Status s = TreeChecker(&tree).CheckStructure(/*require_half_full=*/true);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ScanCompressorTest, EmptyTreeNothingToDo) {
  SagivTree tree(SmallNodes());
  EXPECT_EQ(ScanCompressor(&tree).FullPass(), 0u);
  EXPECT_EQ(tree.Height(), 1u);
}

TEST(ScanCompressorTest, MergesAfterHeavyDeletes) {
  SagivTree tree(SmallNodes(3));
  constexpr Key kN = 2000;
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(tree.Insert(k, k * 3).ok());
  // Delete 90%: keep every 10th key.
  for (Key k = 1; k <= kN; ++k) {
    if (k % 10 != 0) {
      ASSERT_TRUE(tree.Delete(k).ok());
    }
  }
  const TreeShape before = TreeChecker(&tree).ComputeShape();
  CompressToFixpoint(&tree);
  const TreeShape after = TreeChecker(&tree).ComputeShape();

  EXPECT_LT(after.num_nodes, before.num_nodes / 2);
  EXPECT_LE(after.height, before.height);
  EXPECT_GT(tree.stats()->Get(StatId::kMerges), 0u);

  Status s = TreeChecker(&tree).CheckStructure(/*require_half_full=*/true);
  EXPECT_TRUE(s.ok()) << s.ToString();
  // Every surviving key still findable with the right value.
  for (Key k = 10; k <= kN; k += 10) {
    ASSERT_TRUE(tree.Search(k).ok()) << k;
    EXPECT_EQ(*tree.Search(k), k * 3);
  }
  EXPECT_EQ(tree.Size(), kN / 10);
}

TEST(ScanCompressorTest, EmptiedTreeCollapsesToSingleNode) {
  SagivTree tree(SmallNodes(2));
  constexpr Key kN = 1024;
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  const uint32_t full_height = tree.Height();
  EXPECT_GT(full_height, 3u);
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(tree.Delete(k).ok());

  const size_t passes = CompressToFixpoint(&tree);
  EXPECT_EQ(tree.Height(), 1u);
  EXPECT_EQ(tree.Size(), 0u);
  // §5.1: O(log_k n) passes suffice (one level of leaves disappears per
  // pass, roughly); allow generous slack.
  EXPECT_LE(passes, static_cast<size_t>(full_height) * 4 + 4);
  EXPECT_GT(tree.stats()->Get(StatId::kRootCollapses), 0u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ScanCompressorTest, ReleasesPagesForReuse) {
  SagivTree tree(SmallNodes(2));
  constexpr Key kN = 1000;
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  const size_t live_before = tree.internal_pager()->live_pages();
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(tree.Delete(k).ok());
  CompressToFixpoint(&tree);
  tree.internal_pager()->Reclaim();
  const size_t live_after = tree.internal_pager()->live_pages();
  EXPECT_LT(live_after, live_before / 10);
  EXPECT_GT(tree.internal_pager()->free_pages(), 0u);
  // Freed pages are actually reused by new allocations.
  const size_t allocated = tree.internal_pager()->allocated_pages();
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  EXPECT_EQ(tree.internal_pager()->allocated_pages(), allocated);
}

TEST(ScanCompressorTest, RedistributionBalancesWithoutMerging) {
  // Build two adjacent leaves where one is under-full but together they
  // exceed 2k: expect a redistribution, not a merge.
  SagivTree tree(SmallNodes(3));  // k=3, capacity 6
  for (Key k = 1; k <= 12; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  // Leaves after sequential fill: delete from the first leaf until it is
  // under-full while its right neighbor stays fat.
  TreeShape shape = TreeChecker(&tree).ComputeShape();
  ASSERT_GT(shape.nodes_per_level[0], 1u);
  ASSERT_TRUE(tree.Delete(1).ok());
  ASSERT_TRUE(tree.Delete(2).ok());
  (void)tree.Delete(3);

  tree.stats()->Reset();
  CompressToFixpoint(&tree);
  Status s = TreeChecker(&tree).CheckStructure(/*require_half_full=*/true);
  EXPECT_TRUE(s.ok()) << s.ToString();
  // At least one restructuring happened and all remaining keys survive.
  for (Key k = 4; k <= 12; ++k) EXPECT_TRUE(tree.Search(k).ok()) << k;
}

TEST(ScanCompressorTest, CompressLevelOnMissingLevelIsNoop) {
  SagivTree tree(SmallNodes());
  ScanCompressor compressor(&tree);
  EXPECT_EQ(compressor.CompressLevel(0), 0u);   // height-1 tree: no parents
  EXPECT_EQ(compressor.CompressLevel(17), 0u);  // far above the root
}

TEST(TryCollapseRootTest, NoopOnHealthyRoot) {
  SagivTree tree(SmallNodes());
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  const uint32_t h = tree.Height();
  EXPECT_EQ(TryCollapseRoot(&tree), 0u);
  EXPECT_EQ(tree.Height(), h);
}

TEST(TryCollapseRootTest, NoopOnLeafRoot) {
  SagivTree tree(SmallNodes());
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  EXPECT_EQ(TryCollapseRoot(&tree), 0u);
  EXPECT_EQ(tree.Height(), 1u);
}

TEST(ScanCompressorTest, InterleavedDeleteCompressCycles) {
  // Repeated shrink/grow cycles with compression in between must keep the
  // structure valid and the data exact.
  SagivTree tree(SmallNodes(2));
  std::set<Key> reference;
  Random rng(99);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 400; ++i) {
      const Key k = rng.UniformRange(1, 1500);
      if (tree.Insert(k, k).ok()) reference.insert(k);
    }
    for (int i = 0; i < 500; ++i) {
      const Key k = rng.UniformRange(1, 1500);
      if (tree.Delete(k).ok()) reference.erase(k);
    }
    CompressToFixpoint(&tree);
    ASSERT_EQ(tree.Size(), reference.size()) << "round " << round;
    Status s = TreeChecker(&tree).CheckStructure(/*require_half_full=*/true);
    ASSERT_TRUE(s.ok()) << "round " << round << ": " << s.ToString();
  }
  for (Key k : reference) ASSERT_TRUE(tree.Search(k).ok()) << k;
  size_t scanned = tree.Scan(1, kMaxUserKey, [&](Key k, Value) {
    return reference.count(k) > 0;
  });
  EXPECT_EQ(scanned, reference.size());
}

}  // namespace
}  // namespace obtree
