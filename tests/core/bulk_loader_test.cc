// Copyright 2026 The obtree Authors.

#include "obtree/core/bulk_loader.h"

#include <sstream>

#include <gtest/gtest.h>

#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

std::vector<std::pair<Key, Value>> MakePairs(uint64_t n, Key stride = 1) {
  std::vector<std::pair<Key, Value>> pairs;
  pairs.reserve(n);
  for (uint64_t i = 1; i <= n; ++i) {
    pairs.emplace_back(i * stride, i * stride + 7);
  }
  return pairs;
}

TreeOptions K(uint32_t k) {
  TreeOptions opt;
  opt.min_entries = k;
  return opt;
}

TEST(BulkLoadTest, EmptyInputIsNoop) {
  SagivTree tree(K(4));
  ASSERT_TRUE(BulkLoad(&tree, {}).ok());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_TRUE(TreeChecker(&tree).CheckStructure().ok());
}

TEST(BulkLoadTest, SingleLeafLoad) {
  SagivTree tree(K(4));
  ASSERT_TRUE(BulkLoad(&tree, MakePairs(5)).ok());
  EXPECT_EQ(tree.Size(), 5u);
  EXPECT_EQ(tree.Height(), 1u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(*tree.Search(3), 10u);
}

// A bulk load must arm the append fast-path hints for the loaded state:
// the watermark rises to the loaded max (inserts below it take the plain
// descent with no fast-path attempt) and the rightmost hint names the
// loaded frontier (the first max-extending insert hits directly).
TEST(BulkLoadTest, LoadArmsAppendFastPathHints) {
  SagivTree tree(K(4));
  // Even keys 2..200: leaves gaps to insert into below the loaded max.
  ASSERT_TRUE(BulkLoad(&tree, MakePairs(100, 2)).ok());

  // 99 < loaded max 200: not max-extending, so no fast-path attempt (a
  // stale-low watermark would record a miss against the retired old
  // root here).
  ASSERT_TRUE(tree.Insert(99, 100).ok());
  EXPECT_EQ(tree.stats()->Get(StatId::kAppendFastMisses), 0u);
  EXPECT_EQ(tree.stats()->Get(StatId::kAppendFastHits), 0u);

  // 300 > loaded max: the hint points straight at the loaded rightmost
  // leaf, so the very first max-extending insert is a fast-path hit.
  ASSERT_TRUE(tree.Insert(300, 301).ok());
  EXPECT_EQ(tree.stats()->Get(StatId::kAppendFastHits), 1u);
  EXPECT_EQ(tree.stats()->Get(StatId::kAppendFastMisses), 0u);

  EXPECT_EQ(*tree.Search(99), 100u);
  EXPECT_EQ(*tree.Search(300), 301u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(BulkLoadTest, LargeLoadMatchesInsertion) {
  const auto pairs = MakePairs(50'000, 3);
  SagivTree loaded(K(16));
  ASSERT_TRUE(BulkLoad(&loaded, pairs).ok());
  EXPECT_EQ(loaded.Size(), pairs.size());
  Status s = TreeChecker(&loaded).CheckStructure(/*require_half_full=*/true);
  EXPECT_TRUE(s.ok()) << s.ToString();

  // Identical logical contents to an insert-built tree.
  size_t i = 0;
  loaded.Scan(1, kMaxUserKey, [&](Key k, Value v) {
    EXPECT_EQ(k, pairs[i].first);
    EXPECT_EQ(v, pairs[i].second);
    ++i;
    return true;
  });
  EXPECT_EQ(i, pairs.size());
  // Spot lookups.
  EXPECT_EQ(*loaded.Search(3), 10u);
  EXPECT_TRUE(loaded.Search(4).status().IsNotFound());
}

TEST(BulkLoadTest, FillFactorControlsShape) {
  const auto pairs = MakePairs(20'000);
  SagivTree packed(K(32));
  SagivTree loose(K(32));
  ASSERT_TRUE(BulkLoad(&packed, pairs, 1.0).ok());
  ASSERT_TRUE(BulkLoad(&loose, pairs, 0.6).ok());
  const TreeShape tight = TreeChecker(&packed).ComputeShape();
  const TreeShape roomy = TreeChecker(&loose).ComputeShape();
  EXPECT_LT(tight.num_nodes, roomy.num_nodes);
  EXPECT_GT(tight.avg_leaf_fill, 0.95);
  EXPECT_NEAR(roomy.avg_leaf_fill, 0.6, 0.05);
  EXPECT_TRUE(TreeChecker(&packed).CheckStructure().ok());
  EXPECT_TRUE(TreeChecker(&loose).CheckStructure().ok());
}

TEST(BulkLoadTest, LoadedTreeSupportsUpdates) {
  SagivTree tree(K(8));
  ASSERT_TRUE(BulkLoad(&tree, MakePairs(10'000, 2)).ok());
  for (Key k = 1; k <= 2000; k += 2) {
    ASSERT_TRUE(tree.Insert(k, k).ok()) << k;  // odd keys are free
  }
  for (Key k = 2; k <= 2000; k += 2) {
    ASSERT_TRUE(tree.Delete(k).ok()) << k;
  }
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(BulkLoadTest, RejectsBadInput) {
  SagivTree tree(K(4));
  EXPECT_TRUE(BulkLoad(&tree, {{5, 1}, {5, 2}}).IsInvalidArgument());
  EXPECT_TRUE(BulkLoad(&tree, {{7, 1}, {3, 2}}).IsInvalidArgument());
  EXPECT_TRUE(BulkLoad(&tree, {{0, 1}}).IsInvalidArgument());
  EXPECT_TRUE(BulkLoad(&tree, MakePairs(5), 0.3).IsInvalidArgument());
  // The failed loads left the tree untouched and usable.
  ASSERT_TRUE(BulkLoad(&tree, MakePairs(5)).ok());
  EXPECT_EQ(tree.Size(), 5u);
}

TEST(BulkLoadTest, RejectsNonEmptyTree) {
  SagivTree tree(K(4));
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  EXPECT_TRUE(BulkLoad(&tree, MakePairs(5)).IsInvalidArgument());
}

TEST(DumpLoadTest, RoundTripPreservesEverything) {
  SagivTree tree(K(8));
  Random rng(5);
  std::vector<std::pair<Key, Value>> pairs;
  for (int i = 0; i < 10'000; ++i) {
    (void)tree.Insert(rng.UniformRange(1, 1u << 20), rng.Next());
  }
  std::ostringstream out;
  ASSERT_TRUE(DumpTree(tree, &out).ok());

  std::istringstream in(out.str());
  auto restored = LoadTree(&in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->Size(), tree.Size());
  EXPECT_EQ((*restored)->options().min_entries, 8u);
  Status s = TreeChecker(restored->get()).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();

  // Pairwise identical.
  std::vector<std::pair<Key, Value>> original;
  tree.Scan(1, kMaxUserKey, [&](Key k, Value v) {
    original.emplace_back(k, v);
    return true;
  });
  size_t i = 0;
  bool match = true;
  (*restored)->Scan(1, kMaxUserKey, [&](Key k, Value v) {
    match = match && i < original.size() && original[i] == std::make_pair(k, v);
    ++i;
    return true;
  });
  EXPECT_TRUE(match);
  EXPECT_EQ(i, original.size());
}

TEST(DumpLoadTest, RejectsCorruptStreams) {
  std::istringstream bad_magic("XXXX garbage");
  EXPECT_TRUE(LoadTree(&bad_magic).status().IsInvalidArgument());

  SagivTree tree(K(4));
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  std::ostringstream out;
  ASSERT_TRUE(DumpTree(tree, &out).ok());
  const std::string full = out.str();
  std::istringstream truncated(full.substr(0, full.size() - 4));
  EXPECT_TRUE(LoadTree(&truncated).status().IsInvalidArgument());
}

TEST(DumpLoadTest, EmptyTreeRoundTrip) {
  SagivTree tree(K(4));
  std::ostringstream out;
  ASSERT_TRUE(DumpTree(tree, &out).ok());
  std::istringstream in(out.str());
  auto restored = LoadTree(&in);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->Size(), 0u);
}

}  // namespace
}  // namespace obtree
