// Copyright 2026 The obtree Authors.
//
// Deterministic edge-case tests. A TreeBuilder assembles exact tree states
// through the storage layer so the rarely-hit protocol branches can be
// exercised on purpose rather than hoping a stress test stumbles into
// them: the §5.2 "wait until two is inserted into F" case, the footnote-14
// stale-task discard, the §5.4 left-neighbor and requeue paths, root
// collapses, checker rejection of every corruption class, and allocation-
// failure injection through the insertion error paths.

#include <initializer_list>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/core/compression_queue.h"
#include "obtree/core/queue_compressor.h"
#include "obtree/core/rearrange.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/core/tree_checker.h"

namespace obtree {
namespace {

// Assembles a tree from an explicit leaf layout: leaves are given left to
// right as key lists; parent levels are built by grouping `fanout`
// children per node. Writes nodes and the prime block directly.
class TreeBuilder {
 public:
  explicit TreeBuilder(SagivTree* tree) : tree_(tree) {}

  struct Built {
    std::vector<std::vector<PageId>> level_pages;  // [0] = leaves
  };

  Built Build(const std::vector<std::vector<Key>>& leaves, uint32_t fanout) {
    PageManager* pager = tree_->internal_pager();
    Built built;

    // Level 0: leaves.
    std::vector<PageId> pages;
    std::vector<Key> highs;
    uint64_t total_keys = 0;
    for (size_t i = 0; i < leaves.size(); ++i) {
      pages.push_back(*pager->Allocate());
    }
    Key low = kMinusInfinity;
    for (size_t i = 0; i < leaves.size(); ++i) {
      Page page;
      page.Clear();
      Node* node = page.As<Node>();
      const bool last = i + 1 == leaves.size();
      const Key high = last ? kPlusInfinity : leaves[i].back();
      node->Init(0, low, high, last ? kInvalidPageId : pages[i + 1]);
      for (Key k : leaves[i]) {
        node->entries[node->count++] = Entry{k, k * 10};
      }
      total_keys += node->count;
      pager->Put(pages[i], page);
      highs.push_back(high);
      low = high;
    }
    built.level_pages.push_back(pages);

    // Internal levels.
    uint16_t level = 0;
    while (pages.size() > 1) {
      ++level;
      std::vector<PageId> parent_pages;
      std::vector<Key> parent_highs;
      const size_t parents = (pages.size() + fanout - 1) / fanout;
      for (size_t i = 0; i < parents; ++i) {
        parent_pages.push_back(*pager->Allocate());
      }
      Key plow = kMinusInfinity;
      for (size_t i = 0; i < parents; ++i) {
        Page page;
        page.Clear();
        Node* node = page.As<Node>();
        const bool last = i + 1 == parents;
        const size_t begin = i * fanout;
        const size_t end = std::min(begin + fanout, pages.size());
        node->Init(level, plow, highs[end - 1],
                   last ? kInvalidPageId : parent_pages[i + 1]);
        for (size_t c = begin; c < end; ++c) {
          node->entries[node->count++] = Entry{highs[c], pages[c]};
        }
        pager->Put(parent_pages[i], page);
        parent_highs.push_back(highs[end - 1]);
        plow = highs[end - 1];
      }
      pages = std::move(parent_pages);
      highs = std::move(parent_highs);
      built.level_pages.push_back(pages);
    }

    // Root bit + prime block.
    {
      Page page;
      pager->Get(pages[0], &page);
      page.As<Node>()->set_root(true);
      pager->Put(pages[0], page);
    }
    PrimeBlockData pb;
    pb.num_levels = static_cast<uint32_t>(built.level_pages.size());
    for (uint32_t l = 0; l < pb.num_levels; ++l) {
      pb.leftmost[l] = built.level_pages[l][0];
    }
    // Retire the constructor-made root: clear its bit and mark it deleted
    // with a merge pointer into the built tree, as the protocol prescribes
    // for every detached node (otherwise it still looks like a live empty
    // rightmost leaf, which the append fast path would trust).
    {
      const PageId old_root = tree_->internal_prime()->Read().root();
      Page page;
      pager->Get(old_root, &page);
      page.As<Node>()->set_root(false);
      page.As<Node>()->set_deleted(built.level_pages[0][0]);
      pager->Put(old_root, page);
    }
    tree_->internal_prime()->Write(pb);
    tree_->internal_AdjustSize(static_cast<int64_t>(total_keys));
    return built;
  }

  // Read / mutate raw nodes for corruption tests.
  Node ReadNode(PageId page) const {
    Page buf;
    tree_->internal_pager()->Get(page, &buf);
    return *buf.As<Node>();
  }
  void WriteNode(PageId page, const Node& node) {
    Page buf;
    *buf.As<Node>() = node;
    tree_->internal_pager()->Put(page, buf);
  }

 private:
  SagivTree* tree_;
};

TreeOptions K2() {
  TreeOptions opt;
  opt.min_entries = 2;
  opt.compression_wait_retries = 4;  // keep the wait case fast in tests
  return opt;
}

TEST(TreeBuilderTest, BuildsValidTrees) {
  SagivTree tree(K2());
  TreeBuilder builder(&tree);
  builder.Build({{10, 20}, {30, 40, 50}, {60, 70}}, /*fanout=*/2);
  Status s = TreeChecker(&tree).CheckStructure();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(tree.Size(), 7u);
  EXPECT_EQ(*tree.Search(30), 300u);
  EXPECT_EQ(*tree.Search(70), 700u);
  EXPECT_TRUE(tree.Search(35).status().IsNotFound());
  // The built tree supports normal operations.
  ASSERT_TRUE(tree.Insert(35, 1).ok());
  ASSERT_TRUE(tree.Delete(60).ok());
  s = TreeChecker(&tree).CheckStructure();
  ASSERT_TRUE(s.ok()) << s.ToString();
}

// --- scan-compressor branches ----------------------------------------------

TEST(ScanCompressorEdgeTest, MergesAdjacentUnderfullPair) {
  SagivTree tree(K2());
  TreeBuilder builder(&tree);
  auto built = builder.Build({{10}, {20}, {30, 40, 50}}, /*fanout=*/3);
  ScanCompressor compressor(&tree);
  EXPECT_GT(compressor.CompressLevel(0), 0u);
  EXPECT_GT(tree.stats()->Get(StatId::kMerges), 0u);
  Status s = TreeChecker(&tree).CheckStructure(/*require_half_full=*/true);
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (Key k : {10, 20, 30, 40, 50}) EXPECT_TRUE(tree.Search(k).ok()) << k;
}

TEST(ScanCompressorEdgeTest, RedistributesWhenMergeWouldOverflow) {
  SagivTree tree(K2());  // capacity 4
  TreeBuilder builder(&tree);
  builder.Build({{10}, {20, 30, 40, 50}}, /*fanout=*/2);
  ScanCompressor compressor(&tree);
  EXPECT_GT(compressor.CompressLevel(0), 0u);
  EXPECT_EQ(tree.stats()->Get(StatId::kMerges), 0u);
  EXPECT_EQ(tree.stats()->Get(StatId::kRedistributions), 1u);
  Status s = TreeChecker(&tree).CheckStructure(/*require_half_full=*/true);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ScanCompressorEdgeTest, WaitsWhenSeparatorUnposted) {
  // Simulate an insertion caught mid-ascent: leaf A split into A + B, but
  // the pair for B has not been posted into F. compress-level must WAIT
  // (bounded), not merge around the orphan.
  SagivTree tree(K2());
  TreeBuilder builder(&tree);
  auto built = builder.Build({{10, 20}, {30, 40}, {50, 60}}, /*fanout=*/3);
  const PageId a_page = built.level_pages[0][0];
  const PageId f_page = built.level_pages[1][0];

  // Split A by hand: A keeps {10}, orphan B gets {20}.
  PageManager* pager = tree.internal_pager();
  const PageId b_page = *pager->Allocate();
  Node a = builder.ReadNode(a_page);
  Node b;
  b.Init(0, 10, 20, a.link);
  b.entries[b.count++] = Entry{20, 200};
  a.count = 1;
  a.high = 10;
  a.link = b_page;
  builder.WriteNode(b_page, b);
  builder.WriteNode(a_page, a);
  // F still reads (20 -> A): the separator (10 -> A) is "unposted".

  ScanCompressor compressor(&tree);
  const size_t work = compressor.CompressLevel(0);
  EXPECT_GT(tree.stats()->Get(StatId::kCompressWaits), 0u);
  (void)work;
  // A and the orphan B were not merged around; searches still work
  // through the link.
  EXPECT_TRUE(tree.Search(20).ok());

  // Now post the separator as the insertion ascent would, and compression
  // proceeds.
  Node f = builder.ReadNode(f_page);
  ASSERT_TRUE(f.InsertChildSplit(10, b_page));
  builder.WriteNode(f_page, f);
  tree.stats()->Reset();
  ScanCompressor compressor2(&tree);
  EXPECT_GT(compressor2.CompressLevel(0), 0u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ScanCompressorEdgeTest, RootWithTwoMergeableChildrenCollapses) {
  SagivTree tree(K2());
  TreeBuilder builder(&tree);
  builder.Build({{10}, {20}}, /*fanout=*/2);
  EXPECT_EQ(tree.Height(), 2u);
  ScanCompressor compressor(&tree);
  while (compressor.FullPass() > 0) {
  }
  EXPECT_EQ(tree.Height(), 1u);
  EXPECT_GT(tree.stats()->Get(StatId::kRootCollapses), 0u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(tree.Search(10).ok());
  EXPECT_TRUE(tree.Search(20).ok());
}

TEST(TryCollapseRootTest, CollapsesMultiLevelSingleChildChain) {
  SagivTree tree(K2());
  TreeBuilder builder(&tree);
  // fanout 1 produces a pure chain: root -> internal -> internal -> leaf.
  builder.Build({{10, 20, 30}}, /*fanout=*/1);
  // Build() with one leaf creates height 1 directly; force a chain by
  // hand instead.
  PageManager* pager = tree.internal_pager();
  PrimeBlockData pb = tree.internal_prime()->Read();
  const PageId leaf = pb.leftmost[0];
  PageId child = leaf;
  for (uint16_t level = 1; level <= 3; ++level) {
    const PageId page = *pager->Allocate();
    Page buf;
    buf.Clear();
    Node* node = buf.As<Node>();
    node->Init(level, kMinusInfinity, kPlusInfinity, kInvalidPageId);
    node->entries[node->count++] = Entry{kPlusInfinity, child};
    pager->Put(page, buf);
    pb.leftmost[level] = page;
    child = page;
  }
  pb.num_levels = 4;
  // Move the root bit to the top of the chain.
  {
    Page buf;
    pager->Get(pb.leftmost[0], &buf);
    buf.As<Node>()->set_root(false);
    pager->Put(pb.leftmost[0], buf);
    pager->Get(pb.leftmost[3], &buf);
    buf.As<Node>()->set_root(true);
    pager->Put(pb.leftmost[3], buf);
  }
  tree.internal_prime()->Write(pb);
  ASSERT_EQ(tree.Height(), 4u);

  EXPECT_EQ(TryCollapseRoot(&tree), 3u);
  EXPECT_EQ(tree.Height(), 1u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (Key k : {10, 20, 30}) EXPECT_TRUE(tree.Search(k).ok()) << k;
}

// --- queue-compressor branches ---------------------------------------------

struct QueueFixture {
  TreeOptions options = K2();
  SagivTree tree{[] {
    TreeOptions o = K2();
    o.enqueue_underfull_on_delete = true;
    return o;
  }()};
  CompressionQueue queue;
  QueueCompressor compressor{&tree, &queue};

  QueueFixture() {
    queue.RegisterWith(tree.epoch());
    tree.AttachCompressionQueue(&queue);
  }

  CompressionTask TaskFor(PageId node, uint32_t level, Key high,
                          std::vector<PageId> stack) {
    CompressionTask t;
    t.node = node;
    t.level = level;
    t.high = high;
    t.stamp = tree.epoch()->Now();
    t.stack = std::move(stack);
    return t;
  }
};

TEST(QueueCompressorEdgeTest, Footnote14StaleHighIsDropped) {
  QueueFixture fx;
  TreeBuilder builder(&fx.tree);
  auto built = builder.Build({{10}, {20, 30}, {40, 50}}, /*fanout=*/3);
  // F has the pair (10 -> leaf0), but the queued task records high = 99:
  // the pair check of footnote 14 fails AND the node's current high
  // differs from the recorded one -> discard.
  fx.queue.Push(fx.TaskFor(built.level_pages[0][0], 0, /*high=*/99,
                           {built.level_pages[1][0]}),
                true);
  EXPECT_EQ(fx.compressor.CompressOne(),
            QueueCompressor::Outcome::kDropped);
  EXPECT_EQ(fx.tree.stats()->Get(StatId::kQueueDiscards), 1u);
  EXPECT_TRUE(fx.queue.Empty());
}

TEST(QueueCompressorEdgeTest, UnpostedSeparatorIsRequeued) {
  QueueFixture fx;
  TreeBuilder builder(&fx.tree);
  auto built = builder.Build({{10, 20}, {30, 40}, {50, 60}}, /*fanout=*/3);
  const PageId a_page = built.level_pages[0][0];
  // Hand-split A (separator unposted), then enqueue the under-full A with
  // its CURRENT high: F has no (pointer, high) pair yet -> requeue.
  PageManager* pager = fx.tree.internal_pager();
  const PageId b_page = *pager->Allocate();
  Node a = builder.ReadNode(a_page);
  Node b;
  b.Init(0, 10, 20, a.link);
  b.entries[b.count++] = Entry{20, 200};
  a.count = 1;
  a.high = 10;
  a.link = b_page;
  builder.WriteNode(b_page, b);
  builder.WriteNode(a_page, a);

  fx.queue.Push(
      fx.TaskFor(a_page, 0, /*high=*/10, {built.level_pages[1][0]}), true);
  EXPECT_EQ(fx.compressor.CompressOne(),
            QueueCompressor::Outcome::kRequeued);
  EXPECT_TRUE(fx.queue.Contains(a_page));
  EXPECT_GT(fx.tree.stats()->Get(StatId::kQueueRequeues), 0u);
}

TEST(QueueCompressorEdgeTest, RightmostChildPairsWithLeftNeighbor) {
  QueueFixture fx;
  TreeBuilder builder(&fx.tree);
  // Rightmost leaf {60} is under-full; its only in-parent partner is the
  // LEFT neighbor (§5.4 case (2)).
  auto built =
      builder.Build({{10, 20, 30}, {40, 50}, {60}}, /*fanout=*/3);
  fx.queue.Push(fx.TaskFor(built.level_pages[0][2], 0, kPlusInfinity,
                           {built.level_pages[1][0]}),
                true);
  EXPECT_EQ(fx.compressor.CompressOne(),
            QueueCompressor::Outcome::kRestructured);
  Status s = TreeChecker(&fx.tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (Key k : {40, 50, 60}) EXPECT_TRUE(fx.tree.Search(k).ok()) << k;
  EXPECT_GT(fx.tree.stats()->Get(StatId::kMerges), 0u);
}

TEST(QueueCompressorEdgeTest, HealthyNodeIsLeftAlone) {
  QueueFixture fx;
  TreeBuilder builder(&fx.tree);
  auto built = builder.Build({{10, 20}, {30, 40}, {50, 60}}, /*fanout=*/3);
  // Footnote 15: the node regained entries before its turn came.
  fx.queue.Push(
      fx.TaskFor(built.level_pages[0][0], 0, 20, {built.level_pages[1][0]}),
      true);
  EXPECT_EQ(fx.compressor.CompressOne(),
            QueueCompressor::Outcome::kNothing);
  Status s = TreeChecker(&fx.tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(QueueCompressorEdgeTest, EmptyStackFallsBackToRootDescent) {
  QueueFixture fx;
  TreeBuilder builder(&fx.tree);
  auto built = builder.Build({{10}, {20, 30}, {40, 50}}, /*fanout=*/3);
  // No stack recorded: the compressor must locate the parent from the
  // root (the §5.4 stale/empty-stack path).
  fx.queue.Push(fx.TaskFor(built.level_pages[0][0], 0, 10, {}), true);
  EXPECT_EQ(fx.compressor.CompressOne(),
            QueueCompressor::Outcome::kRestructured);
  Status s = TreeChecker(&fx.tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(QueueCompressorEdgeTest, StaleStackStillWorks) {
  QueueFixture fx;
  TreeBuilder builder(&fx.tree);
  auto built = builder.Build({{10}, {20, 30}, {40, 50}}, /*fanout=*/3);
  // A stack pointing at a bogus page id of the wrong level: the parent
  // search must detect it and restart from the root.
  fx.queue.Push(
      fx.TaskFor(built.level_pages[0][0], 0, 10, {built.level_pages[0][1]}),
      true);
  EXPECT_EQ(fx.compressor.CompressOne(),
            QueueCompressor::Outcome::kRestructured);
  Status s = TreeChecker(&fx.tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// --- checker rejects every corruption class --------------------------------

class CheckerNegativeTest : public ::testing::Test {
 protected:
  CheckerNegativeTest() : tree_(K2()), builder_(&tree_) {
    built_ = builder_.Build({{10, 20}, {30, 40}, {50, 60}}, /*fanout=*/3);
  }

  void ExpectRejected(const char* what) {
    Status s = TreeChecker(&tree_).CheckStructure();
    EXPECT_FALSE(s.ok()) << "corruption not detected: " << what;
  }

  SagivTree tree_;
  TreeBuilder builder_;
  TreeBuilder::Built built_;
};

TEST_F(CheckerNegativeTest, AcceptsHealthyTree) {
  EXPECT_TRUE(TreeChecker(&tree_).CheckStructure().ok());
}

TEST_F(CheckerNegativeTest, DetectsUnsortedEntries) {
  Node n = builder_.ReadNode(built_.level_pages[0][0]);
  std::swap(n.entries[0], n.entries[1]);
  builder_.WriteNode(built_.level_pages[0][0], n);
  ExpectRejected("unsorted entries");
}

TEST_F(CheckerNegativeTest, DetectsBrokenLowChain) {
  Node n = builder_.ReadNode(built_.level_pages[0][1]);
  n.low = 15;  // should be 20 (left neighbor's high)
  builder_.WriteNode(built_.level_pages[0][1], n);
  ExpectRejected("broken low chain");
}

TEST_F(CheckerNegativeTest, DetectsEntryAboveHigh) {
  Node n = builder_.ReadNode(built_.level_pages[0][0]);
  n.entries[n.count - 1].key = 25;  // above high (20)
  builder_.WriteNode(built_.level_pages[0][0], n);
  ExpectRejected("entry above high");
}

TEST_F(CheckerNegativeTest, DetectsInternalHighMismatch) {
  Node n = builder_.ReadNode(built_.level_pages[1][0]);
  n.high = 70;  // != last entry key (+inf mismatch forced differently)
  builder_.WriteNode(built_.level_pages[1][0], n);
  ExpectRejected("internal high mismatch");
}

TEST_F(CheckerNegativeTest, DetectsReachableDeletedNode) {
  Node n = builder_.ReadNode(built_.level_pages[0][1]);
  n.set_deleted(built_.level_pages[0][0]);
  builder_.WriteNode(built_.level_pages[0][1], n);
  ExpectRejected("reachable deleted node");
}

TEST_F(CheckerNegativeTest, DetectsReplayMismatch) {
  Node n = builder_.ReadNode(built_.level_pages[1][0]);
  n.entries[0].key = 21;  // separator no longer equals child high
  builder_.WriteNode(built_.level_pages[1][0], n);
  ExpectRejected("replay mismatch");
}

TEST_F(CheckerNegativeTest, DetectsSizeMismatch) {
  tree_.internal_AdjustSize(5);
  ExpectRejected("size mismatch");
}

TEST_F(CheckerNegativeTest, DetectsMissingRootBit) {
  Node n = builder_.ReadNode(built_.level_pages[1][0]);
  n.set_root(false);
  builder_.WriteNode(built_.level_pages[1][0], n);
  ExpectRejected("missing root bit");
}

TEST_F(CheckerNegativeTest, DetectsUnderfullWhenStrict) {
  ASSERT_TRUE(tree_.Delete(10).ok());  // leaf 0 drops to 1 < k=2
  Status s = TreeChecker(&tree_).CheckStructure(/*require_half_full=*/true);
  EXPECT_FALSE(s.ok());
  // ...but the relaxed check accepts it (Section 4 semantics).
  EXPECT_TRUE(TreeChecker(&tree_).CheckStructure(false).ok());
}

// --- allocation-failure injection ------------------------------------------

TEST(FaultInjectionTest, SplitFailureLeavesTreeValidAndUnlocked) {
  TreeOptions opt = K2();
  SagivTree tree(opt);
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());

  // Forbid all further allocations: the next split must fail cleanly.
  tree.internal_pager()->set_allocation_budget(0);
  int failures = 0;
  for (Key k = 101; k <= 200; ++k) {
    Status s = tree.Insert(k, k);
    if (!s.ok()) {
      EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_EQ(PageManager::LocksHeldByThisThread(), 0);

  // Restore the budget: everything works again and the tree is valid.
  tree.internal_pager()->set_allocation_budget(-1);
  for (Key k = 500; k <= 600; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(FaultInjectionTest, PartialBudgetExercisesRootSplitFailure) {
  TreeOptions opt = K2();
  SagivTree tree(opt);
  // Let a few allocations through so failures land mid-protocol (e.g.
  // after the sibling page is allocated but before the new root's page).
  for (int budget = 0; budget < 4; ++budget) {
    SagivTree fresh(opt);
    for (Key k = 1; k <= 4; ++k) ASSERT_TRUE(fresh.Insert(k, k).ok());
    fresh.internal_pager()->set_allocation_budget(budget);
    for (Key k = 5; k <= 40; ++k) (void)fresh.Insert(k, k);
    EXPECT_EQ(PageManager::LocksHeldByThisThread(), 0);
    fresh.internal_pager()->set_allocation_budget(-1);
    for (Key k = 100; k <= 140; ++k) ASSERT_TRUE(fresh.Insert(k, k).ok());
    Status s = TreeChecker(&fresh).CheckStructure();
    EXPECT_TRUE(s.ok()) << "budget " << budget << ": " << s.ToString();
  }
}

}  // namespace
}  // namespace obtree
