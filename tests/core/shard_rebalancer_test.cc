// Copyright 2026 The obtree Authors.
//
// Online shard rebalancing: controller policy (split hot / merge cold),
// the live-migration protocol's mid-window interleavings (driven through
// the migration test hook), and an 8-thread churn stress that doubles as
// the TSan race check for the routing-table swap and dual-lookup paths.

#include "obtree/core/shard_rebalancer.h"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "obtree/api/sharded_map.h"
#include "obtree/core/background_pool.h"
#include "obtree/util/fault_injector.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

// A rebalancing-enabled config whose controller thread is effectively
// parked (one-hour period): tests drive policy deterministically through
// TickForTest and mechanism through DebugSplitShard/DebugMergeShards.
ShardOptions RebalancingShards(uint32_t num_shards, Key key_space_hint) {
  ShardOptions opt;
  opt.num_shards = num_shards;
  opt.key_space_hint = key_space_hint;
  opt.compression = CompressionMode::kNone;
  opt.tree.min_entries = 3;
  opt.rebalance.enabled = true;
  opt.rebalance.period_ms = 3'600'000;
  opt.rebalance.min_shards = 1;
  opt.rebalance.max_shards = 16;
  opt.rebalance.min_ops_per_period = 100;
  opt.rebalance.min_keys_to_split = 10;
  opt.rebalance.cooldown_periods = 0;
  return opt;
}

void FillRange(ShardedMap* map, Key lo, Key hi) {
  for (Key k = lo; k <= hi; ++k) {
    ASSERT_TRUE(map->Insert(k, k * 10).ok()) << k;
  }
}

void ExpectAllPresent(const ShardedMap& map, Key lo, Key hi) {
  for (Key k = lo; k <= hi; ++k) {
    Result<Value> r = map.Get(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, k * 10) << k;
  }
  Key prev = 0;
  size_t count = 0;
  map.Scan(lo, hi, [&](Key k, Value v) {
    EXPECT_GT(k, prev);
    EXPECT_EQ(v, k * 10);
    prev = k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, hi - lo + 1);
}

TEST(RebalanceOptionsTest, Validation) {
  RebalanceOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
  opt.period_ms = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RebalanceOptions();
  opt.hotness_threshold = 1.0;  // every balanced shard would qualify
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RebalanceOptions();
  opt.hotness_threshold = 3.0;
  opt.cold_threshold = 0.7;  // 3.0 * 0.7 >= 2: a split could re-merge
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RebalanceOptions();
  opt.min_shards = 8;
  opt.max_shards = 4;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = RebalanceOptions();
  opt.migration_batch = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());

  // ShardOptions only accepts an initial shard count the rebalancer may
  // legally keep.
  ShardOptions sharded;
  sharded.rebalance.enabled = true;
  sharded.rebalance.max_shards = 2;
  sharded.num_shards = 4;
  EXPECT_TRUE(sharded.Validate().IsInvalidArgument());
}

TEST(ShardRebalancerTest, DisabledMapsHaveNoControllerAndRefuseDebugActions) {
  ShardOptions opt;
  opt.num_shards = 2;
  opt.key_space_hint = 400;
  opt.compression = CompressionMode::kNone;
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  EXPECT_EQ(map.rebalancer(), nullptr);
  EXPECT_FALSE(map.DebugSplitShard(0));
  EXPECT_FALSE(map.DebugMergeShards(0));
  EXPECT_EQ(map.num_shards(), 2u);
}

TEST(ShardRebalancerTest, ManualSplitMigratesUpperHalf) {
  ShardedMap map(RebalancingShards(2, 400));
  ASSERT_TRUE(map.init_status().ok());
  FillRange(&map, 1, 200);  // all in shard 0 ([1, 200])

  ASSERT_TRUE(map.DebugSplitShard(0));
  EXPECT_EQ(map.num_shards(), 3u);
  // Median split of 1..200: the new shard starts at 101.
  EXPECT_EQ(map.ShardLowerBound(0), 1u);
  EXPECT_EQ(map.ShardLowerBound(1), 101u);
  EXPECT_EQ(map.ShardLowerBound(2), 201u);
  EXPECT_EQ(map.ShardIndex(100), 0u);
  EXPECT_EQ(map.ShardIndex(101), 1u);
  EXPECT_EQ(map.shard(0)->Size(), 100u);
  EXPECT_EQ(map.shard(1)->Size(), 100u);

  ExpectAllPresent(map, 1, 200);
  EXPECT_EQ(map.Size(), 200u);
  EXPECT_TRUE(map.ValidateStructure().ok());

  const StatsSnapshot stats = map.Stats();
  EXPECT_EQ(stats.Get(StatId::kRebalanceSplits), 1u);
  EXPECT_EQ(stats.Get(StatId::kKeysMigrated), 100u);

  // Routing still works for fresh traffic on both sides of the new
  // boundary.
  ASSERT_TRUE(map.Insert(350, 3500).ok());
  EXPECT_EQ(*map.Get(350), 3500u);
  EXPECT_TRUE(map.Insert(150, 1).IsAlreadyExists());
}

TEST(ShardRebalancerTest, ManualMergeDrainsRightIntoLeft) {
  ShardedMap map(RebalancingShards(4, 400));
  ASSERT_TRUE(map.init_status().ok());
  FillRange(&map, 1, 400);

  ASSERT_TRUE(map.DebugMergeShards(0));  // [101, 200] drains into shard 0
  EXPECT_EQ(map.num_shards(), 3u);
  EXPECT_EQ(map.ShardLowerBound(0), 1u);
  EXPECT_EQ(map.ShardLowerBound(1), 201u);
  EXPECT_EQ(map.shard(0)->Size(), 200u);

  ExpectAllPresent(map, 1, 400);
  EXPECT_EQ(map.Size(), 400u);
  EXPECT_TRUE(map.ValidateStructure().ok());

  const StatsSnapshot stats = map.Stats();
  EXPECT_EQ(stats.Get(StatId::kRebalanceMerges), 1u);
  EXPECT_EQ(stats.Get(StatId::kKeysMigrated), 100u);
}

TEST(ShardRebalancerTest, SplitThenMergeRoundTripKeepsEveryKey) {
  ShardedMap map(RebalancingShards(2, 400));
  FillRange(&map, 1, 200);
  ASSERT_TRUE(map.DebugSplitShard(0));
  ASSERT_TRUE(map.DebugMergeShards(0));
  EXPECT_EQ(map.num_shards(), 2u);
  ExpectAllPresent(map, 1, 200);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

TEST(ShardRebalancerTest, SplitRefusedOnEmptyOrUnsplittableShards) {
  ShardedMap map(RebalancingShards(2, 400));
  EXPECT_FALSE(map.DebugSplitShard(0));  // empty shard
  EXPECT_FALSE(map.DebugSplitShard(7));  // no such shard
  ASSERT_TRUE(map.Insert(5, 50).ok());
  EXPECT_FALSE(map.DebugSplitShard(0));  // one key cannot split
}

TEST(ShardRebalancerTest, SplitTreesJoinTheSharedPool) {
  ShardOptions opt = RebalancingShards(2, 400);
  opt.compression = CompressionMode::kQueueWorkers;
  opt.pool_threads = 2;
  opt.tree.min_entries = 3;
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  ASSERT_NE(map.pool(), nullptr);
  EXPECT_EQ(map.pool()->num_sources(), 2u);
  FillRange(&map, 1, 200);
  ASSERT_TRUE(map.DebugSplitShard(0));
  // The receiver attached itself to the pool; the thread count is still
  // the pool's fixed size.
  EXPECT_EQ(map.pool()->num_sources(), 3u);
  EXPECT_EQ(map.background_thread_count(), 2);
  // A merge retires the donor FROM the pool (Quiesce).
  ASSERT_TRUE(map.DebugMergeShards(0));
  EXPECT_EQ(map.pool()->num_sources(), 2u);
  ExpectAllPresent(map, 1, 200);
}

// Policy: a hotspot shard's op share exceeds the threshold -> the
// controller splits it. Driven deterministically through TickForTest (the
// controller thread itself is parked on a one-hour period).
TEST(ShardRebalancerTest, ControllerSplitsTheHotShard) {
  ShardOptions opt = RebalancingShards(2, 10'000);
  opt.rebalance.hotness_threshold = 1.5;
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  ASSERT_NE(map.rebalancer(), nullptr);
  for (Key k = 1; k <= 10'000; k += 10) {
    ASSERT_TRUE(map.Insert(k, k * 10).ok());
  }

  map.rebalancer()->TickForTest();  // first tick only baselines
  EXPECT_EQ(map.rebalancer()->splits(), 0u);

  // Hammer shard 0's range ([1, 5000]).
  for (int i = 0; i < 5000; ++i) {
    map.Get(static_cast<Key>(1 + (i * 7) % 5000));
  }
  map.rebalancer()->TickForTest();
  EXPECT_EQ(map.rebalancer()->splits(), 1u);
  EXPECT_EQ(map.num_shards(), 3u);
  // The split halves shard 0's keys, not its key range blindly.
  EXPECT_GT(map.ShardLowerBound(1), 1u);
  EXPECT_LE(map.ShardLowerBound(1), 5001u);
  EXPECT_EQ(map.Size(), 1000u);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

// Policy: an adjacent pair with (almost) no traffic merges once nothing
// is hot enough to split.
TEST(ShardRebalancerTest, ControllerMergesTheColdPair) {
  ShardOptions opt = RebalancingShards(4, 400);
  opt.rebalance.hotness_threshold = 50.0;     // block splits...
  opt.rebalance.cold_threshold = 0.03;        // ... 50 * 0.03 < 2
  opt.rebalance.min_keys_to_split = 1 << 30;  // ... doubly so
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  FillRange(&map, 1, 400);

  map.rebalancer()->TickForTest();  // baseline
  for (int i = 0; i < 3000; ++i) {
    map.Get(static_cast<Key>(201 + (i * 13) % 200));  // shards 2 and 3 only
  }
  map.rebalancer()->TickForTest();
  EXPECT_EQ(map.rebalancer()->merges(), 1u);
  EXPECT_EQ(map.num_shards(), 3u);
  ExpectAllPresent(map, 1, 400);
}

// Mechanism: freeze the migrator INSIDE the batch window, right after a
// key left the donor and before it reached the receiver, and race
// operations against the frozen migration.
TEST(ShardRebalancerTest, OperationsInTheDoubleLookupWindow) {
  ShardOptions opt = RebalancingShards(2, 400);
  opt.rebalance.migration_batch = 8;  // small in-flight window
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  FillRange(&map, 1, 200);

  std::mutex mu;
  std::condition_variable cv;
  bool frozen = false;
  bool released = false;
  bool fired_once = false;
  Key moved_key = 0;
  map.SetMigrationHookForTest([&](const char* point, Key k) {
    if (std::strcmp(point, "key-moved") != 0) return;
    std::unique_lock<std::mutex> lk(mu);
    if (fired_once) return;
    fired_once = true;
    moved_key = k;
    frozen = true;
    cv.notify_all();
    cv.wait(lk, [&]() { return released; });
  });

  std::thread splitter([&]() { ASSERT_TRUE(map.DebugSplitShard(0)); });
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&]() { return frozen; });
  }
  // Migration of [101, 200] is frozen: moved_key (the median, 101) is in
  // NEITHER tree right now, and the batch window [101, 108] is open.
  EXPECT_EQ(moved_key, 101u);

  // A search for the in-flight key must WAIT the window out — it cannot
  // report NotFound for a key that logically exists.
  std::atomic<bool> got_value{false};
  std::thread searcher([&]() {
    Result<Value> r = map.Get(moved_key);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, moved_key * 10);
    got_value.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(got_value.load());  // still parked in the window

  // Keys still in the donor stay fully operational mid-migration: reads
  // hit, duplicate inserts refuse — no waiting.
  EXPECT_EQ(*map.Get(150), 1500u);
  EXPECT_TRUE(map.Insert(150, 1).IsAlreadyExists());
  // And so do keys of the untouched lower half and the other shard.
  EXPECT_EQ(*map.Get(50), 500u);
  ASSERT_TRUE(map.Insert(300, 3000).ok());

  // A scan overlapping the frozen window terminates (bounded retries) and
  // stays strictly ascending; the one in-flight key may be skipped.
  Key prev = 0;
  size_t scanned = 0;
  map.Scan(1, 200, [&](Key k, Value v) {
    EXPECT_GT(k, prev);
    EXPECT_EQ(v, k * 10);
    prev = k;
    ++scanned;
    return true;
  });
  EXPECT_GE(scanned, 199u);
  EXPECT_LE(scanned, 200u);

  {
    std::lock_guard<std::mutex> lk(mu);
    released = true;
  }
  cv.notify_all();
  searcher.join();
  splitter.join();
  EXPECT_TRUE(got_value.load());
  // The waiting search was accounted as a migration retry on the donor.
  EXPECT_GE(map.Stats().Get(StatId::kMigrationRetries), 1u);

  ExpectAllPresent(map, 1, 200);
  EXPECT_EQ(*map.Get(300), 3000u);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

// Stress: 8 threads of hotspot-skewed churn (gets, inserts, erases,
// upserts, scans) while the controller splits and merges on a 2 ms
// period. Run under TSan in CI, this is the race check for the table
// swap, the epoch grace period, and every dual-lookup path. Correctness
// oracle: values always equal key * 10, scans are strictly ascending, and
// the final scan count equals Size().
TEST(ShardRebalancerStress, EightThreadChurnUnderLiveRebalancing) {
  ShardOptions opt;
  opt.num_shards = 2;
  opt.key_space_hint = 16'384;
  opt.compression = CompressionMode::kQueueWorkers;
  opt.pool_threads = 2;
  opt.tree.min_entries = 3;
  opt.rebalance.enabled = true;
  opt.rebalance.period_ms = 2;
  opt.rebalance.hotness_threshold = 1.5;
  opt.rebalance.cold_threshold = 0.4;
  opt.rebalance.min_shards = 1;
  opt.rebalance.max_shards = 16;
  opt.rebalance.min_ops_per_period = 256;
  opt.rebalance.min_keys_to_split = 64;
  opt.rebalance.migration_batch = 32;
  opt.rebalance.cooldown_periods = 1;
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  for (Key k = 2; k <= 16'384; k += 2) {
    ASSERT_TRUE(map.Insert(k, k * 10).ok());
  }

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10'000;
  std::atomic<uint64_t> value_mismatches{0};
  std::atomic<uint64_t> order_violations{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Random rng(0x5eed + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        // 90% of traffic on the first eighth of the key space: the
        // hotspot the controller is expected to split.
        const Key span = rng.Uniform(10) < 9 ? 2'048 : 16'384;
        const Key k = 1 + rng.Uniform(span);
        const uint32_t dice = rng.Uniform(100);
        if (dice < 50) {
          Result<Value> r = map.Get(k);
          if (r.ok() && *r != k * 10) value_mismatches.fetch_add(1);
        } else if (dice < 70) {
          map.Insert(k, k * 10);
        } else if (dice < 85) {
          map.Erase(k);
        } else if (dice < 95) {
          map.Upsert(k, k * 10);
        } else {
          Key prev = 0;
          map.Scan(k, k + 64, [&](Key sk, Value sv) {
            if (sk <= prev || sv != sk * 10) order_violations.fetch_add(1);
            prev = sk;
            return true;
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Park the controller so the final checks run against a quiescent map.
  map.rebalancer()->Stop();

  EXPECT_EQ(value_mismatches.load(), 0u);
  EXPECT_EQ(order_violations.load(), 0u);

  Key prev = 0;
  uint64_t scanned = 0;
  map.Scan(1, kMaxUserKey, [&](Key k, Value v) {
    EXPECT_GT(k, prev);
    EXPECT_EQ(v, k * 10);
    prev = k;
    ++scanned;
    return true;
  });
  EXPECT_EQ(scanned, map.Size());
  EXPECT_TRUE(map.ValidateStructure().ok());
  // The hotspot should have attracted at least one split.
  EXPECT_GE(map.rebalancer()->splits() + map.rebalancer()->merges(), 1u);
}

// --- self-healing: migration abort/rollback and the circuit breaker --------

class MigrationFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }
};

TEST_F(MigrationFaultTest, SplitAbortRollsBackToDonor) {
  // Every migration batch fails from the first one: the migration aborts
  // with zero keys moved and the topology snaps back to the donor.
  ShardedMap map(RebalancingShards(2, 400));
  ASSERT_TRUE(map.init_status().ok());
  FillRange(&map, 1, 200);

  FaultSpec fail;
  fail.action = FaultAction::kError;
  FaultInjector::Instance().Arm("migration-batch", fail);

  EXPECT_FALSE(map.DebugSplitShard(0));  // aborted, not skipped
  FaultInjector::Instance().DisarmAll();

  EXPECT_EQ(map.num_shards(), 2u);  // stillborn shard left the table
  EXPECT_EQ(map.shard(0)->Size(), 200u);
  ExpectAllPresent(map, 1, 200);
  EXPECT_TRUE(map.ValidateStructure().ok());
  EXPECT_GE(map.Stats().Get(StatId::kMigrationAborts), 1u);
  EXPECT_TRUE(map.LastRebalanceError().IsAborted());
}

TEST_F(MigrationFaultTest, MidMigrationAbortRollsMovedKeysBack) {
  // The first batch succeeds, then every later batch fails: the abort
  // happens with keys already in the receiver, and the rollback must
  // drain them back into the donor (counted as kMigrationRollbackKeys).
  ShardOptions opt = RebalancingShards(2, 400);
  opt.rebalance.migration_batch = 32;  // the 100-key upper half spans batches
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  FillRange(&map, 1, 200);

  map.SetMigrationHookForTest([](const char* point, Key) {
    if (std::strcmp(point, "batch-end") == 0 &&
        FaultInjector::Instance().ArmedSites().empty()) {
      FaultSpec fail;
      fail.action = FaultAction::kError;
      FaultInjector::Instance().Arm("migration-batch", fail);
    }
  });

  EXPECT_FALSE(map.DebugSplitShard(0));
  FaultInjector::Instance().DisarmAll();
  map.SetMigrationHookForTest(nullptr);

  EXPECT_EQ(map.num_shards(), 2u);
  EXPECT_EQ(map.shard(0)->Size(), 200u);  // every key back in the donor
  ExpectAllPresent(map, 1, 200);
  EXPECT_TRUE(map.ValidateStructure().ok());
  const StatsSnapshot stats = map.Stats();
  EXPECT_GE(stats.Get(StatId::kMigrationAborts), 1u);
  EXPECT_GE(stats.Get(StatId::kMigrationRollbackKeys), 1u);
  EXPECT_GE(stats.Get(StatId::kKeysMigrated), 1u);  // batch 1 did move
}

TEST_F(MigrationFaultTest, DegradedMapStillServesTraffic) {
  // Aborted rebalancing is degradation, not an outage: reads and writes
  // keep working against the rolled-back topology.
  ShardedMap map(RebalancingShards(2, 400));
  ASSERT_TRUE(map.init_status().ok());
  FillRange(&map, 1, 200);

  FaultSpec fail;
  fail.action = FaultAction::kError;
  FaultInjector::Instance().Arm("migration-batch", fail);
  EXPECT_FALSE(map.DebugSplitShard(0));
  FaultInjector::Instance().DisarmAll();

  for (Key k = 201; k <= 260; ++k) ASSERT_TRUE(map.Insert(k, k * 10).ok());
  for (Key k = 1; k <= 30; ++k) ASSERT_TRUE(map.Erase(k).ok());
  ExpectAllPresent(map, 31, 260);
  EXPECT_EQ(map.Size(), 230u);

  // And the NEXT split (faults cleared) succeeds on the same range.
  ASSERT_TRUE(map.DebugSplitShard(0));
  ExpectAllPresent(map, 31, 260);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

// Scripted host: returns a fixed hot-shard load pattern and a scripted
// sequence of action results, recording how often it was asked to act.
class ScriptedHost : public ShardRebalancer::Host {
 public:
  using ActionResult = ShardRebalancer::ActionResult;

  explicit ScriptedHost(ActionResult result) : result_(result) {}

  std::vector<ShardLoad> SnapshotLoads() override {
    // Cumulative counters: shard 0 gains 10'000 ops per period, shard 1
    // gains 100 — shard 0 is persistently hot and splittable.
    ops_ += 10'000;
    std::vector<ShardLoad> loads(2);
    loads[0].id = &hot_id_;
    loads[0].ops = ops_;
    loads[0].keys = 100'000;
    loads[1].id = &cold_id_;
    loads[1].ops = ops_ / 100;
    loads[1].keys = 100'000;
    return loads;
  }

  ActionResult SplitShard(size_t) override {
    ++actions_;
    return result_;
  }
  ActionResult MergeShards(size_t) override {
    ++actions_;
    return result_;
  }

  void set_result(ActionResult r) { result_ = r; }
  int actions() const { return actions_; }

 private:
  ActionResult result_;
  int actions_ = 0;
  uint64_t ops_ = 0;
  int hot_id_ = 0;
  int cold_id_ = 0;
};

// Breaker-test options: with only two shards the default hotness
// threshold (2.0) is unreachable (hot > 2 * fair means hot > hot + cold),
// so lower it; every post-baseline tick then decides "split shard 0".
RebalanceOptions BreakerOptions() {
  RebalanceOptions opt;
  opt.enabled = true;
  opt.hotness_threshold = 1.2;
  opt.cold_threshold = 0.5;  // 1.2 * 0.5 < 2: passes Validate
  opt.min_ops_per_period = 10;
  opt.min_keys_to_split = 10;
  opt.cooldown_periods = 0;
  opt.max_consecutive_failures = 2;
  opt.breaker_cooldown_periods = 3;
  return opt;
}

TEST(ShardRebalancerBreakerTest, TripsOpensAndRearmsHalfOpen) {
  using ActionResult = ShardRebalancer::ActionResult;
  const RebalanceOptions opt = BreakerOptions();
  ASSERT_TRUE(opt.Validate().ok());

  ScriptedHost host(ActionResult::kFailed);
  ShardRebalancer reb(&host, opt);

  // A failed action clears the baseline (rollback traffic must not feed
  // the next score), so every failure is followed by one observe-only
  // tick before the controller can act again.
  reb.TickForTest();  // 1: no baseline yet, observe-only
  EXPECT_EQ(host.actions(), 0);
  reb.TickForTest();  // 2: failure 1 of 2
  EXPECT_EQ(host.actions(), 1);
  EXPECT_FALSE(reb.breaker_open());
  reb.TickForTest();  // 3: observe-only (baseline retaken)
  EXPECT_EQ(host.actions(), 1);
  reb.TickForTest();  // 4: failure 2 of 2 -> trip
  EXPECT_EQ(host.actions(), 2);
  EXPECT_TRUE(reb.breaker_open());
  EXPECT_EQ(reb.breaker_trips(), 1u);
  EXPECT_EQ(reb.failed_actions(), 2u);

  // Open window: breaker_cooldown_periods ticks with no host actions.
  for (int i = 0; i < 3; ++i) {
    reb.TickForTest();  // 5, 6, 7
    EXPECT_EQ(host.actions(), 2) << "open tick " << i;
    EXPECT_TRUE(reb.breaker_open());
  }

  // 8: half-open probe fails -> re-trip on that single failure.
  reb.TickForTest();
  EXPECT_EQ(host.actions(), 3);
  EXPECT_TRUE(reb.breaker_open());
  EXPECT_EQ(reb.breaker_trips(), 2u);

  // Wait out the second open window, then let the probe succeed.
  for (int i = 0; i < 3; ++i) reb.TickForTest();  // 9, 10, 11
  EXPECT_EQ(host.actions(), 3);
  host.set_result(ActionResult::kOk);
  reb.TickForTest();  // 12: successful half-open probe -> closed
  EXPECT_EQ(host.actions(), 4);
  EXPECT_FALSE(reb.breaker_open());
  EXPECT_EQ(reb.splits() + reb.merges(), 1u);
  reb.TickForTest();  // 13: observe-only (action cleared the baseline)
  reb.TickForTest();  // 14: normal action, breaker stays closed
  EXPECT_EQ(host.actions(), 5);
  EXPECT_FALSE(reb.breaker_open());
  EXPECT_EQ(reb.breaker_trips(), 2u);
}

TEST(ShardRebalancerBreakerTest, SkippedActionsDoNotTrip) {
  using ActionResult = ShardRebalancer::ActionResult;
  const RebalanceOptions opt = BreakerOptions();
  ASSERT_TRUE(opt.Validate().ok());

  ScriptedHost host(ActionResult::kSkipped);
  ShardRebalancer reb(&host, opt);
  // kSkipped neither clears the baseline nor starts a cooldown, so every
  // tick after the first keeps trying (and none of them count as failures).
  for (int i = 0; i < 10; ++i) reb.TickForTest();
  EXPECT_EQ(host.actions(), 9);
  EXPECT_FALSE(reb.breaker_open());
  EXPECT_EQ(reb.breaker_trips(), 0u);
  EXPECT_EQ(reb.failed_actions(), 0u);
}

}  // namespace
}  // namespace obtree
