// Copyright 2026 The obtree Authors.
//
// Tests of the in-place write path: Insert/Delete mutate the live page
// under the paper lock, bracketed by seqlock odd/even bumps
// (PageManager::BeginWrite), instead of copying the full page out and
// back. The invariant under test is the tentpole safety claim — no
// optimistic reader may ever VALIDATE a torn image produced by an
// in-place writer — hammered against concurrent inserts, deletes,
// splits, scans, and the compressors' merge/retire/reuse cycle. Every
// insert stores value = key + 1, so any torn or misrouted read is
// detectable.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/compression_queue.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

TreeOptions SmallNodes(bool inplace) {
  TreeOptions options;
  options.min_entries = 4;  // deep trees: more splits, merges, stale routes
  options.inplace_writes = inplace;
  return options;
}

TEST(InplaceWriteTest, InplaceAndCopyModesAgree) {
  SagivTree inplace(SmallNodes(true));
  SagivTree copy(SmallNodes(false));
  for (Key k = 1; k <= 2000; ++k) {
    ASSERT_TRUE(inplace.Insert(k * 3, k * 3 + 1).ok());
    ASSERT_TRUE(copy.Insert(k * 3, k * 3 + 1).ok());
  }
  for (Key k = 1; k <= 2000; k += 2) {  // delete every other key
    ASSERT_TRUE(inplace.Delete(k * 3).ok());
    ASSERT_TRUE(copy.Delete(k * 3).ok());
  }
  EXPECT_EQ(inplace.Size(), copy.Size());
  for (Key k = 1; k <= 2000; ++k) {
    auto vi = inplace.Search(k * 3);
    auto vc = copy.Search(k * 3);
    ASSERT_EQ(vi.ok(), vc.ok()) << k;
    if (vi.ok()) {
      EXPECT_EQ(*vi, k * 3 + 1);
    }
    // Re-deleting / re-inserting behaves identically.
    EXPECT_EQ(inplace.Delete(k * 3).ok(), copy.Delete(k * 3).ok());
  }
  Status si = TreeChecker(&inplace).CheckStructure();
  EXPECT_TRUE(si.ok()) << si.ToString();
}

TEST(InplaceWriteTest, InplaceModeCountsStats) {
  SagivTree tree(SmallNodes(true));
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  for (Key k = 1; k <= 250; ++k) ASSERT_TRUE(tree.Delete(k).ok());
  const StatsSnapshot snap = tree.stats()->Snapshot();
  EXPECT_GT(snap.Get(StatId::kInplaceWrites), 0u);
  EXPECT_GT(snap.Get(StatId::kWriteBytesInplace), 0u);
  // Splits keep copy semantics, so some copied bytes still accrue...
  EXPECT_GT(snap.Get(StatId::kSplits), 0u);
  // ...but the no-split mutations dominate: far less copy traffic than
  // the 8 KB-per-mutation regime (750 mutations * 8 KB = 6 MB).
  EXPECT_LT(snap.Get(StatId::kWriteBytesCopied), 750u * 8192u / 2);
}

TEST(InplaceWriteTest, CopyModeNeverWritesInPlace) {
  SagivTree tree(SmallNodes(false));
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  for (Key k = 1; k <= 250; ++k) ASSERT_TRUE(tree.Delete(k).ok());
  EXPECT_EQ(tree.stats()->Get(StatId::kInplaceWrites), 0u);
  EXPECT_EQ(tree.stats()->Get(StatId::kWriteBytesInplace), 0u);
  EXPECT_GT(tree.stats()->Get(StatId::kWriteBytesCopied), 0u);
}

TEST(InplaceWriteTest, UnderfullLeafStillEnqueuedForCompression) {
  TreeOptions options = SmallNodes(true);
  options.enqueue_underfull_on_delete = true;
  SagivTree tree(options);
  CompressionQueue queue;
  tree.AttachCompressionQueue(&queue);
  for (Key k = 1; k <= 200; ++k) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  for (Key k = 1; k <= 180; ++k) ASSERT_TRUE(tree.Delete(k).ok());
  EXPECT_GT(tree.stats()->Get(StatId::kQueueEnqueues), 0u);
  EXPECT_GT(queue.Size(), 0u);
  tree.AttachCompressionQueue(nullptr);
}

// The tentpole safety property: optimistic readers racing IN-PLACE
// writers (plus the compressors' merge/retire/reuse churn) never
// validate a torn image — every hit is exactly key + 1, every miss a
// clean NotFound.
TEST(InplaceWriteTest, ConcurrentReadersNeverSeeTornInplaceWrites) {
  MapOptions options;
  options.tree = SmallNodes(true);
  options.compression = CompressionMode::kQueueWorkers;
  options.compression_threads = 1;
  ConcurrentMap map(options);
  constexpr Key kSpace = 20'000;
  for (Key k = 2; k <= kSpace; k += 2) {
    ASSERT_TRUE(map.Insert(k, k + 1).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> bad_value{false};
  // Three mutators churn odd keys so leaves shift in place constantly
  // AND split/underfill/merge/get-reused underneath the readers.
  std::vector<std::thread> mutators;
  for (int t = 0; t < 3; ++t) {
    mutators.emplace_back([&map, t, &stop]() {
      Random rng(29 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = (rng.Uniform(kSpace / 2) * 2 + 1);  // odd keys
        if (rng.Uniform(2) == 0) {
          (void)map.Insert(k, k + 1);
        } else {
          (void)map.Erase(k);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&map, t, &bad_value]() {
      Random rng(211 + t);
      for (int i = 0; i < 30'000; ++i) {
        const Key k = rng.Uniform(kSpace) + 1;
        Result<Value> v = map.Get(k);
        if (v.ok() && *v != k + 1) {
          bad_value.store(true);
          return;
        }
        if (!v.ok() && !v.status().IsNotFound()) {
          bad_value.store(true);
          return;
        }
      }
    });
  }
  // One scanner: pairs must arrive ascending, in range, untorn.
  std::thread scanner([&map, &bad_value, &stop, kSpace]() {
    Random rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const Key lo = rng.Uniform(kSpace) + 1;
      const Key hi = std::min<Key>(lo + 400, kSpace);
      Key last = 0;
      map.Scan(lo, hi, [&](Key k, Value v) {
        if (k < lo || k > hi || k <= last || v != k + 1) {
          bad_value.store(true);
          return false;
        }
        last = k;
        return true;
      });
    }
  });
  for (auto& r : readers) r.join();
  stop.store(true);
  for (auto& m : mutators) m.join();
  scanner.join();
  EXPECT_FALSE(bad_value.load());
  // Even (untouched) keys must all still be present.
  for (Key k = 2; k <= kSpace; k += 2) {
    Result<Value> v = map.Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    ASSERT_EQ(*v, k + 1);
  }
  EXPECT_GT(map.Stats().Get(StatId::kInplaceWrites), 0u);
}

// Writer-vs-writer: concurrent Inserts/Deletes on overlapping ranges with
// in-place mutations must serialize through the paper lock — the final
// tree is exactly the set both writers agreed on, structure valid.
TEST(InplaceWriteTest, ConcurrentWritersSerializeThroughPaperLock) {
  SagivTree tree(SmallNodes(true));
  constexpr Key kSpace = 8'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&tree, t]() {
      // Each thread owns keys == t (mod 4): no logical conflicts, but
      // heavy physical conflicts on shared leaves.
      for (Key k = static_cast<Key>(t) + 1; k <= kSpace; k += 4) {
        ASSERT_TRUE(tree.Insert(k, k + 1).ok()) << k;
      }
      for (Key k = static_cast<Key>(t) + 1; k <= kSpace; k += 8) {
        ASSERT_TRUE(tree.Delete(k).ok()) << k;
      }
    });
  }
  for (auto& w : writers) w.join();
  uint64_t expected = 0;
  for (Key k = 1; k <= kSpace; ++k) {
    const bool deleted = ((k - 1) % 8) < 4;  // first of each pair of strides
    if (!deleted) {
      ++expected;
      auto v = tree.Search(k);
      ASSERT_TRUE(v.ok()) << k;
      EXPECT_EQ(*v, k + 1);
    } else {
      EXPECT_TRUE(tree.Search(k).status().IsNotFound()) << k;
    }
  }
  EXPECT_EQ(tree.Size(), expected);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace obtree
