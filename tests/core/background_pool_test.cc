// Copyright 2026 The obtree Authors.
//
// BackgroundPool: a fixed worker set draining many shards' compression
// queues. The properties under test are the ones the sharded deployment
// leans on: fairness (a hot shard cannot starve cold shards), clean
// stop-while-busy semantics, attach/detach safety during traffic (the
// map-destructor path), monotone stats, and no leaked threads.

#include "obtree/core/background_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "obtree/core/compression_queue.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/fault_injector.h"

namespace obtree {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;
using testutil::LiveThreadCount;

/// A tree + compression queue pair wired the way ConcurrentMap wires them
/// (deletions enqueue under-full leaves; the queue's stacks hold back page
/// reuse through the tree's epoch).
struct Shard {
  std::unique_ptr<SagivTree> tree;
  std::unique_ptr<CompressionQueue> queue;

  explicit Shard(uint32_t k = 2) {
    TreeOptions options;
    options.min_entries = k;
    options.enqueue_underfull_on_delete = true;
    tree = std::make_unique<SagivTree>(options);
    queue = std::make_unique<CompressionQueue>();
    queue->RegisterWith(tree->epoch());
    tree->AttachCompressionQueue(queue.get());
  }
  ~Shard() { tree->AttachCompressionQueue(nullptr); }
};

/// Insert [lo, hi] then delete most of it, leaving under-full leaves on
/// the queue.
void Churn(Shard* shard, Key lo, Key hi) {
  for (Key k = lo; k <= hi; ++k) ASSERT_TRUE(shard->tree->Insert(k, k).ok());
  for (Key k = lo; k <= hi; ++k) {
    if (k % 10 != 0) {
      ASSERT_TRUE(shard->tree->Delete(k).ok());
    }
  }
}

bool WaitForEmpty(const CompressionQueue* queue, milliseconds deadline) {
  const auto until = steady_clock::now() + deadline;
  while (steady_clock::now() < until) {
    if (queue->Empty()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return queue->Empty();
}

TEST(BackgroundPoolTest, DefaultThreadCountRespectsEnv) {
  // Preserve any caller-provided setting (CI's TSan job runs this whole
  // binary with OBTREE_POOL_THREADS=2; clobbering it here would silently
  // change the configuration of every later test).
  const char* prior_raw = std::getenv("OBTREE_POOL_THREADS");
  const std::string prior = prior_raw != nullptr ? prior_raw : "";
  ASSERT_EQ(setenv("OBTREE_POOL_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(BackgroundPool::DefaultThreadCount(), 3);
  ASSERT_EQ(setenv("OBTREE_POOL_THREADS", "garbage", 1), 0);
  EXPECT_GE(BackgroundPool::DefaultThreadCount(), 1);  // falls back to hw
  ASSERT_EQ(unsetenv("OBTREE_POOL_THREADS"), 0);
  EXPECT_GE(BackgroundPool::DefaultThreadCount(), 1);
  if (prior_raw != nullptr) {
    ASSERT_EQ(setenv("OBTREE_POOL_THREADS", prior.c_str(), 1), 0);
  }

  BackgroundPool::Options options;
  options.threads = 5;
  BackgroundPool pool(options);
  EXPECT_EQ(pool.thread_count(), 5);
}

TEST(BackgroundPoolTest, DrainsManyShardsWithFewThreads) {
  const int baseline = LiveThreadCount();
  {
    std::vector<std::unique_ptr<Shard>> shards;
    for (int i = 0; i < 6; ++i) shards.push_back(std::make_unique<Shard>());
    for (size_t i = 0; i < shards.size(); ++i) {
      Churn(shards[i].get(), 1, 400);
      ASSERT_FALSE(shards[i]->queue->Empty()) << "shard " << i;
    }

    BackgroundPool::Options options;
    options.threads = 2;
    BackgroundPool pool(options);
    std::vector<uint64_t> handles;
    for (auto& s : shards) {
      handles.push_back(pool.Attach(s->tree.get(), s->queue.get()));
    }
    EXPECT_EQ(pool.num_sources(), shards.size());
    if (baseline > 0) {
      // 2 workers + 1 supervisor (Options::supervise defaults on).
      EXPECT_EQ(LiveThreadCount(), baseline + 3);
    }

    for (size_t i = 0; i < shards.size(); ++i) {
      EXPECT_TRUE(WaitForEmpty(shards[i]->queue.get(), milliseconds(10'000)))
          << "shard " << i << " queue size " << shards[i]->queue->Size();
    }
    // Quiesce: let any in-flight task finish so the per-shard counters
    // and their per-tree attribution stop moving before comparison.
    testutil::WaitForStableCounter(
        [&]() { return pool.Stats().tasks_drained; }, []() { return true; });
    const PoolStatsSnapshot stats = pool.Stats();
    EXPECT_EQ(stats.threads, 2);
    EXPECT_GT(stats.tasks_drained, 0u);
    ASSERT_EQ(stats.shards.size(), shards.size());
    for (size_t i = 0; i < shards.size(); ++i) {
      EXPECT_GT(stats.shards[i].tasks_drained, 0u) << "shard " << i;
      // Per-tree attribution surfaces through the tree's StatsCollector.
      EXPECT_EQ(shards[i]->tree->stats()->Get(StatId::kPoolTasksDrained),
                stats.shards[i].tasks_drained);
    }
    for (uint64_t h : handles) pool.Detach(h);
    for (auto& s : shards) {
      EXPECT_TRUE(TreeChecker(s->tree.get()).CheckStructure().ok());
    }
  }
  // Every pool worker joined when the pool died.
  if (baseline > 0) {
    EXPECT_EQ(LiveThreadCount(), baseline);
  }
}

TEST(BackgroundPoolTest, HotShardCannotStarveColdShards) {
  // Four sources — a count DIVISIBLE by the default boost_period (4) — so
  // this also guards against boost-phase/rotation alignment: if boost
  // turns consumed round-robin turns, the shards whose slots always
  // coincide with the boost phase would never be served.
  Shard hot;
  Shard cold_a;
  Shard cold_b;
  Shard cold_c;
  Churn(&cold_a, 1, 600);
  Churn(&cold_b, 1, 600);
  Churn(&cold_c, 1, 600);
  ASSERT_FALSE(cold_a.queue->Empty());
  ASSERT_FALSE(cold_b.queue->Empty());
  ASSERT_FALSE(cold_c.queue->Empty());

  // A mutator keeps the hot shard's queue loaded for the whole test.
  std::atomic<bool> stop_mutator{false};
  std::thread mutator([&]() {
    Key base = 1;
    while (!stop_mutator.load(std::memory_order_acquire)) {
      for (Key k = base; k < base + 200; ++k) (void)hot.tree->Insert(k, k);
      for (Key k = base; k < base + 200; ++k) {
        if (k % 8 != 0) (void)hot.tree->Delete(k);
      }
      base += 200;
    }
  });

  {
    // ONE worker: if scheduling were purely depth-driven, the hot queue
    // would monopolize it; round-robin turns must still reach the cold
    // shards.
    BackgroundPool::Options options;
    options.threads = 1;
    BackgroundPool pool(options);
    pool.Attach(hot.tree.get(), hot.queue.get());
    const uint64_t ha = pool.Attach(cold_a.tree.get(), cold_a.queue.get());
    const uint64_t hb = pool.Attach(cold_b.tree.get(), cold_b.queue.get());
    const uint64_t hc = pool.Attach(cold_c.tree.get(), cold_c.queue.get());

    EXPECT_TRUE(WaitForEmpty(cold_a.queue.get(), milliseconds(20'000)))
        << "cold shard A starved; queue size " << cold_a.queue->Size();
    EXPECT_TRUE(WaitForEmpty(cold_b.queue.get(), milliseconds(20'000)))
        << "cold shard B starved; queue size " << cold_b.queue->Size();
    EXPECT_TRUE(WaitForEmpty(cold_c.queue.get(), milliseconds(20'000)))
        << "cold shard C starved; queue size " << cold_c.queue->Size();

    const PoolStatsSnapshot stats = pool.Stats();
    EXPECT_GT(stats.shards[0].tasks_drained, 0u);  // hot was served too
    pool.Detach(ha);
    pool.Detach(hb);
    pool.Detach(hc);
    stop_mutator.store(true, std::memory_order_release);
    mutator.join();
  }
  EXPECT_TRUE(TreeChecker(cold_a.tree.get()).CheckStructure().ok());
  EXPECT_TRUE(TreeChecker(cold_c.tree.get()).CheckStructure().ok());
  EXPECT_TRUE(TreeChecker(hot.tree.get()).CheckStructure().ok());
}

TEST(BackgroundPoolTest, StopWhileBusyJoinsPromptly) {
  const int baseline = LiveThreadCount();
  Shard shard;
  Churn(&shard, 1, 3000);  // plenty of queued work
  ASSERT_FALSE(shard.queue->Empty());

  BackgroundPool::Options options;
  options.threads = 4;
  BackgroundPool pool(options);
  pool.Attach(shard.tree.get(), shard.queue.get());
  std::this_thread::sleep_for(milliseconds(5));  // let workers engage

  const auto begin = steady_clock::now();
  pool.Stop();
  const auto elapsed = steady_clock::now() - begin;
  EXPECT_LT(elapsed, milliseconds(5'000));
  if (baseline > 0) {
    EXPECT_EQ(LiveThreadCount(), baseline);
  }
  pool.Stop();  // idempotent
  // Detach after Stop still works (shards outlive a stopped pool).
  pool.Detach(1);
  EXPECT_TRUE(TreeChecker(shard.tree.get()).CheckStructure().ok());
}

TEST(BackgroundPoolTest, AttachDetachDuringTraffic) {
  Shard a;
  Shard b;
  BackgroundPool::Options options;
  options.threads = 2;
  BackgroundPool pool(options);
  pool.Attach(a.tree.get(), a.queue.get());

  std::atomic<bool> stop_mutator{false};
  std::thread mutator([&]() {
    Key base = 1;
    while (!stop_mutator.load(std::memory_order_acquire)) {
      for (Key k = base; k < base + 100; ++k) (void)a.tree->Insert(k, k);
      for (Key k = base; k < base + 100; ++k) {
        if (k % 5 != 0) (void)a.tree->Delete(k);
      }
      base += 100;
    }
  });

  // Shard b churns through attach/detach cycles while the pool serves a.
  // This is the ConcurrentMap-destructor path: after every Detach return,
  // no worker may touch b's tree or queue.
  for (int cycle = 0; cycle < 20; ++cycle) {
    Churn(&b, 1, 200);
    const uint64_t handle = pool.Attach(b.tree.get(), b.queue.get());
    std::this_thread::sleep_for(milliseconds(2));
    pool.Detach(handle);
    pool.Detach(handle);        // idempotent: double detach is a no-op
    pool.Detach(0xdeadbeefu);   // unknown handles are ignored
    // Safe to mutate (or destroy) b freely now; drain what is left so the
    // next cycle starts clean.
    while (!b.queue->Empty()) {
      CompressionTask task;
      if (b.queue->Pop(&task)) b.queue->FinishTask(task.stamp);
    }
    for (Key k = 1; k <= 200; ++k) (void)b.tree->Delete(k);
  }
  stop_mutator.store(true, std::memory_order_release);
  mutator.join();
  EXPECT_EQ(pool.num_sources(), 1u);
  pool.Stop();  // quiesce: TreeChecker requires no concurrent restructuring
  EXPECT_TRUE(TreeChecker(a.tree.get()).CheckStructure().ok());
  EXPECT_TRUE(TreeChecker(b.tree.get()).CheckStructure().ok());
}

TEST(BackgroundPoolTest, StatsCountersMonotone) {
  Shard shard;
  BackgroundPool::Options options;
  options.threads = 2;
  BackgroundPool pool(options);
  pool.Attach(shard.tree.get(), shard.queue.get());

  PoolStatsSnapshot prev = pool.Stats();
  for (int round = 0; round < 8; ++round) {
    Churn(&shard, 1, 300);
    std::this_thread::sleep_for(milliseconds(10));
    const PoolStatsSnapshot cur = pool.Stats();
    EXPECT_GE(cur.rounds, prev.rounds);
    EXPECT_GE(cur.tasks_drained, prev.tasks_drained);
    EXPECT_GE(cur.restructures, prev.restructures);
    EXPECT_GE(cur.boosts, prev.boosts);
    EXPECT_GE(cur.steals, prev.steals);
    EXPECT_GE(cur.idle_sleeps, prev.idle_sleeps);
    EXPECT_GE(cur.IdleRatio(), 0.0);
    EXPECT_LE(cur.IdleRatio(), 1.0);
    ASSERT_EQ(cur.shards.size(), 1u);
    EXPECT_GE(cur.shards[0].tasks_drained, prev.shards[0].tasks_drained);
    // Pool-wide totals cover the per-shard slices.
    EXPECT_GE(cur.tasks_drained, cur.shards[0].tasks_drained);
    prev = cur;
    for (Key k = 1; k <= 300; ++k) (void)shard.tree->Delete(k);
  }
  EXPECT_GT(prev.rounds, 0u);
  EXPECT_FALSE(prev.ToString().empty());
}

TEST(BackgroundPoolTest, ScanModeSourceCompacts) {
  // queue == nullptr attaches a scan-maintained tree (Sections 5.1-5.2):
  // the pool runs full-tree passes on the shard's round-robin turns.
  TreeOptions options;
  options.min_entries = 2;
  SagivTree tree(options);
  for (Key k = 1; k <= 4000; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  const uint32_t tall = tree.Height();
  for (Key k = 1; k <= 4000; ++k) ASSERT_TRUE(tree.Delete(k).ok());

  BackgroundPool::Options pool_options;
  pool_options.threads = 2;
  BackgroundPool pool(pool_options);
  const uint64_t handle = pool.Attach(&tree, /*queue=*/nullptr);
  const auto until = steady_clock::now() + milliseconds(10'000);
  while (tree.Height() > 2 && steady_clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(2));
  }
  pool.Detach(handle);
  EXPECT_LE(tree.Height(), 2u);
  EXPECT_LT(tree.Height(), tall);
  EXPECT_TRUE(TreeChecker(&tree).CheckStructure().ok());
}

TEST(BackgroundPoolTest, DetachSurvivesWorkerKilledMidDrain) {
  // Regression: a worker dying between BeginWork and EndWork used to leak
  // its `active` claim, and Detach (a plain cv wait on active == 0) hung
  // forever — which is exactly the ConcurrentMap::ShutdownMaintenance /
  // map-destructor path. With RAII active scopes the claim is always
  // released, and the supervisor respawns the dead worker.
  Shard shard;
  Churn(&shard, 1, 2000);
  ASSERT_FALSE(shard.queue->Empty());

  BackgroundPool::Options options;
  options.threads = 2;
  options.supervise = true;
  options.health_check_period = milliseconds(2);
  BackgroundPool pool(options);

  // Every drain attempt kills the worker mid-batch for a while.
  FaultSpec kill;
  kill.action = FaultAction::kError;
  kill.max_fires = 6;
  FaultInjector::Instance().Arm("pool-drain", kill);

  const uint64_t handle = pool.Attach(shard.tree.get(), shard.queue.get());

  // Wait until every scheduled kill has fired (each one is a worker death
  // with the Detach claim held at the moment of death).
  const auto until = steady_clock::now() + milliseconds(10'000);
  while (FaultInjector::Instance().SiteStats("pool-drain").fires < 6 &&
         steady_clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(FaultInjector::Instance().SiteStats("pool-drain").fires, 6u);
  FaultInjector::Instance().DisarmAll();

  // Detach must complete even though workers died holding the shard.
  pool.Detach(handle);

  // The last kill's respawn may still be in the supervisor's hands.
  while (pool.Stats().worker_respawns < 6 && steady_clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  const PoolStatsSnapshot stats = pool.Stats();
  EXPECT_GE(stats.worker_deaths, 6u);
  EXPECT_GE(stats.worker_respawns, 6u);  // supervisor brought them back
  EXPECT_TRUE(TreeChecker(shard.tree.get()).CheckStructure().ok());

  // Respawned workers still drain: re-attach and the queue empties.
  Churn(&shard, 2001, 4000);
  const uint64_t again = pool.Attach(shard.tree.get(), shard.queue.get());
  EXPECT_TRUE(WaitForEmpty(shard.queue.get(), milliseconds(10'000)));
  pool.Detach(again);
  EXPECT_TRUE(TreeChecker(shard.tree.get()).CheckStructure().ok());
}

TEST(BackgroundPoolTest, UnsupervisedPoolStillDetachesAfterAllWorkersDie) {
  // With supervision off, dead workers stay dead (deaths count, respawns
  // do not) — but Detach and Stop must still return.
  Shard shard;
  Churn(&shard, 1, 500);

  BackgroundPool::Options options;
  options.threads = 1;
  options.supervise = false;
  BackgroundPool pool(options);

  FaultSpec kill;
  kill.action = FaultAction::kError;
  kill.max_fires = 1;
  FaultInjector::Instance().Arm("pool-worker", kill);

  const uint64_t handle = pool.Attach(shard.tree.get(), shard.queue.get());
  const auto until = steady_clock::now() + milliseconds(10'000);
  while (pool.Stats().worker_deaths < 1 && steady_clock::now() < until) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  FaultInjector::Instance().DisarmAll();

  pool.Detach(handle);  // must not hang
  const PoolStatsSnapshot stats = pool.Stats();
  EXPECT_EQ(stats.worker_deaths, 1u);
  EXPECT_EQ(stats.worker_respawns, 0u);
  pool.Stop();  // must join the dead thread cleanly
}

}  // namespace
}  // namespace obtree
