// Copyright 2026 The obtree Authors.
//
// TreeChecker must actually catch corruption: each test plants one
// specific defect — in RAM via the pager, or on disk via a bit flip in
// a checkpointed pages.dat — and requires CheckStructure to reject the
// tree. The checker is the oracle every stress and crash harness leans
// on, so its failure modes need direct coverage of their own.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/tree_checker.h"
#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/fault_injector.h"

namespace obtree {
namespace {

TreeOptions SmallNodeOptions() {
  TreeOptions options;
  options.min_entries = 4;  // capacity 8: splits after a handful of keys
  return options;
}

// A quiesced multi-leaf tree the tests can plant defects into.
void FillTree(SagivTree* tree, Key n = 200) {
  for (Key k = 1; k <= n; ++k) {
    ASSERT_TRUE(tree->Insert(k, k * 10).ok());
  }
  ASSERT_TRUE(TreeChecker(tree).CheckStructure().ok())
      << "tree must start clean";
}

// Fetch-modify-store one page through the pager (the tree is quiesced,
// so an unlocked Put is safe).
template <typename Fn>
void CorruptPage(PageManager* pager, PageId id, Fn mutate) {
  Page page;
  ASSERT_TRUE(pager->Get(id, &page).ok());
  mutate(page.As<Node>());
  pager->Put(id, page);
}

TEST(TreeCheckerTest, CorruptedCountFailsAudit) {
  SagivTree tree(SmallNodeOptions());
  FillTree(&tree);
  const PageId leaf = tree.internal_prime()->Read().leftmost[0];
  // Dropping one entry desynchronizes the leaf chain from Size().
  CorruptPage(tree.internal_pager(), leaf, [](Node* node) {
    ASSERT_GT(node->count, 1u);
    node->count -= 1;
  });
  const Status audit = TreeChecker(&tree).CheckStructure();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.message().find("leaf keys"), std::string::npos)
      << audit.ToString();
}

TEST(TreeCheckerTest, BrokenLinkChainFailsAudit) {
  SagivTree tree(SmallNodeOptions());
  FillTree(&tree);
  const PageId leaf = tree.internal_prime()->Read().leftmost[0];
  // Truncating the chain at the leftmost leaf makes it claim to be the
  // rightmost node while its high value is finite.
  CorruptPage(tree.internal_pager(), leaf, [](Node* node) {
    ASSERT_NE(node->link, kInvalidPageId) << "need a multi-leaf tree";
    node->link = kInvalidPageId;
  });
  const Status audit = TreeChecker(&tree).CheckStructure();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.message().find("rightmost node high"), std::string::npos)
      << audit.ToString();
}

TEST(TreeCheckerTest, HighKeyViolationFailsAudit) {
  SagivTree tree(SmallNodeOptions());
  FillTree(&tree);
  const PageId leaf = tree.internal_prime()->Read().leftmost[0];
  // An entry above the node's high value escapes its key range.
  CorruptPage(tree.internal_pager(), leaf, [](Node* node) {
    ASSERT_GT(node->count, 0u);
    node->high = node->entries[node->count - 1].key - 1;
  });
  const Status audit = TreeChecker(&tree).CheckStructure();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.message().find("entry above high"), std::string::npos)
      << audit.ToString();
}

TEST(TreeCheckerTest, BitFlippedRecoveredPageFailsAudit) {
  FaultInjector::Instance().DisarmAll();
  const std::string dir =
      ::testing::TempDir() + "obtree_checker_bitflip";
  std::filesystem::remove_all(dir);

  MapOptions options;
  options.compression = CompressionMode::kNone;
  options.tree.storage_dir = dir;
  options.tree.min_entries = 4;
  {
    ConcurrentMap map(options);
    for (Key k = 1; k <= 300; ++k) {
      ASSERT_TRUE(map.Upsert(k, k * 10).ok());
    }
    ASSERT_TRUE(map.Checkpoint().ok());
    ASSERT_TRUE(map.ValidateStructure().ok());
  }

  // Flip one byte in EVERY 4 KB slot of pages.dat, so whichever slots
  // the manifest committed are all corrupt (checksummed page images
  // must read back as DataLoss, never as plausible nodes).
  {
    const std::string data_path = dir + "/pages.dat";
    std::FILE* f = std::fopen(data_path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const auto file_size = std::filesystem::file_size(data_path);
    for (uint64_t off = 100; off < file_size; off += kPageSize) {
      ASSERT_EQ(std::fseek(f, static_cast<long>(off), SEEK_SET), 0);
      const int c = std::fgetc(f);
      ASSERT_NE(c, EOF);
      ASSERT_EQ(std::fseek(f, static_cast<long>(off), SEEK_SET), 0);
      ASSERT_NE(std::fputc(c ^ 0x40, f), EOF);
    }
    std::fclose(f);
  }

  // The manifest itself is intact, so recovery starts — but every page
  // read fails its checksum and the structural audit must reject the
  // zero-filled husks it gets instead.
  Result<std::unique_ptr<ConcurrentMap>> recovered =
      ConcurrentMap::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const Status audit = (*recovered)->ValidateStructure();
  EXPECT_FALSE(audit.ok())
      << "audit accepted a store whose every page image was corrupted";

  std::filesystem::remove_all(dir);
}

TEST(TreeCheckerTest, CleanTreeAndShapeSurvivesAudit) {
  SagivTree tree(SmallNodeOptions());
  FillTree(&tree, 500);
  ASSERT_TRUE(TreeChecker(&tree).CheckStructure().ok());
  const TreeShape shape = TreeChecker(&tree).ComputeShape();
  EXPECT_EQ(shape.num_keys, 500u);
  EXPECT_GE(shape.height, 2u);
}

}  // namespace
}  // namespace obtree
