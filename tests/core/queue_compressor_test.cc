// Copyright 2026 The obtree Authors.
//
// Tests of the Section 5.4 queue-driven compression: deletions enqueue
// under-full leaves, a QueueCompressor drains the queue, cascades up the
// tree, collapses the root, and keeps the structure valid.

#include "obtree/core/queue_compressor.h"

#include <set>

#include <gtest/gtest.h>

#include "obtree/core/compression_queue.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

struct QueueSetup {
  TreeOptions options;
  std::unique_ptr<SagivTree> tree;
  std::unique_ptr<CompressionQueue> queue;

  explicit QueueSetup(uint32_t k) {
    options.min_entries = k;
    options.enqueue_underfull_on_delete = true;
    tree = std::make_unique<SagivTree>(options);
    queue = std::make_unique<CompressionQueue>();
    queue->RegisterWith(tree->epoch());
    tree->AttachCompressionQueue(queue.get());
  }
};

TEST(CompressionQueueTest, PushPopBasics) {
  CompressionQueue q;
  EXPECT_TRUE(q.Empty());
  CompressionTask t;
  EXPECT_FALSE(q.Pop(&t));

  CompressionTask a;
  a.node = 1;
  a.level = 0;
  a.high = 10;
  a.stamp = 5;
  q.Push(a, true);
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_TRUE(q.Contains(1));
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_EQ(t.node, 1u);
  EXPECT_TRUE(q.Empty());
}

TEST(CompressionQueueTest, HigherLevelsPopFirst) {
  // Footnote 17: give priority to nodes at higher levels.
  CompressionQueue q;
  CompressionTask leaf;
  leaf.node = 1;
  leaf.level = 0;
  CompressionTask parent;
  parent.node = 2;
  parent.level = 2;
  CompressionTask mid;
  mid.node = 3;
  mid.level = 1;
  q.Push(leaf, true);
  q.Push(parent, true);
  q.Push(mid, true);
  CompressionTask t;
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_EQ(t.node, 2u);
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_EQ(t.node, 3u);
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_EQ(t.node, 1u);
}

TEST(CompressionQueueTest, DuplicateNodeUpdatesOrKeeps) {
  CompressionQueue q;
  CompressionTask a;
  a.node = 1;
  a.high = 10;
  q.Push(a, true);
  a.high = 20;
  q.Push(a, /*update_if_present=*/true);
  EXPECT_EQ(q.Size(), 1u);
  CompressionTask t;
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_EQ(t.high, 20u);
  q.FinishTask(t.stamp);

  a.high = 30;
  q.Push(a, true);
  a.high = 40;
  q.Push(a, /*update_if_present=*/false);  // §5.4: must not overwrite
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_EQ(t.high, 30u);
}

TEST(CompressionQueueTest, RemoveDropsEntry) {
  CompressionQueue q;
  CompressionTask a;
  a.node = 7;
  q.Push(a, true);
  EXPECT_TRUE(q.Remove(7));
  EXPECT_FALSE(q.Remove(7));
  EXPECT_TRUE(q.Empty());
}

TEST(CompressionQueueTest, MinStampTracksQueuedAndInFlight) {
  CompressionQueue q;
  EXPECT_EQ(q.MinStamp(), kMaxTimestamp);
  CompressionTask a;
  a.node = 1;
  a.stamp = 10;
  CompressionTask b;
  b.node = 2;
  b.stamp = 5;
  b.level = 1;
  q.Push(a, true);
  q.Push(b, true);
  EXPECT_EQ(q.MinStamp(), 5u);
  CompressionTask t;
  ASSERT_TRUE(q.Pop(&t));  // pops b (higher level), stamp 5 now in flight
  EXPECT_EQ(t.stamp, 5u);
  EXPECT_EQ(q.MinStamp(), 5u);  // still protected while in flight
  q.FinishTask(5);
  EXPECT_EQ(q.MinStamp(), 10u);
}

TEST(QueueCompressorTest, EmptyQueueReportsEmpty) {
  QueueSetup s(2);
  QueueCompressor compressor(s.tree.get(), s.queue.get());
  EXPECT_EQ(compressor.CompressOne(), QueueCompressor::Outcome::kQueueEmpty);
  EXPECT_EQ(compressor.Drain(), 0u);
}

TEST(QueueCompressorTest, DeletionsEnqueueUnderfullLeaves) {
  QueueSetup s(3);
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(s.tree->Insert(k, k).ok());
  EXPECT_TRUE(s.queue->Empty());
  for (Key k = 1; k <= 290; ++k) ASSERT_TRUE(s.tree->Delete(k).ok());
  EXPECT_FALSE(s.queue->Empty());
  EXPECT_GT(s.tree->stats()->Get(StatId::kQueueEnqueues), 0u);
}

TEST(QueueCompressorTest, DrainRestoresHalfFullInvariant) {
  QueueSetup s(3);
  constexpr Key kN = 2000;
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(s.tree->Insert(k, k * 7).ok());
  for (Key k = 1; k <= kN; ++k) {
    if (k % 8 != 0) {
      ASSERT_TRUE(s.tree->Delete(k).ok());
    }
  }
  QueueCompressor compressor(s.tree.get(), s.queue.get());
  const size_t work = compressor.Drain();
  EXPECT_GT(work, 0u);
  EXPECT_TRUE(s.queue->Empty());

  Status st = TreeChecker(s.tree.get()).CheckStructure();
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (Key k = 8; k <= kN; k += 8) {
    ASSERT_TRUE(s.tree->Search(k).ok()) << k;
    EXPECT_EQ(*s.tree->Search(k), k * 7);
  }
  // Queue-driven compression shrinks the tree substantially (it may leave
  // isolated under-full nodes whose neighbors were never enqueued, so we
  // assert a strong reduction rather than the strict invariant).
  const TreeShape shape = TreeChecker(s.tree.get()).ComputeShape();
  EXPECT_LT(shape.underfull_nodes, shape.num_nodes / 2 + 2);
}

TEST(QueueCompressorTest, EmptyingTreeCollapsesRoot) {
  QueueSetup s(2);
  constexpr Key kN = 1000;
  for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(s.tree->Insert(k, k).ok());
  EXPECT_GT(s.tree->Height(), 3u);
  QueueCompressor compressor(s.tree.get(), s.queue.get());
  for (Key k = 1; k <= kN; ++k) {
    ASSERT_TRUE(s.tree->Delete(k).ok());
    if (k % 100 == 0) compressor.Drain();
  }
  compressor.Drain();
  // Cascading merges + root collapse shrink the tree to (near) a single
  // node.
  EXPECT_LE(s.tree->Height(), 2u);
  EXPECT_EQ(s.tree->Size(), 0u);
  Status st = TreeChecker(s.tree.get()).CheckStructure();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(s.tree->stats()->Get(StatId::kRootCollapses), 0u);
}

TEST(QueueCompressorTest, StaleTaskIsDropped) {
  QueueSetup s(2);
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(s.tree->Insert(k, k).ok());
  // Fabricate a stale task: a node id that is long gone / never matched.
  CompressionTask bogus;
  bogus.node = 0;  // the original root leaf (long since an internal page)
  bogus.level = 0;
  bogus.high = 3;  // no leaf has high == 3 pointing at page 0
  bogus.stamp = s.tree->epoch()->Now();
  s.queue->Push(bogus, true);
  QueueCompressor compressor(s.tree.get(), s.queue.get());
  const auto outcome = compressor.CompressOne();
  EXPECT_TRUE(outcome == QueueCompressor::Outcome::kDropped ||
              outcome == QueueCompressor::Outcome::kNothing)
      << static_cast<int>(outcome);
  Status st = TreeChecker(s.tree.get()).CheckStructure();
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(QueueCompressorTest, MixedWorkloadWithPeriodicDrains) {
  QueueSetup s(2);
  QueueCompressor compressor(s.tree.get(), s.queue.get());
  std::set<Key> reference;
  Random rng(4242);
  for (int i = 0; i < 30000; ++i) {
    const Key k = rng.UniformRange(1, 900);
    if (rng.Bernoulli(0.45)) {
      if (s.tree->Insert(k, k).ok()) reference.insert(k);
    } else {
      if (s.tree->Delete(k).ok()) reference.erase(k);
    }
    if (i % 1000 == 0) compressor.Drain();
  }
  compressor.Drain();
  EXPECT_EQ(s.tree->Size(), reference.size());
  Status st = TreeChecker(s.tree.get()).CheckStructure();
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (Key k = 1; k <= 900; ++k) {
    EXPECT_EQ(s.tree->Search(k).ok(), reference.count(k) > 0) << k;
  }
}

TEST(QueueCompressorTest, PagesReclaimedAfterDrain) {
  QueueSetup s(2);
  for (Key k = 1; k <= 1000; ++k) ASSERT_TRUE(s.tree->Insert(k, k).ok());
  const size_t live_before = s.tree->internal_pager()->live_pages();
  QueueCompressor compressor(s.tree.get(), s.queue.get());
  for (Key k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(s.tree->Delete(k).ok());
    if (k % 50 == 0) compressor.Drain();
  }
  compressor.Drain();
  s.tree->internal_pager()->Reclaim();
  EXPECT_LT(s.tree->internal_pager()->live_pages(), live_before / 5);
}

}  // namespace
}  // namespace obtree
