// Copyright 2026 The obtree Authors.

#include "obtree/util/stats.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace obtree {
namespace {

TEST(StatsTest, StartsAtZero) {
  StatsCollector stats;
  for (int i = 0; i < kNumStatIds; ++i) {
    EXPECT_EQ(stats.Get(static_cast<StatId>(i)), 0u);
  }
  EXPECT_EQ(stats.max_locks_held(), 0u);
}

TEST(StatsTest, AddAccumulates) {
  StatsCollector stats;
  stats.Add(StatId::kGets);
  stats.Add(StatId::kGets, 4);
  stats.Add(StatId::kPuts, 2);
  EXPECT_EQ(stats.Get(StatId::kGets), 5u);
  EXPECT_EQ(stats.Get(StatId::kPuts), 2u);
}

TEST(StatsTest, LockDepthHighWaterMark) {
  StatsCollector stats;
  stats.RecordLockDepth(1);
  stats.RecordLockDepth(3);
  stats.RecordLockDepth(2);
  EXPECT_EQ(stats.max_locks_held(), 3u);
}

TEST(StatsTest, SnapshotAndDelta) {
  StatsCollector stats;
  stats.Add(StatId::kSearches, 10);
  StatsSnapshot before = stats.Snapshot();
  stats.Add(StatId::kSearches, 5);
  stats.Add(StatId::kRestarts, 2);
  StatsSnapshot after = stats.Snapshot();
  StatsSnapshot delta = after.Delta(before);
  EXPECT_EQ(delta.Get(StatId::kSearches), 5u);
  EXPECT_EQ(delta.Get(StatId::kRestarts), 2u);
}

TEST(StatsTest, ResetZeroes) {
  StatsCollector stats;
  stats.Add(StatId::kMerges, 7);
  stats.RecordLockDepth(4);
  stats.Reset();
  EXPECT_EQ(stats.Get(StatId::kMerges), 0u);
  EXPECT_EQ(stats.max_locks_held(), 0u);
}

TEST(StatsTest, ConcurrentIncrementsLoseNothing) {
  StatsCollector stats;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (uint64_t i = 0; i < kPerThread; ++i) stats.Add(StatId::kInserts);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats.Get(StatId::kInserts), kThreads * kPerThread);
}

TEST(StatsTest, NamesAreUnique) {
  std::set<std::string> names;
  for (int i = 0; i < kNumStatIds; ++i) {
    names.insert(StatName(static_cast<StatId>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumStatIds));
}

TEST(StatsTest, ToStringListsNonZero) {
  StatsCollector stats;
  stats.Add(StatId::kSplits, 3);
  const std::string s = stats.Snapshot().ToString();
  EXPECT_NE(s.find("splits"), std::string::npos);
  EXPECT_EQ(s.find("merges"), std::string::npos);
}

}  // namespace
}  // namespace obtree
