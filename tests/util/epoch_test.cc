// Copyright 2026 The obtree Authors.
//
// Tests of the §5.3 reclamation rule: pages retired at time t are released
// only when every active operation started after t and every registered
// external structure (compression queues) holds only younger stamps.

#include "obtree/util/epoch.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace obtree {
namespace {

TEST(EpochTest, ClockAdvances) {
  EpochManager mgr;
  const Timestamp a = mgr.Now();
  const Timestamp b = mgr.Advance();
  EXPECT_GT(b, a);
  EXPECT_GE(mgr.Now(), b);
}

TEST(EpochTest, NoActiveMeansMaxTimestamp) {
  EpochManager mgr;
  EXPECT_EQ(mgr.MinActive(), kMaxTimestamp);
  EXPECT_EQ(mgr.ActiveCount(), 0);
}

TEST(EpochTest, GuardPinsStartTime) {
  EpochManager mgr;
  {
    EpochManager::Guard g(&mgr);
    EXPECT_EQ(mgr.ActiveCount(), 1);
    EXPECT_LE(mgr.MinActive(), g.start_time());
    mgr.Advance();
    mgr.Advance();
    // The pin does not move forward with the clock.
    EXPECT_LE(mgr.MinActive(), g.start_time());
  }
  EXPECT_EQ(mgr.ActiveCount(), 0);
  EXPECT_EQ(mgr.MinActive(), kMaxTimestamp);
}

TEST(EpochTest, RefreshMovesPinForward) {
  EpochManager mgr;
  EpochManager::Guard g(&mgr);
  const Timestamp before = g.start_time();
  mgr.Advance();
  mgr.Advance();
  g.Refresh();
  EXPECT_GT(g.start_time(), before);
  EXPECT_GE(mgr.MinActive(), before);
}

TEST(EpochTest, MinOfSeveralGuards) {
  EpochManager mgr;
  auto g1 = std::make_unique<EpochManager::Guard>(&mgr);
  auto g2 = std::make_unique<EpochManager::Guard>(&mgr);
  auto g3 = std::make_unique<EpochManager::Guard>(&mgr);
  EXPECT_EQ(mgr.ActiveCount(), 3);
  const Timestamp oldest = g1->start_time();
  EXPECT_LE(mgr.MinActive(), oldest);
  g1.reset();
  EXPECT_GT(mgr.MinActive(), oldest);  // the floor advanced
  g2.reset();
  g3.reset();
  EXPECT_EQ(mgr.MinActive(), kMaxTimestamp);
}

TEST(EpochTest, ExternalProviderHoldsFloor) {
  EpochManager mgr;
  std::atomic<Timestamp> queue_min{kMaxTimestamp};
  mgr.RegisterExternalMinProvider([&]() { return queue_min.load(); });
  EXPECT_EQ(mgr.MinActive(), kMaxTimestamp);
  queue_min.store(5);
  EXPECT_EQ(mgr.MinActive(), 5u);
  queue_min.store(kMaxTimestamp);
  EXPECT_EQ(mgr.MinActive(), kMaxTimestamp);
}

TEST(EpochTest, ManyConcurrentGuards) {
  EpochManager mgr;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kIters; ++i) {
        EpochManager::Guard g(&mgr);
        // While we are pinned, the floor can never exceed our start time.
        if (mgr.MinActive() > g.start_time()) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(mgr.ActiveCount(), 0);
}

TEST(EpochTest, SlotReuseAcrossManyGuards) {
  EpochManager mgr;
  // Sequentially create far more guards than slots: slots must recycle.
  for (int i = 0; i < EpochManager::kMaxSlots * 3; ++i) {
    EpochManager::Guard g(&mgr);
    EXPECT_EQ(mgr.ActiveCount(), 1);
  }
  EXPECT_EQ(mgr.ActiveCount(), 0);
}

}  // namespace
}  // namespace obtree
