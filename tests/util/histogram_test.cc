// Copyright 2026 The obtree Authors.

#include "obtree/util/histogram.h"

#include <gtest/gtest.h>

namespace obtree {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Add(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.mean(), 100.0);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v < 4; ++v) h.Add(v);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(HistogramTest, PercentilesMonotone) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Add(v);
  const uint64_t p50 = h.Percentile(50);
  const uint64_t p90 = h.Percentile(90);
  const uint64_t p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Log-bucket error bound: within ~25% of the true percentile.
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 1500.0);
  EXPECT_NEAR(static_cast<double>(p90), 9000.0, 2500.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  for (uint64_t v = 1; v <= 100; ++v) a.Add(v);
  for (uint64_t v = 1000; v <= 1100; ++v) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 201u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1100u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Add(UINT64_MAX);
  h.Add(UINT64_MAX / 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_GE(h.Percentile(99), UINT64_MAX / 4);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(7);
  EXPECT_NE(h.ToString().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace obtree
