// Copyright 2026 The obtree Authors.

#include "obtree/util/status.h"

#include <gtest/gtest.h>

namespace obtree {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Internal().IsInternal());

  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, CodesAreDistinct) {
  Status nf = Status::NotFound();
  EXPECT_FALSE(nf.ok());
  EXPECT_FALSE(nf.IsAlreadyExists());
  EXPECT_FALSE(nf.IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace obtree
