// Copyright 2026 The obtree Authors.

#include "obtree/util/status.h"

#include <gtest/gtest.h>

namespace obtree {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());

  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, CodesAreDistinct) {
  Status nf = Status::NotFound();
  EXPECT_FALSE(nf.ok());
  EXPECT_FALSE(nf.IsAlreadyExists());
  EXPECT_FALSE(nf.IsInternal());
  EXPECT_FALSE(nf.IsUnavailable());

  Status u = Status::Unavailable("page fetch failed");
  EXPECT_FALSE(u.ok());
  EXPECT_TRUE(u.IsUnavailable());
  EXPECT_FALSE(u.IsAborted());
  EXPECT_EQ(u.ToString(), "Unavailable: page fetch failed");
}

TEST(StatusTest, CopyAndMovePreserveCodeAndMessage) {
  Status orig = Status::Unavailable("transient");
  Status copy = orig;
  EXPECT_TRUE(copy.IsUnavailable());
  EXPECT_EQ(copy.message(), "transient");
  EXPECT_TRUE(orig.IsUnavailable());  // copy left the source intact

  Status moved = std::move(orig);
  EXPECT_TRUE(moved.IsUnavailable());
  EXPECT_EQ(moved.message(), "transient");

  Status assigned;
  assigned = moved;
  EXPECT_TRUE(assigned.IsUnavailable());
  EXPECT_EQ(assigned.message(), "transient");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, CopyAndMoveSemantics) {
  Result<std::string> ok(std::string("payload"));
  Result<std::string> copy = ok;
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy.value(), "payload");
  EXPECT_EQ(ok.value(), "payload");  // source unchanged by the copy

  Result<std::string> moved = std::move(copy);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), "payload");

  Result<std::string> err(Status::Unavailable("try later"));
  Result<std::string> err_copy = err;
  EXPECT_FALSE(err_copy.ok());
  EXPECT_TRUE(err_copy.status().IsUnavailable());
  EXPECT_EQ(err_copy.status().message(), "try later");
  Result<std::string> err_moved = std::move(err_copy);
  EXPECT_TRUE(err_moved.status().IsUnavailable());
  EXPECT_EQ(err_moved.status().message(), "try later");
}

TEST(ResultTest, StatusMessagePropagatesThroughConversions) {
  // The common call pattern: a deep layer fails, the status is returned
  // up through Result-returning wrappers without losing the message.
  auto deep = []() -> Status {
    return Status::Unavailable("injected page-fetch failure");
  };
  auto mid = [&]() -> Result<int> {
    Status s = deep();
    if (!s.ok()) return s;
    return 7;
  };
  Result<int> r = mid();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_EQ(r.status().message(), "injected page-fetch failure");
}

}  // namespace
}  // namespace obtree
