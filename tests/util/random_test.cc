// Copyright 2026 The obtree Authors.

#include "obtree/util/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace obtree {
namespace {

TEST(RandomTest, Deterministic) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformInRange) {
  Random rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t v = rng.UniformRange(100, 110);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 110u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Random rng(77);
  int heads = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.3, 0.02);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, RanksInRange) {
  Random rng(8);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 1000u);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Random rng(11);
  ZipfGenerator zipf(10000, 0.99);
  constexpr int kDraws = 200000;
  int top10 = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next(&rng) < 10) ++top10;
  }
  // Under theta=0.99 the 10 hottest items attract a large share; under
  // uniform they would get 0.1%.
  EXPECT_GT(static_cast<double>(top10) / kDraws, 0.20);
}

TEST(ZipfTest, Theta05LessSkewedThanTheta099) {
  Random rng(12);
  ZipfGenerator hot(10000, 0.99);
  ZipfGenerator mild(10000, 0.5);
  int hot10 = 0;
  int mild10 = 0;
  for (int i = 0; i < 100000; ++i) {
    if (hot.Next(&rng) < 10) ++hot10;
    if (mild.Next(&rng) < 10) ++mild10;
  }
  EXPECT_GT(hot10, mild10 * 2);
}

TEST(ScrambleKeyTest, Bijective) {
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 10000; ++i) out.insert(ScrambleKey(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(ScrambleKeyTest, Deterministic) {
  EXPECT_EQ(ScrambleKey(42), ScrambleKey(42));
  EXPECT_NE(ScrambleKey(42), ScrambleKey(43));
}

}  // namespace
}  // namespace obtree
