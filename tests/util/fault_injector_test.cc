// Copyright 2026 The obtree Authors.
//
// Unit tests for the deterministic failpoint registry. Every test arms
// sites and MUST disarm them (DisarmAll) before returning — the injector
// is process-global and gtest runs tests in one process.

#include "obtree/util/fault_injector.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace obtree {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }
};

TEST_F(FaultInjectorTest, UnarmedGateIsCold) {
  EXPECT_FALSE(FaultInjector::TrapsArmed());
  const FaultOutcome out = FaultInjector::Instance().Evaluate("get");
  EXPECT_FALSE(out.inject_error);
  EXPECT_EQ(out.stall_us, 0u);
}

TEST_F(FaultInjectorTest, ArmDisarmTogglesTheGate) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  FaultInjector::Instance().Arm("get", spec);
  EXPECT_TRUE(FaultInjector::TrapsArmed());
  EXPECT_TRUE(FaultInjector::Instance().Evaluate("get").inject_error);
  // Only the armed site fires; other sites stay inert.
  EXPECT_FALSE(FaultInjector::Instance().Evaluate("put").inject_error);
  FaultInjector::Instance().Disarm("get");
  EXPECT_FALSE(FaultInjector::TrapsArmed());
  EXPECT_FALSE(FaultInjector::Instance().Evaluate("get").inject_error);
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultSpec spec;
    spec.action = FaultAction::kError;
    spec.probability = 0.5;
    spec.seed = seed;
    FaultInjector::Instance().Arm("get", spec);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(FaultInjector::Instance().Evaluate("get").inject_error);
    }
    FaultInjector::Instance().DisarmAll();
    return fires;
  };
  const std::vector<bool> a = run(1234);
  const std::vector<bool> b = run(1234);
  const std::vector<bool> c = run(99);
  EXPECT_EQ(a, b);  // same seed => same schedule
  EXPECT_NE(a, c);  // different seed => (overwhelmingly) different schedule
  // Rough sanity on the rate: ~32 of 64 at p=0.5.
  int count = 0;
  for (const bool f : a) count += f ? 1 : 0;
  EXPECT_GT(count, 8);
  EXPECT_LT(count, 56);
}

TEST_F(FaultInjectorTest, EveryNthFiresOnSchedule) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.every_nth = 3;
  FaultInjector::Instance().Arm("get", spec);
  std::vector<bool> fires;
  for (int i = 0; i < 9; ++i) {
    fires.push_back(FaultInjector::Instance().Evaluate("get").inject_error);
  }
  const std::vector<bool> expect = {true, false, false, true, false,
                                    false, true, false, false};
  EXPECT_EQ(fires, expect);
}

TEST_F(FaultInjectorTest, MaxFiresExhaustsTheSite) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.max_fires = 2;
  FaultInjector::Instance().Arm("get", spec);
  EXPECT_TRUE(FaultInjector::Instance().Evaluate("get").inject_error);
  EXPECT_TRUE(FaultInjector::Instance().Evaluate("get").inject_error);
  // Exhausted: the site no longer fires AND the hot-path gate goes cold
  // (the one-shot released its trap reference).
  EXPECT_FALSE(FaultInjector::Instance().Evaluate("get").inject_error);
  EXPECT_FALSE(FaultInjector::TrapsArmed());
}

TEST_F(FaultInjectorTest, ErrorIneligibleHitsDoNotConsumeTriggers) {
  // A locked page fetch may not fail; such hits must not advance the
  // one-shot/every-Nth schedule, or schedules would silently skew.
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.max_fires = 1;
  FaultInjector::Instance().Arm("get", spec);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(FaultInjector::Instance()
                     .Evaluate("get", /*error_eligible=*/false)
                     .inject_error);
  }
  // The single shot is still loaded.
  EXPECT_TRUE(FaultInjector::Instance().Evaluate("get").inject_error);
}

TEST_F(FaultInjectorTest, ScopedExemptionSuppressesEvaluation) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  FaultInjector::Instance().Arm("get", spec);
  {
    FaultInjector::ScopedExemption exempt;
    EXPECT_TRUE(FaultInjector::ThreadExempt());
    EXPECT_FALSE(FaultInjector::Instance().Evaluate("get").inject_error);
    {
      FaultInjector::ScopedExemption nested;  // depth counts, not a flag
      EXPECT_FALSE(FaultInjector::Instance().Evaluate("get").inject_error);
    }
    EXPECT_TRUE(FaultInjector::ThreadExempt());
  }
  EXPECT_FALSE(FaultInjector::ThreadExempt());
  EXPECT_TRUE(FaultInjector::Instance().Evaluate("get").inject_error);
}

TEST_F(FaultInjectorTest, ExemptionIsPerThread) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  FaultInjector::Instance().Arm("get", spec);
  FaultInjector::ScopedExemption exempt;  // exempts THIS thread only
  bool other_thread_fired = false;
  std::thread t([&]() {
    other_thread_fired =
        FaultInjector::Instance().Evaluate("get").inject_error;
  });
  t.join();
  EXPECT_TRUE(other_thread_fired);
  EXPECT_FALSE(FaultInjector::Instance().Evaluate("get").inject_error);
}

TEST_F(FaultInjectorTest, CallingThreadOnlyFilters) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.calling_thread_only = true;
  FaultInjector::Instance().Arm("get", spec);
  EXPECT_TRUE(FaultInjector::Instance().Evaluate("get").inject_error);
  bool other_thread_fired = false;
  std::thread t([&]() {
    other_thread_fired =
        FaultInjector::Instance().Evaluate("get").inject_error;
  });
  t.join();
  EXPECT_FALSE(other_thread_fired);
}

TEST_F(FaultInjectorTest, StallReportsDuration) {
  FaultSpec spec;
  spec.action = FaultAction::kStall;
  spec.stall_us = 50;
  FaultInjector::Instance().Arm("lock", spec);
  const FaultOutcome out = FaultInjector::Instance().Evaluate("lock");
  EXPECT_FALSE(out.inject_error);
  EXPECT_EQ(out.stall_us, 50u);
}

TEST_F(FaultInjectorTest, SiteStatsCountHitsAndFires) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.every_nth = 2;
  FaultInjector::Instance().Arm("get", spec);
  for (int i = 0; i < 6; ++i) FaultInjector::Instance().Evaluate("get");
  const FaultSiteStats stats = FaultInjector::Instance().SiteStats("get");
  EXPECT_EQ(stats.hits, 6u);
  EXPECT_EQ(stats.fires, 3u);
  const auto sites = FaultInjector::Instance().ArmedSites();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "get");
}

TEST_F(FaultInjectorTest, DisarmAllClearsEverything) {
  FaultSpec spec;
  spec.action = FaultAction::kError;
  FaultInjector::Instance().Arm("get", spec);
  FaultInjector::Instance().Arm("put", spec);
  FaultInjector::Instance().Arm("migration-batch", spec);
  EXPECT_TRUE(FaultInjector::TrapsArmed());
  FaultInjector::Instance().DisarmAll();
  EXPECT_FALSE(FaultInjector::TrapsArmed());
  EXPECT_TRUE(FaultInjector::Instance().ArmedSites().empty());
}

}  // namespace
}  // namespace obtree
