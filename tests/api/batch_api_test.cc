// Copyright 2026 The obtree Authors.
//
// The batched operation API (PR 8): MultiGet/MultiInsert/MultiErase/
// MultiUpsert on both map front-ends, backed by SagivTree's pipelined
// descent engine. Covers mode agreement (batched results must equal a
// single-op loop, including per-op error slots), the batch stats
// counters, partial-failure batches under fault injection, the
// single-descent atomicity of Upsert, batches crossing a live shard
// migration, and a writer/reader/migration stress for TSan.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/api/concurrent_map.h"
#include "obtree/api/sharded_map.h"
#include "obtree/util/fault_injector.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

MapOptions PlainMap(uint32_t batch_width = 32) {
  MapOptions opt;
  opt.compression = CompressionMode::kNone;
  opt.tree.min_entries = 32;
  opt.tree.batch_max_inflight = batch_width;
  return opt;
}

// Even keys in [2, 2n] present with value key + 1; odd keys absent.
void PreloadEven(ConcurrentMap* map, Key n) {
  for (Key k = 1; k <= n; ++k) {
    ASSERT_TRUE(map->Insert(2 * k, 2 * k + 1).ok());
  }
}

TEST(BatchApiTest, MultiGetAgreesWithSingleOpLoop) {
  ConcurrentMap map(PlainMap(/*batch_width=*/8));
  PreloadEven(&map, 5'000);  // height >= 2 with 32-entry minimum nodes

  // Mixed present/absent keys, batch far wider than the pipeline width so
  // the window loop is exercised too.
  std::vector<Key> keys;
  Random rng(123);
  for (int i = 0; i < 200; ++i) keys.push_back(1 + rng.Next() % 10'000);

  const BatchResult r = map.MultiGet(keys);
  ASSERT_EQ(r.values.size(), keys.size());
  EXPECT_EQ(r.stats.ops, keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const Result<Value> single = map.Get(keys[i]);
    ASSERT_EQ(r.values[i].ok(), single.ok()) << "key " << keys[i];
    if (single.ok()) {
      EXPECT_EQ(*r.values[i], *single) << "key " << keys[i];
    } else {
      EXPECT_TRUE(r.values[i].status().IsNotFound()) << "key " << keys[i];
    }
    // Satellite: Search IS Get, on the map type too.
    EXPECT_EQ(map.Search(keys[i]).ok(), single.ok());
  }

  // Batches of many ops through the same root must coalesce fetches.
  EXPECT_GT(r.stats.pages_coalesced, 0u);
  EXPECT_GT(map.Stats().Get(StatId::kBatchPagesCoalesced), 0u);
  EXPECT_EQ(map.Stats().Get(StatId::kBatchOps), keys.size());
}

TEST(BatchApiTest, WriteBatchesAgreeWithSingleOpLoop) {
  // Drive the same op sequence through batched and single-op maps; the
  // per-op statuses and the final contents must match exactly.
  ConcurrentMap batched(PlainMap());
  ConcurrentMap serial(PlainMap());

  std::vector<Key> ins_keys;
  std::vector<Value> ins_vals;
  for (Key k = 1; k <= 300; ++k) {
    ins_keys.push_back(k % 200 + 1);  // duplicates past k=200
    ins_vals.push_back(k * 7);
  }
  const BatchResult bi = batched.MultiInsert(ins_keys, ins_vals);
  ASSERT_EQ(bi.statuses.size(), ins_keys.size());
  for (size_t i = 0; i < ins_keys.size(); ++i) {
    const Status s = serial.Insert(ins_keys[i], ins_vals[i]);
    EXPECT_EQ(bi.statuses[i].ok(), s.ok()) << i;
    if (!s.ok()) {
      EXPECT_TRUE(bi.statuses[i].IsAlreadyExists()) << i;
    }
  }

  // Upsert every key (present and absent) to a new value.
  std::vector<Key> up_keys;
  std::vector<Value> up_vals;
  for (Key k = 100; k <= 400; ++k) {
    up_keys.push_back(k);
    up_vals.push_back(k + 1'000'000);
  }
  const BatchResult bu = batched.MultiUpsert(up_keys, up_vals);
  for (size_t i = 0; i < up_keys.size(); ++i) {
    EXPECT_TRUE(bu.statuses[i].ok()) << i;
    ASSERT_TRUE(serial.Upsert(up_keys[i], up_vals[i]).ok()) << i;
  }

  // Erase a mix of present and absent keys.
  std::vector<Key> del_keys;
  for (Key k = 1; k <= 500; k += 3) del_keys.push_back(k);
  const BatchResult be = batched.MultiErase(del_keys);
  for (size_t i = 0; i < del_keys.size(); ++i) {
    const Status s = serial.Erase(del_keys[i]);
    EXPECT_EQ(be.statuses[i].ok(), s.ok()) << "key " << del_keys[i];
    if (!s.ok()) {
      EXPECT_TRUE(be.statuses[i].IsNotFound());
    }
    // Satellite: Delete IS Erase (both already removed the key, so both
    // aliases must agree on NotFound now).
    EXPECT_TRUE(batched.Delete(del_keys[i]).IsNotFound());
    EXPECT_TRUE(serial.Delete(del_keys[i]).IsNotFound());
  }

  ASSERT_EQ(batched.Size(), serial.Size());
  std::vector<std::pair<Key, Value>> a = batched.ScanLimit(1, 10'000);
  std::vector<std::pair<Key, Value>> b = serial.ScanLimit(1, 10'000);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(batched.ValidateStructure().ok());
}

TEST(BatchApiTest, EmptySingleAndMismatchedBatches) {
  ConcurrentMap map(PlainMap());
  ASSERT_TRUE(map.Insert(10, 11).ok());

  EXPECT_EQ(map.MultiGet({}).size(), 0u);
  EXPECT_TRUE(map.MultiGet({}).all_ok());

  // Batch size 1 takes the single-op path and must agree with it.
  const BatchResult one = map.MultiGet({10});
  ASSERT_EQ(one.values.size(), 1u);
  EXPECT_EQ(*one.values[0], 11u);
  EXPECT_EQ(one.stats.ops, 1u);
  EXPECT_EQ(one.stats.pages_coalesced, 0u);

  // Out-of-range keys fail per-op, not per-batch.
  const BatchResult bad = map.MultiGet({10, 0, kMaxUserKey + 1});
  EXPECT_TRUE(bad.values[0].ok());
  EXPECT_TRUE(bad.values[1].status().IsInvalidArgument());
  EXPECT_TRUE(bad.values[2].status().IsInvalidArgument());

  // Length-mismatched write batches reject every op.
  const BatchResult mm = map.MultiInsert({1, 2, 3}, {1});
  ASSERT_EQ(mm.statuses.size(), 3u);
  for (const Status& s : mm.statuses) {
    EXPECT_TRUE(s.IsInvalidArgument());
  }
  EXPECT_FALSE(map.Get(1).ok());  // nothing was applied
}

TEST(BatchApiTest, SimulatedIoWaitsAreOverlapped) {
  ConcurrentMap map(PlainMap());
  PreloadEven(&map, 5'000);

  std::vector<Key> keys;
  Random rng(7);
  for (int i = 0; i < 32; ++i) keys.push_back(2 * (1 + rng.Next() % 5'000));

  // At memory speed no waits exist, so none can be overlapped.
  const BatchResult mem = map.MultiGet(keys);
  EXPECT_EQ(mem.stats.io_overlapped, 0u);

  // With simulated I/O armed, the leaf rounds fan out over many distinct
  // pages and the engine must issue their waits together.
  map.tree()->internal_pager()->set_simulated_io_ns(1);
  const BatchResult io = map.MultiGet(keys);
  map.tree()->internal_pager()->set_simulated_io_ns(0);
  EXPECT_TRUE(io.all_ok());
  EXPECT_GT(io.stats.io_overlapped, 0u);
  EXPECT_GT(io.stats.pages_coalesced, 0u);
  EXPECT_EQ(io.stats.ops, keys.size());
  EXPECT_GT(map.Stats().Get(StatId::kBatchIoOverlapped), 0u);
}

TEST(BatchApiTest, PartialFailureUnderFaultInjection) {
  ConcurrentMap map(PlainMap());
  PreloadEven(&map, 5'000);

  std::vector<Key> keys;
  for (int i = 0; i < 64; ++i) keys.push_back(2 * (i + 1));

  // A bounded burst of page-fetch failures: the pipeline burns its
  // optimistic budget first, then the earliest fallback descents eat the
  // remaining fires and report Unavailable — while later batch-mates run
  // after the injector disarms and succeed. Per-op independence is the
  // contract under test.
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.probability = 1.0;
  spec.max_fires = 30;
  FaultInjector::Instance().Arm("get", spec);
  const BatchResult r = map.MultiGet(keys);
  FaultInjector::Instance().DisarmAll();

  ASSERT_EQ(r.values.size(), keys.size());
  size_t failed = 0;
  size_t succeeded = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (r.values[i].ok()) {
      ++succeeded;
      EXPECT_EQ(*r.values[i], keys[i] + 1) << "key " << keys[i];
    } else {
      ++failed;
      EXPECT_TRUE(r.values[i].status().IsUnavailable()) << "key " << keys[i];
    }
  }
  EXPECT_GT(failed, 0u) << "injector never surfaced a per-op error";
  EXPECT_GT(succeeded, 0u) << "one op's failure disturbed its batch-mates";

  // The same batch with the injector quiet is fully served.
  EXPECT_TRUE(map.MultiGet(keys).all_ok());
}

TEST(BatchApiTest, UpsertIsAtomicUnderConcurrentReaders) {
  // The old Upsert was a documented erase-then-insert: a reader could
  // catch the key ABSENT between the two steps. The single-descent
  // rewrite overwrites the value inside the same locked critical section
  // as the presence check, so a hammered key must never read NotFound.
  ConcurrentMap map(PlainMap());
  const Key hot = 4'242;
  ASSERT_TRUE(map.Insert(hot, 1).ok());
  for (Key k = 1; k <= 2'000; ++k) {
    ASSERT_TRUE(map.Upsert(2 * k, k).ok());  // give the tree some height
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> misses{0};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      if (!map.Get(hot).ok()) misses.fetch_add(1);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t]() {
      for (uint64_t i = 1; i <= 4'000; ++i) {
        ASSERT_TRUE(map.Upsert(hot, i * 4 + static_cast<uint64_t>(t)).ok());
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(misses.load(), 0u) << "a reader observed the key absent mid-upsert";
  EXPECT_EQ(map.Size(), 2'001u);  // upserts never change the count
}

// --- sharded front-end -----------------------------------------------------

TEST(BatchApiTest, ShardedBatchesAgreeWithSingleOpLoop) {
  ShardOptions opt;
  opt.num_shards = 4;
  opt.key_space_hint = 40'000;
  opt.compression = CompressionMode::kNone;
  opt.tree.min_entries = 32;
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());

  std::vector<Key> keys;
  std::vector<Value> vals;
  Random rng(99);
  for (int i = 0; i < 500; ++i) {
    keys.push_back(1 + rng.Next() % 40'000);  // spans all four shards
    vals.push_back(keys.back() + 1);
  }
  const BatchResult ins = map.MultiInsert(keys, vals);
  ASSERT_EQ(ins.statuses.size(), keys.size());
  EXPECT_EQ(ins.stats.ops, keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    // A duplicate key in the batch fails exactly like a duplicate Insert.
    EXPECT_EQ(ins.statuses[i].ok(),
              std::find(keys.begin(), keys.begin() + static_cast<long>(i),
                        keys[i]) == keys.begin() + static_cast<long>(i))
        << i;
  }

  const BatchResult got = map.MultiGet(keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    const Result<Value> single = map.Get(keys[i]);
    ASSERT_TRUE(single.ok() && got.values[i].ok()) << i;
    EXPECT_EQ(*got.values[i], *single);
    EXPECT_EQ(*map.Search(keys[i]), *single);  // alias
  }

  const BatchResult del = map.MultiErase(keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    // First occurrence erases; duplicates see NotFound, like Erase.
    EXPECT_EQ(del.statuses[i].ok(), ins.statuses[i].ok()) << i;
  }
  EXPECT_TRUE(map.Empty());
}

TEST(BatchApiTest, ShardedBatchesCrossLiveMigration) {
  // Freeze a split right after its handoff table swap: the upper half of
  // shard 0 routes to the (empty) receiver with nothing drained yet, so
  // every key there is unsettled and batched ops must take the dual-zone
  // path while settled batch-mates ride the engine.
  ShardOptions opt;
  opt.num_shards = 2;
  opt.key_space_hint = 400;
  opt.compression = CompressionMode::kNone;
  opt.tree.min_entries = 3;
  opt.rebalance.enabled = true;
  opt.rebalance.period_ms = 3'600'000;  // controller parked; Debug* drives
  opt.rebalance.min_shards = 1;
  opt.rebalance.max_shards = 16;
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  for (Key k = 1; k <= 200; ++k) ASSERT_TRUE(map.Insert(k, k + 1).ok());

  std::mutex mu;
  std::condition_variable cv;
  bool frozen = false;
  bool release = false;
  map.SetMigrationHookForTest([&](const char* point, Key) {
    if (std::strcmp(point, "table-swap") != 0) return;
    std::unique_lock<std::mutex> lk(mu);
    if (frozen) return;  // only the handoff swap blocks
    frozen = true;
    cv.notify_all();
    cv.wait(lk, [&] { return release; });
  });

  std::thread splitter([&]() { ASSERT_TRUE(map.DebugSplitShard(0)); });
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return frozen; });
  }

  // Whole-range batch: keys below the split point are settled, keys above
  // it run donor-first dual lookups against the in-flight migration.
  std::vector<Key> keys;
  for (Key k = 1; k <= 200; ++k) keys.push_back(k);
  const BatchResult r = map.MultiGet(keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(r.values[i].ok()) << "key " << keys[i];
    EXPECT_EQ(*r.values[i], keys[i] + 1);
  }
  // Writes in the moving range land correctly too.
  const BatchResult w = map.MultiUpsert({150, 250}, {999, 998});
  EXPECT_TRUE(w.all_ok());
  EXPECT_TRUE(map.MultiErase({151}).all_ok());

  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  splitter.join();
  map.SetMigrationHookForTest(nullptr);

  EXPECT_EQ(*map.Get(150), 999u);
  EXPECT_EQ(*map.Get(250), 998u);
  EXPECT_TRUE(map.Get(151).status().IsNotFound());
  EXPECT_TRUE(map.ValidateStructure().ok());
}

TEST(BatchApiTest, BatchedWritersReadersAndRebalancingStress) {
  // TSan target: batched writers, batched + single-op readers, and live
  // split/merge migrations all at once. Passing means the pipelined
  // engine's in-place reads, the locked commits, and the migration
  // protocol stay race-free when driven through the batch API.
  ShardOptions opt;
  opt.num_shards = 2;
  opt.key_space_hint = 8'000;
  opt.compression = CompressionMode::kNone;
  opt.tree.min_entries = 3;
  opt.rebalance.enabled = true;
  opt.rebalance.period_ms = 3'600'000;
  opt.rebalance.min_shards = 1;
  opt.rebalance.max_shards = 16;
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  for (Key k = 1; k <= 4'000; k += 2) ASSERT_TRUE(map.Insert(k, k + 1).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t]() {  // batched writers
      Random rng(1000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<Key> keys;
        std::vector<Value> vals;
        for (int i = 0; i < 16; ++i) {
          keys.push_back(1 + rng.Next() % 8'000);
          vals.push_back(keys.back() + 1);
        }
        if (t == 0) {
          map.MultiUpsert(keys, vals);
        } else {
          map.MultiErase(keys);
          map.MultiInsert(keys, vals);
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t]() {  // readers: batched + single-op
      Random rng(2000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<Key> keys;
        for (int i = 0; i < 16; ++i) keys.push_back(1 + rng.Next() % 8'000);
        const BatchResult r = map.MultiGet(keys);
        for (size_t i = 0; i < keys.size(); ++i) {
          if (r.values[i].ok()) {
            EXPECT_EQ(*r.values[i], keys[i] + 1);
          }
        }
        (void)map.Get(keys[0]);
      }
    });
  }

  // Drive migrations under the churn: split twice, merge once.
  EXPECT_TRUE(map.DebugSplitShard(0));
  EXPECT_TRUE(map.DebugSplitShard(1));
  map.DebugMergeShards(0);  // may skip if the policy floor refuses; fine

  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  EXPECT_TRUE(map.ValidateStructure().ok());
  // Quiescent agreement: a full batched read must match Scan's contents.
  std::vector<std::pair<Key, Value>> scanned = map.ScanLimit(1, 10'000);
  std::vector<Key> keys;
  keys.reserve(scanned.size());
  for (const auto& kv : scanned) keys.push_back(kv.first);
  const BatchResult all = map.MultiGet(keys);
  ASSERT_TRUE(all.all_ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(*all.values[i], scanned[i].second);
  }
}

}  // namespace
}  // namespace obtree
