// Copyright 2026 The obtree Authors.

#include "obtree/api/concurrent_map.h"

#include <memory>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "obtree/core/background_pool.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

MapOptions SmallNodes(CompressionMode mode, uint32_t k = 3) {
  MapOptions opt;
  opt.tree.min_entries = k;
  opt.compression = mode;
  return opt;
}

TEST(ConcurrentMapTest, BasicCrud) {
  ConcurrentMap map;
  ASSERT_TRUE(map.init_status().ok());
  EXPECT_TRUE(map.Empty());
  ASSERT_TRUE(map.Insert(1, 100).ok());
  ASSERT_TRUE(map.Insert(2, 200).ok());
  EXPECT_EQ(map.Size(), 2u);
  EXPECT_EQ(*map.Get(1), 100u);
  EXPECT_TRUE(map.Get(3).status().IsNotFound());
  EXPECT_TRUE(map.Erase(1).ok());
  EXPECT_TRUE(map.Get(1).status().IsNotFound());
  EXPECT_TRUE(map.Erase(1).IsNotFound());
}

TEST(ConcurrentMapTest, UpsertReplaces) {
  ConcurrentMap map;
  ASSERT_TRUE(map.Upsert(5, 1).ok());
  EXPECT_EQ(*map.Get(5), 1u);
  ASSERT_TRUE(map.Upsert(5, 2).ok());
  EXPECT_EQ(*map.Get(5), 2u);
  EXPECT_EQ(map.Size(), 1u);
}

TEST(ConcurrentMapTest, ScanLimitPaginates) {
  ConcurrentMap map;
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  auto page1 = map.ScanLimit(1, 10);
  ASSERT_EQ(page1.size(), 10u);
  EXPECT_EQ(page1.front().first, 1u);
  EXPECT_EQ(page1.back().first, 10u);
  auto page2 = map.ScanLimit(page1.back().first + 1, 10);
  ASSERT_EQ(page2.size(), 10u);
  EXPECT_EQ(page2.front().first, 11u);
  auto empty = map.ScanLimit(101, 10);
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(map.ScanLimit(1, 0).empty());
}

TEST(ConcurrentMapTest, QueueWorkersCompactInBackground) {
  ConcurrentMap map(SmallNodes(CompressionMode::kQueueWorkers, 2));
  for (Key k = 1; k <= 3000; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  const uint32_t tall = map.Height();
  for (Key k = 1; k <= 3000; ++k) ASSERT_TRUE(map.Erase(k).ok());
  // Give the background workers a moment, then force a fixpoint.
  map.CompressNow();
  EXPECT_LE(map.Height(), 2u);
  EXPECT_LT(map.Height(), tall);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

TEST(ConcurrentMapTest, BackgroundScanCompacts) {
  ConcurrentMap map(SmallNodes(CompressionMode::kBackgroundScan, 2));
  for (Key k = 1; k <= 2000; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  for (Key k = 1; k <= 2000; ++k) ASSERT_TRUE(map.Erase(k).ok());
  map.CompressNow();
  EXPECT_LE(map.Height(), 2u);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

TEST(ConcurrentMapTest, NoCompressionLeavesSkeleton) {
  ConcurrentMap map(SmallNodes(CompressionMode::kNone, 2));
  for (Key k = 1; k <= 2000; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  const uint32_t tall = map.Height();
  for (Key k = 1; k <= 2000; ++k) ASSERT_TRUE(map.Erase(k).ok());
  EXPECT_EQ(map.Height(), tall);  // Section 4 semantics: no restructuring
  EXPECT_TRUE(map.ValidateStructure().ok());
  map.CompressNow();  // explicit compression still available
  EXPECT_LE(map.Height(), 2u);
}

TEST(ConcurrentMapTest, ShapeReportsOccupancy) {
  ConcurrentMap map(SmallNodes(CompressionMode::kNone, 3));
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  const TreeShape shape = map.Shape();
  EXPECT_EQ(shape.num_keys, 500u);
  EXPECT_EQ(shape.height, map.Height());
  EXPECT_GT(shape.avg_leaf_fill, 0.3);
}

TEST(ConcurrentMapTest, ConcurrentMixedWithBackgroundWorkers) {
  MapOptions opt = SmallNodes(CompressionMode::kQueueWorkers, 2);
  opt.compression_threads = 2;
  ConcurrentMap map(opt);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&map, t]() {
      Random rng(60 + static_cast<uint64_t>(t));
      for (int i = 0; i < 15000; ++i) {
        const Key k = rng.UniformRange(1, 1200);
        const double p = rng.NextDouble();
        if (p < 0.4) {
          (void)map.Insert(k, k);
        } else if (p < 0.8) {
          (void)map.Erase(k);
        } else {
          Result<Value> r = map.Get(k);
          if (r.ok()) {
            ASSERT_EQ(*r, k);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  map.CompressNow();
  EXPECT_TRUE(map.ValidateStructure().ok())
      << map.ValidateStructure().ToString();
  uint64_t counted = 0;
  map.Scan(1, kMaxUserKey, [&](Key, Value) {
    ++counted;
    return true;
  });
  EXPECT_EQ(counted, map.Size());
}

TEST(CursorTest, IteratesAllPairsInOrder) {
  ConcurrentMap map;
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(map.Insert(k * 3, k).ok());
  ConcurrentMap::Cursor cursor(&map);
  Key key;
  Value value;
  Key prev = 0;
  size_t n = 0;
  while (cursor.Next(&key, &value)) {
    EXPECT_GT(key, prev);
    EXPECT_EQ(value, key / 3);
    prev = key;
    ++n;
  }
  EXPECT_EQ(n, 500u);
  EXPECT_FALSE(cursor.Next(&key, &value));  // stays exhausted
}

TEST(CursorTest, StartAndSeek) {
  ConcurrentMap map;
  for (Key k = 10; k <= 100; k += 10) ASSERT_TRUE(map.Insert(k, k).ok());
  ConcurrentMap::Cursor cursor(&map, 35);
  Key key;
  Value value;
  ASSERT_TRUE(cursor.Next(&key, &value));
  EXPECT_EQ(key, 40u);
  cursor.Seek(95);
  ASSERT_TRUE(cursor.Next(&key, &value));
  EXPECT_EQ(key, 100u);
  EXPECT_FALSE(cursor.Next(&key, &value));
  cursor.Seek(1);  // rewinding revives an exhausted cursor
  ASSERT_TRUE(cursor.Next(&key, &value));
  EXPECT_EQ(key, 10u);
}

TEST(CursorTest, EmptyMap) {
  ConcurrentMap map;
  ConcurrentMap::Cursor cursor(&map);
  Key key;
  Value value;
  EXPECT_FALSE(cursor.Next(&key, &value));
}

TEST(CursorTest, SurvivesConcurrentDeletes) {
  MapOptions opt = SmallNodes(CompressionMode::kQueueWorkers, 2);
  ConcurrentMap map(opt);
  for (Key k = 1; k <= 4000; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  // Odd keys are stable; even keys vanish while the cursor walks.
  std::thread deleter([&map]() {
    for (Key k = 2; k <= 4000; k += 2) (void)map.Erase(k);
  });
  ConcurrentMap::Cursor cursor(&map);
  Key key;
  Value value;
  Key prev = 0;
  size_t odd_seen = 0;
  while (cursor.Next(&key, &value)) {
    ASSERT_GT(key, prev);  // strictly ascending, no duplicates
    prev = key;
    if (key % 2 == 1) ++odd_seen;
  }
  deleter.join();
  EXPECT_EQ(odd_seen, 2000u);  // every stable key delivered exactly once
}

TEST(ConcurrentMapTest, AttachesToExternalBackgroundPool) {
  // Two maps share one pool; neither spawns threads of its own. One map
  // dies mid-traffic (the detach-before-teardown path) and the survivor
  // keeps being served.
  BackgroundPool::Options pool_options;
  pool_options.threads = 2;
  BackgroundPool pool(pool_options);
  auto doomed = std::make_unique<ConcurrentMap>(
      SmallNodes(CompressionMode::kQueueWorkers), &pool);
  ConcurrentMap survivor(SmallNodes(CompressionMode::kQueueWorkers), &pool);
  EXPECT_EQ(doomed->background_thread_count(), 0);
  EXPECT_EQ(survivor.background_thread_count(), 0);
  EXPECT_EQ(survivor.attached_pool(), &pool);
  EXPECT_EQ(pool.num_sources(), 2u);

  for (Key k = 1; k <= 2000; ++k) {
    ASSERT_TRUE(doomed->Insert(k, k).ok());
    ASSERT_TRUE(survivor.Insert(k, k).ok());
  }
  for (Key k = 1; k <= 2000; ++k) ASSERT_TRUE(doomed->Erase(k).ok());
  doomed.reset();  // detaches; pool workers must never touch it again
  EXPECT_EQ(pool.num_sources(), 1u);

  for (Key k = 1; k <= 2000; ++k) ASSERT_TRUE(survivor.Erase(k).ok());
  survivor.CompressNow();
  EXPECT_LE(survivor.Height(), 2u);
  EXPECT_TRUE(survivor.ValidateStructure().ok());
  // A scan-maintained map can share the same pool (queue-less source).
  ConcurrentMap scanned(SmallNodes(CompressionMode::kBackgroundScan), &pool);
  EXPECT_EQ(scanned.background_thread_count(), 0);
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(scanned.Insert(k, k).ok());
  EXPECT_TRUE(scanned.ValidateStructure().ok());
}

TEST(ConcurrentMapTest, StatsExposed) {
  ConcurrentMap map;
  ASSERT_TRUE(map.Insert(1, 1).ok());
  (void)map.Get(1);
  const StatsSnapshot snap = map.Stats();
  EXPECT_EQ(snap.Get(StatId::kInserts), 1u);
  EXPECT_EQ(snap.Get(StatId::kSearches), 1u);
}

}  // namespace
}  // namespace obtree
