// Copyright 2026 The obtree Authors.

#include "obtree/api/sharded_map.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "obtree/core/background_pool.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"
#include "obtree/workload/driver.h"

namespace obtree {
namespace {

using testutil::LiveThreadCount;

ShardOptions SmallShards(uint32_t num_shards, Key key_space_hint,
                         CompressionMode mode = CompressionMode::kNone,
                         uint32_t k = 3) {
  ShardOptions opt;
  opt.num_shards = num_shards;
  opt.key_space_hint = key_space_hint;
  opt.compression = mode;
  opt.tree.min_entries = k;
  return opt;
}

TEST(ShardOptionsTest, ValidatesShardCount) {
  ShardOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
  opt.num_shards = 3;  // not a power of two
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.num_shards = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.num_shards = ShardOptions::kMaxShards * 2;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.num_shards = 8;
  opt.key_space_hint = 4;  // fewer keys than shards
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.key_space_hint = 1 << 20;
  opt.compression_threads_per_shard = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

TEST(ShardedMapTest, RejectedOptionsDegradeToDefaults) {
  ShardOptions bad;
  bad.num_shards = 5;
  ShardedMap map(bad);
  EXPECT_TRUE(map.init_status().IsInvalidArgument());
  EXPECT_EQ(map.num_shards(), ShardOptions().num_shards);
  // Still a working map.
  ASSERT_TRUE(map.Insert(1, 2).ok());
  EXPECT_EQ(*map.Get(1), 2u);
}

TEST(ShardedMapTest, RoutingAtShardBoundaries) {
  // 4 shards over [1, 400]: widths of 100, so the boundaries are
  // 100|101, 200|201, 300|301.
  ShardedMap map(SmallShards(4, 400));
  ASSERT_TRUE(map.init_status().ok());
  EXPECT_EQ(map.num_shards(), 4u);
  EXPECT_EQ(map.ShardLowerBound(0), 1u);
  EXPECT_EQ(map.ShardLowerBound(1), 101u);
  EXPECT_EQ(map.ShardLowerBound(3), 301u);

  EXPECT_EQ(map.ShardIndex(1), 0u);
  EXPECT_EQ(map.ShardIndex(100), 0u);
  EXPECT_EQ(map.ShardIndex(101), 1u);
  EXPECT_EQ(map.ShardIndex(200), 1u);
  EXPECT_EQ(map.ShardIndex(201), 2u);
  EXPECT_EQ(map.ShardIndex(400), 3u);
  // Keys beyond the hint route to the last shard (correct, unbalanced).
  EXPECT_EQ(map.ShardIndex(401), 3u);
  EXPECT_EQ(map.ShardIndex(kMaxUserKey), 3u);

  const std::vector<Key> boundary_keys = {1,   99,  100, 101, 199, 200,
                                          201, 299, 300, 301, 400, 401,
                                          50'000};
  for (Key k : boundary_keys) {
    ASSERT_TRUE(map.Insert(k, k * 10).ok()) << k;
  }
  for (Key k : boundary_keys) {
    Result<Value> r = map.Get(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, k * 10);
    // The key must live in exactly the shard the router names.
    const uint32_t owner = map.ShardIndex(k);
    for (uint32_t s = 0; s < map.num_shards(); ++s) {
      EXPECT_EQ(map.shard(s)->Get(k).ok(), s == owner) << "key " << k;
    }
  }
  EXPECT_EQ(map.Size(), boundary_keys.size());
  for (Key k : boundary_keys) EXPECT_TRUE(map.Erase(k).ok());
  EXPECT_TRUE(map.Empty());
}

TEST(ShardedMapTest, DuplicateAndMissingKeysMatchSingleTreeSemantics) {
  ShardedMap map(SmallShards(4, 1000));
  ASSERT_TRUE(map.Insert(500, 1).ok());
  EXPECT_TRUE(map.Insert(500, 2).IsAlreadyExists());
  EXPECT_EQ(*map.Get(500), 1u);
  EXPECT_TRUE(map.Get(501).status().IsNotFound());
  EXPECT_TRUE(map.Erase(501).IsNotFound());
  ASSERT_TRUE(map.Upsert(500, 7).ok());
  EXPECT_EQ(*map.Get(500), 7u);
}

TEST(ShardedMapTest, CrossShardScanIsGloballyOrdered) {
  ShardedMap map(SmallShards(8, 8000));
  // Insert keys scattered over every shard, in shuffled order.
  std::vector<Key> keys;
  for (Key k = 7; k <= 8000; k += 13) keys.push_back(k);
  Random rng(99);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.UniformRange(1, i) - 1]);
  }
  for (Key k : keys) ASSERT_TRUE(map.Insert(k, k + 1).ok());

  Key prev = 0;
  size_t seen = 0;
  const size_t visited = map.Scan(1, kMaxUserKey, [&](Key k, Value v) {
    EXPECT_GT(k, prev);  // strictly ascending across shard boundaries
    EXPECT_EQ(v, k + 1);
    prev = k;
    ++seen;
    return true;
  });
  EXPECT_EQ(visited, keys.size());
  EXPECT_EQ(seen, keys.size());

  // Bounded scan clipped to an interior range spanning two shards.
  prev = 999;
  size_t bounded = 0;
  map.Scan(1000, 3000, [&](Key k, Value) {
    EXPECT_GE(k, 1000u);
    EXPECT_LE(k, 3000u);
    EXPECT_GT(k, prev);
    prev = k;
    ++bounded;
    return true;
  });
  size_t expect_bounded = 0;
  for (Key k : keys) {
    if (k >= 1000 && k <= 3000) ++expect_bounded;
  }
  EXPECT_EQ(bounded, expect_bounded);

  // Early stop terminates the shard walk.
  size_t stopped_after = 0;
  const size_t early = map.Scan(1, kMaxUserKey, [&](Key, Value) {
    return ++stopped_after < 10;
  });
  EXPECT_EQ(early, 10u);
}

TEST(ShardedMapTest, ScanLimitPaginatesAcrossShards) {
  ShardedMap map(SmallShards(4, 100));
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  Key from = 1;
  size_t total = 0;
  Key prev = 0;
  while (true) {
    auto page = map.ScanLimit(from, 7);  // 7 straddles shard boundaries
    if (page.empty()) break;
    for (const auto& kv : page) {
      EXPECT_GT(kv.first, prev);
      prev = kv.first;
    }
    total += page.size();
    from = page.back().first + 1;
  }
  EXPECT_EQ(total, 100u);
  EXPECT_TRUE(map.ScanLimit(1, 0).empty());
}

TEST(ShardedMapTest, AggregatesStatsAndShape) {
  ShardedMap map(SmallShards(4, 4000));
  for (Key k = 1; k <= 4000; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  for (Key k = 1; k <= 10; ++k) (void)map.Get(k * 300);

  const StatsSnapshot stats = map.Stats();
  EXPECT_EQ(stats.Get(StatId::kInserts), 4000u);
  EXPECT_EQ(stats.Get(StatId::kSearches), 10u);

  const TreeShape shape = map.Shape();
  EXPECT_EQ(shape.num_keys, 4000u);
  EXPECT_EQ(shape.height, map.Height());
  ASSERT_FALSE(shape.nodes_per_level.empty());
  // Leaves across shards must cover all keys at small k.
  EXPECT_GT(shape.nodes_per_level[0], 4u);
  EXPECT_GT(shape.avg_leaf_fill, 0.3);
  uint64_t per_shard_sum = 0;
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    per_shard_sum += map.shard(s)->Size();
  }
  EXPECT_EQ(per_shard_sum, 4000u);
}

TEST(ShardedMapTest, PerShardCompressionCollapsesHeights) {
  ShardedMap map(
      SmallShards(4, 8000, CompressionMode::kQueueWorkers, /*k=*/2));
  for (Key k = 1; k <= 8000; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  const uint32_t tall = map.Height();
  for (Key k = 1; k <= 8000; ++k) ASSERT_TRUE(map.Erase(k).ok());
  map.CompressNow();
  EXPECT_LE(map.Height(), 2u);
  EXPECT_LT(map.Height(), tall);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

TEST(ShardedMapTest, TreeCheckerInvariantsHoldPerShard) {
  ShardedMap map(SmallShards(4, 2000, CompressionMode::kNone, /*k=*/2));
  Random rng(42);
  for (int i = 0; i < 6000; ++i) {
    const Key k = rng.UniformRange(1, 2000);
    if (rng.NextDouble() < 0.7) {
      (void)map.Insert(k, k);
    } else {
      (void)map.Erase(k);
    }
  }
  // Aggregate validation plus an explicit per-shard TreeChecker pass.
  EXPECT_TRUE(map.ValidateStructure().ok());
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    TreeChecker checker(map.shard(s)->tree());
    EXPECT_TRUE(checker.CheckStructure().ok()) << "shard " << s;
  }
}

TEST(ShardedMapTest, ConcurrentMixedWorkloadAcrossShards) {
  ShardOptions opt =
      SmallShards(4, 4000, CompressionMode::kQueueWorkers, /*k=*/2);
  ShardedMap map(opt);
  std::atomic<uint64_t> checksum_failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&map, &checksum_failures, t]() {
      Random rng(7 + static_cast<uint64_t>(t));
      for (int i = 0; i < 12000; ++i) {
        const Key k = rng.UniformRange(1, 4000);
        const double p = rng.NextDouble();
        if (p < 0.4) {
          (void)map.Insert(k, k);
        } else if (p < 0.8) {
          (void)map.Erase(k);
        } else if (p < 0.95) {
          Result<Value> r = map.Get(k);
          if (r.ok() && *r != k) checksum_failures.fetch_add(1);
        } else {
          Key prev = 0;
          map.Scan(k, k + 500, [&](Key key, Value) {
            if (key <= prev) checksum_failures.fetch_add(1);
            prev = key;
            return true;
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(checksum_failures.load(), 0u);
  map.CompressNow();
  EXPECT_TRUE(map.ValidateStructure().ok())
      << map.ValidateStructure().ToString();
  uint64_t counted = 0;
  map.Scan(1, kMaxUserKey, [&](Key, Value) {
    ++counted;
    return true;
  });
  EXPECT_EQ(counted, map.Size());
}

TEST(ShardedMapTest, DriverTargetsShardedMap) {
  // The duck-typed workload driver accepts a ShardedMap directly (the
  // sharded-target mode): preload, run a mixed phase, read aggregated
  // counter deltas.
  ShardedMap map(SmallShards(4, 20'000, CompressionMode::kNone, /*k=*/8));
  WorkloadSpec spec = WorkloadSpec::Mixed5050();
  spec.key_space = 20'000;
  spec.preload = 5'000;
  PreloadTree(&map, spec, 2);
  EXPECT_GT(map.Size(), 0u);
  const DriverResult result =
      RunWorkload(&map, spec, /*threads=*/2, /*ops_per_thread=*/5'000);
  EXPECT_EQ(result.total_ops, 10'000u);
  const uint64_t logical_ops = result.stats.Get(StatId::kSearches) +
                               result.stats.Get(StatId::kInserts) +
                               result.stats.Get(StatId::kDeletes);
  EXPECT_EQ(logical_ops, 10'000u);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

TEST(ShardedMapTest, HotSpotDistributionTargetsOneShard) {
  // The kHotSpot generator with hot_key_fraction = 1/4 must aim ~90% of
  // keys at shard 0 of a 4-shard map.
  WorkloadSpec spec = WorkloadSpec::ShardHotSpot(4);
  spec.key_space = 40'000;
  ShardedMap map(SmallShards(4, 40'000));
  OpGenerator gen(spec, /*seed=*/3, /*thread_id=*/0, /*num_threads=*/1);
  uint64_t hot = 0;
  const int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    if (map.ShardIndex(gen.Next().key) == 0) ++hot;
  }
  const double hot_fraction = static_cast<double>(hot) / kDraws;
  // 90% aimed + ~2.5% of the uniform remainder; allow generous slack.
  EXPECT_GT(hot_fraction, 0.85);
  EXPECT_LT(hot_fraction, 0.98);
}

TEST(ShardedMapTest, HugeKeySpaceHintDoesNotOverflowRouting) {
  // key_space_hint near 2^64 must still split into 4 nonempty ranges
  // (a naive ceil division (hint + n - 1) / n wraps to width 1).
  ShardedMap map(SmallShards(4, kMaxUserKey));
  EXPECT_EQ(map.ShardIndex(1), 0u);
  EXPECT_EQ(map.ShardIndex(kMaxUserKey / 2), 1u);
  EXPECT_EQ(map.ShardIndex(kMaxUserKey), 3u);
  EXPECT_GT(map.ShardLowerBound(1), 1u);
  ASSERT_TRUE(map.Insert(kMaxUserKey, 9).ok());
  ASSERT_TRUE(map.Insert(1, 7).ok());
  EXPECT_EQ(*map.Get(kMaxUserKey), 9u);
  EXPECT_EQ(map.shard(0)->Size(), 1u);
  EXPECT_EQ(map.shard(3)->Size(), 1u);
}

TEST(ShardedMapTest, SharedPoolBoundsBackgroundThreads) {
  // The headline scaling property: background maintenance threads stay at
  // pool_threads no matter how many shards exist. 16 shards x 1 worker
  // would be 16 threads in the old topology; the shared pool runs 4.
  const int baseline = LiveThreadCount();
  {
    ShardOptions opt =
        SmallShards(16, 16'000, CompressionMode::kQueueWorkers);
    opt.pool_threads = 4;
    ShardedMap map(opt);
    ASSERT_TRUE(map.init_status().ok());
    ASSERT_NE(map.pool(), nullptr);
    EXPECT_EQ(map.pool()->thread_count(), 4);
    EXPECT_EQ(map.background_thread_count(), 4);
    EXPECT_EQ(map.pool()->num_sources(), 16u);
    for (uint32_t s = 0; s < map.num_shards(); ++s) {
      EXPECT_EQ(map.shard(s)->background_thread_count(), 0) << "shard " << s;
      EXPECT_EQ(map.shard(s)->attached_pool(), map.pool());
    }
    if (baseline > 0) {
      // 4 pool workers + 1 pool supervisor (BackgroundPool::Options::
      // supervise defaults on).
      EXPECT_EQ(LiveThreadCount(), baseline + 5);
    }

    // The pool actually maintains the shards: churn, then wait for queues
    // to drain and heights to collapse.
    for (Key k = 1; k <= 16'000; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
    for (Key k = 1; k <= 16'000; ++k) ASSERT_TRUE(map.Erase(k).ok());
    map.CompressNow();
    EXPECT_LE(map.Height(), 2u);
    EXPECT_TRUE(map.ValidateStructure().ok());

    // Quiesce before comparing drain counters: a pool worker finishing an
    // in-flight task between the two snapshots would skew an immediate
    // equality check. Once the counters are stable across a sleep, the
    // pool-wide total and the per-tree attribution must agree.
    testutil::WaitForStableCounter(
        [&]() { return map.PoolStats().tasks_drained; },
        [&]() {
          return map.Stats().Get(StatId::kPoolTasksDrained) ==
                 map.PoolStats().tasks_drained;
        });
    const PoolStatsSnapshot pool_stats = map.PoolStats();
    EXPECT_EQ(pool_stats.threads, 4);
    EXPECT_GT(pool_stats.rounds, 0u);
    EXPECT_EQ(pool_stats.shards.size(), 16u);
    // Per-shard drain counters surface through the aggregated Stats too.
    EXPECT_EQ(map.Stats().Get(StatId::kPoolTasksDrained),
              pool_stats.tasks_drained);
  }
  // Shards detached and the pool joined its workers on destruction.
  if (baseline > 0) {
    EXPECT_EQ(LiveThreadCount(), baseline);
  }
}

TEST(ShardedMapTest, PerShardWorkersFallbackSpawnsPerShardThreads) {
  ShardOptions opt = SmallShards(8, 8'000, CompressionMode::kQueueWorkers);
  opt.per_shard_workers = true;
  opt.compression_threads_per_shard = 1;
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  EXPECT_EQ(map.pool(), nullptr);
  EXPECT_EQ(map.background_thread_count(), 8);  // grows with num_shards
  EXPECT_EQ(map.PoolStats().threads, 0);
  for (Key k = 1; k <= 4'000; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  for (Key k = 1; k <= 4'000; ++k) ASSERT_TRUE(map.Erase(k).ok());
  map.CompressNow();
  EXPECT_TRUE(map.ValidateStructure().ok());
}

TEST(ShardedMapTest, PoolOptionsValidate) {
  ShardOptions opt;
  opt.pool_threads = -1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.pool_threads = 0;
  EXPECT_TRUE(opt.Validate().ok());
  // Compression off => no pool at all.
  ShardedMap none(SmallShards(4, 1000, CompressionMode::kNone));
  EXPECT_EQ(none.pool(), nullptr);
  EXPECT_EQ(none.background_thread_count(), 0);
}

TEST(ShardedMapTest, SingleShardDegeneratesToOneTree) {
  ShardedMap map(SmallShards(1, 1000));
  EXPECT_EQ(map.num_shards(), 1u);
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
  EXPECT_EQ(map.ShardIndex(1), 0u);
  EXPECT_EQ(map.ShardIndex(kMaxUserKey), 0u);
  EXPECT_EQ(map.shard(0)->Size(), 100u);
  EXPECT_TRUE(map.ValidateStructure().ok());
}

}  // namespace
}  // namespace obtree
