// Copyright 2026 The obtree Authors.
//
// Helpers shared across test suites (included by relative path; this
// header is test-only and must not leak into src/).

#ifndef OBTREE_TESTS_TEST_UTIL_H_
#define OBTREE_TESTS_TEST_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

namespace obtree {
namespace testutil {

/// Polls `read` (a callable returning uint64_t) once per millisecond
/// until two consecutive reads agree and `settled` (a callable returning
/// bool) holds, or ~2 s elapse. Used to quiesce background-pool counters
/// (in-flight tasks finish in bounded time once queues are empty) before
/// strict equality assertions.
template <typename Read, typename Settled>
inline void WaitForStableCounter(Read read, Settled settled) {
  uint64_t prev = read();
  for (int i = 0; i < 2000; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const uint64_t cur = read();
    if (cur == prev && settled()) return;
    prev = cur;
  }
}

/// OS threads of this process (-1 where /proc is unavailable). Used to
/// assert that thread counts return to baseline after pools/maps die —
/// a leaked or unjoined background worker fails the comparison.
inline int LiveThreadCount() {
#ifdef __linux__
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
#endif
  return -1;
}

}  // namespace testutil
}  // namespace obtree

#endif  // OBTREE_TESTS_TEST_UTIL_H_
