// Copyright 2026 The obtree Authors.

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "obtree/core/sagiv_tree.h"
#include "obtree/workload/driver.h"
#include "obtree/workload/generator.h"
#include "obtree/workload/report.h"

namespace obtree {
namespace {

TEST(WorkloadSpecTest, CannedMixesSumToOne) {
  for (const WorkloadSpec& spec :
       {WorkloadSpec::ReadMostly(), WorkloadSpec::Mixed5050(),
        WorkloadSpec::InsertOnly(), WorkloadSpec::DeleteHeavy(),
        WorkloadSpec::ScanHeavy()}) {
    EXPECT_NEAR(spec.search_pct + spec.insert_pct + spec.delete_pct +
                    spec.scan_pct,
                1.0, 1e-9)
        << spec.name;
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.Describe().empty());
  }
}

TEST(OpGeneratorTest, MixFrequenciesMatchSpec) {
  WorkloadSpec spec = WorkloadSpec::Mixed5050();
  spec.key_space = 1000;
  OpGenerator gen(spec, /*seed=*/7, /*thread_id=*/0, /*num_threads=*/1);
  int searches = 0;
  int inserts = 0;
  int deletes = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto op = gen.Next();
    EXPECT_GE(op.key, 1u);
    EXPECT_LE(op.key, 1000u);
    switch (op.type) {
      case OpType::kSearch: ++searches; break;
      case OpType::kInsert: ++inserts; break;
      case OpType::kDelete: ++deletes; break;
      case OpType::kScan: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(searches) / kDraws, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(inserts) / kDraws, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(deletes) / kDraws, 0.25, 0.02);
}

TEST(OpGeneratorTest, SequentialStreamsStrideAcrossThreads) {
  WorkloadSpec spec = WorkloadSpec::InsertOnly();
  spec.distribution = KeyDistribution::kSequential;
  spec.key_space = 1 << 20;
  std::set<Key> seen;
  for (int t = 0; t < 4; ++t) {
    OpGenerator gen(spec, 1, t, 4);
    for (int i = 0; i < 1000; ++i) {
      const auto op = gen.Next();
      EXPECT_TRUE(seen.insert(op.key).second)
          << "duplicate sequential key " << op.key;
    }
  }
}

TEST(OpGeneratorTest, ZipfianSkewsTowardsFewKeys) {
  WorkloadSpec spec = WorkloadSpec::ReadMostly();
  spec.distribution = KeyDistribution::kZipfian;
  spec.key_space = 100000;
  OpGenerator gen(spec, 3, 0, 1);
  std::map<Key, int> freq;
  for (int i = 0; i < 50000; ++i) freq[gen.Next().key]++;
  // Far fewer distinct keys than draws.
  EXPECT_LT(freq.size(), 30000u);
  int max_freq = 0;
  for (const auto& [k, f] : freq) max_freq = std::max(max_freq, f);
  EXPECT_GT(max_freq, 100);  // a genuinely hot key exists
}

TEST(OpGeneratorTest, PreloadKeysInRange) {
  for (uint64_t i = 0; i < 1000; ++i) {
    const Key k = OpGenerator::PreloadKey(i, 500);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 500u);
  }
}

TEST(DriverTest, PreloadPopulatesTree) {
  SagivTree tree;
  WorkloadSpec spec = WorkloadSpec::ReadMostly();
  spec.key_space = 10000;
  spec.preload = 5000;
  PreloadTree(&tree, spec, 4);
  // Scrambled enumeration can collide; expect a large fraction inserted.
  EXPECT_GT(tree.Size(), 3500u);
  EXPECT_LE(tree.Size(), 5000u);
}

TEST(DriverTest, RunWorkloadCountsOps) {
  SagivTree tree;
  WorkloadSpec spec = WorkloadSpec::Mixed5050();
  spec.key_space = 2000;
  spec.preload = 1000;
  PreloadTree(&tree, spec, 2);
  const DriverResult result =
      RunWorkload(&tree, spec, /*threads=*/4, /*ops_per_thread=*/5000);
  EXPECT_EQ(result.total_ops, 20000u);
  EXPECT_GT(result.succeeded, 0u);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.MopsPerSec(), 0.0);
  EXPECT_EQ(result.stats.Get(StatId::kInserts) +
                result.stats.Get(StatId::kDeletes) +
                result.stats.Get(StatId::kSearches),
            20000u);
  EXPECT_FALSE(result.Summary().empty());
}

TEST(DriverTest, LatencyHistogramCollected) {
  SagivTree tree;
  WorkloadSpec spec = WorkloadSpec::ReadMostly();
  spec.key_space = 1000;
  spec.preload = 500;
  PreloadTree(&tree, spec, 2);
  const DriverResult result = RunWorkload(&tree, spec, 2, 2000, 1,
                                          /*collect_latency=*/true);
  EXPECT_EQ(result.latency_ns.count(), 4000u);
  EXPECT_GT(result.latency_ns.Percentile(99), 0u);
}

TEST(ReportTest, TableAlignsColumns) {
  Table table({"threads", "Mops"});
  table.AddRow({"1", "4.20"});
  table.AddRow({"16", "30.11"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("threads |  Mops"), std::string::npos);
  EXPECT_NE(out.find("------- | -----"), std::string::npos);
  EXPECT_NE(out.find("     16 | 30.11"), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(uint64_t{42}), "42");
  EXPECT_EQ(FmtRatio(3.0, 2.0, 1), "1.5x");
  EXPECT_EQ(FmtRatio(1.0, 0.0), "inf");
}

}  // namespace
}  // namespace obtree
