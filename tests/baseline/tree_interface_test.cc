// Copyright 2026 The obtree Authors.
//
// One generic behavioral test suite applied to every tree implementation
// (SagivTree and the three baselines): whatever the locking protocol, the
// logical Insert/Search/Delete/Scan semantics must be identical.

#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/baseline/coarse_tree.h"
#include "obtree/baseline/lehman_yao_tree.h"
#include "obtree/baseline/lock_coupling_tree.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

template <typename Tree>
class TreeInterfaceTest : public ::testing::Test {
 protected:
  static TreeOptions SmallNodes(uint32_t k = 3) {
    TreeOptions opt;
    opt.min_entries = k;
    return opt;
  }
};

using TreeTypes =
    ::testing::Types<SagivTree, LehmanYaoTree, LockCouplingTree, CoarseTree>;
TYPED_TEST_SUITE(TreeInterfaceTest, TreeTypes);

TYPED_TEST(TreeInterfaceTest, EmptyTreeBehaviour) {
  TypeParam tree;
  ASSERT_TRUE(tree.init_status().ok());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 1u);
  EXPECT_TRUE(tree.Search(7).status().IsNotFound());
  EXPECT_TRUE(tree.Delete(7).IsNotFound());
  EXPECT_EQ(tree.Scan(1, 100, [](Key, Value) { return true; }), 0u);
}

TYPED_TEST(TreeInterfaceTest, RejectsReservedKeys) {
  TypeParam tree;
  EXPECT_TRUE(tree.Insert(0, 1).IsInvalidArgument());
  EXPECT_TRUE(tree.Insert(kPlusInfinity, 1).IsInvalidArgument());
  EXPECT_TRUE(tree.Search(0).status().IsInvalidArgument());
  EXPECT_TRUE(tree.Delete(kPlusInfinity).IsInvalidArgument());
}

TYPED_TEST(TreeInterfaceTest, InsertSearchDeleteRoundTrip) {
  TypeParam tree(TestFixture::SmallNodes());
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_TRUE(tree.Insert(k, k * 11).ok()) << k;
  }
  EXPECT_EQ(tree.Size(), 500u);
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_TRUE(tree.Search(k).ok()) << k;
    EXPECT_EQ(*tree.Search(k), k * 11);
  }
  for (Key k = 1; k <= 500; k += 3) ASSERT_TRUE(tree.Delete(k).ok()) << k;
  for (Key k = 1; k <= 500; ++k) {
    EXPECT_EQ(tree.Search(k).ok(), k % 3 != 1) << k;
  }
}

TYPED_TEST(TreeInterfaceTest, DuplicatesRejected) {
  TypeParam tree;
  ASSERT_TRUE(tree.Insert(5, 1).ok());
  EXPECT_TRUE(tree.Insert(5, 2).IsAlreadyExists());
  EXPECT_EQ(*tree.Search(5), 1u);
}

TYPED_TEST(TreeInterfaceTest, DescendingInsertOrder) {
  TypeParam tree(TestFixture::SmallNodes(2));
  for (Key k = 800; k >= 1; --k) ASSERT_TRUE(tree.Insert(k, k).ok()) << k;
  for (Key k = 1; k <= 800; ++k) ASSERT_TRUE(tree.Search(k).ok()) << k;
  EXPECT_GT(tree.Height(), 2u);
}

TYPED_TEST(TreeInterfaceTest, RandomWorkloadMatchesReference) {
  TypeParam tree(TestFixture::SmallNodes(2));
  std::map<Key, Value> reference;
  Random rng(2026);
  for (int i = 0; i < 15000; ++i) {
    const Key k = rng.UniformRange(1, 600);
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      const Value v = rng.Next();
      EXPECT_EQ(tree.Insert(k, v).ok(), reference.emplace(k, v).second);
    } else if (op == 1) {
      EXPECT_EQ(tree.Delete(k).ok(), reference.erase(k) > 0);
    } else {
      auto it = reference.find(k);
      Result<Value> r = tree.Search(k);
      EXPECT_EQ(r.ok(), it != reference.end());
      if (r.ok()) {
        EXPECT_EQ(*r, it->second);
      }
    }
  }
  EXPECT_EQ(tree.Size(), reference.size());
}

TYPED_TEST(TreeInterfaceTest, ScanReturnsSortedRange) {
  TypeParam tree(TestFixture::SmallNodes());
  std::set<Key> keys;
  Random rng(17);
  for (int i = 0; i < 1000; ++i) {
    const Key k = rng.UniformRange(1, 5000);
    if (tree.Insert(k, k + 3).ok()) keys.insert(k);
  }
  std::vector<Key> seen;
  tree.Scan(1000, 4000, [&](Key k, Value v) {
    EXPECT_EQ(v, k + 3);
    seen.push_back(k);
    return true;
  });
  std::vector<Key> expected;
  for (Key k : keys) {
    if (k >= 1000 && k <= 4000) expected.push_back(k);
  }
  EXPECT_EQ(seen, expected);
}

TYPED_TEST(TreeInterfaceTest, ConcurrentDisjointInserts) {
  TypeParam tree(TestFixture::SmallNodes(4));
  const int threads = 4;
  constexpr Key kPerThread = 3000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&tree, t]() {
      const Key base = static_cast<Key>(t) * kPerThread + 1;
      for (Key k = base; k < base + kPerThread; ++k) {
        ASSERT_TRUE(tree.Insert(k, k).ok()) << k;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tree.Size(), static_cast<uint64_t>(threads) * kPerThread);
  for (Key k = 1; k <= threads * kPerThread; ++k) {
    ASSERT_TRUE(tree.Search(k).ok()) << k;
  }
}

TYPED_TEST(TreeInterfaceTest, ConcurrentMixedOps) {
  TypeParam tree(TestFixture::SmallNodes(3));
  const int threads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&tree, t]() {
      Random rng(300 + static_cast<uint64_t>(t));
      for (int i = 0; i < 10000; ++i) {
        const Key k = rng.UniformRange(1, 2000);
        const double p = rng.NextDouble();
        if (p < 0.4) {
          (void)tree.Insert(k, k);
        } else if (p < 0.7) {
          (void)tree.Delete(k);
        } else {
          Result<Value> r = tree.Search(k);
          if (r.ok()) {
            ASSERT_EQ(*r, k);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  uint64_t counted = 0;
  tree.Scan(1, kMaxUserKey, [&](Key, Value) {
    ++counted;
    return true;
  });
  EXPECT_EQ(counted, tree.Size());
}

// --- protocol-specific lock-profile assertions (the E1 experiment in test
// form) --------------------------------------------------------------------

TEST(LockProfileTest, SagivInsertionsHoldOneLock) {
  TreeOptions opt;
  opt.min_entries = 2;
  SagivTree tree(opt);
  for (Key k = 1; k <= 3000; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  EXPECT_EQ(tree.stats()->max_locks_held(), 1u);
}

TEST(LockProfileTest, LehmanYaoInsertionsHoldUpToThreeLocks) {
  TreeOptions opt;
  opt.min_entries = 2;
  LehmanYaoTree tree(opt);
  for (Key k = 1; k <= 3000; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  // The hand-off holds 2; a coupled moveright at the parent makes 3.
  EXPECT_GE(tree.stats()->max_locks_held(), 2u);
  EXPECT_LE(tree.stats()->max_locks_held(), 3u);
}

TEST(LockProfileTest, SagivReadersAcquireNoLocks) {
  SagivTree tree;
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  const uint64_t locks_before = tree.stats()->Get(StatId::kLocksAcquired);
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(tree.Search(k).ok());
  (void)tree.Scan(1, 100, [](Key, Value) { return true; });
  EXPECT_EQ(tree.stats()->Get(StatId::kLocksAcquired), locks_before);
}

TEST(LockProfileTest, LockCouplingReadersLatchEveryNode) {
  TreeOptions opt;
  opt.min_entries = 2;
  LockCouplingTree tree(opt);
  for (Key k = 1; k <= 1000; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  const uint64_t latches_before = tree.stats()->Get(StatId::kLocksAcquired);
  ASSERT_TRUE(tree.Search(500).ok());
  const uint64_t per_search =
      tree.stats()->Get(StatId::kLocksAcquired) - latches_before;
  // One latch per level of the descent.
  EXPECT_GE(per_search, tree.Height());
}

}  // namespace
}  // namespace obtree
