// Copyright 2026 The obtree Authors.
//
// Property-style parameterized sweeps (TEST_P): the structural invariants
// of Theorem 1/2 must hold for every node size k, every insertion pattern,
// every compression deployment, and every random seed — not just the
// hand-picked cases in the unit tests.

#include <algorithm>
#include <filesystem>
#include <map>
#include <numeric>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/api/concurrent_map.h"
#include "obtree/core/compression_queue.h"
#include "obtree/core/queue_compressor.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

enum class Pattern { kAscending, kDescending, kRandom, kZigzag, kClustered };

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kAscending: return "asc";
    case Pattern::kDescending: return "desc";
    case Pattern::kRandom: return "random";
    case Pattern::kZigzag: return "zigzag";
    case Pattern::kClustered: return "clustered";
  }
  return "?";
}

std::vector<Key> MakeKeys(Pattern pattern, uint64_t n) {
  std::vector<Key> keys(n);
  std::iota(keys.begin(), keys.end(), Key{1});
  switch (pattern) {
    case Pattern::kAscending:
      break;
    case Pattern::kDescending:
      std::reverse(keys.begin(), keys.end());
      break;
    case Pattern::kRandom: {
      Random rng(n * 31 + 7);
      rng.Shuffle(&keys);
      break;
    }
    case Pattern::kZigzag: {
      // Alternate low end / high end: stresses both leftmost and rightmost
      // split paths.
      std::vector<Key> zig;
      zig.reserve(n);
      uint64_t lo = 0;
      uint64_t hi = n - 1;
      while (lo <= hi && hi != UINT64_MAX) {
        zig.push_back(keys[lo++]);
        if (lo <= hi) zig.push_back(keys[hi--]);
      }
      keys = std::move(zig);
      break;
    }
    case Pattern::kClustered: {
      // Dense runs at scattered bases: repeated locality shifts.
      std::vector<Key> out;
      out.reserve(n);
      std::vector<bool> present(n + 1, false);
      const uint64_t run = 16;
      for (uint64_t base = 0; base < n; base += run) {
        const uint64_t scrambled =
            ScrambleKey(base / run) % ((n + run - 1) / run);
        for (uint64_t i = 0; i < run; ++i) {
          const uint64_t v = scrambled * run + i;
          if (v < n && !present[keys[v]]) {
            present[keys[v]] = true;
            out.push_back(keys[v]);
          }
        }
      }
      // Scramble collisions skip some runs; append whatever is missing.
      for (Key k = 1; k <= n; ++k) {
        if (!present[k]) out.push_back(k);
      }
      keys = std::move(out);
      break;
    }
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Sweep 1: (k, pattern) — build, verify, delete half, compress, verify.
// ---------------------------------------------------------------------------

using BuildParams = std::tuple<uint32_t /*k*/, Pattern>;

class BuildSweep : public ::testing::TestWithParam<BuildParams> {};

TEST_P(BuildSweep, BuildDeleteCompressInvariants) {
  const auto [k, pattern] = GetParam();
  TreeOptions options;
  options.min_entries = k;
  SagivTree tree(options);
  ASSERT_TRUE(tree.init_status().ok());

  const uint64_t n = 1500;
  const std::vector<Key> keys = MakeKeys(pattern, n);
  ASSERT_EQ(keys.size(), n);
  for (Key key : keys) {
    ASSERT_TRUE(tree.Insert(key, key * 2).ok()) << key;
  }
  ASSERT_EQ(tree.Size(), n);
  Status s = TreeChecker(&tree).CheckStructure();
  ASSERT_TRUE(s.ok()) << PatternName(pattern) << " k=" << k << ": "
                      << s.ToString();
  EXPECT_EQ(tree.stats()->max_locks_held(), 1u);

  // Keys all retrievable, in order, with correct values.
  Key prev = 0;
  uint64_t seen = 0;
  tree.Scan(1, kMaxUserKey, [&](Key key, Value v) {
    EXPECT_GT(key, prev);
    EXPECT_EQ(v, key * 2);
    prev = key;
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, n);

  // Delete every other key (w.r.t. insertion order), compress, re-verify.
  for (uint64_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(keys[i]).ok()) << keys[i];
  }
  ScanCompressor compressor(&tree);
  for (int pass = 0; pass < 100; ++pass) {
    if (compressor.FullPass() == 0) break;
  }
  s = TreeChecker(&tree).CheckStructure(/*require_half_full=*/true);
  ASSERT_TRUE(s.ok()) << PatternName(pattern) << " k=" << k << ": "
                      << s.ToString();
  for (uint64_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(tree.Search(keys[i]).ok(), i % 2 == 1) << keys[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    NodeSizesAndPatterns, BuildSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 8u, 32u, 126u),
                       ::testing::Values(Pattern::kAscending,
                                         Pattern::kDescending,
                                         Pattern::kRandom, Pattern::kZigzag,
                                         Pattern::kClustered)),
    [](const ::testing::TestParamInfo<BuildParams>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             PatternName(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 2: random-seed fuzz against a reference model, with queue
// compression draining mid-stream.
// ---------------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, FuzzAgainstReferenceWithCompression) {
  const uint64_t seed = GetParam();
  TreeOptions options;
  options.min_entries = 2 + seed % 5;
  options.enqueue_underfull_on_delete = true;
  SagivTree tree(options);
  CompressionQueue queue;
  queue.RegisterWith(tree.epoch());
  tree.AttachCompressionQueue(&queue);
  QueueCompressor compressor(&tree, &queue);

  std::map<Key, Value> reference;
  Random rng(seed);
  const Key key_space = 300 + (seed % 7) * 250;
  for (int i = 0; i < 12000; ++i) {
    const Key k = rng.UniformRange(1, key_space);
    const double p = rng.NextDouble();
    if (p < 0.40) {
      const Value v = rng.Next();
      ASSERT_EQ(tree.Insert(k, v).ok(), reference.emplace(k, v).second);
    } else if (p < 0.75) {
      ASSERT_EQ(tree.Delete(k).ok(), reference.erase(k) > 0);
    } else if (p < 0.95) {
      auto it = reference.find(k);
      Result<Value> r = tree.Search(k);
      ASSERT_EQ(r.ok(), it != reference.end()) << k;
      if (r.ok()) {
        ASSERT_EQ(*r, it->second);
      }
    } else {
      compressor.Drain();
    }
  }
  compressor.Drain();
  ASSERT_EQ(tree.Size(), reference.size());
  Status s = TreeChecker(&tree).CheckStructure();
  ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();

  // Full content equivalence via an ordered walk.
  auto it = reference.begin();
  tree.Scan(1, kMaxUserKey, [&](Key k, Value v) {
    EXPECT_NE(it, reference.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, reference.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// ---------------------------------------------------------------------------
// Sweep 3: thread counts — concurrent disjoint inserts + shared deletes
// keep Size() exact for any parallelism.
// ---------------------------------------------------------------------------

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, ExactSizeUnderConcurrency) {
  const int threads = GetParam();
  TreeOptions options;
  options.min_entries = 3;
  SagivTree tree(options);

  constexpr Key kPerThread = 2500;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&tree, t]() {
      const Key base = static_cast<Key>(t) * kPerThread + 1;
      // Insert own range, then delete the odd half of it.
      for (Key k = base; k < base + kPerThread; ++k) {
        ASSERT_TRUE(tree.Insert(k, k).ok());
      }
      for (Key k = base; k < base + kPerThread; k += 2) {
        ASSERT_TRUE(tree.Delete(k).ok());
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(tree.Size(),
            static_cast<uint64_t>(threads) * kPerThread / 2);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(tree.stats()->max_locks_held(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Parallelism, ThreadSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

// ---------------------------------------------------------------------------
// Sweep 4: scan windows — every (lo, hi) window returns exactly the keys
// a reference set says it should, for several strides.
// ---------------------------------------------------------------------------

class ScanSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScanSweep, WindowsMatchReference) {
  const int stride = GetParam();
  TreeOptions options;
  options.min_entries = 2;
  SagivTree tree(options);
  std::vector<Key> keys;
  for (Key k = static_cast<Key>(stride); k <= 3000;
       k += static_cast<Key>(stride)) {
    keys.push_back(k);
    ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  }
  Random rng(static_cast<uint64_t>(stride));
  for (int trial = 0; trial < 50; ++trial) {
    Key lo = rng.UniformRange(1, 3200);
    Key hi = rng.UniformRange(1, 3200);
    if (lo > hi) std::swap(lo, hi);
    std::vector<Key> expected;
    for (Key k : keys) {
      if (k >= lo && k <= hi) expected.push_back(k);
    }
    std::vector<Key> got;
    tree.Scan(lo, hi, [&](Key k, Value v) {
      EXPECT_EQ(v, k + 1);
      got.push_back(k);
      return true;
    });
    ASSERT_EQ(got, expected) << "window [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, ScanSweep,
                         ::testing::Values(1, 2, 3, 7, 13, 97));

// ---------------------------------------------------------------------------
// Sweep 5: persistence round trip — any op sequence (upserts, erases,
// interior checkpoints), checkpointed and recovered from disk, must match
// the reference model exactly. A violating sequence is delta-debugged
// down to a minimal reproducer before the test reports it.
// ---------------------------------------------------------------------------

struct PersistOp {
  enum Kind { kUpsert, kErase, kCheckpoint };
  Kind kind;
  Key key;
  Value value;
};

std::vector<PersistOp> GenPersistOps(uint64_t seed, size_t n, Key key_space) {
  Random rng(seed);
  std::vector<PersistOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PersistOp op;
    const double p = rng.NextDouble();
    if (p < 0.02) {
      op.kind = PersistOp::kCheckpoint;
      op.key = 0;
      op.value = 0;
    } else if (p < 0.62) {
      op.kind = PersistOp::kUpsert;
      op.key = rng.UniformRange(1, key_space);
      op.value = rng.Next();
    } else {
      op.kind = PersistOp::kErase;
      op.key = rng.UniformRange(1, key_space);
      op.value = 0;
    }
    ops.push_back(op);
  }
  return ops;
}

MapOptions PersistSweepOptions(const std::string& dir) {
  MapOptions options;
  options.compression = CompressionMode::kNone;
  options.tree.storage_dir = dir;
  options.tree.min_entries = 4;
  return options;
}

// Run `ops` against a fresh persistent map AND a std::map model, final
// checkpoint, reopen from disk, compare. Returns "" when the property
// holds, else a description of the first divergence.
std::string RoundTripViolation(const std::vector<PersistOp>& ops,
                               const std::string& dir) {
  std::filesystem::remove_all(dir);
  const MapOptions options = PersistSweepOptions(dir);
  std::map<Key, Value> model;
  {
    ConcurrentMap map(options);
    if (!map.init_status().ok()) {
      return "open: " + map.init_status().ToString();
    }
    for (const PersistOp& op : ops) {
      switch (op.kind) {
        case PersistOp::kUpsert:
          (void)map.Upsert(op.key, op.value);
          model[op.key] = op.value;
          break;
        case PersistOp::kErase:
          (void)map.Erase(op.key);
          model.erase(op.key);
          break;
        case PersistOp::kCheckpoint: {
          Status s = map.Checkpoint();
          if (!s.ok()) return "interior checkpoint: " + s.ToString();
          break;
        }
      }
    }
    Status s = map.Checkpoint();
    if (!s.ok()) return "final checkpoint: " + s.ToString();
  }

  Result<std::unique_ptr<ConcurrentMap>> r = ConcurrentMap::Recover(options);
  if (!r.ok()) return "recover: " + r.status().ToString();
  ConcurrentMap& map = **r;
  Status valid = map.ValidateStructure();
  if (!valid.ok()) return "structure: " + valid.ToString();
  if (map.Size() != model.size()) {
    return "size " + std::to_string(map.Size()) + " != model " +
           std::to_string(model.size());
  }
  std::string mismatch;
  auto it = model.begin();
  map.Scan(1, kMaxUserKey, [&](Key k, Value v) {
    if (it == model.end()) {
      mismatch = "extra key " + std::to_string(k);
      return false;
    }
    if (k != it->first || v != it->second) {
      mismatch = "got (" + std::to_string(k) + "," + std::to_string(v) +
                 ") want (" + std::to_string(it->first) + "," +
                 std::to_string(it->second) + ")";
      return false;
    }
    ++it;
    return true;
  });
  if (mismatch.empty() && it != model.end()) {
    mismatch = "missing key " + std::to_string(it->first);
  }
  return mismatch;
}

// Greedy ddmin: repeatedly drop chunks (halving the chunk size) while the
// violation persists. Bounded by `budget` predicate evaluations so a
// pathological failure cannot hang the suite.
std::vector<PersistOp> ShrinkOps(std::vector<PersistOp> ops,
                                 const std::string& dir, int budget) {
  size_t chunk = ops.size() / 2;
  while (chunk > 0 && budget > 0) {
    bool removed_any = false;
    for (size_t start = 0; start + chunk <= ops.size() && budget > 0;) {
      std::vector<PersistOp> cand;
      cand.reserve(ops.size() - chunk);
      cand.insert(cand.end(), ops.begin(),
                  ops.begin() + static_cast<long>(start));
      cand.insert(cand.end(), ops.begin() + static_cast<long>(start + chunk),
                  ops.end());
      --budget;
      if (!RoundTripViolation(cand, dir).empty()) {
        ops = std::move(cand);
        removed_any = true;
      } else {
        start += chunk;
      }
    }
    if (!removed_any) chunk /= 2;
  }
  return ops;
}

std::string DumpOps(const std::vector<PersistOp>& ops) {
  std::string out;
  for (const PersistOp& op : ops) {
    switch (op.kind) {
      case PersistOp::kUpsert:
        out += "  Upsert(" + std::to_string(op.key) + ", " +
               std::to_string(op.value) + ")\n";
        break;
      case PersistOp::kErase:
        out += "  Erase(" + std::to_string(op.key) + ")\n";
        break;
      case PersistOp::kCheckpoint:
        out += "  Checkpoint()\n";
        break;
    }
  }
  return out;
}

class PersistenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PersistenceSweep, CheckpointRecoverRoundTripMatchesModel) {
  const uint64_t seed = GetParam();
  const std::string dir =
      ::testing::TempDir() + "obtree_prop_persist_" + std::to_string(seed);
  const std::vector<PersistOp> ops =
      GenPersistOps(seed, 1500, 300 + (seed % 5) * 200);
  const std::string violation = RoundTripViolation(ops, dir);
  if (!violation.empty()) {
    const std::vector<PersistOp> minimal =
        ShrinkOps(ops, dir, /*budget=*/200);
    FAIL() << "seed " << seed << ": " << violation
           << "\nminimal reproducer (" << minimal.size() << " of "
           << ops.size() << " ops):\n" << DumpOps(minimal);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{7}));

}  // namespace
}  // namespace obtree
