// Copyright 2026 The obtree Authors.
//
// Unit tests of the on-page node layout and the restructuring primitives:
// leaf insert/remove, child-split posting (including the overtaking case),
// splits, merges, and redistributions.

#include "obtree/node/node.h"

#include <gtest/gtest.h>

namespace obtree {
namespace {

Node MakeLeaf(Key low, Key high, PageId link) {
  Node n;
  n.Init(0, low, high, link);
  return n;
}

Node MakeInternal(Key low, std::initializer_list<Entry> entries,
                  PageId link = kInvalidPageId) {
  Node n;
  n.Init(1, low, 0, link);
  for (const Entry& e : entries) {
    n.entries[n.count++] = e;
  }
  n.high = n.entries[n.count - 1].key;  // internal invariant
  return n;
}

TEST(NodeLayoutTest, SizesAndCapacity) {
  EXPECT_LE(sizeof(Node), kPageSize);
  EXPECT_EQ(Node::kMaxEntries, 254u);
  EXPECT_EQ(offsetof(Node, entries), Node::kHeaderSize);
}

TEST(NodeLayoutTest, FlagsRoundTrip) {
  Node n = MakeLeaf(0, kPlusInfinity, kInvalidPageId);
  EXPECT_TRUE(n.is_leaf());
  EXPECT_FALSE(n.is_root());
  EXPECT_FALSE(n.is_deleted());
  n.set_root(true);
  EXPECT_TRUE(n.is_root());
  n.set_root(false);
  EXPECT_FALSE(n.is_root());
  n.set_deleted(42);
  EXPECT_TRUE(n.is_deleted());
  EXPECT_EQ(n.merge_target, 42u);
}

TEST(NodeSearchTest, LowerBound) {
  Node n = MakeLeaf(0, kPlusInfinity, kInvalidPageId);
  for (Key k : {10, 20, 30, 40}) n.InsertLeafEntry(k, k);
  EXPECT_EQ(n.LowerBound(5), 0u);
  EXPECT_EQ(n.LowerBound(10), 0u);
  EXPECT_EQ(n.LowerBound(11), 1u);
  EXPECT_EQ(n.LowerBound(40), 3u);
  EXPECT_EQ(n.LowerBound(41), 4u);
}

TEST(NodeSearchTest, FindLeafValue) {
  Node n = MakeLeaf(0, kPlusInfinity, kInvalidPageId);
  n.InsertLeafEntry(10, 100);
  n.InsertLeafEntry(20, 200);
  EXPECT_EQ(n.FindLeafValue(10), 100u);
  EXPECT_EQ(n.FindLeafValue(20), 200u);
  EXPECT_FALSE(n.FindLeafValue(15).has_value());
  EXPECT_FALSE(n.FindLeafValue(30).has_value());
}

TEST(NodeSearchTest, ChildForPicksCoveringRange) {
  // Children: c1 covers (0,10], c2 covers (10,20], c3 covers (20,+inf].
  Node n = MakeInternal(0, {{10, 1}, {20, 2}, {kPlusInfinity, 3}});
  EXPECT_EQ(n.ChildFor(1), 1u);
  EXPECT_EQ(n.ChildFor(10), 1u);
  EXPECT_EQ(n.ChildFor(11), 2u);
  EXPECT_EQ(n.ChildFor(20), 2u);
  EXPECT_EQ(n.ChildFor(21), 3u);
  EXPECT_EQ(n.ChildFor(kMaxUserKey), 3u);
}

TEST(NodeSearchTest, NextFollowsLinkAboveHigh) {
  Node n = MakeInternal(0, {{10, 1}, {20, 2}}, /*link=*/99);
  Node::NextStep s = n.Next(25);
  EXPECT_TRUE(s.is_link);
  EXPECT_EQ(s.page, 99u);
  s = n.Next(15);
  EXPECT_FALSE(s.is_link);
  EXPECT_EQ(s.page, 2u);
}

TEST(NodeLeafTest, InsertKeepsOrder) {
  Node n = MakeLeaf(0, kPlusInfinity, kInvalidPageId);
  for (Key k : {30, 10, 20, 40, 5}) n.InsertLeafEntry(k, k * 2);
  ASSERT_EQ(n.count, 5u);
  Key prev = 0;
  for (uint32_t i = 0; i < n.count; ++i) {
    EXPECT_GT(n.entries[i].key, prev);
    EXPECT_EQ(n.entries[i].value, n.entries[i].key * 2);
    prev = n.entries[i].key;
  }
}

TEST(NodeLeafTest, RemovePresentAndAbsent) {
  Node n = MakeLeaf(0, kPlusInfinity, kInvalidPageId);
  for (Key k : {10, 20, 30}) n.InsertLeafEntry(k, k);
  EXPECT_TRUE(n.RemoveLeafEntry(20));
  EXPECT_EQ(n.count, 2u);
  EXPECT_FALSE(n.RemoveLeafEntry(20));
  EXPECT_FALSE(n.RemoveLeafEntry(99));
  EXPECT_EQ(n.entries[0].key, 10u);
  EXPECT_EQ(n.entries[1].key, 30u);
}

TEST(NodeInternalTest, InsertChildSplitNormalCase) {
  // Child 1 (covering (0,10]) split at 5; keys > 5 went to page 7.
  Node n = MakeInternal(0, {{10, 1}, {20, 2}});
  ASSERT_TRUE(n.InsertChildSplit(5, 7));
  ASSERT_EQ(n.count, 3u);
  EXPECT_EQ(n.entries[0].key, 5u);
  EXPECT_EQ(n.entries[0].value, 1u);  // left part keeps the old child
  EXPECT_EQ(n.entries[1].key, 10u);
  EXPECT_EQ(n.entries[1].value, 7u);  // right part is the new node
  EXPECT_EQ(n.entries[2].key, 20u);
}

TEST(NodeInternalTest, InsertChildSplitWithOvertaking) {
  // Section 3.1: two splits below the same parent may post in any order.
  // Child A (page 1) covering (0,20] split at 10 -> B (page 7); B then
  // split at 15 -> C (page 8). B's post arrives FIRST.
  Node n = MakeInternal(0, {{20, 1}, {30, 2}});
  ASSERT_TRUE(n.InsertChildSplit(15, 8));  // B's split, overtaking
  // Now (15 -> 1), (20 -> 8): the 15-entry temporarily points left of the
  // true owner; links recover searches (Theorem 1's validity assertion).
  EXPECT_EQ(n.entries[0].key, 15u);
  EXPECT_EQ(n.entries[0].value, 1u);
  EXPECT_EQ(n.entries[1].value, 8u);
  ASSERT_TRUE(n.InsertChildSplit(10, 7));  // A's split arrives second
  ASSERT_EQ(n.count, 4u);
  // Final layout is exactly right: (10->1),(15->7),(20->8),(30->2).
  EXPECT_EQ(n.entries[0].key, 10u);
  EXPECT_EQ(n.entries[0].value, 1u);
  EXPECT_EQ(n.entries[1].key, 15u);
  EXPECT_EQ(n.entries[1].value, 7u);
  EXPECT_EQ(n.entries[2].key, 20u);
  EXPECT_EQ(n.entries[2].value, 8u);
  EXPECT_EQ(n.entries[3].key, 30u);
  EXPECT_EQ(n.entries[3].value, 2u);
}

TEST(NodeInternalTest, InsertChildSplitRejectsDuplicateSeparator) {
  Node n = MakeInternal(0, {{10, 1}, {20, 2}});
  EXPECT_FALSE(n.InsertChildSplit(10, 7));
  EXPECT_EQ(n.count, 2u);
}

TEST(NodeInternalTest, FindChildIndex) {
  Node n = MakeInternal(0, {{10, 1}, {20, 2}, {30, 3}});
  EXPECT_EQ(n.FindChildIndex(2), 1);
  EXPECT_EQ(n.FindChildIndex(3), 2);
  EXPECT_EQ(n.FindChildIndex(9), -1);
}

TEST(NodeInternalTest, ApplyChildMerge) {
  Node n = MakeInternal(0, {{10, 1}, {20, 2}, {30, 3}});
  // Child 2 merged into child 1: entry (10 -> 1) disappears, (20 -> 2)
  // becomes (20 -> 1).
  ASSERT_TRUE(n.ApplyChildMerge(10, 1, 2));
  ASSERT_EQ(n.count, 2u);
  EXPECT_EQ(n.entries[0].key, 20u);
  EXPECT_EQ(n.entries[0].value, 1u);
  EXPECT_EQ(n.entries[1].key, 30u);
  EXPECT_EQ(n.entries[1].value, 3u);
}

TEST(NodeInternalTest, ApplyChildMergeValidatesLayout) {
  Node n = MakeInternal(0, {{10, 1}, {20, 2}});
  EXPECT_FALSE(n.ApplyChildMerge(10, 9, 2));   // wrong left child
  EXPECT_FALSE(n.ApplyChildMerge(10, 1, 9));   // wrong right child
  EXPECT_FALSE(n.ApplyChildMerge(11, 1, 2));   // wrong separator
  EXPECT_FALSE(n.ApplyChildMerge(20, 2, 1));   // no successor entry
  EXPECT_EQ(n.count, 2u);
}

TEST(NodeInternalTest, ApplyChildSeparatorChange) {
  Node n = MakeInternal(0, {{10, 1}, {20, 2}});
  ASSERT_TRUE(n.ApplyChildSeparatorChange(10, 14, 1));
  EXPECT_EQ(n.entries[0].key, 14u);
  EXPECT_FALSE(n.ApplyChildSeparatorChange(14, 25, 1));  // would reorder
  EXPECT_FALSE(n.ApplyChildSeparatorChange(99, 5, 1));   // absent
  EXPECT_FALSE(n.ApplyChildSeparatorChange(20, 15, 9));  // wrong child
}

TEST(NodeSplitTest, LeafSplitBalancesAndChains) {
  Node a = MakeLeaf(0, kPlusInfinity, kInvalidPageId);
  for (Key k = 1; k <= 9; ++k) a.InsertLeafEntry(k * 10, k);
  Node b;
  a.SplitInto(&b, /*right_page=*/55);
  EXPECT_EQ(a.count, 5u);             // left keeps the ceiling half
  EXPECT_EQ(b.count, 4u);
  EXPECT_EQ(a.high, 50u);             // largest remaining key
  EXPECT_EQ(a.link, 55u);             // A links to B
  EXPECT_EQ(b.low, 50u);              // B.low == A.high
  EXPECT_EQ(b.high, kPlusInfinity);   // B inherits A's old high
  EXPECT_EQ(b.link, kInvalidPageId);  // and A's old link
  EXPECT_EQ(b.entries[0].key, 60u);
  EXPECT_EQ(b.level, a.level);
}

TEST(NodeSplitTest, InternalSplitKeepsHighInvariant) {
  Node a = MakeInternal(0, {{10, 1}, {20, 2}, {30, 3}, {kPlusInfinity, 4}});
  Node b;
  a.SplitInto(&b, 77);
  EXPECT_EQ(a.high, a.entries[a.count - 1].key);
  EXPECT_EQ(b.high, b.entries[b.count - 1].key);
  EXPECT_EQ(b.high, kPlusInfinity);
  EXPECT_EQ(a.count + b.count, 4u);
}

TEST(NodeMergeTest, MergeFromRightAppends) {
  Node a = MakeLeaf(0, 30, 2);
  a.InsertLeafEntry(10, 1);
  Node b = MakeLeaf(30, kPlusInfinity, kInvalidPageId);
  b.InsertLeafEntry(40, 4);
  b.InsertLeafEntry(50, 5);
  a.MergeFromRight(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.high, kPlusInfinity);
  EXPECT_EQ(a.link, kInvalidPageId);
  EXPECT_EQ(a.low, 0u);  // unchanged
  EXPECT_EQ(a.entries[2].key, 50u);
}

TEST(NodeRedistributeTest, RightToLeft) {
  Node a = MakeLeaf(0, 15, 2);
  a.InsertLeafEntry(10, 1);
  Node b = MakeLeaf(15, kPlusInfinity, kInvalidPageId);
  for (Key k : {20, 30, 40, 50, 60}) b.InsertLeafEntry(k, k);
  const Key sep = a.RedistributeWithRight(&b, 3);
  EXPECT_GE(a.count, 3u);
  EXPECT_GE(b.count, 3u);
  EXPECT_EQ(a.count + b.count, 6u);
  EXPECT_EQ(sep, a.entries[a.count - 1].key);
  EXPECT_EQ(a.high, sep);
  EXPECT_EQ(b.low, sep);
  EXPECT_LT(a.entries[a.count - 1].key, b.entries[0].key);
}

TEST(NodeRedistributeTest, LeftToRight) {
  Node a = MakeLeaf(0, 65, 2);
  for (Key k : {10, 20, 30, 40, 50, 60}) a.InsertLeafEntry(k, k);
  Node b = MakeLeaf(65, kPlusInfinity, kInvalidPageId);
  b.InsertLeafEntry(70, 7);
  const Key sep = a.RedistributeWithRight(&b, 3);
  EXPECT_GE(a.count, 3u);
  EXPECT_GE(b.count, 3u);
  EXPECT_EQ(sep, a.high);
  EXPECT_EQ(b.low, sep);
  // b's old entries stay at the tail, in order.
  EXPECT_EQ(b.entries[b.count - 1].key, 70u);
  Key prev = 0;
  for (uint32_t i = 0; i < b.count; ++i) {
    EXPECT_GT(b.entries[i].key, prev);
    prev = b.entries[i].key;
  }
}

TEST(NodeRedistributeTest, InternalEntriesCarryChildren) {
  Node a = MakeInternal(0, {{10, 1}});
  Node b = MakeInternal(10, {{20, 2}, {30, 3}, {40, 4}, {50, 5}});
  const Key sep = a.RedistributeWithRight(&b, 2);
  EXPECT_GE(a.count, 2u);
  EXPECT_GE(b.count, 2u);
  EXPECT_EQ(a.high, sep);
  EXPECT_EQ(a.entries[a.count - 1].key, sep);
  // Every (key, child) pair survived intact somewhere.
  std::map<Key, uint64_t> all;
  for (uint32_t i = 0; i < a.count; ++i) {
    all[a.entries[i].key] = a.entries[i].value;
  }
  for (uint32_t i = 0; i < b.count; ++i) {
    all[b.entries[i].key] = b.entries[i].value;
  }
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(all[10], 1u);
  EXPECT_EQ(all[50], 5u);
}

TEST(NodeDebugTest, DebugStringMentionsState) {
  Node n = MakeLeaf(0, kPlusInfinity, kInvalidPageId);
  n.set_root(true);
  const std::string s = n.DebugString();
  EXPECT_NE(s.find("root"), std::string::npos);
  EXPECT_NE(s.find("leaf"), std::string::npos);
}

}  // namespace
}  // namespace obtree
