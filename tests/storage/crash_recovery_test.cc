// Copyright 2026 The obtree Authors.
//
// Deterministic crash-injection harness for the FileStore checkpoint
// protocol. The shape mirrors tests/integration/fault_stress_test.cc
// (seeded, replayable via OBTREE_FAULT_SEED=<n>, seed printed), but the
// fault is a process death, so every kill point runs in a forked child:
//
//   1. A fault-free COUNT run executes the seeded workload with every
//      crash site armed as a pure hit counter (probability 0), which
//      enumerates how many times each durability boundary is crossed.
//   2. For each site and each (sampled) hit ordinal k, a child process
//      re-runs the identical workload with the site armed to kCrash at
//      exactly the k-th hit (skip_first = k-1, max_fires = 1). The child
//      dies with kCrashExitCode mid-boundary — "store-write" even
//      persists a torn sector first.
//   3. The parent reopens the child's directory, reads the recovered
//      checkpoint epoch e, and requires the survivors to be EXACTLY the
//      committed prefix: the model state after e * kOpsPerCheckpoint
//      operations, bit-for-bit, plus a clean TreeChecker pass.
//
// The workload is single-threaded, so the k-th eligible hit of a site
// lands at the same operation in every run — the count run's ordinals
// and the child's kill points line up by construction.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/api/concurrent_map.h"
#include "obtree/util/fault_injector.h"

namespace obtree {
namespace {

// Workload geometry. Three checkpoints so every site has early, middle,
// and final-epoch kill points; a small key space over small nodes grows
// a real multi-level tree quickly.
constexpr size_t kOps = 900;
constexpr size_t kOpsPerCheckpoint = 300;
constexpr uint64_t kTotalEpochs = kOps / kOpsPerCheckpoint;
constexpr Key kKeySpace = 2000;

// Crash sites at the durability boundaries of the checkpoint protocol,
// in the order a checkpoint crosses them (see FileStore::WritePage and
// FileStore::Commit).
const char* const kCrashSites[] = {
    "store-write",        // torn page image in an uncommitted slot
    "store-fsync",        // data file not yet durable
    "manifest-rename",    // tmp manifest durable, commit rename not done
    "checkpoint-commit",  // checkpoint fully durable, death right after
};

// Cap on kill points tested per site (evenly spaced, always including
// the first and last ordinal). "store-write" is hit once per dirty page
// per checkpoint; replaying every ordinal would not test anything new.
constexpr uint64_t kMaxKillPointsPerSite = 12;

uint64_t SeedFromEnv() {
  const char* env = std::getenv("OBTREE_FAULT_SEED");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0x0b7ee2026u;  // fixed default: CI runs are reproducible
}

uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

struct Op {
  bool is_upsert;
  Key key;
  Value value;
};

// The i-th operation of the seeded stream: ~70% upserts, ~30% erases.
// The value encodes the op ordinal so a recovered stale overwrite (the
// pre-checkpoint value of a key upserted again later) cannot pass.
Op OpAt(uint64_t* rng, size_t i) {
  const uint64_t r = NextRand(rng);
  Op op;
  op.key = static_cast<Key>(r % kKeySpace) + 1;
  op.is_upsert = ((r >> 32) % 10) < 7;
  op.value = (op.key << 16) ^ static_cast<Value>(i + 1);
  return op;
}

MapOptions PersistentOptions(const std::string& dir) {
  MapOptions options;
  options.compression = CompressionMode::kNone;  // keep the child 1-threaded
  options.tree.storage_dir = dir;
  options.tree.min_entries = 8;
  return options;
}

// Run the whole seeded workload against `map`, checkpointing every
// kOpsPerCheckpoint ops. Statuses are ignored: under a kCrash arm the
// process dies instead of erroring, and the model replay below is the
// source of truth for what must have survived.
void RunWorkload(ConcurrentMap* map, uint64_t seed) {
  uint64_t rng = seed ? seed : 1;
  for (size_t i = 0; i < kOps; ++i) {
    const Op op = OpAt(&rng, i);
    if (op.is_upsert) {
      (void)map->Upsert(op.key, op.value);
    } else {
      (void)map->Erase(op.key);
    }
    if ((i + 1) % kOpsPerCheckpoint == 0) (void)map->Checkpoint();
  }
}

// The exact committed state after `epoch` checkpoints: the first
// epoch * kOpsPerCheckpoint operations replayed into an ordered map.
std::map<Key, Value> ModelAfter(uint64_t seed, uint64_t epoch) {
  uint64_t rng = seed ? seed : 1;
  std::map<Key, Value> model;
  const size_t ops = static_cast<size_t>(epoch) * kOpsPerCheckpoint;
  for (size_t i = 0; i < ops; ++i) {
    const Op op = OpAt(&rng, i);
    if (op.is_upsert) {
      model[op.key] = op.value;
    } else {
      model.erase(op.key);
    }
  }
  return model;
}

// Child body for one kill point. Never returns into gtest: the armed
// crash _Exit(kCrashExitCode)s mid-workload, or — if the ordinal lies
// beyond the site's last hit — the workload completes and exits 0.
[[noreturn]] void RunCrashChild(const std::string& dir, uint64_t seed,
                                const char* site, uint64_t ordinal) {
  FaultInjector::Instance().DisarmAll();
  FaultSpec spec;
  spec.action = FaultAction::kCrash;
  spec.probability = 1.0;
  spec.skip_first = ordinal - 1;
  spec.max_fires = 1;
  FaultInjector::Instance().Arm(site, spec);
  {
    ConcurrentMap map(PersistentOptions(dir));
    RunWorkload(&map, seed);
  }
  std::_Exit(0);
}

// Evenly spaced sample of 1..total, at most `cap` ordinals, always
// including the first and last.
std::vector<uint64_t> SampleOrdinals(uint64_t total, uint64_t cap) {
  std::vector<uint64_t> out;
  if (total == 0) return out;
  if (total <= cap) {
    for (uint64_t k = 1; k <= total; ++k) out.push_back(k);
    return out;
  }
  for (uint64_t i = 0; i < cap; ++i) {
    const uint64_t k = 1 + i * (total - 1) / (cap - 1);
    if (out.empty() || out.back() != k) out.push_back(k);
  }
  return out;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().DisarmAll();
    seed_ = SeedFromEnv();
    std::cout << "[crash-recovery] OBTREE_FAULT_SEED=" << seed_ << std::endl;
    base_ = ::testing::TempDir() + "obtree_crash_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(base_);
  }

  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    std::filesystem::remove_all(base_);
  }

  // Reopen a (possibly crashed) store directory and require the exact
  // committed-prefix state. A directory with no MANIFEST means the
  // crash predates the first commit: the durable prefix is empty, and a
  // fresh map over the directory must come up empty (torn uncommitted
  // slots in pages.dat must be invisible).
  void AuditRecovered(const std::string& dir, const std::string& what) {
    if (!std::filesystem::exists(dir + "/MANIFEST")) {
      Result<std::unique_ptr<ConcurrentMap>> r =
          ConcurrentMap::Recover(PersistentOptions(dir));
      EXPECT_FALSE(r.ok()) << what << ": recovered without a manifest";
      ConcurrentMap fresh(PersistentOptions(dir));
      EXPECT_TRUE(fresh.init_status().ok()) << what;
      EXPECT_EQ(fresh.Size(), 0u) << what << ": epoch-0 store not empty";
      return;
    }

    Result<std::unique_ptr<ConcurrentMap>> r =
        ConcurrentMap::Recover(PersistentOptions(dir));
    ASSERT_TRUE(r.ok()) << what << ": " << r.status().ToString();
    ConcurrentMap& map = **r;
    const uint64_t epoch = map.checkpoint_epoch();
    ASSERT_GE(epoch, 1u) << what;
    ASSERT_LE(epoch, kTotalEpochs) << what;
    Status check = map.ValidateStructure();
    ASSERT_TRUE(check.ok()) << what << ": " << check.ToString();

    const std::map<Key, Value> model = ModelAfter(seed_, epoch);
    std::vector<std::pair<Key, Value>> got;
    map.Scan(1, kMaxUserKey, [&](Key k, Value v) {
      got.emplace_back(k, v);
      return true;
    });
    ASSERT_EQ(got.size(), model.size())
        << what << ": recovered epoch " << epoch;
    size_t i = 0;
    for (const auto& kv : model) {
      ASSERT_EQ(got[i].first, kv.first) << what << " index " << i;
      ASSERT_EQ(got[i].second, kv.second)
          << what << " key " << kv.first << " (stale pre-checkpoint value?)";
      ++i;
    }
    EXPECT_EQ(map.Size(), model.size()) << what;
  }

  // Fork one kill-point child, wait for it, and audit the directory it
  // left behind. Returns the child's exit code.
  int RunKillPoint(const char* site, uint64_t ordinal) {
    const std::string dir =
        base_ + "/" + site + "-" + std::to_string(ordinal);
    const pid_t pid = fork();
    if (pid == 0) RunCrashChild(dir, seed_, site, ordinal);
    EXPECT_GT(pid, 0) << "fork failed";
    if (pid <= 0) return -1;
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status))
        << site << " ordinal " << ordinal << ": child did not exit cleanly";
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    EXPECT_TRUE(code == kCrashExitCode || code == 0)
        << site << " ordinal " << ordinal << ": unexpected exit " << code;
    AuditRecovered(dir, std::string(site) + " ordinal " +
                            std::to_string(ordinal));
    return code;
  }

  uint64_t seed_ = 0;
  std::string base_;
};

TEST_F(CrashRecoveryTest, EveryCrashSiteRecoversToCommittedPrefix) {
  // Phase 1: fault-free count run. Probability-0 arms never fire but
  // count every eligible hit, enumerating the kill points per site.
  for (const char* site : kCrashSites) {
    FaultSpec counter;
    counter.action = FaultAction::kStall;
    counter.probability = 0.0;
    FaultInjector::Instance().Arm(site, counter);
  }
  {
    ConcurrentMap map(PersistentOptions(base_ + "/count"));
    RunWorkload(&map, seed_);
  }
  std::map<std::string, uint64_t> hits;
  for (const char* site : kCrashSites) {
    hits[site] = FaultInjector::Instance().SiteStats(site).hits;
    ASSERT_GT(hits[site], 0u)
        << site << " never evaluated: the site is dead or renamed";
  }
  FaultInjector::Instance().DisarmAll();

  // Harness self-check: the completed count run must recover to the
  // full final-epoch model.
  AuditRecovered(base_ + "/count", "fault-free count run");

  // Phase 2: one forked child per sampled kill point.
  size_t kill_points = 0;
  size_t crashed = 0;
  for (const char* site : kCrashSites) {
    const std::vector<uint64_t> ordinals =
        SampleOrdinals(hits[site], kMaxKillPointsPerSite);
    std::cout << "[crash-recovery] " << site << ": " << hits[site]
              << " hits, testing " << ordinals.size() << " kill points"
              << std::endl;
    for (uint64_t k : ordinals) {
      if (::testing::Test::HasFatalFailure()) return;
      const int code = RunKillPoint(site, k);
      ++kill_points;
      if (code == kCrashExitCode) ++crashed;
    }
    // Every sampled ordinal is <= the counted hits, so each child must
    // actually have died at its site (a 0-exit means the ordinals of
    // the child run drifted from the count run).
    EXPECT_EQ(crashed, kill_points)
        << site << ": a child outlived its armed kill point";
  }
  std::cout << "[crash-recovery] verified " << kill_points
            << " kill points across " << std::size(kCrashSites) << " sites"
            << std::endl;
}

TEST_F(CrashRecoveryTest, OrdinalPastLastHitCompletesAndRecoversFully) {
  // A kill point that is never reached must leave a complete workload:
  // the child exits 0 and the store recovers to the final epoch.
  const int code = RunKillPoint("store-fsync", 1u << 20);
  ASSERT_EQ(code, 0);
  Result<std::unique_ptr<ConcurrentMap>> r =
      ConcurrentMap::Recover(PersistentOptions(
          base_ + "/store-fsync-" + std::to_string(1u << 20)));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->checkpoint_epoch(), kTotalEpochs);
}

}  // namespace
}  // namespace obtree
