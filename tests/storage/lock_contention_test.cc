// Copyright 2026 The obtree Authors.
//
// The PaperLock contract, exercised through PageManager: the spin-then-
// park lock must keep exactly the semantics of the mutex it replaced
// (mutual exclusion, test-hook firing points, LocksHeldByThisThread),
// while adding the contention telemetry — kLocksContended / kLockParks /
// kLockSpinGiveups and the lock-wait histogram — and the bounded
// TryLockSpin used by the write descent. The 8-thread hot-leaf stress is
// in CI's TSan job: every interleaving of spin, park, and wake must be
// race-free against the in-place read/write machinery.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/core/sagiv_tree.h"
#include "obtree/core/tree_checker.h"
#include "obtree/storage/page_manager.h"
#include "obtree/util/epoch.h"
#include "obtree/util/stats.h"

namespace obtree {
namespace {

class LockContentionTest : public ::testing::Test {
 protected:
  LockContentionTest() : pm_(&epoch_, &stats_) {}

  PageId MustAllocate() {
    Result<PageId> id = pm_.Allocate();
    EXPECT_TRUE(id.ok());
    return *id;
  }

  EpochManager epoch_;
  StatsCollector stats_;
  PageManager pm_;
};

TEST_F(LockContentionTest, LockUnlockSemanticsAndHookFiringPoints) {
  const PageId id = MustAllocate();
  std::vector<std::string> events;
  pm_.SetTestHook([&](const char* op, PageId page) {
    if (page == id) events.push_back(op);
  });

  // Lock fires "lock" before acquiring; Unlock fires "unlock" before
  // releasing; plain TryLock fires nothing (it cannot pause a protocol
  // thread at a useful point).
  EXPECT_EQ(PageManager::LocksHeldByThisThread(), 0);
  pm_.Lock(id);
  EXPECT_EQ(PageManager::LocksHeldByThisThread(), 1);
  pm_.Unlock(id);
  EXPECT_EQ(PageManager::LocksHeldByThisThread(), 0);
  EXPECT_TRUE(pm_.TryLock(id));
  pm_.Unlock(id);
  // TryLockSpin is a Lock-style entry point for the write descent: it
  // fires the same "lock" hook at entry.
  EXPECT_TRUE(pm_.TryLockSpin(id));
  EXPECT_EQ(PageManager::LocksHeldByThisThread(), 1);
  pm_.Unlock(id);

  pm_.SetTestHook(nullptr);
  EXPECT_EQ(events,
            (std::vector<std::string>{"lock", "unlock", "unlock", "lock",
                                      "unlock"}));

  // Uncontended acquisitions record no contention telemetry.
  EXPECT_EQ(stats_.Get(StatId::kLocksAcquired), 3u);
  EXPECT_EQ(stats_.Get(StatId::kLocksContended), 0u);
  EXPECT_EQ(stats_.Get(StatId::kLockParks), 0u);
  EXPECT_EQ(stats_.LockWaitHistogram().count(), 0u);
}

TEST_F(LockContentionTest, TryLockAndTryLockSpinRespectAHolder) {
  const PageId id = MustAllocate();
  // Keep the bounded spin short so the give-up path is fast.
  pm_.set_lock_spin_budget(4);
  pm_.set_lock_backoff_max(8);

  pm_.Lock(id);
  std::thread other([&]() {
    EXPECT_FALSE(pm_.TryLock(id));
    // The holder never releases while we spin: TryLockSpin must give up
    // (not park), leave the lock count untouched, and record the give-up.
    EXPECT_FALSE(pm_.TryLockSpin(id));
    EXPECT_EQ(PageManager::LocksHeldByThisThread(), 0);
  });
  other.join();
  EXPECT_GE(stats_.Get(StatId::kLocksContended), 1u);
  EXPECT_EQ(stats_.Get(StatId::kLockSpinGiveups), 1u);
  EXPECT_EQ(stats_.Get(StatId::kLockParks), 0u);

  pm_.Unlock(id);
  EXPECT_TRUE(pm_.TryLockSpin(id));
  pm_.Unlock(id);
}

TEST_F(LockContentionTest, ContendedLockParksAndRecordsWaitTime) {
  const PageId id = MustAllocate();
  // Zero spin budget = park immediately: the pre-PaperLock behavior, and
  // the deterministic way to exercise the futex path.
  pm_.set_lock_spin_budget(0);

  pm_.Lock(id);
  std::atomic<bool> acquired{false};
  std::thread waiter([&]() {
    pm_.Lock(id);  // parks until the main thread releases
    acquired.store(true, std::memory_order_release);
    pm_.Unlock(id);
  });
  // Give the waiter time to reach the futex; it must NOT acquire.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));
  pm_.Unlock(id);
  waiter.join();
  EXPECT_TRUE(acquired.load());

  EXPECT_GE(stats_.Get(StatId::kLocksContended), 1u);
  EXPECT_GE(stats_.Get(StatId::kLockParks), 1u);
  const Histogram waits = stats_.LockWaitHistogram();
  ASSERT_GE(waits.count(), 1u);
  // The waiter slept ~20 ms; the histogram must have seen a wait of at
  // least a millisecond (coarse: schedulers vary).
  EXPECT_GE(waits.max(), 1'000'000u);
}

TEST_F(LockContentionTest, MutualExclusionUnderManySpinners) {
  const PageId id = MustAllocate();
  pm_.set_lock_spin_budget(16);
  pm_.set_lock_backoff_max(32);
  constexpr int kThreads = 8;
  constexpr int kRounds = 400;
  int64_t shared = 0;  // guarded by the paper lock; TSan checks this too
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kRounds; ++i) {
        pm_.Lock(id);
        shared++;
        pm_.Unlock(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared, static_cast<int64_t>(kThreads) * kRounds);
  EXPECT_EQ(stats_.Get(StatId::kLocksAcquired),
            static_cast<uint64_t>(kThreads) * kRounds + 0u);
}

// 8 threads hammering the same handful of leaves: writers contend on the
// paper lock of a hot leaf while readers validate against the in-place
// mutations. This is the CI TSan job's contention cell for the lock
// layer; single-threaded correctness of the tree is asserted after.
TEST(LockHotLeafStressTest, EightThreadsOnAHotLeaf) {
  TreeOptions opt;
  opt.min_entries = 16;       // capacity 32: one or two hot leaves
  opt.lock_spin_budget = 32;  // exercise spin AND park under contention
  opt.lock_backoff_max = 64;
  SagivTree tree(opt);
  constexpr Key kHotKeys = 48;
  for (Key k = 1; k <= kHotKeys; k += 2) ASSERT_TRUE(tree.Insert(k, k).ok());

  constexpr int kThreads = 8;
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
  constexpr int kOpsPerThread = 800;  // TSan: ~20x slower per op
#else
  constexpr int kOpsPerThread = 4000;
#endif
#else
  constexpr int kOpsPerThread = 4000;
#endif
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      // Each thread owns a key parity/offset pattern so inserts and
      // deletes on the SAME keys interleave across threads.
      uint64_t x = 88172645463325252ull + static_cast<uint64_t>(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Key k = 1 + static_cast<Key>(x % kHotKeys);
        switch (x % 3) {
          case 0: {
            Status s = tree.Insert(k, k);
            if (!s.ok() && !s.IsAlreadyExists()) mismatches++;
            break;
          }
          case 1: {
            Status s = tree.Delete(k);
            if (!s.ok() && !s.IsNotFound()) mismatches++;
            break;
          }
          default: {
            Result<Value> r = tree.Search(k);
            if (r.ok() && *r != k) mismatches++;
            if (!r.ok() && !r.status().IsNotFound()) mismatches++;
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  Status s = TreeChecker(&tree).CheckStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  // 8 threads on <= 2 leaves: the run cannot have been contention-free
  // unless it was fully serialized by the host — accept either, but the
  // counters must be consistent: every park implies a contended
  // acquisition, and wait samples come only from contended acquisitions.
  const StatsSnapshot snap = tree.stats()->Snapshot();
  EXPECT_LE(snap.Get(StatId::kLockParks), snap.Get(StatId::kLocksContended));
  EXPECT_LE(tree.stats()->LockWaitHistogram().count(),
            snap.Get(StatId::kLocksContended));
  EXPECT_EQ(snap.max_locks_held, 1u);  // the paper's one-lock claim holds
}

// Contention telemetry must be monotone and land on the tree whose lock
// was contended — not on an idle tree sharing the process.
TEST(LockStatsAttributionTest, ContendedStatsAreMonotoneAndPerTree) {
  TreeOptions opt;
  opt.min_entries = 16;
  opt.lock_spin_budget = 4;
  SagivTree hot(opt);
  SagivTree idle(opt);
  for (Key k = 1; k <= 32; ++k) {
    ASSERT_TRUE(hot.Insert(k, k).ok());
    ASSERT_TRUE(idle.Insert(k, k).ok());
  }

  uint64_t last_contended = 0;
  uint64_t last_waits = 0;
  for (int phase = 0; phase < 3; ++phase) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&]() {
        for (int i = 0; i < 600; ++i) {
          const Key k = 1 + static_cast<Key>(i % 32);
          (void)hot.Delete(k);
          (void)hot.Insert(k, k);
        }
      });
    }
    for (auto& t : threads) t.join();
    const uint64_t contended = hot.stats()->Get(StatId::kLocksContended);
    const uint64_t waits = hot.stats()->LockWaitHistogram().count();
    EXPECT_GE(contended, last_contended) << "contention counter went down";
    EXPECT_GE(waits, last_waits) << "wait histogram lost samples";
    last_contended = contended;
    last_waits = waits;
  }
  // The idle tree saw no operations, so no acquisition — contended or
  // otherwise — may be attributed to it.
  EXPECT_EQ(idle.stats()->Get(StatId::kLocksContended), 0u);
  EXPECT_EQ(idle.stats()->Get(StatId::kLockParks), 0u);
  EXPECT_EQ(idle.stats()->Get(StatId::kLockSpinGiveups), 0u);
  EXPECT_EQ(idle.stats()->LockWaitHistogram().count(), 0u);
  // Consistency on the hot tree: parks and give-ups are subsets of
  // contended attempts.
  EXPECT_LE(hot.stats()->Get(StatId::kLockParks), last_contended);
  EXPECT_LE(hot.stats()->Get(StatId::kLockSpinGiveups), last_contended);
}

}  // namespace
}  // namespace obtree
