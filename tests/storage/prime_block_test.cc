// Copyright 2026 The obtree Authors.

#include "obtree/storage/prime_block.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace obtree {
namespace {

TEST(PrimeBlockTest, WriteThenRead) {
  PrimeBlock pb;
  PrimeBlockData d;
  d.num_levels = 2;
  d.leftmost[0] = 7;
  d.leftmost[1] = 9;
  pb.Write(d);
  PrimeBlockData r = pb.Read();
  EXPECT_EQ(r.num_levels, 2u);
  EXPECT_EQ(r.leftmost[0], 7u);
  EXPECT_EQ(r.leftmost[1], 9u);
  EXPECT_EQ(r.root(), 9u);
  EXPECT_EQ(r.root_level(), 1u);
}

TEST(PrimeBlockTest, RootIsTopLeftmost) {
  PrimeBlockData d;
  d.num_levels = 1;
  d.leftmost[0] = 3;
  EXPECT_EQ(d.root(), 3u);
  EXPECT_EQ(d.root_level(), 0u);
}

// Readers racing a writer must always observe a consistent (num_levels,
// leftmost[top]) pair: we encode the level count into every pointer so a
// torn read is detectable.
TEST(PrimeBlockTest, ConcurrentReadsAreConsistent) {
  PrimeBlock pb;
  PrimeBlockData init;
  init.num_levels = 1;
  init.leftmost[0] = 1;
  pb.Write(init);

  std::atomic<bool> stop{false};
  std::atomic<bool> inconsistent{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        PrimeBlockData d = pb.Read();
        for (uint32_t i = 0; i < d.num_levels; ++i) {
          if (d.leftmost[i] != d.num_levels * 100 + i && d.num_levels != 1) {
            inconsistent.store(true);
            return;
          }
        }
      }
    });
  }
  std::thread writer([&]() {
    for (uint32_t n = 2; n < 2000; ++n) {
      PrimeBlockData d;
      d.num_levels = n % (kMaxLevels - 1) + 2;
      for (uint32_t i = 0; i < d.num_levels; ++i) {
        d.leftmost[i] = d.num_levels * 100 + i;
      }
      pb.Write(d);
    }
    stop.store(true);
  });
  writer.join();
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(inconsistent.load());
}

}  // namespace
}  // namespace obtree
