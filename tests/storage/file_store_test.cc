// Copyright 2026 The obtree Authors.
//
// Backend unit tests of FileStore: page round trips through the shadow
// (ping-pong) slot pairs, manifest atomicity, checksum verification on
// read-back, and the PageManager-level buffer pool over it (fault-in,
// eviction, counters). Crash injection is exercised separately by
// crash_recovery_test (it forks); everything here stays in-process.

#include "obtree/storage/file_store.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "obtree/storage/page_manager.h"
#include "obtree/util/epoch.h"
#include "obtree/util/fault_injector.h"
#include "obtree/util/stats.h"

namespace obtree {
namespace {

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "obtree_fs_" + info->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

Page MakePage(uint8_t fill) {
  Page p;
  std::memset(p.bytes, fill, kPageSize);
  return p;
}

TEST_F(FileStoreTest, OpenCreatesDirectoryAndEmptyStore) {
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE((*store)->has_checkpoint());
  EXPECT_EQ((*store)->checkpoint_epoch(), 0u);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/pages.dat"));
}

TEST_F(FileStoreTest, UnknownPageReadsAsZeroes) {
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  Page p = MakePage(0xff);
  ASSERT_TRUE((*store)->ReadPage(7, p.bytes).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(p.bytes[i], 0u) << i;
}

TEST_F(FileStoreTest, WriteCommitReadRoundTrip) {
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  const Page w = MakePage(0xab);
  ASSERT_TRUE((*store)->WritePage(3, w.bytes).ok());
  // Staged writes are readable before the commit (the buffer pool may
  // evict and re-fault a page between checkpoints).
  Page r;
  ASSERT_TRUE((*store)->ReadPage(3, r.bytes).ok());
  EXPECT_EQ(std::memcmp(w.bytes, r.bytes, kPageSize), 0);

  StoreMeta meta;
  meta.next_fresh = 4;
  ASSERT_TRUE((*store)->Commit(&meta).ok());
  EXPECT_TRUE((*store)->has_checkpoint());
  EXPECT_EQ((*store)->checkpoint_epoch(), 1u);
  ASSERT_TRUE((*store)->ReadPage(3, r.bytes).ok());
  EXPECT_EQ(std::memcmp(w.bytes, r.bytes, kPageSize), 0);
}

TEST_F(FileStoreTest, ReopenRecoversCommittedState) {
  {
    auto store = FileStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    const Page w = MakePage(0x5a);
    ASSERT_TRUE((*store)->WritePage(0, w.bytes).ok());
    StoreMeta meta;
    meta.next_fresh = 1;
    meta.tree_size = 42;
    meta.max_key = 999;
    meta.rightmost_leaf = 0;
    meta.leftmost = {0};
    meta.free_pages = {};
    ASSERT_TRUE((*store)->Commit(&meta).ok());
  }
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->has_checkpoint());
  EXPECT_EQ((*store)->checkpoint_epoch(), 1u);
  const StoreMeta& meta = (*store)->recovered_meta();
  EXPECT_EQ(meta.next_fresh, 1u);
  EXPECT_EQ(meta.tree_size, 42u);
  EXPECT_EQ(meta.max_key, 999u);
  EXPECT_EQ(meta.rightmost_leaf, 0u);
  ASSERT_EQ(meta.leftmost.size(), 1u);
  Page r;
  ASSERT_TRUE((*store)->ReadPage(0, r.bytes).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(r.bytes[i], 0x5au) << i;
}

// An uncommitted write must never displace the committed image: it lands
// in the shadow slot, and a reopen (which drops the pending table) reads
// the committed one.
TEST_F(FileStoreTest, UncommittedWriteDoesNotReplaceCommittedImage) {
  {
    auto store = FileStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    const Page v1 = MakePage(0x11);
    ASSERT_TRUE((*store)->WritePage(5, v1.bytes).ok());
    StoreMeta meta;
    meta.next_fresh = 6;
    ASSERT_TRUE((*store)->Commit(&meta).ok());
    const Page v2 = MakePage(0x22);
    ASSERT_TRUE((*store)->WritePage(5, v2.bytes).ok());
    // No commit: v2 sits in the shadow slot only.
  }
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  Page r;
  ASSERT_TRUE((*store)->ReadPage(5, r.bytes).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(r.bytes[i], 0x11u) << i;
}

// Successive committed versions of one page ping-pong between its two
// slots; each commit's image must read back intact.
TEST_F(FileStoreTest, SlotPingPongAcrossCommits) {
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  for (uint8_t round = 1; round <= 5; ++round) {
    const Page w = MakePage(round);
    ASSERT_TRUE((*store)->WritePage(2, w.bytes).ok());
    StoreMeta meta;
    meta.next_fresh = 3;
    ASSERT_TRUE((*store)->Commit(&meta).ok());
    Page r;
    ASSERT_TRUE((*store)->ReadPage(2, r.bytes).ok());
    EXPECT_EQ(std::memcmp(w.bytes, r.bytes, kPageSize), 0) << int{round};
    EXPECT_EQ((*store)->checkpoint_epoch(), round);
  }
}

// Flipping a bit in the committed slot must surface as DataLoss on read,
// not as silently wrong bytes.
TEST_F(FileStoreTest, CorruptedPageImageReadsAsDataLoss) {
  uint64_t offset_of_committed_slot = 0;
  {
    auto store = FileStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    const Page w = MakePage(0x77);
    ASSERT_TRUE((*store)->WritePage(0, w.bytes).ok());
    StoreMeta meta;
    meta.next_fresh = 1;
    ASSERT_TRUE((*store)->Commit(&meta).ok());
    // Find which slot the commit landed in by checking the first byte of
    // both: exactly one holds 0x77.
  }
  {
    std::FILE* f = std::fopen((dir_ + "/pages.dat").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    unsigned char b0 = 0;
    ASSERT_EQ(std::fread(&b0, 1, 1, f), 1u);
    offset_of_committed_slot = (b0 == 0x77) ? 0 : kPageSize;
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset_of_committed_slot + 100),
                         SEEK_SET),
              0);
    const unsigned char flipped = 0x77 ^ 0x01;
    ASSERT_EQ(std::fwrite(&flipped, 1, 1, f), 1u);
    std::fclose(f);
  }
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  Page r;
  Status s = (*store)->ReadPage(0, r.bytes);
  EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
}

// A torn manifest (trailing checksum broken) must fail Open loudly.
TEST_F(FileStoreTest, CorruptedManifestFailsOpen) {
  {
    auto store = FileStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    StoreMeta meta;
    meta.next_fresh = 0;
    ASSERT_TRUE((*store)->Commit(&meta).ok());
  }
  {
    std::FILE* f = std::fopen((dir_ + "/MANIFEST").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    unsigned char last = 0;
    ASSERT_EQ(std::fread(&last, 1, 1, f), 1u);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    last ^= 0xff;
    ASSERT_EQ(std::fwrite(&last, 1, 1, f), 1u);
    std::fclose(f);
  }
  auto store = FileStore::Open(dir_);
  EXPECT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsDataLoss()) << store.status().ToString();
}

// A leftover MANIFEST.tmp (crash between the tmp fsync and the rename)
// must be ignored: the previous commit, if any, stays authoritative.
TEST_F(FileStoreTest, LeftoverManifestTmpIsDiscarded) {
  {
    auto store = FileStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    StoreMeta meta;
    meta.next_fresh = 1;
    meta.tree_size = 7;
    ASSERT_TRUE((*store)->Commit(&meta).ok());
  }
  {
    std::FILE* f = std::fopen((dir_ + "/MANIFEST.tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn future manifest", f);
    std::fclose(f);
  }
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->has_checkpoint());
  EXPECT_EQ((*store)->recovered_meta().tree_size, 7u);
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/MANIFEST.tmp"));
}

// kError on the durability sites surfaces Unavailable without advancing
// the committed state, and a later clean Commit still lands everything.
TEST_F(FileStoreTest, TransientCommitFailureIsRetryable) {
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  const Page w = MakePage(0x33);
  ASSERT_TRUE((*store)->WritePage(1, w.bytes).ok());

  FaultSpec fail_once;
  fail_once.action = FaultAction::kError;
  fail_once.probability = 1.0;
  fail_once.max_fires = 1;
  FaultInjector::Instance().Arm("store-fsync", fail_once);
  StoreMeta meta;
  meta.next_fresh = 2;
  Status s = (*store)->Commit(&meta);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_EQ((*store)->checkpoint_epoch(), 0u);
  FaultInjector::Instance().DisarmAll();

  ASSERT_TRUE((*store)->Commit(&meta).ok());
  EXPECT_EQ((*store)->checkpoint_epoch(), 1u);
  Page r;
  ASSERT_TRUE((*store)->ReadPage(1, r.bytes).ok());
  EXPECT_EQ(std::memcmp(w.bytes, r.bytes, kPageSize), 0);
}

// --- PageManager-over-FileStore: buffer pool ------------------------------

class BufferPoolTest : public FileStoreTest {};

TEST_F(BufferPoolTest, EvictionStagesDirtyPagesAndFaultsThemBack) {
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  EpochManager epoch;
  StatsCollector stats;
  // Pool budget of 64 (the minimum TreeOptions accepts) with many more
  // pages than that: allocation-triggered sweeps must evict.
  PageManager pm(&epoch, &stats, store->get(), /*buffer_pool_pages=*/64);
  ASSERT_TRUE(pm.persistent());

  constexpr uint32_t kPages = 256;
  std::vector<PageId> ids;
  for (uint32_t i = 0; i < kPages; ++i) {
    auto id = pm.Allocate();
    ASSERT_TRUE(id.ok());
    Page w = MakePage(static_cast<uint8_t>(*id & 0xff));
    w.bytes[0] = static_cast<uint8_t>(*id >> 8);  // make pages distinct
    pm.Put(*id, w);
    ids.push_back(*id);
  }
  EXPECT_LE(pm.resident_pages(), 2u * 64u);  // sweep keeps it near budget
  EXPECT_GT(stats.Get(StatId::kPagesEvicted), 0u);
  EXPECT_GT(stats.Get(StatId::kStoreWrites), 0u);

  // Every page reads back intact — evicted ones fault in from the store.
  for (PageId id : ids) {
    Page r;
    ASSERT_TRUE(pm.Get(id, &r).ok()) << id;
    EXPECT_EQ(r.bytes[0], static_cast<uint8_t>(id >> 8)) << id;
    EXPECT_EQ(r.bytes[1], static_cast<uint8_t>(id & 0xff)) << id;
  }
  EXPECT_GT(stats.Get(StatId::kStoreReads), 0u);
}

TEST_F(BufferPoolTest, CheckpointFlushesDirtyPagesAndCounts) {
  auto store = FileStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats, store->get(), /*buffer_pool_pages=*/0);

  auto id = pm.Allocate();
  ASSERT_TRUE(id.ok());
  const Page w = MakePage(0x44);
  pm.Put(*id, w);

  Status s = pm.Checkpoint([](StoreMeta* meta) { meta->tree_size = 1; });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.Get(StatId::kCheckpoints), 1u);
  EXPECT_GE(stats.Get(StatId::kStoreWrites), 1u);
  EXPECT_EQ((*store)->checkpoint_epoch(), 1u);

  // Clean pages are not re-staged by the next checkpoint.
  const uint64_t writes_before = stats.Get(StatId::kStoreWrites);
  ASSERT_TRUE(pm.Checkpoint([](StoreMeta*) {}).ok());
  EXPECT_EQ(stats.Get(StatId::kStoreWrites), writes_before);
}

TEST_F(BufferPoolTest, CheckpointOnMemStoreIsFailedPrecondition) {
  EpochManager epoch;
  StatsCollector stats;
  PageManager pm(&epoch, &stats);  // default MemStore
  EXPECT_FALSE(pm.persistent());
  Status s = pm.Checkpoint([](StoreMeta*) {});
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
}

}  // namespace
}  // namespace obtree
