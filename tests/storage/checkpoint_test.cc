// Copyright 2026 The obtree Authors.
//
// Tree-level checkpoint/recover tests over the FileStore backend — all
// in-process (no fork), so they run under TSan and exercise exactly the
// concurrency the checkpoint barrier claims to handle: a checkpoint cut
// under live mutator traffic must capture every operation acknowledged
// before Checkpoint() was called, and a reopen of the directory must
// reproduce a tree that passes TreeChecker and serves those operations.

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obtree/api/concurrent_map.h"
#include "obtree/api/sharded_map.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/fault_injector.h"
#include "obtree/util/random.h"

namespace obtree {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "obtree_ckpt_" + info->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(CheckpointTest, FreshPersistentTreeStartsEmpty) {
  MapOptions opt;
  opt.tree.storage_dir = dir_;
  opt.compression = CompressionMode::kNone;
  ConcurrentMap map(opt);
  ASSERT_TRUE(map.init_status().ok()) << map.init_status().ToString();
  EXPECT_FALSE(map.recovered_from_checkpoint());
  EXPECT_EQ(map.checkpoint_epoch(), 0u);
  EXPECT_EQ(map.Size(), 0u);
}

TEST_F(CheckpointTest, CheckpointWithoutStorageDirIsFailedPrecondition) {
  ConcurrentMap map;
  Status s = map.Checkpoint();
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
}

TEST_F(CheckpointTest, RoundTripPreservesEveryPair) {
  constexpr Key kN = 10'000;
  {
    MapOptions opt;
    opt.tree.storage_dir = dir_;
    opt.compression = CompressionMode::kNone;
    ConcurrentMap map(opt);
    ASSERT_TRUE(map.init_status().ok());
    for (Key k = 1; k <= kN; ++k) {
      ASSERT_TRUE(map.Insert(k, k * 11).ok()) << k;
    }
    ASSERT_TRUE(map.Checkpoint().ok());
    EXPECT_EQ(map.checkpoint_epoch(), 1u);
  }
  MapOptions opt;
  opt.tree.storage_dir = dir_;
  opt.compression = CompressionMode::kNone;
  ConcurrentMap map(opt);
  ASSERT_TRUE(map.init_status().ok()) << map.init_status().ToString();
  ASSERT_TRUE(map.recovered_from_checkpoint());
  EXPECT_EQ(map.checkpoint_epoch(), 1u);
  EXPECT_EQ(map.Size(), kN);
  for (Key k = 1; k <= kN; ++k) {
    Result<Value> r = map.Get(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, k * 11) << k;
  }
  // The recovered structure is a valid B-link tree.
  Status s = map.ValidateStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
  // And still fully writable: the allocator state (frontier + free list)
  // recovered too, so splits keep working.
  for (Key k = kN + 1; k <= kN + 2'000; ++k) {
    ASSERT_TRUE(map.Insert(k, k * 11).ok()) << k;
  }
  EXPECT_EQ(map.Size(), kN + 2'000);
}

TEST_F(CheckpointTest, RecoverRefusesEmptyDirAndAcceptsCheckpointed) {
  MapOptions opt;
  opt.tree.storage_dir = dir_;
  opt.compression = CompressionMode::kNone;
  {
    auto r = ConcurrentMap::Recover(opt);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
  }
  {
    ConcurrentMap map(opt);
    ASSERT_TRUE(map.Insert(1, 100).ok());
    ASSERT_TRUE(map.Checkpoint().ok());
  }
  auto r = ConcurrentMap::Recover(opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Result<Value> v = (*r)->Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100u);
  // Recover without a storage_dir is a usage error.
  MapOptions bad;
  auto r2 = ConcurrentMap::Recover(bad);
  EXPECT_TRUE(r2.status().IsInvalidArgument());
}

TEST_F(CheckpointTest, DeletesAndReusedPagesSurviveRoundTrip) {
  constexpr Key kN = 5'000;
  {
    MapOptions opt;
    opt.tree.storage_dir = dir_;
    opt.tree.min_entries = 3;
    opt.compression = CompressionMode::kQueueWorkers;
    ConcurrentMap map(opt);
    ASSERT_TRUE(map.init_status().ok());
    for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(map.Insert(k, k).ok());
    for (Key k = 2; k <= kN; k += 2) ASSERT_TRUE(map.Erase(k).ok());
    map.Quiesce();
    map.CompressNow();  // retire pages -> free list with real content
    ASSERT_TRUE(map.Checkpoint().ok());
  }
  MapOptions opt;
  opt.tree.storage_dir = dir_;
  opt.compression = CompressionMode::kNone;
  ConcurrentMap map(opt);
  ASSERT_TRUE(map.recovered_from_checkpoint());
  EXPECT_EQ(map.Size(), kN / 2);
  for (Key k = 1; k <= kN; ++k) {
    Result<Value> r = map.Get(k);
    if (k % 2 == 1) {
      ASSERT_TRUE(r.ok()) << k;
      EXPECT_EQ(*r, k) << k;
    } else {
      EXPECT_TRUE(r.status().IsNotFound()) << k;
    }
  }
  Status s = map.ValidateStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_F(CheckpointTest, BufferPoolBoundedTreeRoundTrips) {
  constexpr Key kN = 20'000;
  {
    MapOptions opt;
    opt.tree.storage_dir = dir_;
    opt.tree.buffer_pool_pages = 64;  // far fewer than the tree's pages
    opt.compression = CompressionMode::kNone;
    ConcurrentMap map(opt);
    ASSERT_TRUE(map.init_status().ok());
    for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(map.Insert(k, k + 5).ok());
    // Eviction really happened on the way here.
    EXPECT_GT(map.Stats().Get(StatId::kPagesEvicted), 0u);
    EXPECT_GT(map.Stats().Get(StatId::kStoreReads), 0u);
    // Reads fault evicted pages back in correctly.
    for (Key k = 1; k <= kN; k += 97) {
      Result<Value> r = map.Get(k);
      ASSERT_TRUE(r.ok()) << k;
      EXPECT_EQ(*r, k + 5) << k;
    }
    ASSERT_TRUE(map.Checkpoint().ok());
  }
  MapOptions opt;
  opt.tree.storage_dir = dir_;
  opt.tree.buffer_pool_pages = 64;
  opt.compression = CompressionMode::kNone;
  ConcurrentMap map(opt);
  ASSERT_TRUE(map.recovered_from_checkpoint());
  EXPECT_EQ(map.Size(), kN);
  for (Key k = 1; k <= kN; ++k) {
    Result<Value> r = map.Get(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, k + 5) << k;
  }
  Status s = map.ValidateStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// The acceptance-criteria scenario: a checkpoint cut while mutator
// threads are running. Everything acknowledged BEFORE Checkpoint() was
// invoked must be in the recovered image; operations racing the barrier
// may or may not be (each is either fully in or fully out — the audit
// only accepts states consistent with SOME prefix-respecting cut).
TEST_F(CheckpointTest, CheckpointUnderLiveTrafficIsLossless) {
  constexpr int kThreads = 4;
  constexpr Key kPreloaded = 4'000;
  constexpr int kOpsPerThread = 8'000;

  MapOptions opt;
  opt.tree.storage_dir = dir_;
  opt.tree.min_entries = 3;
  opt.compression = CompressionMode::kNone;
  uint64_t epoch_at_cut = 0;
  std::vector<std::vector<Key>> acked_before(kThreads);
  std::vector<std::vector<Key>> acked_ever(kThreads);
  {
    ConcurrentMap map(opt);
    ASSERT_TRUE(map.init_status().ok());
    // Committed baseline: preloaded keys, all acked before the barrier.
    for (Key k = 1; k <= kPreloaded; ++k) {
      ASSERT_TRUE(map.Insert(k, k * 3).ok());
    }
    std::atomic<bool> cut_started{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        Random rng(0xc0ffee + static_cast<uint64_t>(t));
        for (int i = 0; i < kOpsPerThread; ++i) {
          // Disjoint fresh keys per thread, above the preload.
          const Key k = kPreloaded + 1 + static_cast<Key>(t) +
                        static_cast<Key>(i) * kThreads;
          if (!map.Insert(k, k * 3).ok()) continue;
          acked_ever[static_cast<size_t>(t)].push_back(k);
          if (!cut_started.load(std::memory_order_acquire)) {
            // Acked while the checkpoint had definitely not begun: the
            // recovered image MUST contain it. (Keys acked after the
            // flag flipped race the barrier and may fall on either
            // side.)
            acked_before[static_cast<size_t>(t)].push_back(k);
          }
        }
      });
    }
    // Let the writers get going, then cut under full traffic.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cut_started.store(true, std::memory_order_release);
    ASSERT_TRUE(map.Checkpoint().ok());
    epoch_at_cut = map.checkpoint_epoch();
    for (auto& th : threads) th.join();
  }

  ConcurrentMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  ASSERT_TRUE(map.recovered_from_checkpoint());
  EXPECT_EQ(map.checkpoint_epoch(), epoch_at_cut);

  // Structure first: the recovered tree is valid.
  Status s = map.ValidateStructure();
  ASSERT_TRUE(s.ok()) << s.ToString();

  // Every pre-barrier acknowledged key is present with its value.
  for (Key k = 1; k <= kPreloaded; ++k) {
    Result<Value> r = map.Get(k);
    ASSERT_TRUE(r.ok()) << "lost preloaded key " << k;
    EXPECT_EQ(*r, k * 3);
  }
  for (const auto& keys : acked_before) {
    for (Key k : keys) {
      Result<Value> r = map.Get(k);
      ASSERT_TRUE(r.ok()) << "lost pre-checkpoint acked key " << k;
      EXPECT_EQ(*r, k * 3) << k;
    }
  }
  // No ghosts: everything in the recovered image was actually inserted
  // (acked or in flight at the cut — never an invented key), with the
  // writer's value.
  std::vector<bool> inserted_ever(
      kPreloaded + static_cast<Key>(kThreads) * kOpsPerThread + kThreads + 1,
      false);
  for (Key k = 1; k <= kPreloaded; ++k) inserted_ever[k] = true;
  for (const auto& keys : acked_ever) {
    for (Key k : keys) inserted_ever[k] = true;
  }
  size_t scanned = 0;
  map.Scan(1, kMaxUserKey, [&](Key k, Value v) {
    EXPECT_EQ(v, k * 3) << k;
    // A key can be in the checkpoint without this test having seen its
    // ack (the barrier cut between the leaf mutation and the return), so
    // an ack is not required — but a key no thread ever attempted cannot
    // appear.
    EXPECT_LT(k, inserted_ever.size()) << "ghost key " << k;
    ++scanned;
    return true;
  });
  EXPECT_GT(scanned, 0u);
  EXPECT_EQ(scanned, map.Size());
}

// Checkpoint concurrent traffic for a ShardedMap: per-shard directories,
// per-key durability.
TEST_F(CheckpointTest, ShardedMapRoundTripsAcrossShardDirs) {
  constexpr Key kN = 8'000;
  ShardOptions opt;
  opt.num_shards = 4;
  opt.key_space_hint = kN;
  opt.compression = CompressionMode::kNone;
  opt.tree.storage_dir = dir_;
  {
    ShardedMap map(opt);
    ASSERT_TRUE(map.init_status().ok()) << map.init_status().ToString();
    for (Key k = 1; k <= kN; ++k) ASSERT_TRUE(map.Insert(k, k + 9).ok());
    ASSERT_TRUE(map.Checkpoint().ok());
  }
  // Shard subdirectories exist.
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::filesystem::exists(dir_ + "/shard-" + std::to_string(i) +
                                        "/MANIFEST"))
        << i;
  }
  ShardedMap map(opt);
  ASSERT_TRUE(map.init_status().ok());
  ASSERT_TRUE(map.recovered_from_checkpoint());
  EXPECT_EQ(map.Size(), kN);
  for (Key k = 1; k <= kN; ++k) {
    Result<Value> r = map.Get(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, k + 9) << k;
  }
  Status s = map.ValidateStructure();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// Rebalancing and persistence are mutually exclusive by validation.
TEST_F(CheckpointTest, RebalancePlusStorageDirIsRejected) {
  ShardOptions opt;
  opt.rebalance.enabled = true;
  opt.tree.storage_dir = dir_;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

// buffer_pool_pages below the floor is rejected.
TEST_F(CheckpointTest, TinyBufferPoolIsRejected) {
  TreeOptions opt;
  opt.buffer_pool_pages = 8;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

}  // namespace
}  // namespace obtree
