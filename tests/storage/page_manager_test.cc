// Copyright 2026 The obtree Authors.
//
// Tests of the §2.2 storage model: indivisible get/put (readers never see a
// torn page), paper locks that exclude lockers but not readers, and the
// §5.3 retire/reclaim cycle.

#include "obtree/storage/page_manager.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace obtree {
namespace {

class PageManagerTest : public ::testing::Test {
 protected:
  EpochManager epoch_;
  StatsCollector stats_;
  PageManager pm_{&epoch_, &stats_};
};

TEST_F(PageManagerTest, AllocateDistinctIds) {
  auto a = pm_.Allocate();
  auto b = pm_.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(pm_.live_pages(), 2u);
}

TEST_F(PageManagerTest, PutThenGetRoundTrips) {
  auto id = pm_.Allocate();
  ASSERT_TRUE(id.ok());
  Page w;
  for (size_t i = 0; i < kPageSize; ++i) w.bytes[i] = static_cast<uint8_t>(i);
  pm_.Put(*id, w);
  Page r;
  pm_.Get(*id, &r);
  EXPECT_EQ(std::memcmp(w.bytes, r.bytes, kPageSize), 0);
}

TEST_F(PageManagerTest, FreshAllocationIsZeroed) {
  auto id = pm_.Allocate();
  ASSERT_TRUE(id.ok());
  Page r;
  pm_.Get(*id, &r);
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(r.bytes[i], 0u) << i;
}

TEST_F(PageManagerTest, GetPutCountStats) {
  auto id = pm_.Allocate();
  Page p{};
  pm_.Put(*id, p);
  pm_.Get(*id, &p);
  pm_.Get(*id, &p);
  EXPECT_EQ(stats_.Get(StatId::kPuts), 1u);
  EXPECT_EQ(stats_.Get(StatId::kGets), 2u);
}

TEST_F(PageManagerTest, LockExcludesOtherLockers) {
  auto id = pm_.Allocate();
  pm_.Lock(*id);
  std::atomic<bool> acquired{false};
  std::thread t([&]() {
    pm_.Lock(*id);
    acquired.store(true);
    pm_.Unlock(*id);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  pm_.Unlock(*id);
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST_F(PageManagerTest, LockDoesNotBlockReaders) {
  auto id = pm_.Allocate();
  Page w{};
  w.bytes[0] = 42;
  pm_.Put(*id, w);
  pm_.Lock(*id);
  // The paper: "a lock on a node does not prevent other processes from
  // reading the locked node."
  std::atomic<bool> read_ok{false};
  std::thread t([&]() {
    Page r;
    pm_.Get(*id, &r);
    read_ok.store(r.bytes[0] == 42);
  });
  t.join();
  pm_.Unlock(*id);
  EXPECT_TRUE(read_ok.load());
}

TEST_F(PageManagerTest, TryLockReportsContention) {
  auto id = pm_.Allocate();
  EXPECT_TRUE(pm_.TryLock(*id));
  std::thread t([&]() { EXPECT_FALSE(pm_.TryLock(*id)); });
  t.join();
  pm_.Unlock(*id);
  EXPECT_TRUE(pm_.TryLock(*id));
  pm_.Unlock(*id);
}

TEST_F(PageManagerTest, LockDepthTracked) {
  auto a = pm_.Allocate();
  auto b = pm_.Allocate();
  EXPECT_EQ(PageManager::LocksHeldByThisThread(), 0);
  pm_.Lock(*a);
  EXPECT_EQ(PageManager::LocksHeldByThisThread(), 1);
  pm_.Lock(*b);
  EXPECT_EQ(PageManager::LocksHeldByThisThread(), 2);
  EXPECT_EQ(stats_.max_locks_held(), 2u);
  pm_.Unlock(*b);
  pm_.Unlock(*a);
  EXPECT_EQ(PageManager::LocksHeldByThisThread(), 0);
}

TEST_F(PageManagerTest, RetiredPageNotReusedWhileGuardActive) {
  auto id = pm_.Allocate();
  auto guard = std::make_unique<EpochManager::Guard>(&epoch_);
  pm_.Retire(*id);  // retired AFTER the guard started -> protected
  EXPECT_EQ(pm_.Reclaim(), 0u);
  EXPECT_EQ(pm_.retired_pages(), 1u);
  guard.reset();
  EXPECT_EQ(pm_.Reclaim(), 1u);
  EXPECT_EQ(pm_.free_pages(), 1u);
}

TEST_F(PageManagerTest, RetireBeforeGuardIsReclaimable) {
  auto id = pm_.Allocate();
  pm_.Retire(*id);
  EpochManager::Guard guard(&epoch_);  // started after the retirement
  EXPECT_EQ(pm_.Reclaim(), 1u);
}

TEST_F(PageManagerTest, ReusedPageIsZeroed) {
  auto id = pm_.Allocate();
  Page w;
  std::memset(w.bytes, 0xAB, kPageSize);
  pm_.Put(*id, w);
  pm_.Retire(*id);
  ASSERT_EQ(pm_.Reclaim(), 1u);
  auto id2 = pm_.Allocate();
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, *id);  // the page was recycled
  Page r;
  pm_.Get(*id2, &r);
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(r.bytes[i], 0u) << i;
}

TEST_F(PageManagerTest, AllocateHarvestsRetiredWithoutExplicitReclaim) {
  auto id = pm_.Allocate();
  pm_.Retire(*id);
  // No Reclaim() call: Allocate must harvest on its own.
  auto id2 = pm_.Allocate();
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, *id);
}

TEST_F(PageManagerTest, StatsCountRetireAndReclaim) {
  auto id = pm_.Allocate();
  pm_.Retire(*id);
  pm_.Reclaim();
  EXPECT_EQ(stats_.Get(StatId::kNodesRetired), 1u);
  EXPECT_EQ(stats_.Get(StatId::kNodesReclaimed), 1u);
}

TEST_F(PageManagerTest, ManyPagesAcrossChunks) {
  // Cross the 1024-page chunk boundary.
  std::vector<PageId> ids;
  for (int i = 0; i < 3000; ++i) {
    auto id = pm_.Allocate();
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  Page w{};
  w.bytes[7] = 9;
  pm_.Put(ids.back(), w);
  Page r;
  pm_.Get(ids.back(), &r);
  EXPECT_EQ(r.bytes[7], 9u);
  EXPECT_EQ(pm_.allocated_pages(), 3000u);
}

TEST_F(PageManagerTest, OptimisticReadValidatesWhenUnchanged) {
  auto id = pm_.Allocate();
  ASSERT_TRUE(id.ok());
  Page w{};
  w.bytes[0] = 7;
  pm_.Put(*id, w);
  PageManager::ReadGuard g = pm_.OptimisticRead(*id);
  ASSERT_TRUE(g.stable());
  EXPECT_EQ(__atomic_load_n(g.page()->bytes, __ATOMIC_RELAXED), 7);
  EXPECT_TRUE(g.Validate());
  EXPECT_TRUE(g.Validate());  // validation is repeatable
}

TEST_F(PageManagerTest, DefaultReadGuardNeverValidates) {
  PageManager::ReadGuard g;
  EXPECT_FALSE(g.stable());
  EXPECT_FALSE(g.Validate());
}

TEST_F(PageManagerTest, OptimisticReadInvalidatedByPut) {
  auto id = pm_.Allocate();
  PageManager::ReadGuard g = pm_.OptimisticRead(*id);
  ASSERT_TRUE(g.stable());
  Page w{};
  pm_.Put(*id, w);
  EXPECT_FALSE(g.Validate());
}

TEST_F(PageManagerTest, OptimisticReadInvalidatedByReuse) {
  auto id = pm_.Allocate();
  PageManager::ReadGuard g = pm_.OptimisticRead(*id);
  ASSERT_TRUE(g.stable());
  pm_.Retire(*id);
  ASSERT_EQ(pm_.Reclaim(), 1u);
  auto id2 = pm_.Allocate();  // recycles the page, zeroing it under the seq
  ASSERT_TRUE(id2.ok());
  ASSERT_EQ(*id2, *id);
  EXPECT_FALSE(g.Validate());
}

TEST_F(PageManagerTest, OptimisticReadCountsAsGet) {
  auto id = pm_.Allocate();
  const uint64_t before = stats_.Get(StatId::kGets);
  (void)pm_.OptimisticRead(*id);
  EXPECT_EQ(stats_.Get(StatId::kGets), before + 1);
}

// Optimistic torture: a writer alternates two full-page patterns while
// readers probe the live page in place. A read that VALIDATES must have
// observed exactly one pattern; reads that fail validation may be torn
// and are discarded, exactly like the tree's optimistic descents do.
TEST_F(PageManagerTest, ValidatedOptimisticReadsAreNeverTorn) {
  auto id = pm_.Allocate();
  ASSERT_TRUE(id.ok());
  Page a;
  Page b;
  std::memset(a.bytes, 0x11, kPageSize);
  std::memset(b.bytes, 0xEE, kPageSize);
  pm_.Put(*id, a);

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::atomic<uint64_t> validated{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      uint64_t ok = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        PageManager::ReadGuard g = pm_.OptimisticRead(*id);
        if (!g.stable()) continue;
        // Sample words across the page through relaxed atomic loads (the
        // only defined way to touch a concurrently-rewritten page).
        const auto* words =
            reinterpret_cast<const uint64_t*>(g.page()->bytes);
        uint64_t first = __atomic_load_n(&words[0], __ATOMIC_RELAXED);
        uint64_t last =
            __atomic_load_n(&words[kPageSize / 8 - 1], __ATOMIC_RELAXED);
        uint64_t mid =
            __atomic_load_n(&words[kPageSize / 16], __ATOMIC_RELAXED);
        if (!g.Validate()) continue;  // discarded: may be torn
        ++ok;
        if (first != last || first != mid ||
            (first != 0x1111111111111111ull &&
             first != 0xEEEEEEEEEEEEEEEEull)) {
          torn.store(true);
          return;
        }
      }
      validated.fetch_add(ok);
    });
  }
  std::thread writer([&]() {
    for (int i = 0; i < 20000; ++i) pm_.Put(*id, (i & 1) ? b : a);
    stop.store(true);
  });
  writer.join();
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(torn.load());
  EXPECT_GT(validated.load(), 0u);
}

TEST_F(PageManagerTest, WriteGuardPublishesInPlaceStores) {
  auto id = pm_.Allocate();
  ASSERT_TRUE(id.ok());
  pm_.Lock(*id);
  {
    PageManager::WriteGuard wg = pm_.BeginWrite(*id);
    ASSERT_TRUE(wg.held());
    auto* words = reinterpret_cast<uint64_t*>(wg.page()->bytes);
    PageStoreWord(&words[0], 0x42);
    PageStoreWord(&words[kPageSize / 8 - 1], 0x43);
    wg.Release();
    EXPECT_FALSE(wg.held());
  }
  pm_.Unlock(*id);
  Page r;
  pm_.Get(*id, &r);
  const auto* words = reinterpret_cast<const uint64_t*>(r.bytes);
  EXPECT_EQ(words[0], 0x42u);
  EXPECT_EQ(words[kPageSize / 8 - 1], 0x43u);
}

TEST_F(PageManagerTest, WriteGuardInvalidatesOptimisticReaders) {
  auto id = pm_.Allocate();
  ASSERT_TRUE(id.ok());
  PageManager::ReadGuard before = pm_.OptimisticRead(*id);
  ASSERT_TRUE(before.Validate());
  pm_.Lock(*id);
  PageManager::WriteGuard wg = pm_.BeginWrite(*id);
  // While the guard holds the seqlock odd, nothing can validate and new
  // optimistic reads are unstable.
  EXPECT_FALSE(before.Validate());
  EXPECT_FALSE(pm_.OptimisticRead(*id).stable());
  wg.Release();
  pm_.Unlock(*id);
  // Even after release the pre-write guard stays dead (version moved)...
  EXPECT_FALSE(before.Validate());
  // ...and a fresh read validates again.
  EXPECT_TRUE(pm_.OptimisticRead(*id).Validate());
}

TEST_F(PageManagerTest, WriteGuardDestructorReleases) {
  auto id = pm_.Allocate();
  pm_.Lock(*id);
  { PageManager::WriteGuard wg = pm_.BeginWrite(*id); }
  pm_.Unlock(*id);
  EXPECT_TRUE(pm_.OptimisticRead(*id).stable());
  // Move transfers ownership: releasing through the destination once.
  pm_.Lock(*id);
  {
    PageManager::WriteGuard a = pm_.BeginWrite(*id);
    PageManager::WriteGuard b = std::move(a);
    EXPECT_FALSE(a.held());
    EXPECT_TRUE(b.held());
  }
  pm_.Unlock(*id);
  EXPECT_TRUE(pm_.OptimisticRead(*id).Validate());
}

TEST_F(PageManagerTest, ReadModifyWriteChargesOneGetOnePut) {
  auto id = pm_.Allocate();
  pm_.Lock(*id);
  const uint64_t gets = stats_.Get(StatId::kGets);
  const uint64_t puts = stats_.Get(StatId::kPuts);
  // The locked peek is the node access (counts a get, pays the simulated
  // I/O); the BeginWrite completing the read-modify-write charges only
  // the put COUNTER — the whole RMW is one access, not get + put.
  PageManager::ReadGuard peek = pm_.PeekLocked(*id);
  EXPECT_TRUE(peek.Validate());
  EXPECT_EQ(stats_.Get(StatId::kGets), gets + 1);
  PageManager::WriteGuard wg = pm_.BeginWrite(*id);
  EXPECT_EQ(stats_.Get(StatId::kPuts), puts + 1);
  EXPECT_EQ(stats_.Get(StatId::kGets), gets + 1);
  wg.Release();
  pm_.Unlock(*id);
}

TEST_F(PageManagerTest, WriteGuardBlocksCopyReadersUntilRelease) {
  auto id = pm_.Allocate();
  Page w{};
  w.bytes[0] = 7;
  pm_.Put(*id, w);
  pm_.Lock(*id);
  PageManager::WriteGuard wg = pm_.BeginWrite(*id);
  std::atomic<bool> read_done{false};
  std::thread reader([&]() {
    Page r;
    pm_.Get(*id, &r);  // spins while the seqlock is odd
    read_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(read_done.load());
  wg.Release();
  reader.join();
  EXPECT_TRUE(read_done.load());
  pm_.Unlock(*id);
}

// Seqlock torture: a writer alternates between two full-page patterns while
// readers verify they only ever observe one pattern or the other.
TEST_F(PageManagerTest, ReadersNeverSeeTornPages) {
  auto id = pm_.Allocate();
  ASSERT_TRUE(id.ok());
  Page a;
  Page b;
  std::memset(a.bytes, 0x11, kPageSize);
  std::memset(b.bytes, 0xEE, kPageSize);
  pm_.Put(*id, a);

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      Page r;
      while (!stop.load(std::memory_order_relaxed)) {
        pm_.Get(*id, &r);
        const uint8_t first = r.bytes[0];
        if (first != 0x11 && first != 0xEE) {
          torn.store(true);
          break;
        }
        for (size_t i = 0; i < kPageSize; ++i) {
          if (r.bytes[i] != first) {
            torn.store(true);
            return;
          }
        }
      }
    });
  }
  std::thread writer([&]() {
    for (int i = 0; i < 20000; ++i) pm_.Put(*id, (i & 1) ? b : a);
    stop.store(true);
  });
  writer.join();
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(torn.load());
}

}  // namespace
}  // namespace obtree
