// Copyright 2026 The obtree Authors.
//
// Timestamp-based deferred reclamation, implementing the node-release rule
// of Section 5.3 of the paper:
//
//   "A node that becomes empty at time t can be released when all active
//    searches, insertions, and deletions have started after time t, and
//    the stacks of the nodes that are either currently being compressed or
//    are on the queue (or queues) have only time stamps that are younger
//    than t."
//
// EpochManager maintains a logical clock. Every logical operation pins its
// start time in a slot for its duration (Guard). Deleted pages are retired
// with the clock value at deletion time and may be reused only once
// MinActive() exceeds that value. Compression queues register an external
// min-timestamp provider so their stored stacks also hold back reclamation.

#ifndef OBTREE_UTIL_EPOCH_H_
#define OBTREE_UTIL_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "obtree/util/common.h"

namespace obtree {

/// Logical clock + active-operation registry.
class EpochManager {
 public:
  static constexpr int kMaxSlots = 512;

  EpochManager();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(EpochManager);

  /// Current logical time.
  Timestamp Now() const { return clock_.load(std::memory_order_acquire); }

  /// Advance the clock and return the new (unique, increasing) time. Used
  /// to stamp deletions and operation starts.
  Timestamp Advance() {
    return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// RAII pin of an operation's start time. While a Guard lives, no page
  /// retired at or after its start time is reclaimed.
  class Guard {
   public:
    explicit Guard(EpochManager* mgr);
    ~Guard();
    OBTREE_DISALLOW_COPY_AND_ASSIGN(Guard);

    /// The pinned start time of this operation.
    Timestamp start_time() const { return start_; }

    /// Re-pin at the current time. Used when an operation restarts from
    /// scratch and may legally observe a fresher tree.
    void Refresh();

   private:
    EpochManager* mgr_;
    int slot_;
    Timestamp start_;
  };

  /// Smallest start time among active operations and external providers;
  /// kMaxTimestamp when nothing is active. Pages retired strictly before
  /// this value are safe to reuse.
  Timestamp MinActive() const;

  /// Register a callback that reports the minimum timestamp still live in
  /// an external structure (e.g. a compression queue's stored stacks). The
  /// callback must return kMaxTimestamp when the structure holds nothing.
  void RegisterExternalMinProvider(std::function<Timestamp()> provider);

  /// Number of currently pinned operations (for tests / introspection).
  int ActiveCount() const;

 private:
  friend class Guard;

  int AcquireSlot();
  void ReleaseSlot(int slot);

  struct alignas(64) Slot {
    std::atomic<Timestamp> start{kMaxTimestamp};
    std::atomic<int> next_free{-1};
  };

  std::atomic<Timestamp> clock_;
  std::vector<Slot> slots_;
  std::atomic<int> free_head_;

  mutable std::mutex providers_mu_;
  std::vector<std::function<Timestamp()>> providers_;
};

}  // namespace obtree

#endif  // OBTREE_UTIL_EPOCH_H_
