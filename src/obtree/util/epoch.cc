// Copyright 2026 The obtree Authors.

#include "obtree/util/epoch.h"

#include <cassert>
#include <thread>

namespace obtree {

EpochManager::EpochManager() : clock_(1), slots_(kMaxSlots) {
  // Thread the slots into a Treiber free list.
  for (int i = 0; i < kMaxSlots - 1; ++i) {
    slots_[static_cast<size_t>(i)].next_free.store(i + 1, std::memory_order_relaxed);
  }
  slots_[kMaxSlots - 1].next_free.store(-1, std::memory_order_relaxed);
  free_head_.store(0, std::memory_order_release);
}

int EpochManager::AcquireSlot() {
  for (;;) {
    int head = free_head_.load(std::memory_order_acquire);
    while (head >= 0) {
      int next = slots_[static_cast<size_t>(head)].next_free.load(std::memory_order_relaxed);
      if (free_head_.compare_exchange_weak(head, next,
                                           std::memory_order_acq_rel)) {
        return head;
      }
    }
    // All slots busy: extremely unlikely (kMaxSlots concurrent operations).
    // Yield and retry rather than aborting.
    std::this_thread::yield();
  }
}

void EpochManager::ReleaseSlot(int slot) {
  Slot& s = slots_[static_cast<size_t>(slot)];
  s.start.store(kMaxTimestamp, std::memory_order_release);
  int head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    s.next_free.store(head, std::memory_order_relaxed);
    if (free_head_.compare_exchange_weak(head, slot,
                                         std::memory_order_acq_rel)) {
      return;
    }
  }
}

EpochManager::Guard::Guard(EpochManager* mgr) : mgr_(mgr) {
  slot_ = mgr_->AcquireSlot();
  // Publish a conservative (old) value first so that the window between
  // reading the clock and publishing it cannot let a concurrent reclaimer
  // miss us, then refine to the unique start time. The slot value only
  // moves forward, so the refinement is safe.
  Slot& s = mgr_->slots_[static_cast<size_t>(slot_)];
  s.start.store(mgr_->Now(), std::memory_order_seq_cst);
  start_ = mgr_->Advance();
  s.start.store(start_, std::memory_order_seq_cst);
}

EpochManager::Guard::~Guard() { mgr_->ReleaseSlot(slot_); }

void EpochManager::Guard::Refresh() {
  Slot& s = mgr_->slots_[static_cast<size_t>(slot_)];
  s.start.store(mgr_->Now(), std::memory_order_seq_cst);
  start_ = mgr_->Advance();
  s.start.store(start_, std::memory_order_seq_cst);
}

Timestamp EpochManager::MinActive() const {
  Timestamp min = kMaxTimestamp;
  for (const Slot& s : slots_) {
    Timestamp t = s.start.load(std::memory_order_acquire);
    if (t < min) min = t;
  }
  std::lock_guard<std::mutex> l(providers_mu_);
  for (const auto& p : providers_) {
    Timestamp t = p();
    if (t < min) min = t;
  }
  return min;
}

void EpochManager::RegisterExternalMinProvider(
    std::function<Timestamp()> provider) {
  std::lock_guard<std::mutex> l(providers_mu_);
  providers_.push_back(std::move(provider));
}

int EpochManager::ActiveCount() const {
  int n = 0;
  for (const Slot& s : slots_) {
    if (s.start.load(std::memory_order_acquire) != kMaxTimestamp) ++n;
  }
  return n;
}

}  // namespace obtree
