// Copyright 2026 The obtree Authors.
//
// Common fundamental types shared by every obtree module.

#ifndef OBTREE_UTIL_COMMON_H_
#define OBTREE_UTIL_COMMON_H_

#include <cstdint>
#include <limits>

namespace obtree {

/// Key type stored in the tree. The paper's algorithms are agnostic to the
/// key representation; we use 64-bit unsigned integers.
using Key = uint64_t;

/// Opaque value handle associated with a key. In the paper a leaf stores
/// pairs (v, p) where p points to the record with key value v; `Value`
/// models that record pointer.
using Value = uint64_t;

/// Identifier of a page (block of "secondary storage") managed by
/// PageManager. Pages are the unit of the paper's indivisible get/put.
using PageId = uint32_t;

/// Sentinel: no page / nil link.
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Sentinel key used as -infinity (the implicit v0 of the leftmost node).
inline constexpr Key kMinusInfinity = 0;

/// Sentinel key used as +infinity (the high value of the rightmost node at
/// each level). Real keys must be strictly below this value.
inline constexpr Key kPlusInfinity = std::numeric_limits<Key>::max();

/// Largest key a caller may insert. Keys live in (kMinusInfinity,
/// kMaxUserKey]: the paper searches with predicates of the form
/// v0 < v <= v_{i+1}, so key 0 is reserved for -infinity.
inline constexpr Key kMaxUserKey = kPlusInfinity - 1;

/// Logical timestamp used by the deferred node-release rule of Section 5.3.
using Timestamp = uint64_t;

inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

// Marks a class as neither copyable nor movable (Google style guide idiom).
#define OBTREE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

}  // namespace obtree

#endif  // OBTREE_UTIL_COMMON_H_
