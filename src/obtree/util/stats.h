// Copyright 2026 The obtree Authors.
//
// Sharded operation counters. These drive the paper's quantitative claims:
// how many locks an operation acquires, the maximum number of locks a
// process holds simultaneously (1 for Sagiv insertions vs. up to 3 for
// Lehman-Yao), how often searches follow links or restart, and how much
// restructuring the compressors perform.

#ifndef OBTREE_UTIL_STATS_H_
#define OBTREE_UTIL_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obtree/util/common.h"
#include "obtree/util/histogram.h"

namespace obtree {

/// Identifiers for the counters a tree maintains.
///
/// Attribution rules (who increments what, and on which tree):
///   * Physical counters (kGets/kPuts/kLocks*/kInplace*/kWriteBytes*)
///     count PAGE-LAYER events and accrue on the tree that owns the page,
///     regardless of which thread — user op, compressor, pool worker, or
///     migration — touched it.
///   * Logical counters (kSearches/kInserts/kDeletes, kBatchOps) count one
///     per USER-LEVEL call on the tree the call was routed to, before the
///     operation runs — a restarted or failed op still counts once, never
///     twice. An Upsert counts as one kInserts either way.
///   * Outcome pairs (kAppendFastHits/kAppendFastMisses,
///     kOptimisticValidations/kOptimisticRetries, kFetchRetries/
///     kFetchGiveups) are disjoint: one attempt increments exactly one
///     side, so rates are hits / (hits + misses) with no double counting.
///     A fast-path miss also proceeds down the normal path, where it may
///     increment that path's counters — misses are not failures.
///   * Rebalancer counters name their tree explicitly in the comments
///     below (donor vs receiver); map-level aggregation sums all shards.
enum class StatId : int {
  kGets = 0,             ///< page reads (the paper's get)
  kPuts,                 ///< page writes (the paper's put)
  kLocksAcquired,        ///< paper-lock acquisitions
  kLocksContended,       ///< acquisition attempts that found the paper
                         ///< lock held (the spin/park slow path ran);
                         ///< a TryLockSpin that gave up and re-entered
                         ///< via Lock counts once per attempt
  kLockParks,            ///< contended acquisitions that exhausted the
                         ///< spin budget and slept (futex park) at
                         ///< least once before acquiring
  kLockSpinGiveups,      ///< bounded TryLockSpin acquisitions that gave
                         ///< up without the lock (caller re-validated
                         ///< its target instead of parking)
  kLinkFollows,          ///< moveright steps through link pointers
  kRestarts,             ///< operations restarted from the root (total)
  kRestartsStaleNode,    ///< restarts: routed to a node whose level or key
                         ///< range no longer matches (reused page or data
                         ///< moved left by compression, §5.2 case (2))
  kRestartsRightmostStale,  ///< restarts: a node claiming to be rightmost
                            ///< (nil link) no longer covers the key
  kRestartsMissingMergeTarget,  ///< restarts: deleted node with no merge
                                ///< pointer yet (§5.1 window)
  kBacktracks,           ///< wrong-node events recovered by backtracking
                         ///< to the previous node (§5.2 optimization)
  kOptimisticValidations,  ///< optimistic in-place reads validated clean
  kOptimisticRetries,    ///< optimistic reads discarded (version moved or
                         ///< a put was in flight) and re-attempted
  kOptimisticFallbacks,  ///< operations that exhausted the optimistic
                         ///< retry budget and fell back to copy-reads
  kInplaceWrites,        ///< no-split mutations applied to the live page
                         ///< under the seqlock (PageManager::BeginWrite)
                         ///< instead of a Get + Put copy cycle
  kInplaceFallbacks,     ///< mutations that abandoned the in-place path
                         ///< (locked inspection could not validate under
                         ///< racing page reuse) and used copy semantics
  kWriteBytesInplace,    ///< bytes stored by in-place mutations
  kWriteBytesCopied,     ///< bytes moved by copy-path mutations on the
                         ///< Insert/Delete paths (page copied out under
                         ///< the lock + every page image written back)
  kAppendFastHits,       ///< inserts completed by the rightmost fast path
                         ///< (options().append_leaves): descent skipped,
                         ///< key appended to the hinted rightmost leaf
  kAppendFastMisses,     ///< fast-path attempts whose locked validation
                         ///< failed (hint stale: leaf split, merged away,
                         ///< page reused, or leaf full) — the insert then
                         ///< took the normal descent, whose counters it
                         ///< increments as usual
  kMergePointerFollows,  ///< deleted node hops recovered via merge pointer
  kSplits,               ///< node splits (tail-biased ones included)
  kTailSplits,           ///< the subset of kSplits that were tail-biased
                         ///< (rightmost node, max-extending key: the old
                         ///< node keeps all but one entry)
  kMerges,               ///< compression merges (B absorbed into A)
  kRedistributions,      ///< compression redistributions
  kNodesRetired,         ///< nodes marked deleted
  kNodesReclaimed,       ///< retired nodes whose pages were released
  kRootCreations,        ///< new roots created by insertions
  kRootCollapses,        ///< root removals by compression
  kCompressWaits,        ///< compress-level "wait for two in F" events
  kQueueEnqueues,        ///< compression queue pushes
  kQueueRequeues,        ///< nodes put back on the queue
  kQueueDiscards,        ///< queue entries discarded as stale
  kPoolTasksDrained,     ///< queue entries this tree had drained for it by
                         ///< a shared BackgroundPool worker
  kPoolBoosts,           ///< pool picks of this tree that bypassed the
                         ///< round-robin order (depth boost or work steal)
  kRebalanceSplits,      ///< shard splits the rebalancer performed
                         ///< (attributed to the new tree that received the
                         ///< hot shard's upper half)
  kRebalanceMerges,      ///< shard merges the rebalancer performed
                         ///< (attributed to the surviving left tree)
  kKeysMigrated,         ///< keys the rebalancer moved between trees
                         ///< (attributed to the donor they moved out of)
  kMigrationRetries,     ///< operations that landed on a migration's
                         ///< in-flight batch window and waited it out
                         ///< before the second lookup (attributed to the
                         ///< donor tree)
  kFaultsInjected,       ///< faults fired into this tree's page layer by
                         ///< the FaultInjector (errors only; stalls are
                         ///< invisible here)
  kFetchRetries,         ///< page fetches re-issued after an Unavailable
                         ///< result (bounded retry-with-backoff)
  kFetchGiveups,         ///< fetches that exhausted the retry budget and
                         ///< surfaced Unavailable to the operation
  kMigrationAborts,      ///< shard migrations abandoned (deadline or
                         ///< retry exhaustion) and rolled back to the
                         ///< donor (attributed to the original donor)
  kMigrationRollbackKeys,  ///< keys moved back to their original tree by
                           ///< a migration rollback
  kRebalanceBreakerTrips,  ///< times the rebalancer circuit breaker
                           ///< opened after max_consecutive_failures
                           ///< (summed into ShardedMap::Stats() from the
                           ///< rebalancer; not counted on any one tree)
  kSearches,             ///< logical search operations
  kInserts,              ///< logical insert operations
  kDeletes,              ///< logical delete operations
  kBatchOps,             ///< logical operations submitted through the
                         ///< Multi* batch API (each op in a batch counts
                         ///< once, on top of its kSearches/kInserts/...)
  kBatchPagesCoalesced,  ///< page fetches the pipelined descent engine
                         ///< avoided because several in-flight ops routed
                         ///< through the same page in the same round and
                         ///< shared one validated read
  kBatchIoOverlapped,    ///< simulated-I/O waits the engine issued
                         ///< together with a round's group leader instead
                         ///< of serially (PageManager::PrefetchPages)
  kStoreReads,           ///< page images faulted into the arena from the
                         ///< PageStore backend (FileStore pread + verify)
  kStoreWrites,          ///< page images staged to the backend: dirty
                         ///< evictions plus checkpoint flushes
  kPagesEvicted,         ///< resident pages the buffer-pool clock evicted
                         ///< to stay within TreeOptions::buffer_pool_pages
  kCheckpoints,          ///< successful Checkpoint() barriers (manifest
                         ///< committed)
  kRecoveries,           ///< trees rebuilt from a committed checkpoint at
                         ///< construction
  kNumStats,
};

inline constexpr int kNumStatIds = static_cast<int>(StatId::kNumStats);

/// Human-readable name of a counter.
const char* StatName(StatId id);

/// Per-batch slice of the batch counters: what one Multi* call did. The
/// same quantities are accumulated process-wide on the owning tree's
/// StatsCollector under kBatchOps / kBatchPagesCoalesced /
/// kBatchIoOverlapped; this struct lets a caller attribute them to a
/// single batch without diffing snapshots.
struct BatchStats {
  uint64_t ops = 0;              ///< operations in the batch
  uint64_t pages_coalesced = 0;  ///< fetches avoided by sharing a page
                                 ///< read between in-flight ops
  uint64_t io_overlapped = 0;    ///< simulated-I/O waits issued together
                                 ///< with a round leader instead of
                                 ///< serially

  BatchStats& operator+=(const BatchStats& o) {
    ops += o.ops;
    pages_coalesced += o.pages_coalesced;
    io_overlapped += o.io_overlapped;
    return *this;
  }
};

/// Point-in-time copy of all counters plus the lock-depth high-water mark.
struct StatsSnapshot {
  std::array<uint64_t, kNumStatIds> counters{};
  uint64_t max_locks_held = 0;

  uint64_t Get(StatId id) const {
    return counters[static_cast<size_t>(id)];
  }

  /// Difference between this snapshot and an earlier one.
  StatsSnapshot Delta(const StatsSnapshot& earlier) const;

  /// Multi-line rendering of the non-zero counters.
  std::string ToString() const;
};

/// Per-attached-shard slice of a BackgroundPool stats snapshot
/// (core/background_pool.h). This is the per-shard half of the
/// rebalancer's load signal (core/shard_rebalancer.h): a shard whose
/// drain/boost counters grow much faster than its peers' is receiving a
/// disproportionate share of deletion churn.
///
/// All counters are plain event COUNTS (no units) cumulative since
/// Attach, and are monotone non-decreasing for as long as the shard stays
/// attached; Detach discards them (a re-Attach starts from zero under a
/// new handle). Consumers that want rates must snapshot twice and diff.
struct PoolShardStats {
  /// The identifier Attach returned for this shard. Join key for mapping
  /// a snapshot row back to the ConcurrentMap it describes
  /// (ConcurrentMap::pool_handle()); handles are unique per pool and
  /// never reused.
  uint64_t handle = 0;
  uint64_t tasks_drained = 0;  ///< queue entries processed for this shard
                               ///< (all outcomes: restructure, requeue,
                               ///< or stale discard)
  uint64_t restructures = 0;   ///< entries that led to a structural fix
                               ///< (merge/redistribution/root collapse)
  uint64_t requeues = 0;       ///< entries put back for a later visit
  uint64_t boosts = 0;         ///< off-turn picks (depth boost / steal):
                               ///< how often this shard's queue was deep
                               ///< enough to jump the round-robin order
};

/// Point-in-time counters of a BackgroundPool: how a machine-sized worker
/// set divided its attention across the attached shards. As with
/// PoolShardStats, every field is a cumulative count since the pool
/// started, monotone non-decreasing while the pool lives (Stop freezes
/// them); only the per-shard rows in `shards` reset, and only on Detach.
struct PoolStatsSnapshot {
  int threads = 0;             ///< workers the pool runs (0 = no pool)
  uint64_t rounds = 0;         ///< scheduling rounds across all workers
  uint64_t tasks_drained = 0;  ///< queue entries processed (all outcomes);
                               ///< equals the sum over live shards'
                               ///< tasks_drained plus those of shards
                               ///< detached since
  uint64_t restructures = 0;   ///< merges/redistributions/root collapses
  uint64_t boosts = 0;         ///< periodic deepest-queue priority picks
  uint64_t steals = 0;         ///< empty round-robin turns redirected to
                               ///< the deepest non-empty queue
  uint64_t idle_sleeps = 0;    ///< rounds that found no work and slept
  uint64_t worker_deaths = 0;  ///< workers that exited their loop early
                               ///< (injected kill or escaped exception)
  uint64_t worker_respawns = 0;  ///< dead workers replaced by the
                                 ///< supervisor's health check
  std::vector<PoolShardStats> shards;  ///< live shards, in attach order
                                       ///< (NOT shard-index order; join on
                                       ///< `handle`)

  /// Fraction of scheduling rounds that went to sleep instead of working.
  double IdleRatio() const {
    return rounds > 0
               ? static_cast<double>(idle_sleeps) / static_cast<double>(rounds)
               : 0.0;
  }

  /// Multi-line rendering (pool-wide counters + one line per shard).
  std::string ToString() const;
};

/// Thread-safe sharded counter set. Increments are relaxed atomics on a
/// shard chosen by thread id; reads sum all shards.
class StatsCollector {
 public:
  StatsCollector();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(StatsCollector);

  /// Add `n` to counter `id`.
  void Add(StatId id, uint64_t n = 1);

  /// Raise the lock-depth high-water mark to at least `depth`.
  void RecordLockDepth(uint64_t depth);

  /// Record the wall time (ns) a contended paper-lock acquisition spent
  /// waiting — spin and park included. Uncontended acquisitions record
  /// nothing (the hot path never reads a clock).
  void RecordLockWait(uint64_t ns) { lock_wait_ns_.Add(ns); }

  /// Point-in-time copy of the lock-wait histogram (p50/p99/max of the
  /// contended-acquisition wait times, in ns).
  Histogram LockWaitHistogram() const { return lock_wait_ns_.Snapshot(); }

  /// Record the fill percentage (entries * 100 / capacity) of the LEFT
  /// node of a leaf split — the node the split frontier just retired. A
  /// midpoint split records ~50, a tail-biased split ~100, so this
  /// histogram is the live view of steady-state leaf fill that
  /// TreeShape's offline walk confirms.
  void RecordLeafFill(uint64_t pct) { leaf_fill_pct_.Add(pct); }

  /// Point-in-time copy of the leaf-fill histogram (percent, 0-100).
  Histogram LeafFillHistogram() const { return leaf_fill_pct_.Snapshot(); }

  /// Sum of counter `id` across shards.
  uint64_t Get(StatId id) const;

  uint64_t max_locks_held() const {
    return max_locks_held_.load(std::memory_order_relaxed);
  }

  StatsSnapshot Snapshot() const;

  /// Zero every counter (not linearizable w.r.t. concurrent increments;
  /// intended for use between benchmark phases).
  void Reset();

 private:
  static constexpr int kShards = 64;

  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumStatIds> counters{};
  };

  static int ShardIndex();

  std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> max_locks_held_;
  AtomicHistogram lock_wait_ns_;
  AtomicHistogram leaf_fill_pct_;
};

}  // namespace obtree

#endif  // OBTREE_UTIL_STATS_H_
