// Copyright 2026 The obtree Authors.

#include "obtree/util/status.h"

namespace obtree {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace obtree
