// Copyright 2026 The obtree Authors.

#include "obtree/util/random.h"

#include <cassert>
#include <cmath>

namespace obtree {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  // Seed the xorshift state via SplitMix64 so that small / zero seeds still
  // produce well-mixed state.
  uint64_t sm = seed;
  s0_ = SplitMix64(&sm);
  s1_ = SplitMix64(&sm);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  // Multiply-shift bounded rejectionless mapping; bias is negligible for
  // workload generation purposes.
  __uint128_t wide = static_cast<__uint128_t>(Next()) * n;
  return static_cast<uint64_t>(wide >> 64);
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  if (lo == 0 && hi == UINT64_MAX) return Next();
  return lo + Uniform(hi - lo + 1);
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  alpha_ = 1.0 / (1.0 - theta);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  // Direct summation. Workloads construct generators once, so O(n) setup is
  // acceptable; for very large n we cap the summation and extrapolate with
  // the integral approximation.
  constexpr uint64_t kExactLimit = 1 << 22;
  double sum = 0.0;
  const uint64_t exact = n < kExactLimit ? n : kExactLimit;
  for (uint64_t i = 1; i <= exact; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact) {
    // Integral of x^-theta from exact to n.
    const double a = 1.0 - theta;
    sum += (std::pow(static_cast<double>(n), a) -
            std::pow(static_cast<double>(exact), a)) /
           a;
  }
  return sum;
}

uint64_t ZipfGenerator::Next(Random* rng) {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double frac =
      std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(static_cast<double>(n_) * frac);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

uint64_t ScrambleKey(uint64_t x) {
  // Finalizer of SplitMix64: a bijection on 64-bit integers.
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace obtree
