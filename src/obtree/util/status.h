// Copyright 2026 The obtree Authors.
//
// A RocksDB-style Status type used as the error-handling currency of the
// library, plus a small Result<T> carrier for fallible value-returning
// operations.

#ifndef OBTREE_UTIL_STATUS_H_
#define OBTREE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace obtree {

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kAlreadyExists = 2,
    kInvalidArgument = 3,
    kResourceExhausted = 4,
    kAborted = 5,
    kInternal = 6,
    kUnavailable = 7,
    kFailedPrecondition = 8,
    kDataLoss = 9,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }
  /// Transient failure (e.g. an injected or real page-fetch error): the
  /// operation did not happen and may be retried.
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// The operation requires state the object does not have (e.g.
  /// Checkpoint() on a map with no persistent store, Recover() with no
  /// manifest on disk). Not retryable without changing the setup.
  static Status FailedPrecondition(std::string msg = "") {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  /// Unrecoverable corruption: a stored page image failed its checksum,
  /// or the manifest is torn beyond its committed generation.
  static Status DataLoss(std::string msg = "") {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsDataLoss() const { return code_ == Code::kDataLoss; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "NotFound: key 42".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Either a value or an error Status. Minimal StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace obtree

#endif  // OBTREE_UTIL_STATUS_H_
