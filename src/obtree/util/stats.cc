// Copyright 2026 The obtree Authors.

#include "obtree/util/stats.h"

#include <cstdio>
#include <thread>

namespace obtree {

const char* StatName(StatId id) {
  switch (id) {
    case StatId::kGets: return "gets";
    case StatId::kPuts: return "puts";
    case StatId::kLocksAcquired: return "locks_acquired";
    case StatId::kLocksContended: return "locks_contended";
    case StatId::kLockParks: return "lock_parks";
    case StatId::kLockSpinGiveups: return "lock_spin_giveups";
    case StatId::kLinkFollows: return "link_follows";
    case StatId::kRestarts: return "restarts";
    case StatId::kRestartsStaleNode: return "restarts_stale_node";
    case StatId::kRestartsRightmostStale: return "restarts_rightmost_stale";
    case StatId::kRestartsMissingMergeTarget:
      return "restarts_missing_merge_target";
    case StatId::kBacktracks: return "backtracks";
    case StatId::kOptimisticValidations: return "optimistic_validations";
    case StatId::kOptimisticRetries: return "optimistic_retries";
    case StatId::kOptimisticFallbacks: return "optimistic_fallbacks";
    case StatId::kInplaceWrites: return "inplace_writes";
    case StatId::kInplaceFallbacks: return "inplace_fallbacks";
    case StatId::kWriteBytesInplace: return "write_bytes_inplace";
    case StatId::kWriteBytesCopied: return "write_bytes_copied";
    case StatId::kAppendFastHits: return "append_fast_hits";
    case StatId::kAppendFastMisses: return "append_fast_misses";
    case StatId::kMergePointerFollows: return "merge_pointer_follows";
    case StatId::kSplits: return "splits";
    case StatId::kTailSplits: return "tail_splits";
    case StatId::kMerges: return "merges";
    case StatId::kRedistributions: return "redistributions";
    case StatId::kNodesRetired: return "nodes_retired";
    case StatId::kNodesReclaimed: return "nodes_reclaimed";
    case StatId::kRootCreations: return "root_creations";
    case StatId::kRootCollapses: return "root_collapses";
    case StatId::kCompressWaits: return "compress_waits";
    case StatId::kQueueEnqueues: return "queue_enqueues";
    case StatId::kQueueRequeues: return "queue_requeues";
    case StatId::kQueueDiscards: return "queue_discards";
    case StatId::kPoolTasksDrained: return "pool_tasks_drained";
    case StatId::kPoolBoosts: return "pool_boosts";
    case StatId::kRebalanceSplits: return "rebalance_splits";
    case StatId::kRebalanceMerges: return "rebalance_merges";
    case StatId::kKeysMigrated: return "keys_migrated";
    case StatId::kMigrationRetries: return "migration_retries";
    case StatId::kFaultsInjected: return "faults_injected";
    case StatId::kFetchRetries: return "fetch_retries";
    case StatId::kFetchGiveups: return "fetch_giveups";
    case StatId::kMigrationAborts: return "migration_aborts";
    case StatId::kMigrationRollbackKeys: return "migration_rollback_keys";
    case StatId::kRebalanceBreakerTrips: return "rebalance_breaker_trips";
    case StatId::kSearches: return "searches";
    case StatId::kInserts: return "inserts";
    case StatId::kDeletes: return "deletes";
    case StatId::kBatchOps: return "batch_ops";
    case StatId::kBatchPagesCoalesced: return "batch_pages_coalesced";
    case StatId::kBatchIoOverlapped: return "batch_io_overlapped";
    case StatId::kStoreReads: return "store_reads";
    case StatId::kStoreWrites: return "store_writes";
    case StatId::kPagesEvicted: return "pages_evicted";
    case StatId::kCheckpoints: return "checkpoints";
    case StatId::kRecoveries: return "recoveries";
    case StatId::kNumStats: break;
  }
  return "unknown";
}

StatsSnapshot StatsSnapshot::Delta(const StatsSnapshot& earlier) const {
  StatsSnapshot d;
  for (int i = 0; i < kNumStatIds; ++i) {
    d.counters[static_cast<size_t>(i)] =
        counters[static_cast<size_t>(i)] - earlier.counters[static_cast<size_t>(i)];
  }
  d.max_locks_held = max_locks_held;
  return d;
}

std::string StatsSnapshot::ToString() const {
  std::string out;
  char line[96];
  for (int i = 0; i < kNumStatIds; ++i) {
    const uint64_t v = counters[static_cast<size_t>(i)];
    if (v == 0) continue;
    std::snprintf(line, sizeof(line), "  %-22s %llu\n",
                  StatName(static_cast<StatId>(i)),
                  static_cast<unsigned long long>(v));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-22s %llu\n", "max_locks_held",
                static_cast<unsigned long long>(max_locks_held));
  out += line;
  return out;
}

std::string PoolStatsSnapshot::ToString() const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line),
                "  pool: %d threads, %llu rounds, %llu drained, "
                "%llu restructures, %llu boosts, %llu steals, idle %.2f\n",
                threads, static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(tasks_drained),
                static_cast<unsigned long long>(restructures),
                static_cast<unsigned long long>(boosts),
                static_cast<unsigned long long>(steals), IdleRatio());
  out += line;
  if (worker_deaths > 0 || worker_respawns > 0) {
    std::snprintf(line, sizeof(line),
                  "  pool health: %llu worker deaths, %llu respawns\n",
                  static_cast<unsigned long long>(worker_deaths),
                  static_cast<unsigned long long>(worker_respawns));
    out += line;
  }
  for (const PoolShardStats& s : shards) {
    std::snprintf(line, sizeof(line),
                  "  shard #%llu: drained %llu, restructures %llu, "
                  "requeues %llu, boosts %llu\n",
                  static_cast<unsigned long long>(s.handle),
                  static_cast<unsigned long long>(s.tasks_drained),
                  static_cast<unsigned long long>(s.restructures),
                  static_cast<unsigned long long>(s.requeues),
                  static_cast<unsigned long long>(s.boosts));
    out += line;
  }
  return out;
}

StatsCollector::StatsCollector() : max_locks_held_(0) {}

int StatsCollector::ShardIndex() {
  // Cheap thread-id hash; stable within a thread.
  static thread_local const int shard = []() {
    const size_t h = std::hash<std::thread::id>()(std::this_thread::get_id());
    return static_cast<int>(h % kShards);
  }();
  return shard;
}

void StatsCollector::Add(StatId id, uint64_t n) {
  shards_[static_cast<size_t>(ShardIndex())]
      .counters[static_cast<size_t>(id)]
      .fetch_add(n, std::memory_order_relaxed);
}

void StatsCollector::RecordLockDepth(uint64_t depth) {
  uint64_t cur = max_locks_held_.load(std::memory_order_relaxed);
  while (depth > cur &&
         !max_locks_held_.compare_exchange_weak(cur, depth,
                                                std::memory_order_relaxed)) {
  }
}

uint64_t StatsCollector::Get(StatId id) const {
  uint64_t sum = 0;
  for (const Shard& s : shards_) {
    sum += s.counters[static_cast<size_t>(id)].load(std::memory_order_relaxed);
  }
  return sum;
}

StatsSnapshot StatsCollector::Snapshot() const {
  StatsSnapshot snap;
  for (int i = 0; i < kNumStatIds; ++i) {
    snap.counters[static_cast<size_t>(i)] = Get(static_cast<StatId>(i));
  }
  snap.max_locks_held = max_locks_held();
  return snap;
}

void StatsCollector::Reset() {
  for (Shard& s : shards_) {
    for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
  }
  max_locks_held_.store(0, std::memory_order_relaxed);
  lock_wait_ns_.Reset();
  leaf_fill_pct_.Reset();
}

}  // namespace obtree
