// Copyright 2026 The obtree Authors.
//
// Deterministic process-wide fault-injection registry.
//
// A *failpoint site* is a short string naming a place in the code that can
// misbehave ("get", "put", "alloc", "pool-worker", "pool-drain",
// "migration-batch", ...). Sites share the naming scheme of the PageManager
// test hooks: the hook op string IS the failpoint site name, so a test can
// observe and perturb the same program point with one vocabulary.
//
// Tests arm a site with a FaultSpec describing *when* it fires (seeded
// probability, every-Nth hit, bounded fire count, optional thread filter)
// and *what* happens (an injected error or a stall). Production code asks
// `Evaluate(site)` at the site; the returned FaultOutcome says whether to
// inject. When nothing is armed anywhere the whole machinery collapses to
// one relaxed atomic load (`TrapsArmed()`), which is also the gate shared
// with the PageManager test hooks.
//
// Determinism: each armed site owns a private xorshift stream seeded from
// FaultSpec::seed, and hit counters are per-site, so a given site fires at
// the same *hit ordinals* across runs. (Which thread reaches a given hit
// ordinal first still depends on the schedule; the stress harness prints
// its seed so a failing schedule can be replayed under the same spec.)
//
// Maintenance and audit code (compressors, TreeChecker, TreeDump, bulk
// load) must observe ground truth, not injected chaos: they wrap
// themselves in a ScopedExemption, which suppresses all fault evaluation
// on the current thread for its lifetime.

#ifndef OBTREE_UTIL_FAULT_INJECTOR_H_
#define OBTREE_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obtree/util/common.h"

namespace obtree {

/// What an armed site does when it fires.
enum class FaultAction : unsigned char {
  /// The site reports failure (e.g. PageManager::Get returns
  /// Status::Unavailable, a pool worker exits its loop).
  kError = 0,
  /// The site sleeps for FaultSpec::stall_us microseconds, widening race
  /// windows without failing.
  kStall = 1,
  /// The PROCESS dies at the site (the durability-test "power cut").
  /// Evaluate() reports the fire in FaultOutcome::crash and leaves the
  /// actual death to the call site, so a site can model a torn write
  /// (persist a partial image, then _Exit) rather than just vanish;
  /// sites with nothing to tear call std::_Exit(kCrashExitCode)
  /// immediately. Only meaningful in a child process a test harness can
  /// wait on (see tests/storage/crash_recovery_test.cc).
  kCrash = 2,
};

/// Exit code a kCrash fire terminates the process with, so the parent
/// harness can tell an injected crash from an ordinary test failure.
inline constexpr int kCrashExitCode = 42;

/// Trigger + behavior description for one failpoint site.
struct FaultSpec {
  FaultAction action = FaultAction::kError;

  /// Probability in [0, 1] that an eligible hit fires. Evaluated on the
  /// site's private seeded stream. 1.0 = every eligible hit.
  double probability = 1.0;

  /// If non-zero, fire only on every Nth eligible hit (1st, N+1th, ...).
  /// Composes with `probability` (the dice roll happens on those hits).
  uint64_t every_nth = 0;

  /// Swallow this many eligible hits before the site may fire (they still
  /// count as hits). skip_first = k-1 with max_fires = 1 fires at exactly
  /// the k-th eligible hit — how the crash harness enumerates kill points:
  /// count a fault-free run's hits, then replay, dying at each ordinal.
  uint64_t skip_first = 0;

  /// If non-zero, disarm the site automatically after this many fires
  /// (1 = one-shot).
  uint64_t max_fires = 0;

  /// Stall duration for kStall, in microseconds.
  uint64_t stall_us = 0;

  /// Seed for the site's private PRNG stream.
  uint64_t seed = 0x5eed;

  /// If true, only the thread that called Arm() can trigger the site.
  bool calling_thread_only = false;
};

/// Result of evaluating a site: at most one of the fields is set. Stalls
/// are performed by Evaluate() itself (outside the registry lock);
/// `stall_us` reports how long it slept. A kCrash fire sets `crash`; the
/// call site must then terminate the process (after persisting whatever
/// partial state the scenario calls for).
struct FaultOutcome {
  bool inject_error = false;
  bool crash = false;
  uint64_t stall_us = 0;
};

/// Lifetime counters for one site, for test assertions.
struct FaultSiteStats {
  uint64_t hits = 0;   // eligible evaluations while armed
  uint64_t fires = 0;  // evaluations that injected a fault
};

class FaultInjector {
 public:
  /// The process-wide instance. Never destroyed (intentionally leaked so
  /// that detached/late threads may evaluate sites during shutdown).
  static FaultInjector& Instance();

  /// One relaxed load: true iff any site is armed OR any PageManager test
  /// hook is installed. Hot paths check this before doing anything else.
  static bool TrapsArmed() {
    return trap_refs_.load(std::memory_order_relaxed) != 0;
  }

  /// Contribute to / release the shared trap gate without arming a fault
  /// site. PageManager::SetTestHook uses this so hooks and failpoints
  /// share one hot-path gate.
  static void AddTrapRef() {
    trap_refs_.fetch_add(1, std::memory_order_relaxed);
  }
  static void ReleaseTrapRef() {
    trap_refs_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Arm (or re-arm, replacing the previous spec of) a site.
  void Arm(const std::string& site, const FaultSpec& spec);

  /// Disarm one site. No-op if not armed.
  void Disarm(const std::string& site);

  /// Disarm everything. Tests call this in teardown.
  void DisarmAll();

  /// Evaluate a site. Returns the action to take (if any) and advances the
  /// site's deterministic schedule. `error_eligible` lets a call site that
  /// cannot tolerate an error here (e.g. a page read under a paper lock)
  /// suppress kError outcomes *without* consuming a trigger, so one-shot
  /// and every-Nth schedules stay aligned with the eligible hits.
  FaultOutcome Evaluate(const char* site, bool error_eligible = true);

  /// Counters for a site (zeros if never armed).
  FaultSiteStats SiteStats(const std::string& site) const;

  /// Names of currently armed sites (for diagnostics).
  std::vector<std::string> ArmedSites() const;

  /// True while the current thread is inside a ScopedExemption.
  static bool ThreadExempt() { return tl_exempt_depth_ > 0; }

  /// RAII: suppress all fault evaluation on this thread. Used by
  /// maintenance/audit code that must see ground truth.
  class ScopedExemption {
   public:
    ScopedExemption() { ++tl_exempt_depth_; }
    ~ScopedExemption() { --tl_exempt_depth_; }
    OBTREE_DISALLOW_COPY_AND_ASSIGN(ScopedExemption);
  };

 private:
  FaultInjector() = default;
  ~FaultInjector() = delete;  // never destroyed; see Instance()

  struct Site {
    FaultSpec spec;
    std::thread::id armed_by;
    uint64_t rng_state = 0;
    uint64_t hits = 0;
    uint64_t fires = 0;
    bool exhausted = false;  // max_fires reached; kept for counters
  };

  // xorshift64*: tiny, deterministic, good enough for dice rolls.
  static uint64_t NextRand(uint64_t* state);

  static std::atomic<uint64_t> trap_refs_;
  static thread_local int tl_exempt_depth_;

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
  // Count of non-exhausted armed sites; mirrors our share of trap_refs_.
  uint64_t armed_count_ = 0;

  OBTREE_DISALLOW_COPY_AND_ASSIGN(FaultInjector);
};

}  // namespace obtree

#endif  // OBTREE_UTIL_FAULT_INJECTOR_H_
