// Copyright 2026 The obtree Authors.

#include "obtree/util/fault_injector.h"

#include <chrono>
#include <thread>

namespace obtree {

std::atomic<uint64_t> FaultInjector::trap_refs_{0};
thread_local int FaultInjector::tl_exempt_depth_ = 0;

FaultInjector& FaultInjector::Instance() {
  // Leaked on purpose: sites may be evaluated by threads that outlive main
  // (e.g. detached pool workers during process teardown).
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

uint64_t FaultInjector::NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

void FaultInjector::Arm(const std::string& site, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(site);
  const bool was_live = it != sites_.end() && !it->second.exhausted;
  Site s;
  s.spec = spec;
  s.armed_by = std::this_thread::get_id();
  // Never let the stream start at 0 (xorshift fixpoint).
  s.rng_state = spec.seed ? spec.seed : 0x9e3779b97f4a7c15ULL;
  sites_[site] = s;
  if (!was_live) {
    ++armed_count_;
    AddTrapRef();
  }
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  if (!it->second.exhausted) {
    --armed_count_;
    ReleaseTrapRef();
  }
  sites_.erase(it);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (uint64_t i = 0; i < armed_count_; ++i) ReleaseTrapRef();
  armed_count_ = 0;
  sites_.clear();
}

FaultOutcome FaultInjector::Evaluate(const char* site, bool error_eligible) {
  FaultOutcome out;
  if (tl_exempt_depth_ > 0) return out;
  uint64_t stall_us = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (armed_count_ == 0) return out;
    auto it = sites_.find(site);
    if (it == sites_.end()) return out;
    Site& s = it->second;
    if (s.exhausted) return out;
    if (s.spec.action == FaultAction::kError && !error_eligible) {
      // Don't consume a trigger for a hit that could not have fired.
      return out;
    }
    if (s.spec.calling_thread_only &&
        s.armed_by != std::this_thread::get_id()) {
      return out;
    }
    const uint64_t hit = ++s.hits;
    if (hit <= s.spec.skip_first) return out;
    if (s.spec.every_nth > 1 && (hit - 1) % s.spec.every_nth != 0) return out;
    if (s.spec.probability < 1.0) {
      const double roll =
          static_cast<double>(NextRand(&s.rng_state) >> 11) * 0x1.0p-53;
      if (roll >= s.spec.probability) return out;
    }
    ++s.fires;
    if (s.spec.max_fires > 0 && s.fires >= s.spec.max_fires) {
      s.exhausted = true;
      --armed_count_;
      ReleaseTrapRef();
    }
    if (s.spec.action == FaultAction::kError) {
      out.inject_error = true;
      return out;
    }
    if (s.spec.action == FaultAction::kCrash) {
      out.crash = true;
      return out;
    }
    stall_us = s.spec.stall_us;
  }
  // Sleep outside the registry lock so a stall never serializes other sites.
  if (stall_us > 0) {
    out.stall_us = stall_us;
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  }
  return out;
}

FaultSiteStats FaultInjector::SiteStats(const std::string& site) const {
  std::lock_guard<std::mutex> lk(mu_);
  FaultSiteStats st;
  auto it = sites_.find(site);
  if (it != sites_.end()) {
    st.hits = it->second.hits;
    st.fires = it->second.fires;
  }
  return st;
}

std::vector<std::string> FaultInjector::ArmedSites() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  for (const auto& kv : sites_) {
    if (!kv.second.exhausted) names.push_back(kv.first);
  }
  return names;
}

}  // namespace obtree
