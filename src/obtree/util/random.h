// Copyright 2026 The obtree Authors.
//
// Fast pseudo-random number generation and the key distributions used by
// the workload generators: uniform, Zipfian (YCSB-style), and sequential.

#ifndef OBTREE_UTIL_RANDOM_H_
#define OBTREE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obtree/util/common.h"

namespace obtree {

/// xorshift128+ generator: fast, decent quality, reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi]. lo must be <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of the given vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipfian distribution over [0, n) with exponent theta, using the
/// Gray/Jim-Gray rejection-free method popularized by YCSB. Item 0 is the
/// most popular.
class ZipfGenerator {
 public:
  /// @param n      number of distinct items (> 0)
  /// @param theta  skew parameter in (0, 1); 0.99 is the YCSB default
  ZipfGenerator(uint64_t n, double theta);

  /// Draw the next item rank in [0, n).
  uint64_t Next(Random* rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Deterministic bijective scramble of a 64-bit key space. Used to turn a
/// sequential id stream into a key stream without collisions (e.g. for
/// "load n keys in random-ish order" workloads).
uint64_t ScrambleKey(uint64_t x);

}  // namespace obtree

#endif  // OBTREE_UTIL_RANDOM_H_
