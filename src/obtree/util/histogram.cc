// Copyright 2026 The obtree Authors.

#include "obtree/util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace obtree {

Histogram::Histogram() { Reset(); }

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
}

int Histogram::BucketFor(uint64_t value) {
  if (value < (1u << kSubBucketsLog2)) return static_cast<int>(value);
  // C++17 has no std::countl_zero; use the builtin (value > 0 here).
  const int msb = 63 - __builtin_clzll(value);
  const int shift = msb - kSubBucketsLog2;
  const int sub = static_cast<int>((value >> shift) & ((1 << kSubBucketsLog2) - 1));
  int bucket = ((msb - kSubBucketsLog2 + 1) << kSubBucketsLog2) + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketsLog2)) return static_cast<uint64_t>(bucket);
  const int octave = (bucket >> kSubBucketsLog2) + kSubBucketsLog2 - 1;
  const int sub = bucket & ((1 << kSubBucketsLog2) - 1);
  const uint64_t base = 1ULL << octave;
  return base + static_cast<uint64_t>(sub + 1) * (base >> kSubBucketsLog2) - 1;
}

void Histogram::Add(uint64_t value) {
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t Histogram::min() const {
  return count_ == 0 ? 0 : min_;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min();
  if (p >= 100) return max_;
  const uint64_t target = static_cast<uint64_t>(
      static_cast<double>(count_) * p / 100.0);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen > target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%llu p90=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(90)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

AtomicHistogram::AtomicHistogram() { Reset(); }

void AtomicHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void AtomicHistogram::Add(uint64_t value) {
  buckets_[static_cast<size_t>(Histogram::BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

Histogram AtomicHistogram::Snapshot() const {
  Histogram h;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    h.buckets_[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  h.count_ = count_.load(std::memory_order_relaxed);
  h.sum_ = sum_.load(std::memory_order_relaxed);
  h.min_ = min_.load(std::memory_order_relaxed);
  h.max_ = max_.load(std::memory_order_relaxed);
  return h;
}

}  // namespace obtree
