// Copyright 2026 The obtree Authors.
//
// A log-bucketed latency histogram for benchmark reporting (p50/p90/p99,
// mean, max). Single-writer; merge histograms across threads for totals.

#ifndef OBTREE_UTIL_HISTOGRAM_H_
#define OBTREE_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace obtree {

/// Histogram of non-negative 64-bit samples (typically nanoseconds).
/// Buckets are exponential with 4 sub-buckets per power of two, giving
/// ~19% worst-case relative error on percentile estimates.
class Histogram {
 public:
  Histogram();

  /// Record one sample.
  void Add(uint64_t value);

  /// Merge another histogram into this one.
  void Merge(const Histogram& other);

  /// Remove all samples.
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const;
  uint64_t max() const { return max_; }
  double mean() const;

  /// Approximate value at percentile p in [0, 100].
  uint64_t Percentile(double p) const;

  /// One-line summary, e.g. "n=100 mean=12.3 p50=11 p99=40 max=55".
  std::string ToString() const;

 private:
  friend class AtomicHistogram;  // materializes snapshots bucket-by-bucket

  static constexpr int kSubBucketsLog2 = 2;                    // 4 per octave
  static constexpr int kNumBuckets = 64 << kSubBucketsLog2;    // 256

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::array<uint64_t, kNumBuckets> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

/// Thread-safe counterpart of Histogram: the same bucket geometry, with
/// every cell a relaxed atomic so any number of threads can Add()
/// concurrently (used for the paper-lock wait-time telemetry, where the
/// recorders are exactly the threads contending with each other).
/// Percentile math stays on the single-threaded class: call Snapshot()
/// to materialize a point-in-time Histogram for reporting. Snapshot and
/// Reset are not linearizable w.r.t. concurrent Adds — intended between
/// benchmark phases or on monotone counters, like StatsCollector.
class AtomicHistogram {
 public:
  AtomicHistogram();

  /// Record one sample (any thread).
  void Add(uint64_t value);

  /// Samples recorded so far.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Point-in-time copy for percentile/mean reporting.
  Histogram Snapshot() const;

  /// Remove all samples.
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets_;
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_;
};

}  // namespace obtree

#endif  // OBTREE_UTIL_HISTOGRAM_H_
