// Copyright 2026 The obtree Authors.

#include "obtree/baseline/lock_coupling_tree.h"

#include <cassert>

namespace obtree {

RwLatchTable::RwLatchTable() : chunks_(kMaxChunks) {
  for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
}

RwLatchTable::~RwLatchTable() {
  for (auto& c : chunks_) delete c.load(std::memory_order_relaxed);
}

std::shared_mutex* RwLatchTable::Latch(PageId id) {
  const size_t chunk_index = id >> kChunkBits;
  assert(chunk_index < kMaxChunks);
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    Chunk* fresh = new Chunk();
    if (chunks_[chunk_index].compare_exchange_strong(
            chunk, fresh, std::memory_order_acq_rel)) {
      chunk = fresh;
    } else {
      delete fresh;  // lost the race; `chunk` holds the winner
    }
  }
  return &chunk->latches[id & (kChunkSize - 1)];
}

LockCouplingTree::LockCouplingTree(const TreeOptions& options)
    : options_(options),
      init_status_(options.Validate()),
      stats_(new StatsCollector()),
      epoch_(new EpochManager()),
      latches_(new RwLatchTable()),
      size_(0) {
  if (!init_status_.ok()) options_ = TreeOptions();
  pager_ = std::make_unique<PageManager>(epoch_.get(), stats_.get());
  pager_->set_simulated_io_ns(options_.simulated_io_ns);
  Result<PageId> root = pager_->Allocate();
  assert(root.ok());
  Page page;
  page.Clear();
  Node* node = page.As<Node>();
  node->Init(0, kMinusInfinity, kPlusInfinity, kInvalidPageId);
  node->set_root(true);
  pager_->Put(*root, page);
  PrimeBlockData pb;
  pb.num_levels = 1;
  pb.leftmost[0] = *root;
  prime_.Write(pb);
}

LockCouplingTree::~LockCouplingTree() = default;

void LockCouplingTree::CountLatch() const {
  stats_->Add(StatId::kLocksAcquired);
}

PageId LockCouplingTree::SplitChild(Page* parent, PageId parent_page,
                                    Page* child, PageId child_page) {
  Node* pn = parent->As<Node>();
  Node* cn = child->As<Node>();
  Result<PageId> right_page = pager_->Allocate();
  assert(right_page.ok());
  Page right_buf;
  Node* right = right_buf.As<Node>();
  cn->SplitInto(right, *right_page);
  const bool ok = pn->InsertChildSplit(cn->high, *right_page);
  assert(ok);
  (void)ok;
  stats_->Add(StatId::kSplits);
  pager_->Put(*right_page, right_buf);
  pager_->Put(child_page, *child);
  pager_->Put(parent_page, *parent);
  return *right_page;
}

PageId LockCouplingTree::AcquireRootForWrite(Page* page) {
  Node* node = page->As<Node>();
  for (;;) {
    const PrimeBlockData pb = prime_.Read();
    const PageId root_page = pb.root();
    latches_->Latch(root_page)->lock();
    CountLatch();
    pager_->Get(root_page, page);
    if (!node->is_root()) {
      latches_->Latch(root_page)->unlock();  // lost a root-split race
      continue;
    }
    if (node->count < options_.capacity() ||
        node->level + 2 > kMaxLevels) {
      return root_page;  // usable as-is (or at the height limit)
    }

    // Preventive root split: the old root splits in place and a new root
    // is published above it while we hold the old root's write latch.
    Result<PageId> right_page = pager_->Allocate();
    Result<PageId> new_root_page = pager_->Allocate();
    assert(right_page.ok() && new_root_page.ok());
    Page right_buf;
    Node* right = right_buf.As<Node>();
    node->SplitInto(right, *right_page);
    node->set_root(false);
    stats_->Add(StatId::kSplits);
    pager_->Put(*right_page, right_buf);
    pager_->Put(root_page, *page);

    Page root_buf;
    Node* new_root = root_buf.As<Node>();
    new_root->Init(static_cast<uint16_t>(node->level + 1), kMinusInfinity,
                   kPlusInfinity, kInvalidPageId);
    new_root->set_root(true);
    new_root->entries[0] = Entry{node->high, root_page};
    new_root->entries[1] = Entry{right->high, *right_page};
    new_root->count = 2;
    pager_->Put(*new_root_page, root_buf);
    PrimeBlockData updated = prime_.Read();
    updated.leftmost[updated.num_levels] = *new_root_page;
    updated.num_levels++;
    prime_.Write(updated);
    stats_->Add(StatId::kRootCreations);
    latches_->Latch(root_page)->unlock();
    // Retry from the new root.
  }
}

Status LockCouplingTree::Insert(Key key, Value value) {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kInserts);
  EpochManager::Guard guard(epoch_.get());

  Page page;
  Node* node = page.As<Node>();
  PageId current = AcquireRootForWrite(&page);

  // Descend with write-latch coupling, splitting full children before
  // stepping into them, so the leaf insert can never propagate upward.
  while (!node->is_leaf()) {
    PageId child_page = node->ChildFor(key);
    latches_->Latch(child_page)->lock();
    CountLatch();
    Page child_buf;
    pager_->Get(child_page, &child_buf);
    Node* child = child_buf.As<Node>();
    if (child->count >= options_.capacity()) {
      const PageId right_page =
          SplitChild(&page, current, &child_buf, child_page);
      if (key > child->high) {
        // The key now belongs to the new right sibling.
        latches_->Latch(right_page)->lock();
        CountLatch();
        latches_->Latch(child_page)->unlock();
        child_page = right_page;
        pager_->Get(child_page, &child_buf);
      }
    }
    latches_->Latch(current)->unlock();
    current = child_page;
    page = child_buf;
  }

  Status result;
  if (node->FindLeafValue(key).has_value()) {
    result = Status::AlreadyExists("key already in the tree");
  } else {
    node->InsertLeafEntry(key, value);
    pager_->Put(current, page);
    size_.fetch_add(1, std::memory_order_relaxed);
  }
  latches_->Latch(current)->unlock();
  return result;
}

Result<Value> LockCouplingTree::Search(Key key) const {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kSearches);
  EpochManager::Guard guard(epoch_.get());

  Page page;
  const Node* node = page.As<Node>();
  PageId current;
  for (;;) {
    const PrimeBlockData pb = prime_.Read();
    current = pb.root();
    latches_->Latch(current)->lock_shared();
    CountLatch();
    pager_->Get(current, &page);
    if (node->is_root()) break;
    latches_->Latch(current)->unlock_shared();
  }
  while (!node->is_leaf()) {
    const PageId child = node->ChildFor(key);
    latches_->Latch(child)->lock_shared();
    CountLatch();
    latches_->Latch(current)->unlock_shared();
    current = child;
    pager_->Get(current, &page);
  }
  std::optional<Value> v = node->FindLeafValue(key);
  latches_->Latch(current)->unlock_shared();
  if (!v.has_value()) return Status::NotFound();
  return *v;
}

Status LockCouplingTree::Delete(Key key) {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kDeletes);
  EpochManager::Guard guard(epoch_.get());

  // Read-couple down to the leaf's parent, then write-latch the leaf (the
  // trivial deletion restructures nothing above it).
  Page page;
  Node* node = page.As<Node>();
  PageId current;
  for (;;) {
    const PrimeBlockData pb = prime_.Read();
    current = pb.root();
    if (pb.num_levels == 1) {
      latches_->Latch(current)->lock();
      CountLatch();
      pager_->Get(current, &page);
      if (node->is_root()) break;
      latches_->Latch(current)->unlock();
      continue;
    }
    latches_->Latch(current)->lock_shared();
    CountLatch();
    pager_->Get(current, &page);
    if (node->is_root()) break;
    latches_->Latch(current)->unlock_shared();
  }
  bool shared = !node->is_leaf();
  while (!node->is_leaf()) {
    const PageId child = node->ChildFor(key);
    const bool child_is_leaf = node->level == 1;
    if (child_is_leaf) {
      latches_->Latch(child)->lock();
    } else {
      latches_->Latch(child)->lock_shared();
    }
    CountLatch();
    latches_->Latch(current)->unlock_shared();
    shared = !child_is_leaf;
    current = child;
    pager_->Get(current, &page);
  }

  Status result;
  if (!node->RemoveLeafEntry(key)) {
    result = Status::NotFound();
  } else {
    pager_->Put(current, page);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (shared) {
    latches_->Latch(current)->unlock_shared();
  } else {
    latches_->Latch(current)->unlock();
  }
  return result;
}

size_t LockCouplingTree::Scan(Key lo, Key hi,
                              const std::function<bool(Key, Value)>& visitor)
    const {
  if (lo < 1) lo = 1;
  if (hi > kMaxUserKey) hi = kMaxUserKey;
  if (lo > hi) return 0;
  stats_->Add(StatId::kSearches);
  EpochManager::Guard guard(epoch_.get());

  // Read-couple down to the first leaf, then latch-couple along the links.
  Page page;
  const Node* node = page.As<Node>();
  PageId current;
  for (;;) {
    const PrimeBlockData pb = prime_.Read();
    current = pb.root();
    latches_->Latch(current)->lock_shared();
    CountLatch();
    pager_->Get(current, &page);
    if (node->is_root()) break;
    latches_->Latch(current)->unlock_shared();
  }
  while (!node->is_leaf()) {
    const PageId child = node->ChildFor(lo);
    latches_->Latch(child)->lock_shared();
    CountLatch();
    latches_->Latch(current)->unlock_shared();
    current = child;
    pager_->Get(current, &page);
  }

  size_t visited = 0;
  Key next_key = lo;
  for (;;) {
    for (uint32_t i = node->LowerBound(next_key); i < node->count; ++i) {
      if (node->entries[i].key > hi) {
        latches_->Latch(current)->unlock_shared();
        return visited;
      }
      ++visited;
      if (!visitor(node->entries[i].key, node->entries[i].value)) {
        latches_->Latch(current)->unlock_shared();
        return visited;
      }
    }
    if (node->high >= hi || node->link == kInvalidPageId) {
      latches_->Latch(current)->unlock_shared();
      return visited;
    }
    next_key = node->high + 1;
    const PageId next = node->link;
    latches_->Latch(next)->lock_shared();
    CountLatch();
    latches_->Latch(current)->unlock_shared();
    current = next;
    pager_->Get(current, &page);
  }
}

}  // namespace obtree
