// Copyright 2026 The obtree Authors.
//
// Baseline: the Lehman-Yao B-link tree (ACM TODS 1981), the algorithm the
// paper improves on. Identical node layout and storage substrate as
// SagivTree; the difference is the insertion ascent: Lehman-Yao holds the
// lock on the just-split child WHILE acquiring (and moving right to) the
// parent, so an insertion holds two locks across the hand-off and three
// transiently during the locked moveright — exactly the "two or three
// nodes" Sagiv's abstract cites. Deletion is the trivial one (remove from
// the leaf, no restructuring); Lehman-Yao has no compression.

#ifndef OBTREE_BASELINE_LEHMAN_YAO_TREE_H_
#define OBTREE_BASELINE_LEHMAN_YAO_TREE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "obtree/core/options.h"
#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/common.h"
#include "obtree/util/epoch.h"
#include "obtree/util/stats.h"
#include "obtree/util/status.h"

namespace obtree {

/// Concurrent B-link tree with the Lehman-Yao locking protocol.
class LehmanYaoTree {
 public:
  explicit LehmanYaoTree(const TreeOptions& options = TreeOptions());
  ~LehmanYaoTree();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(LehmanYaoTree);

  const Status& init_status() const { return init_status_; }

  /// Insert (key, value); AlreadyExists if present.
  Status Insert(Key key, Value value);

  /// Lock-free lookup.
  Result<Value> Search(Key key) const;

  /// Remove a key from its leaf; no restructuring (the [8] deletion).
  Status Delete(Key key);

  /// Ascending range visit over leaf links.
  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, Value)>& visitor) const;

  uint64_t Size() const { return size_.load(std::memory_order_relaxed); }
  uint32_t Height() const { return prime_.Read().num_levels; }

  const TreeOptions& options() const { return options_; }
  StatsCollector* stats() const { return stats_.get(); }
  PageManager* internal_pager() const { return pager_.get(); }
  const PrimeBlock* internal_prime() const { return &prime_; }

 private:
  // Non-locking descent to the leaf whose range holds `key`; stacks the
  // nodes come down through when stack != nullptr.
  PageId Descend(Key key, std::vector<PageId>* stack) const;

  // With `*current` locked and its image in *page: follow links (locking
  // the next node BEFORE unlocking the current one — the Lehman-Yao
  // coupled moveright) until key <= high.
  void MoveRightLocked(Key key, PageId* current, Page* page) const;

  TreeOptions options_;
  Status init_status_;
  std::unique_ptr<StatsCollector> stats_;
  std::unique_ptr<EpochManager> epoch_;
  std::unique_ptr<PageManager> pager_;
  PrimeBlock prime_;
  std::atomic<uint64_t> size_;
};

}  // namespace obtree

#endif  // OBTREE_BASELINE_LEHMAN_YAO_TREE_H_
