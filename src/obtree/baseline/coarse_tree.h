// Copyright 2026 The obtree Authors.
//
// Baseline: the degenerate "one big lock" scheduler — a single tree-wide
// reader/writer lock serializes all updaters and lets readers share. This
// is the zero-concurrency anchor every concurrent-index paper implicitly
// compares against.

#ifndef OBTREE_BASELINE_COARSE_TREE_H_
#define OBTREE_BASELINE_COARSE_TREE_H_

#include <functional>
#include <shared_mutex>

#include "obtree/core/sagiv_tree.h"
#include "obtree/util/common.h"

namespace obtree {

/// SagivTree behind one global reader/writer lock.
class CoarseTree {
 public:
  explicit CoarseTree(const TreeOptions& options = TreeOptions())
      : tree_(options) {}
  OBTREE_DISALLOW_COPY_AND_ASSIGN(CoarseTree);

  const Status& init_status() const { return tree_.init_status(); }

  Status Insert(Key key, Value value) {
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Insert(key, value);
  }

  Result<Value> Search(Key key) const {
    std::shared_lock<std::shared_mutex> l(mu_);
    return tree_.Search(key);
  }

  Status Delete(Key key) {
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Delete(key);
  }

  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, Value)>& visitor) const {
    std::shared_lock<std::shared_mutex> l(mu_);
    return tree_.Scan(lo, hi, visitor);
  }

  uint64_t Size() const { return tree_.Size(); }
  uint32_t Height() const { return tree_.Height(); }

  const TreeOptions& options() const { return tree_.options(); }
  StatsCollector* stats() const { return tree_.stats(); }

  /// The wrapped tree (tests validate its structure directly).
  SagivTree* inner() { return &tree_; }

 private:
  mutable std::shared_mutex mu_;
  SagivTree tree_;
};

}  // namespace obtree

#endif  // OBTREE_BASELINE_COARSE_TREE_H_
