// Copyright 2026 The obtree Authors.
//
// Baseline: a top-down lock-coupling B+-tree in the style of
// Bayer-Schkolnick (Acta Informatica 1977) with preventive splitting.
// Every process — including readers — latches hand-over-hand from the
// root: acquire the child's latch before releasing the parent's. Writers
// split any full node on the way down (so inserts never ascend), taking
// write latches pairwise; readers take shared latches. This represents the
// family of solutions Sagiv's introduction contrasts with: "each process
// (even a reader) must lock every node before accessing it, and only after
// obtaining the lock on the next node it can release the lock on the
// previous node."

#ifndef OBTREE_BASELINE_LOCK_COUPLING_TREE_H_
#define OBTREE_BASELINE_LOCK_COUPLING_TREE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "obtree/core/options.h"
#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/common.h"
#include "obtree/util/epoch.h"
#include "obtree/util/stats.h"
#include "obtree/util/status.h"

namespace obtree {

/// Growable table of per-page reader/writer latches (the multi-mode locks
/// this class of algorithms requires; Sagiv's protocol needs only the
/// single-mode paper lock).
class RwLatchTable {
 public:
  RwLatchTable();
  ~RwLatchTable();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(RwLatchTable);

  /// Latch for page `id`; allocates backing chunks on demand.
  std::shared_mutex* Latch(PageId id);

 private:
  static constexpr size_t kChunkBits = 10;
  static constexpr size_t kChunkSize = 1ull << kChunkBits;
  static constexpr size_t kMaxChunks = 1ull << 14;

  struct Chunk {
    std::shared_mutex latches[kChunkSize];
  };
  std::vector<std::atomic<Chunk*>> chunks_;
};

/// Top-down preventive-split B+-tree with reader/writer lock coupling.
class LockCouplingTree {
 public:
  explicit LockCouplingTree(const TreeOptions& options = TreeOptions());
  ~LockCouplingTree();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(LockCouplingTree);

  const Status& init_status() const { return init_status_; }

  Status Insert(Key key, Value value);
  Result<Value> Search(Key key) const;
  Status Delete(Key key);
  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, Value)>& visitor) const;

  uint64_t Size() const { return size_.load(std::memory_order_relaxed); }
  uint32_t Height() const { return prime_.Read().num_levels; }

  const TreeOptions& options() const { return options_; }
  StatsCollector* stats() const { return stats_.get(); }
  PageManager* internal_pager() const { return pager_.get(); }

 private:
  // Write-latch the root (retrying across concurrent root splits) and
  // split it if full. Returns the latched root's page id with its image in
  // *page.
  PageId AcquireRootForWrite(Page* page);

  // Split the full child at entries[idx] of the write-latched parent.
  // Both images are updated and written; the new sibling's page id is
  // returned. No latches change hands.
  PageId SplitChild(Page* parent, PageId parent_page, Page* child,
                    PageId child_page);

  void CountLatch() const;

  TreeOptions options_;
  Status init_status_;
  std::unique_ptr<StatsCollector> stats_;
  std::unique_ptr<EpochManager> epoch_;
  std::unique_ptr<PageManager> pager_;
  std::unique_ptr<RwLatchTable> latches_;
  PrimeBlock prime_;
  std::atomic<uint64_t> size_;
};

}  // namespace obtree

#endif  // OBTREE_BASELINE_LOCK_COUPLING_TREE_H_
