// Copyright 2026 The obtree Authors.

#include "obtree/baseline/lehman_yao_tree.h"

#include <cassert>
#include <thread>

namespace obtree {

LehmanYaoTree::LehmanYaoTree(const TreeOptions& options)
    : options_(options),
      init_status_(options.Validate()),
      stats_(new StatsCollector()),
      epoch_(new EpochManager()),
      size_(0) {
  if (!init_status_.ok()) options_ = TreeOptions();
  pager_ = std::make_unique<PageManager>(epoch_.get(), stats_.get());
  pager_->set_simulated_io_ns(options_.simulated_io_ns);
  Result<PageId> root = pager_->Allocate();
  assert(root.ok());
  Page page;
  page.Clear();
  Node* node = page.As<Node>();
  node->Init(0, kMinusInfinity, kPlusInfinity, kInvalidPageId);
  node->set_root(true);
  pager_->Put(*root, page);
  PrimeBlockData pb;
  pb.num_levels = 1;
  pb.leftmost[0] = *root;
  prime_.Write(pb);
}

LehmanYaoTree::~LehmanYaoTree() = default;

PageId LehmanYaoTree::Descend(Key key, std::vector<PageId>* stack) const {
  const PrimeBlockData pb = prime_.Read();
  PageId current = pb.root();
  Page page;
  const Node* node = page.As<Node>();
  for (;;) {
    pager_->Get(current, &page);
    if (key > node->high) {
      // Without compression nodes never move left, so plain link chasing
      // (no locks, no restarts) is sufficient.
      stats_->Add(StatId::kLinkFollows);
      current = node->link;
      continue;
    }
    if (node->is_leaf()) return current;
    if (stack != nullptr) stack->push_back(current);
    current = node->ChildFor(key);
  }
}

void LehmanYaoTree::MoveRightLocked(Key key, PageId* current,
                                    Page* page) const {
  Node* node = page->As<Node>();
  while (key > node->high) {
    const PageId next = node->link;
    assert(next != kInvalidPageId);
    pager_->Lock(next);    // lock the neighbor BEFORE releasing this node:
    pager_->Unlock(*current);  // Lehman-Yao lock coupling
    stats_->Add(StatId::kLinkFollows);
    *current = next;
    pager_->Get(*current, page);
  }
}

Status LehmanYaoTree::Insert(Key key, Value value) {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kInserts);
  EpochManager::Guard guard(epoch_.get());

  std::vector<PageId> stack;
  PageId current = Descend(key, &stack);
  pager_->Lock(current);
  Page page;
  pager_->Get(current, &page);
  Node* node = page.As<Node>();
  MoveRightLocked(key, &current, &page);

  if (node->FindLeafValue(key).has_value()) {
    pager_->Unlock(current);
    return Status::AlreadyExists("key already in the tree");
  }

  Key ins_key = key;
  uint64_t down_ptr = value;
  for (;;) {
    if (node->count < options_.capacity()) {
      if (node->is_leaf()) {
        node->InsertLeafEntry(ins_key, static_cast<Value>(down_ptr));
      } else {
        node->InsertChildSplit(ins_key, static_cast<PageId>(down_ptr));
      }
      pager_->Put(current, page);
      pager_->Unlock(current);
      size_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    // Split. Rearrange into A + B, write B then A (B becomes reachable the
    // instant A lands).
    Result<PageId> right_page = pager_->Allocate();
    if (!right_page.ok()) {
      pager_->Unlock(current);
      return right_page.status();
    }
    if (node->is_leaf()) {
      node->InsertLeafEntry(ins_key, static_cast<Value>(down_ptr));
    } else {
      node->InsertChildSplit(ins_key, static_cast<PageId>(down_ptr));
    }
    Page right_buf;
    Node* right = right_buf.As<Node>();
    node->SplitInto(right, *right_page);
    stats_->Add(StatId::kSplits);

    if (node->is_root()) {
      // Root split: build the new root while still holding the old root's
      // lock, then rewrite the prime block.
      if (node->level + 2 > kMaxLevels) {
        pager_->Unlock(current);
        return Status::ResourceExhausted("tree height limit reached");
      }
      node->set_root(false);
      pager_->Put(*right_page, right_buf);
      pager_->Put(current, page);
      Result<PageId> root_page = pager_->Allocate();
      if (!root_page.ok()) {
        pager_->Unlock(current);
        return root_page.status();
      }
      Page root_buf;
      Node* root = root_buf.As<Node>();
      root->Init(static_cast<uint16_t>(node->level + 1), kMinusInfinity,
                 kPlusInfinity, kInvalidPageId);
      root->set_root(true);
      root->entries[0] = Entry{node->high, current};
      root->entries[1] = Entry{right->high, *right_page};
      root->count = 2;
      pager_->Put(*root_page, root_buf);
      PrimeBlockData pb = prime_.Read();
      pb.leftmost[pb.num_levels] = *root_page;
      pb.num_levels++;
      prime_.Write(pb);
      stats_->Add(StatId::kRootCreations);
      pager_->Unlock(current);
      size_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    pager_->Put(*right_page, right_buf);
    pager_->Put(current, page);

    // THE Lehman-Yao hand-off: keep the child locked while locking and
    // moving right at the parent level, and only then release the child.
    // This is what makes an inserter hold 2-3 locks simultaneously and is
    // precisely what Sagiv's overtaking argument removes.
    const PageId old_node = current;
    ins_key = node->high;
    down_ptr = *right_page;
    const uint32_t next_level = node->level + 1;

    if (!stack.empty()) {
      current = stack.back();
      stack.pop_back();
    } else {
      for (;;) {
        const PrimeBlockData pb = prime_.Read();
        if (pb.num_levels > next_level) {
          current = pb.leftmost[next_level];
          break;
        }
        std::this_thread::yield();
      }
    }
    pager_->Lock(current);
    pager_->Get(current, &page);
    MoveRightLocked(ins_key, &current, &page);
    pager_->Unlock(old_node);
  }
}

Result<Value> LehmanYaoTree::Search(Key key) const {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kSearches);
  EpochManager::Guard guard(epoch_.get());
  const PageId leaf = Descend(key, nullptr);
  Page page;
  pager_->Get(leaf, &page);
  const Node* node = page.As<Node>();
  // The leaf may have split between Descend and Get; chase links.
  PageId current = leaf;
  while (key > node->high) {
    current = node->link;
    stats_->Add(StatId::kLinkFollows);
    pager_->Get(current, &page);
  }
  std::optional<Value> v = node->FindLeafValue(key);
  if (!v.has_value()) return Status::NotFound();
  return *v;
}

Status LehmanYaoTree::Delete(Key key) {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kDeletes);
  EpochManager::Guard guard(epoch_.get());
  PageId current = Descend(key, nullptr);
  pager_->Lock(current);
  Page page;
  pager_->Get(current, &page);
  Node* node = page.As<Node>();
  MoveRightLocked(key, &current, &page);
  if (!node->RemoveLeafEntry(key)) {
    pager_->Unlock(current);
    return Status::NotFound();
  }
  pager_->Put(current, page);
  pager_->Unlock(current);
  size_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

size_t LehmanYaoTree::Scan(Key lo, Key hi,
                           const std::function<bool(Key, Value)>& visitor)
    const {
  if (lo < 1) lo = 1;
  if (hi > kMaxUserKey) hi = kMaxUserKey;
  if (lo > hi) return 0;
  stats_->Add(StatId::kSearches);
  EpochManager::Guard guard(epoch_.get());

  PageId current = Descend(lo, nullptr);
  Page page;
  const Node* node = page.As<Node>();
  size_t visited = 0;
  Key next_key = lo;
  for (;;) {
    pager_->Get(current, &page);
    if (next_key > node->high) {
      current = node->link;
      if (current == kInvalidPageId) return visited;
      continue;
    }
    for (uint32_t i = node->LowerBound(next_key); i < node->count; ++i) {
      if (node->entries[i].key > hi) return visited;
      ++visited;
      if (!visitor(node->entries[i].key, node->entries[i].value)) {
        return visited;
      }
    }
    if (node->high >= hi || node->link == kInvalidPageId) return visited;
    next_key = node->high + 1;
    current = node->link;
  }
}

}  // namespace obtree
