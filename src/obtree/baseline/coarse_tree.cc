// Copyright 2026 The obtree Authors.
//
// CoarseTree is header-only; this translation unit anchors the target.

#include "obtree/baseline/coarse_tree.h"

namespace obtree {}  // namespace obtree
