// Copyright 2026 The obtree Authors.
//
// On-page layout and manipulation of B-link nodes (Section 2.1).
//
// A node stores, in one page:
//   * its level (0 = leaf), flags (root / deleted), entry count;
//   * its low value v0 (explicitly stored — required by the compression
//     protocol, Section 5.1) and high value v_{i+1};
//   * its link pointer p_{i+1} (right neighbor at the same level);
//   * a merge pointer, set when the node is deleted, naming the node its
//     data was merged into (the reader-recovery device of Section 5.2);
//   * a sorted array of (key, value) entries.
//
// Entry semantics differ by level:
//   * Leaf: (v, p) — p is the record handle for key v.
//   * Internal: (u, c) — c is the child page covering the key range
//     (prev_u, u]; i.e. u is the HIGH VALUE of child c. This is exactly the
//     paper's observation (Fig. 2) that level i+1 replays the sequence of
//     (high value, link) pairs of level i. The paper's layout
//     p0 v1 p1 ... vi pi with p_j covering (v_j, v_{j+1}] is isomorphic:
//     our entry j is (v_{j+1}, p_j). A consequence used throughout: an
//     internal node's high value equals its last entry's key.

#ifndef OBTREE_NODE_NODE_H_
#define OBTREE_NODE_NODE_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

#include "obtree/storage/page.h"
#include "obtree/util/common.h"

namespace obtree {

/// One (key, value/child) slot of a node.
struct Entry {
  Key key;
  uint64_t value;
};
static_assert(sizeof(Entry) == 16);

/// Node flag bits.
enum NodeFlags : uint16_t {
  kNodeFlagRoot = 1u << 0,     ///< the root bit of Section 3.3
  kNodeFlagDeleted = 1u << 1,  ///< the deletion bit of Section 5.1
};

/// POD image of a node; occupies the front of a Page.
struct Node {
  // --- header -----------------------------------------------------------
  uint16_t level;        ///< 0 for leaves
  uint16_t flags;        ///< NodeFlags
  uint32_t count;        ///< number of live entries
  Key low;               ///< v0: high value of the left neighbor, or 0
  Key high;              ///< v_{i+1}: largest key in this subtree
  PageId link;           ///< right neighbor, kInvalidPageId for rightmost
  PageId merge_target;   ///< where the data went when deleted
  // --- entries ----------------------------------------------------------
  static constexpr size_t kHeaderSize = 32;
  static constexpr size_t kMaxEntries = (kPageSize - kHeaderSize) / sizeof(Entry);

  Entry entries[kMaxEntries];

  // --- predicates ---------------------------------------------------------
  bool is_leaf() const { return level == 0; }
  bool is_root() const { return flags & kNodeFlagRoot; }
  bool is_deleted() const { return flags & kNodeFlagDeleted; }

  void set_root(bool on) {
    flags = on ? (flags | kNodeFlagRoot)
               : static_cast<uint16_t>(flags & ~kNodeFlagRoot);
  }
  void set_deleted(PageId target) {
    flags |= kNodeFlagDeleted;
    merge_target = target;
  }

  /// Initialize an empty node.
  void Init(uint16_t lvl, Key low_value, Key high_value, PageId link_ptr) {
    level = lvl;
    flags = 0;
    count = 0;
    low = low_value;
    high = high_value;
    link = link_ptr;
    merge_target = kInvalidPageId;
  }

  // --- searching ----------------------------------------------------------

  /// Index of the first entry with key >= k; count if none.
  uint32_t LowerBound(Key k) const;

  /// Leaf only: the value stored for key k, if present.
  std::optional<Value> FindLeafValue(Key k) const;

  /// Internal only: the child covering key k. Requires k <= high (caller
  /// must have handled the link case) and count > 0.
  PageId ChildFor(Key k) const;

  /// The paper's next(A, v): where a search for v proceeds from this node.
  struct NextStep {
    bool is_link;    ///< true: follow the link (v > high value)
    PageId page;     ///< destination (kInvalidPageId if link is nil)
  };
  NextStep Next(Key k) const;

  // --- leaf updates -------------------------------------------------------

  /// Insert (k, v) preserving order. Precondition: k absent, count <
  /// kMaxEntries (the tree enforces 2k-capacity before calling).
  void InsertLeafEntry(Key k, Value v);

  /// Remove key k. Returns false if absent.
  bool RemoveLeafEntry(Key k);

  // --- in-place updates (under a PageManager::WriteGuard) -----------------
  //
  // Store-side counterparts of NodeView: they mutate the LIVE page image
  // while concurrent optimistic readers probe it, so every store goes
  // through a relaxed word-sized atomic (PageStoreWord). The seqlock —
  // held odd by the caller's WriteGuard for the duration — is what makes
  // the relaxed stores safe: any reader racing them observes a moved
  // version and discards what it saw. The caller must also hold the paper
  // lock (sole-mutator invariant), which is why the PLAIN reads these
  // methods do (binary search, shift sources) are race-free.
  //
  // Each returns the number of bytes stored — the write-path bytes-moved
  // stats — with 0 meaning "no change" (separator already present).
  // Compare >= 8 KB for the copy path's Get + Put cycle.

  /// In-place InsertLeafEntry: shifts the tail up one slot back-to-front
  /// and publishes the new count last. Same preconditions.
  size_t InsertLeafEntryInPlace(Key k, Value v);

  /// In-place append of (k, v) past the current last entry: no tail shift
  /// at all — two word stores into the slot at index count, then the new
  /// count published last (a racing optimistic reader either sees the old
  /// count and ignores the slot, or a moved seqlock version and discards
  /// everything). The rightmost-insert fast path's leaf primitive.
  /// Preconditions: leaf, count < kMaxEntries, and k greater than every
  /// stored key (k > entries[count-1].key, or any k when empty).
  size_t AppendLeafEntryInPlace(Key k, Value v);

  /// In-place RemoveLeafEntry, by index: the caller already located the
  /// entry (LowerBound under the same lock), so the removal does not
  /// repeat the search. Shifts the tail down one slot front-to-back.
  /// Precondition: i < count.
  size_t RemoveLeafEntryAtInPlace(uint32_t i);

  /// In-place value overwrite of an existing leaf entry (the Upsert
  /// replace case): a single word store, no shifting, count unchanged.
  /// Precondition: i < count.
  size_t SetLeafValueAtInPlace(uint32_t i, Value v);

  /// In-place InsertChildSplit. Same preconditions; returns 0 (no change)
  /// only if sep is already present.
  size_t InsertChildSplitInPlace(Key sep, PageId new_child);

  /// In-place header update: publish a new entry count (relaxed 32-bit
  /// atomic store). The count is stored LAST by the insert/remove
  /// primitives so a torn image never claims entries that were not yet
  /// shifted into place — NodeView clamps, the seqlock discards.
  void StoreCountInPlace(uint32_t c) { PageStoreWord32(&count, c); }

  // --- internal updates ----------------------------------------------------

  /// Record a child split in this (parent) node: some child split at
  /// separator sep, handing keys > sep to `new_child`. Implements the
  /// paper's "insert the pair (v', p') immediately to the left of the
  /// smallest key u such that v' < u": in entry form, the successor entry
  /// (u, c) keeps key u but its child becomes new_child, and a new entry
  /// (sep, c) takes over the left part of c's old range. Under overtaking,
  /// c is not necessarily the node that split — it may be a node further
  /// left whose own split has not been posted yet; searches then recover
  /// through links exactly as Theorem 1's validity assertion describes.
  /// Requires low < sep <= high and count < kMaxEntries. Returns false
  /// (no change) only if sep is already present (protocol violation,
  /// checked defensively).
  bool InsertChildSplit(Key sep, PageId new_child);

  /// Remove the entry (old_sep -> left_child) and repoint the successor
  /// entry (right_high -> right_child) to left_child. Records a merge of
  /// right_child into left_child. Returns false if the layout does not
  /// match (caller re-validates).
  bool ApplyChildMerge(Key old_sep, PageId left_child, PageId right_child);

  /// Replace the separator of `child` (currently old_sep) with new_sep,
  /// after a redistribution changed the child's high value. Returns false
  /// if (old_sep -> child) is not present.
  bool ApplyChildSeparatorChange(Key old_sep, Key new_sep, PageId child);

  /// Index of the entry whose child pointer equals `child`; -1 if absent.
  int FindChildIndex(PageId child) const;

  // --- restructuring -------------------------------------------------------

  /// Split this (full) node: keep the first `keep` entries here, move the
  /// rest to *right (which must be a fresh node at page `right_page`).
  /// Afterwards this->high is the largest remaining key (leaf) / last
  /// upper bound (internal), and this->link points at right_page. Works
  /// for leaves and internal nodes alike. keep = 0 (the default) splits at
  /// the midpoint, keeping the ceiling half on the left; a caller-chosen
  /// keep in [1, count-1] supports the tail-biased splits of the
  /// append-optimized path (keep = count-1 leaves the old rightmost node
  /// ~full and seeds the new rightmost with a single entry).
  void SplitInto(Node* right, PageId right_page, uint32_t keep = 0);

  /// Absorb the right sibling `right` (all entries appended; high and link
  /// taken from right). Caller marks `right` deleted.
  void MergeFromRight(const Node& right);

  /// Move entries between this node and its right sibling so both end with
  /// >= min_entries (caller guarantees combined count allows it). Updates
  /// this->high and right->low to the new separator. Returns the new
  /// separator (new high value of this node).
  Key RedistributeWithRight(Node* right, uint32_t min_entries);

  /// Debug rendering: "[L0 n=5 low=.. high=.. link=..]".
  std::string DebugString() const;
};

static_assert(sizeof(Node) <= kPageSize, "Node must fit a page");
static_assert(Node::kMaxEntries == 254);

/// Read-only view over a node image that may be concurrently rewritten —
/// the optimistic in-place read path (PageManager::OptimisticRead). Every
/// access goes through relaxed word-sized atomic loads so a racing Put
/// stays defined behavior, and every value read may be torn garbage until
/// the caller validates the page version. The search entry points are
/// therefore total and bounded on ANY bit pattern: count is clamped, the
/// binary search cannot run away, no method chases a pointer, and
/// inconsistent images surface as kInvalidPageId / nullopt instead of
/// asserts. Nothing read through a NodeView may be trusted before
/// ReadGuard::Validate() returns true.
class NodeView {
 public:
  explicit NodeView(const Node* node) : node_(node) {}

  uint16_t level() const { return Load16(&node_->level); }
  uint16_t flags() const { return Load16(&node_->flags); }
  bool is_leaf() const { return level() == 0; }
  bool is_root() const { return flags() & kNodeFlagRoot; }
  bool is_deleted() const { return flags() & kNodeFlagDeleted; }

  /// Entry count clamped to kMaxEntries (a torn count must not widen any
  /// loop past the entry array).
  uint32_t count() const {
    const uint32_t c = Load32(&node_->count);
    return c <= Node::kMaxEntries ? c
                                  : static_cast<uint32_t>(Node::kMaxEntries);
  }

  Key low() const { return Load64(&node_->low); }
  Key high() const { return Load64(&node_->high); }
  PageId link() const { return Load32(&node_->link); }
  PageId merge_target() const { return Load32(&node_->merge_target); }

  Key entry_key(uint32_t i) const { return Load64(&node_->entries[i].key); }
  uint64_t entry_value(uint32_t i) const {
    return Load64(&node_->entries[i].value);
  }

  /// Index of the first entry with key >= k; count() if none. Bounded on
  /// torn images (at most log2(kMaxEntries) probes).
  uint32_t LowerBound(Key k) const;

  /// The value stored for key k in a leaf image, if present.
  std::optional<Value> FindLeafValue(Key k) const;

  /// The child covering key k in an internal image, or kInvalidPageId
  /// when the image is inconsistent (empty node or k past the last
  /// entry). Callers must treat kInvalidPageId as a validation failure —
  /// never follow it. (The full next(A, v) evaluation over a view — which
  /// must also honor the deletion bit and merge pointer — lives in
  /// SagivTree's RouteForKey.)
  PageId ChildFor(Key k) const;

 private:
  static uint16_t Load16(const uint16_t* p) {
    return __atomic_load_n(p, __ATOMIC_RELAXED);
  }
  static uint32_t Load32(const uint32_t* p) {
    return __atomic_load_n(p, __ATOMIC_RELAXED);
  }
  static uint64_t Load64(const uint64_t* p) {
    return __atomic_load_n(p, __ATOMIC_RELAXED);
  }

  const Node* node_;
};

/// Bytes of a page image that are meaningful for a node with `count`
/// entries (header + entries). Used to bound copy sizes.
inline size_t NodeBytes(uint32_t count) {
  return Node::kHeaderSize + static_cast<size_t>(count) * sizeof(Entry);
}

}  // namespace obtree

#endif  // OBTREE_NODE_NODE_H_
