// Copyright 2026 The obtree Authors.

#include "obtree/node/node.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace obtree {

uint32_t Node::LowerBound(Key k) const {
  // Branchless binary search over the sorted entry array.
  uint32_t lo = 0;
  uint32_t hi = count;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (entries[mid].key < k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<Value> Node::FindLeafValue(Key k) const {
  assert(is_leaf());
  const uint32_t i = LowerBound(k);
  if (i < count && entries[i].key == k) return entries[i].value;
  return std::nullopt;
}

PageId Node::ChildFor(Key k) const {
  assert(!is_leaf());
  assert(count > 0);
  const uint32_t i = LowerBound(k);
  assert(i < count);  // guaranteed by k <= high == entries[count-1].key
  return static_cast<PageId>(entries[i].value);
}

Node::NextStep Node::Next(Key k) const {
  if (k > high) return NextStep{true, link};
  if (is_leaf()) return NextStep{false, kInvalidPageId};
  return NextStep{false, ChildFor(k)};
}

void Node::InsertLeafEntry(Key k, Value v) {
  assert(is_leaf());
  assert(count < kMaxEntries);
  const uint32_t i = LowerBound(k);
  assert(i == count || entries[i].key != k);
  std::memmove(&entries[i + 1], &entries[i],
               (count - i) * sizeof(Entry));
  entries[i] = Entry{k, v};
  count++;
}

bool Node::RemoveLeafEntry(Key k) {
  assert(is_leaf());
  const uint32_t i = LowerBound(k);
  if (i >= count || entries[i].key != k) return false;
  std::memmove(&entries[i], &entries[i + 1],
               (count - i - 1) * sizeof(Entry));
  count--;
  return true;
}

size_t Node::InsertLeafEntryInPlace(Key k, Value v) {
  assert(is_leaf());
  assert(count < kMaxEntries);
  const uint32_t n = count;
  const uint32_t i = LowerBound(k);
  assert(i == n || entries[i].key != k);
  for (uint32_t j = n; j > i; --j) {
    PageStoreWord(&entries[j].key, entries[j - 1].key);
    PageStoreWord(&entries[j].value, entries[j - 1].value);
  }
  PageStoreWord(&entries[i].key, k);
  PageStoreWord(&entries[i].value, v);
  StoreCountInPlace(n + 1);
  return (n - i + 1) * sizeof(Entry) + sizeof(count);
}

size_t Node::AppendLeafEntryInPlace(Key k, Value v) {
  assert(is_leaf());
  assert(count < kMaxEntries);
  const uint32_t n = count;
  assert(n == 0 || entries[n - 1].key < k);
  PageStoreWord(&entries[n].key, k);
  PageStoreWord(&entries[n].value, v);
  StoreCountInPlace(n + 1);
  return sizeof(Entry) + sizeof(count);
}

size_t Node::RemoveLeafEntryAtInPlace(uint32_t i) {
  assert(is_leaf());
  const uint32_t n = count;
  assert(i < n);
  for (uint32_t j = i; j + 1 < n; ++j) {
    PageStoreWord(&entries[j].key, entries[j + 1].key);
    PageStoreWord(&entries[j].value, entries[j + 1].value);
  }
  StoreCountInPlace(n - 1);
  return (n - i - 1) * sizeof(Entry) + sizeof(count);
}

size_t Node::SetLeafValueAtInPlace(uint32_t i, Value v) {
  assert(is_leaf());
  assert(i < count);
  PageStoreWord(&entries[i].value, v);
  return sizeof(uint64_t);
}

size_t Node::InsertChildSplitInPlace(Key sep, PageId new_child) {
  assert(!is_leaf());
  assert(count > 0);
  assert(count < kMaxEntries);
  assert(sep > low && sep <= high);
  const uint32_t n = count;
  const uint32_t i = LowerBound(sep);
  assert(i < n);  // sep <= high == entries[count-1].key
  if (entries[i].key == sep) return 0;
  const uint64_t left_child = entries[i].value;
  for (uint32_t j = n; j > i; --j) {
    PageStoreWord(&entries[j].key, entries[j - 1].key);
    PageStoreWord(&entries[j].value, entries[j - 1].value);
  }
  PageStoreWord(&entries[i].key, sep);
  PageStoreWord(&entries[i].value, left_child);
  PageStoreWord(&entries[i + 1].value, new_child);
  StoreCountInPlace(n + 1);
  return (n - i + 1) * sizeof(Entry) + sizeof(uint64_t) + sizeof(count);
}

bool Node::InsertChildSplit(Key sep, PageId new_child) {
  assert(!is_leaf());
  assert(count > 0);
  assert(count < kMaxEntries);
  assert(sep > low && sep <= high);
  const uint32_t i = LowerBound(sep);
  assert(i < count);  // sep <= high == entries[count-1].key
  if (entries[i].key == sep) return false;
  const uint64_t left_child = entries[i].value;
  std::memmove(&entries[i + 1], &entries[i],
               (count - i) * sizeof(Entry));
  entries[i] = Entry{sep, left_child};
  entries[i + 1].value = new_child;
  count++;
  return true;
}

int Node::FindChildIndex(PageId child) const {
  assert(!is_leaf());
  for (uint32_t i = 0; i < count; ++i) {
    if (static_cast<PageId>(entries[i].value) == child) return static_cast<int>(i);
  }
  return -1;
}

bool Node::ApplyChildMerge(Key old_sep, PageId left_child,
                           PageId right_child) {
  assert(!is_leaf());
  const uint32_t i = LowerBound(old_sep);
  if (i + 1 >= count) return false;
  if (entries[i].key != old_sep ||
      static_cast<PageId>(entries[i].value) != left_child ||
      static_cast<PageId>(entries[i + 1].value) != right_child) {
    return false;
  }
  // Delete (old_sep -> left) and let the successor (right_high -> right)
  // become (right_high -> left): left now covers the union range.
  entries[i + 1].value = left_child;
  std::memmove(&entries[i], &entries[i + 1],
               (count - i - 1) * sizeof(Entry));
  count--;
  return true;
}

bool Node::ApplyChildSeparatorChange(Key old_sep, Key new_sep, PageId child) {
  assert(!is_leaf());
  const uint32_t i = LowerBound(old_sep);
  if (i >= count || entries[i].key != old_sep ||
      static_cast<PageId>(entries[i].value) != child) {
    return false;
  }
  // Order must be preserved: new_sep stays between the neighbors.
  if (i > 0 && entries[i - 1].key >= new_sep) return false;
  if (i + 1 < count && entries[i + 1].key <= new_sep) return false;
  entries[i].key = new_sep;
  return true;
}

void Node::SplitInto(Node* right, PageId right_page, uint32_t keep) {
  assert(count >= 2);
  if (keep == 0) {
    // Keep the ceiling half on the left: splitting 2k+1 entries must leave
    // BOTH halves strictly below capacity, or ascending insertions at k=1
    // re-split the (full) right node on every insert and the tree grows one
    // level per insertion.
    keep = count - count / 2;
  }
  assert(keep >= 1 && keep < count);
  const uint32_t move = count - keep;

  right->Init(level, /*low=*/entries[keep - 1].key, /*high=*/high, link);
  std::memcpy(right->entries, &entries[keep], move * sizeof(Entry));
  right->count = move;

  count = keep;
  high = entries[keep - 1].key;
  link = right_page;
}

void Node::MergeFromRight(const Node& right) {
  assert(level == right.level);
  assert(count + right.count <= kMaxEntries);
  std::memcpy(&entries[count], right.entries, right.count * sizeof(Entry));
  count += right.count;
  high = right.high;
  link = right.link;
}

Key Node::RedistributeWithRight(Node* right, uint32_t min_entries) {
  assert(level == right->level);
  const uint32_t total = count + right->count;
  assert(total >= 2 * min_entries);
  (void)min_entries;
  // Split the combined run as evenly as possible.
  const uint32_t new_left = total / 2;
  if (new_left > count) {
    // Shift the head of right into this node.
    const uint32_t move = new_left - count;
    std::memcpy(&entries[count], right->entries, move * sizeof(Entry));
    std::memmove(right->entries, &right->entries[move],
                 (right->count - move) * sizeof(Entry));
    count = new_left;
    right->count -= move;
  } else if (new_left < count) {
    // Shift the tail of this node into right.
    const uint32_t move = count - new_left;
    std::memmove(&right->entries[move], right->entries,
                 right->count * sizeof(Entry));
    std::memcpy(right->entries, &entries[new_left], move * sizeof(Entry));
    right->count += move;
    count = new_left;
  }
  const Key sep = entries[count - 1].key;
  high = sep;
  right->low = sep;
  return sep;
}

uint32_t NodeView::LowerBound(Key k) const {
  uint32_t lo = 0;
  uint32_t hi = count();  // clamped: the search stays inside the array
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (entry_key(mid) < k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<Value> NodeView::FindLeafValue(Key k) const {
  const uint32_t i = LowerBound(k);
  if (i < count() && entry_key(i) == k) return entry_value(i);
  return std::nullopt;
}

PageId NodeView::ChildFor(Key k) const {
  const uint32_t i = LowerBound(k);
  // On a consistent internal image k <= high == entries[count-1].key
  // guarantees i < count; a torn image may violate that, so report the
  // inconsistency instead of reading past the live entries.
  if (i >= count()) return kInvalidPageId;
  return static_cast<PageId>(entry_value(i));
}

std::string Node::DebugString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "[L%u n=%u low=%llu high=%llu link=%u%s%s%s]", level, count,
                static_cast<unsigned long long>(low),
                static_cast<unsigned long long>(high), link,
                is_root() ? " root" : "", is_deleted() ? " deleted" : "",
                is_leaf() ? " leaf" : "");
  return buf;
}

}  // namespace obtree
