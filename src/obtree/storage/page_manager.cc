// Copyright 2026 The obtree Authors.

#include "obtree/storage/page_manager.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

namespace obtree {

namespace {

// Paper-lock depth of the calling thread. A thread interacts with one tree
// at a time in all our protocols, so a single per-thread counter suffices
// to validate the "locks held simultaneously" claims.
thread_local int tl_locks_held = 0;

// Prepaid simulated-I/O credits deposited by PrefetchPages and consumed
// by the next MaybeSimulateIo calls on this thread (one credit = one
// skipped sleep, because the group's waits were already issued together).
// Scoped by PageManager::IoBatchScope so credits never outlive the batch
// that paid for them.
thread_local uint64_t tl_io_credits = 0;

// Word-granular copy. The seqlock retry loop discards torn reads; copying
// through relaxed word-sized atomic accesses (PageLoadWord/PageStoreWord,
// shared with Node's in-place mutation primitives) keeps the concurrent
// access well-defined.
void AtomicCopyOut(const uint8_t* src, uint8_t* dst, size_t bytes) {
  const auto* s = reinterpret_cast<const uint64_t*>(src);
  auto* d = reinterpret_cast<uint64_t*>(dst);
  const size_t words = bytes / 8;
  for (size_t i = 0; i < words; ++i) {
    d[i] = PageLoadWord(&s[i]);
  }
}

void AtomicCopyIn(const uint8_t* src, uint8_t* dst, size_t bytes) {
  const auto* s = reinterpret_cast<const uint64_t*>(src);
  auto* d = reinterpret_cast<uint64_t*>(dst);
  const size_t words = bytes / 8;
  for (size_t i = 0; i < words; ++i) {
    PageStoreWord(&d[i], s[i]);
  }
}

// Zero a page with the same word-granular atomic stores as AtomicCopyIn:
// optimistic readers may still be probing a page while its reuse zeroes
// it, and a plain memset racing those atomic loads would be undefined.
void AtomicZero(uint8_t* dst) {
  auto* d = reinterpret_cast<uint64_t*>(dst);
  for (size_t i = 0; i < kPageSize / 8; ++i) {
    PageStoreWord(&d[i], 0);
  }
}

}  // namespace

PageManager::PageManager(EpochManager* epoch, StatsCollector* stats)
    : epoch_(epoch), stats_(stats), chunks_(kMaxChunks), next_fresh_(0) {
  assert(epoch != nullptr && stats != nullptr);
  for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
}

PageManager::~PageManager() {
  // Drop our share of the shared trap gate if a hook is still installed.
  if (test_hook_ != nullptr) FaultInjector::ReleaseTrapRef();
  for (auto& c : chunks_) {
    delete c.load(std::memory_order_relaxed);
  }
}

bool PageManager::TrapSlow(const char* op, PageId id,
                           bool error_eligible) const {
  if (has_test_hook_.load(std::memory_order_acquire)) test_hook_(op, id);
  const FaultOutcome f =
      FaultInjector::Instance().Evaluate(op, error_eligible);
  if (f.inject_error) stats_->Add(StatId::kFaultsInjected);
  return f.inject_error;
}

PageManager::Slot* PageManager::SlotFor(PageId id) const {
  Chunk* chunk =
      chunks_[id >> kChunkBits].load(std::memory_order_acquire);
  assert(chunk != nullptr);
  return &chunk->slots[id & (kChunkSize - 1)];
}

void PageManager::EnsureChunk(size_t chunk_index) {
  if (chunks_[chunk_index].load(std::memory_order_acquire) != nullptr) return;
  Chunk* fresh = new Chunk();
  Chunk* expected = nullptr;
  if (!chunks_[chunk_index].compare_exchange_strong(
          expected, fresh, std::memory_order_acq_rel)) {
    delete fresh;  // another allocator won the race
  }
}

Result<PageId> PageManager::Allocate() {
  if (MaybeTrap("alloc", kInvalidPageId, /*error_eligible=*/true)) {
    // Protocol error paths (split/root-creation failures) already unlock
    // everything and leave the tree valid — the allocation-budget tests
    // prove it; this site exercises the same paths probabilistically.
    return Status::Unavailable("injected allocation fault");
  }
  int64_t budget = allocation_budget_.load(std::memory_order_relaxed);
  if (budget >= 0) {
    for (;;) {
      if (budget == 0) {
        return Status::ResourceExhausted("injected allocation failure");
      }
      if (allocation_budget_.compare_exchange_weak(
              budget, budget - 1, std::memory_order_relaxed)) {
        break;
      }
      if (budget < 0) break;  // reset to unlimited concurrently
    }
  }
  {
    std::lock_guard<std::mutex> l(alloc_mu_);
    if (free_list_.empty()) {
      // Opportunistically harvest retired pages before growing the arena.
      Timestamp min_active = epoch_->MinActive();
      std::lock_guard<std::mutex> r(retired_mu_);
      while (!retired_.empty() && retired_.front().time < min_active) {
        free_list_.push_back(retired_.front().id);
        retired_.pop_front();
        stats_->Add(StatId::kNodesReclaimed);
      }
    }
    if (!free_list_.empty()) {
      PageId id = free_list_.back();
      free_list_.pop_back();
      Slot* slot = SlotFor(id);
      // Zero the reused page under the seqlock so no reader sees a blend of
      // the dead node and the new one.
      uint64_t seq = slot->seq.fetch_add(1, std::memory_order_acq_rel);
      (void)seq;
      AtomicZero(slot->page.bytes);
      slot->seq.fetch_add(1, std::memory_order_release);
      return id;
    }
  }
  const uint32_t id = next_fresh_.fetch_add(1, std::memory_order_acq_rel);
  const size_t chunk_index = id >> kChunkBits;
  if (chunk_index >= kMaxChunks) {
    return Status::ResourceExhausted("page arena exhausted");
  }
  EnsureChunk(chunk_index);
  return static_cast<PageId>(id);
}

void PageManager::MaybeSimulateIo() const {
  const uint64_t ns = simulated_io_ns_.load(std::memory_order_relaxed);
  if (ns == 0) return;
  if (tl_io_credits > 0) {
    // This access's wait was already issued with its group's leader
    // (PrefetchPages); consuming the credit is the "completion" side.
    --tl_io_credits;
    return;
  }
  // A real sleep (not a spin) so other threads overlap their "I/O" —
  // the property the 1985 disk-resident model gives concurrent protocols.
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

uint64_t PageManager::PrefetchPages(const PageId* ids, size_t n) const {
  (void)ids;  // a real PageStore backend would post the reads here
  if (n == 0) return 0;
  const uint64_t ns = simulated_io_ns_.load(std::memory_order_relaxed);
  if (ns == 0) return 0;
  // One latency covers the whole group: n reads posted in parallel
  // complete after max(latency_i) ~= one device latency, not the sum.
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  tl_io_credits += n;
  const uint64_t overlapped = static_cast<uint64_t>(n) - 1;
  if (overlapped > 0) stats_->Add(StatId::kBatchIoOverlapped, overlapped);
  return overlapped;
}

PageManager::IoBatchScope::IoBatchScope() : saved_(tl_io_credits) {}

PageManager::IoBatchScope::~IoBatchScope() { tl_io_credits = saved_; }

Status PageManager::Get(PageId id, Page* out) const {
  if (MaybeTrap("get", id, /*error_eligible=*/tl_locks_held == 0)) {
    // Injected fetch failure: hand back an inert zeroed image so a caller
    // that ignores the status decodes an empty node (restart / no-op),
    // never stale garbage. `out` is caller-private; plain stores suffice.
    std::memset(out->bytes, 0, kPageSize);
    return Status::Unavailable("injected page-fetch failure");
  }
  MaybeSimulateIo();
  Slot* slot = SlotFor(id);
  for (;;) {
    const uint64_t s1 = slot->seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // a put is in flight
    AtomicCopyOut(slot->page.bytes, out->bytes, kPageSize);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t s2 = slot->seq.load(std::memory_order_relaxed);
    if (s1 == s2) break;
  }
  stats_->Add(StatId::kGets);
  return Status::OK();
}

PageManager::ReadGuard PageManager::OptimisticRead(PageId id) const {
  if (MaybeTrap("get", id, /*error_eligible=*/tl_locks_held == 0)) {
    // Injected fetch failure: an invalid guard, which the optimistic read
    // paths already treat as a torn read (retry, then copy fallback).
    return ReadGuard();
  }
  MaybeSimulateIo();
  const Slot* slot = SlotFor(id);
  const uint64_t version = slot->seq.load(std::memory_order_acquire);
  stats_->Add(StatId::kGets);
  return ReadGuard(&slot->seq, &slot->page, version);
}

PageManager::ReadGuard PageManager::PeekLocked(PageId id) const {
  // Same acquisition and accounting as any other in-place read; the
  // separate entry point exists for its distinct contract (see header).
  return OptimisticRead(id);
}

PageManager::WriteGuard PageManager::BeginWrite(PageId id) {
  // Fire the "put" hook BEFORE taking the seqlock odd, mirroring Put: a
  // test pausing a writer here holds the paper lock but leaves the page
  // readable (the storage-model property the interleaving tests assert).
  MaybeTrap("put", id, /*error_eligible=*/false);
  assert(LocksHeldByThisThread() > 0);  // the paper lock is the mutator license
  Slot* slot = SlotFor(id);
  // The caller's paper lock excludes every Put/BeginWrite on this page;
  // only an in-flight reuse of a STALE page could hold the seq odd, and
  // the acquire discipline (validate as live under the lock first) rules
  // that out. The CAS loop is defensive.
  uint64_t seq = slot->seq.load(std::memory_order_relaxed);
  for (;;) {
    if ((seq & 1) == 0 &&
        slot->seq.compare_exchange_weak(seq, seq + 1,
                                        std::memory_order_acq_rel)) {
      break;
    }
  }
  stats_->Add(StatId::kPuts);
  return WriteGuard(&slot->seq, &slot->page);
}

void PageManager::Put(PageId id, const Page& in) {
  MaybeTrap("put", id, /*error_eligible=*/false);
  MaybeSimulateIo();
  Slot* slot = SlotFor(id);
  // Serialize concurrent puts on the same page via the seqlock's odd state.
  // Protocol-level locks already prevent concurrent writers in practice.
  uint64_t seq = slot->seq.load(std::memory_order_relaxed);
  for (;;) {
    if ((seq & 1) == 0 &&
        slot->seq.compare_exchange_weak(seq, seq + 1,
                                        std::memory_order_acq_rel)) {
      break;
    }
  }
  AtomicCopyIn(in.bytes, slot->page.bytes, kPageSize);
  slot->seq.store(seq + 2, std::memory_order_release);
  stats_->Add(StatId::kPuts);
}

bool PageManager::LockContended(Slot* slot, bool bounded) {
  // Telemetry only runs once contention is established: the uncontended
  // fast path (one CAS) never reads a clock or touches these counters.
  stats_->Add(StatId::kLocksContended);
  const auto t0 = std::chrono::steady_clock::now();
  const uint32_t spin = lock_spin_budget_.load(std::memory_order_relaxed);
  const uint32_t backoff = lock_backoff_max_.load(std::memory_order_relaxed);
  bool acquired;
  if (bounded) {
    acquired = slot->paper_lock.SpinAcquire(spin, backoff);
    if (!acquired) stats_->Add(StatId::kLockSpinGiveups);
  } else {
    if (slot->paper_lock.Lock(spin, backoff)) {
      stats_->Add(StatId::kLockParks);
    }
    acquired = true;
  }
  if (acquired) {
    stats_->RecordLockWait(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  return acquired;
}

void PageManager::Lock(PageId id) {
  MaybeTrap("lock", id, /*error_eligible=*/false);
  Slot* slot = SlotFor(id);
  if (!slot->paper_lock.TryLock()) {
    LockContended(slot, /*bounded=*/false);
  }
  tl_locks_held++;
  stats_->Add(StatId::kLocksAcquired);
  stats_->RecordLockDepth(static_cast<uint64_t>(tl_locks_held));
}

bool PageManager::TryLock(PageId id) {
  if (!SlotFor(id)->paper_lock.TryLock()) return false;
  tl_locks_held++;
  stats_->Add(StatId::kLocksAcquired);
  stats_->RecordLockDepth(static_cast<uint64_t>(tl_locks_held));
  return true;
}

bool PageManager::TryLockSpin(PageId id) {
  MaybeTrap("lock", id, /*error_eligible=*/false);
  Slot* slot = SlotFor(id);
  if (!slot->paper_lock.TryLock() && !LockContended(slot, /*bounded=*/true)) {
    return false;
  }
  tl_locks_held++;
  stats_->Add(StatId::kLocksAcquired);
  stats_->RecordLockDepth(static_cast<uint64_t>(tl_locks_held));
  return true;
}

void PageManager::Unlock(PageId id) {
  MaybeTrap("unlock", id, /*error_eligible=*/false);
  tl_locks_held--;
  assert(tl_locks_held >= 0);
  SlotFor(id)->paper_lock.Unlock();
}

int PageManager::LocksHeldByThisThread() { return tl_locks_held; }

void PageManager::Retire(PageId id) {
  const Timestamp t = epoch_->Advance();
  std::lock_guard<std::mutex> l(retired_mu_);
  retired_.push_back(Retired{id, t});
  stats_->Add(StatId::kNodesRetired);
}

size_t PageManager::Reclaim() {
  const Timestamp min_active = epoch_->MinActive();
  size_t n = 0;
  std::lock_guard<std::mutex> a(alloc_mu_);
  std::lock_guard<std::mutex> l(retired_mu_);
  while (!retired_.empty() && retired_.front().time < min_active) {
    free_list_.push_back(retired_.front().id);
    retired_.pop_front();
    ++n;
  }
  if (n > 0) stats_->Add(StatId::kNodesReclaimed, n);
  return n;
}

size_t PageManager::live_pages() const {
  std::lock_guard<std::mutex> a(alloc_mu_);
  std::lock_guard<std::mutex> l(retired_mu_);
  return next_fresh_.load(std::memory_order_relaxed) - free_list_.size() -
         retired_.size();
}

size_t PageManager::retired_pages() const {
  std::lock_guard<std::mutex> l(retired_mu_);
  return retired_.size();
}

size_t PageManager::free_pages() const {
  std::lock_guard<std::mutex> l(alloc_mu_);
  return free_list_.size();
}

}  // namespace obtree
