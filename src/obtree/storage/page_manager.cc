// Copyright 2026 The obtree Authors.

#include "obtree/storage/page_manager.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obtree/storage/mem_store.h"

namespace obtree {

namespace {

// Paper-lock depth of the calling thread. A thread interacts with one tree
// at a time in all our protocols, so a single per-thread counter suffices
// to validate the "locks held simultaneously" claims.
thread_local int tl_locks_held = 0;

// Prepaid simulated-I/O credits deposited by PrefetchPages and consumed
// by the next MaybeSimulateIo calls on this thread (one credit = one
// skipped sleep, because the group's waits were already issued together).
// Scoped by PageManager::IoBatchScope so credits never outlive the batch
// that paid for them.
thread_local uint64_t tl_io_credits = 0;

// Word-granular copy. The seqlock retry loop discards torn reads; copying
// through relaxed word-sized atomic accesses (PageLoadWord/PageStoreWord,
// shared with Node's in-place mutation primitives) keeps the concurrent
// access well-defined.
void AtomicCopyOut(const uint8_t* src, uint8_t* dst, size_t bytes) {
  const auto* s = reinterpret_cast<const uint64_t*>(src);
  auto* d = reinterpret_cast<uint64_t*>(dst);
  const size_t words = bytes / 8;
  for (size_t i = 0; i < words; ++i) {
    d[i] = PageLoadWord(&s[i]);
  }
}

void AtomicCopyIn(const uint8_t* src, uint8_t* dst, size_t bytes) {
  const auto* s = reinterpret_cast<const uint64_t*>(src);
  auto* d = reinterpret_cast<uint64_t*>(dst);
  const size_t words = bytes / 8;
  for (size_t i = 0; i < words; ++i) {
    PageStoreWord(&d[i], s[i]);
  }
}

// Zero a page with the same word-granular atomic stores as AtomicCopyIn:
// optimistic readers may still be probing a page while its reuse zeroes
// it, and a plain memset racing those atomic loads would be undefined.
void AtomicZero(uint8_t* dst) {
  auto* d = reinterpret_cast<uint64_t*>(dst);
  for (size_t i = 0; i < kPageSize / 8; ++i) {
    PageStoreWord(&d[i], 0);
  }
}

}  // namespace

PageManager::PageManager(EpochManager* epoch, StatsCollector* stats,
                         PageStore* store, uint32_t buffer_pool_pages)
    : epoch_(epoch),
      stats_(stats),
      store_(store != nullptr ? store : MemStore::Shared()),
      paged_(store_ != nullptr && store_->persistent()),
      pool_cap_(buffer_pool_pages),
      chunks_(kMaxChunks),
      next_fresh_(0) {
  assert(epoch != nullptr && stats != nullptr);
  for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
}

PageManager::~PageManager() {
  // Drop our share of the shared trap gate if a hook is still installed.
  if (test_hook_ != nullptr) FaultInjector::ReleaseTrapRef();
  for (auto& c : chunks_) {
    delete c.load(std::memory_order_relaxed);
  }
}

bool PageManager::TrapSlow(const char* op, PageId id,
                           bool error_eligible) const {
  if (has_test_hook_.load(std::memory_order_acquire)) test_hook_(op, id);
  const FaultOutcome f =
      FaultInjector::Instance().Evaluate(op, error_eligible);
  // A kCrash armed on a pager site is an immediate power cut (the torn
  // variant lives in FileStore's "store-write" site).
  if (f.crash) std::_Exit(kCrashExitCode);
  if (f.inject_error) stats_->Add(StatId::kFaultsInjected);
  return f.inject_error;
}

PageManager::Slot* PageManager::SlotFor(PageId id) const {
  Chunk* chunk =
      chunks_[id >> kChunkBits].load(std::memory_order_acquire);
  assert(chunk != nullptr);
  return &chunk->slots[id & (kChunkSize - 1)];
}

void PageManager::EnsureChunk(size_t chunk_index) {
  if (chunks_[chunk_index].load(std::memory_order_acquire) != nullptr) return;
  Chunk* fresh = new Chunk();
  Chunk* expected = nullptr;
  if (!chunks_[chunk_index].compare_exchange_strong(
          expected, fresh, std::memory_order_acq_rel)) {
    delete fresh;  // another allocator won the race
  }
}

Result<PageId> PageManager::Allocate() {
  if (MaybeTrap("alloc", kInvalidPageId, /*error_eligible=*/true)) {
    // Protocol error paths (split/root-creation failures) already unlock
    // everything and leave the tree valid — the allocation-budget tests
    // prove it; this site exercises the same paths probabilistically.
    return Status::Unavailable("injected allocation fault");
  }
  int64_t budget = allocation_budget_.load(std::memory_order_relaxed);
  if (budget >= 0) {
    for (;;) {
      if (budget == 0) {
        return Status::ResourceExhausted("injected allocation failure");
      }
      if (allocation_budget_.compare_exchange_weak(
              budget, budget - 1, std::memory_order_relaxed)) {
        break;
      }
      if (budget < 0) break;  // reset to unlimited concurrently
    }
  }
  {
    std::lock_guard<std::mutex> l(alloc_mu_);
    if (free_list_.empty()) {
      // Opportunistically harvest retired pages before growing the arena.
      Timestamp min_active = epoch_->MinActive();
      std::lock_guard<std::mutex> r(retired_mu_);
      while (!retired_.empty() && retired_.front().time < min_active) {
        free_list_.push_back(retired_.front().id);
        retired_.pop_front();
        stats_->Add(StatId::kNodesReclaimed);
      }
    }
    if (!free_list_.empty()) {
      PageId id = free_list_.back();
      free_list_.pop_back();
      Slot* slot = SlotFor(id);
      // Zero the reused page under the seqlock so no reader sees a blend of
      // the dead node and the new one.
      uint64_t seq = slot->seq.fetch_add(1, std::memory_order_acq_rel);
      (void)seq;
      AtomicZero(slot->page.bytes);
      // The zeroed image fully defines the page's content: resident and
      // dirty with no store read (paged mode only).
      if (paged_) MarkResidentDirty(slot);
      slot->seq.fetch_add(1, std::memory_order_release);
      if (paged_) MaybeEvict();
      return id;
    }
  }
  const uint32_t id = next_fresh_.fetch_add(1, std::memory_order_acq_rel);
  const size_t chunk_index = id >> kChunkBits;
  if (chunk_index >= kMaxChunks) {
    return Status::ResourceExhausted("page arena exhausted");
  }
  EnsureChunk(chunk_index);
  if (paged_) {
    // Fresh chunk slots are value-initialized (all-zero pages), so the
    // content is defined without a store round trip here too.
    MarkResidentDirty(SlotFor(id));
    MaybeEvict();
  }
  return static_cast<PageId>(id);
}

void PageManager::MaybeSimulateIo() const {
  const uint64_t ns = simulated_io_ns_.load(std::memory_order_relaxed);
  if (ns == 0) return;
  if (tl_io_credits > 0) {
    // This access's wait was already issued with its group's leader
    // (PrefetchPages); consuming the credit is the "completion" side.
    --tl_io_credits;
    return;
  }
  // A real sleep (not a spin) so other threads overlap their "I/O" —
  // the property the 1985 disk-resident model gives concurrent protocols.
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

uint64_t PageManager::PrefetchPages(const PageId* ids, size_t n) const {
  (void)ids;  // a real PageStore backend would post the reads here
  if (n == 0) return 0;
  const uint64_t ns = simulated_io_ns_.load(std::memory_order_relaxed);
  if (ns == 0) return 0;
  // One latency covers the whole group: n reads posted in parallel
  // complete after max(latency_i) ~= one device latency, not the sum.
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  tl_io_credits += n;
  const uint64_t overlapped = static_cast<uint64_t>(n) - 1;
  if (overlapped > 0) stats_->Add(StatId::kBatchIoOverlapped, overlapped);
  return overlapped;
}

PageManager::IoBatchScope::IoBatchScope() : saved_(tl_io_credits) {}

PageManager::IoBatchScope::~IoBatchScope() { tl_io_credits = saved_; }

Status PageManager::Get(PageId id, Page* out) const {
  if (MaybeTrap("get", id, /*error_eligible=*/tl_locks_held == 0)) {
    // Injected fetch failure: hand back an inert zeroed image so a caller
    // that ignores the status decodes an empty node (restart / no-op),
    // never stale garbage. `out` is caller-private; plain stores suffice.
    std::memset(out->bytes, 0, kPageSize);
    return Status::Unavailable("injected page-fetch failure");
  }
  MaybeSimulateIo();
  Slot* slot = SlotFor(id);
  for (;;) {
    if (paged_) {
      // Fault the page in if evicted. Checked inside the loop: an
      // eviction can land between iterations, and a copy that raced one
      // must not pass off the zeroed arena bytes as the page.
      Status s = EnsureResident(id, slot);
      if (!s.ok()) {
        std::memset(out->bytes, 0, kPageSize);
        return s;
      }
    }
    const uint64_t s1 = slot->seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // a put is in flight
    if (paged_ &&
        !(slot->state.load(std::memory_order_acquire) & kSlotResident)) {
      continue;  // evicted after the version read: re-fault
    }
    AtomicCopyOut(slot->page.bytes, out->bytes, kPageSize);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t s2 = slot->seq.load(std::memory_order_relaxed);
    if (s1 == s2) break;
  }
  stats_->Add(StatId::kGets);
  return Status::OK();
}

PageManager::ReadGuard PageManager::OptimisticRead(PageId id) const {
  if (MaybeTrap("get", id, /*error_eligible=*/tl_locks_held == 0)) {
    // Injected fetch failure: an invalid guard, which the optimistic read
    // paths already treat as a torn read (retry, then copy fallback).
    return ReadGuard();
  }
  MaybeSimulateIo();
  Slot* slot = SlotFor(id);
  if (paged_ && !EnsureResident(id, slot).ok()) {
    return ReadGuard();  // store fault: callers treat it as a torn read
  }
  // If the page is evicted after this point the eviction's version bumps
  // make Validate() fail, so the zeroed bytes can never be trusted.
  const uint64_t version = slot->seq.load(std::memory_order_acquire);
  stats_->Add(StatId::kGets);
  return ReadGuard(&slot->seq, &slot->page, version);
}

PageManager::ReadGuard PageManager::PeekLocked(PageId id) const {
  // Same acquisition and accounting as any other in-place read; the
  // separate entry point exists for its distinct contract (see header).
  return OptimisticRead(id);
}

PageManager::WriteGuard PageManager::BeginWrite(PageId id) {
  // Fire the "put" hook BEFORE taking the seqlock odd, mirroring Put: a
  // test pausing a writer here holds the paper lock but leaves the page
  // readable (the storage-model property the interleaving tests assert).
  MaybeTrap("put", id, /*error_eligible=*/false);
  assert(LocksHeldByThisThread() > 0);  // the paper lock is the mutator license
  Slot* slot = SlotFor(id);
  // The caller's paper lock excludes every Put/BeginWrite on this page;
  // only an in-flight reuse of a STALE page could hold the seq odd, and
  // the acquire discipline (validate as live under the lock first) rules
  // that out. The CAS loop is defensive.
  uint64_t seq = slot->seq.load(std::memory_order_relaxed);
  for (;;) {
    if ((seq & 1) == 0 &&
        slot->seq.compare_exchange_weak(seq, seq + 1,
                                        std::memory_order_acq_rel)) {
      break;
    }
  }
  if (paged_) {
    // Defensive re-fault: the caller validated the page under its paper
    // lock (PeekLocked), which pins it against eviction from then on —
    // but if a page was evicted before that lock/validate cycle the
    // image must come back before bytes are edited in place. We hold
    // the seqlock odd, so the fault-in is private.
    if (!(slot->state.load(std::memory_order_acquire) & kSlotResident)) {
      Page buf;
      Status s = store_->ReadPage(id, &buf.bytes[0]);
      // A store fault here cannot be surfaced (BeginWrite is
      // infallible by contract and the caller re-validates nothing);
      // zero-filling keeps the image inert and the caller's node-format
      // checks reject it. In practice the preceding PeekLocked already
      // faulted the page in, so this path is a race backstop.
      if (!s.ok()) std::memset(buf.bytes, 0, kPageSize);
      AtomicCopyIn(buf.bytes, slot->page.bytes, kPageSize);
      const uint32_t prev = slot->state.fetch_or(
          kSlotResident, std::memory_order_release);
      if (!(prev & kSlotResident)) {
        resident_count_.fetch_add(1, std::memory_order_relaxed);
      }
      stats_->Add(StatId::kStoreReads);
    }
    slot->state.fetch_or(kSlotDirty, std::memory_order_release);
  }
  stats_->Add(StatId::kPuts);
  return WriteGuard(&slot->seq, &slot->page);
}

void PageManager::Put(PageId id, const Page& in) {
  MaybeTrap("put", id, /*error_eligible=*/false);
  MaybeSimulateIo();
  Slot* slot = SlotFor(id);
  // Serialize concurrent puts on the same page via the seqlock's odd state.
  // Protocol-level locks already prevent concurrent writers in practice.
  uint64_t seq = slot->seq.load(std::memory_order_relaxed);
  for (;;) {
    if ((seq & 1) == 0 &&
        slot->seq.compare_exchange_weak(seq, seq + 1,
                                        std::memory_order_acq_rel)) {
      break;
    }
  }
  AtomicCopyIn(in.bytes, slot->page.bytes, kPageSize);
  // A put defines the page's full content: resident + dirty, no read.
  if (paged_) MarkResidentDirty(slot);
  slot->seq.store(seq + 2, std::memory_order_release);
  stats_->Add(StatId::kPuts);
  if (paged_) MaybeEvict();
}

bool PageManager::LockContended(Slot* slot, bool bounded) {
  // Telemetry only runs once contention is established: the uncontended
  // fast path (one CAS) never reads a clock or touches these counters.
  stats_->Add(StatId::kLocksContended);
  const auto t0 = std::chrono::steady_clock::now();
  const uint32_t spin = lock_spin_budget_.load(std::memory_order_relaxed);
  const uint32_t backoff = lock_backoff_max_.load(std::memory_order_relaxed);
  bool acquired;
  if (bounded) {
    acquired = slot->paper_lock.SpinAcquire(spin, backoff);
    if (!acquired) stats_->Add(StatId::kLockSpinGiveups);
  } else {
    if (slot->paper_lock.Lock(spin, backoff)) {
      stats_->Add(StatId::kLockParks);
    }
    acquired = true;
  }
  if (acquired) {
    stats_->RecordLockWait(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  return acquired;
}

void PageManager::Lock(PageId id) {
  MaybeTrap("lock", id, /*error_eligible=*/false);
  // First paper lock of a mutation: pass the checkpoint gate before
  // acquiring, so a checkpoint barrier sees every in-flight mutator as
  // "holds at least one lock" and can wait it out. Nested acquisitions
  // skip the gate — a lock holder must never block on the barrier, or a
  // checkpoint waiting for that holder would deadlock.
  if (paged_ && tl_locks_held == 0) EnterMutatorGate();
  Slot* slot = SlotFor(id);
  if (!slot->paper_lock.TryLock()) {
    LockContended(slot, /*bounded=*/false);
  }
  tl_locks_held++;
  stats_->Add(StatId::kLocksAcquired);
  stats_->RecordLockDepth(static_cast<uint64_t>(tl_locks_held));
}

bool PageManager::TryLock(PageId id) {
  const bool gated = paged_ && tl_locks_held == 0;
  if (gated && !TryEnterMutatorGate()) return false;
  if (!SlotFor(id)->paper_lock.TryLock()) {
    if (gated) ExitMutatorGate();
    return false;
  }
  tl_locks_held++;
  stats_->Add(StatId::kLocksAcquired);
  stats_->RecordLockDepth(static_cast<uint64_t>(tl_locks_held));
  return true;
}

bool PageManager::TryLockSpin(PageId id) {
  MaybeTrap("lock", id, /*error_eligible=*/false);
  const bool gated = paged_ && tl_locks_held == 0;
  if (gated) EnterMutatorGate();
  Slot* slot = SlotFor(id);
  if (!slot->paper_lock.TryLock() && !LockContended(slot, /*bounded=*/true)) {
    if (gated) ExitMutatorGate();
    return false;
  }
  tl_locks_held++;
  stats_->Add(StatId::kLocksAcquired);
  stats_->RecordLockDepth(static_cast<uint64_t>(tl_locks_held));
  return true;
}

void PageManager::Unlock(PageId id) {
  MaybeTrap("unlock", id, /*error_eligible=*/false);
  tl_locks_held--;
  assert(tl_locks_held >= 0);
  SlotFor(id)->paper_lock.Unlock();
  // Last lock released: this mutation is fully published (every Put /
  // WriteGuard release happened before the paper-lock release above), so
  // a checkpoint barrier that proceeds now captures it completely.
  if (paged_ && tl_locks_held == 0) ExitMutatorGate();
}

int PageManager::LocksHeldByThisThread() { return tl_locks_held; }

void PageManager::Retire(PageId id) {
  const Timestamp t = epoch_->Advance();
  std::lock_guard<std::mutex> l(retired_mu_);
  retired_.push_back(Retired{id, t});
  stats_->Add(StatId::kNodesRetired);
}

size_t PageManager::Reclaim() {
  const Timestamp min_active = epoch_->MinActive();
  size_t n = 0;
  std::lock_guard<std::mutex> a(alloc_mu_);
  std::lock_guard<std::mutex> l(retired_mu_);
  while (!retired_.empty() && retired_.front().time < min_active) {
    free_list_.push_back(retired_.front().id);
    retired_.pop_front();
    ++n;
  }
  if (n > 0) stats_->Add(StatId::kNodesReclaimed, n);
  return n;
}

size_t PageManager::live_pages() const {
  std::lock_guard<std::mutex> a(alloc_mu_);
  std::lock_guard<std::mutex> l(retired_mu_);
  return next_fresh_.load(std::memory_order_relaxed) - free_list_.size() -
         retired_.size();
}

size_t PageManager::retired_pages() const {
  std::lock_guard<std::mutex> l(retired_mu_);
  return retired_.size();
}

size_t PageManager::free_pages() const {
  std::lock_guard<std::mutex> l(alloc_mu_);
  return free_list_.size();
}

// --- buffer-pool internals (paged_ only) ------------------------------------

void PageManager::MarkResidentDirty(Slot* slot) const {
  const uint32_t prev = slot->state.fetch_or(kSlotResident | kSlotDirty,
                                             std::memory_order_release);
  if (!(prev & kSlotResident)) {
    resident_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status PageManager::EnsureResident(PageId id, Slot* slot) const {
  if (slot->state.load(std::memory_order_acquire) & kSlotResident) {
    return Status::OK();
  }
  return FaultInSlot(id, slot);
}

Status PageManager::FaultInSlot(PageId id, Slot* slot) const {
  // Take the slot's seqlock odd: the fault-in is then private — copy
  // readers wait, optimistic readers discard. Competing fault-ins on the
  // same page serialize here too.
  uint64_t seq = slot->seq.load(std::memory_order_relaxed);
  for (;;) {
    if ((seq & 1) == 0 &&
        slot->seq.compare_exchange_weak(seq, seq + 1,
                                        std::memory_order_acq_rel)) {
      break;
    }
  }
  // Lost a fault-in race (another thread published while we CASed)?
  if (slot->state.load(std::memory_order_acquire) & kSlotResident) {
    slot->seq.store(seq, std::memory_order_release);  // content untouched
    return Status::OK();
  }
  Page buf;
  Status s = store_->ReadPage(id, buf.bytes);
  if (!s.ok()) {
    // Restore the original even version: the arena content (zeroes) is
    // exactly what it was, so readers that captured `seq` lose nothing.
    slot->seq.store(seq, std::memory_order_release);
    return s;
  }
  AtomicCopyIn(buf.bytes, slot->page.bytes, kPageSize);
  slot->state.fetch_or(kSlotResident, std::memory_order_release);
  slot->seq.store(seq + 2, std::memory_order_release);
  resident_count_.fetch_add(1, std::memory_order_relaxed);
  stats_->Add(StatId::kStoreReads);
  MaybeEvict();
  return Status::OK();
}

void PageManager::MaybeEvict() const {
  if (pool_cap_ == 0) return;
  if (resident_count_.load(std::memory_order_relaxed) <= pool_cap_) return;
  // One sweeper at a time; everyone else goes on with their lives (the
  // pool budget is a soft target, not an admission control).
  std::unique_lock<std::mutex> lk(evict_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return;
  const uint32_t total = next_fresh_.load(std::memory_order_acquire);
  if (total == 0) return;
  size_t scanned = 0;
  while (resident_count_.load(std::memory_order_relaxed) > pool_cap_ &&
         scanned < 2ull * total) {
    const PageId victim = static_cast<PageId>(clock_hand_ % total);
    ++clock_hand_;
    ++scanned;
    TryEvictSlot(victim);
  }
}

bool PageManager::TryEvictSlot(PageId id) const {
  Slot* slot = SlotFor(id);
  if (!(slot->state.load(std::memory_order_acquire) & kSlotResident)) {
    return false;
  }
  // A locked page may be pinned by an in-place reader or writer whose
  // validated `live` pointer dereferences the arena bytes directly (see
  // PeekLocked): evicting under them would swap authentic content for
  // zeroes mid-read. The paper lock is what pins a validated image, so
  // take it — non-blocking, straight on the PaperLock (PageManager::
  // TryLock would perturb tl_locks_held and the checkpoint gate).
  if (!slot->paper_lock.TryLock()) return false;
  uint64_t seq = slot->seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot->seq.compare_exchange_strong(seq, seq + 1,
                                         std::memory_order_acq_rel)) {
    slot->paper_lock.Unlock();
    return false;
  }
  uint32_t state = slot->state.load(std::memory_order_acquire);
  if (!(state & kSlotResident)) {  // raced an eviction: nothing to do
    slot->seq.store(seq, std::memory_order_release);
    slot->paper_lock.Unlock();
    return false;
  }
  if (state & kSlotDirty) {
    Page buf;
    AtomicCopyOut(slot->page.bytes, buf.bytes, kPageSize);
    Status s = store_->WritePage(id, buf.bytes);
    if (!s.ok()) {
      // Keep the page resident and dirty; a later sweep or the next
      // checkpoint retries the write.
      slot->seq.store(seq, std::memory_order_release);
      slot->paper_lock.Unlock();
      return false;
    }
    stats_->Add(StatId::kStoreWrites);
  }
  // Zero the arena copy so a missed re-fault reads an inert empty image
  // (and so bugs in the residency protocol are loudly observable).
  AtomicZero(slot->page.bytes);
  slot->state.store(0, std::memory_order_release);
  slot->seq.store(seq + 2, std::memory_order_release);
  slot->paper_lock.Unlock();
  resident_count_.fetch_sub(1, std::memory_order_relaxed);
  stats_->Add(StatId::kPagesEvicted);
  return true;
}

// --- checkpoint gate --------------------------------------------------------

namespace {
// Per-thread gate hold depth. Only the 0->1 transition waits on a pending
// checkpoint and joins active_mutators_; nested entries (a paper-lock
// acquisition inside an open MutatorScope) just bump the depth, so a
// checkpoint barrier can never cut between the lock-holding steps of one
// logical operation, and a scope holder can never deadlock by re-waiting
// on the gate it already holds.
thread_local int tl_gate_depth = 0;
}  // namespace

void PageManager::EnterMutatorGate() {
  if (tl_gate_depth++ > 0) return;
  std::unique_lock<std::mutex> lk(gate_mu_);
  gate_cv_.wait(lk, [this] { return !checkpoint_blocking_; });
  ++active_mutators_;
}

bool PageManager::TryEnterMutatorGate() {
  if (tl_gate_depth > 0) {
    ++tl_gate_depth;
    return true;
  }
  std::lock_guard<std::mutex> lk(gate_mu_);
  if (checkpoint_blocking_) return false;
  ++active_mutators_;
  tl_gate_depth = 1;
  return true;
}

void PageManager::ExitMutatorGate() {
  assert(tl_gate_depth > 0);
  if (--tl_gate_depth > 0) return;
  std::lock_guard<std::mutex> lk(gate_mu_);
  if (--active_mutators_ == 0 && checkpoint_blocking_) {
    gate_cv_.notify_all();
  }
}

Status PageManager::Checkpoint(
    const std::function<void(StoreMeta*)>& fill_tree_meta) {
  if (!paged_) {
    return Status::FailedPrecondition("tree has no persistent store");
  }
  // A lock-holding (or scope-holding) thread calling Checkpoint would
  // wait for itself.
  assert(tl_locks_held == 0);
  assert(tl_gate_depth == 0);
  // Barrier: hold new mutators out, drain the in-flight ones. Readers
  // never touch the gate and keep running throughout.
  {
    std::unique_lock<std::mutex> lk(gate_mu_);
    gate_cv_.wait(lk, [this] { return !checkpoint_blocking_; });
    checkpoint_blocking_ = true;
    gate_cv_.wait(lk, [this] { return active_mutators_ == 0; });
  }
  Status result = Status::OK();
  {
    // Exclude the eviction sweep so no dirty page is concurrently staged
    // (double-writes would be harmless but wasteful) or zeroed mid-copy.
    std::lock_guard<std::mutex> ev(evict_mu_);
    StoreMeta meta;
    fill_tree_meta(&meta);
    const uint32_t total = next_fresh_.load(std::memory_order_acquire);
    Page buf;
    for (uint32_t id = 0; id < total; ++id) {
      Slot* slot = SlotFor(id);
      const uint32_t state = slot->state.load(std::memory_order_acquire);
      if (!(state & kSlotDirty)) continue;
      // No mutators and no eviction: the content is frozen, so a plain
      // word-granular copy is a consistent snapshot (readers only read).
      AtomicCopyOut(slot->page.bytes, buf.bytes, kPageSize);
      Status s = store_->WritePage(id, buf.bytes);
      if (!s.ok()) {
        result = s;
        break;
      }
      stats_->Add(StatId::kStoreWrites);
      // Clear dirty only after a successful stage. If the later Commit
      // fails, the staged image survives in the store's pending set and
      // rides into the next checkpoint's commit — nothing is lost.
      slot->state.fetch_and(~kSlotDirty, std::memory_order_release);
    }
    if (result.ok()) {
      meta.next_fresh = total;
      {
        std::lock_guard<std::mutex> a(alloc_mu_);
        std::lock_guard<std::mutex> r(retired_mu_);
        meta.free_pages = free_list_;
        // Retired pages are plain free pages after recovery: no reader
        // from before the crash can still be in flight.
        for (const Retired& rt : retired_) meta.free_pages.push_back(rt.id);
      }
      result = store_->Commit(&meta);
      if (result.ok()) stats_->Add(StatId::kCheckpoints);
    }
  }
  {
    std::lock_guard<std::mutex> lk(gate_mu_);
    checkpoint_blocking_ = false;
  }
  gate_cv_.notify_all();
  return result;
}

void PageManager::RestoreFromMeta(const StoreMeta& meta) {
  next_fresh_.store(meta.next_fresh, std::memory_order_release);
  for (size_t c = 0; (c << kChunkBits) < meta.next_fresh; ++c) {
    EnsureChunk(c);
  }
  std::lock_guard<std::mutex> a(alloc_mu_);
  free_list_ = meta.free_pages;
}

}  // namespace obtree
