// Copyright 2026 The obtree Authors.
//
// FileStore: file-backed persistent PageStore with crash-safe
// checkpointing. On-disk layout (one directory per store):
//
//   <dir>/pages.dat   page images in 4 KB-aligned slots (O_DIRECT-ready:
//                     every slot offset is a kPageSize multiple). Each
//                     page owns a PAIR of slots at indices 2*id and
//                     2*id + 1 and ping-pongs between them: a WritePage
//                     always lands in the slot the committed manifest
//                     does NOT reference, so a torn write (crash mid
//                     pwrite) can only corrupt bytes recovery will never
//                     read.
//   <dir>/MANIFEST    the commit point: checkpoint epoch, allocator
//                     state, tree metadata (prime block, size, append
//                     hints), and the per-page {slot, crc32} table naming
//                     which slot of each pair holds the committed image.
//                     Written as MANIFEST.tmp + fsync + rename + dir
//                     fsync, so it is replaced atomically; a crash at any
//                     interior point leaves the previous manifest intact.
//
// Checkpoint protocol (PageManager::Checkpoint drives it):
//   1. every dirty page is staged via WritePage (shadow slots);
//   2. Commit: fsync pages.dat, serialize the manifest (previous table
//      overlaid with the staged writes) to MANIFEST.tmp, fsync it,
//      rename over MANIFEST, fsync the directory.
//
// Durability fault sites (FaultInjector, see FaultAction::kCrash):
//   "store-write"       before each page pwrite; a kCrash fire persists
//                       the first 512 bytes of the new image (a genuine
//                       torn sector) and dies.
//   "store-fsync"       before the pages.dat fsync in Commit.
//   "manifest-rename"   after MANIFEST.tmp is durable, before the rename.
//   "checkpoint-commit" after the rename + directory fsync (the
//                       checkpoint IS durable; crash-after-commit tests).
// kError fires on the first three surface Status::Unavailable without
// touching durable state, so transient-failure tests ride the same sites.

#ifndef OBTREE_STORAGE_FILE_STORE_H_
#define OBTREE_STORAGE_FILE_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obtree/storage/page_store.h"

namespace obtree {

/// Persistent page backend over a directory (see file comment).
class FileStore : public PageStore {
 public:
  /// Open (creating if needed) the store directory. If a committed
  /// manifest exists it is loaded and verified: has_checkpoint() becomes
  /// true and recovered_meta() holds the checkpointed tree state. A
  /// manifest that fails its magic/version/checksum yields DataLoss. A
  /// leftover MANIFEST.tmp (crash before the rename) is discarded.
  static Result<std::unique_ptr<FileStore>> Open(const std::string& dir);

  ~FileStore() override;
  OBTREE_DISALLOW_COPY_AND_ASSIGN(FileStore);

  bool persistent() const override { return true; }
  Status ReadPage(PageId id, void* buf) override;
  Status WritePage(PageId id, const void* buf) override;
  Status Commit(StoreMeta* meta) override;

  /// True when Open found a committed checkpoint.
  bool has_checkpoint() const { return has_checkpoint_; }

  /// The tree/allocator state of the committed checkpoint Open loaded
  /// (valid only when has_checkpoint()).
  const StoreMeta& recovered_meta() const { return recovered_meta_; }

  /// Epoch of the newest committed checkpoint (0 = none yet).
  uint64_t checkpoint_epoch() const {
    std::lock_guard<std::mutex> lk(mu_);
    return committed_epoch_;
  }

  const std::string& dir() const { return dir_; }

  /// CRC-32 (the IEEE polynomial) over `n` bytes. Exposed so corruption
  /// tests can compute the checksum an image SHOULD have.
  static uint32_t Crc32(const void* data, size_t n);

 private:
  struct SlotInfo {
    uint8_t slot;  // 0 or 1: which half of the page's slot pair
    uint32_t crc;  // checksum of the image in that slot
  };

  FileStore(std::string dir, int data_fd, int dir_fd);

  // Serialize + atomically publish the manifest for `meta` and `table`.
  // Caller holds mu_.
  Status PublishManifestLocked(
      const StoreMeta& meta,
      const std::unordered_map<PageId, SlotInfo>& table);

  // Parse <dir>/MANIFEST into the committed state. Missing file => OK
  // with has_checkpoint_ false; torn/corrupt file => DataLoss.
  Status LoadManifest();

  const std::string dir_;
  const int data_fd_;
  const int dir_fd_;

  mutable std::mutex mu_;
  std::unordered_map<PageId, SlotInfo> committed_;  // manifest's table
  std::unordered_map<PageId, SlotInfo> pending_;    // staged since Commit
  uint64_t committed_epoch_ = 0;
  bool has_checkpoint_ = false;
  StoreMeta recovered_meta_;
};

}  // namespace obtree

#endif  // OBTREE_STORAGE_FILE_STORE_H_
