// Copyright 2026 The obtree Authors.
//
// PageManager implements the storage model of Section 2.2:
//
//   * get(x)  — returns the contents of the node pointed to by x;
//   * put(A,x) — writes buffer A into the node pointed to by x;
//     get/put on the same node are indivisible with respect to each other;
//   * lock(x)/unlock(x) — the paper's single lock type: it blocks other
//     lockers but does NOT block readers ("a lock on a node does not
//     prevent other processes from reading the locked node").
//
// Indivisibility is provided by a per-page seqlock, so readers never block
// and never observe a torn node image. The paper lock is a separate
// per-page PaperLock (paper_lock.h): a compact test-and-test-and-set
// spin-then-park lock, because the hot-path critical sections are a few
// hundred ns and parking every contended writer in the kernel is what
// capped single-tree multi-core scaling. On top of the literal get/put,
// two in-place fast paths
// ride the same seqlock: OptimisticRead (version-validated reads that
// move no bytes) and BeginWrite/WriteGuard (a paper-lock holder mutating
// the live page between odd/even version bumps — one node access instead
// of the get + put pair).
//
// Deallocation follows Section 5.3: deleted pages are *retired* with a
// deletion timestamp and returned to the free list only once every active
// operation started after that timestamp (EpochManager::MinActive).

#ifndef OBTREE_STORAGE_PAGE_MANAGER_H_
#define OBTREE_STORAGE_PAGE_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obtree/storage/page.h"
#include "obtree/storage/page_store.h"
#include "obtree/storage/paper_lock.h"
#include "obtree/util/common.h"
#include "obtree/util/epoch.h"
#include "obtree/util/fault_injector.h"
#include "obtree/util/stats.h"
#include "obtree/util/status.h"

namespace obtree {

/// Allocator + indivisible reader/writer + paper-lock table for pages.
class PageManager {
 public:
  /// @param epoch governs deferred release of retired pages (§5.3); must
  ///              outlive the manager.
  /// @param stats counter sink; must outlive the manager. May not be null.
  /// @param store backing device for page images (must outlive the
  ///              manager). nullptr selects the shared MemStore: pages
  ///              live only in the RAM arena and every store-related
  ///              path below (residency, eviction, checkpoint gate)
  ///              is compiled out of the hot paths behind one plain
  ///              bool, preserving the pre-PageStore behavior exactly.
  ///              A persistent store (FileStore) turns the arena into a
  ///              buffer pool over the store: non-resident pages fault
  ///              in on access (kStoreReads), dirty pages stage out on
  ///              eviction and checkpoint (kStoreWrites).
  /// @param buffer_pool_pages resident-page budget for a persistent
  ///              store (0 = unbounded); see
  ///              TreeOptions::buffer_pool_pages.
  PageManager(EpochManager* epoch, StatsCollector* stats,
              PageStore* store = nullptr, uint32_t buffer_pool_pages = 0);
  ~PageManager();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(PageManager);

  /// Allocate a zeroed page. Reuses reclaimable retired pages first.
  Result<PageId> Allocate();

  /// Test-only interleaving hook: when set, invoked at the entry of Get
  /// ("get"), Put/BeginWrite ("put"), Lock/TryLockSpin ("lock") and Unlock
  /// ("unlock") with the page id. Tests use it to pause a protocol thread
  /// at an exact point (e.g. after a merge wrote the gaining child but
  /// before the parent) and observe the tree from other threads. Set/clear
  /// only while those calls cannot race the change.
  ///
  /// Hooks and FaultInjector failpoints share one site-naming scheme (the
  /// op string IS the failpoint site) and one hot-path gate: when neither
  /// a hook nor any fault site is armed, every call collapses to a single
  /// relaxed atomic load (FaultInjector::TrapsArmed()).
  using TestHook = std::function<void(const char* op, PageId id)>;
  void SetTestHook(TestHook hook) {
    const bool had = test_hook_ != nullptr;
    test_hook_ = std::move(hook);
    const bool has = test_hook_ != nullptr;
    has_test_hook_.store(has, std::memory_order_release);
    if (has && !had) FaultInjector::AddTrapRef();
    if (!has && had) FaultInjector::ReleaseTrapRef();
  }

  /// Fault injection for tests: after `n` more successful allocations,
  /// Allocate() returns ResourceExhausted until reset with a negative
  /// value. Protocol error paths (split/root-creation failures) must
  /// unlock everything and leave the tree valid.
  void set_allocation_budget(int64_t n) {
    allocation_budget_.store(n, std::memory_order_relaxed);
  }

  /// Indivisible read of a page into *out (the paper's get(x)).
  ///
  /// Fallible: with a fault armed on site "get" this can return
  /// Status::Unavailable — the future PageStore backend's transient I/O
  /// error, simulated. On failure *out is zeroed, which a page-format
  /// reader decodes as an inert empty node: a caller that ignores the
  /// status (maintenance code runs exempt; legacy baselines are not
  /// fault-hardened) restarts or no-ops instead of acting on garbage.
  /// Errors are only injected into lock-free readers (threads holding a
  /// paper lock are immune — their reads sit between mutation steps where
  /// "retry later" is not an option); stalls can hit anyone.
  Status Get(PageId id, Page* out) const;

  /// Handle for an optimistic in-place read of one page: the live page
  /// plus the seqlock version observed at acquisition. The page content
  /// may be rewritten underneath at any time, so anything read through
  /// page() is untrusted garbage until Validate() returns true AFTER the
  /// reads — and every access to page() bytes must go through relaxed
  /// atomic loads (see NodeView) to stay defined under a racing Put.
  class ReadGuard {
   public:
    /// Invalid guard: stable() and Validate() are false.
    ReadGuard() = default;

    /// The live page image (never copied). nullptr on an invalid guard.
    const Page* page() const { return page_; }

    /// True if no put was in flight when the guard was acquired. An
    /// unstable guard can never validate; re-acquire instead of spinning
    /// on Validate().
    bool stable() const { return seq_ != nullptr && (version_ & 1) == 0; }

    /// True iff no put has started or finished on the page since
    /// acquisition — everything read from page() in between is a
    /// consistent snapshot. (Page reuse via Retire/Allocate also bumps
    /// the version, so a recycled page never validates.)
    bool Validate() const {
      if (!stable()) return false;
      std::atomic_thread_fence(std::memory_order_acquire);
      return seq_->load(std::memory_order_relaxed) == version_;
    }

   private:
    friend class PageManager;
    ReadGuard(const std::atomic<uint64_t>* seq, const Page* page,
              uint64_t version)
        : seq_(seq), page_(page), version_(version) {}

    const std::atomic<uint64_t>* seq_ = nullptr;
    const Page* page_ = nullptr;
    uint64_t version_ = 1;  // odd: never validates
  };

  /// Begin an optimistic in-place read (the fast-path alternative to Get
  /// that moves no page bytes). Counts as a node access: it pays the
  /// simulated I/O latency and the kGets counter exactly like Get, so the
  /// paper's cost model still holds; Validate() is free.
  ReadGuard OptimisticRead(PageId id) const;

  /// Batched-I/O overlap hook for the pipelined descent engine
  /// (SagivTree::Multi*): announce that the calling thread is about to
  /// read the `n` distinct pages in `ids` as one group. The group's
  /// simulated-I/O waits are issued TOGETHER — one latency sleep covers
  /// all n fetches, modeling n async reads posted in parallel — and the
  /// thread is granted n prepaid-I/O credits that the following
  /// Get/OptimisticRead calls consume instead of sleeping. Everything
  /// else about those reads (seqlock acquisition, kGets accounting,
  /// fault traps) is unchanged, so the cost model still counts n node
  /// accesses; only the WAITS coalesce. Returns the number of waits
  /// overlapped (n - 1 when simulated I/O is on, else 0), which is also
  /// added to StatId::kBatchIoOverlapped. Credits are thread-local and
  /// must be bracketed by an IoBatchScope so unconsumed credits (a
  /// faulted read that never slept) cannot leak into unrelated ops.
  uint64_t PrefetchPages(const PageId* ids, size_t n) const;

  /// RAII bracket for PrefetchPages credit accounting: records the
  /// calling thread's prepaid-I/O credit level at construction and
  /// restores it at destruction, forfeiting any credits deposited but
  /// not consumed inside the scope.
  class IoBatchScope {
   public:
    IoBatchScope();
    ~IoBatchScope();
    OBTREE_DISALLOW_COPY_AND_ASSIGN(IoBatchScope);

   private:
    uint64_t saved_;
  };

  /// In-place inspection for a paper-lock holder. Counts as a node
  /// access exactly like Get/OptimisticRead (one kGets + the simulated
  /// I/O), so the paper's cost model holds on the locked moveright too;
  /// it is also the read half of an in-place read-modify-write — the
  /// BeginWrite that follows charges nothing further, making the whole
  /// RMW one node access instead of the copy path's get + put. The guard
  /// still needs validation: page reuse (Retire -> Allocate zeroing ->
  /// initializing Put) runs WITHOUT the paper lock, so a stale page can
  /// move underneath even a lock holder — but once an image validates as
  /// a live node, the lock alone pins it until Unlock (every further
  /// mutation, including the deletion marking that precedes Retire,
  /// requires the paper lock). Note the lock says nothing about
  /// REACHABILITY: a validated image may be a half-published split's
  /// fresh right node that no link points at yet; callers for whom that
  /// matters need their own publication protocol (see SagivTree's
  /// frontier_seq_ epoch and TryAppendFast).
  ReadGuard PeekLocked(PageId id) const;

  /// Handle for an in-place mutation of one page by the paper-lock
  /// holder: acquisition bumps the seqlock to odd (optimistic readers
  /// discard what they read, copy-readers wait), Release() bumps it back
  /// to even, publishing the stores. Between the two, every store to
  /// page() bytes must go through relaxed word-sized atomics
  /// (PageStoreWord / Node's *InPlace primitives) so racing NodeView
  /// readers stay defined. Move-only; the destructor releases a guard
  /// that is still held.
  class WriteGuard {
   public:
    WriteGuard() = default;
    WriteGuard(WriteGuard&& other) noexcept
        : seq_(other.seq_), page_(other.page_) {
      other.seq_ = nullptr;
      other.page_ = nullptr;
    }
    WriteGuard& operator=(WriteGuard&& other) noexcept {
      if (this != &other) {
        Release();
        seq_ = other.seq_;
        page_ = other.page_;
        other.seq_ = nullptr;
        other.page_ = nullptr;
      }
      return *this;
    }
    ~WriteGuard() { Release(); }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

    /// The live page image (never copied). nullptr after Release().
    Page* page() const { return page_; }

    /// True while the seqlock is held odd by this guard.
    bool held() const { return seq_ != nullptr; }

    /// Bump the seqlock back to even, publishing every in-place store.
    /// Idempotent; also run by the destructor.
    void Release() {
      if (seq_ == nullptr) return;
      seq_->fetch_add(1, std::memory_order_release);
      seq_ = nullptr;
      page_ = nullptr;
    }

   private:
    friend class PageManager;
    WriteGuard(std::atomic<uint64_t>* seq, Page* page)
        : seq_(seq), page_(page) {}

    std::atomic<uint64_t>* seq_ = nullptr;
    Page* page_ = nullptr;
  };

  /// Begin an in-place read-modify-write of a page (the fast-path
  /// alternative to the Get + Put copy cycle, which moves >= 8 KB to
  /// change one slot). The caller MUST hold the paper lock on `id` and
  /// have validated the page as a live node under that lock (see
  /// PeekLocked) — the lock is what makes it the sole mutator. Counts
  /// one kPuts but charges NO additional simulated I/O: the PeekLocked
  /// that preceded it already paid for this node access, so the combined
  /// read-modify-write costs one access instead of the two (get + put)
  /// the copy path pays.
  WriteGuard BeginWrite(PageId id);

  /// Indivisible write of a page (the paper's put(A, x)).
  void Put(PageId id, const Page& in);

  /// Acquire the paper lock on a page. Blocks only other lockers. The
  /// lock is a compact spin-then-park PaperLock (storage/paper_lock.h):
  /// a contended acquisition spins lock_spin_budget() probe rounds with
  /// exponential backoff before sleeping. Contended acquisitions count
  /// StatId::kLocksContended (plus kLockParks when they slept) and feed
  /// the wait time into StatsCollector's lock-wait histogram.
  void Lock(PageId id);

  /// Try to acquire the paper lock without blocking or spinning. Fires
  /// no test hook (it cannot pause) and records no contention telemetry.
  bool TryLock(PageId id);

  /// Contention-aware bounded acquire for the write descent: fires the
  /// same "lock" test hook as Lock at entry, then spins at most
  /// lock_spin_budget() probe rounds. Returns true with the lock held.
  /// Returns false — WITHOUT blocking — when the lock stayed contended
  /// through the budget (StatId::kLockSpinGiveups); the caller
  /// re-validates that the page is still worth waiting for (the holder
  /// was mutating it, e.g. splitting a hot leaf) before paying the
  /// parking Lock.
  bool TryLockSpin(PageId id);

  /// Release the paper lock.
  void Unlock(PageId id);

  /// Paper-lock tuning (TreeOptions::lock_spin_budget / lock_backoff_max;
  /// see those knobs for semantics). Safe to change at any time; takes
  /// effect on subsequent acquisitions.
  void set_lock_spin_budget(uint32_t rounds) {
    lock_spin_budget_.store(rounds, std::memory_order_relaxed);
  }
  uint32_t lock_spin_budget() const {
    return lock_spin_budget_.load(std::memory_order_relaxed);
  }
  void set_lock_backoff_max(uint32_t pauses) {
    lock_backoff_max_.store(pauses == 0 ? 1 : pauses,
                            std::memory_order_relaxed);
  }
  uint32_t lock_backoff_max() const {
    return lock_backoff_max_.load(std::memory_order_relaxed);
  }

  /// Number of paper locks the calling thread currently holds (through any
  /// PageManager). Exposed for tests asserting the "one lock at a time"
  /// property.
  static int LocksHeldByThisThread();

  /// Simulate block-device latency: every Get/Put sleeps this long before
  /// returning (0 = in-memory). The paper's model maps nodes to secondary
  /// storage where a node access IS an I/O; on few-core hosts this is what
  /// lets concurrency benefits surface — non-blocking protocols overlap
  /// their I/O waits, lock-holding protocols stall everyone behind them.
  void set_simulated_io_ns(uint64_t ns) {
    simulated_io_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t simulated_io_ns() const {
    return simulated_io_ns_.load(std::memory_order_relaxed);
  }

  /// Mark a page deleted at the current logical time. The page stays
  /// readable until reclaimed.
  void Retire(PageId id);

  /// Move retired pages that satisfy the §5.3 rule to the free list.
  /// Returns the number of pages reclaimed.
  size_t Reclaim();

  /// Total pages ever allocated from the OS (high-water mark).
  size_t allocated_pages() const {
    return next_fresh_.load(std::memory_order_relaxed);
  }

  /// Pages currently allocated to live nodes (allocated - free - retired).
  size_t live_pages() const;

  /// Pages awaiting reclamation.
  size_t retired_pages() const;

  /// Pages on the free list.
  size_t free_pages() const;

  /// The epoch manager governing deferred page release (not owned).
  EpochManager* epoch() const { return epoch_; }
  /// The counter sink every operation reports to (not owned).
  StatsCollector* stats() const { return stats_; }

  // --- persistence (active only over a persistent PageStore) -------------

  /// True when this manager pages against a persistent store.
  bool persistent() const { return paged_; }

  /// The backing store (never null; the shared MemStore by default).
  PageStore* store() const { return store_; }

  /// Pages currently resident in the arena (== live pages when no
  /// eviction has happened; only meaningful when persistent()).
  size_t resident_pages() const {
    return resident_count_.load(std::memory_order_relaxed);
  }

  /// Adopt a recovered checkpoint's allocator state: the fresh-page
  /// frontier and free list from the manifest. Every page below the
  /// frontier starts NON-resident (faulted in from the store on first
  /// access). Call once, before any concurrent use.
  void RestoreFromMeta(const StoreMeta& meta);

  /// Checkpoint barrier. Blocks until every in-flight mutator (thread
  /// inside a MutatorScope or holding >= 1 paper lock) drains and holds
  /// new mutators out — readers are never gated — then invokes
  /// `fill_tree_meta` to capture the tree-level state (prime block,
  /// size, hints) at the barrier, flushes every dirty resident page to
  /// the store, snapshots the allocator state, and commits the store
  /// manifest. On return with OK the checkpoint is durable and contains
  /// every operation whose MutatorScope closed before the barrier.
  /// FailedPrecondition unless persistent(); must not be called from a
  /// thread holding paper locks or inside a MutatorScope.
  Status Checkpoint(const std::function<void(StoreMeta*)>& fill_tree_meta);

  /// RAII shared hold on the checkpoint gate for one WHOLE logical
  /// mutation (an insert/delete including its split ascent, or one
  /// compression rearrangement). The gate is reentrant per thread:
  /// paper-lock acquisitions inside an open scope do not re-enter it, so
  /// a checkpoint can never cut BETWEEN the lock-holding steps of a
  /// multi-step restructuring (e.g. after a split wrote the halves but
  /// before the separator reached the parent) — such half-states are
  /// valid B-link states but are not fixpoints the checker or a
  /// recovered tree should ever start from. No-op over a non-persistent
  /// manager. Cheap: one thread-local increment when no checkpoint is
  /// pending.
  class MutatorScope {
   public:
    explicit MutatorScope(PageManager* pm)
        : pm_(pm != nullptr && pm->persistent() ? pm : nullptr) {
      if (pm_ != nullptr) pm_->EnterMutatorGate();
    }
    ~MutatorScope() {
      if (pm_ != nullptr) pm_->ExitMutatorGate();
    }
    OBTREE_DISALLOW_COPY_AND_ASSIGN(MutatorScope);

   private:
    PageManager* pm_;
  };

 private:
  // Residency bits of Slot::state (consulted only when paged_).
  static constexpr uint32_t kSlotResident = 1u;
  static constexpr uint32_t kSlotDirty = 2u;

  struct Slot {
    std::atomic<uint64_t> seq{0};  // seqlock: odd while a put is in flight
    PaperLock paper_lock;          // 4-byte spin-then-park lock
    std::atomic<uint32_t> state{0};  // kSlotResident | kSlotDirty
    Page page;
  };

  static constexpr int kChunkBits = 10;  // 1024 pages (4 MiB) per chunk
  static constexpr size_t kChunkSize = 1ull << kChunkBits;
  static constexpr size_t kMaxChunks = 1ull << 14;  // up to 16M pages

  struct Chunk {
    Slot slots[kChunkSize];
  };

  Slot* SlotFor(PageId id) const;
  void EnsureChunk(size_t chunk_index);
  void MaybeSimulateIo() const;

  // --- buffer-pool internals (paged_ only) --------------------------------

  // Fault `id` into the arena if non-resident (no-op otherwise): seqlock
  // odd, read the store image into a scratch buffer, publish it into the
  // live page via relaxed word stores, mark resident, seqlock even.
  // Errors (checksum mismatch, transient I/O) leave the page
  // non-resident with its version restored.
  Status EnsureResident(PageId id, Slot* slot) const;
  Status FaultInSlot(PageId id, Slot* slot) const;

  // Mark a page resident + dirty after a full-image write (Allocate/Put
  // define the whole content, so no store read is needed). Caller holds
  // the slot's seqlock odd or is the sole referent (fresh allocation).
  void MarkResidentDirty(Slot* slot) const;

  // Clock sweep: while the resident count exceeds the pool budget, pick
  // victims round-robin, stage dirty ones to the store, zero the arena
  // copy and clear residency. Skips pages whose paper lock or seqlock is
  // held (a locked page may be pinned by an in-place reader/writer).
  void MaybeEvict() const;
  bool TryEvictSlot(PageId id) const;

  // Checkpoint gate (persistent mode only): mutators hold it shared —
  // normally for a whole logical operation via MutatorScope, with the
  // paper-lock span (first lock acquired -> last released) as a
  // defense-in-depth fallback for unwrapped paths — and Checkpoint
  // holds it exclusive. Reentrant per thread (a thread-local depth
  // counter): only the 0->1 transition waits and counts, only 1->0
  // releases, so a scope holder acquiring paper locks never re-waits
  // and cannot deadlock against a pending checkpoint. Readers never
  // touch the gate. A dedicated writer-count + flag instead of a
  // shared_mutex so the checkpointer cannot be starved by
  // reader-preferring implementations.
  void EnterMutatorGate();
  bool TryEnterMutatorGate();
  void ExitMutatorGate();

  // Slow-path helper for Lock/TryLockSpin: runs once an acquisition has
  // found the lock held. Returns true with the lock held (recording the
  // wait time and park count), false when `bounded` gave up.
  bool LockContended(Slot* slot, bool bounded);

  EpochManager* const epoch_;
  StatsCollector* const stats_;
  PageStore* const store_;   // never null (MemStore::Shared() by default)
  const bool paged_;         // store_->persistent(): gates all pool logic
  const uint32_t pool_cap_;  // 0 = unbounded
  mutable std::atomic<size_t> resident_count_{0};

  // Eviction sweep state; evict_mu_ also excludes eviction from the
  // checkpoint flush.
  mutable std::mutex evict_mu_;
  mutable size_t clock_hand_ = 0;

  // Checkpoint gate.
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  int active_mutators_ = 0;
  bool checkpoint_blocking_ = false;

  std::atomic<uint64_t> simulated_io_ns_{0};
  std::atomic<uint32_t> lock_spin_budget_{64};
  std::atomic<uint32_t> lock_backoff_max_{256};
  std::atomic<int64_t> allocation_budget_{-1};  // <0 = unlimited
  std::atomic<bool> has_test_hook_{false};
  TestHook test_hook_;

  // Unified trap point: fires the test hook (if installed) and evaluates
  // the failpoint site named `op`. Returns true when an error fault must
  // be injected (only call sites that pass error_eligible and handle the
  // return can see true). One relaxed load when nothing is armed anywhere.
  bool MaybeTrap(const char* op, PageId id, bool error_eligible) const {
    if (!FaultInjector::TrapsArmed()) return false;
    return TrapSlow(op, id, error_eligible);
  }
  bool TrapSlow(const char* op, PageId id, bool error_eligible) const;

  // Chunk directory: atomic pointers so readers can index while the
  // allocator grows the arena.
  mutable std::vector<std::atomic<Chunk*>> chunks_;
  std::atomic<uint32_t> next_fresh_;  // next never-used page id

  mutable std::mutex alloc_mu_;
  std::vector<PageId> free_list_;

  struct Retired {
    PageId id;
    Timestamp time;
  };
  mutable std::mutex retired_mu_;
  std::deque<Retired> retired_;  // FIFO: timestamps are non-decreasing
};

}  // namespace obtree

#endif  // OBTREE_STORAGE_PAGE_MANAGER_H_
