// Copyright 2026 The obtree Authors.
//
// PageStore: the backend a PageManager keeps page images on.
//
// The paper's storage model (Section 2.2) maps every node to secondary
// storage; PageManager implements the concurrency half of that model (the
// seqlock get/put indivisibility and the paper lock) and delegates WHERE
// the bytes ultimately live to a PageStore:
//
//   * MemStore (mem_store.h) — the default: pages live only in the
//     manager's RAM arena and the store is a no-op. Behavior is
//     bit-for-bit what it was before the interface existed; the
//     simulated-I/O cost model stays in PageManager.
//   * FileStore (file_store.h) — real persistence: 4 KB-aligned slots in
//     a data file via pread/pwrite, checksummed images, and a crash-safe
//     checkpoint protocol (shadow-slot writes + fsync + atomic manifest
//     rename).
//
// The manager treats the store as a plain byte-level backing device: it
// calls ReadPage when a non-resident page must be faulted into the arena,
// WritePage when a dirty page is evicted or flushed, and Commit at a
// checkpoint barrier. All durability semantics (which slot a write lands
// in, when it becomes part of the recoverable image) belong to the store.

#ifndef OBTREE_STORAGE_PAGE_STORE_H_
#define OBTREE_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <vector>

#include "obtree/storage/page.h"
#include "obtree/util/common.h"
#include "obtree/util/status.h"

namespace obtree {

/// Everything beyond raw page bytes that a checkpoint must capture for a
/// later Recover to rebuild the tree: the allocator frontier and free
/// list (PageManager state) plus the prime block, logical size, and
/// append-path hints (SagivTree state). Serialized into the manifest by
/// FileStore::Commit; ignored by MemStore.
struct StoreMeta {
  /// Monotone checkpoint counter: 0 = never checkpointed; assigned by
  /// the store at Commit (committed epoch + 1). After recovery it tells
  /// the crash harness exactly which committed prefix of a deterministic
  /// workload the image corresponds to.
  uint64_t checkpoint_epoch = 0;

  // --- PageManager state (filled by PageManager::Checkpoint) ------------
  uint32_t next_fresh = 0;            ///< allocator high-water mark
  std::vector<PageId> free_pages;     ///< free + retired (recovery has no
                                      ///< in-flight readers, so retired
                                      ///< pages are plain free pages)

  // --- SagivTree state --------------------------------------------------
  uint64_t tree_size = 0;             ///< logical key count at the barrier
  std::vector<PageId> leftmost;       ///< prime block: leftmost[level]
  Key max_key = 0;                    ///< append fast-path watermark
  PageId rightmost_leaf = kInvalidPageId;  ///< append fast-path hint
};

/// Abstract backing device for page images. All methods are thread-safe;
/// WritePage/Commit callers serialize per page via the manager's seqlock
/// and checkpoint gate.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// True when images written here survive the process (FileStore). The
  /// manager only runs its residency/eviction machinery — and SagivTree
  /// only admits Checkpoint() — over a persistent store.
  virtual bool persistent() const = 0;

  /// Read page `id` into `buf` (kPageSize bytes). A page that was never
  /// written is delivered as all-zero bytes (an inert empty node), not an
  /// error. Returns DataLoss when a stored image fails its checksum.
  virtual Status ReadPage(PageId id, void* buf) = 0;

  /// Stage the image of page `id` (kPageSize bytes). The write lands in
  /// the page's uncommitted shadow slot: it is NOT part of the
  /// recoverable image until the next Commit, so a crash mid-write can
  /// only tear bytes recovery will never read.
  virtual Status WritePage(PageId id, const void* buf) = 0;

  /// Checkpoint barrier: make every image staged since the previous
  /// Commit — plus `meta` — the recoverable state, atomically. On return
  /// with OK the new checkpoint is durable; on any failure (or a crash at
  /// any interior point) recovery sees the PREVIOUS checkpoint intact.
  /// Sets meta->checkpoint_epoch to the epoch it committed.
  virtual Status Commit(StoreMeta* meta) = 0;
};

}  // namespace obtree

#endif  // OBTREE_STORAGE_PAGE_STORE_H_
