// Copyright 2026 The obtree Authors.
//
// A Page models one block of "secondary storage" (Section 2.2 of the
// paper). Every tree node occupies exactly one page; get/put of a page is
// indivisible (enforced by PageManager's per-page seqlock).

#ifndef OBTREE_STORAGE_PAGE_H_
#define OBTREE_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "obtree/util/common.h"

namespace obtree {

/// Size in bytes of one page / node.
inline constexpr size_t kPageSize = 4096;

/// Raw page buffer. Alignment of 8 allows word-granular atomic copies.
struct alignas(8) Page {
  uint8_t bytes[kPageSize];

  /// Reinterpret the page contents as a POD type T (e.g. Node).
  template <typename T>
  T* As() {
    static_assert(sizeof(T) <= kPageSize);
    return reinterpret_cast<T*>(bytes);
  }
  template <typename T>
  const T* As() const {
    static_assert(sizeof(T) <= kPageSize);
    return reinterpret_cast<const T*>(bytes);
  }

  void Clear() { std::memset(bytes, 0, kPageSize); }
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace obtree

#endif  // OBTREE_STORAGE_PAGE_H_
