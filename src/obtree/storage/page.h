// Copyright 2026 The obtree Authors.
//
// A Page models one block of "secondary storage" (Section 2.2 of the
// paper). Every tree node occupies exactly one page; get/put of a page is
// indivisible (enforced by PageManager's per-page seqlock).

#ifndef OBTREE_STORAGE_PAGE_H_
#define OBTREE_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "obtree/util/common.h"

namespace obtree {

/// Size in bytes of one page / node.
inline constexpr size_t kPageSize = 4096;

/// Relaxed word-granular atomic accessors for bytes of a live page that
/// may be probed by optimistic readers while a seqlock writer rewrites
/// it. C++17 has no std::atomic_ref, so these wrap the __atomic builtins
/// both supported compilers (GCC, Clang) provide. Used by PageManager's
/// copy loops and by Node's in-place mutation primitives; the seqlock
/// version protocol is what makes the relaxed ordering sufficient
/// (readers discard anything read under a moved version).
inline uint64_t PageLoadWord(const uint64_t* p) {
  return __atomic_load_n(p, __ATOMIC_RELAXED);
}
inline void PageStoreWord(uint64_t* p, uint64_t v) {
  __atomic_store_n(p, v, __ATOMIC_RELAXED);
}
inline void PageStoreWord32(uint32_t* p, uint32_t v) {
  __atomic_store_n(p, v, __ATOMIC_RELAXED);
}

/// Raw page buffer. Alignment of 8 allows word-granular atomic copies.
struct alignas(8) Page {
  uint8_t bytes[kPageSize];

  /// Reinterpret the page contents as a POD type T (e.g. Node).
  template <typename T>
  T* As() {
    static_assert(sizeof(T) <= kPageSize);
    return reinterpret_cast<T*>(bytes);
  }
  template <typename T>
  const T* As() const {
    static_assert(sizeof(T) <= kPageSize);
    return reinterpret_cast<const T*>(bytes);
  }

  void Clear() { std::memset(bytes, 0, kPageSize); }
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace obtree

#endif  // OBTREE_STORAGE_PAGE_H_
