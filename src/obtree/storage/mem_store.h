// Copyright 2026 The obtree Authors.
//
// MemStore: the default, non-persistent PageStore. Pages live only in the
// PageManager's RAM arena, exactly as before the PageStore interface
// existed: the manager sees persistent() == false and never runs its
// residency, eviction, or checkpoint machinery, so the hot paths are
// bit-for-bit the pre-interface code. The store methods exist only to
// satisfy the interface and are never reached in that configuration.

#ifndef OBTREE_STORAGE_MEM_STORE_H_
#define OBTREE_STORAGE_MEM_STORE_H_

#include <cstring>

#include "obtree/storage/page_store.h"

namespace obtree {

/// No-op in-memory backend (the default PageStore).
class MemStore : public PageStore {
 public:
  MemStore() = default;

  bool persistent() const override { return false; }

  Status ReadPage(PageId id, void* buf) override {
    (void)id;
    std::memset(buf, 0, kPageSize);  // never-written pages read as zeros
    return Status::OK();
  }

  Status WritePage(PageId id, const void* buf) override {
    (void)id;
    (void)buf;
    return Status::OK();
  }

  Status Commit(StoreMeta* meta) override {
    (void)meta;
    return Status::FailedPrecondition("MemStore cannot checkpoint");
  }

  /// The process-wide shared instance PageManager defaults to (stateless,
  /// so one object serves every manager).
  static MemStore* Shared() {
    static MemStore instance;
    return &instance;
  }
};

}  // namespace obtree

#endif  // OBTREE_STORAGE_MEM_STORE_H_
