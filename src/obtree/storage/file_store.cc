// Copyright 2026 The obtree Authors.

#include "obtree/storage/file_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "obtree/util/fault_injector.h"

namespace obtree {

namespace {

constexpr uint64_t kManifestMagic = 0x464d454552544f42ULL;  // "OBTREEMF"
constexpr uint32_t kManifestVersion = 1;
constexpr char kDataFileName[] = "pages.dat";
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestTmpName[] = "MANIFEST.tmp";

// Bytes of the new image a "store-write" kCrash persists before dying:
// one classic disk sector, so recovery faces a genuinely torn page.
constexpr size_t kTornWriteBytes = 512;

off_t SlotOffset(PageId id, uint8_t slot) {
  return static_cast<off_t>((static_cast<uint64_t>(id) * 2 + slot) *
                            kPageSize);
}

// Full-length pwrite (retrying short writes / EINTR).
Status PwriteAll(int fd, const void* buf, size_t n, off_t off) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, p, n, off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("pwrite: ") +
                                 std::strerror(errno));
    }
    p += w;
    off += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

// Full-length pread; *short_read reports bytes missing off the end (a
// slot past EOF reads as zeros for never-written pages).
Status PreadAll(int fd, void* buf, size_t n, off_t off, size_t* got) {
  char* p = static_cast<char*>(buf);
  *got = 0;
  while (n > 0) {
    const ssize_t r = ::pread(fd, p, n, off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("pread: ") +
                                 std::strerror(errno));
    }
    if (r == 0) break;  // EOF
    p += r;
    off += r;
    n -= static_cast<size_t>(r);
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

// --- little-endian buffer serialization -----------------------------------

void Put32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void Put64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

// Bounds-checked little-endian reads; ok() goes false on overrun and
// stays false (so a parse can run straight through and check once).
class Parser {
 public:
  Parser(const char* data, size_t n) : data_(data), n_(n) {}

  uint32_t U32() { return static_cast<uint32_t>(Bytes(4)); }
  uint64_t U64() { return Bytes(8); }
  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }

 private:
  uint64_t Bytes(int width) {
    if (!ok_ || n_ - pos_ < static_cast<size_t>(width)) {
      ok_ = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += static_cast<size_t>(width);
    return v;
  }

  const char* data_;
  size_t n_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

uint32_t FileStore::Crc32(const void* data, size_t n) {
  // IEEE CRC-32, bitwise-table hybrid; table built once.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

FileStore::FileStore(std::string dir, int data_fd, int dir_fd)
    : dir_(std::move(dir)), data_fd_(data_fd), dir_fd_(dir_fd) {}

FileStore::~FileStore() {
  ::close(data_fd_);
  ::close(dir_fd_);
}

Result<std::unique_ptr<FileStore>> FileStore::Open(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("FileStore directory must be non-empty");
  }
  // mkdir -p: create every missing ancestor so callers can point a fresh
  // store at a nested path (ShardedMap derives "<dir>/shard-<i>" before
  // <dir> exists).
  for (size_t pos = 1; pos <= dir.size(); ++pos) {
    if (pos < dir.size() && dir[pos] != '/') continue;
    const std::string prefix = dir.substr(0, pos);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Unavailable(std::string("mkdir ") + prefix + ": " +
                                 std::strerror(errno));
    }
  }
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::Unavailable(std::string("open ") + dir + ": " +
                               std::strerror(errno));
  }
  const std::string data_path = dir + "/" + kDataFileName;
  const int data_fd = ::open(data_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (data_fd < 0) {
    ::close(dir_fd);
    return Status::Unavailable(std::string("open ") + data_path + ": " +
                               std::strerror(errno));
  }
  // A leftover tmp manifest means a crash hit before the rename: the
  // committed manifest (if any) is the truth, the tmp is garbage.
  ::unlink((dir + "/" + kManifestTmpName).c_str());

  std::unique_ptr<FileStore> store(new FileStore(dir, data_fd, dir_fd));
  Status s = store->LoadManifest();
  if (!s.ok()) return s;
  return store;
}

Status FileStore::LoadManifest() {
  const std::string path = dir_ + "/" + kManifestName;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::OK();  // fresh store
    return Status::Unavailable(std::string("open ") + path + ": " +
                               std::strerror(errno));
  }
  std::string blob;
  {
    char buf[1 << 16];
    for (;;) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::Unavailable(std::string("read ") + path + ": " +
                                   std::strerror(errno));
      }
      if (r == 0) break;
      blob.append(buf, static_cast<size_t>(r));
    }
  }
  ::close(fd);

  if (blob.size() < 4) return Status::DataLoss("manifest truncated");
  Parser tail(blob.data() + blob.size() - 4, 4);
  const uint32_t trailer = tail.U32();
  if (Crc32(blob.data(), blob.size() - 4) != trailer) {
    return Status::DataLoss("manifest checksum mismatch");
  }

  Parser p(blob.data(), blob.size() - 4);
  if (p.U64() != kManifestMagic) return Status::DataLoss("manifest magic");
  if (p.U32() != kManifestVersion) {
    return Status::DataLoss("manifest version");
  }
  StoreMeta meta;
  meta.checkpoint_epoch = p.U64();
  meta.next_fresh = p.U32();
  meta.tree_size = p.U64();
  meta.max_key = p.U64();
  meta.rightmost_leaf = p.U32();
  const uint32_t num_levels = p.U32();
  if (!p.ok() || num_levels > 64) return Status::DataLoss("manifest levels");
  meta.leftmost.resize(num_levels);
  for (uint32_t i = 0; i < num_levels; ++i) meta.leftmost[i] = p.U32();
  const uint32_t free_count = p.U32();
  if (!p.ok() || free_count > meta.next_fresh) {
    return Status::DataLoss("manifest free list");
  }
  meta.free_pages.resize(free_count);
  for (uint32_t i = 0; i < free_count; ++i) meta.free_pages[i] = p.U32();
  const uint32_t page_count = p.U32();
  if (!p.ok() || page_count > meta.next_fresh) {
    return Status::DataLoss("manifest page table");
  }
  std::unordered_map<PageId, SlotInfo> table;
  table.reserve(page_count);
  for (uint32_t i = 0; i < page_count; ++i) {
    const PageId id = p.U32();
    const uint32_t slot = p.U32();
    const uint32_t crc = p.U32();
    if (slot > 1) return Status::DataLoss("manifest slot bit");
    table[id] = SlotInfo{static_cast<uint8_t>(slot), crc};
  }
  if (!p.ok()) return Status::DataLoss("manifest truncated");

  std::lock_guard<std::mutex> lk(mu_);
  committed_ = std::move(table);
  committed_epoch_ = meta.checkpoint_epoch;
  recovered_meta_ = std::move(meta);
  has_checkpoint_ = true;
  return Status::OK();
}

Status FileStore::ReadPage(PageId id, void* buf) {
  SlotInfo info{0, 0};
  bool known = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto pend = pending_.find(id);
    if (pend != pending_.end()) {
      info = pend->second;
      known = true;
    } else {
      auto com = committed_.find(id);
      if (com != committed_.end()) {
        info = com->second;
        known = true;
      }
    }
  }
  if (!known) {
    // Never written: an inert all-zero image (decodes as an empty node).
    std::memset(buf, 0, kPageSize);
    return Status::OK();
  }
  size_t got = 0;
  Status s = PreadAll(data_fd_, buf, kPageSize, SlotOffset(id, info.slot),
                      &got);
  if (!s.ok()) return s;
  if (got < kPageSize) {
    return Status::DataLoss("page image truncated");
  }
  if (Crc32(buf, kPageSize) != info.crc) {
    return Status::DataLoss("page checksum mismatch");
  }
  return Status::OK();
}

Status FileStore::WritePage(PageId id, const void* buf) {
  uint8_t slot;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto pend = pending_.find(id);
    if (pend != pending_.end()) {
      slot = pend->second.slot;  // re-stage into the same shadow slot
    } else {
      auto com = committed_.find(id);
      slot = com == committed_.end()
                 ? 0
                 : static_cast<uint8_t>(1 - com->second.slot);
    }
  }
  const FaultOutcome f = FaultInjector::TrapsArmed()
                             ? FaultInjector::Instance().Evaluate("store-write")
                             : FaultOutcome();
  if (f.crash) {
    // Power cut mid-write: one sector of the new image lands, then death.
    // The torn bytes live in an UNCOMMITTED slot, which is the property
    // the crash harness exists to verify.
    (void)PwriteAll(data_fd_, buf, kTornWriteBytes, SlotOffset(id, slot));
    std::_Exit(kCrashExitCode);
  }
  if (f.inject_error) {
    return Status::Unavailable("injected store-write failure");
  }
  Status s = PwriteAll(data_fd_, buf, kPageSize, SlotOffset(id, slot));
  if (!s.ok()) return s;
  const uint32_t crc = Crc32(buf, kPageSize);
  std::lock_guard<std::mutex> lk(mu_);
  pending_[id] = SlotInfo{slot, crc};
  return Status::OK();
}

Status FileStore::PublishManifestLocked(
    const StoreMeta& meta,
    const std::unordered_map<PageId, SlotInfo>& table) {
  std::string blob;
  blob.reserve(64 + 12 * table.size() + 4 * meta.free_pages.size());
  Put64(&blob, kManifestMagic);
  Put32(&blob, kManifestVersion);
  Put64(&blob, meta.checkpoint_epoch);
  Put32(&blob, meta.next_fresh);
  Put64(&blob, meta.tree_size);
  Put64(&blob, meta.max_key);
  Put32(&blob, meta.rightmost_leaf);
  Put32(&blob, static_cast<uint32_t>(meta.leftmost.size()));
  for (PageId id : meta.leftmost) Put32(&blob, id);
  Put32(&blob, static_cast<uint32_t>(meta.free_pages.size()));
  for (PageId id : meta.free_pages) Put32(&blob, id);
  Put32(&blob, static_cast<uint32_t>(table.size()));
  for (const auto& kv : table) {
    Put32(&blob, kv.first);
    Put32(&blob, kv.second.slot);
    Put32(&blob, kv.second.crc);
  }
  Put32(&blob, Crc32(blob.data(), blob.size()));

  const std::string tmp_path = dir_ + "/" + kManifestTmpName;
  const std::string final_path = dir_ + "/" + kManifestName;
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable(std::string("open ") + tmp_path + ": " +
                               std::strerror(errno));
  }
  Status s = PwriteAll(fd, blob.data(), blob.size(), 0);
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::Unavailable(std::string("fsync manifest: ") +
                            std::strerror(errno));
  }
  ::close(fd);
  if (!s.ok()) return s;

  // The tmp manifest is durable; the rename below is the commit point.
  const FaultOutcome f =
      FaultInjector::TrapsArmed()
          ? FaultInjector::Instance().Evaluate("manifest-rename")
          : FaultOutcome();
  if (f.crash) std::_Exit(kCrashExitCode);
  if (f.inject_error) {
    return Status::Unavailable("injected manifest-rename failure");
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Unavailable(std::string("rename manifest: ") +
                               std::strerror(errno));
  }
  if (::fsync(dir_fd_) != 0) {
    return Status::Unavailable(std::string("fsync dir: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

Status FileStore::Commit(StoreMeta* meta) {
  std::lock_guard<std::mutex> lk(mu_);

  const FaultOutcome f = FaultInjector::TrapsArmed()
                             ? FaultInjector::Instance().Evaluate("store-fsync")
                             : FaultOutcome();
  if (f.crash) std::_Exit(kCrashExitCode);
  if (f.inject_error) {
    return Status::Unavailable("injected store-fsync failure");
  }
  if (::fsync(data_fd_) != 0) {
    return Status::Unavailable(std::string("fsync pages.dat: ") +
                               std::strerror(errno));
  }

  std::unordered_map<PageId, SlotInfo> merged = committed_;
  for (const auto& kv : pending_) merged[kv.first] = kv.second;
  meta->checkpoint_epoch = committed_epoch_ + 1;

  Status s = PublishManifestLocked(*meta, merged);
  if (!s.ok()) return s;

  committed_ = std::move(merged);
  committed_epoch_ = meta->checkpoint_epoch;
  pending_.clear();
  has_checkpoint_ = true;

  // The checkpoint is durable from here; this site exists so the crash
  // harness can verify that a post-commit death recovers the NEW epoch.
  const FaultOutcome g =
      FaultInjector::TrapsArmed()
          ? FaultInjector::Instance().Evaluate("checkpoint-commit")
          : FaultOutcome();
  if (g.crash) std::_Exit(kCrashExitCode);
  return Status::OK();
}

}  // namespace obtree
