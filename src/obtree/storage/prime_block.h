// Copyright 2026 The obtree Authors.
//
// The prime block of Section 3.3: it stores the number of levels in the
// tree and a pointer to the leftmost node of every level. The leftmost node
// of a level never changes once created, so creating a new root only
// appends one pointer and bumps the level count; collapsing the root only
// decrements the level count (the leftmost array entries of dead levels are
// retained but ignored).
//
// Per the paper, the prime block is rewritten only by a process holding the
// lock on the current root, so it needs no lock of its own; reads must be
// indivisible, which we provide with a seqlock.

#ifndef OBTREE_STORAGE_PRIME_BLOCK_H_
#define OBTREE_STORAGE_PRIME_BLOCK_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>

#include "obtree/util/common.h"

namespace obtree {

/// Maximum number of levels a tree may grow to. With fanout >= 4 this is
/// unreachable in practice.
inline constexpr int kMaxLevels = 40;

/// Snapshot of the prime block contents.
struct PrimeBlockData {
  uint32_t num_levels = 0;             ///< levels including the leaf level
  PageId leftmost[kMaxLevels] = {};    ///< leftmost node per level

  /// The root is the leftmost (and only) node of the top level.
  PageId root() const {
    assert(num_levels > 0);
    return leftmost[num_levels - 1];
  }
  /// Level of the root (leaves are level 0).
  uint32_t root_level() const {
    assert(num_levels > 0);
    return num_levels - 1;
  }
};

/// Seqlock-protected prime block. The payload is copied through relaxed
/// word-sized atomic accesses (the seq_ check discards torn snapshots),
/// keeping the concurrent read/write well-defined for the C++ memory
/// model and for TSan.
class PrimeBlock {
 public:
  PrimeBlock() : seq_(0) { std::memset(words_, 0, sizeof(words_)); }
  OBTREE_DISALLOW_COPY_AND_ASSIGN(PrimeBlock);

  /// Indivisible read of the prime block (every tree access begins here).
  PrimeBlockData Read() const {
    uint64_t buf[kWords];
    for (;;) {
      const uint64_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1) continue;
      for (size_t i = 0; i < kWords; ++i) {
        buf[i] = __atomic_load_n(&words_[i], __ATOMIC_RELAXED);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) break;
    }
    PrimeBlockData out;
    std::memcpy(&out, buf, sizeof(out));
    return out;
  }

  /// Rewrite the prime block. Caller must hold the lock on the current
  /// root node (paper invariant), so writers are serialized.
  void Write(const PrimeBlockData& data) {
    uint64_t buf[kWords] = {};
    std::memcpy(buf, &data, sizeof(data));
    seq_.fetch_add(1, std::memory_order_acq_rel);  // odd: write in progress
    for (size_t i = 0; i < kWords; ++i) {
      __atomic_store_n(&words_[i], buf[i], __ATOMIC_RELAXED);
    }
    seq_.fetch_add(1, std::memory_order_release);
  }

 private:
  static constexpr size_t kWords = (sizeof(PrimeBlockData) + 7) / 8;

  std::atomic<uint64_t> seq_;
  uint64_t words_[kWords];
};

}  // namespace obtree

#endif  // OBTREE_STORAGE_PRIME_BLOCK_H_
