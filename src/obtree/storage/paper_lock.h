// Copyright 2026 The obtree Authors.
//
// PaperLock: the compact lock behind the paper's lock(x)/unlock(x).
//
// The first four PRs removed the copy traffic from both hot paths; what
// was left of the single-tree scaling deficit was the lock itself. A
// std::mutex parks a contended thread in the kernel immediately, so a
// writer convoy on a hot leaf turns a ~100 ns in-place mutation into a
// train of futex sleeps and wakeups. Following the B-link line of work
// (and Blink-hash's contention-adaptive latching), the lock — not just
// its scope — is treated as a first-class performance object:
//
//   * 4 bytes of state (vs 40 for std::mutex), so a page Slot stays
//     compact and the lock word shares no cache line with another lock;
//   * test-and-test-and-set acquisition: contended waiters spin on a
//     plain load (shared cache state) and only attempt the CAS when the
//     lock looks free, so they do not ping-pong the line;
//   * exponential backoff between probes, capped, degrading to
//     sched_yield at the cap — on few-core hosts the holder must be
//     scheduled for anyone to make progress;
//   * parking only after a bounded spin: a waiter that exhausts its spin
//     budget sleeps on a futex (Linux) or a yield loop (elsewhere) and
//     is woken by the releasing thread.
//
// Semantics are exactly those of the mutex it replaces: mutual exclusion
// between lockers, no effect on readers, no recursion, no fairness
// guarantee (the futex queue is approximately FIFO among parked waiters;
// spinners may overtake them). The paper's proof obligations only need
// mutual exclusion and eventual acquisition, both of which hold.
//
// The spin budget and backoff cap are per-call parameters (plumbed from
// TreeOptions via PageManager) rather than members, so the 4-byte state
// is the lock's entire footprint.

#ifndef OBTREE_STORAGE_PAPER_LOCK_H_
#define OBTREE_STORAGE_PAPER_LOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace obtree {

/// Compact spin-then-park mutual-exclusion lock (see file comment).
class PaperLock {
 public:
  PaperLock() = default;
  PaperLock(const PaperLock&) = delete;
  PaperLock& operator=(const PaperLock&) = delete;

  /// One attempt to acquire; never blocks, never spins.
  bool TryLock() {
    uint32_t expected = kFree;
    return state_.compare_exchange_strong(expected, kHeld,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  /// Bounded acquisition attempt: up to `spin_budget` test-and-test-and-set
  /// probe rounds with exponential backoff (capped at `backoff_max` pause
  /// iterations; at the cap each round also yields, so a preempted holder
  /// can run on few-core hosts). Returns true with the lock held, false
  /// once the budget is exhausted — never parks.
  bool SpinAcquire(uint32_t spin_budget, uint32_t backoff_max) {
    uint32_t delay = 1;
    for (uint32_t round = 0; round < spin_budget; ++round) {
      if (state_.load(std::memory_order_relaxed) == kFree && TryLock()) {
        return true;
      }
      for (uint32_t p = 0; p < delay; ++p) CpuRelax();
      if (delay < backoff_max / 2) {
        delay <<= 1;
      } else if (delay < backoff_max) {
        delay = backoff_max;
      } else {
        std::this_thread::yield();
      }
    }
    return false;
  }

  /// Unbounded acquisition: spin per SpinAcquire, then park until the
  /// holder releases. Returns true iff the thread parked (slept) at least
  /// once — the caller's "this acquisition hit the slow path" signal.
  bool Lock(uint32_t spin_budget, uint32_t backoff_max) {
    if (SpinAcquire(spin_budget, backoff_max)) return false;
    // Drepper-style parking: announce a waiter by exchanging the state to
    // kHeldWaiters. Seeing kFree back means we acquired (conservatively
    // keeping the waiters flag: Unlock then issues at most one spurious
    // wake); anything else means the lock is held and we sleep until the
    // releasing thread wakes us.
    bool parked = false;
    while (state_.exchange(kHeldWaiters, std::memory_order_acquire) !=
           kFree) {
      parked = true;
      FutexWait(kHeldWaiters);
    }
    return parked;
  }

  /// Release. Wakes one parked waiter if any thread announced itself.
  void Unlock() {
    if (state_.exchange(kFree, std::memory_order_release) == kHeldWaiters) {
      FutexWakeOne();
    }
  }

  /// True while any thread holds the lock (test/diagnostic use only —
  /// the answer is stale the instant it is produced).
  bool IsLockedForTest() const {
    return state_.load(std::memory_order_relaxed) != kFree;
  }

 private:
  // kFree -> kHeld on an uncontended acquire; any parked waiter promotes
  // the held state to kHeldWaiters so Unlock knows a wake is needed.
  static constexpr uint32_t kFree = 0;
  static constexpr uint32_t kHeld = 1;
  static constexpr uint32_t kHeldWaiters = 2;

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  // Sleep while the state word equals `expected`. The kernel re-checks
  // the word under its internal lock, so a racing Unlock cannot lose the
  // wakeup. All happens-before edges come from the state_ atomics; the
  // futex is purely a sleeping primitive.
  void FutexWait(uint32_t expected) {
#if defined(__linux__)
    static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t),
                  "futex word must be the atomic's storage");
    syscall(SYS_futex, reinterpret_cast<uint32_t*>(&state_),
            FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
#else
    if (state_.load(std::memory_order_relaxed) == expected) {
      std::this_thread::yield();
    }
#endif
  }

  void FutexWakeOne() {
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<uint32_t*>(&state_),
            FUTEX_WAKE_PRIVATE, 1, nullptr, nullptr, 0);
#endif
  }

  std::atomic<uint32_t> state_{kFree};
};

}  // namespace obtree

#endif  // OBTREE_STORAGE_PAPER_LOCK_H_
