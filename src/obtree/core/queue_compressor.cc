// Copyright 2026 The obtree Authors.

#include "obtree/core/queue_compressor.h"

#include <cassert>
#include <thread>

#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/fault_injector.h"
#include "obtree/util/stats.h"

namespace obtree {

QueueCompressor::Outcome QueueCompressor::CompressOne() {
  // Maintenance reads must see ground truth: an injected fetch error here
  // would be misread as a stale task and silently discard real work.
  // Maintenance-layer faults are modeled one level up instead (pool
  // worker kills/stalls, site "pool-worker"/"pool-drain").
  FaultInjector::ScopedExemption exempt;
  CompressionTask task;
  if (!queue_->Pop(&task)) return Outcome::kQueueEmpty;
  const Timestamp stamp = task.stamp;
  const Outcome outcome = ProcessTask(std::move(task));
  // The stamp stops protecting the stack only after any requeue Push has
  // re-registered it, which ProcessTask did before returning.
  queue_->FinishTask(stamp);
  tree_->internal_pager()->Reclaim();
  return outcome;
}

QueueCompressor::Outcome QueueCompressor::ProcessTask(CompressionTask task) {
  PageManager* pager = tree_->internal_pager();
  StatsCollector* stats = tree_->stats();
  const uint32_t k = tree_->options().min_entries;
  const uint32_t parent_level = task.level + 1;

  // "The whole level is deleted": the node's level became (or is) the
  // root level after it was queued; nothing to do (§5.4).
  if (tree_->internal_prime()->Read().num_levels <= parent_level) {
    stats->Add(StatId::kQueueDiscards);
    return Outcome::kDropped;
  }

  // Pin the traversal; the queue's in-flight stamp keeps protecting the
  // recorded stack independently of this pin.
  EpochManager::Guard guard(tree_->epoch());

  // --- locate and lock the parent F -------------------------------------
  PageId start = kInvalidPageId;
  if (!task.stack.empty()) {
    start = task.stack.back();
  } else {
    Result<PageId> r = tree_->internal_FindNodeAtLevel(
        task.high, parent_level, nullptr, /*wait_for_level=*/false);
    if (!r.ok()) {
      stats->Add(StatId::kQueueDiscards);
      return Outcome::kDropped;
    }
    start = *r;
  }
  Page f_buf;
  Node* fn = f_buf.As<Node>();
  int restarts = 0;
  Result<PageId> fr = tree_->internal_AcquireTargetNode(
      task.high, parent_level, start, nullptr, &restarts, &f_buf,
      /*wait_for_level=*/false);
  if (!fr.ok()) {
    stats->Add(StatId::kQueueDiscards);
    return Outcome::kDropped;
  }
  const PageId f_page = *fr;

  // --- verify F still has the pair (pointer to A, recorded high) --------
  // Footnote 14: the high value must be the key of the very entry that
  // points to A.
  const int found = fn->FindChildIndex(task.node);
  const bool pair_ok = found >= 0 &&
                       fn->entries[static_cast<uint32_t>(found)].key ==
                           task.high;
  if (!pair_ok) {
    Page a_probe;
    pager->Get(task.node, &a_probe);
    const Node* an = a_probe.As<Node>();
    const bool high_unchanged = !an->is_deleted() &&
                                an->level == task.level &&
                                an->high == task.high;
    pager->Unlock(f_page);
    if (high_unchanged) {
      // The separator has not been posted into F yet; revisit later.
      queue_->Push(std::move(task), /*update_if_present=*/false);
      stats->Add(StatId::kQueueRequeues);
      return Outcome::kRequeued;
    }
    // A was split or compressed since; whoever did that re-queued it if
    // still needed (Theorem 2's discard argument).
    stats->Add(StatId::kQueueDiscards);
    return Outcome::kDropped;
  }
  const uint32_t idx = static_cast<uint32_t>(found);

  // --- special case: F holds only the pointer to A ----------------------
  if (fn->count == 1) {
    const bool f_is_root = fn->is_root();
    pager->Unlock(f_page);
    if (f_is_root) {
      // Root with a single child: try to shrink the tree.
      if (TryCollapseRoot(tree_) > 0) return Outcome::kRestructured;
    }
    // Either F must be compressed before A, or separators of A's siblings
    // are still in flight; retry later (§5.4).
    queue_->Push(std::move(task), /*update_if_present=*/false);
    stats->Add(StatId::kQueueRequeues);
    return Outcome::kRequeued;
  }

  Page a_buf;
  Node* an = a_buf.As<Node>();
  bool a_locked = false;

  // --- case (1): A is not the rightmost pointer in F --------------------
  if (idx + 1 < fn->count) {
    pager->Lock(task.node);
    a_locked = true;
    pager->Get(task.node, &a_buf);
    if (an->is_deleted() || an->level != task.level) {
      // Cannot happen while F is locked (compressing A needs F's lock);
      // defensive against stale ids.
      pager->Unlock(task.node);
      pager->Unlock(f_page);
      stats->Add(StatId::kQueueDiscards);
      return Outcome::kDropped;
    }
    const PageId right_page = an->link;
    if (right_page != kInvalidPageId) {
      pager->Lock(right_page);
      Page b_buf;
      pager->Get(right_page, &b_buf);
      Node* bn = b_buf.As<Node>();
      const bool adjacent =
          static_cast<PageId>(fn->entries[idx + 1].value) == right_page &&
          !bn->is_deleted();
      if (adjacent) {
        if (an->count >= k && bn->count >= k) {
          // Footnote 15: nothing to compress after all.
          pager->Unlock(right_page);
          pager->Unlock(task.node);
          pager->Unlock(f_page);
          return Outcome::kNothing;
        }
        RearrangeContext ctx;
        ctx.queue = queue_;
        ctx.stack = &task.stack;
        ctx.stamp = task.stamp;
        RearrangeResult res =
            RearrangePair(tree_, &f_buf, f_page, idx, &a_buf, task.node,
                          &b_buf, right_page, ctx);  // unlocks all three
        if (res.root_may_collapse) TryCollapseRoot(tree_);
        return Outcome::kRestructured;
      }
      pager->Unlock(right_page);
      // F has no pointer to A's right neighbor yet: fall through to try
      // the LEFT neighbor while A stays locked (footnote 16).
    }
  }

  // --- case (2): pair A with its left neighbor --------------------------
  if (idx == 0) {
    // No left neighbor inside F and the right pairing failed. Record the
    // freshest information we may legally write and retry later.
    if (a_locked) {
      task.high = an->high;  // we hold A's lock: update is allowed
      pager->Unlock(task.node);
      pager->Unlock(f_page);
      queue_->Push(std::move(task), /*update_if_present=*/true);
    } else {
      pager->Unlock(f_page);
      queue_->Push(std::move(task), /*update_if_present=*/false);
    }
    stats->Add(StatId::kQueueRequeues);
    return Outcome::kRequeued;
  }

  const PageId b_page = static_cast<PageId>(fn->entries[idx - 1].value);
  pager->Lock(b_page);
  Page b_buf;
  pager->Get(b_page, &b_buf);
  Node* bn = b_buf.As<Node>();
  if (bn->is_deleted() || bn->level != task.level ||
      bn->link != task.node) {
    // The link of B does not point to A: unposted split(s) sit between
    // them. Put A back and retry later (§5.4 case (2)).
    pager->Unlock(b_page);
    if (a_locked) {
      task.high = an->high;
      pager->Unlock(task.node);
      pager->Unlock(f_page);
      queue_->Push(std::move(task), /*update_if_present=*/true);
    } else {
      pager->Unlock(f_page);
      queue_->Push(std::move(task), /*update_if_present=*/false);
    }
    stats->Add(StatId::kQueueRequeues);
    return Outcome::kRequeued;
  }
  if (!a_locked) {
    pager->Lock(task.node);  // B first, then A (§5.4 case (2) order)
    a_locked = true;
    pager->Get(task.node, &a_buf);
    if (an->is_deleted() || an->level != task.level) {
      pager->Unlock(task.node);
      pager->Unlock(b_page);
      pager->Unlock(f_page);
      stats->Add(StatId::kQueueDiscards);
      return Outcome::kDropped;
    }
  }
  if (an->count >= k && bn->count >= k) {
    pager->Unlock(task.node);
    pager->Unlock(b_page);
    pager->Unlock(f_page);
    return Outcome::kNothing;
  }
  RearrangeContext ctx;
  ctx.queue = queue_;
  ctx.stack = &task.stack;
  ctx.stamp = task.stamp;
  RearrangeResult res = RearrangePair(tree_, &f_buf, f_page, idx - 1, &b_buf,
                                      b_page, &a_buf, task.node, ctx);
  if (res.root_may_collapse) TryCollapseRoot(tree_);
  return Outcome::kRestructured;
}

size_t QueueCompressor::Drain(int max_stall) {
  size_t work = 0;
  int stall = 0;
  while (stall < max_stall) {
    const Outcome outcome = CompressOne();
    switch (outcome) {
      case Outcome::kQueueEmpty:
        return work;
      case Outcome::kRestructured:
        ++work;
        stall = 0;
        break;
      case Outcome::kDropped:
      case Outcome::kNothing:
        stall = 0;  // the queue shrank: progress
        break;
      case Outcome::kRequeued:
        ++stall;
        std::this_thread::yield();
        break;
    }
  }
  return work;
}

void QueueCompressor::RunUntil(const std::atomic<bool>* stop,
                               std::chrono::milliseconds idle_sleep) {
  while (!stop->load(std::memory_order_acquire)) {
    const Outcome outcome = CompressOne();
    if (outcome == Outcome::kQueueEmpty &&
        !stop->load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(idle_sleep);
    } else if (outcome == Outcome::kRequeued) {
      std::this_thread::yield();
    }
  }
}

}  // namespace obtree
