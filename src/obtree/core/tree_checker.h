// Copyright 2026 The obtree Authors.
//
// Offline structural validation of a SagivTree. Intended for quiescent
// moments (no concurrent updaters or compressors); it verifies the
// invariants behind Theorem 1's validity argument, most importantly the
// Fig. 2 replay property: every nonleaf level is exactly the sequence of
// (high value, link) pairs of the level below it.

#ifndef OBTREE_CORE_TREE_CHECKER_H_
#define OBTREE_CORE_TREE_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obtree/core/sagiv_tree.h"
#include "obtree/util/histogram.h"
#include "obtree/util/status.h"

namespace obtree {

/// Aggregate shape statistics of a tree, gathered by a full walk.
struct TreeShape {
  uint32_t height = 0;          ///< levels (1 = lone root leaf)
  uint64_t num_keys = 0;        ///< entries at the leaf level
  uint64_t num_nodes = 0;       ///< live nodes across all levels
  uint64_t underfull_nodes = 0; ///< non-root nodes with < k entries
  double avg_leaf_fill = 0.0;   ///< mean leaf entries / capacity
  std::vector<uint64_t> nodes_per_level;  ///< index 0 = leaves

  /// Per-leaf fill percentage (entries * 100 / capacity), one sample per
  /// live leaf: the distribution behind avg_leaf_fill. Midpoint splits
  /// leave the body of the distribution near 50; the append-optimized
  /// tail-biased splits push it toward 100 (the current rightmost leaf is
  /// the one legitimately low sample). The live counterpart, sampled at
  /// split time instead of by a walk, is StatsCollector::
  /// LeafFillHistogram().
  Histogram leaf_fill_pct;

  std::string ToString() const;
};

/// Validator and shape walker. Holds no locks; run while quiescent.
class TreeChecker {
 public:
  explicit TreeChecker(const SagivTree* tree) : tree_(tree) {}

  /// Full structural validation:
  ///  * per level: link chain from the leftmost node to a nil link, with
  ///    strictly increasing keys, low/high chaining, first low = -inf,
  ///    last high = +inf, no deleted nodes, entry keys within (low, high];
  ///  * internal nodes: high value equals the last entry's key;
  ///  * the replay property between every pair of adjacent levels;
  ///  * exactly one node carries the root bit (the prime block's root);
  ///  * the leaf count matches tree->Size().
  /// When require_half_full is set, additionally require every non-root
  /// node except the rightmost of its level to hold >= k entries (the
  /// guarantee a completed compression pass provides).
  Status CheckStructure(bool require_half_full = false) const;

  /// Walk the tree and report its shape.
  TreeShape ComputeShape() const;

 private:
  const SagivTree* tree_;
};

}  // namespace obtree

#endif  // OBTREE_CORE_TREE_CHECKER_H_
