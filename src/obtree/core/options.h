// Copyright 2026 The obtree Authors.
//
// Tunables shared by the Sagiv tree, its compressors, and the baselines.

#ifndef OBTREE_CORE_OPTIONS_H_
#define OBTREE_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "obtree/node/node.h"
#include "obtree/util/status.h"

namespace obtree {

/// How a map keeps nodes at least half full (Section 5).
enum class CompressionMode {
  /// No compression: deletions never restructure (the Lehman-Yao
  /// behavior the paper improves on).
  kNone,
  /// One background process periodically sweeps the whole tree
  /// (Sections 5.1-5.2).
  kBackgroundScan,
  /// Deletions enqueue under-full nodes; worker threads drain a shared
  /// queue (Section 5.4, deployment (2); one worker = deployment (1)).
  kQueueWorkers,
};

/// Configuration of a tree instance.
struct TreeOptions {
  /// The paper's k: every node (except the root) holds between k and 2k
  /// entries. Must satisfy 2 <= k <= kMaxMinEntries (2k+1 entries must fit
  /// a page during a split-with-insert). k = 1 is rejected: our uniform
  /// node layout gives internal nodes 2k children (the paper's layout
  /// gives them 2k+1), and 2-children internal nodes degenerate under
  /// monotone insertion patterns — see DESIGN.md §6.
  uint32_t min_entries = 60;

  /// Safety valve: an operation that restarts more than this many times
  /// reports Status::Internal instead of looping forever. The paper proves
  /// restarts are finite for finite schedules; this guards against bugs.
  int max_restarts = 1 << 20;

  /// Bound on the §5.2 case-(1) wait ("wait until two is inserted into F"):
  /// number of yield-retry rounds a compressor performs before giving up on
  /// the pair for this pass / requeueing.
  int compression_wait_retries = 256;

  /// When true, a deletion that leaves a leaf under-full pushes it onto the
  /// tree's compression queue (Section 5.4). A QueueCompressor must be
  /// draining the queue for space to be recovered.
  bool enqueue_underfull_on_delete = false;

  /// When true (default), the unlocked read descents — Search, Scan, and
  /// the route-finding descent shared with updaters — read node headers
  /// and the one binary-search slot they need directly from the live page
  /// under seqlock version validation, instead of copying the full 4 KB
  /// page per node visited. Writers, the structural checker, and the
  /// compressors keep copy semantics regardless.
  bool optimistic_reads = true;

  /// Validation-failure budget of the optimistic read path, per logical
  /// operation: after this many discarded in-place reads (concurrent puts
  /// kept moving the page version) the operation falls back to copy-reads
  /// for its remainder (counted as StatId::kOptimisticFallbacks). Bounds
  /// tail latency when a node is rewritten continuously.
  int optimistic_retry_limit = 8;

  /// When true (default), the no-split/no-merge mutation hot path — an
  /// Insert landing in a non-full node, a Delete removing from a leaf —
  /// mutates the live page in place under the paper lock, bracketed by
  /// seqlock odd/even bumps (PageManager::BeginWrite), instead of copying
  /// the full 4 KB page out and back (>= 8 KB of memory traffic to change
  /// one slot). The paper lock makes the writer the sole mutator; the
  /// seqlock keeps optimistic readers safe (they discard anything read
  /// under an odd or moved version). Splits, root changes, Rearrange, and
  /// the compressors keep copy semantics regardless. An operation whose
  /// locked in-place inspection cannot validate (a racing page reuse)
  /// falls back to the copy path for that operation
  /// (StatId::kInplaceFallbacks).
  bool inplace_writes = true;

  /// When true (default), the tree optimizes the monotonic-insert pattern
  /// (auto-increment IDs, timestamps) two ways. (1) Rightmost fast path:
  /// an insert whose key exceeds the tree's current max skips the full
  /// descent — it locks a cached rightmost-leaf hint, validates under the
  /// lock that the node is still the live rightmost leaf (nil link,
  /// high = +inf) and that the key extends its max, and appends in place
  /// (Node::AppendLeafEntryInPlace: no tail shift, count published last
  /// under the usual seqlock bracketing). A stale hint — the leaf split,
  /// was merged away, or its page was reused — simply fails validation
  /// and the insert falls back to the normal descent, which refreshes the
  /// hint (StatId::kAppendFastHits / kAppendFastMisses). (2) Tail-biased
  /// splits: when the splitting node is the rightmost of its level and
  /// the incoming key is its new max, the split keeps all but the last
  /// entry on the left instead of half (StatId::kTailSplits), lifting
  /// steady-state leaf fill from ~50% to ~100% on monotonic load (the
  /// rightmost node of a level is exempt from the half-full invariant, so
  /// the near-empty new node is legal and fills with the next appends).
  /// Uniform and mixed workloads are unaffected: the fast path only arms
  /// for max-extending keys and the split bias only for rightmost nodes.
  bool append_leaves = true;

  /// Spin budget of the paper lock (storage/paper_lock.h): probe rounds a
  /// contended acquisition performs — test-and-test-and-set with
  /// exponential backoff — before parking on a futex (Lock) or giving the
  /// target back to the caller for re-validation (the write descent's
  /// bounded TryLockSpin). 0 parks immediately, reproducing the
  /// pre-PaperLock std::mutex behavior. Critical sections here are a few
  /// hundred ns (an in-place mutation between seqlock bumps), so a short
  /// spin almost always wins over a ~microseconds park/unpark cycle.
  uint32_t lock_spin_budget = 64;

  /// Cap on the exponential backoff between lock probes, in pause
  /// iterations (1, 2, 4, ... up to this cap; once capped, each further
  /// round also yields so a preempted holder can run on few-core hosts).
  uint32_t lock_backoff_max = 256;

  /// Fault tolerance: how many times a descent re-issues a page fetch
  /// that reported Status::Unavailable (an injected — or, once a real
  /// PageStore exists, a real — transient I/O error) before giving up and
  /// surfacing the error to the operation. Each retry backs off
  /// exponentially from fetch_retry_backoff_us. Retries are counted as
  /// StatId::kFetchRetries, exhaustions as kFetchGiveups.
  int fetch_retry_limit = 4;

  /// Base backoff between fetch retries, in microseconds (doubles per
  /// attempt, capped at 64x). 0 retries immediately.
  uint32_t fetch_retry_backoff_us = 2;

  /// Pipeline width of the batched operation engine (SagivTree::Multi*):
  /// how many descents one thread keeps in flight at once. Each round the
  /// engine groups the in-flight ops by current page, issues the group's
  /// simulated-I/O waits together (PageManager::PrefetchPages), then
  /// advances every continuation one level. Larger widths overlap more
  /// I/O per round but touch more pages between validations; with
  /// simulated I/O off the width only affects coalescing. Batches larger
  /// than the width are processed in width-sized windows; batch size 1
  /// falls back to the single-op path.
  uint32_t batch_max_inflight = 32;

  /// Simulated block-device latency per page get/put, in nanoseconds
  /// (0 = pure in-memory). The paper's nodes live on secondary storage;
  /// enabling this reproduces the I/O-bound regime its concurrency
  /// arguments target (see PageManager::set_simulated_io_ns).
  uint64_t simulated_io_ns = 0;

  /// Persistence: when non-empty, the tree's pages are backed by a
  /// FileStore rooted at this directory (created if absent) instead of
  /// the default in-memory MemStore. Construction recovers the newest
  /// committed checkpoint if the directory holds one; Checkpoint()
  /// becomes available (see docs/PERSISTENCE.md). Empty (the default)
  /// keeps the tree purely in memory, bit-for-bit the pre-persistence
  /// behavior.
  std::string storage_dir;

  /// Buffer-pool budget for a persistent tree: the number of page images
  /// kept resident in RAM. Above the budget, a clock sweep evicts
  /// resident pages (staging dirty ones to the store) and later accesses
  /// fault them back in (StatId::kPagesEvicted / kStoreReads). 0 = every
  /// page stays resident (no eviction). Ignored without storage_dir.
  /// When non-zero, values below 64 are rejected: the working set of one
  /// descent (root-to-leaf path + split spine) must fit with slack or
  /// the pool thrashes pathologically.
  uint32_t buffer_pool_pages = 0;

  /// Largest admissible k: 2k+1 entries must fit a page mid-split.
  static constexpr uint32_t kMaxMinEntries = (Node::kMaxEntries - 1) / 2;

  /// Node capacity (2k).
  uint32_t capacity() const { return 2 * min_entries; }

  /// Validate option values.
  Status Validate() const {
    if (min_entries < 2 || min_entries > kMaxMinEntries) {
      return Status::InvalidArgument("min_entries out of range");
    }
    if (max_restarts < 1) {
      return Status::InvalidArgument("max_restarts must be positive");
    }
    if (optimistic_retry_limit < 1) {
      return Status::InvalidArgument("optimistic_retry_limit must be positive");
    }
    if (lock_backoff_max < 1) {
      return Status::InvalidArgument("lock_backoff_max must be positive");
    }
    if (fetch_retry_limit < 0) {
      return Status::InvalidArgument("fetch_retry_limit must be >= 0");
    }
    if (batch_max_inflight < 1) {
      return Status::InvalidArgument("batch_max_inflight must be positive");
    }
    if (buffer_pool_pages != 0 && buffer_pool_pages < 64) {
      return Status::InvalidArgument(
          "buffer_pool_pages must be 0 (unbounded) or >= 64");
    }
    return Status::OK();
  }
};

/// Configuration of the online shard rebalancer (core/shard_rebalancer.h,
/// protocol and tuning playbook in docs/REBALANCING.md). The rebalancer
/// periodically snapshots per-shard load — logical op counters, paper-lock
/// contention, and BackgroundPool drain/boost rates — computes a hotness
/// score per shard, and migrates boundary key ranges under live traffic:
/// a hot shard is split (its upper half drains into a fresh tree), cold
/// adjacent shards are merged (the right tree drains into the left).
struct RebalanceOptions {
  /// Master switch. Off by default: the partition stays exactly as
  /// construction laid it out and ShardedMap adds zero routing overhead.
  /// On, every operation additionally pins a map-level epoch slot
  /// (~two CAS per op) so boundary swaps can wait out in-flight ops.
  bool enabled = false;

  /// Controller period in milliseconds: how often loads are snapshotted
  /// and at most one split/merge decision is taken. Shorter periods react
  /// faster but amplify sampling noise; see docs/REBALANCING.md for
  /// tuning guidance.
  uint32_t period_ms = 50;

  /// A shard is hot when its share of the period's operations exceeds
  /// hotness_threshold times the fair share (1/num_shards). 2.0 means
  /// "twice the traffic a balanced partition would give it". Must be
  /// > 1.0 or every shard of a balanced map would qualify.
  double hotness_threshold = 2.0;

  /// Two ADJACENT shards are cold — and merged — when their combined
  /// share of the period's operations is below cold_threshold times one
  /// fair share. Keep cold_threshold * hotness_threshold well below 2.0
  /// (i.e. a just-split pair must not immediately re-merge) or the
  /// controller can oscillate; Validate() enforces the safe ordering.
  double cold_threshold = 0.5;

  /// Bounds on the number of key-range partitions the controller may
  /// create or coalesce. Splits stop at max_shards, merges at
  /// min_shards. max_shards also bounds the memory retired donor trees
  /// can pin (a merged-away tree's page arena is reclaimed only at map
  /// destruction).
  uint32_t min_shards = 1;
  uint32_t max_shards = 64;

  /// Periods whose total operation delta falls below this are ignored
  /// (no split/merge): an idle or barely-used map must not be
  /// restructured on sampling noise.
  uint64_t min_ops_per_period = 2048;

  /// Keys a shard must hold before it is worth splitting (draining a
  /// nearly-empty hot shard moves contention, not data, and the split
  /// would churn the routing table for nothing).
  uint64_t min_keys_to_split = 512;

  /// Keys moved per migration batch. Each batch opens the migration's
  /// in-flight window (batch epoch) once; concurrent ops landing on the
  /// batch's key range wait it out (kMigrationRetries). Larger batches
  /// amortize scan cost but widen the window a racing op can wait on.
  uint32_t migration_batch = 256;

  /// Periods the controller stays quiet after a split or merge. The
  /// first quiet period also re-baselines the load snapshot, so the
  /// migration's own inserts/deletes never feed the next hotness score.
  uint32_t cooldown_periods = 2;

  /// Self-healing: consecutive failed batches a migration tolerates
  /// (each retried with backoff from the same scan position) before the
  /// whole migration aborts and rolls back to the donor.
  uint32_t migration_retry_limit = 3;

  /// Watchdog: wall-clock budget for one migration, in milliseconds.
  /// A migration that cannot finish within the deadline (stalled batches,
  /// persistent fetch errors) aborts at the next batch boundary and rolls
  /// back. 0 disables the deadline.
  uint32_t migration_deadline_ms = 10000;

  /// Circuit breaker: after this many CONSECUTIVE failed split/merge
  /// actions (a failure = migration aborted + rolled back; a skipped
  /// action — e.g. nothing to merge — does not count) the controller
  /// stops attempting actions entirely.
  uint32_t max_consecutive_failures = 3;

  /// Periods the tripped breaker stays open before re-arming (half-open:
  /// the next action's outcome decides whether it trips again).
  uint32_t breaker_cooldown_periods = 16;

  Status Validate() const {
    if (period_ms == 0) {
      return Status::InvalidArgument("rebalance period_ms must be positive");
    }
    if (hotness_threshold <= 1.0) {
      return Status::InvalidArgument("hotness_threshold must exceed 1.0");
    }
    if (cold_threshold < 0.0 || cold_threshold * hotness_threshold >= 2.0) {
      return Status::InvalidArgument(
          "cold_threshold must be >= 0 and cold_threshold * "
          "hotness_threshold < 2 (anti-oscillation)");
    }
    if (min_shards < 1 || max_shards < min_shards) {
      return Status::InvalidArgument(
          "need 1 <= min_shards <= max_shards");
    }
    if (migration_batch < 1) {
      return Status::InvalidArgument("migration_batch must be positive");
    }
    if (max_consecutive_failures < 1) {
      return Status::InvalidArgument(
          "max_consecutive_failures must be positive");
    }
    return Status::OK();
  }
};

/// Configuration of a ShardedMap: a key-range-partitioned front-end over
/// `num_shards` independent trees (see api/sharded_map.h).
struct ShardOptions {
  /// Tunables applied to every shard's tree.
  TreeOptions tree;

  /// Number of key-space partitions. Must be a power of two in
  /// [1, kMaxShards]; each shard is an independent SagivTree with its own
  /// locks, pager, and compression deployment.
  uint32_t num_shards = 4;

  /// Upper bound of the expected user key range. The key space
  /// [1, key_space_hint] is split into num_shards equal contiguous
  /// ranges; keys above the hint route to the last shard (correct but
  /// unbalanced), so size the hint to the workload's key space.
  Key key_space_hint = 1u << 20;

  /// Compression deployment replicated per shard.
  CompressionMode compression = CompressionMode::kQueueWorkers;

  /// Background compression workers per shard (>= 1; ignored for kNone).
  /// Only consulted when per_shard_workers is true: the default topology
  /// shares one BackgroundPool across every shard instead.
  int compression_threads_per_shard = 1;

  /// Size of the shared background-maintenance pool that drains every
  /// shard's compression queue (core/background_pool.h). 0 (the default)
  /// derives the size from the machine: the OBTREE_POOL_THREADS
  /// environment variable if set, else a hardware_concurrency-based
  /// share. The pool keeps the process's background-thread count fixed no
  /// matter how many shards exist.
  int pool_threads = 0;

  /// Fallback to the pre-pool topology: every shard spawns its own
  /// compression_threads_per_shard workers, so background threads grow
  /// linearly with num_shards. Kept for comparison benchmarks (E11d) and
  /// as an escape hatch; the shared pool is the default.
  bool per_shard_workers = false;

  /// Online shard rebalancing (default off). When enabled, num_shards is
  /// only the INITIAL partition: the rebalancer splits hot shards and
  /// merges cold neighbors at runtime, within
  /// [rebalance.min_shards, rebalance.max_shards].
  RebalanceOptions rebalance;

  static constexpr uint32_t kMaxShards = 1u << 10;

  /// Validate option values (shard count and hint; TreeOptions are
  /// validated by each shard's tree).
  Status Validate() const {
    if (num_shards < 1 || num_shards > kMaxShards ||
        (num_shards & (num_shards - 1)) != 0) {
      return Status::InvalidArgument(
          "num_shards must be a power of two in [1, kMaxShards]");
    }
    if (key_space_hint < num_shards) {
      return Status::InvalidArgument("key_space_hint smaller than shards");
    }
    if (compression_threads_per_shard < 1) {
      return Status::InvalidArgument(
          "compression_threads_per_shard must be positive");
    }
    if (pool_threads < 0) {
      return Status::InvalidArgument("pool_threads must be >= 0 (0 = auto)");
    }
    if (rebalance.enabled) {
      Status s = rebalance.Validate();
      if (!s.ok()) return s;
      if (num_shards > rebalance.max_shards) {
        return Status::InvalidArgument(
            "num_shards exceeds rebalance.max_shards");
      }
      if (!tree.storage_dir.empty()) {
        // A rebalance migration moves keys between shard trees with no
        // cross-shard checkpoint barrier, so per-shard manifests could
        // commit a key in two shards (or neither). Until checkpoints
        // span shards atomically, the combination is rejected.
        return Status::InvalidArgument(
            "rebalancing cannot be combined with storage_dir persistence");
      }
    }
    return tree.Validate();
  }
};

}  // namespace obtree

#endif  // OBTREE_CORE_OPTIONS_H_
