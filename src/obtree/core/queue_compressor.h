// Copyright 2026 The obtree Authors.
//
// The queue-driven compression process of Section 5.4. Deletions that
// leave a leaf under-full enqueue it; a QueueCompressor removes a node
// from the queue, locates its parent F (via the recorded stack, falling
// back to a root descent), verifies F still holds the recorded (pointer,
// high value) pair, locks the node and one of its neighbors, and merges or
// redistributes. Under-full survivors (including F) are put back on the
// queue, so compression cascades up the tree; a root left with a single
// child is collapsed.
//
// All three deployments of §5.4 are expressible:
//   (1) one compressor owning one queue;
//   (2) several compressors sharing one queue (spawn several workers);
//   (3) a private queue per deletion burst (construct ad hoc and Drain).

#ifndef OBTREE_CORE_QUEUE_COMPRESSOR_H_
#define OBTREE_CORE_QUEUE_COMPRESSOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>

#include "obtree/core/compression_queue.h"
#include "obtree/core/rearrange.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/util/common.h"

namespace obtree {

/// Worker that drains a CompressionQueue.
class QueueCompressor {
 public:
  /// Neither pointer is owned; both must outlive the compressor. The queue
  /// should be registered with the tree's epoch manager
  /// (CompressionQueue::RegisterWith) so stacks block page reuse.
  QueueCompressor(SagivTree* tree, CompressionQueue* queue)
      : tree_(tree), queue_(queue) {}
  OBTREE_DISALLOW_COPY_AND_ASSIGN(QueueCompressor);

  /// Outcome of processing one queue entry.
  enum class Outcome {
    kQueueEmpty,   ///< nothing to pop
    kRestructured, ///< a merge or redistribution (or root collapse) ran
    kDropped,      ///< entry was stale; discarded (§5.4 discard rule)
    kRequeued,     ///< entry put back for later (separator not posted yet)
    kNothing,      ///< node turned out to be >= half full (footnote 15)
  };

  /// Pop one node and attempt to compress it.
  Outcome CompressOne();

  /// Drain the queue until it is empty or `max_stall` consecutive attempts
  /// make no progress (every attempt requeues). Returns the number of
  /// restructurings performed.
  size_t Drain(int max_stall = 256);

  /// Background worker loop: drain, sleep when idle, until *stop.
  void RunUntil(const std::atomic<bool>* stop,
                std::chrono::milliseconds idle_sleep =
                    std::chrono::milliseconds(1));

 private:
  Outcome ProcessTask(CompressionTask task);

  SagivTree* tree_;
  CompressionQueue* queue_;
};

}  // namespace obtree

#endif  // OBTREE_CORE_QUEUE_COMPRESSOR_H_
