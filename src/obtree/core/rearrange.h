// Copyright 2026 The obtree Authors.
//
// The three-node restructuring step shared by ScanCompressor (Section
// 5.1-5.2) and QueueCompressor (Section 5.4): given a parent F and two
// adjacent children (left, right), all three paper-locked, either merge
// right into left (combined <= 2k entries) or redistribute so both hold
// >= k. Rewrites follow the order the paper's acknowledgment prescribes —
// the child that GAINS data first, then the parent, then the other child —
// and each node is unlocked immediately after it is rewritten.

#ifndef OBTREE_CORE_REARRANGE_H_
#define OBTREE_CORE_REARRANGE_H_

#include <cstdint>
#include <vector>

#include "obtree/core/compression_queue.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/storage/page.h"
#include "obtree/util/common.h"

namespace obtree {

/// Where under-full survivors of a rearrangement should be recorded
/// (queue-driven deployments of Section 5.4). All fields optional.
struct RearrangeContext {
  /// Queue for under-full survivors; nullptr = scan mode (no enqueue).
  CompressionQueue* queue = nullptr;
  /// Root-to-parent(left) path used to build requeue stacks. May be null.
  const std::vector<PageId>* stack = nullptr;
  /// Stamp protecting `stack` (Section 5.3).
  Timestamp stamp = 0;
  /// ABLATION ONLY (experiment E10): when false, rewrite parent-first
  /// instead of gaining-child-first. This deliberately violates the
  /// paper's ordering rule ("the child which gains new data should be
  /// rewritten first, then the parent and the other child") and opens a
  /// window in which a concurrent reader can miss a key that is present
  /// in the tree. Never disable outside the ablation bench.
  bool paper_write_order = true;
};

/// Outcome of RearrangePair.
struct RearrangeResult {
  bool merged = false;          ///< right was absorbed into left & deleted
  bool redistributed = false;   ///< entries moved, both now >= k
  /// F is the root and now has a single child: the caller should attempt
  /// a root collapse (TryCollapseRoot).
  bool root_may_collapse = false;
};

/// Perform the rearrangement. Preconditions (all verified by the caller
/// while holding the three locks):
///   * `f_page` is locked; *f is its image; f->entries[idx] points to
///     `left_page` and f->entries[idx+1] points to `right_page`;
///   * `left_page` and `right_page` are locked; *left / *right are their
///     images; left->link == right_page.
/// If neither child is under-full, unlocks all three and reports neither
/// merged nor redistributed. Otherwise performs the merge/redistribution,
/// writes and unlocks in paper order, retires the deleted page, and
/// updates `ctx.queue` (remove the dead node; requeue under-full
/// survivors while their locks are held).
RearrangeResult RearrangePair(SagivTree* tree, Page* f, PageId f_page,
                              uint32_t idx, Page* left, PageId left_page,
                              Page* right, PageId right_page,
                              const RearrangeContext& ctx);

/// Collapse single-child root chains: while the root is a nonleaf with one
/// entry whose child is the sole node of its level, make that child (or
/// the deepest such descendant) the new root, mark the abandoned chain
/// deleted, and rewrite the prime block (Section 5.4 root special case).
/// Safe to call concurrently with all other operations. Returns the number
/// of levels removed.
size_t TryCollapseRoot(SagivTree* tree);

}  // namespace obtree

#endif  // OBTREE_CORE_REARRANGE_H_
