// Copyright 2026 The obtree Authors.
//
// BackgroundPool: a fixed-size, machine-sized worker pool that performs
// compression for many trees at once. Section 5.4's point is that
// compression is decoupled from the operation path, so "a small number of
// background processes" can serve an arbitrarily large structure; this
// class realizes that for the sharded deployment. Instead of every
// ConcurrentMap spawning its own compression_threads workers (N shards =>
// N x threads, oversubscribing cores exactly when shard counts grow), one
// pool sized to the machine drains every shard's CompressionQueue.
//
//   shard 0 queue ---+
//   shard 1 queue ---+--> [ worker ] [ worker ] ... (pool_threads total)
//   shard N queue ---+      round-robin + depth boost
//
// Scheduling is round-robin across the attached shards for fairness, with
// two depth-driven exceptions:
//   * boost: every boost_period-th scheduling turn serves the deepest
//     queue, so a hot shard gets extra attention proportional to the
//     pool's round rate. Boost turns are drawn from a separate tick
//     stream and do not consume round-robin turns — the rotation cursor
//     only advances on non-boost turns, so every shard's slot always
//     comes around regardless of how shard count and boost period align;
//   * steal: a round-robin turn that lands on an empty queue redirects to
//     the deepest non-empty queue, so no worker idles while work exists.
// Cold shards keep their round-robin turns in both cases, so a hot shard
// can never starve them. Workers sleep when every queue is empty.
//
// Attach/Detach are thread-safe and callable while the pool runs. Detach
// is idempotent and blocks until no worker is touching the shard, which
// makes it safe to call from a map destructor before the tree dies.

#ifndef OBTREE_CORE_BACKGROUND_POOL_H_
#define OBTREE_CORE_BACKGROUND_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obtree/util/common.h"
#include "obtree/util/stats.h"

namespace obtree {

class CompressionQueue;
class QueueCompressor;
class SagivTree;
class ScanCompressor;

/// Shared background-maintenance worker pool (see file comment).
class BackgroundPool {
 public:
  struct Options {
    /// Worker count. <= 0 selects DefaultThreadCount(): the
    /// OBTREE_POOL_THREADS environment variable if set, otherwise a
    /// hardware_concurrency-derived maintenance share of the machine.
    int threads = 0;

    /// How long a worker sleeps after a round that found no work.
    std::chrono::milliseconds idle_sleep{1};

    /// Every boost_period-th scheduling turn serves the deepest queue;
    /// these turns are extra — they do not consume round-robin turns
    /// (0 disables boosting).
    int boost_period = 4;

    /// Self-healing: run a supervisor thread that health-checks the
    /// workers and respawns any that died (an injected kill via the
    /// "pool-worker"/"pool-drain" failpoints, or an escaped exception
    /// in a drain pass). A respawned worker re-enters the shared
    /// scheduling loop, so every attached shard's service resumes — the
    /// rotation is global, not partitioned per worker.
    bool supervise = true;

    /// How often the supervisor polls worker health (it is also woken
    /// immediately by a dying worker).
    std::chrono::milliseconds health_check_period{10};
  };

  /// Thread count used when Options::threads <= 0 (env override first).
  static int DefaultThreadCount();

  BackgroundPool();  // all-default Options
  explicit BackgroundPool(const Options& options);

  /// Stops and joins all workers (equivalent to Stop()).
  ~BackgroundPool();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(BackgroundPool);

  /// Attach a shard. With a queue, pool workers drain it with a
  /// QueueCompressor (Section 5.4 deployment (2), shared across trees);
  /// with queue == nullptr the tree is maintained by periodic full-tree
  /// scan passes instead (Sections 5.1-5.2). Neither pointer is owned;
  /// both must stay valid until Detach(handle) returns. Thread-safe.
  uint64_t Attach(SagivTree* tree, CompressionQueue* queue);

  /// Detach a shard. Blocks until no worker is processing it, so the
  /// caller may destroy the tree/queue immediately afterwards. Idempotent:
  /// unknown or already-detached handles are ignored. Thread-safe.
  void Detach(uint64_t handle);

  /// Stop and join all workers. Idempotent. Attached shards stay
  /// registered (Detach still works) but receive no further service.
  void Stop();

  int thread_count() const { return threads_started_; }
  size_t num_sources() const;

  /// Point-in-time counters (monotone while the pool lives).
  PoolStatsSnapshot Stats() const;

  /// Point-in-time counters of ONE attached shard, looked up by the
  /// handle Attach returned (ConcurrentMap::pool_handle()). Cheaper than
  /// Stats() when a caller — e.g. the shard rebalancer building its
  /// per-shard load snapshot — wants a single shard's drain/boost rates
  /// rather than the whole pool. Returns a zeroed slice (handle == 0)
  /// for unknown or detached handles.
  PoolShardStats StatsFor(uint64_t handle) const;

 private:
  /// One attached shard. Kept alive by shared_ptr until the last worker
  /// snapshot drops it; `active`/`detached` implement the Detach handshake
  /// (the pointers in here are only dereferenced between a successful
  /// BeginWork and the matching EndWork).
  struct Source {
    uint64_t handle = 0;
    SagivTree* tree = nullptr;
    CompressionQueue* queue = nullptr;          // null => scan maintenance
    std::unique_ptr<QueueCompressor> drainer;   // stateless; shared by workers
    std::unique_ptr<ScanCompressor> scanner;    // stateless; shared by workers
    std::atomic<int> active{0};
    std::atomic<bool> detached{false};
    std::atomic<uint64_t> tasks_drained{0};
    std::atomic<uint64_t> restructures{0};
    std::atomic<uint64_t> requeues{0};
    std::atomic<uint64_t> boosts{0};
  };

  enum class RoundResult { kWorked, kYield, kIdle, kKilled };

  /// One worker thread plus its liveness flag. `alive` is set by the
  /// spawner BEFORE the thread starts (so the supervisor never joins a
  /// thread that simply has not run yet) and cleared by the worker on
  /// exit. Slots are stable for the pool's lifetime; only the thread
  /// object inside is replaced on respawn.
  struct WorkerSlot {
    std::thread thread;
    std::atomic<bool> alive{false};
  };

  /// Tasks drained from one queue per scheduling round (amortizes the
  /// registry snapshot + depth scan while bounding how long a cold shard
  /// waits for its round-robin turn).
  static constexpr int kDrainBatch = 8;

  void WorkerLoop(WorkerSlot* slot);
  void SupervisorLoop();
  RoundResult RunOneRound();

  /// active++ unless the source is detached; returns false without side
  /// effects visible to Detach if it is.
  bool BeginWork(Source* src);
  void EndWork(Source* src);

  Options options_;
  int threads_started_ = 0;

  mutable std::mutex mu_;                        // guards sources_, next_handle_
  std::vector<std::shared_ptr<Source>> sources_;
  uint64_t next_handle_ = 1;

  std::mutex wake_mu_;                           // idle sleep + detach waits
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  /// Bumped by Attach so idle workers wake for the new shard instead of
  /// sleeping out their timeout (each worker captures the generation
  /// before its scheduling round; the idle wait aborts on a change).
  std::atomic<uint64_t> wake_gen_{0};
  /// Round-robin cursor: advances only on NON-boost turns, so boost turns
  /// never consume (and thus can never starve) a shard's rotation slot.
  std::atomic<uint64_t> rr_{0};
  std::atomic<uint64_t> tick_{0};                // boost-phase stream

  // Pool-wide counters (per-shard ones live in Source).
  std::atomic<uint64_t> rounds_{0};
  std::atomic<uint64_t> tasks_drained_{0};
  std::atomic<uint64_t> restructures_{0};
  std::atomic<uint64_t> boosts_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> idle_sleeps_{0};
  std::atomic<uint64_t> worker_deaths_{0};
  std::atomic<uint64_t> worker_respawns_{0};

  std::vector<std::unique_ptr<WorkerSlot>> worker_slots_;

  // Supervisor handshake: dying workers notify; Stop() notifies.
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  std::thread supervisor_;
};

}  // namespace obtree

#endif  // OBTREE_CORE_BACKGROUND_POOL_H_
