// Copyright 2026 The obtree Authors.
//
// The whole-tree compression process of Sections 5.1-5.2: compress-level(i)
// sweeps level i+1 left to right, examining pairs of adjacent children and
// merging/redistributing whenever one holds fewer than k entries. A full
// pass applies compress-level to every level bottom-up and then collapses
// single-child roots. Any number of these processes may run concurrently
// with searches, insertions, and deletions (Theorem 2); each restructuring
// step locks exactly three nodes (parent + two adjacent children).

#ifndef OBTREE_CORE_SCAN_COMPRESSOR_H_
#define OBTREE_CORE_SCAN_COMPRESSOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>

#include "obtree/core/rearrange.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/util/common.h"

namespace obtree {

/// Periodic full-tree compressor.
class ScanCompressor {
 public:
  explicit ScanCompressor(SagivTree* tree) : tree_(tree) {}
  OBTREE_DISALLOW_COPY_AND_ASSIGN(ScanCompressor);

  /// The paper's compress-level(i): walk the parents at level i+1 and
  /// rearrange under-full adjacent child pairs at level i. Returns the
  /// number of merges + redistributions performed.
  size_t CompressLevel(uint32_t level);

  /// compress-level for every level bottom-up, then collapse the root.
  /// Returns merges + redistributions + levels removed.
  size_t FullPass();

  /// Run FullPass in a loop until *stop becomes true, sleeping
  /// `idle_sleep` after a pass that found nothing to do. Intended to be the
  /// body of a background std::thread (the paper's "low priority job").
  void RunUntil(const std::atomic<bool>* stop,
                std::chrono::milliseconds idle_sleep =
                    std::chrono::milliseconds(1));

  /// E10 ablation switch — see RearrangeContext::paper_write_order.
  /// Never disable outside the ablation bench.
  void set_paper_write_order(bool on) { paper_write_order_ = on; }

 private:
  // Process the pair whose LEFT child is f->entries[idx]; the caller holds
  // only the lock on f_page and transfers it to this call, which releases
  // all locks it holds by return. Outputs how the sweep should advance.
  enum class Advance {
    kStayOnLeft,    // pair merged: re-examine the same left child
    kToRight,       // move to the right child of the pair
    kSkipEntry,     // move to f->entries[idx+1] without pairing
    kNextParent,    // done with this parent, follow its link
    kRetryPair,     // transient conflict: retry the same pair after yield
    kLevelDone,     // reached the rightmost node of the level
  };
  Advance ProcessPair(Page* f, PageId f_page, uint32_t idx, size_t* work);

  SagivTree* tree_;
  bool paper_write_order_ = true;
};

}  // namespace obtree

#endif  // OBTREE_CORE_SCAN_COMPRESSOR_H_
