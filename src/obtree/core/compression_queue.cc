// Copyright 2026 The obtree Authors.

#include "obtree/core/compression_queue.h"

namespace obtree {

void CompressionQueue::Push(CompressionTask task, bool update_if_present) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = tasks_.find(task.node);
  if (it == tasks_.end()) {
    tasks_.emplace(task.node, std::move(task));
    return;
  }
  if (update_if_present) {
    it->second = std::move(task);
  }
}

bool CompressionQueue::Pop(CompressionTask* out) {
  std::lock_guard<std::mutex> l(mu_);
  if (tasks_.empty()) return false;
  auto best = tasks_.begin();
  for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
    if (it->second.level > best->second.level) best = it;
  }
  *out = std::move(best->second);
  tasks_.erase(best);
  in_flight_.insert(out->stamp);
  return true;
}

void CompressionQueue::FinishTask(Timestamp stamp) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = in_flight_.find(stamp);
  if (it != in_flight_.end()) in_flight_.erase(it);
}

bool CompressionQueue::Remove(PageId node) {
  std::lock_guard<std::mutex> l(mu_);
  return tasks_.erase(node) > 0;
}

bool CompressionQueue::Contains(PageId node) const {
  std::lock_guard<std::mutex> l(mu_);
  return tasks_.count(node) > 0;
}

size_t CompressionQueue::Size() const {
  std::lock_guard<std::mutex> l(mu_);
  return tasks_.size();
}

Timestamp CompressionQueue::MinStamp() const {
  std::lock_guard<std::mutex> l(mu_);
  Timestamp min = kMaxTimestamp;
  for (const auto& [node, task] : tasks_) {
    if (task.stamp < min) min = task.stamp;
  }
  if (!in_flight_.empty() && *in_flight_.begin() < min) {
    min = *in_flight_.begin();
  }
  return min;
}

void CompressionQueue::RegisterWith(EpochManager* epoch) {
  epoch->RegisterExternalMinProvider([this]() { return MinStamp(); });
}

}  // namespace obtree
