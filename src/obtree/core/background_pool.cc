// Copyright 2026 The obtree Authors.

#include "obtree/core/background_pool.h"

#include <cstdlib>

#include "obtree/core/compression_queue.h"
#include "obtree/core/queue_compressor.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/util/fault_injector.h"

namespace obtree {

int BackgroundPool::DefaultThreadCount() {
  if (const char* env = std::getenv("OBTREE_POOL_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 1024) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 2;
  // A maintenance share of the machine: a quarter of the cores, at least
  // one, at most eight (the paper's "small number of background
  // processes" serves arbitrarily many shards).
  const unsigned quarter = hw / 4;
  return static_cast<int>(quarter < 1 ? 1 : (quarter > 8 ? 8 : quarter));
}

BackgroundPool::BackgroundPool() : BackgroundPool(Options()) {}

BackgroundPool::BackgroundPool(const Options& options) : options_(options) {
  if (options_.threads <= 0) options_.threads = DefaultThreadCount();
  if (options_.idle_sleep.count() <= 0) {
    options_.idle_sleep = std::chrono::milliseconds(1);
  }
  if (options_.health_check_period.count() <= 0) {
    options_.health_check_period = std::chrono::milliseconds(10);
  }
  threads_started_ = options_.threads;
  worker_slots_.reserve(static_cast<size_t>(threads_started_));
  for (int i = 0; i < threads_started_; ++i) {
    auto slot = std::make_unique<WorkerSlot>();
    // alive is set by the SPAWNER: the supervisor must never mistake a
    // thread that has not been scheduled yet for a dead one.
    slot->alive.store(true, std::memory_order_release);
    WorkerSlot* raw = slot.get();
    slot->thread = std::thread([this, raw]() { WorkerLoop(raw); });
    worker_slots_.push_back(std::move(slot));
  }
  if (options_.supervise) {
    supervisor_ = std::thread([this]() { SupervisorLoop(); });
  }
}

BackgroundPool::~BackgroundPool() { Stop(); }

uint64_t BackgroundPool::Attach(SagivTree* tree, CompressionQueue* queue) {
  auto src = std::make_shared<Source>();
  src->tree = tree;
  src->queue = queue;
  if (queue != nullptr) {
    src->drainer = std::make_unique<QueueCompressor>(tree, queue);
  } else {
    src->scanner = std::make_unique<ScanCompressor>(tree);
  }
  uint64_t handle;
  {
    std::lock_guard<std::mutex> lk(mu_);
    handle = next_handle_++;
    src->handle = handle;
    sources_.push_back(std::move(src));
  }
  // Wake idle workers so a busy queue gets service promptly (the bump
  // invalidates the generation captured before their idle wait).
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_gen_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  return handle;
}

void BackgroundPool::Detach(uint64_t handle) {
  std::shared_ptr<Source> src;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = sources_.begin(); it != sources_.end(); ++it) {
      if ((*it)->handle == handle) {
        src = *it;
        sources_.erase(it);
        break;
      }
    }
  }
  if (src == nullptr) return;  // unknown or already detached: idempotent
  // seq_cst store/load pairs with BeginWork's fetch_add/load: either the
  // worker sees `detached` and backs out, or Detach sees its increment of
  // `active` and waits for the matching EndWork.
  src->detached.store(true);
  // Re-polling wait (not a plain wait): `active` is maintained by RAII
  // scopes so a killed worker always releases its claim, but a bounded
  // wait keeps Detach live even across a lost wakeup or a worker torn
  // down between its decrement and its notify.
  std::unique_lock<std::mutex> lk(wake_mu_);
  while (src->active.load() != 0) {
    wake_cv_.wait_for(lk, std::chrono::milliseconds(1),
                      [&]() { return src->active.load() == 0; });
  }
}

void BackgroundPool::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lk(sup_mu_);
  }
  sup_cv_.notify_all();
  // Join the supervisor FIRST so no respawn races the worker joins below.
  if (supervisor_.joinable()) supervisor_.join();
  for (auto& slot : worker_slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  worker_slots_.clear();
}

size_t BackgroundPool::num_sources() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sources_.size();
}

PoolStatsSnapshot BackgroundPool::Stats() const {
  PoolStatsSnapshot snap;
  snap.threads = threads_started_;
  // Read the per-shard slices BEFORE the pool-wide totals (workers
  // increment in the opposite order, with a release on the slice that
  // these acquire loads pair with), so totals always cover slices.
  {
    std::lock_guard<std::mutex> lk(mu_);
    snap.shards.reserve(sources_.size());
    for (const auto& s : sources_) {
      PoolShardStats ps;
      ps.handle = s->handle;
      ps.tasks_drained = s->tasks_drained.load(std::memory_order_acquire);
      ps.restructures = s->restructures.load(std::memory_order_acquire);
      ps.requeues = s->requeues.load(std::memory_order_relaxed);
      ps.boosts = s->boosts.load(std::memory_order_relaxed);
      snap.shards.push_back(ps);
    }
  }
  snap.rounds = rounds_.load(std::memory_order_relaxed);
  snap.tasks_drained = tasks_drained_.load(std::memory_order_relaxed);
  snap.restructures = restructures_.load(std::memory_order_relaxed);
  snap.boosts = boosts_.load(std::memory_order_relaxed);
  snap.steals = steals_.load(std::memory_order_relaxed);
  snap.idle_sleeps = idle_sleeps_.load(std::memory_order_relaxed);
  snap.worker_deaths = worker_deaths_.load(std::memory_order_relaxed);
  snap.worker_respawns = worker_respawns_.load(std::memory_order_relaxed);
  return snap;
}

PoolShardStats BackgroundPool::StatsFor(uint64_t handle) const {
  PoolShardStats ps;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sources_) {
    if (s->handle != handle) continue;
    ps.handle = s->handle;
    ps.tasks_drained = s->tasks_drained.load(std::memory_order_acquire);
    ps.restructures = s->restructures.load(std::memory_order_acquire);
    ps.requeues = s->requeues.load(std::memory_order_relaxed);
    ps.boosts = s->boosts.load(std::memory_order_relaxed);
    break;
  }
  return ps;
}

bool BackgroundPool::BeginWork(Source* src) {
  src->active.fetch_add(1);  // seq_cst: see Detach
  if (src->detached.load()) {
    EndWork(src);
    return false;
  }
  return true;
}

void BackgroundPool::EndWork(Source* src) {
  if (src->active.fetch_sub(1) == 1 && src->detached.load()) {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_all();
  }
}

BackgroundPool::RoundResult BackgroundPool::RunOneRound() {
  std::vector<std::shared_ptr<Source>> local;
  {
    std::lock_guard<std::mutex> lk(mu_);
    local = sources_;
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
  if (local.empty()) return RoundResult::kIdle;

  const size_t n = local.size();

  // Queue depths drive the two off-turn policies (boost and steal). Scan
  // sources have no measurable backlog and count as depth 0: they are
  // served on their round-robin turns only. Every dereference of a
  // source's queue must sit inside the BeginWork/EndWork handshake — a
  // shard whose Detach() has returned may already have destroyed it.
  auto queue_depth = [this](Source* s) -> size_t {
    size_t d = 0;
    if (s->queue != nullptr && BeginWork(s)) {
      d = s->queue->Size();
      EndWork(s);
    }
    return d;
  };
  size_t deepest = 0;
  size_t max_depth = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t d = queue_depth(local[i].get());
    if (d > max_depth) {
      max_depth = d;
      deepest = i;
    }
  }

  // Boost turns draw from their own tick stream and do NOT consume a
  // round-robin turn (rr_ only advances on non-boost turns). Tying both
  // to one counter starves shards whose index is congruent to the boost
  // phase whenever boost_period divides the shard count — e.g. with the
  // defaults (period 4, 16 shards) every turn of shards 0/4/8/12 would
  // be boost-eligible and lost to any persistently deeper queue.
  const uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed);
  const bool boost_turn =
      options_.boost_period > 0 &&
      tick % static_cast<uint64_t>(options_.boost_period) == 0;
  size_t pick;
  bool off_turn = false;
  if (boost_turn && max_depth > 0) {
    pick = deepest;
    off_turn = true;
    boosts_.fetch_add(1, std::memory_order_relaxed);
  } else {
    pick = static_cast<size_t>(rr_.fetch_add(1, std::memory_order_relaxed) %
                               n);
    if (local[pick]->queue != nullptr && max_depth > 0 &&
        queue_depth(local[pick].get()) == 0) {
      pick = deepest;
      off_turn = true;
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Source* src = local[pick].get();
  if (!BeginWork(src)) return RoundResult::kYield;  // detached in flight
  // RAII release of the Detach claim: EVERY exit from here on — normal
  // return, injected mid-drain kill, escaped exception — runs EndWork, so
  // a dying worker can never wedge Detach() behind a leaked `active`.
  struct ActiveScope {
    BackgroundPool* pool;
    Source* src;
    ~ActiveScope() { pool->EndWork(src); }
  } scope{this, src};
  RoundResult result = RoundResult::kIdle;
  if (src->queue != nullptr) {
    // Drain a small batch per pick: one scheduling round (registry
    // snapshot + depth scan) amortizes over several tasks, while the
    // batch bound keeps the fairness granularity — a cold shard waits at
    // most kDrainBatch tasks for its turn.
    // Counter discipline: pool-wide totals are incremented BEFORE the
    // per-shard slice, the slice increment is a release, and Stats()
    // acquire-reads slices before loading totals — so a snapshot's
    // totals always cover its slices, even on weakly-ordered hardware.
    bool drained_any = false;
    for (int b = 0; b < kDrainBatch; ++b) {
      // Failpoint: die mid-drain with the Detach claim held. ActiveScope
      // releases it on the way out — exactly the leak the un-hardened
      // Detach() would have hung on.
      if (FaultInjector::TrapsArmed() &&
          FaultInjector::Instance().Evaluate("pool-drain").inject_error) {
        return RoundResult::kKilled;
      }
      const QueueCompressor::Outcome outcome = src->drainer->CompressOne();
      if (outcome == QueueCompressor::Outcome::kQueueEmpty) break;
      drained_any = true;
      tasks_drained_.fetch_add(1, std::memory_order_relaxed);
      src->tasks_drained.fetch_add(1, std::memory_order_release);
      src->tree->stats()->Add(StatId::kPoolTasksDrained);
      if (outcome == QueueCompressor::Outcome::kRestructured) {
        restructures_.fetch_add(1, std::memory_order_relaxed);
        src->restructures.fetch_add(1, std::memory_order_release);
      }
      if (outcome == QueueCompressor::Outcome::kRequeued) {
        src->requeues.fetch_add(1, std::memory_order_relaxed);
        result = RoundResult::kYield;
        break;  // let the requeued entry settle before retrying
      }
      result = RoundResult::kWorked;
    }
    // Boosts/steals count scheduling decisions (off-turn PICKS), not
    // tasks — one per pick that found work, matching the pool-wide
    // boosts_/steals_ counters and the rebalancer's hot-shard signal.
    if (off_turn && drained_any) {
      src->boosts.fetch_add(1, std::memory_order_relaxed);
      src->tree->stats()->Add(StatId::kPoolBoosts);
    }
  } else {
    const size_t work = src->scanner->FullPass();
    if (work > 0) {
      tasks_drained_.fetch_add(1, std::memory_order_relaxed);
      restructures_.fetch_add(work, std::memory_order_relaxed);
      src->tasks_drained.fetch_add(1, std::memory_order_release);
      src->restructures.fetch_add(work, std::memory_order_release);
      src->tree->stats()->Add(StatId::kPoolTasksDrained);
      result = RoundResult::kWorked;
    }
  }
  // "No worker idles while work exists": a turn that found nothing (an
  // idle scan source, or a queue that raced to empty) must not sleep when
  // the depth scan saw backlog elsewhere — reschedule immediately so the
  // next round boosts/steals to it.
  if (result == RoundResult::kIdle && max_depth > 0) {
    result = RoundResult::kYield;
  }
  return result;
}

void BackgroundPool::WorkerLoop(WorkerSlot* slot) {
  bool killed = false;
  while (!killed && !stop_.load(std::memory_order_acquire)) {
    // Failpoint: a worker that dies between rounds (kError) or stalls
    // (kStall, performed inside Evaluate).
    if (FaultInjector::TrapsArmed() &&
        FaultInjector::Instance().Evaluate("pool-worker").inject_error) {
      break;
    }
    // Captured before the round: an Attach after this point changes the
    // generation and aborts the idle wait below, so a newly attached busy
    // shard is never stuck behind a full idle_sleep timeout.
    const uint64_t gen = wake_gen_.load(std::memory_order_relaxed);
    switch (RunOneRound()) {
      case RoundResult::kWorked:
        break;
      case RoundResult::kYield:
        std::this_thread::yield();
        break;
      case RoundResult::kKilled:
        killed = true;
        break;
      case RoundResult::kIdle: {
        idle_sleeps_.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::mutex> lk(wake_mu_);
        wake_cv_.wait_for(lk, options_.idle_sleep, [this, gen]() {
          return stop_.load(std::memory_order_acquire) ||
                 wake_gen_.load(std::memory_order_relaxed) != gen;
        });
        break;
      }
    }
  }
  slot->alive.store(false, std::memory_order_release);
  if (!stop_.load(std::memory_order_acquire)) {
    // Premature exit (injected death), not a Stop(): account it and wake
    // the supervisor so the respawn happens without waiting out a full
    // health-check period.
    worker_deaths_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(sup_mu_);
    }
    sup_cv_.notify_all();
  }
}

void BackgroundPool::SupervisorLoop() {
  std::unique_lock<std::mutex> lk(sup_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    sup_cv_.wait_for(lk, options_.health_check_period);
    if (stop_.load(std::memory_order_acquire)) break;
    // Drop sup_mu_ across join/spawn: a dying worker takes it to notify,
    // so holding it while joining that worker would deadlock.
    lk.unlock();
    for (auto& slot : worker_slots_) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (slot->alive.load(std::memory_order_acquire)) continue;
      if (!slot->thread.joinable()) continue;
      slot->thread.join();
      if (stop_.load(std::memory_order_acquire)) break;
      worker_respawns_.fetch_add(1, std::memory_order_relaxed);
      slot->alive.store(true, std::memory_order_release);
      WorkerSlot* raw = slot.get();
      slot->thread = std::thread([this, raw]() { WorkerLoop(raw); });
    }
    lk.lock();
  }
}

}  // namespace obtree
