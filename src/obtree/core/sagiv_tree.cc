// Copyright 2026 The obtree Authors.

#include "obtree/core/sagiv_tree.h"

#include <cassert>
#include <thread>

#include "obtree/core/compression_queue.h"

namespace obtree {

namespace {

// Hard bound on pointer-chasing steps in a single descent attempt. A valid
// tree never approaches this; it converts corruption into Status::Internal
// instead of a hang.
constexpr int kMaxStepsPerAttempt = 1 << 22;

}  // namespace

SagivTree::SagivTree(const TreeOptions& options)
    : options_(options),
      init_status_(options.Validate()),
      stats_(new StatsCollector()),
      epoch_(new EpochManager()),
      queue_(nullptr),
      size_(0) {
  if (!init_status_.ok()) options_ = TreeOptions();
  pager_ = std::make_unique<PageManager>(epoch_.get(), stats_.get());
  pager_->set_simulated_io_ns(options_.simulated_io_ns);

  // An empty tree is a single root leaf covering (-inf, +inf].
  Result<PageId> root = pager_->Allocate();
  assert(root.ok());
  Page page;
  page.Clear();
  Node* node = page.As<Node>();
  node->Init(/*lvl=*/0, kMinusInfinity, kPlusInfinity, kInvalidPageId);
  node->set_root(true);
  pager_->Put(*root, page);

  PrimeBlockData pb;
  pb.num_levels = 1;
  pb.leftmost[0] = *root;
  prime_.Write(pb);
}

SagivTree::~SagivTree() = default;

void SagivTree::AttachCompressionQueue(CompressionQueue* queue) {
  queue_.store(queue, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Descending
// ---------------------------------------------------------------------------

Result<PageId> SagivTree::internal_FindNodeAtLevel(
    Key key, uint32_t level, std::vector<PageId>* stack_out,
    bool wait_for_level) const {
  int restarts = 0;
  int waits = 0;
  for (;;) {
    if (stack_out) stack_out->clear();
    const PrimeBlockData pb = prime_.Read();
    if (pb.num_levels <= level) {
      if (!wait_for_level) {
        return Status::NotFound("level does not exist");
      }
      // Section 3.3: a split outran the creation of the level it must post
      // to (or the level was collapsed and will be regrown by a pending
      // insertion). Wait for the prime block to show the level.
      if (++waits > options_.max_restarts) {
        return Status::Internal("level never appeared");
      }
      std::this_thread::yield();
      continue;
    }
    PageId current = pb.root();
    Page page;
    Node* node = page.As<Node>();
    bool restart = false;
    for (int steps = 0;; ++steps) {
      if (steps > kMaxStepsPerAttempt) {
        return Status::Internal("descent did not terminate");
      }
      pager_->Get(current, &page);
      if (node->is_deleted()) {
        const PageId target = node->merge_target;
        if (target == kInvalidPageId) {
          restart = true;
          break;
        }
        stats_->Add(StatId::kMergePointerFollows);
        current = target;
        continue;
      }
      if (node->level < level || key <= node->low) {
        // Wrong node: either a reclaimed-and-reused page (stale pointer) or
        // data moved left by a compression (Section 5.2 case (2)).
        restart = true;
        break;
      }
      if (key > node->high) {
        const PageId link = node->link;
        if (link == kInvalidPageId) {
          restart = true;  // rightmost has high=+inf; this node is stale
          break;
        }
        stats_->Add(StatId::kLinkFollows);
        current = link;
        continue;
      }
      if (node->level == level) return current;
      if (stack_out) stack_out->push_back(current);
      current = node->ChildFor(key);
    }
    (void)restart;
    stats_->Add(StatId::kRestarts);
    if (++restarts > options_.max_restarts) {
      return Status::Internal("too many restarts in FindNodeAtLevel");
    }
  }
}

Status SagivTree::DescendToLeaf(Key key, EpochManager::Guard* guard,
                                Page* page, PageId* leaf_page) const {
  Node* node = page->As<Node>();
  int restarts = 0;
  for (;;) {
    const PrimeBlockData pb = prime_.Read();
    PageId current = pb.root();
    // §5.2 backtrack optimization: remember the node we came down
    // through; a search routed to a wrong node first retries from there
    // and only restarts at the root if the previous node is also wrong.
    PageId previous = kInvalidPageId;
    bool backtracked = false;
    int backtracks_this_attempt = 0;
    bool restart = false;
    for (int steps = 0;; ++steps) {
      if (steps > kMaxStepsPerAttempt) {
        return Status::Internal("descent did not terminate");
      }
      pager_->Get(current, page);
      bool wrong = false;
      if (node->is_deleted()) {
        const PageId target = node->merge_target;
        if (target != kInvalidPageId) {
          stats_->Add(StatId::kMergePointerFollows);
          current = target;
          continue;
        }
        wrong = true;
      } else if (key <= node->low) {
        wrong = true;
      }
      if (wrong) {
        if (previous != kInvalidPageId && !backtracked &&
            ++backtracks_this_attempt <= 4) {
          // One backtrack per wrong-node event, a few per descent: the
          // previous node re-evaluates next(A, v) against fresh contents;
          // if it keeps routing us wrong, fall back to a root restart.
          stats_->Add(StatId::kBacktracks);
          current = previous;
          previous = kInvalidPageId;
          backtracked = true;
          continue;
        }
        restart = true;
        break;
      }
      if (key > node->high) {
        const PageId link = node->link;
        if (link == kInvalidPageId) {
          restart = true;
          break;
        }
        stats_->Add(StatId::kLinkFollows);
        previous = current;
        backtracked = false;
        current = link;
        continue;
      }
      if (node->is_leaf()) {
        *leaf_page = current;
        return Status::OK();
      }
      previous = current;
      backtracked = false;
      current = node->ChildFor(key);
    }
    (void)restart;
    stats_->Add(StatId::kRestarts);
    if (++restarts > options_.max_restarts) {
      return Status::Internal("too many restarts in search");
    }
    // Re-pin: a restarted search may legally observe a fresher tree, and
    // releasing the old pin lets reclamation advance (Section 5.3).
    guard->Refresh();
  }
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

Result<Value> SagivTree::Search(Key key) const {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kSearches);
  EpochManager::Guard guard(epoch_.get());
  Page page;
  PageId leaf_page;
  Status s = DescendToLeaf(key, &guard, &page, &leaf_page);
  if (!s.ok()) return s;
  std::optional<Value> v = page.As<Node>()->FindLeafValue(key);
  if (!v.has_value()) return Status::NotFound();
  return *v;
}

size_t SagivTree::Scan(Key lo, Key hi,
                       const std::function<bool(Key, Value)>& visitor) const {
  if (lo < 1) lo = 1;
  if (hi > kMaxUserKey) hi = kMaxUserKey;
  if (lo > hi) return 0;
  stats_->Add(StatId::kSearches);
  EpochManager::Guard guard(epoch_.get());

  size_t visited = 0;
  Key next_key = lo;
  Page page;
  Node* node = page.As<Node>();
  bool have_leaf = false;
  for (;;) {
    if (!have_leaf) {
      PageId leaf_page;
      if (!DescendToLeaf(next_key, &guard, &page, &leaf_page).ok()) {
        return visited;
      }
    }
    // Deliver this leaf's keys in [next_key, hi].
    for (uint32_t i = node->LowerBound(next_key); i < node->count; ++i) {
      if (node->entries[i].key > hi) return visited;
      ++visited;
      if (!visitor(node->entries[i].key, node->entries[i].value)) {
        return visited;
      }
    }
    if (node->high >= hi || node->high == kPlusInfinity) return visited;
    next_key = node->high + 1;
    // Fast path: follow the leaf link; fall back to a fresh descent when
    // compression moved the range.
    const PageId link = node->link;
    have_leaf = false;
    if (link != kInvalidPageId) {
      pager_->Get(link, &page);
      if (!node->is_deleted() && node->is_leaf() && next_key > node->low &&
          next_key <= node->high) {
        stats_->Add(StatId::kLinkFollows);
        have_leaf = true;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Insertion (Figs. 5 and 6)
// ---------------------------------------------------------------------------

Result<PageId> SagivTree::AcquireTargetNode(Key ins_key, uint32_t level,
                                            PageId start,
                                            std::vector<PageId>* stack,
                                            int* restarts, Page* page,
                                            bool wait_for_level) const {
  Node* node = page->As<Node>();
  PageId current = start;
  for (int steps = 0;; ++steps) {
    if (steps > kMaxStepsPerAttempt) {
      return Status::Internal("moveright did not terminate");
    }
    pager_->Lock(current);
    pager_->Get(current, page);
    bool restart = false;
    if (node->is_deleted()) {
      const PageId target = node->merge_target;
      pager_->Unlock(current);
      if (target != kInvalidPageId) {
        stats_->Add(StatId::kMergePointerFollows);
        current = target;
        continue;
      }
      restart = true;
    } else if (node->level != level || ins_key <= node->low) {
      pager_->Unlock(current);
      restart = true;
    } else if (ins_key > node->high) {
      const PageId link = node->link;
      pager_->Unlock(current);
      if (link == kInvalidPageId) {
        restart = true;
      } else {
        stats_->Add(StatId::kLinkFollows);
        current = link;
        continue;
      }
    } else {
      return current;  // locked; image in *page
    }
    assert(restart);
    (void)restart;
    stats_->Add(StatId::kRestarts);
    if (++(*restarts) > options_.max_restarts) {
      return Status::Internal("too many restarts acquiring target node");
    }
    Result<PageId> r =
        internal_FindNodeAtLevel(ins_key, level, stack, wait_for_level);
    if (!r.ok()) return r.status();
    current = *r;
  }
}

void SagivTree::ApplyInsert(Node* node, Key key, uint64_t down_ptr) {
  if (node->is_leaf()) {
    node->InsertLeafEntry(key, static_cast<Value>(down_ptr));
  } else {
    bool ok = node->InsertChildSplit(key, static_cast<PageId>(down_ptr));
    assert(ok);
    (void)ok;
  }
}

void SagivTree::InsertIntoSafe(Page* page, PageId page_id, Key key,
                               uint64_t down_ptr, AscentState* st) {
  Node* node = page->As<Node>();
  ApplyInsert(node, key, down_ptr);
  pager_->Put(page_id, *page);
  pager_->Unlock(page_id);
  st->completed = true;
}

Status SagivTree::InsertIntoUnsafe(Page* page, PageId page_id, Key key,
                                   uint64_t down_ptr, AscentState* st) {
  Node* node = page->As<Node>();
  Result<PageId> right_page = pager_->Allocate();
  if (!right_page.ok()) {
    pager_->Unlock(page_id);
    return right_page.status();
  }
  ApplyInsert(node, key, down_ptr);

  Page right_buf;
  Node* right = right_buf.As<Node>();
  node->SplitInto(right, *right_page);
  stats_->Add(StatId::kSplits);

  // Write the new node B first, then rewrite A; the instant A's image
  // lands, B is reachable through A's link (Fig. 3). One lock throughout.
  pager_->Put(*right_page, right_buf);
  pager_->Put(page_id, *page);
  pager_->Unlock(page_id);

  st->sep = node->high;
  st->new_child = *right_page;
  return Status::OK();
}

Status SagivTree::InsertIntoUnsafeRoot(Page* page, PageId page_id, Key key,
                                       uint64_t down_ptr, AscentState* st) {
  Node* node = page->As<Node>();
  if (node->level + 2 > kMaxLevels) {
    pager_->Unlock(page_id);
    return Status::ResourceExhausted("tree height limit reached");
  }
  Result<PageId> right_page = pager_->Allocate();
  if (!right_page.ok()) {
    pager_->Unlock(page_id);
    return right_page.status();
  }
  Result<PageId> root_page = pager_->Allocate();
  if (!root_page.ok()) {
    pager_->Unlock(page_id);
    return root_page.status();
  }
  ApplyInsert(node, key, down_ptr);

  Page right_buf;
  Node* right = right_buf.As<Node>();
  node->SplitInto(right, *right_page);
  node->set_root(false);  // the root bit moves to R in the same rewrite
  stats_->Add(StatId::kSplits);

  pager_->Put(*right_page, right_buf);
  pager_->Put(page_id, *page);

  // Build the new root R = (current, v, q, u, nil) — in entry form
  // [(high(A) -> A), (high(B) -> B)] — and only then rewrite the prime
  // block. We still hold the lock on the old root, which is what licenses
  // the prime-block rewrite (Section 3.3).
  Page root_buf;
  Node* root = root_buf.As<Node>();
  root->Init(static_cast<uint16_t>(node->level + 1), kMinusInfinity,
             kPlusInfinity, kInvalidPageId);
  root->set_root(true);
  root->entries[0] = Entry{node->high, page_id};
  root->entries[1] = Entry{right->high, *right_page};
  root->count = 2;
  pager_->Put(*root_page, root_buf);

  PrimeBlockData pb = prime_.Read();
  assert(pb.num_levels == node->level + 1u);
  pb.leftmost[pb.num_levels] = *root_page;
  pb.num_levels++;
  prime_.Write(pb);
  stats_->Add(StatId::kRootCreations);

  pager_->Unlock(page_id);
  st->completed = true;
  return Status::OK();
}

Status SagivTree::Insert(Key key, Value value) {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kInserts);
  EpochManager::Guard guard(epoch_.get());

  std::vector<PageId> stack;
  Result<PageId> found = internal_FindNodeAtLevel(key, 0, &stack);
  if (!found.ok()) return found.status();

  PageId current = *found;
  Key ins_key = key;
  uint64_t down_ptr = value;
  uint32_t level = 0;
  int restarts = 0;
  Page page;
  Node* node = page.As<Node>();

  for (;;) {  // the "repeat ... until completed" of Fig. 5
    Result<PageId> target =
        AcquireTargetNode(ins_key, level, current, &stack, &restarts, &page);
    if (!target.ok()) return target.status();
    current = *target;

    if (level == 0 && node->FindLeafValue(ins_key).has_value()) {
      pager_->Unlock(current);
      return Status::AlreadyExists("key already in the tree");
    }

    AscentState st;
    if (node->count < options_.capacity()) {
      InsertIntoSafe(&page, current, ins_key, down_ptr, &st);
    } else if (!node->is_root()) {
      Status s = InsertIntoUnsafe(&page, current, ins_key, down_ptr, &st);
      if (!s.ok()) return s;
    } else {
      Status s = InsertIntoUnsafeRoot(&page, current, ins_key, down_ptr, &st);
      if (!s.ok()) return s;
    }
    if (st.completed) {
      size_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    // Move one level up: to the node we came down through, or — if the
    // stack is exhausted — to the leftmost node of the next higher level
    // (waiting for it to exist if a root creation is still in flight,
    // Section 3.3).
    ins_key = st.sep;
    down_ptr = st.new_child;
    level++;
    if (!stack.empty()) {
      current = stack.back();
      stack.pop_back();
    } else {
      int waits = 0;
      for (;;) {
        const PrimeBlockData pb = prime_.Read();
        if (pb.num_levels > level) {
          current = pb.leftmost[level];
          break;
        }
        if (++waits > options_.max_restarts) {
          return Status::Internal("next level never appeared");
        }
        std::this_thread::yield();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deletion (Section 4, plus the §5.4 enqueue hook)
// ---------------------------------------------------------------------------

Status SagivTree::Delete(Key key) {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kDeletes);
  EpochManager::Guard guard(epoch_.get());

  CompressionQueue* queue = queue_.load(std::memory_order_acquire);
  const bool want_stack =
      options_.enqueue_underfull_on_delete && queue != nullptr;

  std::vector<PageId> stack;
  Result<PageId> found =
      internal_FindNodeAtLevel(key, 0, want_stack ? &stack : nullptr);
  if (!found.ok()) return found.status();

  Page page;
  Node* node = page.As<Node>();
  int restarts = 0;
  Result<PageId> target = AcquireTargetNode(
      key, 0, *found, want_stack ? &stack : nullptr, &restarts, &page);
  if (!target.ok()) return target.status();
  const PageId leaf = *target;

  if (!node->RemoveLeafEntry(key)) {
    pager_->Unlock(leaf);
    return Status::NotFound();
  }
  pager_->Put(leaf, page);
  size_.fetch_sub(1, std::memory_order_relaxed);

  // §5.4: while still holding the lock, record the leaf for compression if
  // it fell below half full.
  if (want_stack && node->count < options_.min_entries && !node->is_root()) {
    CompressionTask task;
    task.node = leaf;
    task.level = 0;
    task.high = node->high;
    task.stamp = guard.start_time();
    task.stack = std::move(stack);
    queue->Push(std::move(task), /*update_if_present=*/true);
    stats_->Add(StatId::kQueueEnqueues);
  }
  pager_->Unlock(leaf);
  return Status::OK();
}

}  // namespace obtree
