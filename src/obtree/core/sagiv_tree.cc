// Copyright 2026 The obtree Authors.

#include "obtree/core/sagiv_tree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "obtree/core/compression_queue.h"
#include "obtree/storage/file_store.h"

namespace obtree {

namespace {

// Hard bound on pointer-chasing steps in a single descent attempt. A valid
// tree never approaches this; it converts corruption into Status::Internal
// instead of a hang.
constexpr int kMaxStepsPerAttempt = 1 << 22;

// Where an unlocked descent proceeds from one node, as decided from an
// optimistic (unvalidated) in-place image. kTorn marks an image too
// inconsistent to classify (e.g. ChildFor fell off the entries): the
// reader re-reads the node instead of acting. It is also the default so
// an unstable guard (put in flight) takes the same re-read path.
struct Route {
  enum Kind {
    kArrived,               // node is the live target: level + range match
    kChild,                 // descend into `next`
    kLink,                  // moveright through `next`
    kMerge,                 // deleted node: recover through merge pointer
    kRestartStale,          // wrong node (level/low): restart from the root
    kRestartRightmost,      // nil link but key > high: restart
    kRestartNoMergeTarget,  // deleted, merge pointer not posted: restart
    kTorn,                  // image inconsistent: re-read this node
  } kind = kTorn;
  PageId next = kInvalidPageId;
};

// The paper's next(A, v) evaluated on a possibly-torn image. Reads only
// header words (plus one binary search for the child case) and never
// chases a pointer itself; the caller validates the page version before
// following `next` anywhere.
Route RouteForKey(const NodeView& view, Key key, uint32_t target_level) {
  Route r;
  if (view.is_deleted()) {
    const PageId target = view.merge_target();
    if (target == kInvalidPageId) {
      r.kind = Route::kRestartNoMergeTarget;
    } else {
      r.kind = Route::kMerge;
      r.next = target;
    }
    return r;
  }
  if (view.level() < target_level || key <= view.low()) {
    r.kind = Route::kRestartStale;
    return r;
  }
  if (key > view.high()) {
    const PageId link = view.link();
    if (link == kInvalidPageId) {
      r.kind = Route::kRestartRightmost;
    } else {
      r.kind = Route::kLink;
      r.next = link;
    }
    return r;
  }
  if (view.level() == target_level) {
    r.kind = Route::kArrived;
    return r;
  }
  const PageId child = view.ChildFor(key);
  if (child == kInvalidPageId) {
    r.kind = Route::kTorn;  // count ran out mid-rewrite
    return r;
  }
  r.kind = Route::kChild;
  r.next = child;
  return r;
}

// The restart cause a Route restart kind charges (shared by the three
// route dispatchers: the optimistic descents and the in-place acquire).
SagivTree::RestartCause CauseFor(Route::Kind kind) {
  switch (kind) {
    case Route::kRestartStale:
      return SagivTree::RestartCause::kStaleNode;
    case Route::kRestartRightmost:
      return SagivTree::RestartCause::kRightmostStale;
    case Route::kRestartNoMergeTarget:
      return SagivTree::RestartCause::kMissingMergeTarget;
    default:
      return SagivTree::RestartCause::kNone;
  }
}

// Per-thread scratch shared by the read paths: the optimistic scan's
// harvest buffer and the copy fallback's page image. One instance per
// thread instead of per call; the in_use flag hands reentrant calls (a
// visitor that scans the same tree) a local buffer instead.
struct TlReadBuffers {
  Page page;
  std::vector<Entry> entries;
  bool in_use = false;
};
thread_local TlReadBuffers tl_read_buffers;

// Claims the thread-local buffers for the current call if free.
class TlReadBuffersLease {
 public:
  TlReadBuffersLease() : claimed_(!tl_read_buffers.in_use) {
    if (claimed_) tl_read_buffers.in_use = true;
  }
  ~TlReadBuffersLease() {
    if (claimed_) tl_read_buffers.in_use = false;
  }
  bool claimed() const { return claimed_; }

 private:
  bool claimed_;
};

// Per-thread descent stack shared by Insert/Delete: the movedown stack
// was a heap allocation on every mutation otherwise. Same reentrancy
// discipline as TlReadBuffers — a nested mutation (e.g. an Insert issued
// from a Scan visitor) gets a plain local vector instead.
struct TlWriteBuffers {
  std::vector<PageId> stack;
  bool in_use = false;
};
thread_local TlWriteBuffers tl_write_buffers;

// Hands out the thread-local descent stack (cleared) if free, else the
// caller-provided fallback.
class TlStackLease {
 public:
  explicit TlStackLease(std::vector<PageId>* fallback)
      : claimed_(!tl_write_buffers.in_use),
        stack_(claimed_ ? &tl_write_buffers.stack : fallback) {
    if (claimed_) tl_write_buffers.in_use = true;
    stack_->clear();
  }
  ~TlStackLease() {
    if (claimed_) tl_write_buffers.in_use = false;
  }
  std::vector<PageId>* stack() const { return stack_; }

 private:
  bool claimed_;
  std::vector<PageId>* stack_;
};

}  // namespace

SagivTree::SagivTree(const TreeOptions& options)
    : options_(options),
      init_status_(options.Validate()),
      stats_(new StatsCollector()),
      epoch_(new EpochManager()),
      queue_(nullptr),
      size_(0),
      rightmost_hint_(kInvalidPageId),
      max_key_hint_(kMinusInfinity),
      frontier_seq_(0) {
  if (!init_status_.ok()) options_ = TreeOptions();
  if (!options_.storage_dir.empty()) {
    Result<std::unique_ptr<FileStore>> store =
        FileStore::Open(options_.storage_dir);
    if (store.ok()) {
      file_store_ = std::move(*store);
    } else {
      // Record the failure and degrade to an in-memory tree; callers that
      // need durability check init_status() (ConcurrentMap surfaces it).
      init_status_ = store.status();
    }
  }
  pager_ = std::make_unique<PageManager>(epoch_.get(), stats_.get(),
                                         file_store_.get(),
                                         options_.buffer_pool_pages);
  pager_->set_simulated_io_ns(options_.simulated_io_ns);
  pager_->set_lock_spin_budget(options_.lock_spin_budget);
  pager_->set_lock_backoff_max(options_.lock_backoff_max);

  if (file_store_ != nullptr && file_store_->has_checkpoint()) {
    // Adopt the committed checkpoint instead of building a fresh root.
    const StoreMeta& meta = file_store_->recovered_meta();
    pager_->RestoreFromMeta(meta);
    PrimeBlockData pb;
    pb.num_levels = static_cast<uint32_t>(meta.leftmost.size());
    for (size_t i = 0; i < meta.leftmost.size() && i < kMaxLevels; ++i) {
      pb.leftmost[i] = meta.leftmost[i];
    }
    prime_.Write(pb);
    internal_NoteBulkLoad(meta.max_key, meta.rightmost_leaf);
    // The manifest's tree_size can be off by operations whose size bump
    // had not landed when the checkpoint barrier cut; the leaf chain is
    // the authority.
    RecoverSizeFromLeaves();
    recovered_ = true;
    stats_->Add(StatId::kRecoveries);
    return;
  }

  // An empty tree is a single root leaf covering (-inf, +inf].
  Result<PageId> root = pager_->Allocate();
  assert(root.ok());
  Page page;
  page.Clear();
  Node* node = page.As<Node>();
  node->Init(/*lvl=*/0, kMinusInfinity, kPlusInfinity, kInvalidPageId);
  node->set_root(true);
  pager_->Put(*root, page);

  PrimeBlockData pb;
  pb.num_levels = 1;
  pb.leftmost[0] = *root;
  prime_.Write(pb);
  rightmost_hint_.store(*root, std::memory_order_release);
}

void SagivTree::RecoverSizeFromLeaves() {
  // Single-threaded (construction); suppress fault evaluation so an armed
  // injector cannot fail the recovery walk.
  FaultInjector::ScopedExemption exempt;
  const PrimeBlockData pb = prime_.Read();
  if (pb.num_levels == 0) return;
  uint64_t keys = 0;
  Page page;
  PageId id = pb.leftmost[0];
  PageId rightmost = id;
  // The frontier bounds the walk: a manifest naming more pages than the
  // arena holds would already have failed RestoreFromMeta's chunk setup,
  // and a link cycle (corruption) must not hang construction.
  const size_t max_steps = pager_->allocated_pages() + 1;
  for (size_t steps = 0; id != kInvalidPageId && steps < max_steps; ++steps) {
    if (!pager_->Get(id, &page).ok()) break;
    const Node* node = page.As<Node>();
    if (!node->is_deleted()) keys += node->count;
    rightmost = id;
    id = node->link;
  }
  size_.store(keys, std::memory_order_relaxed);
  rightmost_hint_.store(rightmost, std::memory_order_release);
}

Status SagivTree::Checkpoint() {
  return pager_->Checkpoint([this](StoreMeta* meta) {
    const PrimeBlockData pb = prime_.Read();
    meta->leftmost.assign(pb.leftmost, pb.leftmost + pb.num_levels);
    meta->tree_size = size_.load(std::memory_order_relaxed);
    meta->max_key = max_key_hint_.load(std::memory_order_relaxed);
    meta->rightmost_leaf = rightmost_hint_.load(std::memory_order_relaxed);
  });
}

uint64_t SagivTree::checkpoint_epoch() const {
  return file_store_ != nullptr ? file_store_->checkpoint_epoch() : 0;
}

SagivTree::~SagivTree() = default;

void SagivTree::AttachCompressionQueue(CompressionQueue* queue) {
  queue_.store(queue, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Descending
// ---------------------------------------------------------------------------

Status SagivTree::FetchPage(PageId id, Page* out) const {
  Status s = pager_->Get(id, out);
  if (s.ok()) return s;
  // Transient fetch failure (injected today; a real PageStore's I/O error
  // tomorrow): bounded retry with exponential backoff before surfacing
  // Unavailable to the operation. Only the lock-free descents come through
  // here — locked fetches cannot fail (see PageManager::Get).
  for (int attempt = 0; attempt < options_.fetch_retry_limit; ++attempt) {
    stats_->Add(StatId::kFetchRetries);
    const uint32_t base = options_.fetch_retry_backoff_us;
    if (base > 0) {
      const int shift = attempt < 6 ? attempt : 6;
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<uint64_t>(base) << shift));
    }
    s = pager_->Get(id, out);
    if (s.ok()) return s;
  }
  stats_->Add(StatId::kFetchGiveups);
  return s;
}

void SagivTree::CountRestart(RestartCause cause) const {
  stats_->Add(StatId::kRestarts);
  switch (cause) {
    case RestartCause::kStaleNode:
      stats_->Add(StatId::kRestartsStaleNode);
      break;
    case RestartCause::kRightmostStale:
      stats_->Add(StatId::kRestartsRightmostStale);
      break;
    case RestartCause::kMissingMergeTarget:
      stats_->Add(StatId::kRestartsMissingMergeTarget);
      break;
    case RestartCause::kNone:
      break;
  }
}

Result<PageId> SagivTree::internal_FindNodeAtLevel(
    Key key, uint32_t level, std::vector<PageId>* stack_out,
    bool wait_for_level) const {
  if (options_.optimistic_reads) {
    int failures = 0;
    Result<PageId> r = OptimisticFindNodeAtLevel(key, level, stack_out,
                                                 wait_for_level, &failures);
    if (r.ok() || !r.status().IsAborted()) return r;
    stats_->Add(StatId::kOptimisticFallbacks);
  }
  return CopyFindNodeAtLevel(key, level, stack_out, wait_for_level);
}

Result<PageId> SagivTree::OptimisticFindNodeAtLevel(
    Key key, uint32_t level, std::vector<PageId>* stack_out,
    bool wait_for_level, int* failures) const {
  int restarts = 0;
  int waits = 0;
  for (;;) {
    if (stack_out) stack_out->clear();
    const PrimeBlockData pb = prime_.Read();
    if (pb.num_levels <= level) {
      if (!wait_for_level) {
        return Status::NotFound("level does not exist");
      }
      // Section 3.3: a split outran the creation of the level it must post
      // to (or the level was collapsed and will be regrown by a pending
      // insertion). Wait for the prime block to show the level.
      if (++waits > options_.max_restarts) {
        return Status::Internal("level never appeared");
      }
      std::this_thread::yield();
      continue;
    }
    PageId current = pb.root();
    RestartCause cause = RestartCause::kNone;
    bool restart = false;
    for (int steps = 0; !restart; ++steps) {
      if (steps > kMaxStepsPerAttempt) {
        return Status::Internal("descent did not terminate");
      }
      const PageManager::ReadGuard g = pager_->OptimisticRead(current);
      Route route;  // defaults to kTorn for the unstable-guard case
      if (g.stable()) {
        route = RouteForKey(NodeView(g.page()->As<Node>()), key, level);
        // Nothing read above may be trusted until the version validates;
        // in particular route.next is followed only on a clean check.
        if (route.kind != Route::kTorn && !g.Validate()) {
          route.kind = Route::kTorn;
        }
      }
      if (route.kind == Route::kTorn) {
        stats_->Add(StatId::kOptimisticRetries);
        if (++(*failures) > options_.optimistic_retry_limit) {
          return Status::Aborted("optimistic retry budget exhausted");
        }
        continue;  // re-read the same node
      }
      stats_->Add(StatId::kOptimisticValidations);
      switch (route.kind) {
        case Route::kArrived:
          return current;
        case Route::kChild:
          if (stack_out) stack_out->push_back(current);
          current = route.next;
          break;
        case Route::kLink:
          stats_->Add(StatId::kLinkFollows);
          current = route.next;
          break;
        case Route::kMerge:
          stats_->Add(StatId::kMergePointerFollows);
          current = route.next;
          break;
        case Route::kRestartStale:
        case Route::kRestartRightmost:
        case Route::kRestartNoMergeTarget:
          cause = CauseFor(route.kind);
          restart = true;
          break;
        case Route::kTorn:
          break;  // handled above
      }
    }
    CountRestart(cause);
    if (++restarts > options_.max_restarts) {
      return Status::Internal("too many restarts in FindNodeAtLevel");
    }
  }
}

Result<PageId> SagivTree::CopyFindNodeAtLevel(Key key, uint32_t level,
                                              std::vector<PageId>* stack_out,
                                              bool wait_for_level) const {
  int restarts = 0;
  int waits = 0;
  for (;;) {
    if (stack_out) stack_out->clear();
    const PrimeBlockData pb = prime_.Read();
    if (pb.num_levels <= level) {
      if (!wait_for_level) {
        return Status::NotFound("level does not exist");
      }
      // Section 3.3: a split outran the creation of the level it must post
      // to (or the level was collapsed and will be regrown by a pending
      // insertion). Wait for the prime block to show the level.
      if (++waits > options_.max_restarts) {
        return Status::Internal("level never appeared");
      }
      std::this_thread::yield();
      continue;
    }
    PageId current = pb.root();
    Page page;
    Node* node = page.As<Node>();
    RestartCause cause = RestartCause::kNone;
    for (int steps = 0;; ++steps) {
      if (steps > kMaxStepsPerAttempt) {
        return Status::Internal("descent did not terminate");
      }
      Status gs = FetchPage(current, &page);
      if (!gs.ok()) return gs;
      if (node->is_deleted()) {
        const PageId target = node->merge_target;
        if (target == kInvalidPageId) {
          cause = RestartCause::kMissingMergeTarget;
          break;
        }
        stats_->Add(StatId::kMergePointerFollows);
        current = target;
        continue;
      }
      if (node->level < level || key <= node->low) {
        // Wrong node: either a reclaimed-and-reused page (stale pointer) or
        // data moved left by a compression (Section 5.2 case (2)).
        cause = RestartCause::kStaleNode;
        break;
      }
      if (key > node->high) {
        const PageId link = node->link;
        if (link == kInvalidPageId) {
          cause = RestartCause::kRightmostStale;  // stale rightmost node
          break;
        }
        stats_->Add(StatId::kLinkFollows);
        current = link;
        continue;
      }
      if (node->level == level) return current;
      if (stack_out) stack_out->push_back(current);
      current = node->ChildFor(key);
    }
    CountRestart(cause);
    if (++restarts > options_.max_restarts) {
      return Status::Internal("too many restarts in FindNodeAtLevel");
    }
  }
}

Status SagivTree::DescendToLeaf(Key key, EpochManager::Guard* guard,
                                Page* page, PageId* leaf_page) const {
  Node* node = page->As<Node>();
  int restarts = 0;
  for (;;) {
    const PrimeBlockData pb = prime_.Read();
    PageId current = pb.root();
    // §5.2 backtrack optimization: remember the node we came down
    // through; a search routed to a wrong node first retries from there
    // and only restarts at the root if the previous node is also wrong.
    PageId previous = kInvalidPageId;
    bool backtracked = false;
    int backtracks_this_attempt = 0;
    RestartCause cause = RestartCause::kNone;
    for (int steps = 0;; ++steps) {
      if (steps > kMaxStepsPerAttempt) {
        return Status::Internal("descent did not terminate");
      }
      Status gs = FetchPage(current, page);
      if (!gs.ok()) return gs;
      bool wrong = false;
      if (node->is_deleted()) {
        const PageId target = node->merge_target;
        if (target != kInvalidPageId) {
          stats_->Add(StatId::kMergePointerFollows);
          current = target;
          continue;
        }
        cause = RestartCause::kMissingMergeTarget;
        wrong = true;
      } else if (key <= node->low) {
        cause = RestartCause::kStaleNode;
        wrong = true;
      }
      if (wrong) {
        if (previous != kInvalidPageId && !backtracked &&
            ++backtracks_this_attempt <= 4) {
          // One backtrack per wrong-node event, a few per descent: the
          // previous node re-evaluates next(A, v) against fresh contents;
          // if it keeps routing us wrong, fall back to a root restart.
          stats_->Add(StatId::kBacktracks);
          current = previous;
          previous = kInvalidPageId;
          backtracked = true;
          continue;
        }
        break;
      }
      if (key > node->high) {
        const PageId link = node->link;
        if (link == kInvalidPageId) {
          cause = RestartCause::kRightmostStale;
          break;
        }
        stats_->Add(StatId::kLinkFollows);
        previous = current;
        backtracked = false;
        current = link;
        continue;
      }
      if (node->is_leaf()) {
        *leaf_page = current;
        return Status::OK();
      }
      previous = current;
      backtracked = false;
      current = node->ChildFor(key);
    }
    CountRestart(cause);
    if (++restarts > options_.max_restarts) {
      return Status::Internal("too many restarts in search");
    }
    // Re-pin: a restarted search may legally observe a fresher tree, and
    // releasing the old pin lets reclamation advance (Section 5.3).
    guard->Refresh();
  }
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

Result<Value> SagivTree::Search(Key key) const {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kSearches);
  EpochManager::Guard guard(epoch_.get());
  if (options_.optimistic_reads) {
    Result<Value> r = OptimisticSearch(key, &guard);
    if (r.ok() || !r.status().IsAborted()) return r;
    stats_->Add(StatId::kOptimisticFallbacks);
  }
  Page page;
  PageId leaf_page;
  Status s = DescendToLeaf(key, &guard, &page, &leaf_page);
  if (!s.ok()) return s;
  std::optional<Value> v = page.As<Node>()->FindLeafValue(key);
  if (!v.has_value()) return Status::NotFound();
  return *v;
}

Result<Value> SagivTree::OptimisticSearch(Key key,
                                          EpochManager::Guard* guard) const {
  int failures = 0;
  int restarts = 0;
  for (;;) {
    const PrimeBlockData pb = prime_.Read();
    PageId current = pb.root();
    RestartCause cause = RestartCause::kNone;
    bool restart = false;
    for (int steps = 0; !restart; ++steps) {
      if (steps > kMaxStepsPerAttempt) {
        return Status::Internal("descent did not terminate");
      }
      const PageManager::ReadGuard g = pager_->OptimisticRead(current);
      Route route;  // defaults to kTorn for the unstable-guard case
      std::optional<Value> value;
      if (g.stable()) {
        const NodeView view(g.page()->As<Node>());
        route = RouteForKey(view, key, /*target_level=*/0);
        // Probe the leaf slot under the same version as the routing
        // decision: one validation covers both.
        if (route.kind == Route::kArrived) value = view.FindLeafValue(key);
        if (route.kind != Route::kTorn && !g.Validate()) {
          route.kind = Route::kTorn;
        }
      }
      if (route.kind == Route::kTorn) {
        stats_->Add(StatId::kOptimisticRetries);
        if (++failures > options_.optimistic_retry_limit) {
          return Status::Aborted("optimistic retry budget exhausted");
        }
        continue;  // re-read the same node
      }
      stats_->Add(StatId::kOptimisticValidations);
      switch (route.kind) {
        case Route::kArrived:
          if (!value.has_value()) return Status::NotFound();
          return *value;
        case Route::kChild:
          current = route.next;
          break;
        case Route::kLink:
          stats_->Add(StatId::kLinkFollows);
          current = route.next;
          break;
        case Route::kMerge:
          stats_->Add(StatId::kMergePointerFollows);
          current = route.next;
          break;
        case Route::kRestartStale:
        case Route::kRestartRightmost:
        case Route::kRestartNoMergeTarget:
          cause = CauseFor(route.kind);
          restart = true;
          break;
        case Route::kTorn:
          break;  // handled above
      }
    }
    CountRestart(cause);
    if (++restarts > options_.max_restarts) {
      return Status::Internal("too many restarts in search");
    }
    // Re-pin: a restarted search may legally observe a fresher tree, and
    // releasing the old pin lets reclamation advance (Section 5.3).
    guard->Refresh();
  }
}

size_t SagivTree::Scan(Key lo, Key hi,
                       const std::function<bool(Key, Value)>& visitor) const {
  if (lo < 1) lo = 1;
  if (hi > kMaxUserKey) hi = kMaxUserKey;
  if (lo > hi) return 0;
  stats_->Add(StatId::kSearches);
  EpochManager::Guard guard(epoch_.get());

  size_t visited = 0;
  Key next_key = lo;
  if (options_.optimistic_reads) {
    Status s = OptimisticScan(&next_key, hi, visitor, &guard, &visited);
    if (!s.IsAborted()) return visited;  // done (or stopped / gave up)
    stats_->Add(StatId::kOptimisticFallbacks);
  }
  return CopyScan(next_key, hi, visitor, &guard, visited);
}

Status SagivTree::OptimisticScan(Key* next_key_io, Key hi,
                                 const std::function<bool(Key, Value)>& visitor,
                                 EpochManager::Guard* guard,
                                 size_t* visited) const {
  int failures = 0;
  int restarts = 0;
  Key next_key = *next_key_io;
  PageId current = kInvalidPageId;  // invalid: descend to locate the leaf

  // Entries of one leaf are harvested under a single version, validated,
  // and only then delivered — the visitor never sees an unvalidated pair.
  TlReadBuffersLease lease;
  std::vector<Entry> local_entries;
  std::vector<Entry>& buf =
      lease.claimed() ? tl_read_buffers.entries : local_entries;
  buf.reserve(Node::kMaxEntries);

  int steps = 0;
  for (;;) {
    *next_key_io = next_key;
    if (current == kInvalidPageId) {
      Result<PageId> leaf =
          OptimisticFindNodeAtLevel(next_key, /*level=*/0, nullptr,
                                    /*wait_for_level=*/true, &failures);
      if (!leaf.ok()) {
        // Aborted propagates to the copy fallback; a hard failure ends
        // the scan with what was delivered (the copy path's behavior).
        return leaf.status().IsAborted() ? leaf.status() : Status::OK();
      }
      current = *leaf;
      steps = 0;
    }
    if (++steps > kMaxStepsPerAttempt) {
      return Status::Internal("scan did not terminate");
    }
    const PageManager::ReadGuard g = pager_->OptimisticRead(current);
    enum { kRetry, kMove, kRestart, kDeliver } action = kRetry;
    PageId move_to = kInvalidPageId;
    StatId move_stat = StatId::kLinkFollows;
    RestartCause cause = RestartCause::kNone;
    Key leaf_high = 0;
    PageId leaf_link = kInvalidPageId;
    buf.clear();
    if (g.stable()) {
      const NodeView view(g.page()->As<Node>());
      if (view.is_deleted()) {
        const PageId target = view.merge_target();
        if (g.Validate()) {
          if (target == kInvalidPageId) {
            action = kRestart;
            cause = RestartCause::kMissingMergeTarget;
          } else {
            action = kMove;
            move_to = target;
            move_stat = StatId::kMergePointerFollows;
          }
        }
      } else if (!view.is_leaf() || next_key <= view.low()) {
        // Reused page (no longer a leaf) or data moved left (§5.2 (2)).
        if (g.Validate()) {
          action = kRestart;
          cause = RestartCause::kStaleNode;
        }
      } else if (next_key > view.high()) {
        const PageId link = view.link();
        if (g.Validate()) {
          if (link == kInvalidPageId) {
            action = kRestart;
            cause = RestartCause::kRightmostStale;
          } else {
            action = kMove;
            move_to = link;
            move_stat = StatId::kLinkFollows;
          }
        }
      } else {
        // Harvest this leaf's pairs in [next_key, hi] plus its high/link.
        leaf_high = view.high();
        leaf_link = view.link();
        const uint32_t n = view.count();
        for (uint32_t i = view.LowerBound(next_key); i < n; ++i) {
          const Key k = view.entry_key(i);
          if (k > hi) break;
          buf.push_back(Entry{k, view.entry_value(i)});
        }
        if (g.Validate()) action = kDeliver;
      }
    }
    switch (action) {
      case kRetry:
        stats_->Add(StatId::kOptimisticRetries);
        if (++failures > options_.optimistic_retry_limit) {
          return Status::Aborted("optimistic retry budget exhausted");
        }
        continue;  // re-read the same page
      case kMove:
        stats_->Add(StatId::kOptimisticValidations);
        stats_->Add(move_stat);
        current = move_to;
        continue;
      case kRestart:
        stats_->Add(StatId::kOptimisticValidations);
        CountRestart(cause);
        if (++restarts > options_.max_restarts) {
          return Status::Internal("too many restarts in scan");
        }
        guard->Refresh();
        current = kInvalidPageId;
        continue;
      case kDeliver:
        break;
    }
    stats_->Add(StatId::kOptimisticValidations);
    for (const Entry& e : buf) {
      ++*visited;
      if (!visitor(e.key, e.value)) return Status::OK();
    }
    if (leaf_high >= hi || leaf_high == kPlusInfinity) return Status::OK();
    next_key = leaf_high + 1;
    steps = 0;  // the steps bound is per positioning attempt, not per scan
    // Fast path: follow the leaf link (the probe above re-checks that it
    // still covers next_key); a nil link forces a fresh descent.
    current = leaf_link;
    if (current != kInvalidPageId) stats_->Add(StatId::kLinkFollows);
  }
}

size_t SagivTree::CopyScan(Key next_key, Key hi,
                           const std::function<bool(Key, Value)>& visitor,
                           EpochManager::Guard* guard, size_t visited) const {
  // Reuse the thread-local page across leaves (a fresh 4 KB buffer per
  // scan costs a cache-cold write-back on every call).
  TlReadBuffersLease lease;
  Page local_page;
  Page& page = lease.claimed() ? tl_read_buffers.page : local_page;
  Node* node = page.As<Node>();
  bool have_leaf = false;
  for (;;) {
    if (!have_leaf) {
      PageId leaf_page;
      if (!DescendToLeaf(next_key, guard, &page, &leaf_page).ok()) {
        return visited;
      }
    }
    // Deliver this leaf's keys in [next_key, hi].
    for (uint32_t i = node->LowerBound(next_key); i < node->count; ++i) {
      if (node->entries[i].key > hi) return visited;
      ++visited;
      if (!visitor(node->entries[i].key, node->entries[i].value)) {
        return visited;
      }
    }
    if (node->high >= hi || node->high == kPlusInfinity) return visited;
    next_key = node->high + 1;
    // Fast path: follow the leaf link; fall back to a fresh descent when
    // compression moved the range.
    const PageId link = node->link;
    have_leaf = false;
    if (link != kInvalidPageId) {
      // A failed link fetch just falls back to a fresh descent (which
      // retries with backoff); the page image is only trusted on OK.
      if (pager_->Get(link, &page).ok() && !node->is_deleted() &&
          node->is_leaf() && next_key > node->low && next_key <= node->high) {
        stats_->Add(StatId::kLinkFollows);
        have_leaf = true;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Insertion (Figs. 5 and 6)
// ---------------------------------------------------------------------------

Result<PageId> SagivTree::AcquireTargetNode(Key ins_key, uint32_t level,
                                            PageId start,
                                            std::vector<PageId>* stack,
                                            int* restarts, Page* page,
                                            bool wait_for_level) const {
  Node* node = page->As<Node>();
  PageId current = start;
  for (int steps = 0;; ++steps) {
    if (steps > kMaxStepsPerAttempt) {
      return Status::Internal("moveright did not terminate");
    }
    pager_->Lock(current);
    // Locked fetches cannot fail: fault errors target lock-free readers
    // only (see PageManager::Get).
    pager_->Get(current, page);
    RestartCause cause = RestartCause::kNone;
    if (node->is_deleted()) {
      const PageId target = node->merge_target;
      pager_->Unlock(current);
      if (target != kInvalidPageId) {
        stats_->Add(StatId::kMergePointerFollows);
        current = target;
        continue;
      }
      cause = RestartCause::kMissingMergeTarget;
    } else if (node->level != level || ins_key <= node->low) {
      pager_->Unlock(current);
      cause = RestartCause::kStaleNode;
    } else if (ins_key > node->high) {
      const PageId link = node->link;
      pager_->Unlock(current);
      if (link == kInvalidPageId) {
        cause = RestartCause::kRightmostStale;
      } else {
        stats_->Add(StatId::kLinkFollows);
        current = link;
        continue;
      }
    } else {
      return current;  // locked; image in *page
    }
    assert(cause != RestartCause::kNone);
    CountRestart(cause);
    if (++(*restarts) > options_.max_restarts) {
      return Status::Internal("too many restarts acquiring target node");
    }
    Result<PageId> r =
        internal_FindNodeAtLevel(ins_key, level, stack, wait_for_level);
    if (!r.ok()) return r.status();
    current = *r;
  }
}

Result<PageId> SagivTree::AcquireTargetInPlace(Key key, uint32_t level,
                                               PageId start,
                                               std::vector<PageId>* stack,
                                               int* restarts,
                                               const Node** live) const {
  int failures = 0;
  PageId current = start;
  for (int steps = 0;; ++steps) {
    if (steps > kMaxStepsPerAttempt) {
      return Status::Internal("moveright did not terminate");
    }
    // Contention-aware acquisition: a bounded test-and-test-and-set spin
    // (TryLockSpin) first. When the lock stays contended through the spin
    // budget, the holder is mutating THIS node right now — quite possibly
    // splitting a hot leaf, after which this node is the wrong target
    // anyway. So before parking, re-route optimistically from the live
    // image: a link/merge hop or a restart discovered here costs one node
    // access and zero sleeps, where blocking first would park the writer,
    // wake it into a stale target, and restart it anyway (the convoy +
    // restart-storm pattern this discipline exists to break). Only a node
    // that still looks like the target is worth the parking Lock.
    if (!pager_->TryLockSpin(current)) {
      const PageManager::ReadGuard peek = pager_->OptimisticRead(current);
      Route reroute;  // kTorn when unstable/unvalidated: no usable signal
      if (peek.stable()) {
        reroute = RouteForKey(NodeView(peek.page()->As<Node>()), key, level);
        if (!peek.Validate()) reroute.kind = Route::kTorn;
      }
      switch (reroute.kind) {
        case Route::kLink:
          stats_->Add(StatId::kLinkFollows);
          current = reroute.next;
          continue;
        case Route::kMerge:
          stats_->Add(StatId::kMergePointerFollows);
          current = reroute.next;
          continue;
        case Route::kRestartStale:
        case Route::kRestartRightmost:
        case Route::kRestartNoMergeTarget: {
          CountRestart(CauseFor(reroute.kind));
          if (++(*restarts) > options_.max_restarts) {
            return Status::Internal("too many restarts acquiring target node");
          }
          Result<PageId> r = internal_FindNodeAtLevel(key, level, stack);
          if (!r.ok()) return r.status();
          current = *r;
          continue;
        }
        default:
          // kArrived (still the target), kChild (reused as a higher-level
          // node — let the locked inspection classify it), or kTorn: wait
          // for the holder.
          pager_->Lock(current);
          break;
      }
    }
    // Inspect the live page without copying it. The paper lock excludes
    // every mutator EXCEPT the reuse pipeline of a stale page (Retire ->
    // Allocate zeroing -> initializing Put run without it), so reads stay
    // atomic-and-validated until the image proves live; from then on the
    // lock alone pins the node. Every peek — retries included — counts
    // as a node access, exactly like the optimistic descents.
    Route route;
    const Node* node_image = nullptr;
    for (;;) {
      const PageManager::ReadGuard g = pager_->PeekLocked(current);
      route = Route{};  // kTorn: also covers the unstable-guard case
      if (g.stable()) {
        node_image = g.page()->As<Node>();
        route = RouteForKey(NodeView(node_image), key, level);
        // Under the lock, a node of a HIGHER level than the target is a
        // reused page, not a descent point — same restart the copy
        // acquire takes on node->level != level.
        if (route.kind == Route::kChild) route.kind = Route::kRestartStale;
        if (route.kind != Route::kTorn && !g.Validate()) {
          route.kind = Route::kTorn;
        }
      }
      if (route.kind != Route::kTorn) break;
      // Only an in-flight page reuse can keep tearing a locked page; it
      // resolves in a bounded number of bumps, but budget it like the
      // optimistic read path so a protocol bug cannot spin here.
      stats_->Add(StatId::kOptimisticRetries);
      if (++failures > options_.optimistic_retry_limit) {
        pager_->Unlock(current);
        return Status::Aborted("in-place write retry budget exhausted");
      }
    }
    switch (route.kind) {
      case Route::kArrived:
        *live = node_image;
        return current;  // locked; *live pinned until Unlock
      case Route::kLink:
        pager_->Unlock(current);
        stats_->Add(StatId::kLinkFollows);
        current = route.next;
        continue;
      case Route::kMerge:
        pager_->Unlock(current);
        stats_->Add(StatId::kMergePointerFollows);
        current = route.next;
        continue;
      default:
        break;  // a restart kind (kChild/kTorn were handled above)
    }
    pager_->Unlock(current);
    const RestartCause cause = CauseFor(route.kind);
    CountRestart(cause);
    if (++(*restarts) > options_.max_restarts) {
      return Status::Internal("too many restarts acquiring target node");
    }
    Result<PageId> r = internal_FindNodeAtLevel(key, level, stack);
    if (!r.ok()) return r.status();
    current = *r;
  }
}

void SagivTree::ApplyInsert(Node* node, Key key, uint64_t down_ptr) {
  if (node->is_leaf()) {
    node->InsertLeafEntry(key, static_cast<Value>(down_ptr));
  } else {
    bool ok = node->InsertChildSplit(key, static_cast<PageId>(down_ptr));
    assert(ok);
    (void)ok;
  }
}

void SagivTree::InsertIntoSafe(Page* page, PageId page_id, Key key,
                               uint64_t down_ptr, AscentState* st) {
  Node* node = page->As<Node>();
  ApplyInsert(node, key, down_ptr);
  pager_->Put(page_id, *page);
  pager_->Unlock(page_id);
  stats_->Add(StatId::kWriteBytesCopied, 2 * kPageSize);  // get + put
  st->completed = true;
}

void SagivTree::InsertIntoSafeInPlace(PageId page_id, Key key,
                                      uint64_t down_ptr, AscentState* st) {
  PageManager::WriteGuard wg = pager_->BeginWrite(page_id);
  Node* node = wg.page()->As<Node>();
  size_t bytes;
  if (node->is_leaf()) {
    bytes = node->InsertLeafEntryInPlace(key, static_cast<Value>(down_ptr));
  } else {
    bytes = node->InsertChildSplitInPlace(key, static_cast<PageId>(down_ptr));
    assert(bytes > 0);  // separator collision = protocol violation
  }
  wg.Release();
  pager_->Unlock(page_id);
  stats_->Add(StatId::kInplaceWrites);
  stats_->Add(StatId::kWriteBytesInplace, bytes);
  st->completed = true;
}

// Split point for the node in `page` (post-ApplyInsert), honoring the
// append_leaves tail bias: when the node is the rightmost of its level
// (nil link) and the just-inserted key is its largest — for a leaf the
// last entry; for an internal node the last FINITE separator, since a
// rightmost internal node's final entry is the +inf upper bound — split
// at the high end, keeping all but one entry on the left. The retiring
// left node ends ~full instead of half-full, and the near-empty new
// rightmost node (legal: rightmost nodes are exempt from the half-full
// invariant) absorbs the next run of appends. Returns 0 (midpoint) when
// the bias does not apply.
uint32_t SagivTree::TailSplitKeep(const Node* node, Key key) const {
  if (!options_.append_leaves || node->link != kInvalidPageId ||
      node->count < 3) {
    return 0;
  }
  const uint32_t n = node->count;
  const bool max_extending = node->is_leaf()
                                 ? node->entries[n - 1].key == key
                                 : node->entries[n - 2].key == key;
  return max_extending ? n - 1 : 0;
}

Status SagivTree::InsertIntoUnsafe(Page* page, PageId page_id, Key key,
                                   uint64_t down_ptr, AscentState* st) {
  Node* node = page->As<Node>();
  Result<PageId> right_page = pager_->Allocate();
  if (!right_page.ok()) {
    pager_->Unlock(page_id);
    return right_page.status();
  }
  // A rightmost-leaf split births a node B that is live-looking (leaf,
  // nil link, +inf high) — exactly what TryAppendFast's locked
  // validation accepts — yet unreachable until A's rewrite publishes the
  // link. An appender could reach B's page id through a stale
  // rightmost_hint_ (Allocate may have handed us a retired page some
  // hint still names), validate B's post-put image, and append a key no
  // concurrent search can find yet. Open the frontier publication epoch
  // (odd) before B's put and close it (even) after A's: the odd bump is
  // sequenced before B's release-store, so any appender whose acquire
  // read validates B's image inside the window sees an odd-or-advanced
  // epoch and misses. No second lock — insertions keep the paper's
  // one-lock discipline.
  const bool frontier_leaf = node->is_leaf() && node->link == kInvalidPageId;
  if (frontier_leaf) frontier_seq_.fetch_add(1, std::memory_order_release);
  ApplyInsert(node, key, down_ptr);

  Page right_buf;
  Node* right = right_buf.As<Node>();
  const uint32_t keep = TailSplitKeep(node, key);
  node->SplitInto(right, *right_page, keep);
  stats_->Add(StatId::kSplits);
  if (keep != 0) stats_->Add(StatId::kTailSplits);
  if (node->is_leaf()) {
    stats_->RecordLeafFill(node->count * 100 / options_.capacity());
  }

  // Write the new node B first, then rewrite A; the instant A's image
  // lands, B is reachable through A's link (Fig. 3). One lock throughout.
  pager_->Put(*right_page, right_buf);
  pager_->Put(page_id, *page);
  if (frontier_leaf) {
    frontier_seq_.fetch_add(1, std::memory_order_release);
    if (options_.append_leaves) {
      // The split frontier moved: B is the rightmost leaf. Publish the
      // hint only now — a hint readable before A's put would hand
      // appenders a node no concurrent search can reach yet.
      rightmost_hint_.store(*right_page, std::memory_order_release);
    }
  }
  pager_->Unlock(page_id);
  stats_->Add(StatId::kWriteBytesCopied, 3 * kPageSize);  // get + 2 puts

  st->sep = node->high;
  st->new_child = *right_page;
  return Status::OK();
}

Status SagivTree::InsertIntoUnsafeRoot(Page* page, PageId page_id, Key key,
                                       uint64_t down_ptr, AscentState* st) {
  Node* node = page->As<Node>();
  if (node->level + 2 > kMaxLevels) {
    pager_->Unlock(page_id);
    return Status::ResourceExhausted("tree height limit reached");
  }
  Result<PageId> right_page = pager_->Allocate();
  if (!right_page.ok()) {
    pager_->Unlock(page_id);
    return right_page.status();
  }
  Result<PageId> root_page = pager_->Allocate();
  if (!root_page.ok()) {
    pager_->Unlock(page_id);
    return root_page.status();
  }
  // Same frontier-split publication rule as InsertIntoUnsafe: hold the
  // epoch odd across the new right node's initializing put through A's
  // put, and publish the hint only once the link is live.
  const bool frontier_leaf = node->is_leaf() && node->link == kInvalidPageId;
  if (frontier_leaf) frontier_seq_.fetch_add(1, std::memory_order_release);
  ApplyInsert(node, key, down_ptr);

  Page right_buf;
  Node* right = right_buf.As<Node>();
  const uint32_t keep = TailSplitKeep(node, key);
  node->SplitInto(right, *right_page, keep);
  node->set_root(false);  // the root bit moves to R in the same rewrite
  stats_->Add(StatId::kSplits);
  if (keep != 0) stats_->Add(StatId::kTailSplits);
  if (node->is_leaf()) {
    stats_->RecordLeafFill(node->count * 100 / options_.capacity());
  }

  pager_->Put(*right_page, right_buf);
  pager_->Put(page_id, *page);
  if (frontier_leaf) {
    frontier_seq_.fetch_add(1, std::memory_order_release);
    if (options_.append_leaves) {
      // The root was a lone leaf, so the new right node — rightmost by
      // construction and reachable through A's link as of the put above
      // — is now the rightmost leaf.
      rightmost_hint_.store(*right_page, std::memory_order_release);
    }
  }

  // Build the new root R = (current, v, q, u, nil) — in entry form
  // [(high(A) -> A), (high(B) -> B)] — and only then rewrite the prime
  // block. We still hold the lock on the old root, which is what licenses
  // the prime-block rewrite (Section 3.3).
  Page root_buf;
  Node* root = root_buf.As<Node>();
  root->Init(static_cast<uint16_t>(node->level + 1), kMinusInfinity,
             kPlusInfinity, kInvalidPageId);
  root->set_root(true);
  root->entries[0] = Entry{node->high, page_id};
  root->entries[1] = Entry{right->high, *right_page};
  root->count = 2;
  pager_->Put(*root_page, root_buf);

  PrimeBlockData pb = prime_.Read();
  assert(pb.num_levels == node->level + 1u);
  pb.leftmost[pb.num_levels] = *root_page;
  pb.num_levels++;
  prime_.Write(pb);
  stats_->Add(StatId::kRootCreations);

  pager_->Unlock(page_id);
  stats_->Add(StatId::kWriteBytesCopied, 4 * kPageSize);  // get + 3 puts
  st->completed = true;
  return Status::OK();
}

void SagivTree::NoteMaxKey(Key key) {
  Key cur = max_key_hint_.load(std::memory_order_relaxed);
  while (key > cur && !max_key_hint_.compare_exchange_weak(
                          cur, key, std::memory_order_relaxed)) {
  }
}

Status SagivTree::TryAppendFast(Key key, Value value, bool* done) {
  *done = false;
  // Snapshot the frontier publication epoch before anything else. An odd
  // value means a rightmost-leaf split is mid-publication somewhere: its
  // fresh right node already looks like the live rightmost leaf but is
  // not link-reachable yet, so nothing the lock-and-validate below could
  // establish is trustworthy — miss immediately.
  const uint64_t seq = frontier_seq_.load(std::memory_order_acquire);
  if (seq & 1) {
    stats_->Add(StatId::kAppendFastMisses);
    return Status::OK();
  }
  const PageId hint = rightmost_hint_.load(std::memory_order_acquire);
  pager_->Lock(hint);
  // The hint is unverified: the page may have split, been merged away, or
  // been retired and reused as anything since it was cached. Re-establish
  // the truth under the lock through PeekLocked validation (a reuse
  // pipeline can rewrite even a locked page; same discipline as
  // AcquireTargetInPlace): the node must still be the live rightmost leaf
  // — not deleted, level 0, nil link, high = +inf — with room to grow,
  // and `key` must extend its max (which also proves the key absent from
  // the whole tree: every other leaf holds smaller keys). Once an image
  // validates, the lock alone pins it: marking a page deleted (the
  // precondition for retiring and reusing it) needs this lock.
  //
  // One hazard survives the lock: page reuse may have handed this very
  // page id to a concurrent frontier split as its new right node B,
  // whose initializing put lands without B's lock held — a validation
  // here could accept B's live-looking image while B is still
  // unreachable (no link points at it until the splitter rewrites the
  // left node). The epoch closes that window: the splitter bumps it odd
  // before B's put, and that bump is visible to any reader whose
  // validated image is B's (release put / acquire read), so re-checking
  // the epoch after a successful validation rejects exactly those
  // images. A stable epoch across snapshot and re-check proves the
  // validated node was link-reachable.
  int failures = 0;
  for (;;) {
    const PageManager::ReadGuard g = pager_->PeekLocked(hint);
    bool is_target = false;
    bool torn = true;
    if (g.stable()) {
      const NodeView view(g.page()->As<Node>());
      const uint32_t n = view.count();
      is_target = !view.is_deleted() && view.is_leaf() &&
                  view.link() == kInvalidPageId &&
                  view.high() == kPlusInfinity && n < options_.capacity() &&
                  key > (n > 0 ? view.entry_key(n - 1) : view.low());
      torn = !g.Validate();
    }
    if (!torn) {
      if (!is_target) break;  // stale hint (or leaf full): miss
      if (frontier_seq_.load(std::memory_order_acquire) != seq) {
        break;  // frontier split began or completed meanwhile: miss
      }
      if (options_.inplace_writes) {
        PageManager::WriteGuard wg = pager_->BeginWrite(hint);
        const size_t bytes =
            wg.page()->As<Node>()->AppendLeafEntryInPlace(key, value);
        wg.Release();
        pager_->Unlock(hint);
        stats_->Add(StatId::kInplaceWrites);
        stats_->Add(StatId::kWriteBytesInplace, bytes);
      } else {
        Page page;
        pager_->Get(hint, &page);
        page.As<Node>()->InsertLeafEntry(key, value);
        pager_->Put(hint, page);
        pager_->Unlock(hint);
        stats_->Add(StatId::kWriteBytesCopied, 2 * kPageSize);  // get + put
      }
      stats_->Add(StatId::kAppendFastHits);
      size_.fetch_add(1, std::memory_order_relaxed);
      NoteMaxKey(key);
      *done = true;
      return Status::OK();
    }
    stats_->Add(StatId::kOptimisticRetries);
    if (++failures > options_.optimistic_retry_limit) break;  // miss
  }
  pager_->Unlock(hint);
  stats_->Add(StatId::kAppendFastMisses);
  return Status::OK();
}

Status SagivTree::Insert(Key key, Value value) {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kInserts);
  EpochManager::Guard guard(epoch_.get());
  // One checkpoint-gate hold for the WHOLE insert (descent, splits,
  // parent ascent) so a checkpoint can never capture a half-split.
  PageManager::MutatorScope mutator_scope(pager_.get());

  // Rightmost fast path: a key beyond every key ever inserted can only
  // belong at the end of the rightmost leaf — try to append there without
  // descending. A miss (stale hint) falls through to the normal descent,
  // which refreshes the hint below.
  const bool max_extending =
      options_.append_leaves &&
      key > max_key_hint_.load(std::memory_order_relaxed);
  if (max_extending) {
    bool done = false;
    Status s = TryAppendFast(key, value, &done);
    if (done) return s;
  }

  std::vector<PageId> local_stack;
  TlStackLease stack_lease(&local_stack);
  std::vector<PageId>& stack = *stack_lease.stack();
  Result<PageId> found = internal_FindNodeAtLevel(key, 0, &stack);
  if (!found.ok()) return found.status();
  if (max_extending) {
    // Best effort: a max-extending key's descent normally lands on the
    // current rightmost leaf (every commit path — including MultiMutate —
    // raises the watermark, so keys above it sort past everything
    // stored). A racing larger insert that has committed but not yet
    // noted itself can still make this cache a non-rightmost leaf; the
    // locked validation rejects such a hint, costing only a miss.
    rightmost_hint_.store(*found, std::memory_order_release);
  }
  Status s = InsertCommit(key, value, *found, &stack, /*overwrite=*/false);
  if (s.ok() && max_extending) NoteMaxKey(key);
  return s;
}

Status SagivTree::Upsert(Key key, Value value) {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  // An upsert is an insert that may degenerate to a value overwrite; it
  // counts as one logical insert either way.
  stats_->Add(StatId::kInserts);
  EpochManager::Guard guard(epoch_.get());
  PageManager::MutatorScope mutator_scope(pager_.get());

  // A key beyond the tree's max is necessarily absent, so the upsert is a
  // plain insert and the rightmost fast path applies unchanged.
  const bool max_extending =
      options_.append_leaves &&
      key > max_key_hint_.load(std::memory_order_relaxed);
  if (max_extending) {
    bool done = false;
    Status s = TryAppendFast(key, value, &done);
    if (done) return s;
  }

  std::vector<PageId> local_stack;
  TlStackLease stack_lease(&local_stack);
  std::vector<PageId>& stack = *stack_lease.stack();
  Result<PageId> found = internal_FindNodeAtLevel(key, 0, &stack);
  if (!found.ok()) return found.status();
  if (max_extending) {
    // Best effort, exactly as in Insert above.
    rightmost_hint_.store(*found, std::memory_order_release);
  }
  Status s = InsertCommit(key, value, *found, &stack, /*overwrite=*/true);
  if (s.ok() && max_extending) NoteMaxKey(key);
  return s;
}

Status SagivTree::InsertCommit(Key key, Value value, PageId start,
                               std::vector<PageId>* stack_in, bool overwrite) {
  std::vector<PageId>& stack = *stack_in;
  PageId current = start;
  Key ins_key = key;
  uint64_t down_ptr = value;
  uint32_t level = 0;
  int restarts = 0;
  // In-place mode is per-operation: once a locked inspection exhausts its
  // validation budget the whole operation falls back to copy semantics.
  bool inplace = options_.inplace_writes;
  Page page;
  Node* node = page.As<Node>();

  for (;;) {  // the "repeat ... until completed" of Fig. 5
    // `view` is the locked node's image: the live page (in-place acquire,
    // plain reads safe under the lock) or the private copy in `page`.
    const Node* view = nullptr;
    bool locked_inplace = false;
    if (inplace) {
      Result<PageId> target =
          AcquireTargetInPlace(ins_key, level, current, &stack, &restarts,
                               &view);
      if (target.ok()) {
        current = *target;
        locked_inplace = true;
      } else if (target.status().IsAborted()) {
        stats_->Add(StatId::kInplaceFallbacks);
        inplace = false;
      } else {
        return target.status();
      }
    }
    if (!locked_inplace) {
      Result<PageId> target =
          AcquireTargetNode(ins_key, level, current, &stack, &restarts, &page);
      if (!target.ok()) return target.status();
      current = *target;
      view = node;
    }

    if (level == 0) {
      const uint32_t idx = view->LowerBound(ins_key);
      if (idx < view->count && view->entries[idx].key == ins_key) {
        if (!overwrite) {
          pager_->Unlock(current);
          return Status::AlreadyExists("key already in the tree");
        }
        // Upsert replace case: overwrite the value under the lock we
        // already hold — same critical section as the presence check, so
        // the key is never transiently absent. Size is unchanged.
        if (locked_inplace) {
          PageManager::WriteGuard wg = pager_->BeginWrite(current);
          const size_t bytes =
              wg.page()->As<Node>()->SetLeafValueAtInPlace(idx, value);
          wg.Release();
          pager_->Unlock(current);
          stats_->Add(StatId::kInplaceWrites);
          stats_->Add(StatId::kWriteBytesInplace, bytes);
        } else {
          node->entries[idx].value = value;
          pager_->Put(current, page);
          pager_->Unlock(current);
          stats_->Add(StatId::kWriteBytesCopied, 2 * kPageSize);  // get + put
        }
        return Status::OK();
      }
    }

    AscentState st;
    if (view->count < options_.capacity()) {
      if (locked_inplace) {
        InsertIntoSafeInPlace(current, ins_key, down_ptr, &st);
      } else {
        InsertIntoSafe(&page, current, ins_key, down_ptr, &st);
      }
    } else {
      if (locked_inplace) {
        // Splits keep copy semantics: pay the copy-out the in-place
        // acquire skipped, under the lock we already hold (locked fetches
        // cannot fail).
        pager_->Get(current, &page);
        view = node;
      }
      Status s =
          view->is_root()
              ? InsertIntoUnsafeRoot(&page, current, ins_key, down_ptr, &st)
              : InsertIntoUnsafe(&page, current, ins_key, down_ptr, &st);
      if (!s.ok()) return s;
    }
    if (st.completed) {
      size_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    // Move one level up: to the node we came down through, or — if the
    // stack is exhausted — to the leftmost node of the next higher level
    // (waiting for it to exist if a root creation is still in flight,
    // Section 3.3).
    ins_key = st.sep;
    down_ptr = st.new_child;
    level++;
    if (!stack.empty()) {
      current = stack.back();
      stack.pop_back();
    } else {
      int waits = 0;
      for (;;) {
        const PrimeBlockData pb = prime_.Read();
        if (pb.num_levels > level) {
          current = pb.leftmost[level];
          break;
        }
        if (++waits > options_.max_restarts) {
          return Status::Internal("next level never appeared");
        }
        std::this_thread::yield();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deletion (Section 4, plus the §5.4 enqueue hook)
// ---------------------------------------------------------------------------

Status SagivTree::Delete(Key key) {
  if (key < 1 || key > kMaxUserKey) {
    return Status::InvalidArgument("key out of range");
  }
  stats_->Add(StatId::kDeletes);
  EpochManager::Guard guard(epoch_.get());
  PageManager::MutatorScope mutator_scope(pager_.get());

  CompressionQueue* queue = queue_.load(std::memory_order_acquire);
  const bool want_stack =
      options_.enqueue_underfull_on_delete && queue != nullptr;

  std::vector<PageId> local_stack;
  TlStackLease stack_lease(&local_stack);
  std::vector<PageId>& stack = *stack_lease.stack();
  Result<PageId> found =
      internal_FindNodeAtLevel(key, 0, want_stack ? &stack : nullptr);
  if (!found.ok()) return found.status();
  return DeleteCommit(key, *found, want_stack ? &stack : nullptr, guard);
}

Status SagivTree::DeleteCommit(Key key, PageId start,
                               std::vector<PageId>* stack_in,
                               const EpochManager::Guard& guard) {
  CompressionQueue* queue = queue_.load(std::memory_order_acquire);
  const bool want_stack = options_.enqueue_underfull_on_delete &&
                          queue != nullptr && stack_in != nullptr;
  std::vector<PageId> unused_stack;
  std::vector<PageId>& stack = want_stack ? *stack_in : unused_stack;

  Page page;
  Node* node = page.As<Node>();
  int restarts = 0;
  // `view` is the locked leaf's image: the live page (in-place mode) or
  // the private copy in `page`; after the removal it reflects the new
  // count/high either way.
  const Node* view = nullptr;
  bool locked_inplace = false;
  PageId leaf = kInvalidPageId;
  if (options_.inplace_writes) {
    Result<PageId> target = AcquireTargetInPlace(
        key, 0, start, want_stack ? &stack : nullptr, &restarts, &view);
    if (target.ok()) {
      leaf = *target;
      locked_inplace = true;
    } else if (target.status().IsAborted()) {
      stats_->Add(StatId::kInplaceFallbacks);
    } else {
      return target.status();
    }
  }
  if (!locked_inplace) {
    Result<PageId> target = AcquireTargetNode(
        key, 0, start, want_stack ? &stack : nullptr, &restarts, &page);
    if (!target.ok()) return target.status();
    leaf = *target;
    view = node;
  }

  if (locked_inplace) {
    // One search serves both the presence check and the removal: the
    // lock pins the live image, so the index cannot shift in between.
    const uint32_t idx = view->LowerBound(key);
    if (idx >= view->count || view->entries[idx].key != key) {
      pager_->Unlock(leaf);
      return Status::NotFound();
    }
    PageManager::WriteGuard wg = pager_->BeginWrite(leaf);
    const size_t bytes = wg.page()->As<Node>()->RemoveLeafEntryAtInPlace(idx);
    wg.Release();
    stats_->Add(StatId::kInplaceWrites);
    stats_->Add(StatId::kWriteBytesInplace, bytes);
  } else {
    if (!node->RemoveLeafEntry(key)) {
      pager_->Unlock(leaf);
      return Status::NotFound();
    }
    pager_->Put(leaf, page);
    stats_->Add(StatId::kWriteBytesCopied, 2 * kPageSize);  // get + put
  }
  size_.fetch_sub(1, std::memory_order_relaxed);

  // §5.4: while still holding the lock, record the leaf for compression if
  // it fell below half full.
  if (want_stack && view->count < options_.min_entries && !view->is_root()) {
    CompressionTask task;
    task.node = leaf;
    task.level = 0;
    task.high = view->high;
    task.stamp = guard.start_time();
    // Copy, not move: the stack may be the shared thread-local buffer.
    task.stack = stack;
    queue->Push(std::move(task), /*update_if_present=*/true);
    stats_->Add(StatId::kQueueEnqueues);
  }
  pager_->Unlock(leaf);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Batched operations: the pipelined descent engine
// ---------------------------------------------------------------------------

void SagivTree::PipelineDescents(BatchCont* ops, size_t n, bool collect_stacks,
                                 bool probe_values, BatchStats* bs) const {
  assert(options_.optimistic_reads);
  // Forfeits unconsumed prepaid-I/O credits at scope exit (a faulted read
  // returns before its MaybeSimulateIo and never consumes its credit).
  PageManager::IoBatchScope io_scope;

  std::vector<uint32_t> active;   // kRunning indices, regrouped per round
  std::vector<PageId> distinct;   // the round's distinct target pages
  std::vector<Route> routes;      // per-group scratch
  std::vector<std::optional<Value>> values;
  active.reserve(n);
  distinct.reserve(n);

  for (;;) {
    active.clear();
    for (size_t i = 0; i < n; ++i) {
      if (ops[i].state == BatchCont::kRunning) {
        active.push_back(static_cast<uint32_t>(i));
      }
    }
    if (active.empty()) return;

    // (Re)seed restarted continuations; one prime read serves the round.
    // Level 0 always exists, so there is no wait-for-level case here.
    bool need_root = false;
    for (uint32_t i : active) need_root |= ops[i].need_root;
    if (need_root) {
      const PrimeBlockData pb = prime_.Read();
      for (uint32_t i : active) {
        BatchCont& op = ops[i];
        if (!op.need_root) continue;
        op.need_root = false;
        op.current = pb.root();
        op.stack.clear();
      }
    }

    // Group the round's reads by target page and issue their simulated-I/O
    // waits together: one latency covers the whole round.
    std::sort(active.begin(), active.end(), [&](uint32_t a, uint32_t b) {
      return ops[a].current < ops[b].current;
    });
    distinct.clear();
    for (uint32_t i : active) {
      if (distinct.empty() || distinct.back() != ops[i].current) {
        distinct.push_back(ops[i].current);
      }
    }
    bs->io_overlapped += pager_->PrefetchPages(distinct.data(),
                                               distinct.size());

    // One validated read per distinct page serves every op routed
    // through it; the sharers beyond the first are coalesced fetches.
    for (size_t gi = 0; gi < active.size();) {
      const PageId page_id = ops[active[gi]].current;
      size_t ge = gi;
      while (ge < active.size() && ops[active[ge]].current == page_id) ++ge;
      const uint64_t group = static_cast<uint64_t>(ge - gi);

      const PageManager::ReadGuard g = pager_->OptimisticRead(page_id);
      routes.clear();
      values.clear();
      bool valid = false;
      if (g.stable()) {
        const NodeView view(g.page()->As<Node>());
        for (size_t k = gi; k < ge; ++k) {
          const BatchCont& op = ops[active[k]];
          Route r = RouteForKey(view, op.key, /*target_level=*/0);
          // Probe the leaf slot under the same version as the routing
          // decision: the one validation below covers both.
          values.push_back(probe_values && r.kind == Route::kArrived
                               ? view.FindLeafValue(op.key)
                               : std::nullopt);
          routes.push_back(r);
        }
        valid = g.Validate();
      }
      if (!valid) {
        // Torn read: every sharer would have discarded this image had it
        // read the page itself, so each op's retry budget advances.
        stats_->Add(StatId::kOptimisticRetries, group);
        for (size_t k = gi; k < ge; ++k) {
          BatchCont& op = ops[active[k]];
          if (++op.failures > options_.optimistic_retry_limit) {
            op.state = BatchCont::kFallback;
          }
          // else: stay on the same page for the next round's re-read
        }
        gi = ge;
        continue;
      }
      stats_->Add(StatId::kOptimisticValidations, group);
      if (group > 1) {
        stats_->Add(StatId::kBatchPagesCoalesced, group - 1);
        bs->pages_coalesced += group - 1;
      }
      for (size_t k = gi; k < ge; ++k) {
        BatchCont& op = ops[active[k]];
        if (++op.steps > kMaxStepsPerAttempt) {
          op.state = BatchCont::kError;
          op.status = Status::Internal("descent did not terminate");
          continue;
        }
        const Route& route = routes[k - gi];
        switch (route.kind) {
          case Route::kArrived:
            op.state = BatchCont::kArrived;
            op.value = values[k - gi];
            break;
          case Route::kChild:
            if (collect_stacks) op.stack.push_back(op.current);
            op.current = route.next;
            break;
          case Route::kLink:
            stats_->Add(StatId::kLinkFollows);
            op.current = route.next;
            break;
          case Route::kMerge:
            stats_->Add(StatId::kMergePointerFollows);
            op.current = route.next;
            break;
          case Route::kRestartStale:
          case Route::kRestartRightmost:
          case Route::kRestartNoMergeTarget:
            CountRestart(CauseFor(route.kind));
            if (++op.restarts > options_.max_restarts) {
              op.state = BatchCont::kError;
              op.status = Status::Internal("too many restarts in batch");
            } else {
              op.need_root = true;
            }
            break;
          case Route::kTorn:
            // Inconsistent-but-validated image (defensive ChildFor
            // miss): treat like a discarded read and re-read next round.
            stats_->Add(StatId::kOptimisticRetries);
            if (++op.failures > options_.optimistic_retry_limit) {
              op.state = BatchCont::kFallback;
            }
            break;
        }
      }
      gi = ge;
    }
  }
}

void SagivTree::MultiSearch(const Key* keys, size_t n, Result<Value>* out,
                            BatchStats* batch_stats) const {
  if (batch_stats) *batch_stats = BatchStats{};
  if (n == 0) return;
  stats_->Add(StatId::kBatchOps, n);
  if (batch_stats) batch_stats->ops = n;
  if (!options_.optimistic_reads || n == 1) {
    // Single-op path (also the whole-batch mode for copy-read trees:
    // pipelining requires the in-place read protocol).
    for (size_t i = 0; i < n; ++i) out[i] = Search(keys[i]);
    return;
  }
  stats_->Add(StatId::kSearches, n);
  BatchStats bs;
  EpochManager::Guard guard(epoch_.get());

  const size_t width = options_.batch_max_inflight;
  std::vector<BatchCont> conts(std::min(n, width));
  for (size_t w0 = 0; w0 < n; w0 += width) {
    const size_t w = std::min(width, n - w0);
    for (size_t j = 0; j < w; ++j) {
      conts[j] = BatchCont{};
      conts[j].key = keys[w0 + j];
      if (conts[j].key < 1 || conts[j].key > kMaxUserKey) {
        conts[j].state = BatchCont::kError;
        conts[j].status = Status::InvalidArgument("key out of range");
      }
    }
    PipelineDescents(conts.data(), w, /*collect_stacks=*/false,
                     /*probe_values=*/true, &bs);
    for (size_t j = 0; j < w; ++j) {
      BatchCont& op = conts[j];
      switch (op.state) {
        case BatchCont::kArrived:
          out[w0 + j] = op.value.has_value() ? Result<Value>(*op.value)
                                             : Result<Value>(Status::NotFound());
          break;
        case BatchCont::kError:
          out[w0 + j] = op.status;
          break;
        case BatchCont::kFallback: {
          // Same copy-read fallback as single-op Search.
          stats_->Add(StatId::kOptimisticFallbacks);
          Page page;
          PageId leaf_page;
          Status s = DescendToLeaf(op.key, &guard, &page, &leaf_page);
          if (!s.ok()) {
            out[w0 + j] = s;
            break;
          }
          std::optional<Value> v = page.As<Node>()->FindLeafValue(op.key);
          out[w0 + j] = v.has_value() ? Result<Value>(*v)
                                      : Result<Value>(Status::NotFound());
          break;
        }
        case BatchCont::kRunning:
          assert(false);  // PipelineDescents only returns terminal states
          out[w0 + j] = Status::Internal("batch descent did not terminate");
          break;
      }
    }
  }
  if (batch_stats) *batch_stats += bs;
}

void SagivTree::MultiMutate(const Key* keys, const Value* values, size_t n,
                            Status* out, MutateKind kind,
                            BatchStats* batch_stats) {
  if (batch_stats) *batch_stats = BatchStats{};
  if (n == 0) return;
  stats_->Add(StatId::kBatchOps, n);
  if (batch_stats) batch_stats->ops = n;
  if (!options_.optimistic_reads || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      switch (kind) {
        case MutateKind::kInsert: out[i] = Insert(keys[i], values[i]); break;
        case MutateKind::kUpsert: out[i] = Upsert(keys[i], values[i]); break;
        case MutateKind::kDelete: out[i] = Delete(keys[i]); break;
      }
    }
    return;
  }
  stats_->Add(kind == MutateKind::kDelete ? StatId::kDeletes
                                          : StatId::kInserts, n);
  BatchStats bs;
  EpochManager::Guard guard(epoch_.get());

  // Inserts ascend through their movedown stack; deletes only need it to
  // feed the §5.4 under-full enqueue.
  const bool want_stack =
      kind != MutateKind::kDelete ||
      (options_.enqueue_underfull_on_delete &&
       queue_.load(std::memory_order_acquire) != nullptr);

  const size_t width = options_.batch_max_inflight;
  std::vector<BatchCont> conts(std::min(n, width));
  for (size_t w0 = 0; w0 < n; w0 += width) {
    const size_t w = std::min(width, n - w0);
    for (size_t j = 0; j < w; ++j) {
      conts[j] = BatchCont{};
      conts[j].key = keys[w0 + j];
      if (conts[j].key < 1 || conts[j].key > kMaxUserKey) {
        conts[j].state = BatchCont::kError;
        conts[j].status = Status::InvalidArgument("key out of range");
      }
    }
    // Phase 1: pipeline the lock-free descents of the whole window.
    PipelineDescents(conts.data(), w, /*collect_stacks=*/want_stack,
                     /*probe_values=*/false, &bs);
    // Phase 2: run each op's locked commit serially from its descent's
    // leaf — the locking protocol (one lock per process at a time) is
    // exactly the single-op one. The checkpoint gate is held per WINDOW
    // (not per batch) so a pending checkpoint waits at most one window
    // of commits, never the whole batch.
    PageManager::MutatorScope mutator_scope(pager_.get());
    Key window_max = 0;  // largest committed insert/upsert key this window
    for (size_t j = 0; j < w; ++j) {
      BatchCont& op = conts[j];
      PageId start = op.current;
      if (op.state == BatchCont::kError) {
        out[w0 + j] = op.status;
        continue;
      }
      if (op.state == BatchCont::kFallback) {
        // Copy-read fallback descent, as internal_FindNodeAtLevel does
        // after an exhausted optimistic budget.
        stats_->Add(StatId::kOptimisticFallbacks);
        op.stack.clear();
        Result<PageId> found = CopyFindNodeAtLevel(
            op.key, 0, want_stack ? &op.stack : nullptr,
            /*wait_for_level=*/true);
        if (!found.ok()) {
          out[w0 + j] = found.status();
          continue;
        }
        start = *found;
      }
      switch (kind) {
        case MutateKind::kInsert:
          out[w0 + j] = InsertCommit(op.key, values[w0 + j], start,
                                     &op.stack, /*overwrite=*/false);
          break;
        case MutateKind::kUpsert:
          out[w0 + j] = InsertCommit(op.key, values[w0 + j], start,
                                     &op.stack, /*overwrite=*/true);
          break;
        case MutateKind::kDelete:
          out[w0 + j] = DeleteCommit(op.key, start,
                                     want_stack ? &op.stack : nullptr, guard);
          break;
      }
      if (kind != MutateKind::kDelete && out[w0 + j].ok() &&
          op.key > window_max) {
        window_max = op.key;
      }
    }
    // Batched inserts must feed the append fast path's watermark like the
    // single-op commits do: a batch that silently raised the tree max
    // would leave max_key_hint_ stale-low, so later single inserts
    // between the stale watermark and the true max would wrongly arm the
    // fast path and cache a non-rightmost leaf in rightmost_hint_
    // (harmless, but every attempt wastes a locked miss until the hints
    // recover).
    if (options_.append_leaves && window_max != 0) NoteMaxKey(window_max);
  }
  if (batch_stats) *batch_stats += bs;
}

void SagivTree::MultiInsert(const Key* keys, const Value* values, size_t n,
                            Status* out, BatchStats* batch_stats) {
  MultiMutate(keys, values, n, out, MutateKind::kInsert, batch_stats);
}

void SagivTree::MultiUpsert(const Key* keys, const Value* values, size_t n,
                            Status* out, BatchStats* batch_stats) {
  MultiMutate(keys, values, n, out, MutateKind::kUpsert, batch_stats);
}

void SagivTree::MultiDelete(const Key* keys, size_t n, Status* out,
                            BatchStats* batch_stats) {
  MultiMutate(keys, /*values=*/nullptr, n, out, MutateKind::kDelete,
              batch_stats);
}

}  // namespace obtree
