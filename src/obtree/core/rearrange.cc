// Copyright 2026 The obtree Authors.

#include "obtree/core/rearrange.h"

#include <cassert>

#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/stats.h"

namespace obtree {

namespace {

// Requeue an under-full survivor while its lock is held (§5.4: "the
// current lock on A must be kept by the process until it puts A on the
// queue"). `stack` is the root-to-parent path for the node.
void EnqueueUnderfull(CompressionQueue* queue, StatsCollector* stats,
                      PageId page, const Node& node,
                      std::vector<PageId> stack, Timestamp stamp) {
  CompressionTask task;
  task.node = page;
  task.level = node.level;
  task.high = node.high;
  task.stamp = stamp;
  task.stack = std::move(stack);
  queue->Push(std::move(task), /*update_if_present=*/true);
  stats->Add(StatId::kQueueEnqueues);
}

}  // namespace

RearrangeResult RearrangePair(SagivTree* tree, Page* f, PageId f_page,
                              uint32_t idx, Page* left, PageId left_page,
                              Page* right, PageId right_page,
                              const RearrangeContext& ctx) {
  PageManager* pager = tree->internal_pager();
  StatsCollector* stats = tree->stats();
  const uint32_t k = tree->options().min_entries;
  Node* fn = f->As<Node>();
  Node* ln = left->As<Node>();
  Node* rn = right->As<Node>();

  assert(idx + 1 < fn->count);
  assert(static_cast<PageId>(fn->entries[idx].value) == left_page);
  assert(static_cast<PageId>(fn->entries[idx + 1].value) == right_page);
  assert(ln->link == right_page);

  RearrangeResult result;
  if (ln->count >= k && rn->count >= k) {
    // Footnote 15: nothing to do after all; unlock without rewriting.
    pager->Unlock(left_page);
    pager->Unlock(right_page);
    pager->Unlock(f_page);
    return result;
  }

  const Key old_sep = fn->entries[idx].key;

  if (ln->count + rn->count <= tree->options().capacity()) {
    // Merge: all pairs of right are shifted into left; the high value and
    // link of right replace those of left; right's deletion bit goes on
    // with a pointer back to left (the reader-recovery device of §5.2).
    ln->MergeFromRight(*rn);
    rn->set_deleted(left_page);
    bool ok = fn->ApplyChildMerge(old_sep, left_page, right_page);
    assert(ok);
    (void)ok;
    result.merged = true;
    stats->Add(StatId::kMerges);

    // left gains data: rewrite left, then F, then right; unlock each node
    // right after its rewrite.
    pager->Put(left_page, *left);
    if (ctx.queue != nullptr && ln->count < k && !ln->is_root()) {
      EnqueueUnderfull(ctx.queue, stats, left_page, *ln,
                       ctx.stack ? *ctx.stack : std::vector<PageId>(),
                       ctx.stamp);
    }
    pager->Unlock(left_page);

    pager->Put(f_page, *f);
    if (fn->is_root() && fn->count == 1) {
      result.root_may_collapse = true;
    } else if (ctx.queue != nullptr && fn->count < k && !fn->is_root()) {
      std::vector<PageId> f_stack;
      if (ctx.stack != nullptr && !ctx.stack->empty()) {
        f_stack.assign(ctx.stack->begin(), ctx.stack->end() - 1);
      }
      EnqueueUnderfull(ctx.queue, stats, f_page, *fn, std::move(f_stack),
                       ctx.stamp);
    }
    pager->Unlock(f_page);

    pager->Put(right_page, *right);
    pager->Unlock(right_page);
    pager->Retire(right_page);
    if (ctx.queue != nullptr) ctx.queue->Remove(right_page);
    return result;
  }

  // Redistribute: move entries so both children end with >= k; the high
  // value of left (== low value of right) changes and must be updated in
  // left, right, and F.
  const bool left_gains = ln->count < rn->count;
  const Key new_sep = ln->RedistributeWithRight(rn, k);
  bool ok = fn->ApplyChildSeparatorChange(old_sep, new_sep, left_page);
  assert(ok);
  (void)ok;
  result.redistributed = true;
  stats->Add(StatId::kRedistributions);

  // The child that obtains new data is rewritten first, then the parent,
  // and finally the other child (§5.2; this confines the reader-visible
  // anomaly to case (2), data moving right-to-left).
  if (!ctx.paper_write_order) {
    // E10 ablation: parent first, then losing child, then gaining child —
    // keys in transit are temporarily in NEITHER child's readable image.
    pager->Put(f_page, *f);
    pager->Unlock(f_page);
    if (left_gains) {
      pager->Put(right_page, *right);
      pager->Unlock(right_page);
      pager->Put(left_page, *left);
      pager->Unlock(left_page);
    } else {
      pager->Put(left_page, *left);
      pager->Unlock(left_page);
      pager->Put(right_page, *right);
      pager->Unlock(right_page);
    }
    return result;
  }
  if (left_gains) {
    pager->Put(left_page, *left);
    pager->Unlock(left_page);
    pager->Put(f_page, *f);
    pager->Unlock(f_page);
    pager->Put(right_page, *right);
    pager->Unlock(right_page);
  } else {
    pager->Put(right_page, *right);
    pager->Unlock(right_page);
    pager->Put(f_page, *f);
    pager->Unlock(f_page);
    pager->Put(left_page, *left);
    pager->Unlock(left_page);
  }
  return result;
}

size_t TryCollapseRoot(SagivTree* tree) {
  PageManager* pager = tree->internal_pager();
  PrimeBlock* prime = tree->internal_prime();
  StatsCollector* stats = tree->stats();

  size_t removed_total = 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const PrimeBlockData pb = prime->Read();
    if (pb.num_levels <= 1) return removed_total;
    const PageId root_page = pb.root();

    pager->Lock(root_page);
    Page root_buf;
    pager->Get(root_page, &root_buf);
    Node* root = root_buf.As<Node>();
    if (root->is_deleted() || !root->is_root()) {
      // The root moved under us (another collapse or a root creation
      // in-flight); re-read the prime block.
      pager->Unlock(root_page);
      continue;
    }
    if (root->is_leaf() || root->count != 1) {
      pager->Unlock(root_page);
      return removed_total;
    }

    // Walk the single-child chain. Every chain node is locked (parent
    // before child, so no deadlock with the compressors, which also lock
    // parent-first). A chain node's sole child qualifies only when it is
    // the sole node of its level (link == nil): a non-nil link means a
    // split below is still waiting to post its separator into this level,
    // so collapsing would orphan it.
    std::vector<PageId> chain{root_page};       // nodes to delete, top first
    std::vector<Page> images;
    images.emplace_back(root_buf);
    PageId child_page = static_cast<PageId>(root->entries[0].value);
    Page child_buf;
    Node* child = child_buf.As<Node>();
    bool abort = false;
    for (;;) {
      pager->Lock(child_page);
      pager->Get(child_page, &child_buf);
      if (child->is_deleted() || child->link != kInvalidPageId) {
        pager->Unlock(child_page);
        abort = true;
        break;
      }
      if (!child->is_leaf() && child->count == 1) {
        chain.push_back(child_page);
        images.emplace_back(child_buf);
        child_page = static_cast<PageId>(child->entries[0].value);
        continue;
      }
      break;  // child is the new root D
    }
    if (abort) {
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        pager->Unlock(*it);
      }
      return removed_total;
    }

    // §5.4 root-collapse order:
    // (1) rewrite the new root D with its root bit on;
    child->set_root(true);
    pager->Put(child_page, child_buf);
    // (2) rewrite the prime block (we hold the lock on the current root),
    //     then release the new root;
    PrimeBlockData updated = prime->Read();
    updated.num_levels = child->level + 1;
    prime->Write(updated);
    pager->Unlock(child_page);
    // (3)/(4) mark every abandoned chain node deleted, pointing at D, and
    //     release it (bottom-most first, the old root last).
    for (size_t i = chain.size(); i-- > 0;) {
      Node* dead = images[i].As<Node>();
      dead->set_root(false);
      dead->set_deleted(child_page);
      pager->Put(chain[i], images[i]);
      pager->Unlock(chain[i]);
      pager->Retire(chain[i]);
    }
    stats->Add(StatId::kRootCollapses, chain.size());
    removed_total += chain.size();
    // Loop: the new root may itself be collapsible (e.g. count dropped
    // to 1 through merges at the level below).
  }
  return removed_total;
}

}  // namespace obtree
