// Copyright 2026 The obtree Authors.
//
// SagivTree: the paper's primary contribution. A B-link tree supporting
// fully concurrent searches, insertions, and deletions where
//
//   * readers acquire NO locks and may read nodes locked by updaters; by
//     default they also copy no pages: the unlocked descents read node
//     headers and the one binary-search slot they need in place through
//     PageManager::OptimisticRead, validating the seqlock version before
//     trusting anything, and fall back to full-page copy-reads after
//     options().optimistic_retry_limit failed validations;
//   * an insertion holds AT MOST ONE lock at any instant (Section 3) —
//     updaters may overtake one another on the way up the tree; by
//     default the no-split/no-merge mutations also copy no pages: the
//     lock-holding writer edits the live page in place, bracketed by
//     seqlock odd/even bumps (options().inplace_writes,
//     PageManager::BeginWrite), falling back to the get/put copy cycle
//     for splits, root changes, and any op whose locked inspection
//     cannot validate against a racing page reuse;
//   * deletions remove the record from its leaf under one lock (Section 4)
//     and optionally enqueue under-full leaves for the queue-driven
//     compressor of Section 5.4;
//   * a process routed to a wrong node (possible once compressors run)
//     restarts instead of lock-coupling (Section 5.2): deleted nodes carry
//     a merge pointer, and every node stores its low value so "wrong node"
//     is detectable.
//
// Compression itself lives in ScanCompressor (Section 5.1-5.2) and
// QueueCompressor (Section 5.4); they operate on this class through the
// internal_* accessors.

#ifndef OBTREE_CORE_SAGIV_TREE_H_
#define OBTREE_CORE_SAGIV_TREE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "obtree/core/options.h"
#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/common.h"
#include "obtree/util/epoch.h"
#include "obtree/util/stats.h"
#include "obtree/util/status.h"

namespace obtree {

class CompressionQueue;
class FileStore;

/// Concurrent B-link tree with overtaking (Sagiv, 1986).
class SagivTree {
 public:
  /// Creates an empty tree (a single root leaf). Options are validated;
  /// invalid options fall back to defaults with the failure retrievable
  /// via init_status().
  explicit SagivTree(const TreeOptions& options = TreeOptions());
  ~SagivTree();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(SagivTree);

  /// Status of construction (InvalidArgument if options were bad).
  const Status& init_status() const { return init_status_; }

  /// Insert (key, value). Keys must lie in [1, kMaxUserKey].
  /// Returns AlreadyExists if the key is present (tree unchanged).
  Status Insert(Key key, Value value);

  /// Insert-or-replace in ONE descent: the same single-lock insertion
  /// protocol as Insert, except that finding the key already present in
  /// the locked leaf overwrites its value (one word store in place, or
  /// the copy path's put) instead of returning AlreadyExists. Atomic:
  /// there is no window where the key is absent, and concurrent readers
  /// see either the old or the new value, never neither.
  Status Upsert(Key key, Value value);

  /// Look up a key. Returns the value or NotFound. Lock-free; with
  /// options().optimistic_reads (the default) also copy-free: the descent
  /// validates page versions instead of copying 4 KB per node visited.
  Result<Value> Search(Key key) const;

  /// Delete a key. Returns NotFound if absent. No restructuring happens
  /// here (Section 4); compression is a separate concurrent process.
  Status Delete(Key key);

  // --- batched operations ---------------------------------------------------
  //
  // The pipelined descent engine: one thread keeps up to
  // options().batch_max_inflight descents in flight as resumable
  // continuations, each round grouping them by current page, issuing the
  // group's simulated-I/O waits together (PageManager::PrefetchPages) and
  // sharing one validated read per distinct page, then advancing every
  // continuation one step. Results land in out[i] for keys[i]; per-op
  // semantics (including restart budgets and the optimistic->copy
  // fallback) are identical to the single-op calls. For the write forms
  // only the lock-free descent is pipelined — each op's locked mutation
  // then runs serially from its descent's leaf, so the locking protocol
  // (one lock per process) is untouched. `batch_stats`, when non-null,
  // receives this batch's slice of the kBatch* counters. Batches of one
  // (and trees with optimistic_reads off) take the single-op path.

  /// Batched Search: out[i] is the value for keys[i] or NotFound.
  void MultiSearch(const Key* keys, size_t n, Result<Value>* out,
                   BatchStats* batch_stats = nullptr) const;

  /// Batched Insert: out[i] as Insert(keys[i], values[i]).
  void MultiInsert(const Key* keys, const Value* values, size_t n,
                   Status* out, BatchStats* batch_stats = nullptr);

  /// Batched Delete: out[i] as Delete(keys[i]).
  void MultiDelete(const Key* keys, size_t n, Status* out,
                   BatchStats* batch_stats = nullptr);

  /// Batched Upsert: out[i] as Upsert(keys[i], values[i]).
  void MultiUpsert(const Key* keys, const Value* values, size_t n,
                   Status* out, BatchStats* batch_stats = nullptr);

  /// Visit live (key, value) pairs with lo <= key <= hi in ascending key
  /// order, following leaf links. The visitor returns false to stop early.
  /// Returns the number of pairs visited. Concurrent updates may or may
  /// not be observed (each leaf is read atomically).
  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, Value)>& visitor) const;

  /// Number of keys currently stored (exact when quiescent).
  uint64_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Current tree height in levels (1 = a lone root leaf).
  uint32_t Height() const { return prime_.Read().num_levels; }

  const TreeOptions& options() const { return options_; }
  StatsCollector* stats() const { return stats_.get(); }
  EpochManager* epoch() const { return epoch_.get(); }

  // --- persistence (options().storage_dir) --------------------------------

  /// Write a crash-consistent checkpoint of the tree to its FileStore:
  /// drains in-flight mutators (readers keep running), flushes every
  /// dirty page, and atomically commits the manifest. On OK the
  /// checkpoint is durable and contains every operation that returned
  /// before this call started (and possibly some concurrent ones).
  /// FailedPrecondition when the tree has no storage_dir.
  Status Checkpoint();

  /// True when construction found and adopted a committed checkpoint in
  /// options().storage_dir.
  bool recovered_from_checkpoint() const { return recovered_; }

  /// Epoch of the newest committed checkpoint (0 = none / not persistent).
  uint64_t checkpoint_epoch() const;

  /// The persistent backend, or nullptr for an in-memory tree.
  FileStore* file_store() const { return file_store_.get(); }

  /// Attach the compression queue that deletions feed when
  /// options().enqueue_underfull_on_delete is set. The queue must outlive
  /// all subsequent operations. Pass nullptr to detach.
  void AttachCompressionQueue(CompressionQueue* queue);
  CompressionQueue* compression_queue() const {
    return queue_.load(std::memory_order_acquire);
  }

  // --- internal surface (compressors, checker, tests) ---------------------

  PageManager* internal_pager() const { return pager_.get(); }
  PrimeBlock* internal_prime() { return &prime_; }
  const PrimeBlock* internal_prime() const { return &prime_; }

  /// Descend from the root to the node at `level` where `key` belongs
  /// (low < key <= high among live nodes), following child pointers, links
  /// and merge pointers. If stack_out != nullptr, it receives the pages
  /// through which the descent came down at each level above `level`
  /// (deepest last), as produced by the paper's movedown-and-stack.
  /// Does not lock. Returns the page id, or Internal after too many
  /// restarts. Uses the optimistic in-place read path when
  /// options().optimistic_reads is set (with automatic fallback to
  /// copy-reads); callers that need the node contents re-read them under
  /// their own lock/copy discipline afterwards.
  ///
  /// If the tree currently has fewer than level+1 levels: with
  /// wait_for_level (the insertion ascent semantics of Section 3.3) the
  /// call waits for the level to appear; without it the call returns
  /// NotFound (the §5.4 "whole level deleted" probe used by compressors).
  Result<PageId> internal_FindNodeAtLevel(Key key, uint32_t level,
                                          std::vector<PageId>* stack_out,
                                          bool wait_for_level = true) const;

  /// Lock the live node at `level` whose key range contains `key`,
  /// starting the moveright from `start` (restarting from the root when
  /// routed wrong). On success the node is paper-locked and its image is
  /// in *page. Used by the insertion/deletion paths and by the queue
  /// compressor's parent search (Section 5.4).
  Result<PageId> internal_AcquireTargetNode(Key key, uint32_t level,
                                            PageId start,
                                            std::vector<PageId>* stack,
                                            int* restarts, Page* page,
                                            bool wait_for_level = true) const {
    return AcquireTargetNode(key, level, start, stack, restarts, page,
                             wait_for_level);
  }

  /// Adjust the logical size counter (used by compressors never; by tests
  /// rebuilding state). Positive or negative delta.
  void internal_AdjustSize(int64_t delta) {
    size_.fetch_add(static_cast<uint64_t>(delta), std::memory_order_relaxed);
  }

  /// Record a bulk load's outcome for the append fast-path hints:
  /// `max_key` is the largest loaded key and `rightmost_leaf` the page
  /// holding it. Keeps max_key_hint_ from going stale-low (which would
  /// arm the fast path for keys below the loaded max and poison
  /// rightmost_hint_ with non-rightmost leaves) and points the first
  /// max-extending insert straight at the loaded frontier.
  void internal_NoteBulkLoad(Key max_key, PageId rightmost_leaf) {
    NoteMaxKey(max_key);
    rightmost_hint_.store(rightmost_leaf, std::memory_order_release);
  }

  // Why a descent gave up on its current node and restarted from the
  // root; drives the per-cause restart counters. An implementation
  // detail, public only so sagiv_tree.cc's file-local route-dispatch
  // helpers can name it.
  enum class RestartCause {
    kNone,
    kStaleNode,           // wrong level, or key <= low: a reused page or
                          // data moved left by compression (§5.2 case (2))
    kRightmostStale,      // nil link yet key > high: stale rightmost node
    kMissingMergeTarget,  // deleted node whose merge pointer is not posted
  };

 private:
  void CountRestart(RestartCause cause) const;

  // --- pipelined batch descent engine ---------------------------------------

  // Resumable continuation of one in-flight batch descent: the explicit
  // per-op state the single-op descent loops keep in locals (current
  // page, movedown stack, retry/restart/step budgets), plus the op's
  // final outcome. The engine advances a window of these in lockstep
  // rounds; see PipelineDescents.
  struct BatchCont {
    Key key = 0;
    PageId current = kInvalidPageId;
    std::vector<PageId> stack;    // movedown stack (collect_stacks mode)
    std::optional<Value> value;   // leaf probe result (probe_values mode)
    Status status;                // outcome when state == kError
    int failures = 0;             // discarded optimistic reads so far
    int restarts = 0;             // restarts from the root so far
    int steps = 0;                // pointer-chasing bound (kMaxSteps...)
    bool need_root = true;        // (re)seed from the prime block
    enum State {
      kRunning,   // still descending
      kArrived,   // at the live level-0 target (current = leaf)
      kFallback,  // optimistic budget exhausted: caller runs the serial
                  // copy-path fallback for this op
      kError,     // terminal failure in `status`
    } state = kRunning;
  };

  // Advance every kRunning continuation in ops[0..n) to a terminal state
  // (level-0 arrival, fallback, or error). Each round: group the active
  // continuations by current page, issue the group's simulated-I/O waits
  // together (PageManager::PrefetchPages), perform ONE validated
  // OptimisticRead per distinct page shared by every op routed through
  // it (the sharers beyond the first count kBatchPagesCoalesced), then
  // advance each continuation by one routing step. Requires
  // options().optimistic_reads; the caller holds the epoch guard. `bs`
  // accumulates the batch-level counters.
  void PipelineDescents(BatchCont* ops, size_t n, bool collect_stacks,
                        bool probe_values, BatchStats* bs) const;

  // Shared implementation of MultiInsert/MultiUpsert/MultiDelete:
  // pipelined descents, then per-op serial locked commits.
  enum class MutateKind { kInsert, kUpsert, kDelete };
  void MultiMutate(const Key* keys, const Value* values, size_t n,
                   Status* out, MutateKind kind, BatchStats* batch_stats);

  // --- append-optimized rightmost fast path (options().append_leaves) ----
  //
  // The hint pair below is pure optimization state: correctness never
  // depends on it. rightmost_hint_ names a page that WAS the rightmost
  // leaf at some point — and, crucially, was REACHABLE when stored: the
  // split paths publish it only after the left sibling's rewrite makes
  // the new node link-reachable (see InsertIntoUnsafe). max_key_hint_ is
  // a key that WAS >= every stored key at some point (monotone under
  // inserts, possibly stale-high after deletes — which only disarms the
  // fast path, never misroutes it; every insert-commit path, including
  // MultiMutate and BulkLoad, raises it). TryAppendFast re-establishes
  // the truth under the paper lock before touching anything — and, for
  // the one hazard the lock cannot see (a half-published frontier split
  // whose fresh right node looks live before it is link-reachable),
  // cross-checks frontier_seq_, the split-publication epoch below.

  // Attempt the rightmost-append fast path for (key, value): lock the
  // hinted page, validate under the lock that it is still the live
  // rightmost leaf (not deleted, level 0, nil link, high = +inf, not
  // full) and that `key` extends its max, then append — in place under a
  // seqlock write bracket when options().inplace_writes, via the get/put
  // copy cycle otherwise. On success sets *done and returns the insert's
  // status (kAppendFastHits). Any validation failure unlocks, counts
  // kAppendFastMisses, leaves *done false, and the caller runs the normal
  // descent. The caller holds the epoch guard and has counted kInserts.
  Status TryAppendFast(Key key, Value value, bool* done);

  // Raise max_key_hint_ to at least `key` (relaxed CAS-max).
  void NoteMaxKey(Key key);

  // The locked second half of Insert/Upsert (the Fig. 5 "repeat until
  // completed" loop), starting from a descent's level-0 result `start`
  // with its movedown stack. With `overwrite`, a key found present in
  // the locked leaf has its value replaced in the same critical section
  // (the Upsert semantics) instead of returning AlreadyExists. The
  // caller holds an epoch guard and has counted the logical op.
  Status InsertCommit(Key key, Value value, PageId start,
                      std::vector<PageId>* stack, bool overwrite);

  // The locked second half of Delete, starting from a descent's level-0
  // result `start`. `stack` (nullable) enables the §5.4 under-full
  // enqueue; `guard` supplies the compression task's timestamp. The
  // caller holds `guard` and has counted the logical op.
  Status DeleteCommit(Key key, PageId start, std::vector<PageId>* stack,
                      const EpochManager::Guard& guard);

  // Fault-tolerant page fetch for the lock-free descents: retries an
  // Unavailable Get up to options().fetch_retry_limit times with
  // exponential backoff (kFetchRetries per retry, kFetchGiveups on
  // exhaustion) before surfacing the error to the operation.
  Status FetchPage(PageId id, Page* out) const;

  // Copy-read search descent (the fallback path, and the only path when
  // options().optimistic_reads is false): movedown + moveright without
  // locking. Fills *page with the image of the leaf whose range contains
  // `key` and *leaf_page with its id. Restarts (refreshing *guard) when
  // routed to a wrong node. Counts restarts against options().max_restarts.
  Status DescendToLeaf(Key key, EpochManager::Guard* guard, Page* page,
                       PageId* leaf_page) const;

  // Copy-read half of internal_FindNodeAtLevel (one 4 KB Get per node
  // visited).
  Result<PageId> CopyFindNodeAtLevel(Key key, uint32_t level,
                                     std::vector<PageId>* stack_out,
                                     bool wait_for_level) const;

  // Optimistic half of internal_FindNodeAtLevel: reads each node in place
  // and validates the page version before acting on anything it saw.
  // *failures accumulates discarded reads across the logical operation;
  // returns Aborted once it exceeds options().optimistic_retry_limit (the
  // caller then falls back to the copy path).
  Result<PageId> OptimisticFindNodeAtLevel(Key key, uint32_t level,
                                           std::vector<PageId>* stack_out,
                                           bool wait_for_level,
                                           int* failures) const;

  // Optimistic point lookup: in-place descent to the leaf, in-place value
  // probe, single validation covering the probe. Aborted = fall back.
  Result<Value> OptimisticSearch(Key key, EpochManager::Guard* guard) const;

  // Optimistic range scan from *next_key: harvests each leaf's relevant
  // entries into a (thread-local) buffer, validates, then delivers. On
  // Aborted, *next_key is the resume position for the copy fallback and
  // *visited the pairs already delivered.
  Status OptimisticScan(Key* next_key, Key hi,
                        const std::function<bool(Key, Value)>& visitor,
                        EpochManager::Guard* guard, size_t* visited) const;

  // Copy-read scan loop starting at next_key with `visited` pairs already
  // delivered; returns the final total.
  size_t CopyScan(Key next_key, Key hi,
                  const std::function<bool(Key, Value)>& visitor,
                  EpochManager::Guard* guard, size_t visited) const;

  // Lock the live node at `level` in whose range `ins_key` falls, starting
  // the moveright from `start`. On return the node is paper-locked and its
  // image is in *page. `stack` (may be null) is refreshed when a restart
  // from the root is needed. Returns the node's page id.
  Result<PageId> AcquireTargetNode(Key ins_key, uint32_t level, PageId start,
                                   std::vector<PageId>* stack, int* restarts,
                                   Page* page, bool wait_for_level = true)
      const;

  // In-place counterpart of AcquireTargetNode (the inplace_writes fast
  // path): locks the live node WITHOUT copying its page, using a
  // contention-aware acquisition — a bounded TryLockSpin first; if the
  // lock stays contended through the spin budget, the routing decision is
  // re-checked optimistically from the live image (the holder may be
  // splitting this very node) and only a node that still looks like the
  // target is waited for with a parking Lock. The locked
  // inspection reads through NodeView + PeekLocked validation, because a
  // stale page can be reused (zeroed and rewritten) underneath even a
  // lock holder; once an image validates as the live target, the lock
  // alone pins it, so on success *live points at the live image and
  // plain (non-atomic) reads of it are safe until Unlock. Returns
  // Aborted — with the lock released — when repeated validation failures
  // exhaust options().optimistic_retry_limit; the caller then falls back
  // to the copy path for this operation (StatId::kInplaceFallbacks).
  Result<PageId> AcquireTargetInPlace(Key key, uint32_t level, PageId start,
                                      std::vector<PageId>* stack,
                                      int* restarts, const Node** live) const;

  // The three insertion finishers of Fig. 6. `page` is the locked image of
  // `page_id`. Either completes the logical insert or prepares (sep,
  // new_child) for the next level. All unlock `page_id` before returning.
  struct AscentState {
    bool completed = false;
    Key sep = 0;            // separator to post one level up
    PageId new_child = kInvalidPageId;
  };
  void InsertIntoSafe(Page* page, PageId page_id, Key key, uint64_t down_ptr,
                      AscentState* st);
  Status InsertIntoUnsafe(Page* page, PageId page_id, Key key,
                          uint64_t down_ptr, AscentState* st);
  Status InsertIntoUnsafeRoot(Page* page, PageId page_id, Key key,
                              uint64_t down_ptr, AscentState* st);

  // In-place finisher for the no-split case (requires a lock obtained via
  // AcquireTargetInPlace): seqlock odd, apply the entry edit to the live
  // page through relaxed atomic stores, seqlock even, unlock. One node
  // access (PageManager::BeginWrite) instead of the copy path's
  // get + put.
  void InsertIntoSafeInPlace(PageId page_id, Key key, uint64_t down_ptr,
                             AscentState* st);

  // Apply the pair insertion to a node image: a leaf insert at level 0, a
  // child-split post above.
  static void ApplyInsert(Node* node, Key key, uint64_t down_ptr);

  // Tail-biased split point (0 = midpoint) for a post-ApplyInsert node;
  // see the definition for the bias rule.
  uint32_t TailSplitKeep(const Node* node, Key key) const;

  // Recovery helper: rebuild size_ (and sanity-check reachability) by
  // walking the level-0 link chain of a freshly recovered tree. Runs
  // before any concurrency exists; fault evaluation is suppressed.
  void RecoverSizeFromLeaves();

  TreeOptions options_;
  Status init_status_;

  std::unique_ptr<StatsCollector> stats_;
  std::unique_ptr<EpochManager> epoch_;
  std::unique_ptr<FileStore> file_store_;  // before pager_: outlives it
  std::unique_ptr<PageManager> pager_;
  bool recovered_ = false;
  PrimeBlock prime_;

  std::atomic<CompressionQueue*> queue_;
  std::atomic<uint64_t> size_;

  // Append fast-path hints (see TryAppendFast). rightmost_hint_ is
  // refreshed by descents and rightmost-leaf splits; max_key_hint_ only
  // ever rises (a deleted max leaves it stale-high, which merely keeps
  // the fast path off until a larger key arrives).
  std::atomic<PageId> rightmost_hint_;
  std::atomic<Key> max_key_hint_;
  // Frontier-split publication epoch (seqlock parity protocol, but over
  // the TREE's rightmost frontier rather than a page). A split of the
  // rightmost leaf bumps this odd before the new right node B's
  // initializing put and even again after the left node's link-publishing
  // put (InsertIntoUnsafe / InsertIntoUnsafeRoot). TryAppendFast misses
  // whenever the epoch is odd or moved across its locked validation:
  // B's image is live-looking (leaf, nil link, +inf high) from its first
  // put, yet unreachable until the link lands — and page reuse can hand a
  // stale rightmost_hint_ exactly that page id, so the paper lock alone
  // cannot rule the window out. The epoch can, without a second lock:
  // any validation that observes B's image inside the window also
  // observes an odd-or-advanced epoch (B's put carries the odd bump via
  // its release/acquire page write). Insertions therefore still hold at
  // most one lock, the paper's Section 3 claim.
  std::atomic<uint64_t> frontier_seq_;
};

}  // namespace obtree

#endif  // OBTREE_CORE_SAGIV_TREE_H_
