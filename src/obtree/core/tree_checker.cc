// Copyright 2026 The obtree Authors.

#include "obtree/core/tree_checker.h"

#include <cstdio>

#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/fault_injector.h"

namespace obtree {

namespace {

std::string Msg(const char* fmt, PageId page, const Node& node) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s (page %u %s)", fmt, page,
                node.DebugString().c_str());
  return buf;
}

// Facts about one node needed for cross-level validation.
struct NodeFacts {
  PageId page;
  Key high;
};

}  // namespace

std::string TreeShape::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "height=%u keys=%llu nodes=%llu underfull=%llu "
                "avg_leaf_fill=%.2f",
                height, static_cast<unsigned long long>(num_keys),
                static_cast<unsigned long long>(num_nodes),
                static_cast<unsigned long long>(underfull_nodes),
                avg_leaf_fill);
  std::string out = buf;
  out += " per_level=[";
  for (size_t i = 0; i < nodes_per_level.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(nodes_per_level[i]);
  }
  out += "]";
  if (leaf_fill_pct.count() > 0) {
    out += " leaf_fill_pct{" + leaf_fill_pct.ToString() + "}";
  }
  return out;
}

Status TreeChecker::CheckStructure(bool require_half_full) const {
  // The audit must see ground truth even while fault schedules are armed.
  FaultInjector::ScopedExemption exempt;
  PageManager* pager = tree_->internal_pager();
  const PrimeBlockData pb = tree_->internal_prime()->Read();
  if (pb.num_levels == 0 || pb.num_levels > kMaxLevels) {
    return Status::Internal("prime block level count out of range");
  }
  const uint32_t k = tree_->options().min_entries;

  Page page;
  const Node* node = page.As<Node>();
  std::vector<NodeFacts> child_level;  // facts about the level below
  uint64_t leaf_keys = 0;
  uint64_t root_bits = 0;

  for (uint32_t level = 0; level < pb.num_levels; ++level) {
    std::vector<NodeFacts> this_level;
    std::vector<std::vector<Entry>> internal_entries;
    PageId current = pb.leftmost[level];
    Key prev_high = kMinusInfinity;
    bool first = true;
    for (;;) {
      if (current == kInvalidPageId) {
        return Status::Internal("nil page inside a level chain");
      }
      pager->Get(current, &page);
      if (node->is_deleted()) {
        return Status::Internal(Msg("deleted node reachable", current, *node));
      }
      if (node->level != level) {
        return Status::Internal(Msg("level mismatch", current, *node));
      }
      if (node->is_root()) root_bits++;
      if (first && node->low != kMinusInfinity) {
        return Status::Internal(
            Msg("leftmost node low is not -inf", current, *node));
      }
      if (!first && node->low != prev_high) {
        return Status::Internal(
            Msg("low does not chain from left neighbor's high", current,
                *node));
      }
      if (node->low >= node->high) {
        return Status::Internal(Msg("low >= high", current, *node));
      }
      const bool is_sole_root_leaf = pb.num_levels == 1;
      if (node->count == 0 && level > 0) {
        return Status::Internal(Msg("empty internal node", current, *node));
      }
      Key prev_key = node->low;
      for (uint32_t i = 0; i < node->count; ++i) {
        const Key key = node->entries[i].key;
        if (key <= prev_key) {
          return Status::Internal(
              Msg("entries not strictly increasing", current, *node));
        }
        if (key > node->high) {
          return Status::Internal(Msg("entry above high", current, *node));
        }
        prev_key = key;
      }
      if (level > 0 && node->count > 0 &&
          node->entries[node->count - 1].key != node->high) {
        return Status::Internal(
            Msg("internal high != last entry key", current, *node));
      }
      if (node->count > tree_->options().capacity()) {
        return Status::Internal(Msg("node over capacity", current, *node));
      }
      if (require_half_full && !node->is_root() && !is_sole_root_leaf &&
          node->link != kInvalidPageId && node->count < k) {
        return Status::Internal(Msg("under-full node", current, *node));
      }
      if (level == 0) {
        leaf_keys += node->count;
      } else {
        internal_entries.emplace_back(node->entries,
                                      node->entries + node->count);
      }
      this_level.push_back(NodeFacts{current, node->high});
      prev_high = node->high;
      first = false;
      if (node->link == kInvalidPageId) {
        if (node->high != kPlusInfinity) {
          return Status::Internal(
              Msg("rightmost node high is not +inf", current, *node));
        }
        break;
      }
      current = node->link;
    }

    // Replay property: this level's entries, concatenated, must equal the
    // (high, page) sequence of the level below.
    if (level > 0) {
      size_t j = 0;
      for (const auto& entries : internal_entries) {
        for (const Entry& e : entries) {
          if (j >= child_level.size()) {
            return Status::Internal("more parent entries than children");
          }
          if (e.key != child_level[j].high ||
              static_cast<PageId>(e.value) != child_level[j].page) {
            char buf[160];
            std::snprintf(
                buf, sizeof(buf),
                "replay mismatch at level %u index %zu: entry (%llu,%u) vs "
                "child (%llu,%u)",
                level, j, static_cast<unsigned long long>(e.key),
                static_cast<PageId>(e.value),
                static_cast<unsigned long long>(child_level[j].high),
                child_level[j].page);
            return Status::Internal(buf);
          }
          ++j;
        }
      }
      if (j != child_level.size()) {
        return Status::Internal("fewer parent entries than children");
      }
    }
    child_level = std::move(this_level);
  }

  if (child_level.size() != 1) {
    return Status::Internal("top level has more than one node");
  }
  if (child_level[0].page != pb.root()) {
    return Status::Internal("prime block root is not the top node");
  }
  if (root_bits != 1) {
    return Status::Internal("root bit count != 1");
  }
  if (leaf_keys != tree_->Size()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "leaf keys %llu != Size() %llu",
                  static_cast<unsigned long long>(leaf_keys),
                  static_cast<unsigned long long>(tree_->Size()));
    return Status::Internal(buf);
  }
  return Status::OK();
}

TreeShape TreeChecker::ComputeShape() const {
  PageManager* pager = tree_->internal_pager();
  const PrimeBlockData pb = tree_->internal_prime()->Read();
  const uint32_t k = tree_->options().min_entries;
  const uint32_t capacity = tree_->options().capacity();

  TreeShape shape;
  shape.height = pb.num_levels;
  shape.nodes_per_level.assign(pb.num_levels, 0);

  Page page;
  const Node* node = page.As<Node>();
  uint64_t leaf_fill_total = 0;
  for (uint32_t level = 0; level < pb.num_levels; ++level) {
    PageId current = pb.leftmost[level];
    while (current != kInvalidPageId) {
      pager->Get(current, &page);
      shape.num_nodes++;
      shape.nodes_per_level[level]++;
      if (!node->is_root() && node->count < k) shape.underfull_nodes++;
      if (level == 0) {
        shape.num_keys += node->count;
        leaf_fill_total += node->count;
        shape.leaf_fill_pct.Add(node->count * 100 / capacity);
      }
      current = node->link;
    }
  }
  if (shape.nodes_per_level[0] > 0) {
    shape.avg_leaf_fill =
        static_cast<double>(leaf_fill_total) /
        (static_cast<double>(shape.nodes_per_level[0]) * capacity);
  }
  return shape;
}

}  // namespace obtree
