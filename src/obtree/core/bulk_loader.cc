// Copyright 2026 The obtree Authors.

#include "obtree/core/bulk_loader.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/fault_injector.h"

namespace obtree {

namespace {

constexpr char kMagic[4] = {'O', 'B', 'T', '1'};

struct Built {
  PageId page;
  Key high;
};

// Split `n` entries into chunks of ~`per`, each within [k, cap]. If the
// trailing remainder is shorter than k, the last two chunks are either
// merged (when their union fits one node) or split evenly (their union
// then exceeds 2k, so both halves are >= k).
std::vector<uint32_t> ChunkSizes(uint64_t n, uint32_t per, uint32_t k,
                                 uint32_t cap) {
  std::vector<uint32_t> sizes;
  uint64_t left = n;
  while (left > 0) {
    if (left <= per) {
      sizes.push_back(static_cast<uint32_t>(left));
      break;
    }
    sizes.push_back(per);
    left -= per;
  }
  if (sizes.size() >= 2 && sizes.back() < k) {
    const uint32_t total = sizes[sizes.size() - 2] + sizes.back();
    sizes.pop_back();
    if (total <= cap) {
      sizes.back() = total;
    } else {
      sizes.back() = total - total / 2;
      sizes.push_back(total / 2);
    }
  }
  return sizes;
}

// Materialize one level of nodes from its entry sequence. For leaves the
// entries are (key, value); for internal levels they are (child high,
// child page). Returns (page, high) per node, left to right.
std::vector<Built> BuildLevel(PageManager* pager, uint16_t level,
                              const std::vector<Entry>& entries,
                              uint32_t per, uint32_t k, uint32_t cap) {
  const std::vector<uint32_t> sizes =
      ChunkSizes(entries.size(), per, k, cap);
  std::vector<Built> built(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    built[i].page = *pager->Allocate();
  }
  size_t cursor = 0;
  Key low = kMinusInfinity;
  for (size_t i = 0; i < sizes.size(); ++i) {
    const bool last = i + 1 == sizes.size();
    Page page;
    page.Clear();
    Node* node = page.As<Node>();
    node->Init(level, low, /*high=*/0,
               last ? kInvalidPageId : built[i + 1].page);
    std::memcpy(node->entries, &entries[cursor],
                sizes[i] * sizeof(Entry));
    node->count = sizes[i];
    cursor += sizes[i];
    // Leaf high: last key, +inf on the rightmost. Internal high: the last
    // upper bound (which already carries +inf on the rightmost).
    node->high = (level == 0 && last) ? kPlusInfinity
                                      : node->entries[node->count - 1].key;
    pager->Put(built[i].page, page);
    built[i].high = node->high;
    low = node->high;
  }
  return built;
}

}  // namespace

Status BulkLoad(SagivTree* tree,
                const std::vector<std::pair<Key, Value>>& pairs,
                double fill) {
  // Bulk construction is control-plane work: run it on ground truth.
  FaultInjector::ScopedExemption exempt;
  if (tree->Size() != 0 || tree->Height() != 1) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (!(fill > 0.5) || fill > 1.0) {
    return Status::InvalidArgument("fill must be in (0.5, 1.0]");
  }
  Key prev = 0;
  for (const auto& [key, value] : pairs) {
    if (key < 1 || key > kMaxUserKey) {
      return Status::InvalidArgument("key out of range");
    }
    if (key <= prev) {
      return Status::InvalidArgument("pairs must be sorted and distinct");
    }
    prev = key;
  }
  if (pairs.empty()) return Status::OK();

  const uint32_t k = tree->options().min_entries;
  const uint32_t cap = tree->options().capacity();
  const uint32_t per = std::min(
      cap, std::max(k, static_cast<uint32_t>(std::llround(fill * cap))));
  PageManager* pager = tree->internal_pager();

  std::vector<Entry> entries;
  entries.reserve(pairs.size());
  for (const auto& [key, value] : pairs) {
    entries.push_back(Entry{key, value});
  }

  PrimeBlockData pb;
  uint16_t level = 0;
  std::vector<Built> built;
  PageId rightmost_leaf = kInvalidPageId;
  for (;;) {
    built = BuildLevel(pager, level, entries, per, k, cap);
    if (level == 0) rightmost_leaf = built.back().page;
    pb.leftmost[level] = built[0].page;
    if (built.size() == 1) break;
    entries.clear();
    entries.reserve(built.size());
    for (const Built& b : built) {
      entries.push_back(Entry{b.high, b.page});
    }
    ++level;
    if (level >= kMaxLevels) {
      return Status::Internal("bulk load exceeded the height limit");
    }
  }
  pb.num_levels = level + 1u;

  // Promote the top node to root and swap the prime block over; the
  // constructor's empty root leaf is retired.
  {
    Page page;
    pager->Get(built[0].page, &page);
    page.As<Node>()->set_root(true);
    pager->Put(built[0].page, page);
  }
  const PageId old_root = tree->internal_prime()->Read().root();
  {
    Page page;
    pager->Get(old_root, &page);
    Node* node = page.As<Node>();
    node->set_root(false);
    node->set_deleted(pb.leftmost[0]);
    pager->Put(old_root, page);
  }
  tree->internal_prime()->Write(pb);
  pager->Retire(old_root);
  tree->internal_AdjustSize(static_cast<int64_t>(pairs.size()));
  // Arm the append fast path for the loaded state: without this the
  // watermark would sit at -inf, flagging every post-load insert as
  // max-extending even below the loaded max.
  tree->internal_NoteBulkLoad(pairs.back().first, rightmost_leaf);
  return Status::OK();
}

Status DumpTree(const SagivTree& tree, std::ostream* out) {
  // A backup must capture ground truth, never an injected fault's view.
  FaultInjector::ScopedExemption exempt;
  out->write(kMagic, sizeof(kMagic));
  const uint32_t k = tree.options().min_entries;
  out->write(reinterpret_cast<const char*>(&k), sizeof(k));
  const uint64_t count = tree.Size();
  out->write(reinterpret_cast<const char*>(&count), sizeof(count));
  uint64_t written = 0;
  tree.Scan(1, kMaxUserKey, [&](Key key, Value value) {
    out->write(reinterpret_cast<const char*>(&key), sizeof(key));
    out->write(reinterpret_cast<const char*>(&value), sizeof(value));
    ++written;
    return out->good();
  });
  if (!out->good()) return Status::Internal("stream write failed");
  if (written != count) {
    return Status::Aborted("tree changed during dump; retry quiescent");
  }
  return Status::OK();
}

Result<std::unique_ptr<SagivTree>> LoadTree(std::istream* in, double fill) {
  char magic[4];
  in->read(magic, sizeof(magic));
  if (!in->good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad dump header");
  }
  uint32_t k = 0;
  uint64_t count = 0;
  in->read(reinterpret_cast<char*>(&k), sizeof(k));
  in->read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in->good()) return Status::InvalidArgument("truncated dump header");

  TreeOptions options;
  options.min_entries = k;
  if (!options.Validate().ok()) {
    return Status::InvalidArgument("dump carries invalid options");
  }
  std::vector<std::pair<Key, Value>> pairs;
  pairs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Key key;
    Value value;
    in->read(reinterpret_cast<char*>(&key), sizeof(key));
    in->read(reinterpret_cast<char*>(&value), sizeof(value));
    if (!in->good()) return Status::InvalidArgument("truncated dump body");
    pairs.emplace_back(key, value);
  }
  auto tree = std::make_unique<SagivTree>(options);
  Status s = BulkLoad(tree.get(), pairs, fill);
  if (!s.ok()) return s;
  return tree;
}

}  // namespace obtree
