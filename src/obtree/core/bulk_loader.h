// Copyright 2026 The obtree Authors.
//
// Bottom-up bulk construction of a SagivTree from sorted input, and a
// simple dump/restore pair built on it. Bulk loading packs leaves at a
// chosen fill fraction — the classic way to build a B-tree orders of
// magnitude faster than repeated insertion, and the natural restore path
// for backups taken with DumpTree.
//
// BulkLoad requires the destination tree to be freshly constructed
// (empty) and quiescent; the result is a valid B-link tree identical in
// content to inserting every pair.

#ifndef OBTREE_CORE_BULK_LOADER_H_
#define OBTREE_CORE_BULK_LOADER_H_

#include <iosfwd>
#include <memory>
#include <utility>
#include <vector>

#include "obtree/core/options.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/util/common.h"
#include "obtree/util/status.h"

namespace obtree {

/// Build the tree's contents from `pairs`, which must be sorted by key,
/// duplicate-free, with every key in [1, kMaxUserKey]. `fill` is the
/// target fraction of node capacity per node in (0.5, 1.0]; nodes are
/// never packed below k entries (except a lone root). The tree must be
/// empty. O(n) time, O(height) extra space.
Status BulkLoad(SagivTree* tree,
                const std::vector<std::pair<Key, Value>>& pairs,
                double fill = 0.9);

/// Serialize the tree's logical contents (options + sorted pairs) to a
/// binary stream. Quiescent only. Format:
///   magic "OBT1" | min_entries u32 | count u64 | count * (key u64, value
///   u64).
Status DumpTree(const SagivTree& tree, std::ostream* out);

/// Rebuild a tree from a DumpTree stream via BulkLoad. Returns the tree
/// or an error (corrupt stream, unsorted payload).
Result<std::unique_ptr<SagivTree>> LoadTree(std::istream* in,
                                            double fill = 0.9);

}  // namespace obtree

#endif  // OBTREE_CORE_BULK_LOADER_H_
