// Copyright 2026 The obtree Authors.
//
// ShardRebalancer: the online controller half of shard rebalancing
// (protocol and tuning playbook in docs/REBALANCING.md). Once per period
// it snapshots per-shard load through the Host interface — logical op
// counters, paper-lock contention, and BackgroundPool drain/boost rates —
// scores each shard against the fair share, and asks the host to split
// the hottest shard or merge the coldest adjacent pair. The host (in
// practice api/sharded_map.h) owns the actual key migration; this class
// owns only the policy and the low-rate controller thread, so it lives in
// the core layer with no dependency on the api layer above it.
//
// The controller takes AT MOST ONE action per period, and every action is
// followed by cooldown_periods of enforced quiet during which the load
// baseline is re-taken — the migration's own inserts and deletes
// therefore never feed the next hotness score.

#ifndef OBTREE_CORE_SHARD_REBALANCER_H_
#define OBTREE_CORE_SHARD_REBALANCER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obtree/core/options.h"
#include "obtree/util/common.h"

namespace obtree {

/// One shard's load sample, as returned by Host::SnapshotLoads(). All
/// counter fields are cumulative (the controller diffs consecutive
/// snapshots); `keys` is a point-in-time size.
struct ShardLoad {
  /// Stable identity of the backing tree. Consecutive snapshots are
  /// joined on this, so a shard keeps its history across table swaps; a
  /// sample whose id has no baseline entry (a tree the controller has
  /// never seen) makes the whole period observe-only.
  const void* id = nullptr;
  uint64_t ops = 0;          ///< logical searches + inserts + deletes
  uint64_t contention = 0;   ///< paper-lock contended acquisitions
  uint64_t pool_drains = 0;  ///< BackgroundPool tasks drained for the shard
  uint64_t pool_boosts = 0;  ///< off-turn pool picks (depth boost / steal)
  uint64_t keys = 0;         ///< keys currently stored
};

/// Periodic split/merge controller (see file comment).
class ShardRebalancer {
 public:
  /// How one host action ended. The distinction between kSkipped and
  /// kFailed drives the circuit breaker: a skip ("not possible right
  /// now" — range of width one, at max_shards) is benign and resets
  /// nothing, while a failure (a migration that started and had to be
  /// aborted/rolled back) counts toward tripping the breaker.
  enum class ActionResult { kOk, kSkipped, kFailed };

  /// What the controller needs from the sharded map it steers. Calls
  /// arrive on the controller thread (or from TickForTest), one at a
  /// time, never concurrently with each other.
  class Host {
   public:
    virtual ~Host() = default;

    /// Current per-shard loads, in routing-table order (index adjacency
    /// is key-range adjacency — the merge decision relies on it).
    virtual std::vector<ShardLoad> SnapshotLoads() = 0;

    /// Split shard `index` by migrating its upper half into a fresh
    /// tree. Synchronous: returns after the migration completes (or
    /// aborts). kSkipped if the split is not currently possible; the
    /// controller just waits for the next period.
    virtual ActionResult SplitShard(size_t index) = 0;

    /// Merge shard `left + 1` into shard `left` (the right tree drains
    /// into the left). Synchronous; kSkipped if not currently possible.
    virtual ActionResult MergeShards(size_t left) = 0;
  };

  /// Neither starts the thread (call Start) nor validates options — the
  /// owner is expected to have run RebalanceOptions::Validate().
  ShardRebalancer(Host* host, const RebalanceOptions& options);

  /// Equivalent to Stop().
  ~ShardRebalancer();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(ShardRebalancer);

  /// Spawn the controller thread (one Tick per period_ms). Idempotent.
  void Start();

  /// Stop and join the controller thread. Idempotent; returns with no
  /// Tick in flight, so the host may tear down.
  void Stop();

  /// Run exactly one controller evaluation synchronously (deterministic
  /// tests drive the policy with this instead of Start()). Safe alongside
  /// the periodic thread — ticks are serialized internally.
  void TickForTest() { Tick(); }

  // Lifetime action counters (policy introspection; the per-tree
  // StatId::kRebalanceSplits/kRebalanceMerges counters are maintained by
  // the host's migration code, not here).
  uint64_t splits() const { return splits_.load(std::memory_order_relaxed); }
  uint64_t merges() const { return merges_.load(std::memory_order_relaxed); }
  uint64_t periods() const {
    return periods_.load(std::memory_order_relaxed);
  }

  // Degradation introspection (see the breaker state machine in
  // docs/ARCHITECTURE.md). failed_actions counts host actions that
  // returned kFailed; breaker_trips counts closed->open transitions.
  uint64_t failed_actions() const {
    return failed_actions_.load(std::memory_order_relaxed);
  }
  uint64_t breaker_trips() const {
    return breaker_trips_.load(std::memory_order_relaxed);
  }
  /// True while the breaker refuses actions (observe-only ticks).
  bool breaker_open() const {
    return breaker_open_flag_.load(std::memory_order_relaxed);
  }

 private:
  void RunLoop();
  void Tick();
  /// Apply one action result to the breaker state. Returns result so the
  /// call nests around the host call. Caller holds tick_mu_.
  ActionResult NoteAction(ActionResult result);

  Host* const host_;
  const RebalanceOptions options_;

  std::mutex tick_mu_;  ///< serializes Tick (thread vs. TickForTest)
  /// Previous snapshot keyed by ShardLoad::id. Cleared after every
  /// split/merge so the next period is observe-only.
  std::unordered_map<const void*, ShardLoad> baseline_;
  uint32_t cooldown_ = 0;  ///< periods left before acting again

  // Circuit breaker (all under tick_mu_). Closed: act normally, counting
  // consecutive kFailed results. Open: act on nothing for
  // breaker_cooldown_periods ticks. Half-open: one probe action is
  // allowed; kFailed re-trips immediately, kOk closes the breaker.
  uint32_t consecutive_failures_ = 0;
  bool breaker_open_ = false;
  bool half_open_ = false;
  uint32_t breaker_reopen_in_ = 0;

  std::atomic<uint64_t> splits_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> periods_{0};
  std::atomic<uint64_t> failed_actions_{0};
  std::atomic<uint64_t> breaker_trips_{0};
  std::atomic<bool> breaker_open_flag_{false};  ///< lock-free mirror

  std::mutex mu_;  ///< guards stop_ for the cv wait
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace obtree

#endif  // OBTREE_CORE_SHARD_REBALANCER_H_
