// Copyright 2026 The obtree Authors.
//
// The compression queue of Section 5.4. A deletion that leaves a node less
// than half full records the node here (while holding the node's lock);
// QueueCompressor workers drain it. One queue may be shared by many
// compressors (deployment (2)), owned by a single compressor (deployment
// (1)), or private to a per-deletion process (deployment (3)).
//
// Queue records are keyed by the node's page id. A record stores the
// information list of §5.4: the pointer to the node, its level, its high
// value at enqueue time, and the stack of pointers from the root to the
// node (created by movedown-and-stack). The stack carries the time stamp
// of the operation that produced it; MinStamp() feeds the §5.3 reclamation
// rule so pages referenced by queued stacks are not reused.

#ifndef OBTREE_CORE_COMPRESSION_QUEUE_H_
#define OBTREE_CORE_COMPRESSION_QUEUE_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "obtree/util/common.h"
#include "obtree/util/epoch.h"
#include "obtree/util/stats.h"

namespace obtree {

/// One node awaiting compression.
struct CompressionTask {
  PageId node = kInvalidPageId;
  uint32_t level = 0;      ///< never changes for a node
  Key high = 0;            ///< the node's high value when recorded
  Timestamp stamp = 0;     ///< start time of the op that built the stack
  std::vector<PageId> stack;  ///< root-to-parent path, deepest last
};

/// Thread-safe queue of compression tasks, at most one per node.
class CompressionQueue {
 public:
  CompressionQueue() = default;
  OBTREE_DISALLOW_COPY_AND_ASSIGN(CompressionQueue);

  /// Insert the task, or — if the node is already queued — update its
  /// recorded high value (and stamp/stack) when update_if_present is true.
  /// §5.4: a process holding the node's lock has information at least as
  /// recent as the queue's and must update; a process NOT holding the lock
  /// (requeue in case (2)) must not overwrite fresher information.
  void Push(CompressionTask task, bool update_if_present);

  /// Remove and return the queued task with the highest level (footnote
  /// 17: compress parents before children). Returns false when empty.
  /// The task's stamp remains accounted in MinStamp() until FinishTask.
  bool Pop(CompressionTask* out);

  /// Declare that a popped task is no longer being worked on (its stack is
  /// dead). Must be called exactly once per successful Pop, after any
  /// requeue Push.
  void FinishTask(Timestamp stamp);

  /// Drop the record for `node` if present (e.g. the node was deleted by a
  /// merge). Returns true if something was removed.
  bool Remove(PageId node);

  bool Contains(PageId node) const;
  size_t Size() const;
  bool Empty() const { return Size() == 0; }

  /// Oldest stamp held by queued or in-flight tasks; kMaxTimestamp if none.
  Timestamp MinStamp() const;

  /// Register MinStamp with an epoch manager so queued stacks hold back
  /// page reuse (Section 5.3). Call once; the queue must outlive `epoch`'s
  /// last MinActive() call.
  void RegisterWith(EpochManager* epoch);

 private:
  mutable std::mutex mu_;
  std::map<PageId, CompressionTask> tasks_;
  std::multiset<Timestamp> in_flight_;
};

}  // namespace obtree

#endif  // OBTREE_CORE_COMPRESSION_QUEUE_H_
