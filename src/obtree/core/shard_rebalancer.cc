// Copyright 2026 The obtree Authors.

#include "obtree/core/shard_rebalancer.h"

#include <chrono>

namespace obtree {
namespace {

// Relative weights of the load components in a shard's hotness score.
// Plain op volume dominates; a contended lock acquisition costs far more
// than an uncontended op (spin + possible futex park), and an off-turn
// pool pick means the shard's deletion churn was deep enough to jump the
// round-robin order — both are stronger hotness evidence per event.
constexpr double kOpsWeight = 1.0;
constexpr double kContentionWeight = 2.0;
constexpr double kDrainWeight = 0.5;
constexpr double kBoostWeight = 4.0;

}  // namespace

ShardRebalancer::ShardRebalancer(Host* host, const RebalanceOptions& options)
    : host_(host), options_(options) {}

ShardRebalancer::~ShardRebalancer() { Stop(); }

void ShardRebalancer::Start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this]() { RunLoop(); });
}

void ShardRebalancer::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    to_join.swap(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void ShardRebalancer::RunLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(options_.period_ms),
                 [this]() { return stop_; });
    if (stop_) break;
    // Tick outside mu_ so Stop() never waits behind a live migration.
    lk.unlock();
    Tick();
    lk.lock();
  }
}

void ShardRebalancer::Tick() {
  std::lock_guard<std::mutex> tick_lk(tick_mu_);
  periods_.fetch_add(1, std::memory_order_relaxed);

  const std::vector<ShardLoad> loads = host_->SnapshotLoads();
  const size_t n = loads.size();

  // Join against the previous snapshot by tree identity and score the
  // period's delta. A shard without a baseline entry (first period, or a
  // topology change the controller did not cause) makes the whole period
  // observe-only: acting on a partial window would mistake "new" for
  // "cold".
  bool complete = !baseline_.empty();
  std::vector<double> weight(n, 0.0);
  std::vector<uint64_t> dops(n, 0);
  uint64_t total_ops = 0;
  double total_weight = 0.0;
  for (size_t i = 0; i < n && complete; ++i) {
    const auto it = baseline_.find(loads[i].id);
    if (it == baseline_.end()) {
      complete = false;
      break;
    }
    const ShardLoad& b = it->second;
    dops[i] = loads[i].ops - b.ops;
    weight[i] = kOpsWeight * static_cast<double>(dops[i]) +
                kContentionWeight *
                    static_cast<double>(loads[i].contention - b.contention) +
                kDrainWeight *
                    static_cast<double>(loads[i].pool_drains - b.pool_drains) +
                kBoostWeight *
                    static_cast<double>(loads[i].pool_boosts - b.pool_boosts);
    total_ops += dops[i];
    total_weight += weight[i];
  }

  // Re-baseline every period (including cooldown and observe-only ones):
  // whatever happened this period — migration traffic included — is
  // consumed here and never scored.
  baseline_.clear();
  for (const ShardLoad& l : loads) baseline_[l.id] = l;

  // Breaker gate. While open the controller still snapshots and
  // re-baselines (above) but refuses to act; when the open window
  // expires it re-arms half-open, where exactly one probe action is
  // allowed and a single failure re-trips.
  if (breaker_open_) {
    if (breaker_reopen_in_ > 0) {
      --breaker_reopen_in_;
      return;
    }
    breaker_open_ = false;
    half_open_ = true;
    breaker_open_flag_.store(false, std::memory_order_relaxed);
  }

  if (cooldown_ > 0) {
    --cooldown_;
    return;
  }
  if (!complete) return;
  if (total_ops < options_.min_ops_per_period) return;  // noise floor
  if (n == 0 || total_weight <= 0.0) return;

  const double fair = total_weight / static_cast<double>(n);

  // Hottest shard first: a split relieves contention immediately, whereas
  // a merge only tidies up.
  size_t hot = 0;
  for (size_t i = 1; i < n; ++i) {
    if (weight[i] > weight[hot]) hot = i;
  }
  if (weight[hot] > options_.hotness_threshold * fair &&
      n < options_.max_shards && loads[hot].keys >= options_.min_keys_to_split) {
    const ActionResult r = NoteAction(host_->SplitShard(hot));
    if (r == ActionResult::kOk) {
      splits_.fetch_add(1, std::memory_order_relaxed);
    }
    if (r != ActionResult::kSkipped) {
      // Both success and an aborted/rolled-back migration perturbed the
      // shards: enforce quiet and re-take the baseline before scoring.
      cooldown_ = options_.cooldown_periods;
      baseline_.clear();
    }
    return;
  }

  // Coldest ADJACENT pair (table order == key-range order, so index
  // neighbors are mergeable neighbors).
  if (n > options_.min_shards && n >= 2) {
    size_t best = 0;
    double best_sum = weight[0] + weight[1];
    for (size_t i = 1; i + 1 < n; ++i) {
      const double s = weight[i] + weight[i + 1];
      if (s < best_sum) {
        best = i;
        best_sum = s;
      }
    }
    if (best_sum < options_.cold_threshold * fair) {
      const ActionResult r = NoteAction(host_->MergeShards(best));
      if (r == ActionResult::kOk) {
        merges_.fetch_add(1, std::memory_order_relaxed);
      }
      if (r != ActionResult::kSkipped) {
        cooldown_ = options_.cooldown_periods;
        baseline_.clear();
      }
    }
  }
}

ShardRebalancer::ActionResult ShardRebalancer::NoteAction(
    ActionResult result) {
  switch (result) {
    case ActionResult::kOk:
      consecutive_failures_ = 0;
      half_open_ = false;
      break;
    case ActionResult::kSkipped:
      // Benign "not now": neither failure evidence nor recovery evidence.
      break;
    case ActionResult::kFailed:
      failed_actions_.fetch_add(1, std::memory_order_relaxed);
      ++consecutive_failures_;
      if (half_open_ ||
          consecutive_failures_ >= options_.max_consecutive_failures) {
        breaker_open_ = true;
        half_open_ = false;
        breaker_reopen_in_ = options_.breaker_cooldown_periods;
        consecutive_failures_ = 0;
        breaker_trips_.fetch_add(1, std::memory_order_relaxed);
        breaker_open_flag_.store(true, std::memory_order_relaxed);
      }
      break;
  }
  return result;
}

}  // namespace obtree
