// Copyright 2026 The obtree Authors.

#include "obtree/core/tree_dump.h"

#include <ostream>
#include <sstream>

#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/fault_injector.h"

namespace obtree {

namespace {

void PrintKey(std::ostream* os, Key key) {
  if (key == kPlusInfinity) {
    *os << "+inf";
  } else {
    *os << key;
  }
}

void PrintNode(std::ostream* os, PageId page, const Node& node,
               const DumpOptions& options) {
  *os << "[p" << page << " n=" << node.count << " (";
  PrintKey(os, node.low);
  *os << ",";
  PrintKey(os, node.high);
  *os << "]";
  if (node.is_root()) *os << " root";
  if (node.is_deleted()) *os << " DELETED->" << node.merge_target;
  if (options.show_entries) {
    *os << " {";
    for (uint32_t i = 0; i < node.count; ++i) {
      if (i) *os << " ";
      PrintKey(os, node.entries[i].key);
      *os << (node.is_leaf() ? "=" : ">") << node.entries[i].value;
    }
    *os << "}";
  }
  *os << "]";
}

}  // namespace

void DumpStructure(const SagivTree& tree, std::ostream* os,
                   const DumpOptions& options) {
  // Diagnostics read ground truth, never injected faults.
  FaultInjector::ScopedExemption exempt;
  PageManager* pager = tree.internal_pager();
  const PrimeBlockData pb = tree.internal_prime()->Read();
  Page page;
  const Node* node = page.As<Node>();
  for (uint32_t level = pb.num_levels; level-- > 0;) {
    *os << "L" << level;
    if (level + 1 == pb.num_levels) *os << " (root)";
    *os << ":";
    PageId current = pb.leftmost[level];
    uint32_t printed = 0;
    uint32_t elided = 0;
    // Hard bound in case of corruption: never loop forever.
    for (uint64_t guard = 0; current != kInvalidPageId && guard < (1u << 22);
         ++guard) {
      pager->Get(current, &page);
      if (printed < options.max_nodes_per_level) {
        *os << " ";
        PrintNode(os, current, *node, options);
        ++printed;
      } else {
        ++elided;
      }
      current = node->link;
    }
    if (elided > 0) *os << " (+" << elided << " more)";
    *os << "\n";
  }
}

std::string DumpStructureToString(const SagivTree& tree,
                                  const DumpOptions& options) {
  std::ostringstream os;
  DumpStructure(tree, &os, options);
  return os.str();
}

}  // namespace obtree
