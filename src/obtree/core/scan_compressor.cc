// Copyright 2026 The obtree Authors.

#include "obtree/core/scan_compressor.h"

#include <cassert>
#include <thread>

#include "obtree/node/node.h"
#include "obtree/storage/page_manager.h"
#include "obtree/storage/prime_block.h"
#include "obtree/util/fault_injector.h"
#include "obtree/util/stats.h"

namespace obtree {

ScanCompressor::Advance ScanCompressor::ProcessPair(Page* f, PageId f_page,
                                                    uint32_t idx,
                                                    size_t* work) {
  PageManager* pager = tree_->internal_pager();
  StatsCollector* stats = tree_->stats();
  const uint32_t k = tree_->options().min_entries;
  Node* fn = f->As<Node>();

  const PageId left_page = static_cast<PageId>(fn->entries[idx].value);
  pager->Lock(left_page);
  Page left_buf;
  pager->Get(left_page, &left_buf);
  Node* left = left_buf.As<Node>();

  if (left->is_deleted() || left->level + 1 != fn->level) {
    // A concurrent compressor (queue-driven) beat us to this child, or the
    // pointer is stale. Skip the entry.
    pager->Unlock(left_page);
    pager->Unlock(f_page);
    return Advance::kSkipEntry;
  }
  const PageId right_page = left->link;
  if (right_page == kInvalidPageId) {
    // Rightmost node of the level: it has no right partner (it may stay
    // under-full; the checker exempts it).
    pager->Unlock(left_page);
    pager->Unlock(f_page);
    return Advance::kLevelDone;
  }
  pager->Lock(right_page);
  Page right_buf;
  pager->Get(right_page, &right_buf);
  Node* right = right_buf.As<Node>();

  // Is `two` in F, adjacent to `one`? (Fig. 7's "if two is in F".)
  const bool adjacent =
      idx + 1 < fn->count &&
      static_cast<PageId>(fn->entries[idx + 1].value) == right_page;

  if (adjacent) {
    if (left->count < k || right->count < k) {
      RearrangeContext ctx;
      ctx.queue = tree_->compression_queue();
      ctx.paper_write_order = paper_write_order_;
      RearrangeResult res = RearrangePair(tree_, f, f_page, idx, &left_buf,
                                          left_page, &right_buf, right_page,
                                          ctx);  // unlocks all three
      if (res.merged || res.redistributed) ++(*work);
      if (res.root_may_collapse) *work += TryCollapseRoot(tree_);
      return res.merged ? Advance::kStayOnLeft : Advance::kToRight;
    }
    pager->Unlock(right_page);
    pager->Unlock(left_page);
    pager->Unlock(f_page);
    return Advance::kToRight;
  }

  // `two` is not in F next to `one`.
  const bool two_belongs_in_f = right->high <= fn->high;
  const bool needs_rearrange = left->count < k || right->count < k;
  pager->Unlock(right_page);
  pager->Unlock(left_page);
  pager->Unlock(f_page);
  if (two_belongs_in_f && needs_rearrange) {
    // §5.2 case (1): the separator for `two` has not been posted into F
    // yet (an insertion is mid-ascent). Wait and retry the same pair.
    stats->Add(StatId::kCompressWaits);
    return Advance::kRetryPair;
  }
  if (two_belongs_in_f) {
    // §5.2 case (2): no rearrangement needed; examine the next children.
    return Advance::kSkipEntry;
  }
  // §5.2 case (3): `two` belongs to F's right neighbor.
  return Advance::kNextParent;
}

size_t ScanCompressor::CompressLevel(uint32_t level) {
  PageManager* pager = tree_->internal_pager();
  const PrimeBlockData pb = tree_->internal_prime()->Read();
  if (pb.num_levels <= level + 1) return 0;  // no parent level to walk

  size_t work = 0;
  PageId current = pb.leftmost[level + 1];
  PageId one = kInvalidPageId;  // left child of the next pair to examine
  int retries = 0;
  int hard_stop = 1 << 24;  // corruption guard

  Page f_buf;
  Node* fn = f_buf.As<Node>();
  while (current != kInvalidPageId) {
    if (--hard_stop <= 0) break;
    pager->Lock(current);
    pager->Get(current, &f_buf);
    if (fn->is_deleted()) {
      const PageId target = fn->merge_target;
      pager->Unlock(current);
      if (target == kInvalidPageId) return work;  // level disappeared
      tree_->stats()->Add(StatId::kMergePointerFollows);
      current = target;
      continue;
    }
    if (fn->level != level + 1) {
      pager->Unlock(current);
      return work;  // stale pointer (page reused); give up this sweep
    }

    // Locate the pair's left child within F.
    uint32_t idx = 0;
    if (one != kInvalidPageId) {
      const int found = fn->FindChildIndex(one);
      if (found < 0) {
        // `one` migrated right when F split; chase F's link.
        const PageId link = fn->link;
        pager->Unlock(current);
        if (link == kInvalidPageId) return work;
        current = link;
        continue;
      }
      idx = static_cast<uint32_t>(found);
    }
    if (idx >= fn->count) {
      const PageId link = fn->link;
      pager->Unlock(current);
      current = link;
      one = kInvalidPageId;
      continue;
    }

    const PageId this_child = static_cast<PageId>(fn->entries[idx].value);
    const Advance advance = ProcessPair(&f_buf, current, idx, &work);
    // ProcessPair released every lock (including F's).
    switch (advance) {
      case Advance::kStayOnLeft:
        one = this_child;
        retries = 0;
        break;
      case Advance::kToRight: {
        // Re-read is unnecessary: the pair's right child page id was
        // derived from left->link inside ProcessPair; recompute next loop
        // from F. Advance by remembering the left child and stepping one
        // entry past it.
        one = this_child;
        // Move to the entry after `one`: emulate by a skip marker.
        // Simplest: find `one` next iteration and bump idx by one.
        one = kInvalidPageId;  // replaced below
        // Fall through logic handled by kSkipEntry path:
        [[fallthrough]];
      }
      case Advance::kSkipEntry: {
        // Examine the entry following idx next time. We re-lock F to read
        // a stable successor entry.
        pager->Lock(current);
        pager->Get(current, &f_buf);
        if (!fn->is_deleted() && fn->level == level + 1) {
          const int found = fn->FindChildIndex(this_child);
          if (found >= 0 && static_cast<uint32_t>(found) + 1 < fn->count) {
            one = static_cast<PageId>(
                fn->entries[static_cast<uint32_t>(found) + 1].value);
            pager->Unlock(current);
            retries = 0;
            break;
          }
          const PageId link = fn->link;
          pager->Unlock(current);
          current = link;
          one = kInvalidPageId;
          retries = 0;
          break;
        }
        const PageId target = fn->merge_target;
        pager->Unlock(current);
        if (fn->is_deleted() && target != kInvalidPageId) {
          current = target;
          one = this_child;
        } else {
          return work;
        }
        retries = 0;
        break;
      }
      case Advance::kNextParent: {
        pager->Lock(current);
        pager->Get(current, &f_buf);
        const PageId link =
            (!fn->is_deleted() && fn->level == level + 1) ? fn->link
                                                          : kInvalidPageId;
        pager->Unlock(current);
        current = link;
        one = kInvalidPageId;
        retries = 0;
        break;
      }
      case Advance::kRetryPair:
        if (++retries > tree_->options().compression_wait_retries) {
          // The pending insertion never posted (or keeps splitting A, the
          // paper's "minuscule probability" livelock). Skip the pair for
          // this pass.
          one = this_child;
          retries = 0;
          // Skip exactly like kSkipEntry but without recursion: next
          // iteration FindChildIndex(one) resolves and we bump past it.
          // To bump past, treat as kSkipEntry:
          pager->Lock(current);
          pager->Get(current, &f_buf);
          if (!fn->is_deleted() && fn->level == level + 1) {
            const int found = fn->FindChildIndex(this_child);
            if (found >= 0 && static_cast<uint32_t>(found) + 1 < fn->count) {
              one = static_cast<PageId>(
                  fn->entries[static_cast<uint32_t>(found) + 1].value);
              pager->Unlock(current);
              break;
            }
            const PageId link = fn->link;
            pager->Unlock(current);
            current = link;
            one = kInvalidPageId;
            break;
          }
          pager->Unlock(current);
          return work;
        }
        std::this_thread::yield();
        break;
      case Advance::kLevelDone:
        return work;
    }
  }
  return work;
}

size_t ScanCompressor::FullPass() {
  // Maintenance reads must see ground truth (see QueueCompressor).
  FaultInjector::ScopedExemption exempt;
  size_t work = 0;
  const uint32_t levels = tree_->internal_prime()->Read().num_levels;
  for (uint32_t level = 0; level + 1 < levels; ++level) {
    work += CompressLevel(level);
  }
  work += TryCollapseRoot(tree_);
  tree_->internal_pager()->Reclaim();
  return work;
}

void ScanCompressor::RunUntil(const std::atomic<bool>* stop,
                              std::chrono::milliseconds idle_sleep) {
  while (!stop->load(std::memory_order_acquire)) {
    const size_t work = FullPass();
    if (work == 0 && !stop->load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(idle_sleep);
    }
  }
}

}  // namespace obtree
