// Copyright 2026 The obtree Authors.
//
// Human-readable rendering of a tree's structure, level by level — the
// debugging companion to TreeChecker. Quiescent only (walks links without
// locks, like the checker).

#ifndef OBTREE_CORE_TREE_DUMP_H_
#define OBTREE_CORE_TREE_DUMP_H_

#include <iosfwd>
#include <string>

#include "obtree/core/sagiv_tree.h"

namespace obtree {

/// Rendering options for DumpStructure.
struct DumpOptions {
  bool show_entries = false;   ///< print every (key, value/child) pair
  uint32_t max_nodes_per_level = 16;  ///< elide beyond this many nodes
};

/// Write the level-by-level structure to `os`:
///
///   L2 (root): [p17 n=2 (0,+inf]]
///   L1: [p5 n=3 (0,300]] [p9 n=2 (300,+inf]]
///   L0: [p1 n=60 (0,100]] [p2 n=55 (100,...]] ... (+3 more)
void DumpStructure(const SagivTree& tree, std::ostream* os,
                   const DumpOptions& options = DumpOptions());

/// DumpStructure to a string.
std::string DumpStructureToString(const SagivTree& tree,
                                  const DumpOptions& options = DumpOptions());

}  // namespace obtree

#endif  // OBTREE_CORE_TREE_DUMP_H_
