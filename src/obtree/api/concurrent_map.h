// Copyright 2026 The obtree Authors.
//
// ConcurrentMap: the library's primary public entry point. It bundles a
// SagivTree with a compression deployment (Section 5's three options) and
// manages the background threads, so applications get an ordered
// key-value map with lock-free reads, single-lock writes, and automatic
// space compaction.
//
//   obtree::MapOptions options;
//   options.compression = obtree::CompressionMode::kQueueWorkers;
//   obtree::ConcurrentMap map(options);
//   map.Insert(42, handle);
//   auto v = map.Get(42);
//   map.Erase(42);

#ifndef OBTREE_API_CONCURRENT_MAP_H_
#define OBTREE_API_CONCURRENT_MAP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "obtree/api/batch.h"
#include "obtree/core/compression_queue.h"
#include "obtree/core/options.h"
#include "obtree/core/sagiv_tree.h"
#include "obtree/util/common.h"
#include "obtree/util/stats.h"
#include "obtree/util/status.h"

namespace obtree {

class BackgroundPool;
class QueueCompressor;
class ScanCompressor;
struct TreeShape;

// CompressionMode lives in core/options.h (pulled in above) so that
// ShardOptions can reference it without depending on the api layer.

/// Construction-time configuration of a ConcurrentMap.
struct MapOptions {
  /// Node size / restart tunables of the underlying tree.
  TreeOptions tree;
  /// Compression deployment.
  CompressionMode compression = CompressionMode::kQueueWorkers;
  /// Background workers (>= 1) for the chosen compression mode.
  int compression_threads = 1;
};

/// Thread-safe ordered map from Key to Value.
class ConcurrentMap {
 public:
  /// With `pool == nullptr` (the default) the map spawns its own
  /// options.compression_threads background workers. With a pool, the map
  /// spawns NO threads of its own: it attaches its compression work
  /// (queue or scan, per options.compression) to the shared
  /// BackgroundPool, which must outlive the map. ShardedMap uses this to
  /// serve any number of shards with one machine-sized worker set.
  explicit ConcurrentMap(const MapOptions& options = MapOptions(),
                         BackgroundPool* pool = nullptr);

  /// Detaches from the shared pool (blocking until no pool worker touches
  /// this map) or stops and joins the owned workers — in either case
  /// before the tree or queue begins tearing down.
  ~ConcurrentMap();
  OBTREE_DISALLOW_COPY_AND_ASSIGN(ConcurrentMap);

  /// Construction status (InvalidArgument if options were rejected).
  const Status& init_status() const { return tree_->init_status(); }

  /// Insert a new key. AlreadyExists if present; the stored value wins.
  Status Insert(Key key, Value value);

  /// Point lookup. Lock-free: never blocks and never blocks writers. With
  /// options.tree.optimistic_reads (the default) the descent is also
  /// copy-free — node pages are read in place under seqlock version
  /// validation instead of being copied 4 KB at a time (see README "Read
  /// path").
  Result<Value> Get(Key key) const;

  /// Remove a key. NotFound if absent.
  Status Erase(Key key);

  /// Tree-style aliases: Search IS Get and Delete IS Erase, with
  /// identical semantics and costs. They exist so the workload driver
  /// (duck-typed over Insert/Search/Delete/Scan) and code written against
  /// the SagivTree vocabulary can target a map directly; new code should
  /// prefer Get/Erase.
  Result<Value> Search(Key key) const { return Get(key); }
  Status Delete(Key key) { return Erase(key); }

  /// Insert-or-replace in ONE descent (SagivTree::Upsert): finding the
  /// key present overwrites its value inside the same locked critical
  /// section as the presence check. Atomic with respect to concurrent
  /// operations on the same key — readers see the old or the new value,
  /// never a window where the key is absent.
  Status Upsert(Key key, Value value);

  // --- batched operations ---------------------------------------------------
  //
  // Each Multi* call submits its ops to the tree's pipelined descent
  // engine: up to options.tree.batch_max_inflight descents run
  // interleaved on the calling thread, grouped by target page per level
  // so their simulated-I/O waits are issued together (see ARCHITECTURE.md
  // "Batched operation engine"). Per-op semantics are identical to the
  // single-op calls; ops are independent and fail independently. Batches
  // of one take the single-op path.

  /// Batched Get: result.values[i] corresponds to keys[i].
  BatchResult MultiGet(const std::vector<Key>& keys) const;

  /// Batched Insert: result.statuses[i] as Insert(keys[i], values[i]).
  /// keys and values must be the same length (else every status is
  /// InvalidArgument).
  BatchResult MultiInsert(const std::vector<Key>& keys,
                          const std::vector<Value>& values);

  /// Batched Erase: result.statuses[i] as Erase(keys[i]).
  BatchResult MultiErase(const std::vector<Key>& keys);

  /// Batched Upsert: result.statuses[i] as Upsert(keys[i], values[i]).
  /// Same length requirement as MultiInsert.
  BatchResult MultiUpsert(const std::vector<Key>& keys,
                          const std::vector<Value>& values);

  /// Visit pairs with lo <= key <= hi in ascending order; the visitor
  /// returns false to stop. Returns pairs visited.
  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, Value)>& visitor) const;

  /// Collect up to `limit` pairs starting at `from` (pagination helper).
  std::vector<std::pair<Key, Value>> ScanLimit(Key from, size_t limit) const;

  /// Keys currently stored (exact when quiescent).
  uint64_t Size() const { return tree_->Size(); }
  /// True when no keys are stored.
  bool Empty() const { return Size() == 0; }
  /// Tree height in levels (1 = a lone root leaf).
  uint32_t Height() const { return tree_->Height(); }

  /// Run compression synchronously until a fixpoint (blocks the caller,
  /// not concurrent operations). Useful before measuring space.
  void CompressNow();

  // --- persistence (options.tree.storage_dir) -----------------------------

  /// Write a crash-consistent checkpoint to the map's FileStore
  /// (SagivTree::Checkpoint): drains in-flight mutators — readers keep
  /// running — flushes dirty pages, and atomically commits the manifest.
  /// On OK the checkpoint is durable and contains every operation that
  /// returned before this call started. FailedPrecondition when the map
  /// has no storage_dir. Safe to call concurrently with operations and
  /// with background compression (compressors mutate under paper locks,
  /// so the barrier drains them like any writer).
  Status Checkpoint();

  /// True when construction found and adopted a committed checkpoint in
  /// options.tree.storage_dir (i.e. this map recovered existing data).
  bool recovered_from_checkpoint() const {
    return tree_->recovered_from_checkpoint();
  }

  /// Epoch of the newest committed checkpoint (0 = none / not persistent).
  uint64_t checkpoint_epoch() const { return tree_->checkpoint_epoch(); }

  /// Open a map that MUST recover from an existing checkpoint: errors
  /// with NotFound when options.tree.storage_dir holds no committed
  /// checkpoint (and with the construction failure when it is
  /// unreadable). Sugar over the constructor for restore tools that must
  /// not silently start empty (see examples/backup_restore.cpp).
  static Result<std::unique_ptr<ConcurrentMap>> Recover(
      const MapOptions& options, BackgroundPool* pool = nullptr);

  /// Snapshot of operation counters.
  StatsSnapshot Stats() const { return tree_->stats()->Snapshot(); }

  /// Snapshot of the leaf fill-factor histogram the write path maintains
  /// online: one sample (fill percent of the retiring left node) per leaf
  /// split, so no tree walk is needed. Midpoint splits cluster near 50,
  /// tail-biased splits (TreeOptions::append_leaves) near 100. For the
  /// walk-based per-leaf distribution, see Shape().leaf_fill_pct.
  Histogram LeafFillHistogram() const {
    return tree_->stats()->LeafFillHistogram();
  }

  /// Structural statistics (walks the tree; prefer quiescent moments).
  /// Includes the per-leaf fill-percent distribution
  /// (TreeShape::leaf_fill_pct).
  TreeShape Shape() const;

  /// Full structural validation (quiescent only).
  Status ValidateStructure() const;

  /// Forward cursor over the map. Resumable across concurrent inserts,
  /// deletes, and compression: each batch is fetched fresh from the tree,
  /// so the cursor observes keys >= its position that are live at fetch
  /// time (no snapshot isolation — the paper's model has none). Keys are
  /// delivered in strictly ascending order exactly once.
  class Cursor {
   public:
    /// Positions the cursor at the smallest key >= start.
    explicit Cursor(const ConcurrentMap* map, Key start = 1);

    /// Fetch the next pair. Returns false when the key space past the
    /// current position is (currently) empty.
    bool Next(Key* key, Value* value);

    /// Reposition at the smallest key >= target and discard the buffer.
    void Seek(Key target);

    /// The next key position the cursor will read from.
    Key position() const { return next_key_; }

   private:
    static constexpr size_t kBatch = 64;

    const ConcurrentMap* map_;
    Key next_key_;
    bool exhausted_ = false;
    std::vector<std::pair<Key, Value>> buffer_;
    size_t buffer_index_ = 0;
  };

  /// Escape hatch for benchmarks and tests.
  SagivTree* tree() { return tree_.get(); }
  const SagivTree* tree() const { return tree_.get(); }
  CompressionQueue* queue() { return queue_.get(); }

  /// Background threads THIS map owns (0 when served by a shared pool or
  /// compression is off).
  int background_thread_count() const {
    return static_cast<int>(workers_.size());
  }

  /// The shared pool serving this map, or nullptr when it owns workers.
  BackgroundPool* attached_pool() const { return pool_; }

  /// The handle attached_pool()'s Attach returned for this map (0 when
  /// not pool-served). Join key for the per-shard rows of
  /// BackgroundPool::Stats()/StatsFor — snapshot rows are in attach
  /// order, not shard order.
  uint64_t pool_handle() const { return pool_handle_; }

  /// Permanently stop background maintenance for this map: detach from
  /// the shared pool (blocking until no worker touches it) or join owned
  /// workers, and detach the compression queue. The map stays fully
  /// usable — under-full nodes just stop being compacted. Idempotent.
  /// The shard rebalancer calls this on a donor tree once its last key
  /// has migrated out, so retired (empty) trees cost the pool no
  /// round-robin turns.
  void Quiesce() { ShutdownMaintenance(); }

 private:
  /// Idempotent, exception-safe teardown of background maintenance:
  /// detach from the shared pool / stop and join owned workers, then
  /// detach the queue from the tree. Safe to call repeatedly.
  void ShutdownMaintenance() noexcept;

  MapOptions options_;
  std::unique_ptr<SagivTree> tree_;
  std::unique_ptr<CompressionQueue> queue_;
  std::unique_ptr<ScanCompressor> scan_compressor_;
  std::vector<std::unique_ptr<QueueCompressor>> queue_compressors_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
  BackgroundPool* pool_ = nullptr;  ///< not owned; null => own workers_
  uint64_t pool_handle_ = 0;
};

}  // namespace obtree

#endif  // OBTREE_API_CONCURRENT_MAP_H_
