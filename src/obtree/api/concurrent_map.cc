// Copyright 2026 The obtree Authors.

#include "obtree/api/concurrent_map.h"

#include <algorithm>

#include "obtree/core/background_pool.h"
#include "obtree/core/queue_compressor.h"
#include "obtree/core/scan_compressor.h"
#include "obtree/core/tree_checker.h"

namespace obtree {

ConcurrentMap::ConcurrentMap(const MapOptions& options, BackgroundPool* pool)
    : options_(options) {
  TreeOptions tree_options = options_.tree;
  if (options_.compression == CompressionMode::kQueueWorkers) {
    tree_options.enqueue_underfull_on_delete = true;
  }
  tree_ = std::make_unique<SagivTree>(tree_options);

  const int workers = std::max(1, options_.compression_threads);
  switch (options_.compression) {
    case CompressionMode::kNone:
      break;
    case CompressionMode::kBackgroundScan:
      if (pool != nullptr) {
        pool_ = pool;
        pool_handle_ = pool->Attach(tree_.get(), /*queue=*/nullptr);
        break;
      }
      scan_compressor_ = std::make_unique<ScanCompressor>(tree_.get());
      for (int i = 0; i < workers; ++i) {
        workers_.emplace_back([this]() {
          scan_compressor_->RunUntil(&stop_, std::chrono::milliseconds(2));
        });
      }
      break;
    case CompressionMode::kQueueWorkers:
      queue_ = std::make_unique<CompressionQueue>();
      queue_->RegisterWith(tree_->epoch());
      tree_->AttachCompressionQueue(queue_.get());
      if (pool != nullptr) {
        pool_ = pool;
        pool_handle_ = pool->Attach(tree_.get(), queue_.get());
        break;
      }
      // Populate the compressor vector fully BEFORE spawning any thread:
      // a worker indexing queue_compressors_ while a later push_back
      // reallocates it is a data race.
      queue_compressors_.reserve(static_cast<size_t>(workers));
      for (int i = 0; i < workers; ++i) {
        queue_compressors_.push_back(
            std::make_unique<QueueCompressor>(tree_.get(), queue_.get()));
      }
      for (int i = 0; i < workers; ++i) {
        QueueCompressor* compressor =
            queue_compressors_[static_cast<size_t>(i)].get();
        workers_.emplace_back([this, compressor]() {
          compressor->RunUntil(&stop_, std::chrono::milliseconds(1));
        });
      }
      break;
  }
}

ConcurrentMap::~ConcurrentMap() { ShutdownMaintenance(); }

void ConcurrentMap::ShutdownMaintenance() noexcept {
  // Order matters: background maintenance must be fully quiesced BEFORE
  // the tree or queue begins tearing down — a pool worker mid-CompressOne
  // dereferences both. Detach blocks until no worker touches this map and
  // is idempotent, so calling this twice (or after a partial construction)
  // is safe.
  if (pool_ != nullptr) {
    pool_->Detach(pool_handle_);
    pool_ = nullptr;
    pool_handle_ = 0;
  }
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Detach before the queue dies (the tree outlives it in this class, but
  // be explicit about the dependency).
  if (tree_ != nullptr) tree_->AttachCompressionQueue(nullptr);
}

Status ConcurrentMap::Insert(Key key, Value value) {
  return tree_->Insert(key, value);
}

Result<Value> ConcurrentMap::Get(Key key) const { return tree_->Search(key); }

Status ConcurrentMap::Erase(Key key) { return tree_->Delete(key); }

Status ConcurrentMap::Upsert(Key key, Value value) {
  // Single-descent atomic insert-or-replace: the presence check and the
  // value overwrite share one locked critical section in the tree.
  return tree_->Upsert(key, value);
}

BatchResult ConcurrentMap::MultiGet(const std::vector<Key>& keys) const {
  BatchResult r;
  r.values.assign(keys.size(), Result<Value>(Status::Internal("unset")));
  tree_->MultiSearch(keys.data(), keys.size(), r.values.data(), &r.stats);
  return r;
}

BatchResult ConcurrentMap::MultiInsert(const std::vector<Key>& keys,
                                       const std::vector<Value>& values) {
  BatchResult r;
  if (keys.size() != values.size()) {
    r.statuses.assign(keys.size(),
                      Status::InvalidArgument("keys/values size mismatch"));
    return r;
  }
  r.statuses.assign(keys.size(), Status::OK());
  tree_->MultiInsert(keys.data(), values.data(), keys.size(),
                     r.statuses.data(), &r.stats);
  return r;
}

BatchResult ConcurrentMap::MultiErase(const std::vector<Key>& keys) {
  BatchResult r;
  r.statuses.assign(keys.size(), Status::OK());
  tree_->MultiDelete(keys.data(), keys.size(), r.statuses.data(), &r.stats);
  return r;
}

BatchResult ConcurrentMap::MultiUpsert(const std::vector<Key>& keys,
                                       const std::vector<Value>& values) {
  BatchResult r;
  if (keys.size() != values.size()) {
    r.statuses.assign(keys.size(),
                      Status::InvalidArgument("keys/values size mismatch"));
    return r;
  }
  r.statuses.assign(keys.size(), Status::OK());
  tree_->MultiUpsert(keys.data(), values.data(), keys.size(),
                     r.statuses.data(), &r.stats);
  return r;
}

size_t ConcurrentMap::Scan(
    Key lo, Key hi, const std::function<bool(Key, Value)>& visitor) const {
  return tree_->Scan(lo, hi, visitor);
}

std::vector<std::pair<Key, Value>> ConcurrentMap::ScanLimit(
    Key from, size_t limit) const {
  std::vector<std::pair<Key, Value>> out;
  if (limit == 0) return out;
  // One up-front reservation, capped so a huge limit over a sparse range
  // cannot allocate unbounded memory before the scan even starts.
  out.reserve(std::min<size_t>(limit, 4096));
  tree_->Scan(from, kMaxUserKey, [&](Key k, Value v) {
    out.emplace_back(k, v);
    return out.size() < limit;
  });
  return out;
}

Status ConcurrentMap::Checkpoint() { return tree_->Checkpoint(); }

Result<std::unique_ptr<ConcurrentMap>> ConcurrentMap::Recover(
    const MapOptions& options, BackgroundPool* pool) {
  if (options.tree.storage_dir.empty()) {
    return Status::InvalidArgument("Recover requires a storage_dir");
  }
  auto map = std::make_unique<ConcurrentMap>(options, pool);
  if (!map->init_status().ok()) return map->init_status();
  if (!map->recovered_from_checkpoint()) {
    return Status::NotFound("no committed checkpoint in " +
                            options.tree.storage_dir);
  }
  return map;
}

void ConcurrentMap::CompressNow() {
  switch (options_.compression) {
    case CompressionMode::kNone:
    case CompressionMode::kBackgroundScan: {
      ScanCompressor compressor(tree_.get());
      for (int pass = 0; pass < 128; ++pass) {
        if (compressor.FullPass() == 0) break;
      }
      break;
    }
    case CompressionMode::kQueueWorkers: {
      QueueCompressor compressor(tree_.get(), queue_.get());
      compressor.Drain();
      // Queue mode only revisits enqueued nodes; a final sweep picks up
      // nodes whose neighbors were never enqueued.
      ScanCompressor sweeper(tree_.get());
      for (int pass = 0; pass < 128; ++pass) {
        if (sweeper.FullPass() == 0) break;
      }
      break;
    }
  }
  tree_->internal_pager()->Reclaim();
}

ConcurrentMap::Cursor::Cursor(const ConcurrentMap* map, Key start)
    : map_(map), next_key_(start < 1 ? 1 : start) {}

void ConcurrentMap::Cursor::Seek(Key target) {
  next_key_ = target < 1 ? 1 : target;
  exhausted_ = false;
  buffer_.clear();
  buffer_index_ = 0;
}

bool ConcurrentMap::Cursor::Next(Key* key, Value* value) {
  if (buffer_index_ >= buffer_.size()) {
    if (exhausted_) return false;
    buffer_ = map_->ScanLimit(next_key_, kBatch);
    buffer_index_ = 0;
    if (buffer_.empty()) {
      exhausted_ = true;
      return false;
    }
    if (buffer_.size() < kBatch) exhausted_ = true;
    if (buffer_.back().first == kMaxUserKey) {
      exhausted_ = true;
    } else {
      next_key_ = buffer_.back().first + 1;
    }
  }
  *key = buffer_[buffer_index_].first;
  *value = buffer_[buffer_index_].second;
  ++buffer_index_;
  return true;
}

TreeShape ConcurrentMap::Shape() const {
  return TreeChecker(tree_.get()).ComputeShape();
}

Status ConcurrentMap::ValidateStructure() const {
  return TreeChecker(tree_.get()).CheckStructure();
}

}  // namespace obtree
