// Copyright 2026 The obtree Authors.
//
// The live-migration half of online rebalancing lives here; the decision
// half is core/shard_rebalancer.cc. Protocol walkthrough, invariants, and
// per-interleaving correctness arguments: docs/REBALANCING.md.

#include "obtree/api/sharded_map.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "obtree/core/background_pool.h"
#include "obtree/core/tree_checker.h"
#include "obtree/util/fault_injector.h"

namespace obtree {

ShardedMap::ShardedMap(const ShardOptions& options) : options_(options) {
  init_status_ = options_.Validate();
  if (!init_status_.ok()) {
    options_ = ShardOptions();  // degrade to a working default
  }
  const uint32_t n = options_.num_shards;
  // Ceil division without overflow (key_space_hint may be near 2^64).
  shard_width_ =
      options_.key_space_hint / n + (options_.key_space_hint % n != 0);
  if (shard_width_ == 0) shard_width_ = 1;
  dynamic_ = options_.rebalance.enabled;

  // One machine-sized maintenance pool serves every shard (the default);
  // per_shard_workers restores the old N-shards-times-threads topology.
  if (!options_.per_shard_workers &&
      options_.compression != CompressionMode::kNone) {
    BackgroundPool::Options pool_options;
    pool_options.threads = options_.pool_threads;
    pool_ = std::make_unique<BackgroundPool>(pool_options);
  }

  auto initial = std::make_unique<RoutingTable>();
  initial->entries.reserve(n);
  {
    std::lock_guard<std::mutex> lk(trees_mu_);
    for (uint32_t i = 0; i < n; ++i) {
      trees_.push_back(MakeTree());
      if (init_status_.ok()) {
        init_status_ = trees_.back()->init_status();
      }
      RouteEntry e;
      e.lo = static_cast<Key>(i) * shard_width_ + 1;
      e.tree = trees_.back().get();
      initial->entries.push_back(e);
    }
  }
  table_.store(initial.get(), std::memory_order_release);
  tables_.push_back(std::move(initial));

  if (dynamic_) {
    rebalancer_ = std::make_unique<ShardRebalancer>(
        static_cast<ShardRebalancer::Host*>(this), options_.rebalance);
    rebalancer_->Start();
  }
}

// Members tear down in reverse order: the rebalancer first (joins the
// controller thread, so no migration is in flight), then the table and
// migration graveyards, then every tree (each detaches from the pool,
// blocking until no worker touches it), then pool_.
ShardedMap::~ShardedMap() = default;

std::unique_ptr<ConcurrentMap> ShardedMap::MakeTree() {
  MapOptions shard_options;
  shard_options.tree = options_.tree;
  shard_options.compression = options_.compression;
  shard_options.compression_threads = options_.compression_threads_per_shard;
  if (!shard_options.tree.storage_dir.empty()) {
    // Each shard persists into its own subdirectory, numbered by creation
    // order — stable across restarts because a persistent topology is
    // static (ShardOptions::Validate rejects rebalancing + storage_dir,
    // and only the rebalancer creates trees after construction). Only
    // construction reaches this branch, and it holds trees_mu_.
    shard_options.tree.storage_dir +=
        "/shard-" + std::to_string(trees_.size());
  }
  return std::make_unique<ConcurrentMap>(shard_options, pool_.get());
}

Status ShardedMap::Checkpoint() {
  // The topology is static with persistence on, so the table snapshot is
  // the full shard set. Shards checkpoint independently (each cuts its
  // own barrier); the durability contract is per-key, matching routing.
  const RoutingTable* t = table();
  for (size_t i = 0; i < t->entries.size(); ++i) {
    Status s = t->entries[i].tree->Checkpoint();
    if (!s.ok()) return s;  // code preserved so callers can dispatch on it
  }
  return Status::OK();
}

bool ShardedMap::recovered_from_checkpoint() const {
  const RoutingTable* t = table();
  for (const RouteEntry& e : t->entries) {
    if (e.tree->recovered_from_checkpoint()) return true;
  }
  return false;
}

size_t ShardedMap::RouteIndex(const RoutingTable* t, Key key) {
  const auto& es = t->entries;
  size_t lo = 0;
  size_t hi = es.size();
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (es[mid].lo <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

const ShardedMap::RouteEntry& ShardedMap::Route(const RoutingTable* t,
                                                Key key) {
  return t->entries[RouteIndex(t, key)];
}

uint32_t ShardedMap::ShardIndex(Key key) const {
  const RoutingTable* t = table();
  if (!dynamic_) {
    const uint64_t idx = (key - 1) / shard_width_;
    const uint64_t last = t->entries.size() - 1;
    return static_cast<uint32_t>(idx < last ? idx : last);
  }
  return static_cast<uint32_t>(RouteIndex(t, key));
}

bool ShardedMap::Settled(const ShardMigration* mig, Key key) {
  return mig == nullptr || mig->done.load(std::memory_order_acquire) ||
         key < mig->drained_below.load(std::memory_order_acquire);
}

void ShardedMap::WaitOutBatch(const ShardMigration* mig, Key key) {
  bool waited = false;
  while (true) {
    const uint64_t seq = mig->batch_seq.load(std::memory_order_acquire);
    if ((seq & 1) == 0) break;  // no batch in flight
    // The bounds are published before the seq goes odd (release), so an
    // odd observation implies valid bounds for THAT batch.
    if (key < mig->batch_lo.load(std::memory_order_relaxed) ||
        key > mig->batch_hi.load(std::memory_order_relaxed)) {
      break;  // in flight, but not over this key
    }
    waited = true;
    std::this_thread::yield();
  }
  if (waited) {
    mig->donor->tree()->stats()->Add(StatId::kMigrationRetries);
  }
}

// --- point operations ------------------------------------------------------
//
// Dual-zone rule (key not yet settled): the DONOR is checked first, and a
// donor miss waits out any in-flight batch covering the key before the
// receiver lookup becomes authoritative. The migrator removes a key from
// the donor strictly before inserting it into the receiver, and only
// inside an odd batch window — so "miss in donor, then batch quiet, then
// look in receiver" can never miss a live key.

Result<Value> ShardedMap::DualGet(const RouteEntry& e, Key key) const {
  Result<Value> v = e.mig->donor->Get(key);
  if (v.ok()) return v;
  WaitOutBatch(e.mig, key);
  return e.mig->receiver->Get(key);
}

Status ShardedMap::DualInsert(const RouteEntry& e, Key key, Value value) {
  // The donor check makes AlreadyExists authoritative: a key still in the
  // donor must refuse the insert. If the migrator moves it concurrently,
  // the donor miss is followed by the batch wait, after which the key is
  // visible in the receiver and the receiver's own Insert refuses it.
  if (e.mig->donor->Get(key).ok()) {
    return Status::AlreadyExists("key present in migrating donor shard");
  }
  WaitOutBatch(e.mig, key);
  return e.mig->receiver->Insert(key, value);
}

Status ShardedMap::DualErase(const RouteEntry& e, Key key) {
  Status s = e.mig->donor->Erase(key);
  if (!s.IsNotFound()) return s;  // removed from the donor, or a real error
  WaitOutBatch(e.mig, key);
  return e.mig->receiver->Erase(key);
}

Status ShardedMap::DualUpsert(const RouteEntry& e, Key key, Value value) {
  // While the key's ownership is split between donor and receiver there
  // is no single locked critical section to make the upsert atomic, so
  // this path keeps the erase-then-insert shape with a bounded retry,
  // each step running the dual-zone protocol. It only runs during the
  // migration window; settled keys get the atomic single-tree Upsert.
  Status erased = DualErase(e, key);
  if (!erased.ok() && !erased.IsNotFound()) return erased;
  for (int attempt = 0; attempt < 16; ++attempt) {
    Status s = DualInsert(e, key, value);
    if (!s.IsAlreadyExists()) return s;
    s = DualErase(e, key);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  return Status::Aborted("upsert lost repeated races on the same key");
}

Status ShardedMap::Insert(Key key, Value value) {
  if (!dynamic_) {
    return StaticRoute(table(), key).tree->Insert(key, value);
  }
  EpochManager::Guard g(&table_epoch_);
  const RouteEntry e = Route(table(), key);
  if (Settled(e.mig, key)) return e.tree->Insert(key, value);
  return DualInsert(e, key, value);
}

Result<Value> ShardedMap::Get(Key key) const {
  if (!dynamic_) {
    return StaticRoute(table(), key).tree->Get(key);
  }
  EpochManager::Guard g(&table_epoch_);
  const RouteEntry e = Route(table(), key);
  if (Settled(e.mig, key)) return e.tree->Get(key);
  return DualGet(e, key);
}

Status ShardedMap::Erase(Key key) {
  if (!dynamic_) {
    return StaticRoute(table(), key).tree->Erase(key);
  }
  EpochManager::Guard g(&table_epoch_);
  const RouteEntry e = Route(table(), key);
  if (Settled(e.mig, key)) return e.tree->Erase(key);
  return DualErase(e, key);
}

Status ShardedMap::Upsert(Key key, Value value) {
  if (!dynamic_) {
    return StaticRoute(table(), key).tree->Upsert(key, value);
  }
  EpochManager::Guard g(&table_epoch_);
  const RouteEntry e = Route(table(), key);
  if (Settled(e.mig, key)) return e.tree->Upsert(key, value);
  return DualUpsert(e, key, value);
}

// --- batched operations ----------------------------------------------------

void ShardedMap::GroupBatch(
    const RoutingTable* t, const Key* keys, const Value* values, size_t n,
    std::vector<BatchGroup>* groups,
    std::vector<std::pair<size_t, RouteEntry>>* unsettled) const {
  for (size_t i = 0; i < n; ++i) {
    const RouteEntry& e =
        dynamic_ ? Route(t, keys[i]) : StaticRoute(t, keys[i]);
    if (dynamic_ && !Settled(e.mig, keys[i])) {
      unsettled->emplace_back(i, e);
      continue;
    }
    // Linear probe over the groups: a batch touches at most num_shards
    // distinct trees, which is small by construction.
    BatchGroup* gr = nullptr;
    for (BatchGroup& cand : *groups) {
      if (cand.tree == e.tree) {
        gr = &cand;
        break;
      }
    }
    if (gr == nullptr) {
      groups->emplace_back();
      gr = &groups->back();
      gr->tree = e.tree;
    }
    gr->idx.push_back(i);
    gr->keys.push_back(keys[i]);
    if (values != nullptr) gr->values.push_back(values[i]);
  }
}

BatchResult ShardedMap::MultiGet(const std::vector<Key>& keys) const {
  BatchResult r;
  r.values.assign(keys.size(), Result<Value>(Status::Internal("unset")));
  if (keys.empty()) return r;
  // One epoch guard covers the whole batch: a concurrent table swap's
  // grace period waits for every op in it.
  std::optional<EpochManager::Guard> g;
  if (dynamic_) g.emplace(&table_epoch_);
  const RoutingTable* t = table();
  std::vector<BatchGroup> groups;
  std::vector<std::pair<size_t, RouteEntry>> dual;
  GroupBatch(t, keys.data(), nullptr, keys.size(), &groups, &dual);
  for (BatchGroup& gr : groups) {
    BatchResult sub = gr.tree->MultiGet(gr.keys);
    for (size_t j = 0; j < gr.idx.size(); ++j) {
      r.values[gr.idx[j]] = sub.values[j];
    }
    r.stats += sub.stats;
  }
  for (const auto& [i, e] : dual) {
    r.values[i] = DualGet(e, keys[i]);
    r.stats.ops += 1;  // served outside the engine; coalesces nothing
  }
  return r;
}

BatchResult ShardedMap::MultiInsert(const std::vector<Key>& keys,
                                    const std::vector<Value>& values) {
  BatchResult r;
  if (keys.size() != values.size()) {
    r.statuses.assign(keys.size(),
                      Status::InvalidArgument("keys/values size mismatch"));
    return r;
  }
  r.statuses.assign(keys.size(), Status::OK());
  if (keys.empty()) return r;
  std::optional<EpochManager::Guard> g;
  if (dynamic_) g.emplace(&table_epoch_);
  const RoutingTable* t = table();
  std::vector<BatchGroup> groups;
  std::vector<std::pair<size_t, RouteEntry>> dual;
  GroupBatch(t, keys.data(), values.data(), keys.size(), &groups, &dual);
  for (BatchGroup& gr : groups) {
    BatchResult sub = gr.tree->MultiInsert(gr.keys, gr.values);
    for (size_t j = 0; j < gr.idx.size(); ++j) {
      r.statuses[gr.idx[j]] = sub.statuses[j];
    }
    r.stats += sub.stats;
  }
  for (const auto& [i, e] : dual) {
    r.statuses[i] = DualInsert(e, keys[i], values[i]);
    r.stats.ops += 1;
  }
  return r;
}

BatchResult ShardedMap::MultiErase(const std::vector<Key>& keys) {
  BatchResult r;
  r.statuses.assign(keys.size(), Status::OK());
  if (keys.empty()) return r;
  std::optional<EpochManager::Guard> g;
  if (dynamic_) g.emplace(&table_epoch_);
  const RoutingTable* t = table();
  std::vector<BatchGroup> groups;
  std::vector<std::pair<size_t, RouteEntry>> dual;
  GroupBatch(t, keys.data(), nullptr, keys.size(), &groups, &dual);
  for (BatchGroup& gr : groups) {
    BatchResult sub = gr.tree->MultiErase(gr.keys);
    for (size_t j = 0; j < gr.idx.size(); ++j) {
      r.statuses[gr.idx[j]] = sub.statuses[j];
    }
    r.stats += sub.stats;
  }
  for (const auto& [i, e] : dual) {
    r.statuses[i] = DualErase(e, keys[i]);
    r.stats.ops += 1;
  }
  return r;
}

BatchResult ShardedMap::MultiUpsert(const std::vector<Key>& keys,
                                    const std::vector<Value>& values) {
  BatchResult r;
  if (keys.size() != values.size()) {
    r.statuses.assign(keys.size(),
                      Status::InvalidArgument("keys/values size mismatch"));
    return r;
  }
  r.statuses.assign(keys.size(), Status::OK());
  if (keys.empty()) return r;
  std::optional<EpochManager::Guard> g;
  if (dynamic_) g.emplace(&table_epoch_);
  const RoutingTable* t = table();
  std::vector<BatchGroup> groups;
  std::vector<std::pair<size_t, RouteEntry>> dual;
  GroupBatch(t, keys.data(), values.data(), keys.size(), &groups, &dual);
  for (BatchGroup& gr : groups) {
    BatchResult sub = gr.tree->MultiUpsert(gr.keys, gr.values);
    for (size_t j = 0; j < gr.idx.size(); ++j) {
      r.statuses[gr.idx[j]] = sub.statuses[j];
    }
    r.stats += sub.stats;
  }
  for (const auto& [i, e] : dual) {
    r.statuses[i] = DualUpsert(e, keys[i], values[i]);
    r.stats.ops += 1;
  }
  return r;
}

// --- scans -----------------------------------------------------------------

bool ShardedMap::ScanMergedRange(
    const ShardMigration* mig, Key lo, Key hi,
    const std::function<bool(Key, Value)>& visitor, size_t* visited) const {
  // A migrating range is the union of what is left in the donor and what
  // has arrived in the receiver. Chunks are fetched from both and merged
  // two-way (the partition invariant makes duplicates impossible at rest;
  // preferring the receiver on a transient tie is the safe direction). A
  // chunk fetched while a batch window was open — or across a window
  // boundary — may miss the in-flight keys, so it is retried a bounded
  // number of times; after the budget the chunk is accepted as-is, which
  // is the documented relaxation for scans under active migration
  // (docs/REBALANCING.md §5).
  static constexpr size_t kChunk = 128;
  static constexpr int kChunkRetries = 3;
  Key pos = lo;
  while (pos <= hi) {
    std::vector<std::pair<Key, Value>> from_donor;
    std::vector<std::pair<Key, Value>> from_recv;
    for (int attempt = 0;; ++attempt) {
      const uint64_t before = mig->batch_seq.load(std::memory_order_acquire);
      from_donor = mig->donor->ScanLimit(pos, kChunk);
      from_recv = mig->receiver->ScanLimit(pos, kChunk);
      const uint64_t after = mig->batch_seq.load(std::memory_order_acquire);
      if (((before & 1) == 0 && after == before) || attempt >= kChunkRetries) {
        break;
      }
      std::this_thread::yield();
    }
    // A full chunk only vouches for keys up to its own last key; a short
    // chunk saw everything to the end of the range.
    const Key donor_bound =
        from_donor.size() == kChunk ? from_donor.back().first : hi;
    const Key recv_bound =
        from_recv.size() == kChunk ? from_recv.back().first : hi;
    const Key bound = std::min(hi, std::min(donor_bound, recv_bound));

    size_t di = 0;
    size_t ri = 0;
    while (true) {
      const bool d_ok =
          di < from_donor.size() && from_donor[di].first <= bound;
      const bool r_ok = ri < from_recv.size() && from_recv[ri].first <= bound;
      if (!d_ok && !r_ok) break;
      std::pair<Key, Value> kv;
      if (d_ok && r_ok && from_donor[di].first == from_recv[ri].first) {
        kv = from_recv[ri];
        ++di;
        ++ri;
      } else if (!r_ok ||
                 (d_ok && from_donor[di].first < from_recv[ri].first)) {
        kv = from_donor[di++];
      } else {
        kv = from_recv[ri++];
      }
      ++*visited;
      if (!visitor(kv.first, kv.second)) return false;
    }
    if (bound >= hi) break;
    pos = bound + 1;
  }
  return true;
}

size_t ShardedMap::ScanTable(
    const RoutingTable* t, Key lo, Key hi,
    const std::function<bool(Key, Value)>& visitor) const {
  const auto& es = t->entries;
  const Key cap = std::min(hi, kMaxUserKey);
  size_t visited = 0;
  bool stopped = false;
  // The partition is ordered, so visiting shards left to right delivers
  // globally ascending keys: every key of shard s precedes every key of
  // shard s+1.
  for (size_t s = RouteIndex(t, lo); s < es.size() && !stopped; ++s) {
    const RouteEntry& e = es[s];
    if (e.lo > cap) break;
    const Key seg_lo = std::max(lo, e.lo);
    const Key seg_hi = s + 1 < es.size() ? std::min(cap, es[s + 1].lo - 1)
                                         : cap;
    if (seg_hi < seg_lo) continue;  // lo above the user-key cap
    if (e.mig != nullptr && !e.mig->done.load(std::memory_order_acquire)) {
      stopped = !ScanMergedRange(e.mig, seg_lo, seg_hi, visitor, &visited);
      continue;
    }
    visited += e.tree->Scan(seg_lo, seg_hi, [&](Key k, Value v) {
      if (!visitor(k, v)) {
        stopped = true;
        return false;
      }
      return true;
    });
  }
  return visited;
}

size_t ShardedMap::Scan(
    Key lo, Key hi, const std::function<bool(Key, Value)>& visitor) const {
  if (lo < 1) lo = 1;
  if (hi < lo) return 0;
  if (!dynamic_) return ScanTable(table(), lo, hi, visitor);
  EpochManager::Guard g(&table_epoch_);
  return ScanTable(table(), lo, hi, visitor);
}

std::vector<std::pair<Key, Value>> ShardedMap::ScanLimit(
    Key from, size_t limit) const {
  std::vector<std::pair<Key, Value>> out;
  if (limit == 0) return out;
  out.reserve(std::min<size_t>(limit, 4096));
  Scan(from, kMaxUserKey, [&](Key k, Value v) {
    out.emplace_back(k, v);
    return out.size() < limit;
  });
  return out;
}

// --- aggregation -----------------------------------------------------------

std::vector<ConcurrentMap*> ShardedMap::LiveTrees(
    const RoutingTable* t) const {
  std::vector<ConcurrentMap*> out;
  out.reserve(t->entries.size() + 1);
  auto add = [&out](ConcurrentMap* m) {
    if (m == nullptr) return;
    if (std::find(out.begin(), out.end(), m) == out.end()) out.push_back(m);
  };
  for (const RouteEntry& e : t->entries) {
    add(e.tree);
    // An unfinished migration's donor still holds part of the range.
    if (e.mig != nullptr && !e.mig->done.load(std::memory_order_acquire)) {
      add(e.mig->donor);
    }
  }
  return out;
}

uint64_t ShardedMap::Size() const {
  // A key lives in at most one tree at any instant (see REBALANCING.md
  // invariant I1), so donor + receiver sums never double count.
  uint64_t total = 0;
  for (const ConcurrentMap* m : LiveTrees(table())) total += m->Size();
  return total;
}

uint32_t ShardedMap::Height() const {
  uint32_t tallest = 0;
  for (const ConcurrentMap* m : LiveTrees(table())) {
    tallest = std::max(tallest, m->Height());
  }
  return tallest;
}

void ShardedMap::CompressNow() {
  for (ConcurrentMap* m : LiveTrees(table())) m->CompressNow();
}

PoolStatsSnapshot ShardedMap::PoolStats() const {
  return pool_ != nullptr ? pool_->Stats() : PoolStatsSnapshot();
}

int ShardedMap::background_thread_count() const {
  if (pool_ != nullptr) return pool_->thread_count();
  int total = 0;
  std::lock_guard<std::mutex> lk(trees_mu_);
  for (const auto& m : trees_) total += m->background_thread_count();
  return total;
}

StatsSnapshot ShardedMap::Stats() const {
  // Summed over every tree ever created — retired merge donors included —
  // so counters remain monotone across rebalancing actions.
  StatsSnapshot total;
  {
    std::lock_guard<std::mutex> lk(trees_mu_);
    for (const auto& m : trees_) {
      const StatsSnapshot snap = m->Stats();
      for (size_t i = 0; i < total.counters.size(); ++i) {
        total.counters[i] += snap.counters[i];
      }
      total.max_locks_held =
          std::max(total.max_locks_held, snap.max_locks_held);
    }
  }
  // Breaker trips are controller-level, not per-tree; surface them in the
  // same snapshot so operators see degradation in one place.
  if (rebalancer_ != nullptr) {
    total.counters[static_cast<size_t>(StatId::kRebalanceBreakerTrips)] +=
        rebalancer_->breaker_trips();
  }
  return total;
}

TreeShape ShardedMap::Shape() const {
  TreeShape total;
  double fill_weighted = 0.0;
  uint64_t leaves = 0;
  for (const ConcurrentMap* m : LiveTrees(table())) {
    const TreeShape shape = m->Shape();
    total.height = std::max(total.height, shape.height);
    total.num_keys += shape.num_keys;
    total.num_nodes += shape.num_nodes;
    total.underfull_nodes += shape.underfull_nodes;
    if (shape.nodes_per_level.size() > total.nodes_per_level.size()) {
      total.nodes_per_level.resize(shape.nodes_per_level.size(), 0);
    }
    for (size_t i = 0; i < shape.nodes_per_level.size(); ++i) {
      total.nodes_per_level[i] += shape.nodes_per_level[i];
    }
    const uint64_t shard_leaves =
        shape.nodes_per_level.empty() ? 0 : shape.nodes_per_level[0];
    fill_weighted += shape.avg_leaf_fill * static_cast<double>(shard_leaves);
    leaves += shard_leaves;
  }
  total.avg_leaf_fill =
      leaves > 0 ? fill_weighted / static_cast<double>(leaves) : 0.0;
  return total;
}

Status ShardedMap::ValidateStructure() const {
  const std::vector<ConcurrentMap*> live = LiveTrees(table());
  for (size_t i = 0; i < live.size(); ++i) {
    Status s = live[i]->ValidateStructure();
    if (!s.ok()) {
      return Status::Internal("shard " + std::to_string(i) + ": " +
                              s.ToString());
    }
  }
  return Status::OK();
}

// --- rebalancing: controller host + migration machinery --------------------

void ShardedMap::SetMigrationHookForTest(MigrationHook hook) {
  std::lock_guard<std::mutex> lk(admin_mu_);
  migration_hook_ = std::move(hook);
}

void ShardedMap::FireHook(const char* point, Key key) {
  if (migration_hook_) migration_hook_(point, key);
}

std::vector<ShardLoad> ShardedMap::SnapshotLoads() {
  const RoutingTable* t = table();
  std::vector<ShardLoad> out;
  out.reserve(t->entries.size());
  for (const RouteEntry& e : t->entries) {
    ShardLoad load;
    load.id = e.tree;
    const StatsSnapshot s = e.tree->Stats();
    load.ops = s.Get(StatId::kSearches) + s.Get(StatId::kInserts) +
               s.Get(StatId::kDeletes);
    load.contention = s.Get(StatId::kLocksContended);
    if (pool_ != nullptr) {
      const PoolShardStats ps = pool_->StatsFor(e.tree->pool_handle());
      load.pool_drains = ps.tasks_drained;
      load.pool_boosts = ps.boosts;
    }
    load.keys = e.tree->Size();
    out.push_back(load);
  }
  return out;
}

void ShardedMap::PublishTable(std::unique_ptr<RoutingTable> next,
                              bool wait_grace) {
  RoutingTable* raw = next.get();
  tables_.push_back(std::move(next));
  // seq_cst store: the grace protocol below needs the swap ordered before
  // the Advance() that defines "pre-swap" (a release store could sink past
  // the clock RMW under store-load reordering).
  table_.store(raw, std::memory_order_seq_cst);
  FireHook("table-swap", static_cast<Key>(raw->entries.size()));
  if (!wait_grace) return;
  // Grace period: any operation that routed through an older table pinned
  // a Guard (and thus a clock value) BEFORE loading the table pointer.
  // Advancing the clock now and waiting until every pin is newer therefore
  // waits out every such operation; ops pinning after our Advance read the
  // clock through the RMW chain and are guaranteed to observe the store
  // above — they route through the new table and need no waiting.
  const Timestamp fence = table_epoch_.Advance();
  while (table_epoch_.MinActive() < fence) {
    std::this_thread::yield();
  }
}

bool ShardedMap::LandKey(ShardMigration* mig, Key key, Value value) {
  // The key is in NEITHER tree and the batch window is open: it MUST land
  // before the window closes. The first attempts honor injected faults;
  // after that the insert runs exempt (injection cannot touch it), and the
  // donor is the fallback of last resort so a failed batch stays
  // donor-authoritative. AlreadyExists means an earlier attempt landed
  // despite reporting a (mid-restart) failure — the key is safe.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const Status s = mig->receiver->Insert(key, value);
    if (s.ok() || s.IsAlreadyExists()) return true;
  }
  FaultInjector::ScopedExemption exempt;
  const Status s = mig->receiver->Insert(key, value);
  if (s.ok() || s.IsAlreadyExists()) return true;
  mig->donor->Insert(key, value);
  return false;
}

bool ShardedMap::RunMigration(ShardMigration* mig) {
  ConcurrentMap* donor = mig->donor;
  const size_t batch =
      std::max<uint32_t>(1, options_.rebalance.migration_batch);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.rebalance.migration_deadline_ms);
  uint32_t failures = 0;
  Key pos = mig->lo;
  while (true) {
    // Watchdog: a migration that keeps failing batches (or keeps being
    // stalled) must not pin admin_mu_ forever — past the deadline it
    // aborts and the caller rolls back.
    if (std::chrono::steady_clock::now() > deadline) {
      donor->tree()->stats()->Add(StatId::kMigrationAborts);
      SetLastRebalanceError(
          Status::Aborted("migration exceeded its deadline; rolled back"));
      return false;
    }
    // Plan the batch OUTSIDE the window: the window only needs to cover
    // the delete/insert handoff, not the scan. Planning is control-plane
    // work and reads ground truth — an injected short read here would
    // silently skip keys, which is corruption, not degradation.
    std::vector<std::pair<Key, Value>> chunk;
    {
      FaultInjector::ScopedExemption exempt;
      chunk = donor->ScanLimit(pos, batch);
    }
    while (!chunk.empty() && chunk.back().first > mig->hi) chunk.pop_back();
    if (chunk.empty()) break;  // range drained
    const Key first = chunk.front().first;
    const Key last = chunk.back().first;

    bool batch_ok = true;
    // Highest key of this batch that is fully resolved (moved, or erased
    // by a racing user delete). drained_below may advance past resolved
    // keys even when the batch later fails — but never past a failure.
    Key completed_through = first - 1;
    if (FaultInjector::TrapsArmed() &&
        FaultInjector::Instance().Evaluate("migration-batch").inject_error) {
      batch_ok = false;  // injected batch failure: nothing moved yet
    } else {
      mig->batch_lo.store(first, std::memory_order_relaxed);
      mig->batch_hi.store(last, std::memory_order_relaxed);
      mig->batch_seq.fetch_add(1, std::memory_order_acq_rel);  // open (odd)
      FireHook("batch-begin", first);
      uint64_t moved = 0;
      for (const auto& kv : chunk) {
        // Delete-then-insert: the key is in NEITHER tree for an instant,
        // which is exactly what the odd batch window guards. A donor
        // delete returning NotFound means a concurrent user Erase won the
        // race — the user deletion wins and the key is not re-inserted.
        const Status es = donor->Erase(kv.first);
        if (es.ok()) {
          FireHook("key-moved", kv.first);
          if (!LandKey(mig, kv.first, kv.second)) {
            batch_ok = false;  // fell back into the donor: not migrated
            break;
          }
          ++moved;
          completed_through = kv.first;
        } else if (es.IsNotFound()) {
          completed_through = kv.first;
        } else {
          // Transient donor failure (injected or real): the key may still
          // be donor-side, so the batch stops HERE and drained_below must
          // not pass it.
          batch_ok = false;
          break;
        }
      }
      if (completed_through >= pos && completed_through < kMaxUserKey) {
        mig->drained_below.store(completed_through + 1,
                                 std::memory_order_release);
      }
      mig->batch_seq.fetch_add(1, std::memory_order_release);  // close
      FireHook("batch-end", last);
      donor->tree()->stats()->Add(StatId::kKeysMigrated, moved);
      mig->keys_moved.fetch_add(moved, std::memory_order_relaxed);
    }

    if (batch_ok) {
      failures = 0;
      if (last >= mig->hi) break;
      pos = last + 1;
    } else {
      if (++failures > options_.rebalance.migration_retry_limit) {
        donor->tree()->stats()->Add(StatId::kMigrationAborts);
        SetLastRebalanceError(Status::Aborted(
            "migration batch exhausted its retries; rolled back"));
        return false;
      }
      // Retry the same position after a short backoff; keys that already
      // resolved are gone from the donor, so the re-planned chunk picks
      // up exactly where the failure stopped.
      std::this_thread::sleep_for(std::chrono::microseconds(
          200u << (failures < 4 ? failures : 4)));
    }
  }
  mig->done.store(true, std::memory_order_release);
  return true;
}

ShardedMap::ShardMigration* ShardedMap::MakeRollback(
    const ShardMigration* aborted) {
  migrations_.push_back(std::make_unique<ShardMigration>());
  ShardMigration* back = migrations_.back().get();
  back->lo = aborted->lo;
  back->hi = aborted->hi;
  back->donor = aborted->receiver;    // keys drain back OUT of the receiver
  back->receiver = aborted->donor;    // ... INTO the original donor
  back->drained_below.store(back->lo, std::memory_order_relaxed);
  return back;
}

ShardedMap::ActionResult ShardedMap::SplitShard(size_t index) {
  if (!dynamic_) return ActionResult::kSkipped;
  std::lock_guard<std::mutex> lk(admin_mu_);
  const RoutingTable* cur = table();
  const size_t n = cur->entries.size();
  if (index >= n) return ActionResult::kSkipped;
  if (n >= options_.rebalance.max_shards) return ActionResult::kSkipped;
  const RouteEntry e = cur->entries[index];
  ConcurrentMap* donor = e.tree;
  const Key lo = e.lo;
  const Key hi =
      index + 1 < n ? cur->entries[index + 1].lo - 1 : kMaxUserKey;
  if (hi <= lo) return ActionResult::kSkipped;  // width-one range

  // Split at the median STORED key, not the range midpoint: under a
  // skewed workload the keys (and the load) concentrate in a slice of the
  // range, and a midpoint split would leave one side empty. Planning is
  // control-plane: read ground truth.
  Key mid = 0;
  {
    FaultInjector::ScopedExemption exempt;
    const uint64_t total = donor->Size();
    if (total < 2) return ActionResult::kSkipped;
    const uint64_t half = total / 2;
    uint64_t seen = 0;
    donor->Scan(lo, hi, [&](Key k, Value) {
      ++seen;
      if (seen > half) {
        mid = k;
        return false;
      }
      return true;
    });
  }
  if (mid <= lo) mid = lo + 1;
  if (mid > hi) return ActionResult::kSkipped;

  auto fresh_owned = MakeTree();
  if (!fresh_owned->init_status().ok()) return ActionResult::kSkipped;
  ConcurrentMap* fresh = fresh_owned.get();
  {
    std::lock_guard<std::mutex> tlk(trees_mu_);
    trees_.push_back(std::move(fresh_owned));
  }
  migrations_.push_back(std::make_unique<ShardMigration>());
  ShardMigration* mig = migrations_.back().get();
  mig->lo = mid;
  mig->hi = hi;
  mig->donor = donor;
  mig->receiver = fresh;
  mig->drained_below.store(mid, std::memory_order_relaxed);

  // Handoff-first: the table points the upper half at the RECEIVER before
  // a single key moves, and the grace wait flushes every operation still
  // routing the upper half at the donor. From then on the donor can only
  // LOSE keys in [mid, hi] — the invariant the migrator depends on.
  auto next = std::make_unique<RoutingTable>(*cur);
  RouteEntry fresh_entry;
  fresh_entry.lo = mid;
  fresh_entry.tree = fresh;
  fresh_entry.mig = mig;
  next->entries.insert(
      next->entries.begin() + static_cast<std::ptrdiff_t>(index) + 1,
      fresh_entry);
  PublishTable(std::move(next), /*wait_grace=*/true);

  if (!RunMigration(mig)) {
    // Abort -> donor-authoritative rollback (docs/REBALANCING.md §10).
    // Point the upper half back at the donor FIRST, with a grace wait, so
    // no straggler is still running the aborted migration's dual protocol
    // when the reversed one starts moving keys; then drain everything the
    // receiver got back into the donor, exempt from injection (rollback
    // must terminate).
    ShardMigration* back = MakeRollback(mig);
    auto undo = std::make_unique<RoutingTable>(*table());
    undo->entries[index + 1].tree = donor;
    undo->entries[index + 1].mig = back;
    PublishTable(std::move(undo), /*wait_grace=*/true);
    bool rolled_back;
    {
      FaultInjector::ScopedExemption exempt;
      rolled_back = RunMigration(back);
    }
    donor->tree()->stats()->Add(StatId::kMigrationRollbackKeys,
                                back->keys_moved.load());
    if (rolled_back) {
      // The donor's own row covers [lo, hi] again; the stillborn shard
      // leaves the table and stops costing maintenance.
      auto clean = std::make_unique<RoutingTable>(*table());
      clean->entries.erase(clean->entries.begin() +
                           static_cast<std::ptrdiff_t>(index) + 1);
      PublishTable(std::move(clean), /*wait_grace=*/false);
      fresh->Quiesce();
    } else {
      // A rollback can only fail on a real (non-injected) error. Leave
      // the range in dual mode permanently — slower but never lossy.
      SetLastRebalanceError(Status::Internal(
          "split rollback incomplete; range left in dual-lookup mode"));
    }
    return ActionResult::kFailed;
  }

  // Retire the finished migration from the table so future traffic takes
  // the single-lookup fast path. No grace needed: stragglers on the old
  // table run the dual protocol against a done migration, which resolves
  // to the receiver.
  auto clean = std::make_unique<RoutingTable>(*table());
  clean->entries[index + 1].mig = nullptr;
  PublishTable(std::move(clean), /*wait_grace=*/false);

  fresh->tree()->stats()->Add(StatId::kRebalanceSplits);
  return ActionResult::kOk;
}

ShardedMap::ActionResult ShardedMap::MergeShards(size_t left) {
  if (!dynamic_) return ActionResult::kSkipped;
  std::lock_guard<std::mutex> lk(admin_mu_);
  const RoutingTable* cur = table();
  const size_t n = cur->entries.size();
  if (left + 1 >= n) return ActionResult::kSkipped;
  if (n <= options_.rebalance.min_shards) return ActionResult::kSkipped;
  ConcurrentMap* receiver = cur->entries[left].tree;
  ConcurrentMap* donor = cur->entries[left + 1].tree;
  const Key lo = cur->entries[left + 1].lo;
  const Key hi =
      left + 2 < n ? cur->entries[left + 2].lo - 1 : kMaxUserKey;

  migrations_.push_back(std::make_unique<ShardMigration>());
  ShardMigration* mig = migrations_.back().get();
  mig->lo = lo;
  mig->hi = hi;
  mig->donor = donor;
  mig->receiver = receiver;
  mig->drained_below.store(lo, std::memory_order_relaxed);

  // Same handoff-first shape as SplitShard: the right range is pointed at
  // the surviving left tree (the receiver) before any key moves.
  auto next = std::make_unique<RoutingTable>(*cur);
  next->entries[left + 1].tree = receiver;
  next->entries[left + 1].mig = mig;
  PublishTable(std::move(next), /*wait_grace=*/true);

  if (!RunMigration(mig)) {
    // Same rollback shape as SplitShard: restore the right range to its
    // original (donor) tree with a grace wait, then drain back whatever
    // reached the receiver, exempt from injection.
    ShardMigration* back = MakeRollback(mig);
    auto undo = std::make_unique<RoutingTable>(*table());
    undo->entries[left + 1].tree = donor;
    undo->entries[left + 1].mig = back;
    PublishTable(std::move(undo), /*wait_grace=*/true);
    bool rolled_back;
    {
      FaultInjector::ScopedExemption exempt;
      rolled_back = RunMigration(back);
    }
    donor->tree()->stats()->Add(StatId::kMigrationRollbackKeys,
                                back->keys_moved.load());
    if (rolled_back) {
      // The right shard is exactly as before the merge attempt.
      auto clean = std::make_unique<RoutingTable>(*table());
      clean->entries[left + 1].mig = nullptr;
      PublishTable(std::move(clean), /*wait_grace=*/false);
    } else {
      SetLastRebalanceError(Status::Internal(
          "merge rollback incomplete; range left in dual-lookup mode"));
    }
    return ActionResult::kFailed;
  }

  // Coalesce: entry `left` now covers both ranges; the drained donor
  // leaves the table for good.
  auto clean = std::make_unique<RoutingTable>(*table());
  clean->entries.erase(clean->entries.begin() +
                       static_cast<std::ptrdiff_t>(left) + 1);
  PublishTable(std::move(clean), /*wait_grace=*/false);

  // The donor is empty and unreachable for writes; stop paying for its
  // background maintenance. The tree object itself stays alive (readers
  // on stale table snapshots may still probe it) until the map dies.
  donor->Quiesce();
  receiver->tree()->stats()->Add(StatId::kRebalanceMerges);
  return ActionResult::kOk;
}

}  // namespace obtree
