// Copyright 2026 The obtree Authors.

#include "obtree/api/sharded_map.h"

#include <algorithm>
#include <string>

#include "obtree/core/background_pool.h"
#include "obtree/core/tree_checker.h"

namespace obtree {

ShardedMap::ShardedMap(const ShardOptions& options) : options_(options) {
  init_status_ = options_.Validate();
  if (!init_status_.ok()) {
    options_ = ShardOptions();  // degrade to a working default
  }
  const uint32_t n = options_.num_shards;
  // Ceil division without overflow (key_space_hint may be near 2^64).
  shard_width_ =
      options_.key_space_hint / n + (options_.key_space_hint % n != 0);
  if (shard_width_ == 0) shard_width_ = 1;

  // One machine-sized maintenance pool serves every shard (the default);
  // per_shard_workers restores the old N-shards-times-threads topology.
  if (!options_.per_shard_workers &&
      options_.compression != CompressionMode::kNone) {
    BackgroundPool::Options pool_options;
    pool_options.threads = options_.pool_threads;
    pool_ = std::make_unique<BackgroundPool>(pool_options);
  }

  MapOptions shard_options;
  shard_options.tree = options_.tree;
  shard_options.compression = options_.compression;
  shard_options.compression_threads = options_.compression_threads_per_shard;
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<ConcurrentMap>(shard_options, pool_.get()));
    if (init_status_.ok()) {
      init_status_ = shards_.back()->init_status();
    }
  }
}

// Members tear down in reverse order: shards_ first (each shard detaches
// from the pool, blocking until no worker touches it), then pool_.
ShardedMap::~ShardedMap() = default;

Status ShardedMap::Insert(Key key, Value value) {
  return shards_[ShardIndex(key)]->Insert(key, value);
}

Result<Value> ShardedMap::Get(Key key) const {
  return shards_[ShardIndex(key)]->Get(key);
}

Status ShardedMap::Erase(Key key) {
  return shards_[ShardIndex(key)]->Erase(key);
}

Status ShardedMap::Upsert(Key key, Value value) {
  return shards_[ShardIndex(key)]->Upsert(key, value);
}

size_t ShardedMap::Scan(
    Key lo, Key hi, const std::function<bool(Key, Value)>& visitor) const {
  if (lo < 1) lo = 1;
  if (hi < lo) return 0;
  const uint32_t first = ShardIndex(lo);
  const uint32_t last = ShardIndex(std::min(hi, kMaxUserKey));
  size_t visited = 0;
  bool stopped = false;
  // The partition is ordered, so visiting shards left to right delivers
  // globally ascending keys: every key of shard s precedes every key of
  // shard s+1.
  for (uint32_t s = first; s <= last && !stopped; ++s) {
    visited += shards_[s]->Scan(lo, hi, [&](Key k, Value v) {
      if (!visitor(k, v)) {
        stopped = true;
        return false;
      }
      return true;
    });
  }
  return visited;
}

std::vector<std::pair<Key, Value>> ShardedMap::ScanLimit(
    Key from, size_t limit) const {
  std::vector<std::pair<Key, Value>> out;
  if (limit == 0) return out;
  out.reserve(std::min<size_t>(limit, 4096));
  Scan(from, kMaxUserKey, [&](Key k, Value v) {
    out.emplace_back(k, v);
    return out.size() < limit;
  });
  return out;
}

uint64_t ShardedMap::Size() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->Size();
  return total;
}

uint32_t ShardedMap::Height() const {
  uint32_t tallest = 0;
  for (const auto& s : shards_) tallest = std::max(tallest, s->Height());
  return tallest;
}

void ShardedMap::CompressNow() {
  for (auto& s : shards_) s->CompressNow();
}

PoolStatsSnapshot ShardedMap::PoolStats() const {
  return pool_ != nullptr ? pool_->Stats() : PoolStatsSnapshot();
}

int ShardedMap::background_thread_count() const {
  if (pool_ != nullptr) return pool_->thread_count();
  int total = 0;
  for (const auto& s : shards_) total += s->background_thread_count();
  return total;
}

StatsSnapshot ShardedMap::Stats() const {
  StatsSnapshot total;
  for (const auto& s : shards_) {
    const StatsSnapshot snap = s->Stats();
    for (size_t i = 0; i < total.counters.size(); ++i) {
      total.counters[i] += snap.counters[i];
    }
    total.max_locks_held =
        std::max(total.max_locks_held, snap.max_locks_held);
  }
  return total;
}

TreeShape ShardedMap::Shape() const {
  TreeShape total;
  double fill_weighted = 0.0;
  uint64_t leaves = 0;
  for (const auto& s : shards_) {
    const TreeShape shape = s->Shape();
    total.height = std::max(total.height, shape.height);
    total.num_keys += shape.num_keys;
    total.num_nodes += shape.num_nodes;
    total.underfull_nodes += shape.underfull_nodes;
    if (shape.nodes_per_level.size() > total.nodes_per_level.size()) {
      total.nodes_per_level.resize(shape.nodes_per_level.size(), 0);
    }
    for (size_t i = 0; i < shape.nodes_per_level.size(); ++i) {
      total.nodes_per_level[i] += shape.nodes_per_level[i];
    }
    const uint64_t shard_leaves =
        shape.nodes_per_level.empty() ? 0 : shape.nodes_per_level[0];
    fill_weighted += shape.avg_leaf_fill * static_cast<double>(shard_leaves);
    leaves += shard_leaves;
  }
  total.avg_leaf_fill =
      leaves > 0 ? fill_weighted / static_cast<double>(leaves) : 0.0;
  return total;
}

Status ShardedMap::ValidateStructure() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status s = shards_[i]->ValidateStructure();
    if (!s.ok()) {
      return Status::Internal("shard " + std::to_string(i) + ": " +
                              s.ToString());
    }
  }
  return Status::OK();
}

}  // namespace obtree
